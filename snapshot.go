package lemp

import (
	"io"

	"lemp/internal/core"
	"lemp/internal/snapshot"
)

// Index snapshots persist the expensive preprocessing — bucketization
// (§3.2) and, for pretuned indexes, the sample-based parameter selection
// (§4.4) — in the versioned LEMPIDX1 binary format, so a process can
// restart in O(read) instead of O(index). The format embeds the probe
// matrix and the build options and checksums every section; a corrupt or
// truncated snapshot fails to load instead of serving wrong results.

// WriteSnapshot serializes the index (probe matrix, options, bucketization
// and tuning state) in the LEMPIDX1 format. It must not run concurrently
// with retrieval calls on the same index: per-call tuning rewrites the
// per-bucket parameters being serialized.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	return ix.WriteSnapshotWith(w, SnapshotOptions{})
}

// SnapshotOptions adjust what WriteSnapshotWith persists beyond the
// required index state.
type SnapshotOptions struct {
	// IncludeLists also persists the per-bucket sorted-list indexes built
	// so far, so a restored index answers its first coordinate-method
	// queries without rebuilding them (they otherwise dominate the first
	// post-restore batch). Roughly doubles the snapshot size; the loader
	// re-verifies the lists against the stored directions, so corruption
	// fails the load instead of mis-pruning.
	IncludeLists bool
	// Placement attaches shard-placement metadata (the PLMT section,
	// format version 4): the strategy the owning shard set was built with
	// and, for cluster placement, this shard's direction cone. Snapshots
	// without it stay at their lowest sufficient version and restore with
	// placement re-derived by the serving layer.
	Placement *ShardPlacement
}

// WriteSnapshotWith is WriteSnapshot with explicit persistence options.
func (ix *Index) WriteSnapshotWith(w io.Writer, opts SnapshotOptions) error {
	st := ix.inner.State()
	if opts.Placement != nil {
		st.PlacementKind = opts.Placement.Kind
		st.Cone = opts.Placement.Cone
	}
	return snapshot.WriteWith(w, st, snapshot.WriteOptions{IncludeLists: opts.IncludeLists})
}

// LoadOptions adjust how a snapshot is turned back into an Index. Only
// runtime behavior can be overridden; everything that shaped the index
// structure (algorithm, bucket sizing, …) is fixed by the snapshot.
type LoadOptions struct {
	// Parallelism overrides the snapshot's retrieval parallelism
	// (0 keeps the stored value).
	Parallelism int
	// Retune discards the snapshot's frozen tuning decision: the loaded
	// index re-runs per-call sample-based tuning like a freshly built one,
	// instead of reusing the stored per-bucket parameters.
	Retune bool
	// Quant overrides the snapshot's quantized-screening state
	// (Options.Quantize / the QNT8 section). QuantAuto keeps what the
	// snapshot persisted; QuantOn forces screening on, rebuilding the
	// sidecar from the stored directions when the snapshot has none;
	// QuantOff drops any persisted sidecar and disables screening. Exact
	// results are identical in every mode.
	Quant QuantMode
}

// QuantMode selects how LoadIndex treats a snapshot's quantized screening
// sidecar.
type QuantMode int

const (
	// QuantAuto restores the snapshot's own state: screening on iff a QNT8
	// section was persisted.
	QuantAuto QuantMode = iota
	// QuantOn forces quantized screening on, quantizing the stored
	// directions when the snapshot carries no sidecar.
	QuantOn
	// QuantOff drops any persisted sidecar and loads with screening off.
	QuantOff
)

// LoadIndex reads a LEMPIDX1 snapshot and rebuilds the index without
// re-running bucketization or tuning, so loading costs O(read). The
// snapshot is checksum- and invariant-verified; any corruption or version
// mismatch is an error. A loaded index answers queries identically to the
// index that was snapshotted.
func LoadIndex(r io.Reader, opts LoadOptions) (*Index, error) {
	ix, _, err := LoadIndexPlacement(r, opts)
	return ix, err
}

// LoadIndexPlacement is LoadIndex returning the snapshot's shard-placement
// metadata alongside the index: nil when the snapshot predates format
// version 4 or was written without a PLMT section. The metadata is
// validated by the reader (centroid dimension and normality, radius cosine
// range) but otherwise opaque to the index itself; serving layers adopt or
// recompute it.
func LoadIndexPlacement(r io.Reader, opts LoadOptions) (*Index, *ShardPlacement, error) {
	st, err := snapshot.Read(r)
	if err != nil {
		return nil, nil, err
	}
	var pl *ShardPlacement
	if st.PlacementKind != "" || st.Cone != nil {
		pl = &ShardPlacement{Kind: st.PlacementKind, Cone: st.Cone}
	}
	if opts.Parallelism != 0 {
		st.Opts.Parallelism = opts.Parallelism
	}
	if opts.Retune {
		// Unfreezing discards the whole pretune decision, retained sample
		// included: the loaded index behaves like a freshly built one.
		st.Pretuned = false
		st.TuneSample = nil
	}
	switch opts.Quant {
	case QuantOn:
		st.Opts.Quantize = true // missing sidecars are rebuilt by FromState
	case QuantOff:
		st.Opts.Quantize = false
		for i := range st.Buckets {
			st.Buckets[i].QuantScales = nil
			st.Buckets[i].QuantCodes = nil
			st.Buckets[i].QuantResid = nil
		}
	}
	inner, err := core.FromState(st)
	if err != nil {
		return nil, nil, err
	}
	return &Index{inner: inner}, pl, nil
}

// Probe returns the probe matrix the index was built over (or loaded with).
// It aliases index state: mutating it invalidates the index.
func (ix *Index) Probe() *Matrix { return ix.inner.Probe() }

// Pretuned reports whether per-call tuning is frozen: the index reuses
// stored per-bucket parameters (§4.4) instead of re-tuning on every
// retrieval call. See PretuneTopK.
func (ix *Index) Pretuned() bool { return ix.inner.Pretuned() }

// PretuneTopK fits the per-bucket algorithm-selection parameters (§4.4) on
// the given query sample for Row-Top-k retrieval at the given k, and
// freezes them: subsequent retrieval calls skip tuning and a snapshot of
// the index carries the fitted parameters, so a reloaded server answers
// with zero tuning time. Results stay exact either way; tuning only picks
// the per-bucket method. Use LoadOptions.Retune to unfreeze.
func (ix *Index) PretuneTopK(q *Matrix, k int) error {
	return ix.inner.PretuneTopK(q, k)
}

// PretuneAboveTheta is PretuneTopK for Above-θ retrieval at threshold theta.
func (ix *Index) PretuneAboveTheta(q *Matrix, theta float64) error {
	return ix.inner.PretuneAboveTheta(q, theta)
}
