// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per table/figure, sub-benchmarks per cell) at a reduced scale so that
// `go test -bench=. -benchmem` completes in minutes. The full-scale
// experiment harness is cmd/lemp-bench; EXPERIMENTS.md records its output
// against the paper's numbers.
package lemp_test

import (
	"sync"
	"testing"

	"lemp/internal/core"
	"lemp/internal/covertree"
	"lemp/internal/data"
	"lemp/internal/matrix"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
	"lemp/internal/ta"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// benchScale shrinks the paper-profile datasets for benchmarking.
const benchScale = 0.12

type benchSet struct {
	q, p   *matrix.Matrix
	thetas map[int]float64 // recall level -> θ
}

var (
	benchMu   sync.Mutex
	benchSets = map[string]*benchSet{}
)

// getSet generates (once) the scaled dataset and calibrates θ for the
// benchmark recall levels.
func getSet(b *testing.B, name string) *benchSet {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchSets[name]; ok {
		return s
	}
	profile, err := data.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	profile = profile.Scale(benchScale)
	q, p := profile.Generate()
	s := &benchSet{q: q, p: p, thetas: map[int]float64{}}
	levels := []int{100, 1000, 10000}
	heap := topk.New(levels[len(levels)-1])
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		for j := 0; j < p.N(); j++ {
			heap.Push(j, vecmath.Dot(qi, p.Vec(j)))
		}
	}
	items := heap.Items()
	for _, l := range levels {
		if l-1 < len(items) && items[l-1].Value > 0 {
			s.thetas[l] = items[l-1].Value
		}
	}
	benchSets[name] = s
	return s
}

var sinkCount int64

func countSink(e retrieval.Entry) { sinkCount++ }

// --- Method micro-runners reused by all table/figure benchmarks ----------

func benchNaiveAbove(b *testing.B, s *benchSet, theta float64) {
	for i := 0; i < b.N; i++ {
		naive.AboveTheta(s.q, s.p, theta, countSink)
	}
}

func benchTAAbove(b *testing.B, s *benchSet, theta float64) {
	for i := 0; i < b.N; i++ {
		ix := ta.NewIndex(s.p) // total time includes indexing, as in the paper
		ix.AboveTheta(s.q, theta, countSink)
	}
}

func benchTreeAbove(b *testing.B, s *benchSet, theta float64) {
	for i := 0; i < b.N; i++ {
		tree := covertree.Build(s.p, covertree.DefaultBase)
		tree.AboveTheta(s.q, theta, countSink)
	}
}

func benchDTreeAbove(b *testing.B, s *benchSet, theta float64) {
	for i := 0; i < b.N; i++ {
		dual := covertree.NewDual(s.q, s.p, covertree.DefaultBase)
		dual.AboveTheta(theta, countSink)
	}
}

func benchLEMPAbove(b *testing.B, s *benchSet, theta float64, alg core.Algorithm, opts core.Options) {
	opts.Algorithm = alg
	for i := 0; i < b.N; i++ {
		ix, err := core.NewIndex(s.p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.AboveTheta(s.q, theta, countSink); err != nil {
			b.Fatal(err)
		}
	}
}

func benchNaiveTopK(b *testing.B, s *benchSet, k int) {
	for i := 0; i < b.N; i++ {
		naive.RowTopK(s.q, s.p, k)
	}
}

func benchTATopK(b *testing.B, s *benchSet, k int) {
	for i := 0; i < b.N; i++ {
		ix := ta.NewIndex(s.p)
		ix.RowTopK(s.q, k)
	}
}

func benchTreeTopK(b *testing.B, s *benchSet, k int) {
	for i := 0; i < b.N; i++ {
		tree := covertree.Build(s.p, covertree.DefaultBase)
		tree.RowTopK(s.q, k)
	}
}

func benchDTreeTopK(b *testing.B, s *benchSet, k int) {
	for i := 0; i < b.N; i++ {
		dual := covertree.NewDual(s.q, s.p, covertree.DefaultBase)
		dual.RowTopK(k)
	}
}

func benchLEMPTopK(b *testing.B, s *benchSet, k int, alg core.Algorithm, opts core.Options) {
	opts.Algorithm = alg
	for i := 0; i < b.N; i++ {
		ix, err := core.NewIndex(s.p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ix.RowTopK(s.q, k); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: Above-θ @1K, all methods, IE datasets ----------------------

func BenchmarkFig5AboveTheta1K(b *testing.B) {
	for _, name := range []string{"IE-NMF", "IE-SVD"} {
		s := getSet(b, name)
		theta := s.thetas[1000]
		b.Run(name+"/Naive", func(b *testing.B) { benchNaiveAbove(b, s, theta) })
		b.Run(name+"/D-Tree", func(b *testing.B) { benchDTreeAbove(b, s, theta) })
		b.Run(name+"/Tree", func(b *testing.B) { benchTreeAbove(b, s, theta) })
		b.Run(name+"/TA", func(b *testing.B) { benchTAAbove(b, s, theta) })
		b.Run(name+"/LEMP-LI", func(b *testing.B) { benchLEMPAbove(b, s, theta, core.AlgLI, core.Options{}) })
	}
}

// --- Figure 6a: Above-θ at the deepest usable recall level ----------------

func BenchmarkFig6aAboveThetaDeep(b *testing.B) {
	for _, name := range []string{"IE-NMF", "IE-SVD"} {
		s := getSet(b, name)
		theta, ok := s.thetas[10000]
		if !ok {
			continue
		}
		b.Run(name+"/Naive", func(b *testing.B) { benchNaiveAbove(b, s, theta) })
		b.Run(name+"/D-Tree", func(b *testing.B) { benchDTreeAbove(b, s, theta) })
		b.Run(name+"/Tree", func(b *testing.B) { benchTreeAbove(b, s, theta) })
		b.Run(name+"/TA", func(b *testing.B) { benchTAAbove(b, s, theta) })
		b.Run(name+"/LEMP-LI", func(b *testing.B) { benchLEMPAbove(b, s, theta, core.AlgLI, core.Options{}) })
	}
}

// --- Figure 6b: Row-Top-1, all methods, four datasets ---------------------

func BenchmarkFig6bRowTop1(b *testing.B) {
	for _, name := range []string{"IE-NMFT", "IE-SVDT", "Netflix", "KDD"} {
		s := getSet(b, name)
		b.Run(name+"/Naive", func(b *testing.B) { benchNaiveTopK(b, s, 1) })
		b.Run(name+"/D-Tree", func(b *testing.B) { benchDTreeTopK(b, s, 1) })
		b.Run(name+"/Tree", func(b *testing.B) { benchTreeTopK(b, s, 1) })
		b.Run(name+"/TA", func(b *testing.B) { benchTATopK(b, s, 1) })
		b.Run(name+"/LEMP-LI", func(b *testing.B) { benchLEMPTopK(b, s, 1, core.AlgLI, core.Options{}) })
	}
}

// --- Table 2: preprocessing (index construction) times --------------------

func BenchmarkTable2Preprocessing(b *testing.B) {
	for _, name := range []string{"IE-NMF", "Netflix", "KDD"} {
		s := getSet(b, name)
		b.Run(name+"/LEMP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewIndex(s.p, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/TA", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ta.NewIndex(s.p)
			}
		})
		b.Run(name+"/Tree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				covertree.Build(s.p, covertree.DefaultBase)
			}
		})
		b.Run(name+"/D-Tree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				covertree.NewDual(s.q, s.p, covertree.DefaultBase)
			}
		})
	}
}

// --- Table 3: Above-θ recall sweep (LEMP vs best baseline) ----------------

func BenchmarkTable3AboveThetaSweep(b *testing.B) {
	for _, name := range []string{"IE-SVD", "IE-NMF"} {
		s := getSet(b, name)
		for _, level := range []int{100, 1000, 10000} {
			theta, ok := s.thetas[level]
			if !ok {
				continue
			}
			label := name + "/@" + itoa(level)
			b.Run(label+"/Tree", func(b *testing.B) { benchTreeAbove(b, s, theta) })
			b.Run(label+"/TA", func(b *testing.B) { benchTAAbove(b, s, theta) })
			b.Run(label+"/LEMP-LI", func(b *testing.B) { benchLEMPAbove(b, s, theta, core.AlgLI, core.Options{}) })
		}
	}
}

// --- Table 4: Row-Top-k sweep (LEMP vs best baseline) ---------------------

func BenchmarkTable4RowTopKSweep(b *testing.B) {
	for _, name := range []string{"IE-SVDT", "Netflix"} {
		s := getSet(b, name)
		for _, k := range []int{1, 10, 50} {
			label := name + "/k" + itoa(k)
			b.Run(label+"/Tree", func(b *testing.B) { benchTreeTopK(b, s, k) })
			b.Run(label+"/LEMP-LI", func(b *testing.B) { benchLEMPTopK(b, s, k, core.AlgLI, core.Options{}) })
		}
	}
}

// --- Table 5: bucket algorithms, Above-θ ----------------------------------

func BenchmarkTable5BucketAlgorithmsAbove(b *testing.B) {
	s := getSet(b, "IE-SVD")
	theta := s.thetas[1000]
	for _, alg := range core.Algorithms() {
		alg := alg
		b.Run("IE-SVD/@1K/LEMP-"+alg.String(), func(b *testing.B) {
			benchLEMPAbove(b, s, theta, alg, core.Options{})
		})
	}
}

// --- Table 6: bucket algorithms, Row-Top-k --------------------------------

func BenchmarkTable6BucketAlgorithmsTopK(b *testing.B) {
	for _, name := range []string{"IE-SVDT", "Netflix"} {
		s := getSet(b, name)
		for _, alg := range core.Algorithms() {
			alg := alg
			b.Run(name+"/k10/LEMP-"+alg.String(), func(b *testing.B) {
				benchLEMPTopK(b, s, 10, alg, core.Options{})
			})
		}
	}
}

// --- §6.2 caching ablation -------------------------------------------------

func BenchmarkCacheAblation(b *testing.B) {
	s := getSet(b, "KDD")
	b.Run("cache-aware", func(b *testing.B) { benchLEMPTopK(b, s, 10, core.AlgLI, core.Options{}) })
	b.Run("cache-oblivious", func(b *testing.B) {
		benchLEMPTopK(b, s, 10, core.AlgLI, core.Options{CacheBytes: -1})
	})
}

// --- §4.4 tuning ablation ---------------------------------------------------

func BenchmarkTuningAblation(b *testing.B) {
	s := getSet(b, "IE-SVDT")
	b.Run("tuned", func(b *testing.B) { benchLEMPTopK(b, s, 10, core.AlgLI, core.Options{}) })
	for _, phi := range []int{1, 3, 5} {
		phi := phi
		b.Run("fixed-phi"+itoa(phi), func(b *testing.B) {
			benchLEMPTopK(b, s, 10, core.AlgI, core.Options{Phi: phi})
		})
	}
}

// --- Extension: approximate Row-Top-k via query clustering (§5 [17]) -------

func BenchmarkApproxRowTopK(b *testing.B) {
	s := getSet(b, "Netflix")
	b.Run("exact", func(b *testing.B) { benchLEMPTopK(b, s, 10, core.AlgLI, core.Options{}) })
	for _, clusters := range []int{8, 64} {
		clusters := clusters
		b.Run("clusters"+itoa(clusters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := core.NewIndex(s.p, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := ix.RowTopKApprox(s.q, 10, core.ApproxOptions{Clusters: clusters}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks for the hot paths ------------------------------------

func BenchmarkDot50(b *testing.B) {
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = float64(i) * 0.1
		y[i] = float64(50-i) * 0.1
	}
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += vecmath.Dot(x, y)
	}
	benchGuard = acc
}

var benchGuard float64

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
