package lemp

import (
	"lemp/internal/core"
)

// Shard-placement support for serving layers that partition a probe
// catalog across several indexes. The core exposes two geometric
// quantities: the per-probe scan-cost weight implied by the bucketization
// (what cost-balanced placement equalizes), and the direction cone of an
// index's live probe set (what centroid-routed shard pruning bounds with).

// ShardCone is the direction cone enclosing an index's live probe set:
// unit centroid, cosine of the angular radius, and maximum live probe
// length. For any query q, every live probe p satisfies
// qᵀp ≤ ‖q‖·MaxLen·max(0, cos(∠(q, Centroid) − radius)).
type ShardCone = core.Cone

// ShardPlacement describes how a snapshotted shard was placed: the
// placement strategy name (the serving layer's vocabulary, e.g. "cost" or
// "cluster") and, for cluster-placed shards, the shard's direction cone.
// It is persisted as the snapshot PLMT section (format version 4).
type ShardPlacement struct {
	Kind string
	Cone *ShardCone
}

// ScanCostWeights estimates each probe column's scan cost under the
// bucketization the given options would build: a probe's weight is the l_b
// of the bucket it would land in, since bucket-bound work scales with
// length mass rather than row count. Cost-balanced shard placement
// partitions on these weights.
func ScanCostWeights(p *Matrix, opts Options) []float64 {
	return core.ScanCostWeights(p, opts)
}

// EstimatedCost sums the live probes' scan-cost weights under the index's
// current bucketization (delta buckets included): the per-shard quantity a
// cost-balanced placement equalizes and a placement-skew gauge reports.
func (ix *Index) EstimatedCost() float64 { return ix.inner.EstimatedCost() }

// DirectionCone computes the cone enclosing the index's live probe set,
// the per-shard state centroid-routed pruning needs. Zero-length probes
// raise MaxLen but are excluded from the centroid and radius (their inner
// product with any query is 0, which the floored bound already covers).
func (ix *Index) DirectionCone() *ShardCone { return ix.inner.DirectionCone() }

// LiveProbes materializes the index's live probe set as a fresh matrix
// with its external ids in ascending order — the gather step when a shard
// set is re-partitioned.
func (ix *Index) LiveProbes() (*Matrix, []int32) { return ix.inner.LiveProbes() }

// Options returns the effective (defaulted) options the index was built
// or restored with.
func (ix *Index) Options() Options { return ix.inner.Options() }
