package lemp

import (
	"context"
	"fmt"
	"math"

	"lemp/internal/core"
	"lemp/internal/retrieval"
)

// Retrieve is the single context-aware entry point for every retrieval
// mode. The spec is assembled from functional options: exactly one of
// TopK(k) or AboveTheta(theta) selects the problem, and the remaining
// options adjust per-call execution policy — bucket algorithm, parallelism,
// tuning-parameter reuse, approximation, streaming. Index construction
// fixes structure; Retrieve fixes policy, per call.
//
//	res, err := index.Retrieve(ctx, q, lemp.TopK(10), lemp.WithParallelism(4))
//	res, err := index.Retrieve(ctx, q, lemp.AboveTheta(0.9), lemp.Stream(emit))
//
// The context is honored at bucket boundaries throughout tuning and
// retrieval: a canceled or expired context aborts the scan within one
// bucket's work per worker, returns ctx.Err(), and leaves the index fully
// reusable. Option conflicts and invalid parameters are reported before any
// retrieval work runs.
//
// Concurrency follows the Index contract: one retrieval call at a time per
// index (intra-call parallelism via WithParallelism or Options.Parallelism).
func (ix *Index) Retrieve(ctx context.Context, q *Matrix, opts ...Option) (*Result, error) {
	spec, err := NewSpec(opts...)
	if err != nil {
		return nil, err
	}
	return ix.RetrieveSpec(ctx, q, spec)
}

// RetrieveSpec is Retrieve with a pre-validated Spec, letting serving loops
// build the spec once and reuse it across calls.
func (ix *Index) RetrieveSpec(ctx context.Context, q *Matrix, spec *Spec) (*Result, error) {
	if spec == nil || !spec.valid {
		return nil, fmt.Errorf("lemp: spec must be built with NewSpec")
	}
	ro := core.RunOptions{
		Algorithm:   spec.algorithm,
		Parallelism: spec.parallelism,
		Cache:       spec.cache,
	}
	res := &Result{Epoch: ix.Epoch()}
	var err error
	switch {
	case spec.topk && spec.approx != nil:
		res.TopK, res.Stats, err = ix.inner.RowTopKApproxCtx(ctx, q, spec.k, *spec.approx, ro)
	case spec.topk:
		res.TopK, res.Stats, err = ix.inner.RowTopKCtx(ctx, q, spec.k, ro)
	case spec.stream != nil:
		res.Stats, err = ix.inner.AboveThetaCtx(ctx, q, spec.theta, retrieval.Sink(spec.stream), ro)
	default:
		res.Stats, err = ix.inner.AboveThetaCtx(ctx, q, spec.theta, retrieval.Collect(&res.Entries), ro)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Result is one Retrieve answer.
type Result struct {
	// TopK holds the Row-Top-k rows (row i lists query i's top entries by
	// decreasing value); nil in Above-θ mode.
	TopK TopKRows
	// Entries holds the collected Above-θ entries in unspecified order;
	// nil in Row-Top-k mode and when Stream diverted entries to a callback.
	Entries []Entry
	// Stats reports the call's wall-clock phases and pruning work. A call
	// whose tuning phase was answered from a TuningCache reports
	// Tunings == 0 and TuneCacheHits > 0.
	Stats Stats
	// Epoch is the index mutation epoch the call was answered at; callers
	// that key caches or consistency checks on the probe-set version use
	// it to detect concurrent updates.
	Epoch uint64
}

// Spec is a validated retrieval specification. Build one with NewSpec (or
// implicitly via Retrieve); the zero value is invalid.
type Spec struct {
	valid       bool
	topk        bool
	above       bool
	k           int
	theta       float64
	algorithm   *Algorithm
	parallelism int
	cache       *TuningCache
	approx      *ApproxOptions
	stream      func(Entry)
}

// Option configures one aspect of a retrieval Spec.
type Option func(*Spec) error

// NewSpec validates a set of options into a Spec: exactly one retrieval
// mode, no conflicting options, every parameter in range. All validation
// happens here — before any retrieval work — so a bad spec can never start
// a scan.
func NewSpec(opts ...Option) (*Spec, error) {
	spec := &Spec{}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("lemp: nil Option")
		}
		if err := opt(spec); err != nil {
			return nil, err
		}
	}
	if !spec.topk && !spec.above {
		return nil, fmt.Errorf("lemp: no retrieval mode: pass TopK(k) or AboveTheta(theta)")
	}
	if spec.approx != nil && !spec.topk {
		return nil, fmt.Errorf("lemp: Approx applies only to TopK retrieval")
	}
	if spec.stream != nil && !spec.above {
		return nil, fmt.Errorf("lemp: Stream applies only to AboveTheta retrieval")
	}
	spec.valid = true
	return spec, nil
}

// TopK selects Row-Top-k retrieval: for every query vector, its k probe
// vectors with the largest inner products, by decreasing value (fewer when
// the index holds fewer live probes). Ties are broken arbitrarily.
func TopK(k int) Option {
	return func(s *Spec) error {
		if err := s.setMode(); err != nil {
			return err
		}
		if k < 1 {
			return fmt.Errorf("lemp: k must be positive, got %d", k)
		}
		s.topk, s.k = true, k
		return nil
	}
}

// AboveTheta selects Above-θ retrieval: every entry of QᵀP with value
// ≥ theta, in unspecified order. theta must be a positive finite number,
// as in the paper's problem statement.
func AboveTheta(theta float64) Option {
	return func(s *Spec) error {
		if err := s.setMode(); err != nil {
			return err
		}
		if math.IsNaN(theta) || !(theta > 0) || math.IsInf(theta, 0) {
			return fmt.Errorf("lemp: theta must be a positive finite number, got %v", theta)
		}
		s.above, s.theta = true, theta
		return nil
	}
}

// setMode guards against conflicting mode options (TopK + AboveTheta, or a
// mode given twice).
func (s *Spec) setMode() error {
	if s.topk || s.above {
		return fmt.Errorf("lemp: retrieval mode already set: pass exactly one of TopK or AboveTheta")
	}
	return nil
}

// WithAlgorithm overrides the index's bucket algorithm for this call only.
// Structural options fixed at build time (bucket sizing, BLSH signature
// shape) are unaffected; lazily built per-bucket indexes for the new
// algorithm appear on first use.
func WithAlgorithm(a Algorithm) Option {
	return func(s *Spec) error {
		if !a.Valid() {
			return fmt.Errorf("lemp: invalid algorithm %d", int(a))
		}
		if s.algorithm != nil {
			return fmt.Errorf("lemp: WithAlgorithm given twice")
		}
		s.algorithm = &a
		return nil
	}
}

// WithParallelism fans this call's retrieval phase out over n goroutines,
// overriding Options.Parallelism. n must be at least 1.
func WithParallelism(n int) Option {
	return func(s *Spec) error {
		if n < 1 {
			return fmt.Errorf("lemp: parallelism must be at least 1, got %d", n)
		}
		if s.parallelism != 0 {
			return fmt.Errorf("lemp: WithParallelism given twice")
		}
		s.parallelism = n
		return nil
	}
}

// WithTuningCache reuses fitted per-bucket tuning parameters (§4.4) across
// calls through tc: the first call with a given (mode, k/θ, algorithm,
// index version) pays one sample-tuning pass and stores the fit; subsequent
// calls restore it and perform zero sample-tuning work (Stats.Tunings == 0,
// Stats.TuneCacheHits == 1). Probe mutations and re-bucketizations rotate
// the key, so a stale fit is never applied. Results are byte-identical with
// and without the cache — tuning only selects per-bucket methods.
func WithTuningCache(tc *TuningCache) Option {
	return func(s *Spec) error {
		if tc == nil {
			return fmt.Errorf("lemp: WithTuningCache needs a non-nil cache (build one with NewTuningCache)")
		}
		if s.cache != nil {
			return fmt.Errorf("lemp: WithTuningCache given twice")
		}
		s.cache = tc
		return nil
	}
}

// Approx answers a TopK retrieval approximately by clustering the queries
// and retrieving exactly only for cluster centroids (the scheme of
// Koenigstein et al. the paper cites as composable with LEMP). Values are
// exact inner products, but some true top-k members may be missing; use
// Recall to quantify quality against an exact run. Conflicts with
// AboveTheta and Stream.
func Approx(opts ApproxOptions) Option {
	return func(s *Spec) error {
		if s.approx != nil {
			return fmt.Errorf("lemp: Approx given twice")
		}
		s.approx = &opts
		return nil
	}
}

// Stream diverts an AboveTheta retrieval's entries to emit as they are
// found, instead of materializing Result.Entries — the paper retrieves up
// to 10⁷ entries per run, so large result sets should stream. The Entry
// passed to emit must not be retained; emit may be called from multiple
// goroutines' entries but never concurrently. Conflicts with TopK.
func Stream(emit func(Entry)) Option {
	return func(s *Spec) error {
		if emit == nil {
			return fmt.Errorf("lemp: Stream needs a non-nil emit func")
		}
		if s.stream != nil {
			return fmt.Errorf("lemp: Stream given twice")
		}
		s.stream = emit
		return nil
	}
}

// TuningCache caches fitted per-bucket tuning parameters across retrieval
// calls; see WithTuningCache. It is safe for concurrent use and may be
// shared across indexes (e.g. server shards) — entries are keyed by index
// instance and version, so they never cross indexes or survive mutations.
type TuningCache = core.TuningCache

// NewTuningCache returns an empty tuning cache.
func NewTuningCache() *TuningCache { return core.NewTuningCache() }
