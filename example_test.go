package lemp_test

import (
	"fmt"
	"log"

	"lemp"
)

// The package examples run on the paper's Fig. 1 factor model: four users,
// five movies, two latent factors.

func fig1Matrices() (q, p *lemp.Matrix) {
	q, err := lemp.MatrixFromVectors([][]float64{
		{3.2, -0.4}, // Adam
		{3.1, -0.2}, // Bob
		{0, 1.8},    // Charlie
		{-0.4, 1.9}, // Dennis
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err = lemp.MatrixFromVectors([][]float64{
		{1.6, 0.6}, // Die Hard
		{1.3, 0.8}, // Taken
		{0.7, 2.7}, // Twilight
		{1, 2.8},   // Amelie
		{0.4, 2.2}, // Titanic
	})
	if err != nil {
		log.Fatal(err)
	}
	return q, p
}

func ExampleIndex_AboveTheta() {
	q, p := fig1Matrices()
	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	entries, _, err := index.AboveTheta(q, 4.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d predictions above 4.5\n", len(entries))
	// Output:
	// 6 predictions above 4.5
}

func ExampleIndex_RowTopK() {
	q, p := fig1Matrices()
	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	top, _, err := index.RowTopK(q, 1)
	if err != nil {
		log.Fatal(err)
	}
	movies := []string{"Die Hard", "Taken", "Twilight", "Amelie", "Titanic"}
	users := []string{"Adam", "Bob", "Charlie", "Dennis"}
	for u, row := range top {
		fmt.Printf("%s -> %s (%.2f)\n", users[u], movies[row[0].Probe], row[0].Value)
	}
	// Output:
	// Adam -> Die Hard (4.88)
	// Bob -> Die Hard (4.84)
	// Charlie -> Amelie (5.04)
	// Dennis -> Amelie (4.92)
}

func ExampleIndex_AboveThetaFunc() {
	q, p := fig1Matrices()
	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Stream entries without materializing the result set.
	var count int
	var max float64
	_, err = index.AboveThetaFunc(q, 3.0, func(e lemp.Entry) {
		count++
		if e.Value > max {
			max = e.Value
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d entries, largest %.2f\n", count, max)
	// Output:
	// 10 entries, largest 5.04
}

func ExampleParseAlgorithm() {
	alg, err := lemp.ParseAlgorithm("l2ap")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(alg)
	// Output:
	// L2AP
}
