package lemp_test

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"

	"lemp"
	"lemp/internal/data"
)

// TestSnapshotRoundTripSmoke is the snapshot subsystem's end-to-end
// property test: build an index on the Smoke profile, snapshot it, load it
// back, and require byte-identical RowTopK and AboveTheta results — loaded
// indexes must be indistinguishable from freshly built ones.
func TestSnapshotRoundTripSmoke(t *testing.T) {
	q, p := data.Smoke.Generate()
	ix, err := lemp.New(p, lemp.Options{TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("snapshot: %d bytes for %d probes of dim %d", buf.Len(), p.N(), p.R())
	loaded, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != ix.N() || loaded.R() != ix.R() || loaded.NumBuckets() != ix.NumBuckets() {
		t.Fatalf("loaded shape %d/%d/%d, want %d/%d/%d",
			loaded.N(), loaded.R(), loaded.NumBuckets(), ix.N(), ix.R(), ix.NumBuckets())
	}

	wantTop, _, err := ix.RowTopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, _, err := loaded.RowTopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Fatal("snapshot-loaded RowTopK differs from freshly built index")
	}

	theta := medianTopValue(wantTop)
	wantAbove, _, err := ix.AboveTheta(q, theta)
	if err != nil {
		t.Fatal(err)
	}
	gotAbove, _, err := loaded.AboveTheta(q, theta)
	if err != nil {
		t.Fatal(err)
	}
	lemp.SortEntries(wantAbove)
	lemp.SortEntries(gotAbove)
	if len(wantAbove) == 0 {
		t.Fatal("threshold produced no entries; test is vacuous")
	}
	if !reflect.DeepEqual(gotAbove, wantAbove) {
		t.Fatal("snapshot-loaded AboveTheta differs from freshly built index")
	}
}

// TestSnapshotPretunedSkipsTuning checks the serving-restart contract: a
// pretuned index snapshot restores with tuning frozen, so retrieval reports
// zero tuning time, while LoadOptions.Retune opts back into per-call tuning.
func TestSnapshotPretunedSkipsTuning(t *testing.T) {
	q, p := data.Smoke.Generate()
	ix, err := lemp.New(p, lemp.Options{TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.PretuneTopK(q.Head(32), 10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Pretuned() {
		t.Fatal("pretuned flag lost across snapshot")
	}
	if _, st, err := loaded.RowTopK(q, 10); err != nil || st.TuneTime != 0 {
		t.Fatalf("pretuned loaded index re-tuned: TuneTime=%v err=%v", st.TuneTime, err)
	}

	retuned, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{Retune: true})
	if err != nil {
		t.Fatal(err)
	}
	if retuned.Pretuned() {
		t.Fatal("Retune did not unfreeze tuning")
	}
	if _, st, err := retuned.RowTopK(q, 10); err != nil || st.TuneTime == 0 {
		t.Fatalf("retuned index should tune per call: TuneTime=%v err=%v", st.TuneTime, err)
	}
}

func TestLoadIndexParallelismOverride(t *testing.T) {
	_, p := data.Smoke.Generate()
	ix, err := lemp.New(p, lemp.Options{TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The override must not perturb results, only fan-out.
	q, _ := data.Smoke.Generate()
	want, _, err := ix.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel loaded index differs from sequential original")
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := lemp.LoadIndex(bytes.NewReader([]byte("LEMPMAT1")), lemp.LoadOptions{}); err == nil {
		t.Error("matrix file accepted as index snapshot")
	}
	if _, err := lemp.LoadIndex(bytes.NewReader(nil), lemp.LoadOptions{}); err == nil {
		t.Error("empty input accepted as index snapshot")
	}
}

// medianTopValue picks a θ that yields a non-trivial Above-θ result set:
// the median of the per-query best values.
func medianTopValue(top lemp.TopKRows) float64 {
	var vals []float64
	for _, row := range top {
		if len(row) > 0 && row[0].Value > 0 {
			vals = append(vals, row[0].Value)
		}
	}
	if len(vals) == 0 {
		return math.Inf(1)
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}
