// Command lemp-bulk runs an offline bulk top-k job: it streams a whole
// query matrix through a LEMP index with a worker pool and writes the full
// result table to disk — the throughput counterpart to the per-request
// lemp command.
//
// Queries in the library's LEMPMAT1 binary format are streamed from disk
// panel by panel (bounded memory, safe for query matrices larger than
// RAM); CSV queries are loaded into memory. With -ckpt the job writes a
// small checkpoint file every -ckpt-every flushed panels and resumes from
// it after an interruption, producing a byte-identical result file to an
// uninterrupted run; the checkpoint is removed on completion. Ctrl-C
// stops the job through the context — with -ckpt that is a clean
// suspension point, not a loss of work.
//
// Usage:
//
//	lemp-bulk -q users.q -p items.p -topk 10 -out table.lempbrs
//	lemp-bulk -q q.bin -p p.bin -theta 0.9 -out t.lempbrs -ckpt t.bulkck
//	lemp-bulk -q q.bin -p p.bin -topk 50 -out t.lempbrs -panel 512 -parallel 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"lemp"
)

func main() {
	qPath := flag.String("q", "", "query matrix file (LEMPMAT1 streamed from disk, or CSV)")
	pPath := flag.String("p", "", "probe matrix file")
	outPath := flag.String("out", "", "result table output path (LEMPBRS1)")
	topk := flag.Int("topk", 0, "Row-Top-k: results per query; mutually exclusive with -theta")
	theta := flag.Float64("theta", 0, "Above-θ threshold (> 0); mutually exclusive with -topk")
	panel := flag.Int("panel", 0, "query panel rows (0 = default 256)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker pool size (default all cores)")
	window := flag.Int("window", 0, "max panels in flight past the flush frontier (0 = 4×parallel)")
	ckpt := flag.String("ckpt", "", "checkpoint file path; resume from it if it exists")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint every this many flushed panels (0 = default 64)")
	algName := flag.String("alg", "", "bucket algorithm override: L LI LC I C TA Tree L2AP BLSH (default: index default)")
	phi := flag.Int("phi", 0, "fixed focus-set size φ (0 = tuned per bucket)")
	quant := flag.Bool("quant", false, "build the int8 screening sidecar")
	stats := flag.Bool("stats", false, "print job statistics to stderr")
	flag.Parse()

	if *qPath == "" || *pPath == "" || *outPath == "" {
		fail("-q, -p and -out are required")
	}
	if (*theta > 0) == (*topk > 0) {
		fail("specify exactly one of -theta or -topk")
	}

	opts := lemp.BulkOptions{
		PanelRows:       *panel,
		Parallelism:     *parallel,
		Window:          *window,
		Checkpoint:      *ckpt,
		CheckpointEvery: *ckptEvery,
	}
	if *algName != "" {
		alg, err := lemp.ParseAlgorithm(*algName)
		if err != nil {
			fail("%v", err)
		}
		opts.Algorithm = &alg
	}

	src, closeSrc, err := openQueries(*qPath)
	if err != nil {
		fail("loading %s: %v", *qPath, err)
	}
	defer closeSrc()

	p, err := lemp.LoadMatrix(*pPath)
	if err != nil {
		fail("loading %s: %v", *pPath, err)
	}
	index, err := lemp.New(p, lemp.Options{Phi: *phi, Quantize: *quant})
	if err != nil {
		fail("building index: %v", err)
	}

	// Ctrl-C cancels the job context; with -ckpt the engine leaves a final
	// checkpoint behind so a rerun resumes instead of starting over.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var st lemp.BulkStats
	if *topk > 0 {
		st, err = index.BulkTopK(ctx, src, *outPath, *topk, opts)
	} else {
		st, err = index.BulkAboveTheta(ctx, src, *outPath, *theta, opts)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "lemp-bulk: interrupted")
			if *ckpt != "" {
				fmt.Fprintf(os.Stderr, "lemp-bulk: rerun the same command to resume from %s\n", *ckpt)
			}
			os.Exit(130)
		}
		fail("%v", err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr,
			"rows=%d panels=%d resumed=%d checkpoints=%d out=%dB\n"+
				"wall=%v rows/s=%.0f candidates/query=%.1f tune=%v\n",
			st.Rows, st.Panels, st.ResumedPanels, st.Checkpoints, st.OutBytes,
			st.Wall, st.RowsPerSec(), st.Core.CandidatesPerQuery(), st.Core.TuneTime)
	}
}

// openQueries streams LEMPMAT1 files from disk and falls back to an
// in-memory load for CSV.
func openQueries(path string) (lemp.BulkQuerySource, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var magic [8]byte
	n, _ := io.ReadFull(f, magic[:])
	f.Close()
	if n == 8 && string(magic[:]) == "LEMPMAT1" {
		pr, err := lemp.OpenQueryPanels(path)
		if err != nil {
			return nil, nil, err
		}
		return pr, func() { pr.Close() }, nil
	}
	m, err := lemp.LoadMatrix(path)
	if err != nil {
		return nil, nil, err
	}
	return lemp.BulkQueries(m), func() {}, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lemp-bulk: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
