// Command lemp-serve runs a long-lived LEMP query server: it loads (or
// synthesizes) a probe matrix, shards it across independent LEMP indexes,
// and answers Row-Top-k and Above-θ queries over HTTP, micro-batching
// concurrent requests into single whole-matrix retrieval calls.
//
// Usage:
//
//	lemp-serve -p items.p -shards 4                       # serve a matrix file
//	lemp-serve -profile Smoke -addr :9000 -batch-window 2ms
//
// Endpoints:
//
//	POST /v1/topk    {"queries": [[...], ...], "k": 10}
//	POST /v1/above   {"queries": [[...], ...], "theta": 0.9}
//	GET  /healthz    liveness + index shape
//	GET  /stats      server counters and cumulative retrieval stats
//
// Retrieval uses all CPU cores by default: each shard runs with
// Options.Parallelism = NumCPU/shards, so one dispatched batch fanning out
// across every shard saturates the machine without oversubscribing it
// (override with -parallel; the paper's measurements are single-threaded,
// but a server owns its machine).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pPath := flag.String("p", "", "probe matrix file (columns of P as vectors)")
	profileName := flag.String("profile", "", "synthesize the probe side of a dataset profile instead of loading -p (e.g. Smoke, Netflix)")
	shards := flag.Int("shards", 4, "number of index shards")
	algName := flag.String("alg", "LI", "bucket algorithm: L LI LC I C TA Tree L2AP BLSH")
	phi := flag.Int("phi", 0, "fixed focus-set size φ (0 = tuned per bucket)")
	parallel := flag.Int("parallel", 0, "retrieval goroutines per shard (0 = NumCPU/shards, so one batch uses all cores)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long requests wait to coalesce (0 disables batching)")
	batchMax := flag.Int("batch-max", 256, "maximum query rows per combined batch")
	cacheEntries := flag.Int("cache", 65536, "result-cache capacity in result entries (0 or negative disables)")
	flag.Parse()

	if (*pPath == "") == (*profileName == "") {
		fail("specify exactly one of -p or -profile")
	}
	alg, err := lemp.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}

	var probe *lemp.Matrix
	if *pPath != "" {
		probe, err = lemp.LoadMatrix(*pPath)
		if err != nil {
			fail("loading %s: %v", *pPath, err)
		}
	} else {
		profile, err := data.ByName(*profileName)
		if err != nil {
			fail("%v", err)
		}
		log.Printf("synthesizing probe matrix of %s (%d vectors, dim %d)", profile.Name, profile.N, profile.R)
		_, probe = profile.Generate()
	}

	if *cacheEntries == 0 {
		// On the CLI, 0 naturally reads as "no cache"; the Config zero
		// value means "default" per the library convention.
		*cacheEntries = -1
	}
	srv, err := server.New(probe, server.Config{
		Shards:       *shards,
		Options:      lemp.Options{Algorithm: alg, Phi: *phi, Parallelism: *parallel},
		BatchWindow:  *batchWindow,
		BatchMax:     *batchMax,
		CacheEntries: *cacheEntries,
	})
	if err != nil {
		fail("%v", err)
	}
	par := "auto (NumCPU/shards)"
	if *parallel > 0 {
		par = fmt.Sprint(*parallel)
	}
	cache := "disabled"
	if *cacheEntries > 0 {
		cache = fmt.Sprintf("%d entries", *cacheEntries)
	}
	log.Printf("serving %d probes (dim %d) in %d shards on %s (batch window %v, max %d, cache %s, parallelism %s)",
		probe.N(), probe.R(), *shards, *addr, *batchWindow, *batchMax, cache, par)

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bound slow/idle clients; no WriteTimeout so large legitimate
		// result sets can stream out.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		fail("%v", err)
	}
	// Shutdown closed the listener; wait until in-flight requests drain.
	<-drained
	log.Print("shut down")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lemp-serve: "+format+"\n", args...)
	os.Exit(2)
}
