// Command lemp-serve runs a long-lived LEMP query server: it loads (or
// synthesizes) a probe matrix, shards it across independent LEMP indexes,
// and answers Row-Top-k and Above-θ queries over HTTP, micro-batching
// concurrent requests into single whole-matrix retrieval calls.
//
// Usage:
//
//	lemp-serve -p items.p -shards 4                       # serve a matrix file
//	lemp-serve -profile Smoke -addr :9000 -batch-window 2ms
//	lemp-serve -profile Smoke -save-snapshot idx          # build once, persist
//	lemp-serve -snapshot idx                              # restart in O(read)
//
// Snapshots: -save-snapshot writes one LEMPIDX1 file per shard (path for a
// single shard, path.0 … path.N-1 otherwise) after pretuning each shard, so
// a later -snapshot startup skips bucketization and tuning entirely.
// -snapshot restores that layout; pass -shards to re-shard a single-file
// snapshot from its embedded probe matrix (which re-pays index build).
//
// Endpoints:
//
//	POST /v1/topk    {"queries": [[...], ...], "k": 10}
//	POST /v1/above   {"queries": [[...], ...], "theta": 0.9}
//	POST /v1/update  {"updates": [{"op": "add", "vector": [...]},
//	                              {"op": "remove", "id": 3},
//	                              {"op": "update", "id": 2, "vector": [...]}]}
//	GET  /healthz    liveness + index shape + update epoch
//	GET  /stats      server counters and cumulative retrieval stats
//
// The probe set is live: /v1/update applies atomic batches of adds,
// removes and replaces. Small changes land in per-shard delta buckets;
// once a shard's accumulated drift exceeds -compact-frac of its live
// probes, the shard re-bucketizes. Every batch advances the epoch; queries
// and cached results are epoch-consistent (a response never mixes pre- and
// post-update vectors). A -save-snapshot taken after updates persists the
// compacted live probe set with ids preserved.
//
// Retrieval uses all CPU cores by default: each shard runs with
// Options.Parallelism = NumCPU/shards, so one dispatched batch fanning out
// across every shard saturates the machine without oversubscribing it
// (override with -parallel; the paper's measurements are single-threaded,
// but a server owns its machine).
//
// Serving is context-aware end to end: a client that disconnects stops
// contributing to its micro-batch, and once every batch-mate is gone the
// underlying shard scans abort mid-bucket; -request-timeout adds a
// per-request deadline with the same behavior. Repeat queries with the
// same k or θ reuse fitted per-bucket tuning parameters through a shared
// tuning cache, so small-batch serving stops re-paying §4.4 sample tuning
// on every call (visible as tunings vs tune_cache_hits in /stats).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pPath := flag.String("p", "", "probe matrix file (columns of P as vectors)")
	profileName := flag.String("profile", "", "synthesize the probe side of a dataset profile instead of loading -p (e.g. Smoke, Netflix)")
	snapshotPath := flag.String("snapshot", "", "restore shard indexes from LEMPIDX1 snapshots (path, or path.0..path.N-1 as written by -save-snapshot) instead of building them")
	saveSnapshot := flag.String("save-snapshot", "", "after building, pretune and write one snapshot per shard (path for 1 shard, else path.0..path.N-1), then serve")
	shards := flag.Int("shards", 4, "number of index shards")
	algName := flag.String("alg", "LI", "bucket algorithm: L LI LC I C TA Tree L2AP BLSH")
	phi := flag.Int("phi", 0, "fixed focus-set size φ (0 = tuned per bucket)")
	parallel := flag.Int("parallel", 0, "retrieval goroutines per shard (0 = NumCPU/shards, so one batch uses all cores)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long requests wait to coalesce (0 disables batching)")
	batchMax := flag.Int("batch-max", 256, "maximum query rows per combined batch")
	cacheEntries := flag.Int("cache", 65536, "result-cache capacity in result entries (0 or negative disables)")
	pretuneK := flag.Int("pretune-k", 10, "k used by -save-snapshot's pretuning pass")
	snapshotLists := flag.Bool("snapshot-lists", true, "with -save-snapshot, also persist the per-bucket sorted-list indexes (larger files; a restored server's first batch skips the list rebuild)")
	compactFrac := flag.Float64("compact-frac", 0.25, "re-bucketize a shard when its delta mass (tombstones+overlay per live probe) exceeds this fraction (negative disables)")
	maxUpdateOps := flag.Int("max-update-ops", 4096, "maximum ops per /v1/update batch (negative disables the limit)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request retrieval deadline; expired requests abort their shard scans mid-bucket and return 503 (0 disables)")
	flag.Parse()

	sources := 0
	for _, set := range []bool{*pPath != "", *profileName != "", *snapshotPath != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		fail("specify exactly one of -p, -profile or -snapshot")
	}
	alg, err := lemp.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}
	if *cacheEntries == 0 {
		// On the CLI, 0 naturally reads as "no cache"; the Config zero
		// value means "default" per the library convention.
		*cacheEntries = -1
	}
	if *compactFrac == 0 {
		// On the CLI, 0 naturally reads as "compact on any drift"; keep it
		// by nudging below the Config zero value's "default" meaning.
		*compactFrac = 1e-9
	}
	cfg := server.Config{
		Shards:          *shards,
		Options:         lemp.Options{Algorithm: alg, Phi: *phi, Parallelism: *parallel},
		BatchWindow:     *batchWindow,
		BatchMax:        *batchMax,
		CacheEntries:    *cacheEntries,
		MaxUpdateOps:    *maxUpdateOps,
		CompactFraction: *compactFrac,
		RequestTimeout:  *requestTimeout,
	}

	var srv *server.Server
	if *snapshotPath != "" {
		srv = loadSnapshots(*snapshotPath, *shards, shardsFlagSet(), cfg)
	} else {
		var probe *lemp.Matrix
		if *pPath != "" {
			probe, err = lemp.LoadMatrix(*pPath)
			if err != nil {
				fail("loading %s: %v", *pPath, err)
			}
		} else {
			profile, err := data.ByName(*profileName)
			if err != nil {
				fail("%v", err)
			}
			log.Printf("synthesizing probe matrix of %s (%d vectors, dim %d)", profile.Name, profile.N, profile.R)
			_, probe = profile.Generate()
		}
		srv, err = server.New(probe, cfg)
		if err != nil {
			fail("%v", err)
		}
	}

	if *saveSnapshot != "" {
		saveSnapshots(srv, *saveSnapshot, *pretuneK, *snapshotLists)
	}

	probes, dim := srv.Sharded().N(), srv.Sharded().R()
	par := "auto (NumCPU/shards)"
	if *parallel > 0 {
		par = fmt.Sprint(*parallel)
	}
	cache := "disabled"
	if *cacheEntries > 0 {
		cache = fmt.Sprintf("%d entries", *cacheEntries)
	}
	log.Printf("serving %d probes (dim %d) in %d shards on %s (batch window %v, max %d, cache %s, parallelism %s)",
		probes, dim, srv.Sharded().NumShards(), *addr, *batchWindow, *batchMax, cache, par)

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bound slow/idle clients; no WriteTimeout so large legitimate
		// result sets can stream out.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		fail("%v", err)
	}
	// Shutdown closed the listener; wait until in-flight requests drain.
	<-drained
	log.Print("shut down")
}

// shardsFlagSet reports whether -shards was given explicitly (as opposed to
// resting at its default), which decides whether a snapshot restore honors
// the snapshot's own shard count or re-shards.
func shardsFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			set = true
		}
	})
	return set
}

// snapshotFiles resolves the file set behind -snapshot path: the file
// itself, or the path.0..path.N-1 series written for a multi-shard server.
// A bare file and a numbered series together are ambiguous (a stale
// snapshot from a save with a different shard count) and fail loudly
// rather than silently picking one.
func snapshotFiles(path string) []string {
	_, bareErr := os.Stat(path)
	var files []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(name); err != nil {
			break
		}
		files = append(files, name)
	}
	if bareErr == nil && len(files) > 0 {
		fail("both %s and %s.0 exist; remove the stale one (saves with different -shards leave both forms behind)", path, path)
	}
	if bareErr == nil {
		return []string{path}
	}
	if len(files) == 0 {
		fail("no snapshot at %s (or %s.0...)", path, path)
	}
	return files
}

// loadSnapshots restores a server from snapshot files. When -shards was
// given and disagrees with the snapshot count, a single snapshot is
// re-sharded from its embedded probe matrix — which re-pays index build and
// is logged as such.
func loadSnapshots(path string, shards int, shardsSet bool, cfg server.Config) *server.Server {
	files := snapshotFiles(path)
	start := time.Now()
	if shardsSet && shards != len(files) {
		if len(files) != 1 {
			fail("-shards %d conflicts with %d shard snapshots; re-sharding needs a single snapshot", shards, len(files))
		}
		f, err := os.Open(files[0])
		if err != nil {
			fail("%v", err)
		}
		ix, err := lemp.LoadIndex(f, lemp.LoadOptions{})
		f.Close()
		if err != nil {
			fail("loading %s: %v", files[0], err)
		}
		log.Printf("re-sharding %s (%d probes) into %d shards: rebuilding indexes from the embedded probe matrix", files[0], ix.N(), shards)
		// Preserve the snapshot's external probe ids through the rebuild:
		// a mutated-then-saved catalog has non-contiguous ids, and
		// renumbering them would silently re-address every probe.
		srv, err := server.NewWithIDs(ix.Probe(), ix.ProbeIDs(), cfg)
		if err != nil {
			fail("%v", err)
		}
		return srv
	}
	readers := make([]io.Reader, len(files))
	handles := make([]*os.File, len(files))
	for i, name := range files {
		f, err := os.Open(name)
		if err != nil {
			fail("%v", err)
		}
		handles[i] = f
		readers[i] = f
	}
	srv, err := server.NewFromSnapshot(readers, cfg)
	for _, f := range handles {
		f.Close()
	}
	if err != nil {
		fail("restoring snapshots: %v", err)
	}
	log.Printf("restored %d shards from %s in %v (bucketization and tuning skipped)", len(files), path, time.Since(start).Round(time.Millisecond))
	return srv
}

// saveSnapshots pretunes every shard on a sample of its own probes, then
// writes one snapshot file per shard (atomically, via rename). Pretuning
// freezes the fitted per-bucket parameters into the snapshots, so a later
// -snapshot restart serves with zero tuning time; with lists enabled the
// sorted-list indexes the pretuning pass built ride along, so the restart
// also skips their first-use rebuild.
func saveSnapshots(srv *server.Server, path string, k int, lists bool) {
	start := time.Now()
	ixs := srv.Sharded().Indexes()
	for i, ix := range ixs {
		if err := ix.PretuneTopK(pretuneSample(ix.Probe()), k); err != nil {
			fail("pretuning shard %d: %v", i, err)
		}
	}
	err := srv.WriteSnapshotsWith(func(i, n int) (io.WriteCloser, error) {
		name := path
		if n > 1 {
			name = fmt.Sprintf("%s.%d", path, i)
		}
		return newAtomicFile(name)
	}, lemp.SnapshotOptions{IncludeLists: lists})
	if err != nil {
		fail("saving snapshots: %v", err)
	}
	removeStaleSnapshots(path, len(ixs))
	log.Printf("pretuned and saved %d shard snapshots to %s in %v", len(ixs), path, time.Since(start).Round(time.Millisecond))
}

// removeStaleSnapshots deletes leftover files of the same snapshot family
// that a previous save with a different shard count left behind: without
// this, a later -snapshot restart would glob them in and silently assemble
// extra shards of duplicated probes (or prefer a stale single-file snapshot
// over the fresh numbered set).
func removeStaleSnapshots(path string, n int) {
	stale := func(name string) {
		if _, err := os.Stat(name); err != nil {
			return
		}
		if err := os.Remove(name); err != nil {
			fail("removing stale snapshot %s: %v", name, err)
		}
		log.Printf("removed stale snapshot %s (previous save used a different shard count)", name)
	}
	if n > 1 {
		stale(path) // a single-file snapshot would shadow the numbered set
	}
	start := n
	if n == 1 {
		start = 0 // the fresh snapshot is the bare path; every .i is stale
	}
	for i := start; ; i++ {
		name := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(name); err != nil {
			break
		}
		if err := os.Remove(name); err != nil {
			fail("removing stale snapshot %s: %v", name, err)
		}
		log.Printf("removed stale snapshot %s (previous save used a different shard count)", name)
	}
}

// pretuneSample spreads up to 256 probe vectors of m into a query sample
// for pretuning (the self-join workload the paper uses for its IE
// datasets).
func pretuneSample(m *lemp.Matrix) *lemp.Matrix {
	const want = 256
	n := m.N()
	if n <= want {
		return m
	}
	sample := lemp.NewMatrix(m.R(), want)
	for i := 0; i < want; i++ {
		copy(sample.Vec(i), m.Vec(i*n/want))
	}
	return sample
}

// atomicFile writes through a temporary file renamed into place on Close,
// so a crash mid-write never leaves a truncated snapshot behind. Abort
// discards the temp file without renaming; WriteSnapshots calls it when a
// write fails partway, so a failed save never replaces an existing good
// snapshot with a truncated one.
type atomicFile struct {
	f    *os.File
	name string
}

func newAtomicFile(name string) (*atomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(name), filepath.Base(name)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &atomicFile{f: f, name: name}, nil
}

func (a *atomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

func (a *atomicFile) Abort() error {
	a.f.Close()
	return os.Remove(a.f.Name())
}

func (a *atomicFile) Close() error {
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return os.Rename(a.f.Name(), a.name)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lemp-serve: "+format+"\n", args...)
	os.Exit(2)
}
