// Command lemp-serve runs a long-lived LEMP query server: it loads (or
// synthesizes) a probe matrix, shards it across independent LEMP indexes,
// and answers Row-Top-k and Above-θ queries over HTTP, micro-batching
// concurrent requests into single whole-matrix retrieval calls.
//
// Batching is continuous by default (-batch-mode continuous): a request
// arriving at an idle index dispatches immediately — no window penalty at
// low load — and under load batches dispatch back-to-back the moment the
// previous retrieval completes, with -batch-window and -batch-max as upper
// bounds. -batch-mode window restores the classic always-wait-the-window
// batcher. Admission control sheds load before it queues: when forming
// batches hold ≥ -shed-queue-rows query rows, or more than -shed-inflight
// requests are in flight, new retrieval requests get 429 with a
// Retry-After header instead of joining an unboundedly deep queue (see
// lemp_requests_shed_total and the shed block in /stats).
//
// Usage:
//
//	lemp-serve -p items.p -shards 4                       # serve a matrix file
//	lemp-serve -profile Smoke -addr :9000 -batch-window 2ms
//	lemp-serve -profile Smoke -save-snapshot idx          # build once, persist
//	lemp-serve -snapshot idx                              # restart in O(read)
//
// Snapshots: -save-snapshot writes one LEMPIDX1 file per shard (path for a
// single shard, path.0 … path.N-1 otherwise) after pretuning each shard, so
// a later -snapshot startup skips bucketization and tuning entirely.
// -snapshot restores that layout, including the placement strategy the
// saving server used. Pass -shards to restore under a different shard
// count, -placement to restore under a different strategy, or
// -rebalance-on-load to force a fresh partition even when both match; all
// three re-place the restored probe set through the active placement
// (which re-pays index build for the moved shards, with ids preserved).
//
// Placement (-placement) decides which probes share a shard: "range"
// splits the catalog into contiguous equal-count runs, "cost" splits it
// into contiguous runs of equal estimated scan cost (balancing per-shard
// scan time under length-skewed catalogs), and "cluster" groups
// directionally similar probes via spherical k-means and prunes whole
// shards per Above-θ query with a conservative centroid/radius cone bound
// (results stay exact; see lemp_shards_pruned_total).
//
// Endpoints:
//
//	POST /v1/topk        {"queries": [[...], ...], "k": 10}
//	POST /v1/above       {"queries": [[...], ...], "theta": 0.9}
//	POST /v1/update      {"updates": [{"op": "add", "vector": [...]},
//	                                  {"op": "remove", "id": 3},
//	                                  {"op": "update", "id": 2, "vector": [...]}]}
//	GET  /healthz        liveness + index shape + update epoch
//	GET  /readyz         readiness: 503 while building/restoring and while draining
//	GET  /stats          server counters and cumulative retrieval stats
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/traces   retained request traces (tail-sampled; slow requests always)
//	GET  /debug/pprof/   runtime profiles (only with -pprof)
//
// The listener opens before the index builds: during a long build or
// snapshot restore, /healthz answers 200 (the process is alive) and
// /readyz answers 503 "starting", so orchestrators can distinguish a warm-
// up from a wedge. On SIGINT/SIGTERM the server marks itself draining
// (/readyz flips to 503 so load balancers stop routing here), waits
// -drain-grace, then shuts the listener down and lets in-flight requests
// finish.
//
// The probe set is live: /v1/update applies atomic batches of adds,
// removes and replaces. Small changes land in per-shard delta buckets;
// once a shard's accumulated drift exceeds -compact-frac of its live
// probes, the shard re-bucketizes. Every batch advances the epoch; queries
// and cached results are epoch-consistent (a response never mixes pre- and
// post-update vectors). A -save-snapshot taken after updates persists the
// compacted live probe set with ids preserved.
//
// Retrieval uses all CPU cores by default: each shard runs with
// Options.Parallelism = NumCPU/shards, so one dispatched batch fanning out
// across every shard saturates the machine without oversubscribing it
// (override with -parallel; the paper's measurements are single-threaded,
// but a server owns its machine).
//
// Serving is context-aware end to end: a client that disconnects stops
// contributing to its micro-batch, and once every batch-mate is gone the
// underlying shard scans abort mid-bucket; -request-timeout adds a
// per-request deadline with the same behavior. Repeat queries with the
// same k or θ reuse fitted per-bucket tuning parameters through a shared
// tuning cache, so small-batch serving stops re-paying §4.4 sample tuning
// on every call (visible as tunings vs tune_cache_hits in /stats).
//
// Observability: every request is traced (id in the X-Lemp-Trace response
// header); requests slower than -slow-query are logged with per-phase
// timings and always retained in /debug/traces, fast ones are retained
// with probability -trace-sample. Logs are structured (log/slog, text by
// default, -log-json for JSON) at -log-level; the access log is at debug
// level.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/server"
)

// logger is the process-wide structured logger, configured from -log-level
// and -log-json before any other work.
var logger *slog.Logger

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pPath := flag.String("p", "", "probe matrix file (columns of P as vectors)")
	profileName := flag.String("profile", "", "synthesize the probe side of a dataset profile instead of loading -p (e.g. Smoke, Netflix)")
	snapshotPath := flag.String("snapshot", "", "restore shard indexes from LEMPIDX1 snapshots (path, or path.0..path.N-1 as written by -save-snapshot) instead of building them")
	saveSnapshot := flag.String("save-snapshot", "", "after building, pretune and write one snapshot per shard (path for 1 shard, else path.0..path.N-1), then serve")
	shards := flag.Int("shards", 4, "number of index shards")
	placementName := flag.String("placement", "range", "shard placement strategy: range (contiguous equal-count), cost (contiguous cost-balanced) or cluster (spherical k-means with centroid cone shard pruning)")
	rebalanceOnLoad := flag.Bool("rebalance-on-load", false, "with -snapshot, re-partition the restored probe set under the active placement even when shard count and strategy already match")
	algName := flag.String("alg", "LI", "bucket algorithm: L LI LC I C TA Tree L2AP BLSH")
	phi := flag.Int("phi", 0, "fixed focus-set size φ (0 = tuned per bucket)")
	quantize := flag.Bool("quant", false, "int8 quantized candidate screening: prune candidates with a conservative low-precision bound before exact verification (results stay exact; ~1 byte per probe per dimension). With -snapshot, given explicitly it forces screening on or off regardless of what the snapshot persisted")
	parallel := flag.Int("parallel", 0, "retrieval goroutines per shard (0 = NumCPU/shards, so one batch uses all cores)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "upper bound on how long requests wait to coalesce (0 disables batching)")
	batchMax := flag.Int("batch-max", 256, "maximum query rows per combined batch")
	batchMode := flag.String("batch-mode", "continuous", "batch dispatch mode: continuous (dispatch when the index is idle and back-to-back as retrievals complete; -batch-window is only an upper bound) or window (always wait out the window)")
	shedQueueRows := flag.Int("shed-queue-rows", 16384, "reject retrieval requests with 429 while this many query rows wait in forming batches (0 or negative disables)")
	shedInflight := flag.Int("shed-inflight", 4096, "reject retrieval requests with 429 past this many in-flight requests (0 or negative disables)")
	cacheEntries := flag.Int("cache", 65536, "result-cache capacity in result entries (0 or negative disables)")
	pretuneK := flag.Int("pretune-k", 10, "k used by -save-snapshot's pretuning pass")
	snapshotLists := flag.Bool("snapshot-lists", true, "with -save-snapshot, also persist the per-bucket sorted-list indexes (larger files; a restored server's first batch skips the list rebuild)")
	compactFrac := flag.Float64("compact-frac", 0.25, "re-bucketize a shard when its delta mass (tombstones+overlay per live probe) exceeds this fraction (negative disables)")
	maxUpdateOps := flag.Int("max-update-ops", 4096, "maximum ops per /v1/update batch (negative disables the limit)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request retrieval deadline; expired requests abort their shard scans mid-bucket and return 503 (0 disables)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error (the per-request access log is at debug)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "requests slower than this are logged with per-phase timings and always retained in /debug/traces (0 disables)")
	traceSample := flag.Float64("trace-sample", 0.01, "probability a fast request's trace is retained in /debug/traces (slow requests are always retained)")
	traceRing := flag.Int("trace-ring", 256, "capacity of the retained-trace ring behind /debug/traces")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainGrace := flag.Duration("drain-grace", 0, "after a shutdown signal, keep serving for this long with /readyz failing, so load balancers drain before the listener closes")
	flag.Parse()

	logger = newLogger(*logLevel, *logJSON)

	sources := 0
	for _, set := range []bool{*pPath != "", *profileName != "", *snapshotPath != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		fail("specify exactly one of -p, -profile or -snapshot")
	}
	alg, err := lemp.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}
	if _, err := server.ParsePlacement(*placementName); err != nil {
		fail("%v", err)
	}
	if _, err := server.ParseBatchMode(*batchMode); err != nil {
		fail("%v", err)
	}
	if *cacheEntries == 0 {
		// On the CLI, 0 naturally reads as "no cache"; the Config zero
		// value means "default" per the library convention.
		*cacheEntries = -1
	}
	if *shedQueueRows <= 0 {
		// On the CLI, 0 naturally reads as "never shed"; the Config zero
		// value means "default" per the library convention.
		*shedQueueRows = -1
	}
	if *shedInflight <= 0 {
		*shedInflight = -1
	}
	if *compactFrac == 0 {
		// On the CLI, 0 naturally reads as "compact on any drift"; keep it
		// by nudging below the Config zero value's "default" meaning.
		*compactFrac = 1e-9
	}
	cfg := server.Config{
		Shards:             *shards,
		Placement:          *placementName,
		RebalanceOnLoad:    *rebalanceOnLoad,
		Options:            lemp.Options{Algorithm: alg, Phi: *phi, Parallelism: *parallel, Quantize: *quantize},
		BatchWindow:        *batchWindow,
		BatchMax:           *batchMax,
		BatchMode:          *batchMode,
		ShedQueueRows:      *shedQueueRows,
		ShedInflight:       *shedInflight,
		CacheEntries:       *cacheEntries,
		MaxUpdateOps:       *maxUpdateOps,
		CompactFraction:    *compactFrac,
		RequestTimeout:     *requestTimeout,
		Logger:             logger,
		SlowQueryThreshold: *slowQuery,
		TraceSampleRate:    *traceSample,
		TraceRingSize:      *traceRing,
		EnablePprof:        *pprofFlag,
	}

	// Open the listener before building the index, behind a switchable
	// handler: a long build or snapshot restore still answers /healthz 200
	// (alive) and /readyz 503 "starting", so orchestrators can tell a
	// warm-up from a wedge, and the address is claimed (and its errors
	// surfaced) immediately.
	var handler atomic.Value // http.Handler
	handler.Store(bootHandler())
	httpSrv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
		// Bound slow/idle clients; no WriteTimeout so large legitimate
		// result sets can stream out.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var srv *server.Server
	if *snapshotPath != "" {
		// A restore keeps the snapshot's own shard count and placement
		// unless the flags were given explicitly: the defaults describe a
		// fresh build, not an instruction to re-partition a stored one.
		if !flagSet("shards") {
			cfg.Shards = 0
		}
		if !flagSet("placement") {
			cfg.Placement = ""
		}
		// An explicit -quant overrides the snapshots' persisted screening
		// state in either direction; by default they restore as written.
		if flagSet("quant") {
			if *quantize {
				cfg.Quant = lemp.QuantOn
			} else {
				cfg.Quant = lemp.QuantOff
			}
		}
		srv = loadSnapshots(*snapshotPath, cfg)
	} else {
		var probe *lemp.Matrix
		if *pPath != "" {
			probe, err = lemp.LoadMatrix(*pPath)
			if err != nil {
				fail("loading %s: %v", *pPath, err)
			}
		} else {
			profile, err := data.ByName(*profileName)
			if err != nil {
				fail("%v", err)
			}
			logger.Info("synthesizing probe matrix",
				"profile", profile.Name, "vectors", profile.N, "dim", profile.R)
			_, probe = profile.Generate()
		}
		srv, err = server.New(probe, cfg)
		if err != nil {
			fail("%v", err)
		}
	}

	if *saveSnapshot != "" {
		saveSnapshots(srv, *saveSnapshot, *pretuneK, *snapshotLists)
	}

	par := "auto (NumCPU/shards)"
	if *parallel > 0 {
		par = fmt.Sprint(*parallel)
	}
	cache := "disabled"
	if *cacheEntries > 0 {
		cache = fmt.Sprintf("%d entries", *cacheEntries)
	}
	logger.Info("serving",
		"probes", srv.Sharded().N(),
		"dim", srv.Sharded().R(),
		"shards", srv.Sharded().NumShards(),
		"addr", *addr,
		"batch_mode", *batchMode,
		"batch_window", batchWindow.String(),
		"batch_max", *batchMax,
		"cache", cache,
		"parallelism", par,
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Fail readiness first so load balancers stop routing here, give
		// them -drain-grace to notice, then close the listener and let
		// in-flight requests finish.
		srv.BeginDrain()
		logger.Info("shutdown signal received; draining", "grace", drainGrace.String())
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	// The build is done: swap in the real handler. Readiness flips with it
	// (the server constructs ready), so /readyz answers 200 from here on.
	handler.Store(srv.Handler())

	err = <-serveErr
	if err != nil && err != http.ErrServerClosed {
		fail("%v", err)
	}
	// Shutdown closed the listener; wait until in-flight requests drain.
	<-drained
	logger.Info("shut down")
}

// newLogger builds the process logger from -log-level and -log-json.
func newLogger(level string, jsonOut bool) *slog.Logger {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "lemp-serve: invalid -log-level %q (want debug, info, warn or error)\n", level)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// bootHandler serves while the index is still building or restoring:
// alive but not ready.
func bootHandler() http.Handler {
	starting := func(w http.ResponseWriter, status int) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintln(w, `{"status":"starting"}`)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		starting(w, http.StatusOK)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		starting(w, http.StatusServiceUnavailable)
	})
	return mux
}

// flagSet reports whether a flag was given explicitly (as opposed to
// resting at its default), which decides whether a snapshot restore honors
// the snapshot's own shard count and placement or re-partitions.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// snapshotFiles resolves the file set behind -snapshot path: the file
// itself, or the path.0..path.N-1 series written for a multi-shard server.
// A bare file and a numbered series together are ambiguous (a stale
// snapshot from a save with a different shard count) and fail loudly
// rather than silently picking one.
func snapshotFiles(path string) []string {
	_, bareErr := os.Stat(path)
	var files []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(name); err != nil {
			break
		}
		files = append(files, name)
	}
	if bareErr == nil && len(files) > 0 {
		fail("both %s and %s.0 exist; remove the stale one (saves with different -shards leave both forms behind)", path, path)
	}
	if bareErr == nil {
		return []string{path}
	}
	if len(files) == 0 {
		fail("no snapshot at %s (or %s.0...)", path, path)
	}
	return files
}

// loadSnapshots restores a server from snapshot files. A -shards or
// -placement disagreeing with the stored layout (or -rebalance-on-load) is
// handled inside NewFromSnapshot, which re-partitions the restored probe
// set through the placement interface — ids preserved, index build re-paid
// only then.
func loadSnapshots(path string, cfg server.Config) *server.Server {
	files := snapshotFiles(path)
	start := time.Now()
	readers := make([]io.Reader, len(files))
	handles := make([]*os.File, len(files))
	for i, name := range files {
		f, err := os.Open(name)
		if err != nil {
			fail("%v", err)
		}
		handles[i] = f
		readers[i] = f
	}
	srv, err := server.NewFromSnapshot(readers, cfg)
	for _, f := range handles {
		f.Close()
	}
	if err != nil {
		fail("restoring snapshots: %v", err)
	}
	msg := "restored shards from snapshots (bucketization and tuning skipped)"
	if srv.Sharded().NumShards() != len(files) || cfg.RebalanceOnLoad {
		msg = "restored and re-partitioned shards from snapshots"
	}
	logger.Info(msg,
		"snapshots", len(files),
		"shards", srv.Sharded().NumShards(),
		"placement", string(srv.Sharded().Placement()),
		"path", path,
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	return srv
}

// saveSnapshots pretunes every shard on a sample of its own probes, then
// writes one snapshot file per shard (atomically, via rename). Pretuning
// freezes the fitted per-bucket parameters into the snapshots, so a later
// -snapshot restart serves with zero tuning time; with lists enabled the
// sorted-list indexes the pretuning pass built ride along, so the restart
// also skips their first-use rebuild.
func saveSnapshots(srv *server.Server, path string, k int, lists bool) {
	start := time.Now()
	ixs := srv.Sharded().Indexes()
	for i, ix := range ixs {
		if err := ix.PretuneTopK(pretuneSample(ix.Probe()), k); err != nil {
			fail("pretuning shard %d: %v", i, err)
		}
	}
	err := srv.WriteSnapshotsWith(func(i, n int) (io.WriteCloser, error) {
		name := path
		if n > 1 {
			name = fmt.Sprintf("%s.%d", path, i)
		}
		return newAtomicFile(name)
	}, lemp.SnapshotOptions{IncludeLists: lists})
	if err != nil {
		fail("saving snapshots: %v", err)
	}
	removeStaleSnapshots(path, len(ixs))
	logger.Info("pretuned and saved shard snapshots",
		"shards", len(ixs), "path", path, "elapsed", time.Since(start).Round(time.Millisecond).String())
}

// removeStaleSnapshots deletes leftover files of the same snapshot family
// that a previous save with a different shard count left behind: without
// this, a later -snapshot restart would glob them in and silently assemble
// extra shards of duplicated probes (or prefer a stale single-file snapshot
// over the fresh numbered set).
func removeStaleSnapshots(path string, n int) {
	stale := func(name string) {
		if _, err := os.Stat(name); err != nil {
			return
		}
		if err := os.Remove(name); err != nil {
			fail("removing stale snapshot %s: %v", name, err)
		}
		logger.Info("removed stale snapshot (previous save used a different shard count)", "path", name)
	}
	if n > 1 {
		stale(path) // a single-file snapshot would shadow the numbered set
	}
	start := n
	if n == 1 {
		start = 0 // the fresh snapshot is the bare path; every .i is stale
	}
	for i := start; ; i++ {
		name := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(name); err != nil {
			break
		}
		if err := os.Remove(name); err != nil {
			fail("removing stale snapshot %s: %v", name, err)
		}
		logger.Info("removed stale snapshot (previous save used a different shard count)", "path", name)
	}
}

// pretuneSample spreads up to 256 probe vectors of m into a query sample
// for pretuning (the self-join workload the paper uses for its IE
// datasets).
func pretuneSample(m *lemp.Matrix) *lemp.Matrix {
	const want = 256
	n := m.N()
	if n <= want {
		return m
	}
	sample := lemp.NewMatrix(m.R(), want)
	for i := 0; i < want; i++ {
		copy(sample.Vec(i), m.Vec(i*n/want))
	}
	return sample
}

// atomicFile writes through a temporary file renamed into place on Close,
// so a crash mid-write never leaves a truncated snapshot behind. Abort
// discards the temp file without renaming; WriteSnapshots calls it when a
// write fails partway, so a failed save never replaces an existing good
// snapshot with a truncated one.
type atomicFile struct {
	f    *os.File
	name string
}

func newAtomicFile(name string) (*atomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(name), filepath.Base(name)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &atomicFile{f: f, name: name}, nil
}

func (a *atomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

func (a *atomicFile) Abort() error {
	a.f.Close()
	return os.Remove(a.f.Name())
}

func (a *atomicFile) Close() error {
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return os.Rename(a.f.Name(), a.name)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lemp-serve: "+format+"\n", args...)
	os.Exit(2)
}
