// Command lemp-bench regenerates the paper's evaluation: every figure and
// table of §6, the caching ablation of §6.2 and a tuning ablation for §4.4,
// on synthetic datasets calibrated to the paper's Table 1.
//
// Usage:
//
//	lemp-bench -experiment all            # everything (default)
//	lemp-bench -experiment fig6b          # one experiment
//	lemp-bench -experiment table5 -scale 0.5
//	lemp-bench -quick                     # reduced grid, skips D-Tree
//	lemp-bench -experiment bulk -json out # + BENCH_bulk.json trajectory
//
// Experiment ids: fig5 fig6a fig6b fig7ab fig7cf table2 table3 table4
// table5 table6 cache tune kernels placement quant load bulk. With -json
// each experiment also writes a machine-readable BENCH_<id>.json file for
// archiving trajectories across commits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lemp/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id or 'all' ("+strings.Join(bench.ExperimentIDs, " ")+")")
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	quick := flag.Bool("quick", false, "reduced grid (fewer levels/k, no D-Tree)")
	jsonDir := flag.String("json", "", "also write BENCH_<experiment>.json trajectory files to this directory")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	r := bench.NewRunner(bench.Config{
		Scale:   *scale,
		Quick:   *quick,
		Out:     os.Stdout,
		Verbose: *verbose,
		JSONDir: *jsonDir,
	})
	if err := r.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "lemp-bench:", err)
		os.Exit(1)
	}
}
