// Command promcheck validates a Prometheus text exposition read from stdin:
// it must parse under the strict in-repo parser (internal/obs), and every
// family named in -require must be present. CI pipes a live scrape of
// lemp-serve's /metrics through it, so a malformed exposition or a dropped
// metric family fails the build instead of silently blinding a dashboard.
//
//	curl -fsS localhost:8080/metrics | promcheck -require lemp_requests_total,lemp_ready
//
// Exit status: 0 when the exposition is valid and complete, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lemp/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	maxCard := flag.Int("max-cardinality", 0, "fail if any family has more label sets than this (0 disables)")
	flag.Parse()

	fams, err := obs.ParseExposition(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: exposition does not parse: %v\n", err)
		os.Exit(1)
	}

	failed := false
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if fams[name] == nil {
				fmt.Fprintf(os.Stderr, "promcheck: required family %s missing\n", name)
				failed = true
			}
		}
	}
	if *maxCard > 0 {
		for name, f := range fams {
			if card := f.LabelCardinality(); card > *maxCard {
				fmt.Fprintf(os.Stderr, "promcheck: family %s has %d label sets (limit %d)\n", name, card, *maxCard)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d families ok\n", len(fams))
}
