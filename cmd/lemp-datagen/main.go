// Command lemp-datagen materializes the synthetic dataset profiles
// (calibrated to the paper's Table 1) as matrix files for use with the lemp
// CLI or external tools.
//
// Usage:
//
//	lemp-datagen -profile IE-NMF -out /tmp/ienmf        # writes .q and .p
//	lemp-datagen -profile KDD -scale 0.5 -format csv -out /tmp/kdd
package main

import (
	"flag"
	"fmt"
	"os"

	"lemp/internal/data"
	"lemp/internal/matrix"
)

func main() {
	profileName := flag.String("profile", "IE-SVD", "dataset profile (IE-NMF IE-SVD Netflix KDD, plus T-suffixed transposes)")
	out := flag.String("out", "", "output path prefix; writes <out>.q and <out>.p")
	format := flag.String("format", "bin", "output format: bin or csv")
	scale := flag.Float64("scale", 1.0, "size multiplier")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "lemp-datagen: -out is required")
		os.Exit(2)
	}
	profile, err := data.ByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lemp-datagen:", err)
		os.Exit(2)
	}
	if *scale != 1 {
		profile = profile.Scale(*scale)
	}
	fmt.Printf("generating %s: Q %dx%d, P %dx%d\n", profile.Name, profile.R, profile.M, profile.R, profile.N)
	q, p := profile.Generate()
	if err := writeMatrix(*out+".q", q, *format); err != nil {
		fmt.Fprintln(os.Stderr, "lemp-datagen:", err)
		os.Exit(1)
	}
	if err := writeMatrix(*out+".p", p, *format); err != nil {
		fmt.Fprintln(os.Stderr, "lemp-datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s.q and %s.p\n", *out, *out)
}

func writeMatrix(path string, m *matrix.Matrix, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "bin":
		return matrix.WriteBinary(f, m)
	case "csv":
		return matrix.WriteCSV(f, m)
	default:
		return fmt.Errorf("unknown format %q (bin or csv)", format)
	}
}
