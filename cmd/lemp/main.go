// Command lemp runs large-entry retrieval on factor-matrix files: the
// Above-θ problem (all entries of QᵀP at or above a threshold) or the
// Row-Top-k problem (the k largest entries per row).
//
// Matrices are read with format auto-detection (the library's LEMPMAT1
// binary format or CSV, one vector per line); generate inputs with
// lemp-datagen or bring your own factors. Retrieval fans out over all CPU
// cores by default; pass -parallel 1 to reproduce the paper's
// single-threaded measurements. Ctrl-C cancels a long run cleanly through
// the retrieval context.
//
// Usage:
//
//	lemp -q users.q -p items.p -topk 10                 # top-10 per user
//	lemp -q q.csv -p p.csv -theta 0.9 -out result.csv   # Above-θ
//	lemp -q q.csv -p p.csv -theta 0.9 -alg L2AP -stats
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"

	"lemp"
)

func main() {
	qPath := flag.String("q", "", "query matrix file (columns of Q as vectors)")
	pPath := flag.String("p", "", "probe matrix file (columns of P as vectors)")
	theta := flag.Float64("theta", 0, "Above-θ threshold (> 0); mutually exclusive with -topk")
	topk := flag.Int("topk", 0, "Row-Top-k: number of results per query; mutually exclusive with -theta")
	algName := flag.String("alg", "LI", "bucket algorithm: L LI LC I C TA Tree L2AP BLSH")
	phi := flag.Int("phi", 0, "fixed focus-set size φ (0 = tuned per bucket)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "retrieval goroutines (default all cores; use -parallel 1 for the paper's single-threaded setting)")
	approx := flag.Int("approx", 0, "approximate -topk via this many query clusters (0 = exact)")
	outPath := flag.String("out", "", "write results as CSV (query,probe,value); default stdout")
	stats := flag.Bool("stats", false, "print run statistics to stderr")
	flag.Parse()

	if *qPath == "" || *pPath == "" {
		fail("both -q and -p are required")
	}
	if (*theta > 0) == (*topk > 0) {
		fail("specify exactly one of -theta or -topk")
	}
	alg, err := lemp.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}

	q, err := lemp.LoadMatrix(*qPath)
	if err != nil {
		fail("loading %s: %v", *qPath, err)
	}
	p, err := lemp.LoadMatrix(*pPath)
	if err != nil {
		fail("loading %s: %v", *pPath, err)
	}

	index, err := lemp.New(p, lemp.Options{Phi: *phi})
	if err != nil {
		fail("building index: %v", err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail("creating %s: %v", *outPath, err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	writeEntry := func(e lemp.Entry) {
		w.WriteString(strconv.Itoa(e.Query))
		w.WriteByte(',')
		w.WriteString(strconv.Itoa(e.Probe))
		w.WriteByte(',')
		w.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
		w.WriteByte('\n')
	}

	// Interrupts cancel the retrieval context: the scan aborts at the next
	// bucket boundary instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One call, assembled from options: the mode plus per-call policy
	// (algorithm, parallelism, streaming/approximation).
	opts := []lemp.Option{lemp.WithAlgorithm(alg), lemp.WithParallelism(*parallel)}
	switch {
	case *theta > 0:
		if *approx > 0 {
			fail("-approx applies only to -topk")
		}
		opts = append(opts, lemp.AboveTheta(*theta), lemp.Stream(writeEntry))
	case *approx > 0:
		opts = append(opts, lemp.TopK(*topk), lemp.Approx(lemp.ApproxOptions{Clusters: *approx}))
	default:
		opts = append(opts, lemp.TopK(*topk))
	}
	res, err := index.Retrieve(ctx, q, opts...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "lemp: interrupted")
			os.Exit(130)
		}
		fail("%v", err)
	}
	for _, row := range res.TopK {
		for _, e := range row {
			writeEntry(e)
		}
	}
	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr,
			"queries=%d probes=%d buckets=%d results=%d candidates/query=%.1f\n"+
				"prep=%v tune=%v retrieval=%v total=%v\n",
			st.Queries, index.N(), st.Buckets, st.Results, st.CandidatesPerQuery(),
			st.PrepTime, st.TuneTime, st.RetrievalTime, st.TotalTime())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lemp: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
