package lemp_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"lemp"
)

// The public bulk wrappers must round-trip through the result file and
// agree with Retrieve on every row.
func TestBulkPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	p := lemp.NewMatrix(8, 300)
	p.FillRandom(rng)
	q := lemp.NewMatrix(8, 64)
	q.FillRandom(rng)
	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	dir := t.TempDir()
	out := filepath.Join(dir, "api.lempbrs")
	st, err := index.BulkTopK(context.Background(), lemp.BulkQueries(q), out, k, lemp.BulkOptions{
		PanelRows: 16, Checkpoint: filepath.Join(dir, "api.bulkck"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != q.N() || st.Panels != 4 {
		t.Fatalf("stats: %+v", st)
	}
	res, err := lemp.ReadBulkResults(out)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := index.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range want {
		// Both sides in the file's canonical order: value desc, probe asc.
		sortTopK(row)
		if !reflect.DeepEqual(res.Rows[i], row) {
			t.Fatalf("row %d: bulk %v retrieve %v", i, res.Rows[i], row)
		}
	}

	aboveOut := filepath.Join(dir, "above.lempbrs")
	if _, err := index.BulkAboveTheta(context.Background(), lemp.BulkQueries(q), aboveOut, 1.5, lemp.BulkOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := lemp.ReadBulkResults(aboveOut); err != nil {
		t.Fatal(err)
	}
}

// sortTopK reorders a Retrieve row into the bulk file's canonical order
// (value desc, probe asc) — Retrieve breaks value ties arbitrarily.
func sortTopK(row []lemp.Entry) {
	for i := 1; i < len(row); i++ {
		for j := i; j > 0; j-- {
			a, b := row[j-1], row[j]
			if a.Value > b.Value || (a.Value == b.Value && a.Probe <= b.Probe) {
				break
			}
			row[j-1], row[j] = b, a
		}
	}
}
