module lemp

go 1.24
