// Quickstart: the paper's running example (Fig. 1). A latent-factor model
// for four users and five movies, with r = 2 factors roughly meaning
// "action" and "romance". We retrieve (a) all predicted ratings above 3
// (Above-θ) and (b) each user's two best movies (Row-Top-k) — without
// computing the full rating matrix.
//
// Both problems go through the one context-aware entry point,
// Index.Retrieve, with the mode and any per-call policy given as
// functional options.
package main

import (
	"context"
	"fmt"
	"log"

	"lemp"
)

func main() {
	users := []string{"Adam", "Bob", "Charlie", "Dennis"}
	movies := []string{"Die Hard", "Taken", "Twilight", "Amelie", "Titanic"}

	// Columns of Q (user factors) and P (movie factors) from Fig. 1b.
	q, err := lemp.MatrixFromVectors([][]float64{
		{3.2, -0.4}, // Adam
		{3.1, -0.2}, // Bob
		{0, 1.8},    // Charlie
		{-0.4, 1.9}, // Dennis
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := lemp.MatrixFromVectors([][]float64{
		{1.6, 0.6}, // Die Hard
		{1.3, 0.8}, // Taken
		{0.7, 2.7}, // Twilight
		{1, 2.8},   // Amelie
		{0.4, 2.2}, // Titanic
	})
	if err != nil {
		log.Fatal(err)
	}

	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("Predicted ratings above 3.0:")
	res, err := index.Retrieve(ctx, q, lemp.AboveTheta(3.0))
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Entries {
		fmt.Printf("  %-8s -> %-9s %.1f\n", users[e.Query], movies[e.Probe], e.Value)
	}

	fmt.Println("\nTop-2 recommendations per user:")
	res, err = index.Retrieve(ctx, q, lemp.TopK(2))
	if err != nil {
		log.Fatal(err)
	}
	for u, row := range res.TopK {
		fmt.Printf("  %-8s", users[u])
		for _, e := range row {
			fmt.Printf(" %s (%.1f) ", movies[e.Probe], e.Value)
		}
		fmt.Println()
	}
}
