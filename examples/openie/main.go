// Open information extraction: the paper's second application (§1, Riedel
// et al.). Factor matrices in the shape of the paper's IE-NMF dataset
// (sparse, non-negative, strongly length-skewed — the statistics of an NMF
// factorization of an argument–pattern fact matrix) are searched for
// high-confidence facts: Above-θ retrieval, where an entry (i,j) ≥ θ means
// "pattern j is predicted to hold for argument pair i with high
// confidence". The example also shows why LEMP's bucket pruning shines on
// this workload: most fact vectors are short and are never touched.
package main

import (
	"fmt"
	"log"

	"lemp"
	"lemp/internal/data"
)

func main() {
	// IE-NMF at a laptop-friendly scale: ~5900 argument pairs (queries),
	// ~1000 patterns (probes), r = 50, CoV of probe lengths 5.53.
	profile, err := data.ByName("IE-NMF")
	if err != nil {
		log.Fatal(err)
	}
	profile = profile.Scale(0.5)
	fmt.Printf("generating %s-shaped factors (Q %dx%d, P %dx%d)...\n",
		profile.Name, profile.R, profile.M, profile.R, profile.N)
	q, p := profile.Generate()

	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe matrix bucketized into %d buckets\n", index.NumBuckets())

	// Retrieve all facts with predicted confidence ≥ θ for a sweep of
	// thresholds, streaming so the result set is never materialized.
	for _, theta := range []float64{8, 4, 2} {
		var count int64
		st, err := index.AboveThetaFunc(q, theta, func(lemp.Entry) { count++ })
		if err != nil {
			log.Fatal(err)
		}
		pairs := st.ProcessedPairs + st.PrunedPairs
		fmt.Printf("θ=%-4g %8d facts  %10v  candidates/query %7.1f  bucket prunes %4.1f%%\n",
			theta, count, st.TotalTime().Round(1000), st.CandidatesPerQuery(),
			100*float64(st.PrunedPairs)/float64(pairs))
	}

	// The same retrieval transposed: the paper's Row-Top-k IE experiment
	// finds the k most probable argument pairs per pattern, so P and Q
	// swap roles.
	fmt.Println("\ntop-5 argument pairs per pattern (transposed problem):")
	indexT, err := lemp.New(q, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	top, st, err := indexT.RowTopK(p, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved for %d patterns in %v (candidates/query %.1f of %d)\n",
		st.Queries, st.TotalTime().Round(1000), st.CandidatesPerQuery(), indexT.N())
	fmt.Printf("example: pattern 0 -> argument pairs %d, %d, %d ...\n",
		top[0][0].Probe, top[0][1].Probe, top[0][2].Probe)
}
