// Tuning: a look inside LEMP's algorithm selection (§4.4). The same
// workload runs under every bucket algorithm — selected per call with
// lemp.WithAlgorithm on one shared index — showing the trade-off the
// paper's Tables 5–6 measure: LENGTH verifies many candidates cheaply,
// INCR/COORD prune aggressively at some scanning cost, TA/Tree/L2AP/BLSH
// sit in between — and the mixed LI, which picks per bucket and per query,
// matches the best of them. The example also demonstrates fixing φ by
// hand, disabling the cache-size bucket limit, and reusing fitted tuning
// parameters across calls with a TuningCache (the serving-path win: repeat
// calls skip §4.4 sample tuning entirely).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lemp"
	"lemp/internal/data"
)

func main() {
	profile, err := data.ByName("IE-SVDT")
	if err != nil {
		log.Fatal(err)
	}
	profile = profile.Scale(0.35)
	fmt.Printf("dataset %s: Q %dx%d, P %dx%d\n",
		profile.Name, profile.R, profile.M, profile.R, profile.N)
	q, p := profile.Generate()
	const k = 10
	ctx := context.Background()

	// One index, nine algorithms: the bucket method is per-call policy.
	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-18s %12s %14s %10s\n", "algorithm", "tune+retr", "cands/query", "buckets")
	for _, name := range []string{"L", "C", "I", "LC", "LI", "TA", "Tree", "L2AP", "BLSH"} {
		alg, err := lemp.ParseAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := index.Retrieve(ctx, q, lemp.TopK(k), lemp.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		fmt.Printf("LEMP-%-13s %12v %14.1f %10d\n",
			name, (st.TuneTime + st.RetrievalTime).Round(1000), st.CandidatesPerQuery(), st.Buckets)
	}

	fmt.Println("\nfixed φ vs tuned φ_b (pure INCR):")
	for _, phi := range []int{1, 2, 3, 5, 0} {
		label := fmt.Sprintf("φ=%d", phi)
		if phi == 0 {
			label = "tuned"
		}
		index, err := lemp.New(p, lemp.Options{Algorithm: lemp.AlgorithmI, Phi: phi})
		if err != nil {
			log.Fatal(err)
		}
		res, err := index.Retrieve(ctx, q, lemp.TopK(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s total %12v  cands/query %10.1f\n",
			label, res.Stats.TotalTime().Round(1000), res.Stats.CandidatesPerQuery())
	}

	fmt.Println("\nper-bucket selections of the tuned LI run (first 8 buckets):")
	index, err = lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := index.Retrieve(ctx, q, lemp.TopK(k)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-8s %8s %10s %8s %6s\n", "bucket", "size", "max len", "t_b", "φ_b")
	for i, b := range index.Buckets() {
		if i == 8 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-8d %8d %10.3f %8.2f %6d\n", i, b.Size, b.MaxLength, b.TB, b.Phi)
	}

	fmt.Println("\ncache-aware vs cache-oblivious bucketization:")
	for _, cache := range []int{0, -1} {
		label := "cache-aware (2MiB budget)"
		if cache < 0 {
			label = "cache-oblivious (unbounded)"
		}
		index, err := lemp.New(p, lemp.Options{CacheBytes: cache})
		if err != nil {
			log.Fatal(err)
		}
		res, err := index.Retrieve(ctx, q, lemp.TopK(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %4d buckets, total %v\n", label, res.Stats.Buckets, res.Stats.TotalTime().Round(1000))
	}

	// Serving-style reuse: per-call tuning dominates small batches, and a
	// TuningCache removes it from every call after the first.
	fmt.Println("\ntuning reuse on a small batch (2 queries, k=10):")
	index, err = lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tc := lemp.NewTuningCache()
	small := q.Head(2)
	for _, call := range []string{"cold", "warm", "warm"} {
		start := time.Now()
		res, err := index.Retrieve(ctx, small, lemp.TopK(k), lemp.WithTuningCache(tc))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s call: %10v  (sample tunings: %d, cache hits: %d)\n",
			call, time.Since(start).Round(1000), res.Stats.Tunings, res.Stats.TuneCacheHits)
	}
}
