// Recommender: the paper's motivating application (§1). A synthetic
// Netflix-style feedback matrix is factorized with SGD (the same pipeline
// that produced the paper's Netflix dataset, which came from DSGD++), and
// LEMP retrieves the top-10 items per user from the learned factors —
// checked for exactness against brute force on a sample of users.
package main

import (
	"fmt"
	"log"
	"time"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/mf"
	"lemp/internal/vecmath"
)

func main() {
	const (
		users = 3000
		items = 1200
		rank  = 32
		k     = 10
	)
	fmt.Printf("generating feedback matrix (%d users × %d items)...\n", users, items)
	ratings, _, _ := data.GenerateRatings(data.RatingsConfig{
		Users: users, Items: items, Rank: 8, Density: 0.05, Noise: 0.3, Seed: 1,
	})
	fmt.Printf("  %d observed ratings\n", len(ratings))

	fmt.Printf("training rank-%d factorization with SGD...\n", rank)
	start := time.Now()
	model, err := mf.Train(ratings, users, items, mf.Config{
		Rank: rank, Epochs: 12, LearnRate: 0.015, Decay: 0.95, Reg: 0.05, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trained in %v, RMSE %.3f\n", time.Since(start).Round(time.Millisecond), model.RMSE(ratings))

	// Retrieval: columns of P are item factors, columns of Q user factors.
	index, err := lemp.New(model.Items, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	top, st, err := index.RowTopK(model.Users, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved top-%d for %d users in %v (candidates/query %.1f of %d items)\n",
		k, st.Queries, st.TotalTime().Round(time.Millisecond), st.CandidatesPerQuery(), items)

	fmt.Println("\nsample recommendations:")
	for _, u := range []int{0, 1, 2} {
		fmt.Printf("  user %d:", u)
		for _, e := range top[u][:3] {
			fmt.Printf(" item%d(%.2f)", e.Probe, e.Value)
		}
		fmt.Println(" ...")
	}

	// Exactness spot-check against brute force.
	fmt.Println("\nverifying against brute force on 50 sampled users...")
	for u := 0; u < 50; u++ {
		bestVal := bruteBest(model, u, items)
		if got := top[u][0].Value; !close(got, bestVal) {
			log.Fatalf("user %d: LEMP top-1 %.6f, brute force %.6f", u, got, bestVal)
		}
	}
	fmt.Println("  exact match.")
}

func bruteBest(m *mf.Model, user, items int) float64 {
	best := vecmath.Dot(m.Users.Vec(user), m.Items.Vec(0))
	for it := 1; it < items; it++ {
		if v := vecmath.Dot(m.Users.Vec(user), m.Items.Vec(it)); v > best {
			best = v
		}
	}
	return best
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
