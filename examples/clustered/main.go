// Clustered: the approximate Row-Top-k mode the paper cites as directly
// composable with LEMP (§5, Koenigstein et al.): cluster the query vectors,
// retrieve exactly only for the cluster centroids, and answer each query
// over its centroid's expanded candidate list. On workloads where queries
// share directions — users with similar tastes — this trades a little
// recall for a large reduction in retrieval work. The example sweeps the
// cluster count and reports recall against the exact answer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/vecmath"
)

func main() {
	const (
		groups = 24 // true taste groups in the synthetic user base
		users  = 4000
		items  = 2500
		r      = 32
		k      = 10
	)
	fmt.Printf("generating %d users in %d taste groups, %d items (r=%d)...\n",
		users, groups, items, r)
	rng := rand.New(rand.NewSource(1))
	q := lemp.NewMatrix(r, users)
	centers := lemp.NewMatrix(r, groups)
	for c := 0; c < groups; c++ {
		v := centers.Vec(c)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		vecmath.Normalize(v, v)
	}
	for i := 0; i < users; i++ {
		v := q.Vec(i)
		center := centers.Vec(rng.Intn(groups))
		for f := range v {
			v[f] = center[f] + 0.15*rng.NormFloat64()
		}
		vecmath.Scale(v, v, 0.5+2*rng.Float64())
	}
	p := data.GenerateVectors(rng, items, r, 0.8, 1, false)

	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	exact, exactStats, err := index.RowTopK(q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact Row-Top-%d: %v, %.0f candidates/query\n",
		k, exactStats.TotalTime().Round(1000), exactStats.CandidatesPerQuery())

	fmt.Printf("\n%-10s %12s %16s %8s\n", "clusters", "total", "cands/query", "recall")
	for _, clusters := range []int{4, 24, 96, 384} {
		approx, st, err := index.RowTopKApprox(q, k, lemp.ApproxOptions{
			Clusters: clusters, Expand: 8, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12v %16.1f %8.3f\n",
			clusters, st.TotalTime().Round(1000), st.CandidatesPerQuery(),
			lemp.Recall(exact, approx))
	}
	fmt.Println("\nrecall climbs toward 1 as the cluster count approaches the")
	fmt.Println("true group structure; candidate work stays far below exact.")
}
