package lemp_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lemp"
)

// genTestMatrix draws n random vectors of dimension r with lognormal
// lengths, the shape every retrieval test in this package uses.
func genTestMatrix(rng *rand.Rand, n, r int) *lemp.Matrix {
	m := lemp.NewMatrix(r, n)
	for i := 0; i < n; i++ {
		v := m.Vec(i)
		var norm2 float64
		for f := range v {
			v[f] = rng.NormFloat64()
			norm2 += v[f] * v[f]
		}
		scale := math.Exp(0.5*rng.NormFloat64()) / math.Sqrt(norm2)
		for f := range v {
			v[f] *= scale
		}
	}
	return m
}

func retrieveFixture(t *testing.T) (*lemp.Index, *lemp.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	p := genTestMatrix(rng, 400, 8)
	q := genTestMatrix(rng, 48, 8)
	ix, err := lemp.New(p, lemp.Options{MinBucketSize: 10, CacheBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return ix, q
}

// TestNewSpecValidation is the table-driven option-constructor check: every
// conflict and out-of-range parameter errors before any retrieval work.
func TestNewSpecValidation(t *testing.T) {
	emit := func(lemp.Entry) {}
	tc := lemp.NewTuningCache()
	cases := []struct {
		name    string
		opts    []lemp.Option
		wantErr string // substring; "" means the spec must validate
	}{
		{"topk", []lemp.Option{lemp.TopK(5)}, ""},
		{"above", []lemp.Option{lemp.AboveTheta(0.5)}, ""},
		{"everything-topk", []lemp.Option{lemp.TopK(5), lemp.WithAlgorithm(lemp.AlgorithmL), lemp.WithParallelism(2), lemp.WithTuningCache(tc), lemp.Approx(lemp.ApproxOptions{})}, ""},
		{"everything-above", []lemp.Option{lemp.AboveTheta(1), lemp.Stream(emit), lemp.WithParallelism(4), lemp.WithTuningCache(tc)}, ""},

		{"no-mode", nil, "no retrieval mode"},
		{"no-mode-options-only", []lemp.Option{lemp.WithParallelism(2)}, "no retrieval mode"},
		{"both-modes", []lemp.Option{lemp.TopK(5), lemp.AboveTheta(0.5)}, "mode already set"},
		{"both-modes-reversed", []lemp.Option{lemp.AboveTheta(0.5), lemp.TopK(5)}, "mode already set"},
		{"topk-twice", []lemp.Option{lemp.TopK(5), lemp.TopK(6)}, "mode already set"},

		{"zero-k", []lemp.Option{lemp.TopK(0)}, "k must be positive"},
		{"negative-k", []lemp.Option{lemp.TopK(-3)}, "k must be positive"},
		{"zero-theta", []lemp.Option{lemp.AboveTheta(0)}, "theta must be"},
		{"negative-theta", []lemp.Option{lemp.AboveTheta(-1)}, "theta must be"},
		{"nan-theta", []lemp.Option{lemp.AboveTheta(math.NaN())}, "theta must be"},
		{"inf-theta", []lemp.Option{lemp.AboveTheta(math.Inf(1))}, "theta must be"},

		{"zero-parallelism", []lemp.Option{lemp.TopK(5), lemp.WithParallelism(0)}, "parallelism must be"},
		{"negative-parallelism", []lemp.Option{lemp.TopK(5), lemp.WithParallelism(-1)}, "parallelism must be"},
		{"parallelism-twice", []lemp.Option{lemp.TopK(5), lemp.WithParallelism(2), lemp.WithParallelism(3)}, "given twice"},

		{"bad-algorithm", []lemp.Option{lemp.TopK(5), lemp.WithAlgorithm(lemp.Algorithm(99))}, "invalid algorithm"},
		{"algorithm-twice", []lemp.Option{lemp.TopK(5), lemp.WithAlgorithm(lemp.AlgorithmL), lemp.WithAlgorithm(lemp.AlgorithmC)}, "given twice"},

		{"nil-cache", []lemp.Option{lemp.TopK(5), lemp.WithTuningCache(nil)}, "non-nil cache"},
		{"nil-stream", []lemp.Option{lemp.AboveTheta(0.5), lemp.Stream(nil)}, "non-nil emit"},
		{"nil-option", []lemp.Option{lemp.TopK(5), nil}, "nil Option"},

		{"approx-with-above", []lemp.Option{lemp.AboveTheta(0.5), lemp.Approx(lemp.ApproxOptions{})}, "Approx applies only"},
		{"stream-with-topk", []lemp.Option{lemp.TopK(5), lemp.Stream(emit)}, "Stream applies only"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := lemp.NewSpec(c.opts...)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("NewSpec: unexpected error %v", err)
				}
				if spec == nil {
					t.Fatal("NewSpec returned nil spec without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("NewSpec accepted an invalid spec, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("NewSpec error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

// TestRetrieveRejectsBeforeWork asserts an invalid spec fails through
// Retrieve too, without touching the index.
func TestRetrieveRejectsBeforeWork(t *testing.T) {
	ix, q := retrieveFixture(t)
	if _, err := ix.Retrieve(context.Background(), q); err == nil {
		t.Fatal("Retrieve without a mode succeeded")
	}
	if _, err := ix.RetrieveSpec(context.Background(), q, nil); err == nil {
		t.Fatal("RetrieveSpec with nil spec succeeded")
	}
	if _, err := ix.RetrieveSpec(context.Background(), q, &lemp.Spec{}); err == nil {
		t.Fatal("RetrieveSpec with zero spec succeeded")
	}
}

// TestRetrieveMatchesLegacyWrappers is the differential check the
// acceptance criteria require: Retrieve and the legacy methods return
// byte-identical results in every mode.
func TestRetrieveMatchesLegacyWrappers(t *testing.T) {
	ix, q := retrieveFixture(t)
	ctx := context.Background()

	wantTop, _, err := ix.RowTopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Retrieve(ctx, q, lemp.TopK(10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.TopK, wantTop) {
		t.Fatal("Retrieve TopK differs from RowTopK")
	}
	if res.Entries != nil {
		t.Fatal("TopK mode filled Entries")
	}

	wantEnts, _, err := ix.AboveTheta(q, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err = ix.Retrieve(ctx, q, lemp.AboveTheta(0.8))
	if err != nil {
		t.Fatal(err)
	}
	lemp.SortEntries(wantEnts)
	lemp.SortEntries(res.Entries)
	if !reflect.DeepEqual(res.Entries, wantEnts) {
		t.Fatal("Retrieve AboveTheta differs from the AboveTheta method")
	}

	var streamed []lemp.Entry
	res, err = ix.Retrieve(ctx, q, lemp.AboveTheta(0.8), lemp.Stream(func(e lemp.Entry) { streamed = append(streamed, e) }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != nil {
		t.Fatal("streamed call materialized Entries")
	}
	lemp.SortEntries(streamed)
	if !reflect.DeepEqual(streamed, wantEnts) {
		t.Fatal("Stream entries differ from collected entries")
	}

	wantApprox, _, err := ix.RowTopKApprox(q, 5, lemp.ApproxOptions{Clusters: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err = ix.Retrieve(ctx, q, lemp.TopK(5), lemp.Approx(lemp.ApproxOptions{Clusters: 4, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.TopK, wantApprox) {
		t.Fatal("Retrieve Approx differs from RowTopKApprox")
	}
}

// TestRetrieveTuningCacheZeroWork is the acceptance criterion: Retrieve
// with WithTuningCache on a warm cache performs zero sample-tuning work,
// asserted via Stats, with byte-identical results.
func TestRetrieveTuningCacheZeroWork(t *testing.T) {
	ix, q := retrieveFixture(t)
	ctx := context.Background()
	tc := lemp.NewTuningCache()

	want, _, err := ix.RowTopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ix.Retrieve(ctx, q, lemp.TopK(10), lemp.WithTuningCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Tunings != 1 {
		t.Fatalf("cold call Tunings = %d, want 1", cold.Stats.Tunings)
	}
	warm, err := ix.Retrieve(ctx, q, lemp.TopK(10), lemp.WithTuningCache(tc))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Tunings != 0 || warm.Stats.TuneCacheHits != 1 || warm.Stats.TuneTime != 0 {
		t.Fatalf("warm call: Tunings=%d TuneCacheHits=%d TuneTime=%v, want 0/1/0",
			warm.Stats.Tunings, warm.Stats.TuneCacheHits, warm.Stats.TuneTime)
	}
	if !reflect.DeepEqual(cold.TopK, want) || !reflect.DeepEqual(warm.TopK, want) {
		t.Fatal("cached results differ from legacy RowTopK")
	}
}

// TestResultEpoch checks Result carries the mutation epoch it answered at.
func TestResultEpoch(t *testing.T) {
	ix, q := retrieveFixture(t)
	res, err := ix.Retrieve(context.Background(), q, lemp.TopK(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 0 {
		t.Fatalf("fresh index answered at epoch %d, want 0", res.Epoch)
	}
	if _, err := ix.AddProbe(q.Vec(0)); err != nil {
		t.Fatal(err)
	}
	res, err = ix.Retrieve(context.Background(), q, lemp.TopK(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("post-update call answered at epoch %d, want 1", res.Epoch)
	}
}

// TestRetrieveCancellation checks ctx.Err surfaces through the public API
// and the index survives.
func TestRetrieveCancellation(t *testing.T) {
	ix, q := retrieveFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.Retrieve(ctx, q, lemp.TopK(3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := ix.Retrieve(context.Background(), q, lemp.TopK(3)); err != nil {
		t.Fatalf("index unusable after cancellation: %v", err)
	}
}

// TestSnapshotRestoredPretuneSurvivesCompact is the satellite fix: a
// snapshot of a pretuned index retains the tuning sample, so a post-restore
// Compact re-freezes fitted per-bucket parameters instead of silently
// dropping to defaults.
func TestSnapshotRestoredPretuneSurvivesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := genTestMatrix(rng, 300, 8)
	q := genTestMatrix(rng, 32, 8)
	ix, err := lemp.New(p, lemp.Options{MinBucketSize: 10, CacheBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.PretuneTopK(q, 5); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Pretuned() {
		t.Fatal("restored index lost its pretuned state")
	}

	// Mutate enough to make Compact rebuild, then compact.
	for i := 0; i < 10; i++ {
		if _, err := restored.AddProbe(q.Vec(i)); err != nil {
			t.Fatal(err)
		}
	}
	restored.Compact()

	tuned := 0
	for _, b := range restored.Buckets() {
		if b.Tuned {
			tuned++
		}
	}
	if tuned == 0 {
		t.Fatal("post-restore Compact left every bucket untuned: the retained tuning sample was lost")
	}

	// Retrieval after the compacted restore reports zero tuning work
	// (still frozen) and matches a fresh build over the same live set.
	res, err := restored.Retrieve(context.Background(), q, lemp.TopK(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tunings != 0 {
		t.Fatalf("pretuned restored index re-tuned per call (Tunings=%d)", res.Stats.Tunings)
	}
	fresh, err := lemp.NewWithIDs(restored.Probe(), restored.ProbeIDs(), lemp.Options{MinBucketSize: 10, CacheBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.TopK, want) {
		t.Fatal("restored+compacted pretuned index differs from fresh build")
	}

	// Retune at load discards the retained sample along with the fit.
	retuned, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{Retune: true})
	if err != nil {
		t.Fatal(err)
	}
	if retuned.Pretuned() {
		t.Fatal("Retune load kept the frozen tuning state")
	}
}
