// Package mf implements a plain stochastic-gradient-descent matrix
// factorization with L2 regularization, the substrate that produces LEMP's
// input matrices in the paper's applications (§1, §6.1: the Netflix factors
// come from DSGD++ with L2 regularization).
//
// It factorizes a sparse feedback matrix D ≈ QᵀP, where columns of Q are
// user factors and columns of P are item factors. This is a single-machine,
// single-threaded SGD — enough to produce realistic factor matrices for the
// examples and tests; it is not a distributed trainer.
package mf

import (
	"errors"
	"math"
	"math/rand"

	"lemp/internal/data"
	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// Config controls SGD training.
type Config struct {
	Rank      int     // number of latent factors r
	Epochs    int     // passes over the ratings
	LearnRate float64 // initial SGD step size
	Decay     float64 // multiplicative step decay per epoch (e.g. 0.95)
	Reg       float64 // L2 regularization λ
	InitScale float64 // stddev of factor initialization (default 1/√Rank)
	Seed      int64
}

// Model holds trained factors. Users.Vec(u) is the factor vector of user u;
// Items.Vec(i) of item i.
type Model struct {
	Users *matrix.Matrix
	Items *matrix.Matrix
	// LossByEpoch records the regularized training objective after each
	// epoch (squared error + L2 terms), for convergence checks.
	LossByEpoch []float64
}

// Predict returns the model's predicted value for (user, item).
func (m *Model) Predict(user, item int) float64 {
	return vecmath.Dot(m.Users.Vec(user), m.Items.Vec(item))
}

// Train runs SGD over the ratings. users and items give the matrix
// dimensions (all indices in ratings must be in range).
func Train(ratings []data.Rating, users, items int, cfg Config) (*Model, error) {
	if cfg.Rank <= 0 {
		return nil, errors.New("mf: Rank must be positive")
	}
	if cfg.Epochs <= 0 {
		return nil, errors.New("mf: Epochs must be positive")
	}
	if cfg.LearnRate <= 0 {
		return nil, errors.New("mf: LearnRate must be positive")
	}
	if cfg.Decay == 0 {
		cfg.Decay = 1
	}
	if cfg.InitScale == 0 {
		cfg.InitScale = 1 / float64(cfg.Rank)
	}
	for _, rt := range ratings {
		if rt.User < 0 || rt.User >= users || rt.Item < 0 || rt.Item >= items {
			return nil, errors.New("mf: rating index out of range")
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Users: matrix.New(cfg.Rank, users), Items: matrix.New(cfg.Rank, items)}
	for i, d := 0, m.Users.Data(); i < len(d); i++ {
		d[i] = rng.NormFloat64() * cfg.InitScale
	}
	for i, d := 0, m.Items.Data(); i < len(d); i++ {
		d[i] = rng.NormFloat64() * cfg.InitScale
	}

	order := make([]int, len(ratings))
	for i := range order {
		order[i] = i
	}
	lr := cfg.LearnRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			rt := ratings[idx]
			qu := m.Users.Vec(rt.User)
			pi := m.Items.Vec(rt.Item)
			err := vecmath.Dot(qu, pi) - rt.Value
			for f := range qu {
				qf, pf := qu[f], pi[f]
				qu[f] -= lr * (err*pf + cfg.Reg*qf)
				pi[f] -= lr * (err*qf + cfg.Reg*pf)
			}
		}
		m.LossByEpoch = append(m.LossByEpoch, m.objective(ratings, cfg.Reg))
		lr *= cfg.Decay
	}
	return m, nil
}

// RMSE returns the root-mean-squared prediction error of the model on the
// given ratings.
func (m *Model) RMSE(ratings []data.Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	var se float64
	for _, rt := range ratings {
		d := m.Predict(rt.User, rt.Item) - rt.Value
		se += d * d
	}
	return math.Sqrt(se / float64(len(ratings)))
}

func (m *Model) objective(ratings []data.Rating, reg float64) float64 {
	var loss float64
	for _, rt := range ratings {
		d := m.Predict(rt.User, rt.Item) - rt.Value
		loss += d * d
	}
	loss += reg * (vecmath.Norm2(m.Users.Data()) + vecmath.Norm2(m.Items.Data()))
	return loss
}
