package mf

import (
	"testing"

	"lemp/internal/data"
)

func trainSmall(t *testing.T, cfg Config) (*Model, []data.Rating) {
	t.Helper()
	ratings, _, _ := data.GenerateRatings(data.RatingsConfig{
		Users: 60, Items: 50, Rank: 4, Density: 0.4, Noise: 0.05, Seed: 8,
	})
	m, err := Train(ratings, 60, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, ratings
}

func TestTrainReducesLoss(t *testing.T) {
	m, _ := trainSmall(t, Config{Rank: 8, Epochs: 15, LearnRate: 0.02, Reg: 0.01, Seed: 1})
	losses := m.LossByEpoch
	if len(losses) != 15 {
		t.Fatalf("%d loss entries", len(losses))
	}
	if losses[len(losses)-1] >= losses[0]*0.5 {
		t.Errorf("loss barely decreased: %g -> %g", losses[0], losses[len(losses)-1])
	}
}

func TestTrainFitsObservedRatings(t *testing.T) {
	m, ratings := trainSmall(t, Config{Rank: 8, Epochs: 30, LearnRate: 0.02, Reg: 0.005, Decay: 0.97, Seed: 2})
	rmse := m.RMSE(ratings)
	if rmse > 0.6 { // ratings live in [1,5]; a fit this loose means divergence
		t.Errorf("training RMSE %.3f too high", rmse)
	}
}

func TestFactorDimensions(t *testing.T) {
	m, _ := trainSmall(t, Config{Rank: 5, Epochs: 2, LearnRate: 0.01, Seed: 3})
	if m.Users.N() != 60 || m.Items.N() != 50 || m.Users.R() != 5 {
		t.Errorf("factor dims %dx%d / %dx%d", m.Users.R(), m.Users.N(), m.Items.R(), m.Items.N())
	}
}

func TestConfigValidation(t *testing.T) {
	ratings := []data.Rating{{User: 0, Item: 0, Value: 3}}
	if _, err := Train(ratings, 1, 1, Config{Rank: 0, Epochs: 1, LearnRate: 0.1}); err == nil {
		t.Error("Rank=0 accepted")
	}
	if _, err := Train(ratings, 1, 1, Config{Rank: 2, Epochs: 0, LearnRate: 0.1}); err == nil {
		t.Error("Epochs=0 accepted")
	}
	if _, err := Train(ratings, 1, 1, Config{Rank: 2, Epochs: 1, LearnRate: 0}); err == nil {
		t.Error("LearnRate=0 accepted")
	}
	bad := []data.Rating{{User: 5, Item: 0, Value: 3}}
	if _, err := Train(bad, 1, 1, Config{Rank: 2, Epochs: 1, LearnRate: 0.1}); err == nil {
		t.Error("out-of-range rating accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := Config{Rank: 4, Epochs: 3, LearnRate: 0.02, Reg: 0.01, Seed: 7}
	a, _ := trainSmall(t, cfg)
	b, _ := trainSmall(t, cfg)
	for i, x := range a.Users.Data() {
		if b.Users.Data()[i] != x {
			t.Fatal("training not deterministic")
		}
	}
}

func TestRMSEEmptyRatings(t *testing.T) {
	m, _ := trainSmall(t, Config{Rank: 3, Epochs: 1, LearnRate: 0.01, Seed: 4})
	if v := m.RMSE(nil); v != 0 {
		t.Errorf("RMSE(nil)=%g", v)
	}
}
