package quant_test

import (
	"math/rand"
	"testing"

	"lemp/internal/quant"
)

// Microbenchmarks for the screening hot path: the per-row cost of Screen8
// (batched head dot + fused cutoff predicate) is what the verifier pays per
// screened candidate, and UB8 is the same dot without the fused predicate.
// The full-dot kernels (DotQ8, ApproxBound) have benches in quant_test.go.
// Reported as ns/row for cross-run comparison.

const benchR, benchN = 100, 4096

func benchRows(tb testing.TB) (*quant.Rows, quant.Query) {
	tb.Helper()
	rng := rand.New(rand.NewSource(9))
	rows := make([]float64, benchN*benchR)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	q := make([]float64, benchR)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	qr := quant.QuantizeRows(rows, benchR)
	qq, ok := quant.QuantizeQuery(make([]int8, benchR), q)
	if !ok {
		tb.Fatal("query failed to quantize")
	}
	return qr, qq
}

func BenchmarkScreenUB8(b *testing.B) {
	qr, qq := benchRows(b)
	scr := qr.NewScreen(qq, 1)
	var dh [8]int32
	var ub [8]float64
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * 8) % (benchN - 8)
		scr.UB8(base, base+1, base+2, base+3, base+4, base+5, base+6, base+7, &dh, &ub)
		sink += ub[0]
	}
	_ = sink
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/8, "ns/row")
}

func BenchmarkScreen8(b *testing.B) {
	qr, qq := benchRows(b)
	scr := qr.NewScreen(qq, 1)
	var dh [8]int32
	lens := [8]float64{1, 0.5, 2, 1.5, 0.8, 1.2, 0.9, 1.1}
	var sink uint8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * 8) % (benchN - 8)
		sink ^= scr.Screen8(base, base+1, base+2, base+3, base+4, base+5, base+6, base+7,
			&lens, 10, &dh)
	}
	_ = sink
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/8, "ns/row")
}
