package quant_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lemp/internal/quant"
	"lemp/internal/vecmath"
)

// naiveDotQ8 is the reference for the unrolled kernel.
func naiveDotQ8(a, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

func TestDotQ8MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 100, 257} {
		a := make([]int8, r)
		b := make([]int8, r)
		for trial := 0; trial < 20; trial++ {
			for i := range a {
				a[i] = int8(rng.Intn(255) - 127)
				b[i] = int8(rng.Intn(255) - 127)
			}
			if got, want := quant.DotQ8(a, b), naiveDotQ8(a, b); got != want {
				t.Fatalf("r=%d: DotQ8 = %d, naive = %d", r, got, want)
			}
		}
	}
}

// TestBatchedKernelsMatchScalar: DotQ8x4 and ApproxBound4 exist only for
// speed — every batched result must be bit-identical to the scalar call.
func TestBatchedKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, r := range []int{1, 3, 4, 8, 16, 33, 64} {
		rows := make([]float64, 8*r)
		q := make([]float64, r)
		for trial := 0; trial < 10; trial++ {
			for i := range rows {
				rows[i] = rng.NormFloat64() * math.Exp(3*rng.NormFloat64())
			}
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			qr := quant.QuantizeRows(rows, r)
			qq, ok := quant.QuantizeQuery(make([]int8, r), q)
			if !ok {
				t.Fatalf("r=%d: query did not quantize", r)
			}
			var d [4]int32
			quant.DotQ8x4(qq.Codes, qr.Row(4), qr.Row(1), qr.Row(7), qr.Row(2), &d)
			for j, i := range [4]int{4, 1, 7, 2} {
				if want := quant.DotQ8(qq.Codes, qr.Row(i)); d[j] != want {
					t.Fatalf("r=%d: DotQ8x4[%d] = %d, DotQ8 = %d", r, j, d[j], want)
				}
			}
			var ap, bd [4]float64
			qr.ApproxBound4(qq, 3, 0, 6, 5, &ap, &bd)
			for j, i := range [4]int{3, 0, 6, 5} {
				wantA, wantB := qr.ApproxBound(qq, i)
				if ap[j] != wantA || bd[j] != wantB {
					t.Fatalf("r=%d row %d: ApproxBound4 = (%v, %v), ApproxBound = (%v, %v)",
						r, i, ap[j], bd[j], wantA, wantB)
				}
			}
			scr := qr.NewScreen(qq, 1)
			var dh [4]int32
			var ub [4]float64
			scr.UB4(2, 6, 0, 7, &dh, &ub)
			for j, i := range [4]int{2, 6, 0, 7} {
				wantH, wantU := scr.UB(i)
				if dh[j] != wantH || ub[j] != wantU {
					t.Fatalf("r=%d row %d: UB4 = (%d, %v), UB = (%d, %v)",
						r, i, dh[j], ub[j], wantH, wantU)
				}
			}
			var dh8 [8]int32
			var ub8 [8]float64
			scr.UB8(5, 2, 7, 0, 3, 6, 1, 4, &dh8, &ub8)
			for j, i := range [8]int{5, 2, 7, 0, 3, 6, 1, 4} {
				wantH, wantU := scr.UB(i)
				if dh8[j] != wantH || ub8[j] != wantU {
					t.Fatalf("r=%d row %d: UB8 = (%d, %v), UB = (%d, %v)",
						r, i, dh8[j], ub8[j], wantH, wantU)
				}
			}
			// Screen8's fused predicate must reach the same screen/survive
			// decision as UB followed by the caller-side multiply, across
			// cutoffs that land inside and outside the bound range.
			lens := [8]float64{0.3, 1.7, 0, 2.4, 0.9, 5.1, 1.0, 0.04}
			for _, cut := range []float64{-10, -0.1, 0, 0.1, 1, 10, math.Inf(1)} {
				var sdh [8]int32
				mask := scr.Screen8(5, 2, 7, 0, 3, 6, 1, 4, &lens, cut, &sdh)
				if sdh != dh8 {
					t.Fatalf("r=%d: Screen8 head dots %v, UB8 %v", r, sdh, dh8)
				}
				for j, i := range [8]int{5, 2, 7, 0, 3, 6, 1, 4} {
					_, u := scr.UB(i)
					want := uint8(1)
					if u*lens[j] < cut {
						want = 0
					}
					if got := (mask >> j) & 1; got != want {
						t.Fatalf("r=%d row %d cut %v: Screen8 keep = %d, UB predicate = %d",
							r, i, cut, got, want)
					}
				}
				lens4 := [4]float64{lens[0], lens[1], lens[2], lens[3]}
				var sdh4 [4]int32
				mask4 := scr.Screen4(5, 2, 7, 0, &lens4, cut, &sdh4)
				if [4]int32{sdh[0], sdh[1], sdh[2], sdh[3]} != sdh4 {
					t.Fatalf("r=%d: Screen4 head dots %v, Screen8 %v", r, sdh4, sdh)
				}
				if mask4 != mask&0x0f {
					t.Fatalf("r=%d cut %v: Screen4 mask %04b, Screen8 low bits %04b",
						r, cut, mask4, mask&0x0f)
				}
			}
		}
	}
}

func TestDotQ8SaturationNoOverflow(t *testing.T) {
	// The extreme case the int32 contract is sized for: every product is
	// 127·127 at the maximal supported dimension.
	r := quant.MaxDim
	a := make([]int8, r)
	b := make([]int8, r)
	for i := range a {
		a[i], b[i] = 127, 127
	}
	want := int64(127*127) * int64(r)
	if want > math.MaxInt32 {
		t.Fatalf("MaxDim contract broken: %d products overflow int32", r)
	}
	if got := quant.DotQ8(a, b); int64(got) != want {
		t.Fatalf("DotQ8 at saturation = %d, want %d", got, want)
	}
	for i := range b {
		b[i] = -127
	}
	if got := quant.DotQ8(a, b); int64(got) != -want {
		t.Fatalf("DotQ8 at negative saturation = %d, want %d", got, -want)
	}
}

// checkBracket asserts the screening contract for one (query, panel) pair:
// for every row, approx−bound ≤ Dot(q, row) ≤ approx+bound, where Dot is the
// exact float64 kernel the verifier runs. Non-finite rows must report an
// infinite bound (never screened). Returns false on violation.
func checkBracket(t *testing.T, q, rows []float64, r int) bool {
	t.Helper()
	qr := quant.QuantizeRows(rows, r)
	dst := make([]int8, r)
	qq, ok := quant.QuantizeQuery(dst, q)
	if !ok {
		// Unquantizable query: screening is off entirely; nothing to check.
		return true
	}
	scr := qr.NewScreen(qq, 1)
	// A second screen with a nontrivial emit factor: its bound must cover
	// the emit-scaled dot in the caller's multiply order.
	const emit = 2.5
	scrE := qr.NewScreen(qq, emit)
	for i := 0; i < qr.N(); i++ {
		approx, bound := qr.ApproxBound(qq, i)
		row := rows[i*r : (i+1)*r]
		exact := vecmath.Dot(q, row)
		head, ub := scr.UB(i)
		if _, ubE := scrE.UB(i); !math.IsNaN(exact) && emit*exact > ubE {
			t.Errorf("row %d: emit-folded bound %v below %v·exact = %v", i, ubE, emit, emit*exact)
			return false
		}
		if fa, fb := qr.FinishApproxBound(qq, i, head); fa != approx || fb != bound {
			t.Errorf("row %d: FinishApproxBound (%v, %v) != ApproxBound (%v, %v)",
				i, fa, fb, approx, bound)
			return false
		}
		if !math.IsNaN(exact) && exact > ub {
			t.Errorf("row %d: checkpoint bound %v below exact dot %v", i, ub, exact)
			return false
		}
		if math.IsInf(bound, 1) {
			continue // never screened: contract holds vacuously
		}
		finite := true
		for _, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				finite = false
			}
		}
		if !finite {
			t.Errorf("non-finite row %d got finite bound %v", i, bound)
			return false
		}
		if !(approx-bound <= exact && exact <= approx+bound) {
			t.Errorf("row %d: exact %v outside [%v, %v] (approx %v, bound %v)",
				i, exact, approx-bound, approx+bound, approx, bound)
			return false
		}
	}
	return true
}

func TestApproxBoundBracketsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Values spanning many magnitudes: quick's default float64 generator
	// only produces moderate values, so draw mantissa and exponent
	// separately to reach subnormals, huge values and saturation edges.
	genVal := func() float64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1:
			return float64(rng.Intn(255) - 127) // exact int8 lattice points
		default:
			return (rng.Float64()*2 - 1) * math.Pow(2, float64(rng.Intn(600)-300))
		}
	}
	for trial := 0; trial < 300; trial++ {
		r := 1 + rng.Intn(48)
		n := 1 + rng.Intn(6)
		rows := make([]float64, n*r)
		q := make([]float64, r)
		for i := range rows {
			rows[i] = genVal()
		}
		for i := range q {
			q[i] = genVal()
		}
		if !checkBracket(t, q, rows, r) {
			t.Fatalf("trial %d (r=%d, n=%d) violated the bracket", trial, r, n)
		}
	}
}

func TestApproxBoundQuickRandom(t *testing.T) {
	// testing/quick over its own generator as a second, independent source
	// of inputs (moderate magnitudes, adversarial bit patterns).
	f := func(qv, rv [16]float64) bool {
		return checkBracket(t, qv[:], rv[:], 16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxBoundAdversarialRows(t *testing.T) {
	r := 8
	mk := func(v float64) []float64 {
		row := make([]float64, r)
		for i := range row {
			row[i] = v
		}
		return row
	}
	cases := [][]float64{
		mk(0),                           // zero row
		mk(1),                           // constant row
		mk(-1),                          // negative constant
		mk(127),                         // int8 saturation value
		mk(127.5),                       // rounds past the lattice
		mk(math.MaxFloat64),             // scale at the float ceiling
		mk(math.SmallestNonzeroFloat64), // subnormal row
		mk(1e-300),                      // near the tiny slack
		mk(1e300),                       // huge but finite
		{1, -1, 127, -127, 0.5, -0.5, 126.9999, -0.0001},
		{math.MaxFloat64, -math.MaxFloat64, 1, -1, 0, 0, 0, 0},
	}
	rows := make([]float64, 0, len(cases)*r)
	for _, c := range cases {
		rows = append(rows, c...)
	}
	queries := [][]float64{
		mk(0), mk(1), mk(-1), mk(0.007),
		{1, 2, 3, 4, -4, -3, -2, -1},
		mk(1e-200), mk(1e200),
	}
	for _, q := range queries {
		if !checkBracket(t, q, rows, r) {
			t.Fatalf("adversarial case violated the bracket for query %v", q[:2])
		}
	}
}

func TestNonFiniteRowsNeverScreened(t *testing.T) {
	r := 4
	rows := []float64{
		1, 2, 3, 4,
		math.NaN(), 1, 1, 1,
		math.Inf(1), 0, 0, 0,
		0, math.Inf(-1), 0, 0,
	}
	qr := quant.QuantizeRows(rows, r)
	if !math.IsInf(qr.Resid[1], 1) || !math.IsInf(qr.Resid[2], 1) || !math.IsInf(qr.Resid[3], 1) {
		t.Fatalf("non-finite rows must carry infinite residuals, got %v", qr.Resid)
	}
	dst := make([]int8, r)
	qq, ok := quant.QuantizeQuery(dst, []float64{1, 1, 1, 1})
	if !ok {
		t.Fatal("finite query failed to quantize")
	}
	for i := 1; i < 4; i++ {
		approx, bound := qr.ApproxBound(qq, i)
		if approx != 0 || !math.IsInf(bound, 1) {
			t.Fatalf("row %d: want (0, +Inf), got (%v, %v)", i, approx, bound)
		}
		// The screening predicate "upper bound < cut" must be false for
		// every cut, including +Inf and NaN.
		for _, cut := range []float64{-1, 0, 1e300, math.Inf(1)} {
			if approx+bound < cut {
				t.Fatalf("row %d screened at cut %v", i, cut)
			}
		}
	}
}

func TestNonFiniteQueryDisablesScreening(t *testing.T) {
	r := 4
	dst := make([]int8, r)
	for _, q := range [][]float64{
		{math.NaN(), 0, 0, 0},
		{math.Inf(1), 1, 1, 1},
		{1, math.Inf(-1), 1, 1},
	} {
		if _, ok := quant.QuantizeQuery(dst, q); ok {
			t.Fatalf("non-finite query %v must not quantize", q)
		}
	}
	if _, ok := quant.QuantizeQuery(nil, nil); ok {
		t.Fatal("empty query must not quantize")
	}
}

func TestQuantizeRowsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, n := 24, 50
	rows := make([]float64, n*r)
	for i := range rows {
		rows[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
	}
	a := quant.QuantizeRows(rows, r)
	b := quant.QuantizeRows(rows, r)
	for i := range a.Scales {
		if a.Scales[i] != b.Scales[i] || a.Resid[i] != b.Resid[i] || a.Norm[i] != b.Norm[i] {
			t.Fatalf("row %d: quantization not deterministic", i)
		}
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatalf("code %d differs across runs", i)
		}
	}
}

func TestRowsAccessors(t *testing.T) {
	rows := []float64{1, 2, 3, 4, 5, 6}
	qr := quant.QuantizeRows(rows, 3)
	if qr.R() != 3 || qr.N() != 2 {
		t.Fatalf("R/N = %d/%d, want 3/2", qr.R(), qr.N())
	}
	if len(qr.Row(1)) != 3 {
		t.Fatalf("Row(1) len %d", len(qr.Row(1)))
	}
	wantBytes := 6 + 8*(2+2+2+2+2*2)
	if qr.Bytes() != wantBytes {
		t.Fatalf("Bytes = %d, want %d", qr.Bytes(), wantBytes)
	}
	var nilRows *quant.Rows
	if nilRows.Bytes() != 0 {
		t.Fatal("nil Rows must report 0 bytes")
	}
}

func TestQuantizeRowsPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero dim", func() { quant.QuantizeRows(nil, 0) }},
		{"over MaxDim", func() { quant.QuantizeRows(make([]float64, quant.MaxDim+1), quant.MaxDim+1) }},
		{"ragged", func() { quant.QuantizeRows(make([]float64, 7), 3) }},
		{"dotq8 len", func() { quant.DotQ8(make([]int8, 3), make([]int8, 4)) }},
		{"query buf", func() { quant.QuantizeQuery(make([]int8, 2), make([]float64, 3)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestScreeningIsUseful(t *testing.T) {
	// The bound must not only be sound but tight enough to screen: for a
	// well-scaled catalog, a candidate whose true dot is far below a
	// threshold must actually be screenable.
	rng := rand.New(rand.NewSource(4))
	r := 32
	n := 256
	rows := make([]float64, n*r)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	// Normalize rows to unit length, like core quantizes bucket directions.
	for i := 0; i < n; i++ {
		row := rows[i*r : (i+1)*r]
		vecmath.Normalize(row, row)
	}
	qr := quant.QuantizeRows(rows, r)
	q := make([]float64, r)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	vecmath.Normalize(q, q)
	dst := make([]int8, r)
	qq, ok := quant.QuantizeQuery(dst, q)
	if !ok {
		t.Fatal("unit query failed to quantize")
	}
	theta := 0.5 // high threshold for unit vectors: most dots are far below
	screened := 0
	for i := 0; i < n; i++ {
		approx, bound := qr.ApproxBound(qq, i)
		if approx+bound < theta {
			screened++
			if exact := vecmath.Dot(q, rows[i*r:(i+1)*r]); exact >= theta {
				t.Fatalf("row %d screened but exact dot %v ≥ θ", i, exact)
			}
		}
	}
	if screened < n/2 {
		t.Fatalf("bound too loose: only %d/%d unit rows screened at θ=%v", screened, n, theta)
	}
}

func BenchmarkDotQ8(b *testing.B) {
	for _, r := range []int{16, 64, 256} {
		x := make([]int8, r)
		y := make([]int8, r)
		rng := rand.New(rand.NewSource(5))
		for i := range x {
			x[i] = int8(rng.Intn(255) - 127)
			y[i] = int8(rng.Intn(255) - 127)
		}
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.SetBytes(int64(2 * r))
			var sink int32
			for i := 0; i < b.N; i++ {
				sink += quant.DotQ8(x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkDotQ8x4(b *testing.B) {
	for _, r := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(5))
		q := make([]int8, r)
		rows := make([]int8, 4*r)
		for i := range q {
			q[i] = int8(rng.Intn(255) - 127)
		}
		for i := range rows {
			rows[i] = int8(rng.Intn(255) - 127)
		}
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.SetBytes(int64(5 * r))
			var out [4]int32
			for i := 0; i < b.N; i++ {
				quant.DotQ8x4(q, rows[0:r], rows[r:2*r], rows[2*r:3*r], rows[3*r:4*r], &out)
			}
			_ = out
		})
	}
}

func BenchmarkApproxBound4(b *testing.B) {
	for _, r := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(6))
		n := 1024
		rows := make([]float64, n*r)
		for i := range rows {
			rows[i] = rng.NormFloat64()
		}
		qr := quant.QuantizeRows(rows, r)
		q := make([]float64, r)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		qq, _ := quant.QuantizeQuery(make([]int8, r), q)
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var ap, bd [4]float64
			var sink float64
			for i := 0; i < b.N; i++ {
				j := (i * 4) % (n - 4)
				qr.ApproxBound4(qq, j, j+1, j+2, j+3, &ap, &bd)
				sink += ap[0] + bd[3]
			}
			_ = sink
		})
	}
}

func BenchmarkApproxBound(b *testing.B) {
	for _, r := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(6))
		n := 1024
		rows := make([]float64, n*r)
		for i := range rows {
			rows[i] = rng.NormFloat64()
		}
		qr := quant.QuantizeRows(rows, r)
		q := make([]float64, r)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		dst := make([]int8, r)
		qq, _ := quant.QuantizeQuery(dst, q)
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				a, bd := qr.ApproxBound(qq, i%n)
				sink += a + bd
			}
			_ = sink
		})
	}
}
