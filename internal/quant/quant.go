// Package quant implements the int8 sidecar used to screen verification
// candidates before the exact f64 kernels run. Exact verification is
// memory-bandwidth-bound: every candidate that survives bucket pruning
// streams its full float64 row through the cache even when its product ends
// far below the threshold. A per-row symmetric int8 quantization (scale =
// maxabs/127) shrinks a row 8×; a cheap int8 dot against the quantized
// query, widened by a provably conservative error bound, rules most losers
// out while touching only the sidecar — survivors fall through to the exact
// kernels, so exact results never change.
//
// # The bound
//
// Write the query as q = q̂ + e_q and a row as p = p̂ + e_p, where
// q̂ = qscale·qcodes and p̂ = scale·codes are the dequantized vectors and
// e_q, e_p the quantization residuals. Then
//
//	qᵀp − q̂ᵀp̂ = q̂ᵀe_p + e_qᵀp̂ + e_qᵀe_p,
//
// so by Cauchy–Schwarz
//
//	|qᵀp − q̂ᵀp̂| ≤ ‖q̂‖·‖e_p‖ + ‖e_q‖·(‖p̂‖ + ‖e_p‖).
//
// ApproxBound evaluates q̂ᵀp̂ exactly (an integer dot times two scales; the
// integer fits float64 for every supported dimension) and returns that
// Cauchy–Schwarz bound widened by three float-rounding allowances: the
// stored norms and residuals are inflated upper bounds of the true values,
// a term of order r·2⁻⁵³·‖q‖·‖p‖ covers the accumulation rounding of the
// exact float64 Dot the bound must bracket (the screening contract is
// against what vecmath.Dot computes, not against the mathematical product),
// and the bound's own arithmetic is inflated once more. The contract, which
// quant_test.go property-checks over adversarial inputs:
//
//	approx − bound ≤ Dot(q, row_i) ≤ approx + bound
//
// for all finite inputs; whenever a quantity overflows or an input is
// non-finite, ApproxBound returns (0, +Inf), which no screening predicate
// of the form "upper bound below cutoff" can ever discard.
//
// # The checkpoint
//
// A full int8 dot costs the same arithmetic per element as the exact f64
// kernels, so screening with it only breaks even. The screen therefore runs
// a remaining-mass checkpoint first (the SpAMM idea): compute the integer
// dot over a head prefix of HeadLen(r) dimensions and bound the untouched
// tail by Cauchy–Schwarz on precomputed integer code norms,
//
//	d_tail ≤ ‖q̂codes[h:]‖ · ‖codes_i[h:]‖,
//
// both sides exact integer sums, stored inflated. Screen.UB turns that into
// an upper bound on the exact dot using only h of r multiply-adds; a
// candidate whose checkpoint bound already falls below the cutoff is
// screened at a fraction of the exact kernel's cost, and survivors finish
// the remaining dimensions (FinishApproxBound — bit-identical to the full
// ApproxBound, integer arithmetic being grouping-insensitive). The
// checkpoint bites when code mass concentrates in the head prefix — the
// natural shape of SVD/NMF factor matrices, whose dimensions come ordered
// by singular value.
//
// The checkpoint runs once per candidate, so its latency chain is the
// screen's cost floor; it is therefore evaluated as naked linear arithmetic
// over per-query constants (hoisted into Screen) and per-row constants
// (precomputed at quantization time), with every rounding it commits
// absorbed by the screenSlack·‖q‖·‖p‖ term rather than per-step inflation:
// each of its ~10 roundings errs by at most one ulp of a quantity bounded
// by ‖q‖·‖p‖ (every factor pair is norm-dominated), and screenSlack
// reserves dozens of ulps beyond what the dot-accumulation bound needs.
package quant

import "math"

// MaxDim is the largest row dimension the sidecar supports: DotQ8
// accumulates int8 products in an int32, and 127²·2¹⁷ is the largest
// power-of-two multiple of the maximal product still below 2³¹. Callers
// must not quantize wider rows (core simply disables screening there).
const MaxDim = 1 << 17

// ulp is the double-precision unit roundoff 2⁻⁵³.
const ulp = 1.0 / (1 << 53)

// tiny is an absolute slack folded into every inflated bound, dominating
// the absolute error of underflowed arithmetic. The worst case is a norm:
// every squared term of a sum can underflow to zero (true value just below
// the subnormal step 2⁻¹⁰⁷⁴), and the square root turns that absolute sum
// error of r·2⁻¹⁰⁷⁴ into an absolute norm error of √(r·2⁻¹⁰⁷⁴) ≤ 10⁻¹⁵⁸
// for r ≤ MaxDim. 10⁻¹⁵⁰ dominates it with margin while staying
// astronomically below any dot product a screening threshold could target.
const tiny = 1e-150

// HeadLen returns the checkpoint prefix length for dimension r: the number
// of leading dimensions Screen.UB dots exactly before bounding the rest by
// remaining mass. A sixth of the dimensions, floored at 16 — below that the
// per-candidate bound arithmetic costs more than the skipped multiply-adds,
// while on spectrally decaying data (the shape the checkpoint targets) the
// dims past r/6 add little discrimination per multiply-add — and capped at
// r, where the checkpoint degenerates to the full dot (tail norms are zero
// and the checkpoint equals ApproxBound's upper edge). Deterministic in r
// alone so QuantizeQuery and QuantizeRows agree without coordination.
func HeadLen(r int) int {
	h := r / 6
	if h < 16 {
		h = 16
	}
	if h > r {
		h = r
	}
	return h
}

// Rows is the int8 sidecar of one contiguous row-panel (in core: one
// bucket's normalized directions): per row a scale, the quantized codes,
// and inflated upper bounds on the quantization residual norm ‖e_p‖ and
// the dequantized norm ‖p̂‖.
type Rows struct {
	r    int
	n    int
	head int // checkpoint prefix length, HeadLen(r)

	// Scales[i] is row i's quantization step (maxabs/127; 0 for a zero
	// row). Codes holds the int8 payload, row-major (n × r), every value
	// in [-127, 127]. Resid[i] ≥ ‖row_i − Scales[i]·Codes_i‖ and
	// Norm[i] ≥ ‖Scales[i]·Codes_i‖ are the bound inputs; a row holding a
	// non-finite value gets Resid[i] = +Inf and is never screened.
	// TailNorm[i] ≥ ‖Codes_i[head:]‖ (integer code units, derived from
	// Codes — recomputed on load, never persisted) feeds the checkpoint's
	// remaining-mass bound.
	Scales   []float64
	Codes    []int8
	Resid    []float64
	Norm     []float64
	TailNorm []float64

	// screen interleaves the two per-row checkpoint constants —
	// screen[2i] = Scales[i] and screen[2i+1] = Scales[i]·TailNorm[i],
	// the remaining-mass factor — so the hot predicate touches one cache
	// line per row instead of two arrays. The fused factor is NaN for
	// non-finite rows, poisoning the checkpoint bound to +Inf so they are
	// never screened. maxResid and maxNormUB are the largest finite
	// Resid[i] and Norm[i]+Resid[i] across the panel: the checkpoint
	// substitutes them for the per-row values (a sound
	// over-approximation), shrinking the per-candidate work to one fused
	// constant — the exact path then verifies the few borderline
	// candidates the per-row bound would have screened.
	screen    []float64
	maxResid  float64
	maxNormUB float64
}

// R returns the row dimension.
func (qr *Rows) R() int { return qr.r }

// N returns the number of rows.
func (qr *Rows) N() int { return qr.n }

// Row returns the int8 codes of row i.
func (qr *Rows) Row(i int) []int8 {
	return qr.Codes[i*qr.r : (i+1)*qr.r : (i+1)*qr.r]
}

// Bytes returns the sidecar's memory footprint: codes plus the per-row
// float64 arrays (bound inputs and the interleaved checkpoint constants).
func (qr *Rows) Bytes() int {
	if qr == nil {
		return 0
	}
	return len(qr.Codes) + 8*(len(qr.Scales)+len(qr.Resid)+len(qr.Norm)+len(qr.TailNorm)+len(qr.screen))
}

// sumSlack bounds the relative error of a float64 sum of r nonnegative
// products followed by a square root, with a wide safety margin.
func sumSlack(r int) float64 { return 4 * float64(r+8) * ulp }

// dotSlack bounds |Dot(q,p) − qᵀp| relative to ‖q‖·‖p‖ for the float64
// accumulation order vecmath.Dot uses (error ≤ γ_r·Σ|q_i p_i| with
// γ_r ≈ r·2⁻⁵³; the constant is generous to cover unrolled groupings).
func dotSlack(r int) float64 { return 4 * float64(r+8) * ulp }

// inflate widens a computed upper bound so that its own floating-point
// rounding cannot make it undershoot: rel must dominate the relative error
// of the computation that produced x.
func inflate(x, rel float64) float64 { return x + x*rel + tiny }

// QuantizeRows builds the sidecar of a contiguous row-major panel holding
// len(rows)/r rows of dimension r. r must be in [1, MaxDim] and divide
// len(rows); QuantizeRows panics otherwise (a programming error). Zero rows
// quantize to scale 0 with zero residual; rows holding NaN or ±Inf get an
// infinite residual bound, so they always survive screening and reach the
// exact path.
func QuantizeRows(rows []float64, r int) *Rows {
	if r < 1 || r > MaxDim {
		panic("quant: QuantizeRows dimension out of [1, MaxDim]")
	}
	if len(rows)%r != 0 {
		panic("quant: QuantizeRows panel size not a multiple of the dimension")
	}
	n := len(rows) / r
	qr := &Rows{
		r:        r,
		n:        n,
		head:     HeadLen(r),
		Scales:   make([]float64, n),
		Codes:    make([]int8, n*r),
		Resid:    make([]float64, n),
		Norm:     make([]float64, n),
		TailNorm: make([]float64, n),
		screen:   make([]float64, 2*n),
	}
	for i := 0; i < n; i++ {
		row := rows[i*r : (i+1)*r]
		codes := qr.Codes[i*r : (i+1)*r]
		qr.Scales[i], qr.Resid[i], qr.Norm[i] = quantizeRow(codes, row)
		qr.TailNorm[i] = codeNormUB(codes[qr.head:])
		qr.screen[2*i] = qr.Scales[i]
		if math.IsInf(qr.Resid[i], 1) {
			qr.screen[2*i+1] = math.NaN()
			continue
		}
		qr.screen[2*i+1] = qr.Scales[i] * qr.TailNorm[i]
		if qr.Resid[i] > qr.maxResid {
			qr.maxResid = qr.Resid[i]
		}
		if ub := qr.Norm[i] + qr.Resid[i]; ub > qr.maxNormUB {
			qr.maxNormUB = ub
		}
	}
	return qr
}

// codeNormUB returns an inflated upper bound on the Euclidean norm of an
// int8 code slice. The squared sum is an integer below 127²·MaxDim < 2⁵³,
// so every addition is exact and only the square root rounds — 4 ulp of
// relative inflation dominates it. A zero slice returns exactly 0, keeping
// the degenerate checkpoint (head == r) tight.
func codeNormUB(codes []int8) float64 {
	var s float64
	for _, c := range codes {
		s += float64(c) * float64(c)
	}
	n := math.Sqrt(s)
	return n + n*(4*ulp)
}

// quantizeRow fills codes with the symmetric int8 quantization of row and
// returns (scale, residual-norm upper bound, dequantized-norm upper bound).
func quantizeRow(codes []int8, row []float64) (scale, resid, norm float64) {
	maxabs := 0.0
	for _, x := range row {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// Non-finite row: no usable quantization. Zero codes, infinite
			// residual — ApproxBound returns (0, +Inf) and the row is never
			// screened.
			for j := range codes {
				codes[j] = 0
			}
			return 0, math.Inf(1), 0
		}
		if a := math.Abs(x); a > maxabs {
			maxabs = a
		}
	}
	if maxabs == 0 {
		for j := range codes {
			codes[j] = 0
		}
		return 0, 0, 0
	}
	scale = maxabs / 127
	if math.IsInf(scale, 0) || scale == 0 {
		// maxabs/127 overflowed or underflowed to a degenerate step (maxabs
		// near the float64 extremes); treat like a non-finite row.
		for j := range codes {
			codes[j] = 0
		}
		return 0, math.Inf(1), 0
	}
	// Quantize by reciprocal multiply: a division per coordinate costs
	// several times a multiply and this loop runs per query on the serving
	// path. The code choice itself carries no soundness weight — the
	// residual bound below is computed from the codes actually stored, so
	// any rounding of the quotient only moves error between the code and
	// the (exactly accounted) residual. The reciprocal overflows only for
	// subnormal scales; fall back to division there.
	inv := 1 / scale
	div := math.IsInf(inv, 0)
	var sumd, sumq float64
	for j, x := range row {
		var c float64
		if div {
			c = math.RoundToEven(x / scale)
		} else {
			c = math.RoundToEven(x * inv)
		}
		// The quotient can round a full-scale coordinate past ±127
		// (|x| == maxabs gives exactly ±127 only when it is exact); clamp
		// so the code always fits the int8 contract.
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		codes[j] = int8(c)
		deq := scale * c
		d := x - deq
		sumd += d * d
		sumq += deq * deq
	}
	slack := sumSlack(len(row))
	norm = inflate(math.Sqrt(sumq), slack)
	// ‖e_p‖ in exact arithmetic differs from the computed ‖d‖ by at most
	// the rounding of scale·c and of the subtraction, each ≤ 2⁻⁵³ relative
	// to the dequantized coordinate — covered by the 4·2⁻⁵²·‖p̂‖ term.
	resid = inflate(math.Sqrt(sumd)+4*(2*ulp)*norm, slack)
	if math.IsNaN(resid) || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return 0, math.Inf(1), 0
	}
	return scale, resid, norm
}

// Query is a quantized query vector: the same per-vector symmetric scheme,
// with the codes kept in a caller-owned buffer so steady-state retrieval
// quantizes queries without allocating.
type Query struct {
	Scale    float64
	Codes    []int8
	Resid    float64 // upper bound on ‖q − Scale·Codes‖
	Norm     float64 // upper bound on ‖Scale·Codes‖
	TailNorm float64 // upper bound on ‖Codes[HeadLen(r):]‖, integer code units
}

// QuantizeQuery quantizes q into the caller's dst buffer (len(dst) must be
// len(q); QuantizeQuery panics otherwise). ok is false when q holds a
// non-finite value or its magnitude defeats quantization — callers must
// then skip screening entirely and verify every candidate exactly.
func QuantizeQuery(dst []int8, q []float64) (qq Query, ok bool) {
	if len(dst) != len(q) {
		panic("quant: QuantizeQuery buffer size does not match the query dimension")
	}
	if len(q) == 0 || len(q) > MaxDim {
		return Query{}, false
	}
	scale, resid, norm := quantizeRow(dst, q)
	if math.IsInf(resid, 0) {
		return Query{}, false
	}
	return Query{
		Scale:    scale,
		Codes:    dst,
		Resid:    resid,
		Norm:     norm,
		TailNorm: codeNormUB(dst[HeadLen(len(q)):]),
	}, true
}

// DotQ8 returns the integer inner product of two int8 code vectors. The
// slices must have equal length ≤ MaxDim with values in [-127, 127], as
// QuantizeRows and QuantizeQuery produce; within that contract the int32
// accumulators cannot overflow. Unrolled by four with independent
// accumulator chains, mirroring the float64 kernels in internal/vecmath.
func DotQ8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("quant: DotQ8 on code vectors of unequal length")
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	var s int32
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s + s0 + s1 + s2 + s3
}

// DotQ8x4 computes four integer inner products of q against four code rows
// at once, one independent accumulator chain per row with the shared query
// loads amortized — the int8 mirror of vecmath.Dot4. Each out[j] is exactly
// DotQ8(q, pj) (integer arithmetic; no grouping sensitivity). All rows must
// have len(q) elements; DotQ8x4 panics otherwise.
func DotQ8x4(q, p0, p1, p2, p3 []int8, out *[4]int32) {
	r := len(q)
	if len(p0) != r || len(p1) != r || len(p2) != r || len(p3) != r {
		panic("quant: DotQ8x4 on code vectors of unequal length")
	}
	p0, p1, p2, p3 = p0[:r], p1[:r], p2[:r], p3[:r]
	var s0, s1, s2, s3 int32
	for i, c := range q {
		qc := int32(c)
		s0 += qc * int32(p0[i])
		s1 += qc * int32(p1[i])
		s2 += qc * int32(p2[i])
		s3 += qc * int32(p3[i])
	}
	out[0], out[1], out[2], out[3] = s0, s1, s2, s3
}

// ApproxBound returns the quantized estimate of Dot(q, row_i) and a
// conservative radius: approx−bound ≤ Dot(q, row_i) ≤ approx+bound, where
// Dot is the float64 kernel result, not the mathematical product. When any
// input is non-finite or an intermediate overflows, it returns (0, +Inf) —
// a candidate that can never be screened. Pure arithmetic over the sidecar;
// no allocation, no f64 row access.
func (qr *Rows) ApproxBound(qq Query, i int) (approx, bound float64) {
	return qr.boundFromDot(qq, i, float64(DotQ8(qq.Codes, qr.Row(i))))
}

// ApproxBound4 is ApproxBound for four rows at once, with the integer dots
// computed by the batched DotQ8x4 kernel. Each (approx[j], bound[j]) pair is
// identical to the corresponding scalar ApproxBound call: the integer dots
// are grouping-insensitive and the bound arithmetic is shared.
func (qr *Rows) ApproxBound4(qq Query, i0, i1, i2, i3 int, approx, bound *[4]float64) {
	var d [4]int32
	DotQ8x4(qq.Codes, qr.Row(i0), qr.Row(i1), qr.Row(i2), qr.Row(i3), &d)
	approx[0], bound[0] = qr.boundFromDot(qq, i0, float64(d[0]))
	approx[1], bound[1] = qr.boundFromDot(qq, i1, float64(d[1]))
	approx[2], bound[2] = qr.boundFromDot(qq, i2, float64(d[2]))
	approx[3], bound[3] = qr.boundFromDot(qq, i3, float64(d[3]))
}

// boundFromDot evaluates the scales and the Cauchy–Schwarz bound for row i
// given its raw integer dot against the query codes.
func (qr *Rows) boundFromDot(qq Query, i int, dq float64) (approx, bound float64) {
	approx = qq.Scale * qr.Scales[i] * dq
	bound = qr.boundOnly(qq, i)
	if math.IsInf(approx, 0) || math.IsNaN(approx) || math.IsNaN(bound) {
		return 0, math.Inf(1)
	}
	return approx, bound
}

// boundOnly evaluates the dot-independent part of the bracket: the
// Cauchy–Schwarz quantization-residual bound plus the float-rounding
// allowances.
func (qr *Rows) boundOnly(qq Query, i int) float64 {
	pNorm := qr.Norm[i]
	pResid := qr.Resid[i]
	// ‖p‖ ≤ ‖p̂‖+‖e_p‖ and ‖q‖ ≤ ‖q̂‖+‖e_q‖ feed the Dot-rounding term.
	pUB := pNorm + pResid
	qUB := qq.Norm + qq.Resid
	cs := qq.Norm*pResid + qq.Resid*pUB
	// approx is computed with two roundings (integer dot exact in float64);
	// its error ≤ 3·2⁻⁵³·|approx| ≤ 3·2⁻⁵³·‖q̂‖·‖p̂‖ is dominated by the
	// dotSlack term, which also covers the exact kernel's accumulation.
	return inflate(cs+dotSlack(qr.r)*qUB*pUB, 16*ulp)
}

// screenSlack is the relative allowance backing the checkpoint's naked
// arithmetic: it must dominate, relative to ‖q‖·‖p‖, the exact kernel's
// accumulation rounding (as dotSlack does), the approx roundings, and the
// ~13 further roundings the fused checkpoint commits (including the emit
// pre-fold in NewScreen) — each at most one ulp of a norm-dominated
// quantity. The extra headroom over dotSlack is 32 ulp, roughly double what
// those roundings can consume.
func screenSlack(r int) float64 { return 4*float64(r+8)*ulp + 32*ulp }

// Screen is the per-query state of the checkpoint predicate: the query's
// scale and the hoisted bound coefficients, folded so the per-candidate
// evaluation is four multiplies and two adds over two per-row constants.
// Build one per (query, panel) screening pass with NewScreen.
type Screen struct {
	qr    *Rows
	codes []int8  // query codes, head prefix
	qs    float64 // emit·(query scale)
	qsqtn float64 // emit·qs·‖query codes[head:]‖ᵘᵇ, the remaining-mass factor
	resid float64 // emit·(panel residual term: qn·maxResid + qfac·maxNormUB) + tiny
}

// NewScreen hoists the query-side constants of the checkpoint bound,
// pre-multiplied by the caller's emit factor: UB then bounds emit·Dot
// directly, saving one multiply per candidate in the screening loop (pass
// emit = 1 for a bound on the bare dot). emit must be nonnegative — a
// negative factor would flip the bound's side; a NaN or +Inf emit only
// poisons the bound conservatively to +Inf. The residual term substitutes the
// panel-wide maxima for the per-row residual and norm — a sound
// over-approximation that turns two per-row loads and three flops into one
// constant; the exact kernels (or, in Approx mode, FinishApproxBound)
// restore the tight per-row treatment for checkpoint survivors.
func (qr *Rows) NewScreen(qq Query, emit float64) Screen {
	qUB := qq.Norm + qq.Resid
	qfac := qq.Resid + screenSlack(qr.r)*qUB
	return Screen{
		qr:    qr,
		codes: qq.Codes[:qr.head],
		qs:    emit * qq.Scale,
		qsqtn: emit * qq.Scale * qq.TailNorm,
		resid: emit*(qq.Norm*qr.maxResid+qfac*qr.maxNormUB) + tiny,
	}
}

// UB computes the checkpoint for row i: the integer dot over the head
// prefix (returned so FinishApproxBound can complete it) and a conservative
// upper bound on emit·Dot(q, row_i) — emit being NewScreen's pre-folded
// factor — built from that prefix plus the remaining-mass Cauchy–Schwarz
// term:
//
//	ub = emit·(S_q·S_p·d_head + S_q·‖q̂c tail‖·S_p·‖p̂c tail‖ + resid)
//
// with resid ≥ ‖q̂‖·‖e_p‖ + ‖e_q‖·‖p‖ᵘᵇ + screenSlack·‖q‖ᵘᵇ·‖p‖ᵘᵇ for every
// row of the panel, evaluated without per-step inflation — every rounding
// is norm-dominated (emit scales all terms alike, so relative slack covers
// its roundings too) and pre-paid by the screenSlack share of resid (see
// the package comment). ub ≥ fl(emit·Dot(q, row_i)) for all finite inputs;
// non-finite inputs or overflow yield ub = +Inf or NaN — NaN compares false
// against any cutoff, and the one dangerous pole, −Inf (an overflowed scale
// times a negative head sum), is redirected to +Inf. Under that contract a
// caller screening on "ub·len < cut" with the same emit order can never
// discard a candidate the exact path would emit.
func (s *Screen) UB(i int) (head int32, ub float64) {
	qr := s.qr
	dh := DotQ8(s.codes, qr.Codes[i*qr.r:i*qr.r+qr.head])
	return dh, s.bound(i, dh)
}

// UB4 is UB for four rows at once, with one pass over the query prefix and
// four independent accumulator chains — DotQ8x4 restricted to the head,
// inlined because this loop is the screen's cost floor and the callee is
// too large for the compiler to inline. Each (head[j], ub[j]) pair is
// identical to the corresponding scalar UB call.
func (s *Screen) UB4(i0, i1, i2, i3 int, head *[4]int32, ub *[4]float64) {
	qr := s.qr
	h, r := qr.head, qr.r
	q := s.codes
	p0 := qr.Codes[i0*r : i0*r+h]
	p1 := qr.Codes[i1*r : i1*r+h]
	p2 := qr.Codes[i2*r : i2*r+h]
	p3 := qr.Codes[i3*r : i3*r+h]
	p0, p1, p2, p3 = p0[:len(q)], p1[:len(q)], p2[:len(q)], p3[:len(q)]
	var s0, s1, s2, s3 int32
	k := 0
	// Two query elements per iteration: four rows of accumulators is the
	// most that stays in registers (eight spills to the stack), so the
	// remaining loop-control overhead is halved by unrolling depth instead
	// of width.
	for ; k+2 <= len(q); k += 2 {
		qa, qb := int32(q[k]), int32(q[k+1])
		s0 += qa*int32(p0[k]) + qb*int32(p0[k+1])
		s1 += qa*int32(p1[k]) + qb*int32(p1[k+1])
		s2 += qa*int32(p2[k]) + qb*int32(p2[k+1])
		s3 += qa*int32(p3[k]) + qb*int32(p3[k+1])
	}
	if k < len(q) {
		qc := int32(q[k])
		s0 += qc * int32(p0[k])
		s1 += qc * int32(p1[k])
		s2 += qc * int32(p2[k])
		s3 += qc * int32(p3[k])
	}
	head[0], head[1], head[2], head[3] = s0, s1, s2, s3
	ub[0] = s.bound(i0, s0)
	ub[1] = s.bound(i1, s1)
	ub[2] = s.bound(i2, s2)
	ub[3] = s.bound(i3, s3)
}

// UB8 is UB for eight rows at once — one pass over the query prefix, eight
// independent accumulator chains. Wider batching amortizes the shared query
// loads and loop control further than UB4: the int8 head dot pays a
// sign-extension per element on top of the multiply-add, so it needs more
// rows in flight than the f64 kernels to reach comparable per-element cost.
// Each (head[j], ub[j]) pair is identical to the corresponding scalar UB
// call.
func (s *Screen) UB8(i0, i1, i2, i3, i4, i5, i6, i7 int, head *[8]int32, ub *[8]float64) {
	qr := s.qr
	h, r := qr.head, qr.r
	q := s.codes
	p0 := qr.Codes[i0*r : i0*r+h]
	p1 := qr.Codes[i1*r : i1*r+h]
	p2 := qr.Codes[i2*r : i2*r+h]
	p3 := qr.Codes[i3*r : i3*r+h]
	p4 := qr.Codes[i4*r : i4*r+h]
	p5 := qr.Codes[i5*r : i5*r+h]
	p6 := qr.Codes[i6*r : i6*r+h]
	p7 := qr.Codes[i7*r : i7*r+h]
	p0, p1, p2, p3 = p0[:len(q)], p1[:len(q)], p2[:len(q)], p3[:len(q)]
	p4, p5, p6, p7 = p4[:len(q)], p5[:len(q)], p6[:len(q)], p7[:len(q)]
	var s0, s1, s2, s3, s4, s5, s6, s7 int32
	k := 0
	// Eight accumulators spill to the stack regardless, so unroll the query
	// axis too: two elements per iteration halves the spill reload traffic
	// per multiply-add.
	for ; k+2 <= len(q); k += 2 {
		qa, qb := int32(q[k]), int32(q[k+1])
		s0 += qa*int32(p0[k]) + qb*int32(p0[k+1])
		s1 += qa*int32(p1[k]) + qb*int32(p1[k+1])
		s2 += qa*int32(p2[k]) + qb*int32(p2[k+1])
		s3 += qa*int32(p3[k]) + qb*int32(p3[k+1])
		s4 += qa*int32(p4[k]) + qb*int32(p4[k+1])
		s5 += qa*int32(p5[k]) + qb*int32(p5[k+1])
		s6 += qa*int32(p6[k]) + qb*int32(p6[k+1])
		s7 += qa*int32(p7[k]) + qb*int32(p7[k+1])
	}
	if k < len(q) {
		qc := int32(q[k])
		s0 += qc * int32(p0[k])
		s1 += qc * int32(p1[k])
		s2 += qc * int32(p2[k])
		s3 += qc * int32(p3[k])
		s4 += qc * int32(p4[k])
		s5 += qc * int32(p5[k])
		s6 += qc * int32(p6[k])
		s7 += qc * int32(p7[k])
	}
	head[0], head[1], head[2], head[3] = s0, s1, s2, s3
	head[4], head[5], head[6], head[7] = s4, s5, s6, s7
	ub[0] = s.bound(i0, s0)
	ub[1] = s.bound(i1, s1)
	ub[2] = s.bound(i2, s2)
	ub[3] = s.bound(i3, s3)
	ub[4] = s.bound(i4, s4)
	ub[5] = s.bound(i5, s5)
	ub[6] = s.bound(i6, s6)
	ub[7] = s.bound(i7, s7)
}

// Screen8 evaluates the checkpoint for eight rows and applies the caller's
// cutoff predicate in one pass, returning a survivor bitmask (bit j set =
// row ij must be verified) and the head dots for FinishApproxBound. Row j
// is screened exactly when bound(ij)·lens[j] < cut — the same outcome as
// UB8 followed by the multiply in the caller, with the intermediate bound
// array and its per-row store/reload/branch elided; in the common case the
// mask is zero or one bit, so the caller touches survivors only. lens
// values must be nonnegative (row lengths); cut is the caller's emit-order
// cutoff.
func (s *Screen) Screen8(i0, i1, i2, i3, i4, i5, i6, i7 int, lens *[8]float64, cut float64, head *[8]int32) uint8 {
	qr := s.qr
	h, r := qr.head, qr.r
	q := s.codes
	p0 := qr.Codes[i0*r : i0*r+h]
	p1 := qr.Codes[i1*r : i1*r+h]
	p2 := qr.Codes[i2*r : i2*r+h]
	p3 := qr.Codes[i3*r : i3*r+h]
	p4 := qr.Codes[i4*r : i4*r+h]
	p5 := qr.Codes[i5*r : i5*r+h]
	p6 := qr.Codes[i6*r : i6*r+h]
	p7 := qr.Codes[i7*r : i7*r+h]
	p0, p1, p2, p3 = p0[:len(q)], p1[:len(q)], p2[:len(q)], p3[:len(q)]
	p4, p5, p6, p7 = p4[:len(q)], p5[:len(q)], p6[:len(q)], p7[:len(q)]
	var s0, s1, s2, s3, s4, s5, s6, s7 int32
	k := 0
	for ; k+2 <= len(q); k += 2 {
		qa, qb := int32(q[k]), int32(q[k+1])
		s0 += qa*int32(p0[k]) + qb*int32(p0[k+1])
		s1 += qa*int32(p1[k]) + qb*int32(p1[k+1])
		s2 += qa*int32(p2[k]) + qb*int32(p2[k+1])
		s3 += qa*int32(p3[k]) + qb*int32(p3[k+1])
		s4 += qa*int32(p4[k]) + qb*int32(p4[k+1])
		s5 += qa*int32(p5[k]) + qb*int32(p5[k+1])
		s6 += qa*int32(p6[k]) + qb*int32(p6[k+1])
		s7 += qa*int32(p7[k]) + qb*int32(p7[k+1])
	}
	if k < len(q) {
		qc := int32(q[k])
		s0 += qc * int32(p0[k])
		s1 += qc * int32(p1[k])
		s2 += qc * int32(p2[k])
		s3 += qc * int32(p3[k])
		s4 += qc * int32(p4[k])
		s5 += qc * int32(p5[k])
		s6 += qc * int32(p6[k])
		s7 += qc * int32(p7[k])
	}
	head[0], head[1], head[2], head[3] = s0, s1, s2, s3
	head[4], head[5], head[6], head[7] = s4, s5, s6, s7
	var mask uint8
	mask |= s.keep(i0, s0, lens[0], cut) << 0
	mask |= s.keep(i1, s1, lens[1], cut) << 1
	mask |= s.keep(i2, s2, lens[2], cut) << 2
	mask |= s.keep(i3, s3, lens[3], cut) << 3
	mask |= s.keep(i4, s4, lens[4], cut) << 4
	mask |= s.keep(i5, s5, lens[5], cut) << 5
	mask |= s.keep(i6, s6, lens[6], cut) << 6
	mask |= s.keep(i7, s7, lens[7], cut) << 7
	return mask
}

// Screen4 is Screen8 for four rows: the ragged-tail companion, so buckets
// whose candidate prefix is shorter than eight rows (the common case at
// very selective thresholds) still get batched head dots and the fused
// predicate instead of one scalar UB per row.
func (s *Screen) Screen4(i0, i1, i2, i3 int, lens *[4]float64, cut float64, head *[4]int32) uint8 {
	qr := s.qr
	h, r := qr.head, qr.r
	q := s.codes
	p0 := qr.Codes[i0*r : i0*r+h]
	p1 := qr.Codes[i1*r : i1*r+h]
	p2 := qr.Codes[i2*r : i2*r+h]
	p3 := qr.Codes[i3*r : i3*r+h]
	p0, p1, p2, p3 = p0[:len(q)], p1[:len(q)], p2[:len(q)], p3[:len(q)]
	var s0, s1, s2, s3 int32
	k := 0
	for ; k+2 <= len(q); k += 2 {
		qa, qb := int32(q[k]), int32(q[k+1])
		s0 += qa*int32(p0[k]) + qb*int32(p0[k+1])
		s1 += qa*int32(p1[k]) + qb*int32(p1[k+1])
		s2 += qa*int32(p2[k]) + qb*int32(p2[k+1])
		s3 += qa*int32(p3[k]) + qb*int32(p3[k+1])
	}
	if k < len(q) {
		qc := int32(q[k])
		s0 += qc * int32(p0[k])
		s1 += qc * int32(p1[k])
		s2 += qc * int32(p2[k])
		s3 += qc * int32(p3[k])
	}
	head[0], head[1], head[2], head[3] = s0, s1, s2, s3
	var mask uint8
	mask |= s.keep(i0, s0, lens[0], cut) << 0
	mask |= s.keep(i1, s1, lens[1], cut) << 1
	mask |= s.keep(i2, s2, lens[2], cut) << 2
	mask |= s.keep(i3, s3, lens[3], cut) << 3
	return mask
}

// keep reports (as 0 or 1) whether row i survives the checkpoint predicate
// bound(i)·len < cut. Bit-identical in outcome to bound followed by the
// caller-side multiply: the −Inf pole bound redirects to +Inf always
// survives here too (first comparison fails), and a NaN anywhere makes the
// second comparison fail — conservatively surviving.
func (s *Screen) keep(i int, dh int32, len, cut float64) uint8 {
	qr := s.qr
	ub := s.qs*qr.screen[2*i]*float64(dh) + s.qsqtn*qr.screen[2*i+1] + s.resid
	if ub >= -math.MaxFloat64 && ub*len < cut {
		return 0
	}
	return 1
}

// bound assembles the checkpoint upper bound from a head dot: two short
// independent multiply chains (scales are nonnegative, so the sign of the
// integer sum survives) joined by two adds; tiny, folded into resid,
// absorbs underflow absolutely, and NaN remaining-mass sentinels poison
// non-finite rows to +Inf.
func (s *Screen) bound(i int, dh int32) float64 {
	qr := s.qr
	ub := s.qs*qr.screen[2*i]*float64(dh) + s.qsqtn*qr.screen[2*i+1] + s.resid
	if !(ub >= -math.MaxFloat64) {
		// NaN or −Inf: never screen.
		return math.Inf(1)
	}
	return ub
}

// FinishApproxBound completes a checkpoint survivor: given the head dot
// ScreenBound returned, it dots the remaining dimensions and evaluates the
// full bracket. The result is identical to ApproxBound(qq, i) — integer
// addition is grouping-insensitive, and the bound arithmetic is shared.
func (qr *Rows) FinishApproxBound(qq Query, i int, head int32) (approx, bound float64) {
	h := qr.head
	d := head + DotQ8(qq.Codes[h:], qr.Codes[i*qr.r+h:(i+1)*qr.r])
	return qr.boundFromDot(qq, i, float64(d))
}
