// Package retrieval defines the result types shared by every large-entry
// retrieval algorithm in this repository (the LEMP framework and all
// standalone baselines), plus helpers for comparing result sets in tests.
package retrieval

import "sort"

// Entry is one large entry of the product matrix QᵀP: the inner product of
// query vector Query and probe vector Probe.
type Entry struct {
	Query int     // column index into Q (row of QᵀP)
	Probe int     // column index into P (column of QᵀP)
	Value float64 // the inner product
}

// Sink receives result entries as they are found. Implementations must not
// retain the Entry beyond the call (it may be reused). Using a callback
// instead of materializing slices matters: the paper retrieves up to 10⁷
// entries per run.
type Sink func(Entry)

// Collect returns a Sink that appends into *dst.
func Collect(dst *[]Entry) Sink {
	return func(e Entry) { *dst = append(*dst, e) }
}

// Sort orders entries by (Query, Probe) ascending; Value is untouched. This
// canonical order makes result sets comparable across algorithms.
func Sort(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Query != entries[j].Query {
			return entries[i].Query < entries[j].Query
		}
		return entries[i].Probe < entries[j].Probe
	})
}

// SortByValue orders entries by decreasing Value, breaking ties by
// (Query, Probe) ascending so the order is deterministic.
func SortByValue(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value > entries[j].Value
		}
		if entries[i].Query != entries[j].Query {
			return entries[i].Query < entries[j].Query
		}
		return entries[i].Probe < entries[j].Probe
	})
}

// TopK is the per-query result of a Row-Top-k retrieval: for each query
// vector, up to k probe entries ordered by decreasing value.
type TopK [][]Entry

// EqualSets reports whether a and b contain the same (Query, Probe) pairs,
// ignoring order and values. It is the equivalence used by cross-algorithm
// tests for Above-θ results.
func EqualSets(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	type pair struct{ q, p int }
	seen := make(map[pair]int, len(a))
	for _, e := range a {
		seen[pair{e.Query, e.Probe}]++
	}
	for _, e := range b {
		k := pair{e.Query, e.Probe}
		seen[k]--
		if seen[k] == 0 {
			delete(seen, k)
		}
	}
	return len(seen) == 0
}
