// Package retrieval defines the result types shared by every large-entry
// retrieval algorithm in this repository (the LEMP framework and all
// standalone baselines), plus helpers for merging results across index
// shards and comparing result sets in tests.
package retrieval

import (
	"container/heap"
	"sort"
)

// Entry is one large entry of the product matrix QᵀP: the inner product of
// query vector Query and probe vector Probe.
type Entry struct {
	Query int     // column index into Q (row of QᵀP)
	Probe int     // column index into P (column of QᵀP)
	Value float64 // the inner product
}

// Sink receives result entries as they are found. Implementations must not
// retain the Entry beyond the call (it may be reused). Using a callback
// instead of materializing slices matters: the paper retrieves up to 10⁷
// entries per run.
type Sink func(Entry)

// Collect returns a Sink that appends into *dst.
func Collect(dst *[]Entry) Sink {
	return func(e Entry) { *dst = append(*dst, e) }
}

// Sort orders entries by (Query, Probe) ascending; Value is untouched. This
// canonical order makes result sets comparable across algorithms.
func Sort(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Query != entries[j].Query {
			return entries[i].Query < entries[j].Query
		}
		return entries[i].Probe < entries[j].Probe
	})
}

// SortByValue orders entries by decreasing Value, breaking ties by
// (Query, Probe) ascending so the order is deterministic.
func SortByValue(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value > entries[j].Value
		}
		if entries[i].Query != entries[j].Query {
			return entries[i].Query < entries[j].Query
		}
		return entries[i].Probe < entries[j].Probe
	})
}

// TopK is the per-query result of a Row-Top-k retrieval: for each query
// vector, up to k probe entries ordered by decreasing value.
type TopK [][]Entry

// mergeHeap orders the heads of per-shard rows by decreasing value, with
// ties broken by ascending probe id so merges are deterministic.
type mergeHeap []mergeCursor

type mergeCursor struct {
	row []Entry // remaining entries of one shard's row, sorted desc
}

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].row[0], h[j].row[0]
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Probe < b.Probe
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// MergeTopK k-way-merges per-shard Row-Top-k results into a global one.
// Each part must hold the same number of rows (one per query), each row
// sorted by decreasing value as returned by RowTopK; the merged row i is
// the k largest entries across all parts' rows i, again by decreasing
// value. Probe ids are taken as-is — remap shard-local ids to global ones
// before merging.
func MergeTopK(k int, parts ...TopK) TopK {
	if len(parts) == 0 {
		return nil
	}
	rows := 0
	for _, p := range parts {
		if len(p) > rows {
			rows = len(p)
		}
	}
	out := make(TopK, rows)
	h := make(mergeHeap, 0, len(parts))
	for i := 0; i < rows; i++ {
		h = h[:0]
		for _, p := range parts {
			if i < len(p) && len(p[i]) > 0 {
				h = append(h, mergeCursor{row: p[i]})
			}
		}
		heap.Init(&h)
		// Cap the allocation by what the parts can actually supply, so an
		// oversized k cannot size the buffer off untrusted input.
		capacity := 0
		for _, c := range h {
			capacity += len(c.row)
		}
		if capacity > k {
			capacity = k
		}
		row := make([]Entry, 0, capacity)
		for len(row) < k && h.Len() > 0 {
			row = append(row, h[0].row[0])
			if h[0].row = h[0].row[1:]; len(h[0].row) == 0 {
				heap.Pop(&h)
			} else {
				heap.Fix(&h, 0)
			}
		}
		out[i] = row
	}
	return out
}

// EqualSets reports whether a and b contain the same (Query, Probe) pairs,
// ignoring order and values. It is the equivalence used by cross-algorithm
// tests for Above-θ results.
func EqualSets(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	type pair struct{ q, p int }
	seen := make(map[pair]int, len(a))
	for _, e := range a {
		seen[pair{e.Query, e.Probe}]++
	}
	for _, e := range b {
		k := pair{e.Query, e.Probe}
		seen[k]--
		if seen[k] == 0 {
			delete(seen, k)
		}
	}
	return len(seen) == 0
}
