package retrieval

import (
	"testing"
	"testing/quick"
)

func TestCollect(t *testing.T) {
	var out []Entry
	sink := Collect(&out)
	sink(Entry{1, 2, 3})
	sink(Entry{4, 5, 6})
	if len(out) != 2 || out[1].Probe != 5 {
		t.Fatalf("collected %v", out)
	}
}

func TestSortCanonical(t *testing.T) {
	es := []Entry{{2, 1, 0}, {1, 9, 0}, {1, 2, 0}, {2, 0, 0}}
	Sort(es)
	want := []Entry{{1, 2, 0}, {1, 9, 0}, {2, 0, 0}, {2, 1, 0}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("order %v", es)
		}
	}
}

func TestSortByValue(t *testing.T) {
	es := []Entry{{1, 1, 5}, {0, 0, 9}, {2, 2, 5}, {3, 3, 1}}
	SortByValue(es)
	if es[0].Value != 9 || es[3].Value != 1 {
		t.Fatalf("order %v", es)
	}
	// Equal values tie-break by (Query, Probe).
	if es[1].Query != 1 || es[2].Query != 2 {
		t.Fatalf("tie-break %v", es)
	}
}

func TestEqualSets(t *testing.T) {
	a := []Entry{{1, 2, 0.5}, {3, 4, 0.7}}
	b := []Entry{{3, 4, 0.9}, {1, 2, 0.1}} // values ignored
	if !EqualSets(a, b) {
		t.Error("permuted sets not equal")
	}
	if EqualSets(a, a[:1]) {
		t.Error("different sizes equal")
	}
	c := []Entry{{1, 2, 0}, {3, 5, 0}}
	if EqualSets(a, c) {
		t.Error("different pairs equal")
	}
	// Multiset semantics: duplicates must count.
	d := []Entry{{1, 1, 0}, {1, 1, 0}}
	e := []Entry{{1, 1, 0}, {2, 2, 0}}
	if EqualSets(d, e) {
		t.Error("multiset mismatch equal")
	}
	if !EqualSets(nil, nil) {
		t.Error("empty sets not equal")
	}
}

// Property: EqualSets is symmetric and invariant under permutation.
func TestEqualSetsProperties(t *testing.T) {
	perm := func(es []Entry) bool {
		if len(es) < 2 {
			return true
		}
		shuffled := make([]Entry, len(es))
		copy(shuffled, es)
		shuffled[0], shuffled[len(es)-1] = shuffled[len(es)-1], shuffled[0]
		return EqualSets(es, shuffled) && EqualSets(shuffled, es)
	}
	if err := quick.Check(perm, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeTopK(t *testing.T) {
	// Two shards' rows for two queries, each sorted by decreasing value.
	a := TopK{
		{{0, 0, 9}, {0, 1, 5}, {0, 2, 1}},
		{{1, 0, 2}},
	}
	b := TopK{
		{{0, 10, 7}, {0, 11, 6}},
		{{1, 12, 8}, {1, 13, 4}},
	}
	got := MergeTopK(3, a, b)
	want := TopK{
		{{0, 0, 9}, {0, 10, 7}, {0, 11, 6}},
		{{1, 12, 8}, {1, 13, 4}, {1, 0, 2}},
	}
	if len(got) != len(want) {
		t.Fatalf("rows %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d: %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestMergeTopKEdgeCases(t *testing.T) {
	if got := MergeTopK(3); got != nil {
		t.Fatalf("no parts: %v", got)
	}
	// Empty rows and short parts are tolerated.
	got := MergeTopK(2, TopK{{}, {{1, 4, 2}}}, TopK{{{0, 7, 3}}})
	if len(got) != 2 || len(got[0]) != 1 || got[0][0].Probe != 7 || len(got[1]) != 1 {
		t.Fatalf("mixed shapes: %v", got)
	}
	// A short (even empty) first part must not drop later parts' rows.
	got = MergeTopK(2, TopK{}, TopK{{{0, 7, 3}}})
	if len(got) != 1 || len(got[0]) != 1 || got[0][0].Probe != 7 {
		t.Fatalf("short first part: %v", got)
	}
	// Ties merge deterministically by ascending probe id.
	tie := MergeTopK(2, TopK{{{0, 5, 1}}}, TopK{{{0, 3, 1}}})
	if tie[0][0].Probe != 3 || tie[0][1].Probe != 5 {
		t.Fatalf("tie order: %v", tie[0])
	}
}
