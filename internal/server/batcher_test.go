package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lemp"
)

// newTestSharded builds the 4-shard index over the Smoke probes.
func newTestSharded(t testing.TB) (*Sharded, *lemp.Matrix) {
	t.Helper()
	q, p := smokeMatrices(t)
	sh, err := NewSharded(p, testShards, lemp.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sh, q
}

// TestShardedMatchesDirect exercises the shard manager below the HTTP
// layer: merged top-k rows and Above-θ rows must equal the direct run.
func TestShardedMatchesDirect(t *testing.T) {
	sh, q := newTestSharded(t)
	_, p := smokeMatrices(t)
	direct := directIndex(t, p)

	const k = 7
	got, _, err := sh.TopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := direct.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d entries, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j].Probe != want[i][j].Probe || got[i][j].Value != want[i][j].Value {
				t.Fatalf("query %d entry %d: got %+v, want %+v", i, j, got[i][j], want[i][j])
			}
		}
	}

	theta := 1.5
	gotRows, _, err := sh.AboveTheta(q, theta)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := direct.AboveTheta(q, theta)
	if err != nil {
		t.Fatal(err)
	}
	lemp.SortEntries(entries)
	wantRows := make([][]lemp.Entry, q.N())
	for _, e := range entries {
		wantRows[e.Query] = append(wantRows[e.Query], e)
	}
	for i := range wantRows {
		if len(gotRows[i]) != len(wantRows[i]) {
			t.Fatalf("query %d: %d entries, want %d", i, len(gotRows[i]), len(wantRows[i]))
		}
		for j := range wantRows[i] {
			if gotRows[i][j] != wantRows[i][j] {
				t.Fatalf("query %d entry %d: got %+v, want %+v", i, j, gotRows[i][j], wantRows[i][j])
			}
		}
	}
}

// TestBatcherCoalesces submits many concurrent single-row requests inside
// one window and checks that (a) far fewer retrieval calls than requests
// were dispatched and (b) every caller got exactly its own row back.
func TestBatcherCoalesces(t *testing.T) {
	sh, q := newTestSharded(t)
	_, p := smokeMatrices(t)
	direct := directIndex(t, p)

	const callers, k = 32, 5
	want, _, err := direct.RowTopK(q.Head(callers), k)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatcher(sh, 100*time.Millisecond, 1024, BatchModeWindow)
	var dispatches, coalesced atomic.Int64
	b.onDispatch = func(rows, requests int) {
		dispatches.Add(1)
		coalesced.Add(int64(requests))
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rows, err := b.TopK(context.Background(), q.Vec(i), 1, k)
			if err != nil {
				errs <- err
				return
			}
			if len(rows) != 1 || len(rows[0]) != len(want[i]) {
				t.Errorf("caller %d: bad shape", i)
				return
			}
			for j, e := range rows[0] {
				if e.Query != 0 || e.Probe != want[i][j].Probe || e.Value != want[i][j].Value {
					t.Errorf("caller %d entry %d: got %+v, want %+v", i, j, e, want[i][j])
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := dispatches.Load(); got >= callers/2 {
		t.Errorf("%d retrieval calls for %d concurrent requests: batching ineffective", got, callers)
	}
	if got := coalesced.Load(); got != callers {
		t.Errorf("coalesced %d requests, want %d", got, callers)
	}
}

// TestBatcherDispatchesAtMax checks that a batch reaching BatchMax rows
// dispatches immediately instead of waiting out a long window.
func TestBatcherDispatchesAtMax(t *testing.T) {
	sh, q := newTestSharded(t)
	const max = 8
	b := NewBatcher(sh, 10*time.Second, max, BatchModeWindow)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < max; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.TopK(context.Background(), q.Vec(i), 1, 3); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch at max waited %v; should dispatch before the window", elapsed)
	}
}

// TestBatcherKeysSeparateParams checks that requests with different k (or
// different problems) never share a batch.
func TestBatcherKeysSeparateParams(t *testing.T) {
	sh, q := newTestSharded(t)
	b := NewBatcher(sh, 50*time.Millisecond, 1024, BatchModeWindow)
	type dispatched struct{ rows int }
	var mu sync.Mutex
	var batches []dispatched
	b.onDispatch = func(rows, _ int) {
		mu.Lock()
		batches = append(batches, dispatched{rows})
		mu.Unlock()
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		k := 2 + i%2 // two distinct k values
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			<-start
			if _, err := b.TopK(context.Background(), q.Vec(i), 1, k); err != nil {
				t.Error(err)
			}
		}(i, k)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if _, err := b.AboveTheta(context.Background(), q.Vec(5), 1, 1.5); err != nil {
			t.Error(err)
		}
	}()
	close(start)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// Three distinct parameter sets {k=2, k=3, θ=1.5} can never share a
	// batch, so at least 3 batches fire; scheduling skew past the window
	// may split a key into more, but every row must be accounted for.
	total := 0
	for _, d := range batches {
		total += d.rows
	}
	if len(batches) < 3 {
		t.Errorf("%d batches for {k=2, k=3, θ=1.5}, want at least 3: %+v", len(batches), batches)
	}
	if total != 5 {
		t.Errorf("dispatched %d rows across batches, want 5: %+v", total, batches)
	}
}
