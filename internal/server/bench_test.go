package server

import (
	"sync/atomic"
	"testing"
	"time"

	"lemp"
	"lemp/internal/data"
)

// benchSharded builds a larger sharded index so per-call overhead and
// retrieval work are both visible.
func benchSharded(b *testing.B) (*Sharded, *lemp.Matrix) {
	b.Helper()
	profile := data.Smoke.Scale(4)
	q, p := profile.Generate()
	sh, err := NewSharded(p, testShards, lemp.Options{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Force lazy index builds and tuning out of the measured region.
	if _, _, err := sh.TopK(q.Head(64), benchK); err != nil {
		b.Fatal(err)
	}
	return sh, q
}

const benchK = 10

// runDispatchBench drives concurrent single-query clients through a
// batcher. With a zero window the batcher degenerates to one retrieval
// call per request — the baseline the batched configuration must beat.
func runDispatchBench(b *testing.B, window time.Duration, maxBatch int) {
	sh, q := benchSharded(b)
	batcher := NewBatcher(sh, window, maxBatch)
	n := q.N()
	var i atomic.Int64
	// Many more in-flight clients than cores: the regime batching targets.
	// Per-call costs (sample-based tuning, scratch setup, shard fan-out)
	// then amortize across the coalesced batch.
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			row := int(i.Add(1)) % n
			if _, err := batcher.TopK(q.Vec(row), 1, benchK); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkDispatchPerRequest issues one sharded retrieval call per query.
func BenchmarkDispatchPerRequest(b *testing.B) {
	runDispatchBench(b, 0, 1)
}

// BenchmarkDispatchBatched coalesces concurrent queries into combined
// retrieval calls (1 ms window, up to 256 rows per batch).
func BenchmarkDispatchBatched(b *testing.B) {
	runDispatchBench(b, time.Millisecond, 256)
}
