package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"lemp"
	"lemp/internal/data"
)

// benchSharded builds a larger sharded index so per-call overhead and
// retrieval work are both visible.
func benchSharded(b *testing.B) (*Sharded, *lemp.Matrix) {
	b.Helper()
	profile := data.Smoke.Scale(4)
	q, p := profile.Generate()
	sh, err := NewSharded(p, testShards, lemp.Options{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Force lazy index builds and tuning out of the measured region.
	if _, _, err := sh.TopK(q.Head(64), benchK); err != nil {
		b.Fatal(err)
	}
	return sh, q
}

const benchK = 10

// runDispatchBench drives concurrent single-query clients through a
// batcher. With a zero window the batcher degenerates to one retrieval
// call per request — the baseline the batched configuration must beat.
func runDispatchBench(b *testing.B, window time.Duration, maxBatch int) {
	sh, q := benchSharded(b)
	batcher := NewBatcher(sh, window, maxBatch, BatchModeWindow)
	n := q.N()
	var i atomic.Int64
	// Many more in-flight clients than cores: the regime batching targets.
	// Per-call costs (sample-based tuning, scratch setup, shard fan-out)
	// then amortize across the coalesced batch.
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			row := int(i.Add(1)) % n
			if _, err := batcher.TopK(context.Background(), q.Vec(row), 1, benchK); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkDispatchPerRequest issues one sharded retrieval call per query.
func BenchmarkDispatchPerRequest(b *testing.B) {
	runDispatchBench(b, 0, 1)
}

// BenchmarkDispatchBatched coalesces concurrent queries into combined
// retrieval calls (1 ms window, up to 256 rows per batch).
func BenchmarkDispatchBatched(b *testing.B) {
	runDispatchBench(b, time.Millisecond, 256)
}

// BenchmarkTuningCacheServing measures — and asserts — the serving win of
// the shared TuningCache on the Smoke profile: the first small-batch call
// pays per-shard sample tuning, every repeat restores the fit. The ROADMAP
// measured tuning at ~10× the marginal per-query retrieval work on small
// batches, so a warm call must run in at most 20% of the first call's
// time. The check retries over several cold/warm rounds before failing so
// a single scheduler hiccup cannot flake CI; the Stats assertion (zero
// tuning passes on warm calls) is absolute.
func BenchmarkTuningCacheServing(b *testing.B) {
	q, p := data.Smoke.Generate()
	small := q.Head(2) // the small-batch regime where tuning dominates

	best := 1.0
	for attempt := 0; attempt < 5 && best > 0.20; attempt++ {
		sh, err := NewSharded(p, testShards, lemp.Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		coldStart := time.Now()
		_, coldSt, err := sh.TopK(small, benchK)
		if err != nil {
			b.Fatal(err)
		}
		cold := time.Since(coldStart)
		if coldSt.Tunings != testShards {
			b.Fatalf("cold call ran %d tunings, want %d", coldSt.Tunings, testShards)
		}
		warm := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			warmStart := time.Now()
			_, warmSt, err := sh.TopK(small, benchK)
			if err != nil {
				b.Fatal(err)
			}
			if d := time.Since(warmStart); d < warm {
				warm = d
			}
			if warmSt.Tunings != 0 || warmSt.TuneTime != 0 {
				b.Fatalf("warm call ran %d tunings (%v)", warmSt.Tunings, warmSt.TuneTime)
			}
		}
		if ratio := warm.Seconds() / cold.Seconds(); ratio < best {
			best = ratio
		}
		b.ReportMetric(best, "warm/cold")
	}
	if best > 0.20 {
		b.Fatalf("warm tuned call took %.0f%% of the first call, want ≤ 20%%: the TuningCache is not removing repeat-call tuning cost", best*100)
	}
}
