package server

import (
	"bytes"
	"io"
	"testing"

	"lemp"
	"lemp/internal/data"
)

// The startup benchmarks compare the two ways lemp-serve reaches a
// ready-to-serve (pretuned) state: building from the raw matrix pays
// bucketization plus sample-based tuning (O(index), what -save-snapshot
// pays once), restoring pays only deserialization and validation (O(read),
// what -snapshot pays on every restart). Lazy per-bucket sorted lists are
// built on first use in both cases and are excluded; persisting them is a
// noted follow-on.

func BenchmarkStartupBuildPretuned(b *testing.B) {
	q, p := data.Smoke.Scale(4).Generate()
	sample := q.Head(64)
	cfg := Config{Shards: testShards, Options: benchOptions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := New(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, ix := range srv.Sharded().Indexes() {
			if err := ix.PretuneTopK(sample, benchK); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkStartupSnapshot(b *testing.B) {
	q, p := data.Smoke.Scale(4).Generate()
	cfg := Config{Shards: testShards, Options: benchOptions()}
	built, err := New(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, ix := range built.Sharded().Indexes() {
		if err := ix.PretuneTopK(q.Head(64), benchK); err != nil {
			b.Fatal(err)
		}
	}
	bufs := writeShardSnapshots(b, built)
	var total int
	for _, buf := range bufs {
		total += buf.Len()
	}
	b.Logf("snapshot size: %d bytes across %d shards", total, len(bufs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := make([]io.Reader, len(bufs))
		for j, buf := range bufs {
			rs[j] = bytes.NewReader(buf.Bytes())
		}
		if _, err := NewFromSnapshot(rs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOptions() lemp.Options { return lemp.Options{Parallelism: 1} }
