package server

import (
	"bytes"
	"io"
	"testing"

	"lemp"
	"lemp/internal/data"
)

// The startup benchmarks compare the two ways lemp-serve reaches a
// ready-to-serve (pretuned) state: building from the raw matrix pays
// bucketization plus sample-based tuning (O(index), what -save-snapshot
// pays once), restoring pays only deserialization and validation (O(read),
// what -snapshot pays on every restart). BenchmarkFirstBatchAfterRestore
// measures the remaining post-restore cost — the lazily rebuilt per-bucket
// sorted lists — against a lists-carrying (SLST) snapshot that skips it.

func BenchmarkStartupBuildPretuned(b *testing.B) {
	q, p := data.Smoke.Scale(4).Generate()
	sample := q.Head(64)
	cfg := Config{Shards: testShards, Options: benchOptions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := New(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, ix := range srv.Sharded().Indexes() {
			if err := ix.PretuneTopK(sample, benchK); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkStartupSnapshot(b *testing.B) {
	q, p := data.Smoke.Scale(4).Generate()
	cfg := Config{Shards: testShards, Options: benchOptions()}
	built, err := New(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, ix := range built.Sharded().Indexes() {
		if err := ix.PretuneTopK(q.Head(64), benchK); err != nil {
			b.Fatal(err)
		}
	}
	bufs := writeShardSnapshots(b, built)
	var total int
	for _, buf := range bufs {
		total += buf.Len()
	}
	b.Logf("snapshot size: %d bytes across %d shards", total, len(bufs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := make([]io.Reader, len(bufs))
		for j, buf := range bufs {
			rs[j] = bytes.NewReader(buf.Bytes())
		}
		if _, err := NewFromSnapshot(rs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOptions() lemp.Options { return lemp.Options{Parallelism: 1} }

// BenchmarkFirstBatchAfterRestore measures a restored server's first batch
// — the moment the lazily built sorted lists are (re)constructed — with and
// without the SLST section. The lists variant should spend its time on
// retrieval, not index rebuilds.
func BenchmarkFirstBatchAfterRestore(b *testing.B) {
	q, p := data.Smoke.Scale(4).Generate()
	cfg := Config{Shards: testShards, Options: benchOptions()}
	built, err := New(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm retrieval builds the sorted lists -save-snapshot would persist.
	if _, _, err := built.Sharded().TopK(q.Head(64), benchK); err != nil {
		b.Fatal(err)
	}
	for _, withLists := range []bool{false, true} {
		name := "plain"
		if withLists {
			name = "lists"
		}
		b.Run(name, func(b *testing.B) {
			var bufs []*bytes.Buffer
			err := built.WriteSnapshotsWith(func(i, n int) (io.WriteCloser, error) {
				bufs = append(bufs, &bytes.Buffer{})
				return nopWriteCloser{bufs[i]}, nil
			}, lemp.SnapshotOptions{IncludeLists: withLists})
			if err != nil {
				b.Fatal(err)
			}
			batch := q.Head(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv, err := NewFromSnapshot(snapshotReaders(bufs), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := srv.Sharded().TopK(batch, benchK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
