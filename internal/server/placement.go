package server

import (
	"fmt"
	"math"

	"lemp"
	"lemp/internal/kmeans"
	"lemp/internal/vecmath"
)

// Shard placement: how a probe catalog is partitioned across shards, and —
// for cluster placement — how whole shards are pruned per query. The
// paper's Cauchy–Schwarz bucket bound (§3.2) lifts one level up: a shard
// whose live probes fit in a direction cone of known angular radius and
// maximum length cannot produce an inner product above
// ‖q‖·MaxLen·cos(max(0, ∠(q, centroid) − radius)), so an Above-θ query
// skips the shard entirely when that bound stays below θ. The bound is
// conservative (padded radius, floored at zero, slack on the per-query
// arithmetic), so exact-mode results stay byte-identical: a pruned shard
// would have contributed nothing to the merge.

// PlacementKind names a shard-placement strategy.
type PlacementKind string

const (
	// PlaceRange is the equal-count contiguous split: shard i holds probe
	// columns [i·n/S, (i+1)·n/S). The default; keeps the range router at
	// one run per shard.
	PlaceRange PlacementKind = "range"
	// PlaceCost partitions contiguously by estimated scan cost — each
	// probe weighted by the l_b of the bucket it lands in — so skewed
	// length distributions no longer leave shards with unequal work. Still
	// contiguous, so the range router stays compact.
	PlaceCost PlacementKind = "cost"
	// PlaceCluster groups directionally similar probes per shard
	// (spherical k-means, seeded by Options.Seed) and stores each shard's
	// direction cone, enabling per-query whole-shard pruning on Above-θ
	// retrievals.
	PlaceCluster PlacementKind = "cluster"
)

// ParsePlacement resolves a placement-strategy name (e.g. a -placement
// flag value).
func ParsePlacement(s string) (PlacementKind, error) {
	switch k := PlacementKind(s); k {
	case PlaceRange, PlaceCost, PlaceCluster:
		return k, nil
	}
	return "", fmt.Errorf("server: unknown placement %q (want range, cost or cluster)", s)
}

// clusterIters bounds the spherical k-means refinement when building a
// cluster placement; the run is deterministic in Options.Seed.
const clusterIters = 25

// shardPart is one shard's slice of a partitioned catalog.
type shardPart struct {
	probe *lemp.Matrix
	ids   []int32
}

// partitionProbes splits the catalog into nShards parts under the given
// placement strategy. ids[i] names probe column i (nil = identity).
// Range and cost parts alias the probe matrix (contiguous slices); cluster
// parts are gathered copies. Cluster parts can be empty — a cluster the
// k-means run left without members — which is legal shard content.
func partitionProbes(kind PlacementKind, probe *lemp.Matrix, ids []int32, nShards int, opts lemp.Options) ([]shardPart, error) {
	n := probe.N()
	colID := func(col int) int32 {
		if ids != nil {
			return ids[col]
		}
		return int32(col)
	}
	contiguous := func(bounds []int) []shardPart {
		parts := make([]shardPart, len(bounds)-1)
		for i := range parts {
			lo, hi := bounds[i], bounds[i+1]
			part := shardPart{probe: probe.Slice(lo, hi), ids: make([]int32, hi-lo)}
			for j := range part.ids {
				part.ids[j] = colID(lo + j)
			}
			parts[i] = part
		}
		return parts
	}
	equalCount := func() []shardPart {
		bounds := make([]int, nShards+1)
		for i := range bounds {
			bounds[i] = i * n / nShards
		}
		return contiguous(bounds)
	}
	switch kind {
	case PlaceRange:
		return equalCount(), nil
	case PlaceCost:
		weights := lemp.ScanCostWeights(probe, opts)
		total := 0.0
		for _, w := range weights {
			total += w
		}
		if total <= 0 {
			// Degenerate catalog (all-zero lengths): cost carries no
			// signal, fall back to equal count.
			return equalCount(), nil
		}
		bounds := make([]int, nShards+1)
		bounds[nShards] = n
		cum := 0.0
		hi := 0
		for i := 0; i < nShards-1; i++ {
			// Cut where the running mass reaches this shard's share, but
			// give every shard at least one probe and leave one for each
			// shard after it.
			target := total * float64(i+1) / float64(nShards)
			if hi < bounds[i]+1 {
				hi = bounds[i] + 1
				cum += weights[hi-1]
			}
			for hi < n-(nShards-1-i) && cum < target {
				cum += weights[hi]
				hi++
			}
			bounds[i+1] = hi
		}
		return contiguous(bounds), nil
	case PlaceCluster:
		res := kmeans.Spherical(probe, nShards, clusterIters, opts.Seed)
		counts := make([]int, nShards)
		for _, c := range res.Assign {
			counts[c]++
		}
		parts := make([]shardPart, nShards)
		r := probe.R()
		for i := range parts {
			parts[i] = shardPart{probe: lemp.NewMatrix(r, counts[i]), ids: make([]int32, 0, counts[i])}
		}
		fill := make([]int, nShards)
		for col := 0; col < n; col++ {
			c := res.Assign[col]
			copy(parts[c].probe.Vec(fill[c]), probe.Vec(col))
			fill[c]++
			parts[c].ids = append(parts[c].ids, colID(col))
		}
		return parts, nil
	}
	return nil, fmt.Errorf("server: unknown placement %q", kind)
}

// coneSlack is the relative slack added to the per-query cone bound before
// the prune comparison, absorbing the rounding of the dot product, the
// query-length division and the cos(a−b) expansion. It only ever raises
// the bound, keeping pruning conservative.
const coneSlack = 1e-9

// coneBound returns a conservative upper bound on qᵀp over every live
// probe p of a shard with the given cone; q has length qlen. A nil cone
// means "no placement information" and never prunes. The bound is floored
// at 0 — a zero-length probe's inner product — and a NaN bound (non-finite
// query) compares false against θ under the !(bound < θ) keep rule, so
// such shards are always scanned.
func coneBound(c *lemp.ShardCone, q []float64, qlen float64) float64 {
	if c == nil {
		return math.Inf(1)
	}
	if c.MaxLen == 0 || qlen == 0 {
		return 0
	}
	if c.Centroid == nil {
		// No usable axis: only the length bound applies.
		return qlen * c.MaxLen
	}
	d := vecmath.Dot(q, c.Centroid) / qlen
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	cosR := c.CosRadius
	// cos(max(0, a−b)) with cos a = d, cos b = cosR, both angles in [0, π]:
	// 1 when the query lies inside the cone (a ≤ b), else the expansion
	// cos a·cos b + sin a·sin b.
	cang := 1.0
	if d < cosR {
		cang = d*cosR + math.Sqrt((1-d*d)*(1-cosR*cosR))
	}
	bound := qlen * c.MaxLen * (cang + coneSlack)
	if bound < 0 {
		return 0
	}
	return bound
}

// widenCone returns a copy of c grown to also enclose vec (an added or
// rewritten probe): MaxLen rises to the vector's length and the radius
// opens to cover its direction. Removals never shrink the cone — stale
// width only costs pruning opportunity, never correctness — so updates
// stay cheap and a drift re-placement restores tightness. A nil cone stays
// nil. The receiver is never mutated: views snapshot cone pointers.
func widenCone(c *lemp.ShardCone, vec []float64) *lemp.ShardCone {
	if c == nil {
		return nil
	}
	nc := *c
	if nc.Centroid == nil {
		if l := vecmath.Norm(vec); l > nc.MaxLen {
			nc.MaxLen = l
		}
		return &nc
	}
	dot, norm2 := vecmath.DotNorm2(nc.Centroid, vec)
	l := math.Sqrt(norm2)
	if l > nc.MaxLen {
		nc.MaxLen = l
	}
	if l > 0 {
		d := dot / l
		if d > 1 {
			d = 1
		}
		d -= 1e-12
		if d < -1 {
			d = -1
		}
		if d < nc.CosRadius {
			nc.CosRadius = d
		}
	}
	return &nc
}
