package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/obs"
)

// obsServer builds a small wired server plus an in-memory JSON log sink.
func obsServer(t *testing.T, cfg Config) (*Server, http.Handler, *logSink) {
	t.Helper()
	_, p := data.Smoke.Generate()
	sink := &logSink{}
	cfg.Logger = slog.New(slog.NewJSONHandler(sink, &slog.HandlerOptions{Level: slog.LevelDebug}))
	srv, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, srv.Handler(), sink
}

// logSink buffers slog JSON output and decodes it back into records.
type logSink struct{ buf bytes.Buffer }

func (s *logSink) Write(p []byte) (int, error) { return s.buf.Write(p) }

func (s *logSink) records(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(s.buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

func (s *logSink) find(t *testing.T, msg string) map[string]any {
	t.Helper()
	for _, rec := range s.records(t) {
		if rec["msg"] == msg {
			return rec
		}
	}
	return nil
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func topKBody(t *testing.T, dim, rows, k int) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"queries":[`)
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		for j := 0; j < dim; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString("0.1")
		}
		b.WriteByte(']')
	}
	b.WriteString(`],"k":`)
	b.WriteString(strconv.Itoa(k))
	b.WriteByte('}')
	return b.String()
}

// TestMetricsEndpoint drives real traffic through the handler and checks
// the /metrics exposition parses under the strict in-repo parser with every
// family the dashboards (and the CI smoke check) rely on, plus bounded
// label cardinality.
func TestMetricsEndpoint(t *testing.T) {
	srv, h, _ := obsServer(t, Config{Shards: 2, Options: lemp.Options{Parallelism: 1}})
	dim := srv.Sharded().R()

	if w := doJSON(t, h, "POST", "/v1/topk", topKBody(t, dim, 3, 5)); w.Code != 200 {
		t.Fatalf("topk = %d: %s", w.Code, w.Body.String())
	}
	// Same queries again: cache hits this time.
	if w := doJSON(t, h, "POST", "/v1/topk", topKBody(t, dim, 3, 5)); w.Code != 200 {
		t.Fatalf("topk = %d: %s", w.Code, w.Body.String())
	}
	if w := doJSON(t, h, "POST", "/v1/topk", `{"queries":[[1]],"k":0}`); w.Code != 400 {
		t.Fatalf("bad topk = %d, want 400", w.Code)
	}
	if w := doJSON(t, h, "POST", "/v1/update", `{"updates":[{"op":"remove","id":0}]}`); w.Code != 200 {
		t.Fatalf("update = %d: %s", w.Code, w.Body.String())
	}

	w := doJSON(t, h, "GET", "/metrics", "")
	if w.Code != 200 {
		t.Fatalf("/metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParseExposition(strings.NewReader(w.Body.String()))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, w.Body.String())
	}
	required := []string{
		"lemp_requests_in_flight", "lemp_request_duration_seconds",
		"lemp_http_requests_total", "lemp_batch_wait_seconds",
		"lemp_batch_rows", "lemp_shard_scan_seconds", "lemp_merge_seconds",
		"lemp_core_candidates_total", "lemp_core_results_total",
		"lemp_core_block_verified_total", "lemp_core_scalar_verified_total",
		"lemp_core_processed_pairs_total", "lemp_core_pruned_pairs_total",
		"lemp_core_tunings_total", "lemp_core_tune_cache_hits_total",
		"lemp_core_tune_seconds_total", "lemp_core_scan_seconds_total",
		"lemp_slow_queries_total", "lemp_uptime_seconds", "lemp_ready",
		"lemp_epoch", "lemp_live_probes", "lemp_shards",
		"lemp_requests_total", "lemp_updates_total", "lemp_compactions_total",
		"lemp_batches_total", "lemp_batch_rows_total", "lemp_batch_queue_rows",
		"lemp_cache_hits_total", "lemp_cache_misses_total",
		"lemp_cache_rows", "lemp_cache_entries",
		"lemp_traces_finished_total", "lemp_traces_retained_total",
		"lemp_requests_shed_total", "lemp_batch_dispatch_idle_ns",
	}
	for _, name := range required {
		if fams[name] == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}

	value := func(name string, labels map[string]string) (float64, bool) {
		f := fams[name]
		if f == nil {
			return 0, false
		}
	samples:
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			for k, v := range labels {
				if s.Labels[k] != v {
					continue samples
				}
			}
			return s.Value, true
		}
		return 0, false
	}
	if v, ok := value("lemp_http_requests_total", map[string]string{"endpoint": "topk", "status": "200"}); !ok || v != 2 {
		t.Errorf("topk 200 count = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := value("lemp_http_requests_total", map[string]string{"endpoint": "topk", "status": "400"}); !ok || v != 1 {
		t.Errorf("topk 400 count = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := value("lemp_http_requests_total", map[string]string{"endpoint": "update", "status": "200"}); !ok || v != 1 {
		t.Errorf("update 200 count = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := value("lemp_core_candidates_total", nil); !ok || v <= 0 {
		t.Errorf("core candidates = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := value("lemp_cache_hits_total", nil); !ok || v != 3 {
		t.Errorf("cache hits = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := value("lemp_shards", nil); !ok || v != 2 {
		t.Errorf("lemp_shards = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := value("lemp_epoch", nil); !ok || v != 1 {
		t.Errorf("lemp_epoch = %v (ok=%v), want 1 after one update", v, ok)
	}
	// One scan histogram per shard and nothing more: label cardinality on
	// the per-shard family is bounded by the shard count.
	if card := fams["lemp_shard_scan_seconds"].LabelCardinality(); card != 2 {
		t.Errorf("lemp_shard_scan_seconds cardinality = %d, want 2", card)
	}
	if v, ok := value("lemp_request_duration_seconds_count", nil); ok && v == 0 {
		t.Errorf("request duration histogram recorded nothing")
	}
}

// TestTraceHeaderAndRing checks the per-request trace contract: retrieval
// responses carry X-Lemp-Trace, and with SampleRate 1 the same id is
// retrievable from GET /debug/traces with the span tree intact. The batch
// window is on, so the trace must show the coalescing shape: the wait span,
// the shared-retrieval span, and the shard/scan/merge spans adopted from
// the batch's scratch trace.
func TestTraceHeaderAndRing(t *testing.T) {
	srv, h, _ := obsServer(t, Config{
		Shards:          2,
		Options:         lemp.Options{Parallelism: 1},
		TraceSampleRate: 1,
		BatchWindow:     100 * time.Microsecond,
	})
	dim := srv.Sharded().R()

	w := doJSON(t, h, "POST", "/v1/topk", topKBody(t, dim, 2, 5))
	if w.Code != 200 {
		t.Fatalf("topk = %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Lemp-Trace")
	if len(id) != 16 {
		t.Fatalf("X-Lemp-Trace = %q, want 16 hex digits", id)
	}
	// Probe endpoints are untraced: no header, no ring entry.
	if hdr := doJSON(t, h, "GET", "/healthz", "").Header().Get("X-Lemp-Trace"); hdr != "" {
		t.Fatalf("/healthz carries a trace header %q", hdr)
	}

	tw := doJSON(t, h, "GET", "/debug/traces", "")
	if tw.Code != 200 {
		t.Fatalf("/debug/traces = %d", tw.Code)
	}
	var resp struct {
		Traces []*obs.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(tw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(resp.Traces))
	}
	snap := resp.Traces[0]
	if snap.TraceID != id {
		t.Fatalf("ring trace id %s != header %s", snap.TraceID, id)
	}
	if snap.Kind != "topk" || snap.Rows != 2 {
		t.Fatalf("trace meta = kind %q rows %d, want topk/2", snap.Kind, snap.Rows)
	}
	names := map[string]int{}
	shards := map[int32]bool{}
	for _, sp := range snap.Spans {
		names[sp.Name]++
		if sp.Name == "shard" {
			shards[sp.Shard] = true
		}
	}
	for _, want := range []string{"topk", "batch.wait", "batch.retrieve", "shard", "scan", "merge"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace (have %v)", want, names)
		}
	}
	if !shards[0] || !shards[1] {
		t.Errorf("shard fan-out spans incomplete: %v", shards)
	}
}

// TestSlowQueryLog forces every request over the slow threshold and checks
// the three-way agreement the debugging workflow depends on: the response
// header, the slow-query log record, and the retained trace all name the
// same trace id.
func TestSlowQueryLog(t *testing.T) {
	srv, h, sink := obsServer(t, Config{
		Shards:             2,
		Options:            lemp.Options{Parallelism: 1},
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	dim := srv.Sharded().R()

	w := doJSON(t, h, "POST", "/v1/topk", topKBody(t, dim, 2, 5))
	if w.Code != 200 {
		t.Fatalf("topk = %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Lemp-Trace")

	rec := sink.find(t, "slow query")
	if rec == nil {
		t.Fatalf("no slow-query record in log:\n%s", sink.buf.String())
	}
	if rec["level"] != "WARN" {
		t.Errorf("slow query logged at %v, want WARN", rec["level"])
	}
	if rec["trace"] != id {
		t.Errorf("slow-query trace = %v, header = %s", rec["trace"], id)
	}
	if rec["endpoint"] != "topk" || rec["rows"] != float64(2) {
		t.Errorf("slow-query record wrong: %v", rec)
	}
	if rec["scan_ns"] == nil || rec["shards"] == nil {
		t.Errorf("slow-query record missing phase timings: %v", rec)
	}
	if sh, ok := rec["shards"].([]any); !ok || len(sh) != 2 {
		t.Errorf("slow-query shard timings = %v, want 2 entries", rec["shards"])
	}

	// Slow requests are retained even at sample rate 0.
	var resp struct {
		Traces []*obs.TraceSnapshot `json:"traces"`
	}
	tw := doJSON(t, h, "GET", "/debug/traces", "")
	if err := json.Unmarshal(tw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Traces) != 1 || resp.Traces[0].TraceID != id || !resp.Traces[0].Slow {
		t.Fatalf("slow trace not retained correctly: %+v", resp.Traces)
	}

	// The slow-query counter moved.
	mw := doJSON(t, h, "GET", "/metrics", "")
	fams, err := obs.ParseExposition(strings.NewReader(mw.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fams["lemp_slow_queries_total"].Samples {
		if s.Value < 1 {
			t.Errorf("lemp_slow_queries_total = %v, want >= 1", s.Value)
		}
	}
}

// TestReadyzLifecycle pins the readiness contract: ready on construction,
// 503 "starting" while warm-up clears it, 503 "draining" permanently after
// BeginDrain — while /healthz stays 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	srv, h, sink := obsServer(t, Config{Shards: 1, Options: lemp.Options{Parallelism: 1}})

	status := func() (int, string) {
		w := doJSON(t, h, "GET", "/readyz", "")
		var body struct {
			Status string `json:"status"`
		}
		json.Unmarshal(w.Body.Bytes(), &body)
		return w.Code, body.Status
	}
	if code, st := status(); code != 200 || st != "ready" {
		t.Fatalf("initial readyz = %d %q, want 200 ready", code, st)
	}
	srv.SetReady(false)
	if code, st := status(); code != 503 || st != "starting" {
		t.Fatalf("unready readyz = %d %q, want 503 starting", code, st)
	}
	if w := doJSON(t, h, "GET", "/healthz", ""); w.Code != 200 {
		t.Fatalf("healthz during warm-up = %d, want 200", w.Code)
	}
	srv.SetReady(true)
	srv.BeginDrain()
	srv.BeginDrain() // idempotent
	if code, st := status(); code != 503 || st != "draining" {
		t.Fatalf("draining readyz = %d %q, want 503 draining", code, st)
	}
	srv.SetReady(true) // ready cannot undo draining
	if code, _ := status(); code != 503 {
		t.Fatalf("readyz after drain+SetReady = %d, want 503", code)
	}
	if w := doJSON(t, h, "GET", "/healthz", ""); w.Code != 200 {
		t.Fatalf("healthz during drain = %d, want 200", w.Code)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if rec := sink.find(t, "draining"); rec == nil {
		t.Fatal("BeginDrain logged no lifecycle event")
	}
	// lemp_ready reflects the drain.
	mw := doJSON(t, h, "GET", "/metrics", "")
	fams, err := obs.ParseExposition(strings.NewReader(mw.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v := fams["lemp_ready"].Samples[0].Value; v != 0 {
		t.Fatalf("lemp_ready = %v while draining, want 0", v)
	}
}

// TestAccessLog checks every request emits a debug-level access record with
// the fields an operator greps for.
func TestAccessLog(t *testing.T) {
	srv, h, sink := obsServer(t, Config{Shards: 1, Options: lemp.Options{Parallelism: 1}})
	dim := srv.Sharded().R()
	w := doJSON(t, h, "POST", "/v1/topk", topKBody(t, dim, 1, 3))
	if w.Code != 200 {
		t.Fatalf("topk = %d", w.Code)
	}
	rec := sink.find(t, "request")
	if rec == nil {
		t.Fatalf("no access record in log:\n%s", sink.buf.String())
	}
	if rec["method"] != "POST" || rec["path"] != "/v1/topk" || rec["status"] != float64(200) {
		t.Errorf("access record wrong: %v", rec)
	}
	if rec["trace"] != w.Header().Get("X-Lemp-Trace") {
		t.Errorf("access trace = %v, header = %q", rec["trace"], w.Header().Get("X-Lemp-Trace"))
	}
	if b, ok := rec["bytes"].(float64); !ok || b <= 0 {
		t.Errorf("access bytes = %v, want > 0", rec["bytes"])
	}
	if rec["duration"] == nil {
		t.Errorf("access record missing duration: %v", rec)
	}
}

// TestStatsDurations checks /stats serves the machine-stable _ns integers
// alongside the human-readable strings, and that they agree.
func TestStatsDurations(t *testing.T) {
	srv, h, _ := obsServer(t, Config{Shards: 2, Options: lemp.Options{Parallelism: 1}, CacheEntries: -1})
	dim := srv.Sharded().R()
	if w := doJSON(t, h, "POST", "/v1/topk", topKBody(t, dim, 2, 5)); w.Code != 200 {
		t.Fatalf("topk = %d", w.Code)
	}
	w := doJSON(t, h, "GET", "/stats", "")
	if w.Code != 200 {
		t.Fatalf("/stats = %d", w.Code)
	}
	var st struct {
		Core struct {
			PrepNS      int64  `json:"prep_ns"`
			Prep        string `json:"prep"`
			TuneNS      int64  `json:"tune_ns"`
			Tune        string `json:"tune"`
			RetrievalNS int64  `json:"retrieval_ns"`
			Retrieval   string `json:"retrieval"`
		} `json:"core"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	c := st.Core
	if c.RetrievalNS <= 0 {
		t.Fatalf("retrieval_ns = %d, want > 0 after a query", c.RetrievalNS)
	}
	for _, pair := range []struct {
		ns  int64
		str string
	}{{c.PrepNS, c.Prep}, {c.TuneNS, c.Tune}, {c.RetrievalNS, c.Retrieval}} {
		d, err := time.ParseDuration(pair.str)
		if err != nil {
			t.Fatalf("duration string %q does not parse: %v", pair.str, err)
		}
		if d.Nanoseconds() != pair.ns {
			t.Fatalf("duration pair disagrees: %q != %dns", pair.str, pair.ns)
		}
	}
}

// TestPprofGate checks the profiling endpoints are mounted only on opt-in.
func TestPprofGate(t *testing.T) {
	_, off, _ := obsServer(t, Config{Shards: 1, Options: lemp.Options{Parallelism: 1}})
	if w := doJSON(t, off, "GET", "/debug/pprof/", ""); w.Code == 200 {
		t.Fatal("pprof served without EnablePprof")
	}
	_, on, _ := obsServer(t, Config{Shards: 1, Options: lemp.Options{Parallelism: 1}, EnablePprof: true})
	if w := doJSON(t, on, "GET", "/debug/pprof/", ""); w.Code != 200 {
		t.Fatalf("pprof index = %d with EnablePprof, want 200", w.Code)
	}
}
