package server

import (
	"sync"
	"time"

	"lemp"
)

// Batcher coalesces concurrent retrieval requests into whole-matrix calls.
// LEMP's drivers are batch-oriented — RowTopK and AboveTheta take a query
// *matrix* — so serving one HTTP request per retrieval call wastes the
// amortization the paper's design invites. The batcher holds each incoming
// request for at most Window, merging every request with identical
// parameters (same k, or same θ) that arrives meanwhile into one query
// matrix; the combined batch is dispatched as a single sharded retrieval
// and the per-query result rows are scattered back to the waiting callers.
//
// A batch is dispatched when it reaches MaxBatch rows or when Window
// elapses after its first request, whichever comes first. Window <= 0 or
// MaxBatch <= 1 disables coalescing: every request dispatches immediately.
//
// Batches are epoch-pinned: requests only coalesce when they were admitted
// at the same update epoch, and the combined retrieval runs on the View of
// that epoch — never on a newer probe set — so a caller that keyed its
// cache entries to an epoch receives results consistent with it.
type Batcher struct {
	sharded *Sharded
	window  time.Duration
	max     int

	// onDispatch, if set, observes every dispatched batch: the number of
	// query rows and the number of coalesced requests it served.
	onDispatch func(rows, requests int)

	mu      sync.Mutex
	forming map[batchKey]*formingBatch
}

// batchKey identifies requests that can share one retrieval call: the
// problem kind plus its parameter, and the update epoch the request was
// admitted at. Rows of a query matrix share one k or θ; requests from
// different epochs never share a call.
type batchKey struct {
	topk  bool
	k     int
	theta float64
	epoch uint64
}

// formingBatch is a batch still accepting rows.
type formingBatch struct {
	key     batchKey
	view    *View     // the epoch snapshot the batch will retrieve on
	data    []float64 // concatenated query vectors
	rows    int
	waiters []*waiter
	timer   *time.Timer
	fired   bool // dispatched (by size or timer); no longer accepting rows
}

// waiter is one caller's slice of a forming batch: rows [off, off+n).
type waiter struct {
	off, n int
	done   chan batchResult
}

// batchResult carries one caller's per-query result rows. Entry.Query is
// rewritten to the caller's own row numbering; probe ids are global.
type batchResult struct {
	rows [][]lemp.Entry
	err  error
}

// NewBatcher wraps a sharded index with request coalescing.
func NewBatcher(sh *Sharded, window time.Duration, maxBatch int) *Batcher {
	return &Batcher{
		sharded: sh,
		window:  window,
		max:     maxBatch,
		forming: make(map[batchKey]*formingBatch),
	}
}

// TopK submits one request's query rows (concatenated vectors of dimension
// R) for Row-Top-k retrieval at the current epoch and blocks until its
// batch completes. The returned rows parallel the submitted queries.
func (b *Batcher) TopK(data []float64, rows, k int) ([][]lemp.Entry, error) {
	return b.TopKAt(b.sharded.CurrentView(), data, rows, k)
}

// TopKAt is TopK pinned to the caller's epoch snapshot.
func (b *Batcher) TopKAt(v *View, data []float64, rows, k int) ([][]lemp.Entry, error) {
	return b.submit(batchKey{topk: true, k: k, epoch: v.Epoch()}, v, data, rows)
}

// AboveTheta submits one request's query rows for Above-θ retrieval at the
// current epoch and blocks until its batch completes.
func (b *Batcher) AboveTheta(data []float64, rows int, theta float64) ([][]lemp.Entry, error) {
	return b.AboveThetaAt(b.sharded.CurrentView(), data, rows, theta)
}

// AboveThetaAt is AboveTheta pinned to the caller's epoch snapshot.
func (b *Batcher) AboveThetaAt(v *View, data []float64, rows int, theta float64) ([][]lemp.Entry, error) {
	return b.submit(batchKey{theta: theta, epoch: v.Epoch()}, v, data, rows)
}

func (b *Batcher) submit(key batchKey, v *View, data []float64, rows int) ([][]lemp.Entry, error) {
	if rows == 0 {
		return nil, nil
	}
	if b.window <= 0 || b.max <= 1 {
		res := b.retrieve(key, v, data, rows, 1)
		return res.rows, res.err
	}

	b.mu.Lock()
	fb := b.forming[key]
	if fb == nil || fb.fired || fb.rows+rows > b.max {
		// Start a new batch. An oversized or displaced predecessor keeps
		// running; it simply stops being the forming batch for this key.
		if fb != nil && !fb.fired {
			b.fire(fb)
		}
		fb = &formingBatch{key: key, view: v}
		fb.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.fire(fb)
		})
		b.forming[key] = fb
	}
	w := &waiter{off: fb.rows, n: rows, done: make(chan batchResult, 1)}
	fb.data = append(fb.data, data...)
	fb.rows += rows
	fb.waiters = append(fb.waiters, w)
	if fb.rows >= b.max {
		b.fire(fb)
	}
	b.mu.Unlock()

	res := <-w.done
	return res.rows, res.err
}

// fire dispatches fb on its own goroutine. Callers must hold b.mu.
func (b *Batcher) fire(fb *formingBatch) {
	if fb.fired {
		return
	}
	fb.fired = true
	fb.timer.Stop()
	if b.forming[fb.key] == fb {
		delete(b.forming, fb.key)
	}
	go b.dispatch(fb)
}

// dispatch runs the combined retrieval and scatters rows to the waiters.
func (b *Batcher) dispatch(fb *formingBatch) {
	res := b.retrieve(fb.key, fb.view, fb.data, fb.rows, len(fb.waiters))
	for _, w := range fb.waiters {
		if res.err != nil {
			w.done <- batchResult{err: res.err}
			continue
		}
		rows := res.rows[w.off : w.off+w.n]
		for i, row := range rows {
			for j := range row {
				row[j].Query = i
			}
		}
		w.done <- batchResult{rows: rows}
	}
}

// retrieve performs one sharded retrieval over a batch of rows, on the
// epoch snapshot the batch was admitted at.
func (b *Batcher) retrieve(key batchKey, v *View, data []float64, rows, requests int) batchResult {
	q, err := lemp.MatrixFromData(b.sharded.R(), rows, data)
	if err != nil {
		return batchResult{err: err}
	}
	if b.onDispatch != nil {
		b.onDispatch(rows, requests)
	}
	if key.topk {
		top, _, err := v.TopK(q, key.k)
		if err != nil {
			return batchResult{err: err}
		}
		return batchResult{rows: top}
	}
	out, _, err := v.AboveTheta(q, key.theta)
	if err != nil {
		return batchResult{err: err}
	}
	return batchResult{rows: out}
}
