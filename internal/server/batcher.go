package server

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lemp"
	"lemp/internal/obs"
)

// BatchMode selects when a forming batch dispatches.
type BatchMode int

const (
	// BatchModeWindow is the classic micro-batcher: a forming batch always
	// waits out the full window (or fills to MaxBatch), even when the
	// index is idle. Maximizes coalescing at the cost of a fixed window of
	// added latency on every request.
	BatchModeWindow BatchMode = iota
	// BatchModeContinuous dispatches a forming batch the moment the key's
	// previous retrieval completes — and immediately when the key has no
	// retrieval in flight — with window and MaxBatch kept as upper bounds.
	// Low-load requests pay no window penalty (an idle index dispatches
	// them at once) and high-load dispatches run back-to-back with zero
	// idle gap, coalescing exactly the requests that arrived during the
	// previous retrieval.
	BatchModeContinuous
)

// String returns the mode's flag spelling.
func (m BatchMode) String() string {
	if m == BatchModeContinuous {
		return "continuous"
	}
	return "window"
}

// ParseBatchMode parses a -batch-mode flag value. The empty string is the
// default, continuous.
func ParseBatchMode(s string) (BatchMode, error) {
	switch s {
	case "", "continuous":
		return BatchModeContinuous, nil
	case "window":
		return BatchModeWindow, nil
	}
	return 0, fmt.Errorf("server: unknown batch mode %q (want window or continuous)", s)
}

// Batcher coalesces concurrent retrieval requests into whole-matrix calls.
// LEMP's drivers are batch-oriented — Row-Top-k and Above-θ take a query
// *matrix* — so serving one HTTP request per retrieval call wastes the
// amortization the paper's design invites. The batcher holds each incoming
// request for at most Window, merging every request with identical
// parameters (same k, or same θ) that arrives meanwhile into one query
// matrix; the combined batch is dispatched as a single sharded retrieval
// and the per-query result rows are scattered back to the waiting callers.
//
// Dispatch timing depends on the mode. In BatchModeWindow a batch
// dispatches when it reaches MaxBatch rows or when Window elapses after
// its first request, whichever comes first. In BatchModeContinuous (the
// default) those stay as upper bounds, but a batch additionally dispatches
// the moment its key has no retrieval in flight — immediately for the
// first request after idle, and back-to-back as each retrieval completes
// under load. Window <= 0 or MaxBatch <= 1 disables coalescing entirely:
// every request dispatches immediately on its own context.
//
// Batches are epoch-pinned: requests only coalesce when they were admitted
// at the same update epoch, and the combined retrieval runs on the View of
// that epoch — never on a newer probe set — so a caller that keyed its
// cache entries to an epoch receives results consistent with it.
//
// Contexts merge: the combined retrieval runs under a batch context that
// is canceled only when every caller's context has been canceled — one
// impatient client cannot abort work its batch-mates still want — and a
// caller whose own context ends returns immediately with ctx.Err() while
// the batch (if anyone is left) runs on. When the last caller leaves, the
// batch context cancels and the sharded scan aborts mid-bucket.
type Batcher struct {
	sharded *Sharded
	window  time.Duration
	max     int
	mode    BatchMode

	// onDispatch, if set, observes every dispatched batch: the number of
	// query rows and the number of coalesced requests it served.
	onDispatch func(rows, requests int)

	// Observability hooks, wired by the server and nil for library use.
	// batchWaitHist observes each waiter's coalescing delay, batchRowsHist
	// each dispatched call's row count. dispatchIdle accumulates the
	// nanoseconds a key's index sat idle while a forming batch waited to
	// dispatch — the window penalty continuous mode exists to remove.
	// tracer supplies the batch-scoped scratch trace that shared
	// retrievals record spans into; the spans are then adopted into every
	// still-waiting request's own trace, so a coalesced request's trace
	// shows the shard fan-out it shared.
	batchWaitHist *obs.Histogram
	batchRowsHist *obs.Histogram
	dispatchIdle  *obs.Counter
	tracer        *obs.Tracer

	// pending counts query rows sitting in forming (not yet dispatched)
	// batches — the batcher's queue depth, and the admission-control
	// signal the server sheds on.
	pending atomic.Int64

	mu      sync.Mutex
	forming map[batchKey]*formingBatch
	// keys tracks per-key dispatch state: how many retrievals are in
	// flight (continuous mode fires the next forming batch when one
	// completes) and when the key last went idle (for the idle-gap
	// metric). Entries are reaped once a key has neither in-flight
	// dispatches nor a forming batch, so the map stays bounded across
	// epochs and parameter churn.
	keys map[batchKey]*keyState
}

// keyState is the per-key dispatch bookkeeping. Guarded by Batcher.mu.
type keyState struct {
	inflight int       // dispatched-but-unfinished retrievals for the key
	lastDone time.Time // when inflight last dropped to zero
}

// PendingRows returns the number of query rows currently waiting in
// forming batches.
func (b *Batcher) PendingRows() int64 { return b.pending.Load() }

// batchKey identifies requests that can share one retrieval call: the
// problem kind plus its parameter, and the update epoch the request was
// admitted at. Rows of a query matrix share one k or θ; requests from
// different epochs never share a call.
type batchKey struct {
	topk  bool
	k     int
	theta float64
	epoch uint64
}

// formingBatch is a batch still accepting rows.
type formingBatch struct {
	key     batchKey
	view    *View     // the epoch snapshot the batch will retrieve on
	data    []float64 // concatenated query vectors
	rows    int
	waiters []*waiter
	timer   *time.Timer
	created time.Time
	fired   bool // dispatched (by size or timer); no longer accepting rows

	// Merged cancellation: ctx is the batch's retrieval context, live the
	// number of waiters still interested. abandon() decrements live and
	// cancels ctx at zero. Guarded by Batcher.mu.
	ctx    context.Context
	cancel context.CancelFunc
	live   int
}

// waiter is one caller's slice of a forming batch: rows [off, off+n).
// The trace fields tie the caller's request trace to the shared batch:
// waitSpan covers the coalescing delay, retSpan the shared retrieval
// (under which the batch's shard/merge spans are adopted). gone marks a
// waiter whose caller abandoned the batch (context ended); it is guarded
// by Batcher.mu, and dispatch only touches a waiter's trace — or sends
// into its done channel — under that lock while !gone. Once abandon has
// run, the trace is back in the caller's hands and the batcher never
// touches the waiter again.
type waiter struct {
	off, n int
	done   chan batchResult

	tr       *obs.Trace
	parent   obs.SpanRef
	waitSpan obs.SpanRef
	retSpan  obs.SpanRef
	joined   time.Time
	gone     bool
}

// batchResult carries one caller's per-query result rows and the batch's
// core stats (shared by every waiter of the batch — the retrieval ran
// once for all of them). Entry.Query is rewritten to the caller's own row
// numbering; probe ids are global.
type batchResult struct {
	rows  [][]lemp.Entry
	stats lemp.Stats
	err   error
}

// NewBatcher wraps a sharded index with request coalescing in the given
// dispatch mode.
func NewBatcher(sh *Sharded, window time.Duration, maxBatch int, mode BatchMode) *Batcher {
	return &Batcher{
		sharded: sh,
		window:  window,
		max:     maxBatch,
		mode:    mode,
		forming: make(map[batchKey]*formingBatch),
		keys:    make(map[batchKey]*keyState),
	}
}

// Mode returns the batcher's dispatch mode.
func (b *Batcher) Mode() BatchMode { return b.mode }

// TopK submits one request's query rows (concatenated vectors of dimension
// R) for Row-Top-k retrieval at the current epoch and blocks until its
// batch completes or ctx ends. The returned rows parallel the submitted
// queries.
func (b *Batcher) TopK(ctx context.Context, data []float64, rows, k int) ([][]lemp.Entry, error) {
	rowsOut, _, err := b.TopKAt(ctx, b.sharded.CurrentView(), data, rows, k)
	return rowsOut, err
}

// TopKAt is TopK pinned to the caller's epoch snapshot. The returned stats
// are the whole batch's core stats — shared by every coalesced request of
// the batch, since the retrieval ran once for all of them.
func (b *Batcher) TopKAt(ctx context.Context, v *View, data []float64, rows, k int) ([][]lemp.Entry, lemp.Stats, error) {
	if k < 1 {
		// Rejected here, not in the shared retrieval: a bad parameter must
		// fail its own caller, never a coalesced batch.
		return nil, lemp.Stats{}, fmt.Errorf("server: top-k requires k >= 1, got %d", k)
	}
	return b.submit(ctx, batchKey{topk: true, k: k, epoch: v.Epoch()}, v, data, rows)
}

// AboveTheta submits one request's query rows for Above-θ retrieval at the
// current epoch and blocks until its batch completes or ctx ends.
func (b *Batcher) AboveTheta(ctx context.Context, data []float64, rows int, theta float64) ([][]lemp.Entry, error) {
	rowsOut, _, err := b.AboveThetaAt(ctx, b.sharded.CurrentView(), data, rows, theta)
	return rowsOut, err
}

// AboveThetaAt is AboveTheta pinned to the caller's epoch snapshot, with
// the batch's shared core stats.
func (b *Batcher) AboveThetaAt(ctx context.Context, v *View, data []float64, rows int, theta float64) ([][]lemp.Entry, lemp.Stats, error) {
	if math.IsNaN(theta) || math.IsInf(theta, 0) {
		// θ is part of the coalescing key and NaN != NaN: an admitted NaN
		// could never find its forming batch again, so every call would
		// orphan a timer-held batch of its own. The HTTP layer rejects
		// these already; the library path must too.
		return nil, lemp.Stats{}, fmt.Errorf("server: theta must be finite, got %v", theta)
	}
	return b.submit(ctx, batchKey{theta: theta, epoch: v.Epoch()}, v, data, rows)
}

func (b *Batcher) submit(ctx context.Context, key batchKey, v *View, data []float64, rows int) ([][]lemp.Entry, lemp.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rows == 0 {
		return nil, lemp.Stats{}, nil
	}
	// Validate the submission's shape before it joins a batch: a malformed
	// library-level submission must fail its own caller alone, not poison
	// the combined MatrixFromData call and fail every innocent batch-mate.
	if r := b.sharded.R(); rows < 0 || len(data) != rows*r {
		return nil, lemp.Stats{}, fmt.Errorf("server: batch submission has %d values for %d rows of dimension %d", len(data), rows, r)
	}
	if b.window <= 0 || b.max <= 1 {
		// No coalescing: the request's own context drives the retrieval,
		// and its trace (if any) receives the shard/merge spans directly.
		res := b.retrieve(ctx, key, v, data, rows, 1)
		return res.rows, res.stats, res.err
	}

	b.mu.Lock()
	fb := b.forming[key]
	if fb == nil || fb.fired || fb.rows+rows > b.max {
		// Start a new batch. An oversized or displaced predecessor keeps
		// running; it simply stops being the forming batch for this key.
		if fb != nil && !fb.fired {
			b.fire(fb)
		}
		fb = &formingBatch{key: key, view: v, created: time.Now()}
		fb.ctx, fb.cancel = context.WithCancel(context.Background())
		fb.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.fire(fb)
		})
		b.forming[key] = fb
	}
	w := &waiter{off: fb.rows, n: rows, done: make(chan batchResult, 1), retSpan: obs.NoSpan, joined: time.Now()}
	w.tr, w.parent = obs.SpanFrom(ctx)
	w.waitSpan = w.tr.Start("batch.wait", w.parent)
	fb.data = append(fb.data, data...)
	fb.rows += rows
	fb.waiters = append(fb.waiters, w)
	fb.live++
	b.pending.Add(int64(rows))
	switch {
	case fb.rows >= b.max:
		b.fire(fb)
	case b.mode == BatchModeContinuous && b.inflight(key) == 0:
		// The index is idle for this key: dispatching now costs nothing in
		// coalescing (nobody else could be served sooner by waiting) and
		// saves the full window of latency. Under load the key has a
		// retrieval in flight and the batch holds until it completes
		// (completion fires it), the window elapses, or max is reached.
		b.fire(fb)
	}
	b.mu.Unlock()

	select {
	case res := <-w.done:
		return res.rows, res.stats, res.err
	case <-ctx.Done():
		// This caller is gone (client disconnect, deadline). Its rows stay
		// in the batch — removing them would renumber other waiters — but
		// when every caller has left, the batch context cancels and the
		// sharded retrieval aborts mid-scan instead of running to
		// completion for nobody.
		b.abandon(fb, w)
		return nil, lemp.Stats{}, ctx.Err()
	}
}

// inflight returns the number of dispatched-but-unfinished retrievals for
// key. Callers must hold b.mu.
func (b *Batcher) inflight(key batchKey) int {
	if ks := b.keys[key]; ks != nil {
		return ks.inflight
	}
	return 0
}

// abandon records one waiter's departure. When the last interested waiter
// leaves, the batch context cancels; if the batch had not fired yet it is
// retired entirely — stopped timer, removed from the forming map — so a
// later caller on the same key starts a fresh batch instead of joining one
// whose merged context is already dead (and inheriting its cancellation).
//
// The departing waiter's trace leaves with its request: gone is set under
// b.mu, after which dispatch never touches w.tr (or sends into w.done)
// again, and any spans the batcher opened are closed here so the request
// can finish its trace immediately.
func (b *Batcher) abandon(fb *formingBatch, w *waiter) {
	b.mu.Lock()
	w.gone = true
	w.tr.End(w.waitSpan)
	w.tr.End(w.retSpan)
	fb.live--
	if fb.live == 0 {
		fb.cancel()
		if !fb.fired {
			// Nobody is waiting: there is nothing to dispatch. Mark the
			// batch fired so submit can never add rows to it again.
			fb.fired = true
			fb.timer.Stop()
			if b.forming[fb.key] == fb {
				delete(b.forming, fb.key)
			}
			b.pending.Add(-int64(fb.rows))
			b.reapKey(fb.key)
		}
	}
	b.mu.Unlock()
}

// fire dispatches fb on its own goroutine and charges the key's idle gap.
// Callers must hold b.mu.
func (b *Batcher) fire(fb *formingBatch) {
	if fb.fired {
		return
	}
	fb.fired = true
	fb.timer.Stop()
	if b.forming[fb.key] == fb {
		delete(b.forming, fb.key)
	}
	b.pending.Add(-int64(fb.rows))
	ks := b.keys[fb.key]
	if ks == nil {
		ks = &keyState{}
		b.keys[fb.key] = ks
	}
	if ks.inflight == 0 {
		// The key's index sat idle while this batch waited: from the later
		// of the batch forming and the previous retrieval completing,
		// until now. Continuous mode keeps this near zero by construction;
		// window mode pays up to the full window here.
		idleStart := fb.created
		if ks.lastDone.After(idleStart) {
			idleStart = ks.lastDone
		}
		b.dispatchIdle.Add(float64(time.Since(idleStart).Nanoseconds()))
	}
	ks.inflight++
	go b.dispatch(fb)
}

// completeDispatch records one retrieval's completion and, in continuous
// mode, fires the key's forming batch (if any) so dispatches stay
// back-to-back with zero idle gap.
func (b *Batcher) completeDispatch(key batchKey) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ks := b.keys[key]
	if ks == nil {
		return
	}
	ks.inflight--
	if ks.inflight == 0 {
		ks.lastDone = time.Now()
	}
	if b.mode == BatchModeContinuous {
		if next := b.forming[key]; next != nil && !next.fired {
			b.fire(next)
			return
		}
	}
	b.reapKey(key)
}

// reapKey drops a key's dispatch state once it is fully quiet — no
// retrieval in flight and no forming batch — so the map does not grow
// without bound across epochs and parameter values. Callers must hold
// b.mu.
func (b *Batcher) reapKey(key batchKey) {
	if ks := b.keys[key]; ks != nil && ks.inflight == 0 && b.forming[key] == nil {
		delete(b.keys, key)
	}
}

// dispatch runs the combined retrieval and scatters rows to the waiters.
//
// Tracing: the shared retrieval cannot record into any single waiter's
// trace — that waiter may abandon (and finish its trace) mid-retrieval —
// so it records into a batch-scoped scratch trace instead, and after the
// retrieval its spans are adopted into every waiter that is still here.
// All per-waiter access (trace and result scatter alike) happens under
// b.mu opposite abandon's gone flag, so a departed request's trace is
// never touched and its result rows are never pinned in a channel nobody
// will read.
func (b *Batcher) dispatch(fb *formingBatch) {
	defer fb.cancel() // release the merged context once everyone is served
	traced := false
	b.mu.Lock()
	for _, w := range fb.waiters {
		if w.gone {
			continue
		}
		w.tr.End(w.waitSpan)
		b.batchWaitHist.ObserveDuration(time.Since(w.joined))
		w.retSpan = w.tr.Start("batch.retrieve", w.parent)
		if w.tr != nil {
			traced = true
		}
	}
	b.mu.Unlock()

	rctx := fb.ctx
	var btr *obs.Trace
	if traced && b.tracer != nil {
		btr = b.tracer.StartTrace()
		rctx = obs.ContextWithSpan(fb.ctx, btr, obs.NoSpan)
	}
	res := b.retrieve(rctx, fb.key, fb.view, fb.data, fb.rows, len(fb.waiters))

	// The retrieval is done: let the next forming batch for this key
	// dispatch before we spend time scattering results, so back-to-back
	// batches overlap the scatter instead of serializing behind it.
	b.completeDispatch(fb.key)

	b.mu.Lock()
	for _, w := range fb.waiters {
		if w.gone {
			// The caller already left with ctx.Err(): sending its result
			// into the buffered done channel would pin the sliced rows
			// until the channel itself is collected, for a reader that
			// will never come.
			continue
		}
		if btr != nil {
			w.tr.AdoptSpans(btr, 0, obs.SpanRef(btr.Len()), w.retSpan)
		}
		w.tr.End(w.retSpan)
		if res.err != nil {
			w.done <- batchResult{stats: res.stats, err: res.err}
			continue
		}
		rows := res.rows[w.off : w.off+w.n]
		for i, row := range rows {
			for j := range row {
				row[j].Query = i
			}
		}
		w.done <- batchResult{rows: rows, stats: res.stats}
	}
	b.mu.Unlock()
	if btr != nil {
		b.tracer.Release(btr)
	}
}

// retrieve performs one sharded retrieval over a batch of rows, on the
// epoch snapshot the batch was admitted at, under the batch's (merged)
// context. Under cluster placement the Above-θ shard dispatch set derives
// from the whole coalesced matrix (a shard is scanned when any batched
// row's cone bound reaches θ), so coalescing can only widen — never
// shrink — the set any individual request would have scanned.
func (b *Batcher) retrieve(ctx context.Context, key batchKey, v *View, data []float64, rows, requests int) batchResult {
	q, err := lemp.MatrixFromData(b.sharded.R(), rows, data)
	if err != nil {
		return batchResult{err: err}
	}
	if b.onDispatch != nil {
		b.onDispatch(rows, requests)
	}
	b.batchRowsHist.Observe(float64(rows))
	if key.topk {
		top, st, err := v.TopKCtx(ctx, q, key.k)
		if err != nil {
			return batchResult{stats: st, err: err}
		}
		return batchResult{rows: top, stats: st}
	}
	out, st, err := v.AboveThetaCtx(ctx, q, key.theta)
	if err != nil {
		return batchResult{stats: st, err: err}
	}
	return batchResult{rows: out, stats: st}
}
