package server

import (
	"context"
	"sync"
	"time"

	"lemp"
)

// Batcher coalesces concurrent retrieval requests into whole-matrix calls.
// LEMP's drivers are batch-oriented — Row-Top-k and Above-θ take a query
// *matrix* — so serving one HTTP request per retrieval call wastes the
// amortization the paper's design invites. The batcher holds each incoming
// request for at most Window, merging every request with identical
// parameters (same k, or same θ) that arrives meanwhile into one query
// matrix; the combined batch is dispatched as a single sharded retrieval
// and the per-query result rows are scattered back to the waiting callers.
//
// A batch is dispatched when it reaches MaxBatch rows or when Window
// elapses after its first request, whichever comes first. Window <= 0 or
// MaxBatch <= 1 disables coalescing: every request dispatches immediately.
//
// Batches are epoch-pinned: requests only coalesce when they were admitted
// at the same update epoch, and the combined retrieval runs on the View of
// that epoch — never on a newer probe set — so a caller that keyed its
// cache entries to an epoch receives results consistent with it.
//
// Contexts merge: the combined retrieval runs under a batch context that
// is canceled only when every caller's context has been canceled — one
// impatient client cannot abort work its batch-mates still want — and a
// caller whose own context ends returns immediately with ctx.Err() while
// the batch (if anyone is left) runs on. When the last caller leaves, the
// batch context cancels and the sharded scan aborts mid-bucket.
type Batcher struct {
	sharded *Sharded
	window  time.Duration
	max     int

	// onDispatch, if set, observes every dispatched batch: the number of
	// query rows and the number of coalesced requests it served.
	onDispatch func(rows, requests int)

	mu      sync.Mutex
	forming map[batchKey]*formingBatch
}

// batchKey identifies requests that can share one retrieval call: the
// problem kind plus its parameter, and the update epoch the request was
// admitted at. Rows of a query matrix share one k or θ; requests from
// different epochs never share a call.
type batchKey struct {
	topk  bool
	k     int
	theta float64
	epoch uint64
}

// formingBatch is a batch still accepting rows.
type formingBatch struct {
	key     batchKey
	view    *View     // the epoch snapshot the batch will retrieve on
	data    []float64 // concatenated query vectors
	rows    int
	waiters []*waiter
	timer   *time.Timer
	fired   bool // dispatched (by size or timer); no longer accepting rows

	// Merged cancellation: ctx is the batch's retrieval context, live the
	// number of waiters still interested. abandon() decrements live and
	// cancels ctx at zero. Guarded by Batcher.mu.
	ctx    context.Context
	cancel context.CancelFunc
	live   int
}

// waiter is one caller's slice of a forming batch: rows [off, off+n).
type waiter struct {
	off, n int
	done   chan batchResult
}

// batchResult carries one caller's per-query result rows. Entry.Query is
// rewritten to the caller's own row numbering; probe ids are global.
type batchResult struct {
	rows [][]lemp.Entry
	err  error
}

// NewBatcher wraps a sharded index with request coalescing.
func NewBatcher(sh *Sharded, window time.Duration, maxBatch int) *Batcher {
	return &Batcher{
		sharded: sh,
		window:  window,
		max:     maxBatch,
		forming: make(map[batchKey]*formingBatch),
	}
}

// TopK submits one request's query rows (concatenated vectors of dimension
// R) for Row-Top-k retrieval at the current epoch and blocks until its
// batch completes or ctx ends. The returned rows parallel the submitted
// queries.
func (b *Batcher) TopK(ctx context.Context, data []float64, rows, k int) ([][]lemp.Entry, error) {
	return b.TopKAt(ctx, b.sharded.CurrentView(), data, rows, k)
}

// TopKAt is TopK pinned to the caller's epoch snapshot.
func (b *Batcher) TopKAt(ctx context.Context, v *View, data []float64, rows, k int) ([][]lemp.Entry, error) {
	return b.submit(ctx, batchKey{topk: true, k: k, epoch: v.Epoch()}, v, data, rows)
}

// AboveTheta submits one request's query rows for Above-θ retrieval at the
// current epoch and blocks until its batch completes or ctx ends.
func (b *Batcher) AboveTheta(ctx context.Context, data []float64, rows int, theta float64) ([][]lemp.Entry, error) {
	return b.AboveThetaAt(ctx, b.sharded.CurrentView(), data, rows, theta)
}

// AboveThetaAt is AboveTheta pinned to the caller's epoch snapshot.
func (b *Batcher) AboveThetaAt(ctx context.Context, v *View, data []float64, rows int, theta float64) ([][]lemp.Entry, error) {
	return b.submit(ctx, batchKey{theta: theta, epoch: v.Epoch()}, v, data, rows)
}

func (b *Batcher) submit(ctx context.Context, key batchKey, v *View, data []float64, rows int) ([][]lemp.Entry, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rows == 0 {
		return nil, nil
	}
	if b.window <= 0 || b.max <= 1 {
		// No coalescing: the request's own context drives the retrieval.
		res := b.retrieve(ctx, key, v, data, rows, 1)
		return res.rows, res.err
	}

	b.mu.Lock()
	fb := b.forming[key]
	if fb == nil || fb.fired || fb.rows+rows > b.max {
		// Start a new batch. An oversized or displaced predecessor keeps
		// running; it simply stops being the forming batch for this key.
		if fb != nil && !fb.fired {
			b.fire(fb)
		}
		fb = &formingBatch{key: key, view: v}
		fb.ctx, fb.cancel = context.WithCancel(context.Background())
		fb.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.fire(fb)
		})
		b.forming[key] = fb
	}
	w := &waiter{off: fb.rows, n: rows, done: make(chan batchResult, 1)}
	fb.data = append(fb.data, data...)
	fb.rows += rows
	fb.waiters = append(fb.waiters, w)
	fb.live++
	if fb.rows >= b.max {
		b.fire(fb)
	}
	b.mu.Unlock()

	select {
	case res := <-w.done:
		return res.rows, res.err
	case <-ctx.Done():
		// This caller is gone (client disconnect, deadline). Its rows stay
		// in the batch — removing them would renumber other waiters — but
		// when every caller has left, the batch context cancels and the
		// sharded retrieval aborts mid-scan instead of running to
		// completion for nobody.
		b.abandon(fb)
		return nil, ctx.Err()
	}
}

// abandon records one waiter's departure. When the last interested waiter
// leaves, the batch context cancels; if the batch had not fired yet it is
// retired entirely — stopped timer, removed from the forming map — so a
// later caller on the same key starts a fresh batch instead of joining one
// whose merged context is already dead (and inheriting its cancellation).
func (b *Batcher) abandon(fb *formingBatch) {
	b.mu.Lock()
	fb.live--
	if fb.live == 0 {
		fb.cancel()
		if !fb.fired {
			// Nobody is waiting: there is nothing to dispatch. Mark the
			// batch fired so submit can never add rows to it again.
			fb.fired = true
			fb.timer.Stop()
			if b.forming[fb.key] == fb {
				delete(b.forming, fb.key)
			}
		}
	}
	b.mu.Unlock()
}

// fire dispatches fb on its own goroutine. Callers must hold b.mu.
func (b *Batcher) fire(fb *formingBatch) {
	if fb.fired {
		return
	}
	fb.fired = true
	fb.timer.Stop()
	if b.forming[fb.key] == fb {
		delete(b.forming, fb.key)
	}
	go b.dispatch(fb)
}

// dispatch runs the combined retrieval and scatters rows to the waiters.
func (b *Batcher) dispatch(fb *formingBatch) {
	defer fb.cancel() // release the merged context once everyone is served
	res := b.retrieve(fb.ctx, fb.key, fb.view, fb.data, fb.rows, len(fb.waiters))
	for _, w := range fb.waiters {
		if res.err != nil {
			w.done <- batchResult{err: res.err}
			continue
		}
		rows := res.rows[w.off : w.off+w.n]
		for i, row := range rows {
			for j := range row {
				row[j].Query = i
			}
		}
		w.done <- batchResult{rows: rows}
	}
}

// retrieve performs one sharded retrieval over a batch of rows, on the
// epoch snapshot the batch was admitted at, under the batch's (merged)
// context.
func (b *Batcher) retrieve(ctx context.Context, key batchKey, v *View, data []float64, rows, requests int) batchResult {
	q, err := lemp.MatrixFromData(b.sharded.R(), rows, data)
	if err != nil {
		return batchResult{err: err}
	}
	if b.onDispatch != nil {
		b.onDispatch(rows, requests)
	}
	if key.topk {
		top, _, err := v.TopKCtx(ctx, q, key.k)
		if err != nil {
			return batchResult{err: err}
		}
		return batchResult{rows: top}
	}
	out, _, err := v.AboveThetaCtx(ctx, q, key.theta)
	if err != nil {
		return batchResult{err: err}
	}
	return batchResult{rows: out}
}
