package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"lemp"
	"lemp/internal/obs"
)

// Batcher coalesces concurrent retrieval requests into whole-matrix calls.
// LEMP's drivers are batch-oriented — Row-Top-k and Above-θ take a query
// *matrix* — so serving one HTTP request per retrieval call wastes the
// amortization the paper's design invites. The batcher holds each incoming
// request for at most Window, merging every request with identical
// parameters (same k, or same θ) that arrives meanwhile into one query
// matrix; the combined batch is dispatched as a single sharded retrieval
// and the per-query result rows are scattered back to the waiting callers.
//
// A batch is dispatched when it reaches MaxBatch rows or when Window
// elapses after its first request, whichever comes first. Window <= 0 or
// MaxBatch <= 1 disables coalescing: every request dispatches immediately.
//
// Batches are epoch-pinned: requests only coalesce when they were admitted
// at the same update epoch, and the combined retrieval runs on the View of
// that epoch — never on a newer probe set — so a caller that keyed its
// cache entries to an epoch receives results consistent with it.
//
// Contexts merge: the combined retrieval runs under a batch context that
// is canceled only when every caller's context has been canceled — one
// impatient client cannot abort work its batch-mates still want — and a
// caller whose own context ends returns immediately with ctx.Err() while
// the batch (if anyone is left) runs on. When the last caller leaves, the
// batch context cancels and the sharded scan aborts mid-bucket.
type Batcher struct {
	sharded *Sharded
	window  time.Duration
	max     int

	// onDispatch, if set, observes every dispatched batch: the number of
	// query rows and the number of coalesced requests it served.
	onDispatch func(rows, requests int)

	// Observability hooks, wired by the server and nil for library use.
	// batchWaitHist observes each waiter's coalescing delay, batchRowsHist
	// each dispatched call's row count. tracer supplies the batch-scoped
	// scratch trace that shared retrievals record spans into; the spans
	// are then adopted into every still-waiting request's own trace, so a
	// coalesced request's trace shows the shard fan-out it shared.
	batchWaitHist *obs.Histogram
	batchRowsHist *obs.Histogram
	tracer        *obs.Tracer

	// pending counts query rows sitting in forming (not yet dispatched)
	// batches — the batcher's queue depth.
	pending atomic.Int64

	mu      sync.Mutex
	forming map[batchKey]*formingBatch
}

// PendingRows returns the number of query rows currently waiting in
// forming batches.
func (b *Batcher) PendingRows() int64 { return b.pending.Load() }

// batchKey identifies requests that can share one retrieval call: the
// problem kind plus its parameter, and the update epoch the request was
// admitted at. Rows of a query matrix share one k or θ; requests from
// different epochs never share a call.
type batchKey struct {
	topk  bool
	k     int
	theta float64
	epoch uint64
}

// formingBatch is a batch still accepting rows.
type formingBatch struct {
	key     batchKey
	view    *View     // the epoch snapshot the batch will retrieve on
	data    []float64 // concatenated query vectors
	rows    int
	waiters []*waiter
	timer   *time.Timer
	fired   bool // dispatched (by size or timer); no longer accepting rows

	// Merged cancellation: ctx is the batch's retrieval context, live the
	// number of waiters still interested. abandon() decrements live and
	// cancels ctx at zero. Guarded by Batcher.mu.
	ctx    context.Context
	cancel context.CancelFunc
	live   int
}

// waiter is one caller's slice of a forming batch: rows [off, off+n).
// The trace fields tie the caller's request trace to the shared batch:
// waitSpan covers the coalescing delay, retSpan the shared retrieval
// (under which the batch's shard/merge spans are adopted). gone marks a
// waiter whose caller abandoned the batch (context ended); it is guarded
// by Batcher.mu, and dispatch only touches a waiter's trace under that
// lock while !gone — once abandon has run, the trace is back in the
// caller's hands and the batcher never touches it again.
type waiter struct {
	off, n int
	done   chan batchResult

	tr       *obs.Trace
	parent   obs.SpanRef
	waitSpan obs.SpanRef
	retSpan  obs.SpanRef
	joined   time.Time
	gone     bool
}

// batchResult carries one caller's per-query result rows and the batch's
// core stats (shared by every waiter of the batch — the retrieval ran
// once for all of them). Entry.Query is rewritten to the caller's own row
// numbering; probe ids are global.
type batchResult struct {
	rows  [][]lemp.Entry
	stats lemp.Stats
	err   error
}

// NewBatcher wraps a sharded index with request coalescing.
func NewBatcher(sh *Sharded, window time.Duration, maxBatch int) *Batcher {
	return &Batcher{
		sharded: sh,
		window:  window,
		max:     maxBatch,
		forming: make(map[batchKey]*formingBatch),
	}
}

// TopK submits one request's query rows (concatenated vectors of dimension
// R) for Row-Top-k retrieval at the current epoch and blocks until its
// batch completes or ctx ends. The returned rows parallel the submitted
// queries.
func (b *Batcher) TopK(ctx context.Context, data []float64, rows, k int) ([][]lemp.Entry, error) {
	rowsOut, _, err := b.TopKAt(ctx, b.sharded.CurrentView(), data, rows, k)
	return rowsOut, err
}

// TopKAt is TopK pinned to the caller's epoch snapshot. The returned stats
// are the whole batch's core stats — shared by every coalesced request of
// the batch, since the retrieval ran once for all of them.
func (b *Batcher) TopKAt(ctx context.Context, v *View, data []float64, rows, k int) ([][]lemp.Entry, lemp.Stats, error) {
	return b.submit(ctx, batchKey{topk: true, k: k, epoch: v.Epoch()}, v, data, rows)
}

// AboveTheta submits one request's query rows for Above-θ retrieval at the
// current epoch and blocks until its batch completes or ctx ends.
func (b *Batcher) AboveTheta(ctx context.Context, data []float64, rows int, theta float64) ([][]lemp.Entry, error) {
	rowsOut, _, err := b.AboveThetaAt(ctx, b.sharded.CurrentView(), data, rows, theta)
	return rowsOut, err
}

// AboveThetaAt is AboveTheta pinned to the caller's epoch snapshot, with
// the batch's shared core stats.
func (b *Batcher) AboveThetaAt(ctx context.Context, v *View, data []float64, rows int, theta float64) ([][]lemp.Entry, lemp.Stats, error) {
	return b.submit(ctx, batchKey{theta: theta, epoch: v.Epoch()}, v, data, rows)
}

func (b *Batcher) submit(ctx context.Context, key batchKey, v *View, data []float64, rows int) ([][]lemp.Entry, lemp.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rows == 0 {
		return nil, lemp.Stats{}, nil
	}
	if b.window <= 0 || b.max <= 1 {
		// No coalescing: the request's own context drives the retrieval,
		// and its trace (if any) receives the shard/merge spans directly.
		res := b.retrieve(ctx, key, v, data, rows, 1)
		return res.rows, res.stats, res.err
	}

	b.mu.Lock()
	fb := b.forming[key]
	if fb == nil || fb.fired || fb.rows+rows > b.max {
		// Start a new batch. An oversized or displaced predecessor keeps
		// running; it simply stops being the forming batch for this key.
		if fb != nil && !fb.fired {
			b.fire(fb)
		}
		fb = &formingBatch{key: key, view: v}
		fb.ctx, fb.cancel = context.WithCancel(context.Background())
		fb.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.fire(fb)
		})
		b.forming[key] = fb
	}
	w := &waiter{off: fb.rows, n: rows, done: make(chan batchResult, 1), retSpan: obs.NoSpan, joined: time.Now()}
	w.tr, w.parent = obs.SpanFrom(ctx)
	w.waitSpan = w.tr.Start("batch.wait", w.parent)
	fb.data = append(fb.data, data...)
	fb.rows += rows
	fb.waiters = append(fb.waiters, w)
	fb.live++
	b.pending.Add(int64(rows))
	if fb.rows >= b.max {
		b.fire(fb)
	}
	b.mu.Unlock()

	select {
	case res := <-w.done:
		return res.rows, res.stats, res.err
	case <-ctx.Done():
		// This caller is gone (client disconnect, deadline). Its rows stay
		// in the batch — removing them would renumber other waiters — but
		// when every caller has left, the batch context cancels and the
		// sharded retrieval aborts mid-scan instead of running to
		// completion for nobody.
		b.abandon(fb, w)
		return nil, lemp.Stats{}, ctx.Err()
	}
}

// abandon records one waiter's departure. When the last interested waiter
// leaves, the batch context cancels; if the batch had not fired yet it is
// retired entirely — stopped timer, removed from the forming map — so a
// later caller on the same key starts a fresh batch instead of joining one
// whose merged context is already dead (and inheriting its cancellation).
//
// The departing waiter's trace leaves with its request: gone is set under
// b.mu, after which dispatch never touches w.tr again, and any spans the
// batcher opened are closed here so the request can finish its trace
// immediately.
func (b *Batcher) abandon(fb *formingBatch, w *waiter) {
	b.mu.Lock()
	w.gone = true
	w.tr.End(w.waitSpan)
	w.tr.End(w.retSpan)
	fb.live--
	if fb.live == 0 {
		fb.cancel()
		if !fb.fired {
			// Nobody is waiting: there is nothing to dispatch. Mark the
			// batch fired so submit can never add rows to it again.
			fb.fired = true
			fb.timer.Stop()
			if b.forming[fb.key] == fb {
				delete(b.forming, fb.key)
			}
			b.pending.Add(-int64(fb.rows))
		}
	}
	b.mu.Unlock()
}

// fire dispatches fb on its own goroutine. Callers must hold b.mu.
func (b *Batcher) fire(fb *formingBatch) {
	if fb.fired {
		return
	}
	fb.fired = true
	fb.timer.Stop()
	if b.forming[fb.key] == fb {
		delete(b.forming, fb.key)
	}
	b.pending.Add(-int64(fb.rows))
	go b.dispatch(fb)
}

// dispatch runs the combined retrieval and scatters rows to the waiters.
//
// Tracing: the shared retrieval cannot record into any single waiter's
// trace — that waiter may abandon (and finish its trace) mid-retrieval —
// so it records into a batch-scoped scratch trace instead, and after the
// retrieval its spans are adopted into every waiter that is still here.
// All per-waiter trace access happens under b.mu opposite abandon's gone
// flag, so a departed request's trace is never touched.
func (b *Batcher) dispatch(fb *formingBatch) {
	defer fb.cancel() // release the merged context once everyone is served
	traced := false
	b.mu.Lock()
	for _, w := range fb.waiters {
		if w.gone {
			continue
		}
		w.tr.End(w.waitSpan)
		b.batchWaitHist.ObserveDuration(time.Since(w.joined))
		w.retSpan = w.tr.Start("batch.retrieve", w.parent)
		if w.tr != nil {
			traced = true
		}
	}
	b.mu.Unlock()

	rctx := fb.ctx
	var btr *obs.Trace
	if traced && b.tracer != nil {
		btr = b.tracer.StartTrace()
		rctx = obs.ContextWithSpan(fb.ctx, btr, obs.NoSpan)
	}
	res := b.retrieve(rctx, fb.key, fb.view, fb.data, fb.rows, len(fb.waiters))

	b.mu.Lock()
	for _, w := range fb.waiters {
		if w.gone {
			continue
		}
		if btr != nil {
			w.tr.AdoptSpans(btr, 0, obs.SpanRef(btr.Len()), w.retSpan)
		}
		w.tr.End(w.retSpan)
	}
	b.mu.Unlock()
	if btr != nil {
		b.tracer.Release(btr)
	}

	for _, w := range fb.waiters {
		if res.err != nil {
			w.done <- batchResult{stats: res.stats, err: res.err}
			continue
		}
		rows := res.rows[w.off : w.off+w.n]
		for i, row := range rows {
			for j := range row {
				row[j].Query = i
			}
		}
		w.done <- batchResult{rows: rows, stats: res.stats}
	}
}

// retrieve performs one sharded retrieval over a batch of rows, on the
// epoch snapshot the batch was admitted at, under the batch's (merged)
// context. Under cluster placement the Above-θ shard dispatch set derives
// from the whole coalesced matrix (a shard is scanned when any batched
// row's cone bound reaches θ), so coalescing can only widen — never
// shrink — the set any individual request would have scanned.
func (b *Batcher) retrieve(ctx context.Context, key batchKey, v *View, data []float64, rows, requests int) batchResult {
	q, err := lemp.MatrixFromData(b.sharded.R(), rows, data)
	if err != nil {
		return batchResult{err: err}
	}
	if b.onDispatch != nil {
		b.onDispatch(rows, requests)
	}
	b.batchRowsHist.Observe(float64(rows))
	if key.topk {
		top, st, err := v.TopKCtx(ctx, q, key.k)
		if err != nil {
			return batchResult{stats: st, err: err}
		}
		return batchResult{rows: top, stats: st}
	}
	out, st, err := v.AboveThetaCtx(ctx, q, key.theta)
	if err != nil {
		return batchResult{stats: st, err: err}
	}
	return batchResult{rows: out, stats: st}
}
