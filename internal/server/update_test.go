package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lemp"
)

// epochProbe builds an n-probe matrix whose vectors live in the positive
// octant with unit length, so every inner product with a positive-octant
// query is bounded away from zero — the scale factor applied by the test
// updater is then recoverable from any result value.
func epochProbe(rng *rand.Rand, r, n int) *lemp.Matrix {
	p := lemp.NewMatrix(r, n)
	for i := 0; i < n; i++ {
		v := p.Vec(i)
		var norm2 float64
		for f := range v {
			v[f] = 0.5 + 0.5*rng.Float64()
			norm2 += v[f] * v[f]
		}
		norm := math.Sqrt(norm2)
		for f := range v {
			v[f] /= norm
		}
	}
	return p
}

// postBody posts raw JSON and returns the status code and decoded body.
func postBody(t testing.TB, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// getHealthz fetches /healthz.
func getHealthz(t testing.TB, url string) (epoch uint64, probes int) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Epoch  uint64 `json:"epoch"`
		Probes int    `json:"probes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Epoch, h.Probes
}

// TestUpdateEndToEnd: an applied update batch must change query results to
// exactly those of a fresh index over the mutated probe set, advance the
// epoch, and report assigned ids.
func TestUpdateEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const r, n = 6, 60
	p := epochProbe(rng, r, n)
	srv, err := New(p, Config{Shards: 3, Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	addVec := make([]float64, r)
	addVec[0] = 3 // longer than every existing probe: must become top-1
	upVec := make([]float64, r)
	upVec[1] = 2.5
	body, _ := json.Marshal(map[string]any{"updates": []map[string]any{
		{"op": "add", "vector": addVec},
		{"op": "remove", "id": 5},
		{"op": "update", "id": 7, "vector": upVec},
	}})
	status, out := postBody(t, ts.URL+"/v1/update", string(body))
	if status != http.StatusOK {
		t.Fatalf("update status %d: %v", status, out)
	}
	if out["epoch"].(float64) != 1 {
		t.Fatalf("epoch %v, want 1", out["epoch"])
	}
	if out["live_probes"].(float64) != n {
		t.Fatalf("live_probes %v, want %d", out["live_probes"], n)
	}
	ids := out["ids"].([]any)
	if ids[0].(float64) != n {
		t.Fatalf("assigned id %v, want %d", ids[0], n)
	}

	// Reference: fresh index over the mutated set, ids preserved.
	mut := lemp.NewMatrix(r, n)
	mutIDs := make([]int32, 0, n)
	col := 0
	for i := 0; i < n; i++ {
		if i == 5 {
			continue
		}
		src := p.Vec(i)
		if i == 7 {
			src = upVec
		}
		copy(mut.Vec(col), src)
		mutIDs = append(mutIDs, int32(i))
		col++
	}
	copy(mut.Vec(col), addVec)
	mutIDs = append(mutIDs, int32(n))
	ref, err := lemp.NewWithIDs(mut, mutIDs, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	q := epochProbe(rng, r, 3)
	var resp struct {
		Results [][]struct {
			Probe int     `json:"probe"`
			Value float64 `json:"value"`
		} `json:"results"`
	}
	queries := [][]float64{q.Vec(0), q.Vec(1), q.Vec(2)}
	buf, _ := json.Marshal(map[string]any{"queries": queries, "k": 4})
	status, _ = postBody(t, ts.URL+"/v1/topk", string(buf))
	if status != http.StatusOK {
		t.Fatalf("topk status %d", status)
	}
	httpResp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	want, _, err := ref.RowTopK(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(resp.Results[i]) != len(want[i]) {
			t.Fatalf("query %d: %d entries, want %d", i, len(resp.Results[i]), len(want[i]))
		}
		for j := range want[i] {
			if resp.Results[i][j].Probe != want[i][j].Probe || resp.Results[i][j].Value != want[i][j].Value {
				t.Fatalf("query %d entry %d: got %+v, want %+v", i, j, resp.Results[i][j], want[i][j])
			}
		}
	}
	if resp.Results[0][0].Probe != n {
		t.Fatalf("added probe %d not top-1 (got probe %d)", n, resp.Results[0][0].Probe)
	}
}

// TestUpdateHandlerRejects: every malformed batch must 400 and leave the
// probe set, the epoch, and query results untouched.
func TestUpdateHandlerRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const r, n = 4, 40
	p := epochProbe(rng, r, n)
	srv, err := New(p, Config{Shards: 2, MaxUpdateOps: 4, Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qv, _ := json.Marshal([][]float64{p.Vec(0)})
	refBody := fmt.Sprintf(`{"queries": %s, "k": 3}`, qv)
	_, refBefore := postBody(t, ts.URL+"/v1/topk", refBody)

	epoch0, probes0 := getHealthz(t, ts.URL)
	bad := []struct {
		name, body string
	}{
		{"empty batch", `{"updates": []}`},
		{"no body field", `{}`},
		{"NaN coordinate", `{"updates": [{"op": "add", "vector": [NaN, 1, 1, 1]}]}`},
		{"Infinity coordinate", `{"updates": [{"op": "add", "vector": [Infinity, 1, 1, 1]}]}`},
		{"overflow coordinate", `{"updates": [{"op": "add", "vector": [1e999, 1, 1, 1]}]}`},
		{"dimension short", `{"updates": [{"op": "add", "vector": [1, 2]}]}`},
		{"dimension long", `{"updates": [{"op": "add", "vector": [1, 2, 3, 4, 5]}]}`},
		{"duplicate live id", `{"updates": [{"op": "add", "id": 3, "vector": [1, 1, 1, 1]}]}`},
		{"duplicate in batch", `{"updates": [{"op": "add", "id": 77, "vector": [1, 1, 1, 1]}, {"op": "add", "id": 77, "vector": [1, 1, 1, 1]}]}`},
		{"unknown remove", `{"updates": [{"op": "remove", "id": 999}]}`},
		{"unknown update", `{"updates": [{"op": "update", "id": 999, "vector": [1, 1, 1, 1]}]}`},
		{"negative id", `{"updates": [{"op": "add", "id": -2, "vector": [1, 1, 1, 1]}]}`},
		{"missing id", `{"updates": [{"op": "remove"}]}`},
		{"unknown op", `{"updates": [{"op": "upsert", "id": 1, "vector": [1, 1, 1, 1]}]}`},
		{"remove with vector", `{"updates": [{"op": "remove", "id": 1, "vector": [1, 1, 1, 1]}]}`},
		{"oversized batch", `{"updates": [` + strings.Repeat(`{"op": "remove", "id": 1},`, 4) + `{"op": "remove", "id": 2}]}`},
		{"atomicity: valid then invalid", `{"updates": [{"op": "remove", "id": 1}, {"op": "remove", "id": 999}]}`},
		{"malformed JSON", `{"updates": [`},
	}
	for _, tc := range bad {
		status, out := postBody(t, ts.URL+"/v1/update", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", tc.name, status, out)
		}
		epoch, probes := getHealthz(t, ts.URL)
		if epoch != epoch0 || probes != probes0 {
			t.Fatalf("%s: rejected batch mutated state (epoch %d→%d, probes %d→%d)",
				tc.name, epoch0, epoch, probes0, probes)
		}
	}
	_, refAfter := postBody(t, ts.URL+"/v1/topk", refBody)
	if fmt.Sprint(refBefore) != fmt.Sprint(refAfter) {
		t.Fatalf("query results changed after rejected batches:\nbefore %v\nafter  %v", refBefore, refAfter)
	}
}

// FuzzUpdateHandler throws arbitrary JSON at /v1/update: the handler must
// never panic, and any non-200 response must leave the server's epoch and
// probe count untouched.
func FuzzUpdateHandler(f *testing.F) {
	f.Add(`{"updates": [{"op": "add", "vector": [1, 1, 1, 1]}]}`)
	f.Add(`{"updates": [{"op": "remove", "id": 0}]}`)
	f.Add(`{"updates": [{"op": "update", "id": 1, "vector": [0.5, 0, 0, 0]}]}`)
	f.Add(`{"updates": [{"op": "add", "vector": [NaN, 1, 1, 1]}]}`)
	f.Add(`{"updates": [{"op": "add", "id": -1, "vector": [1, 1, 1, 1]}]}`)
	f.Add(`{"updates": [{"op": "add", "id": 1000000, "vector": [1e308, 1e308, 1, 1]}]}`)
	f.Add(`{"updates": [{"op": "remove", "id": 4}, {"op": "remove", "id": 4}]}`)
	f.Add(`{"updates": null}`)
	f.Add(`[1, 2, 3]`)
	f.Add(`{"updates": [{"op": "add", "vector": []}]}`)

	rng := rand.New(rand.NewSource(17))
	const r, n = 4, 16
	probe := epochProbe(rng, r, n)

	f.Fuzz(func(t *testing.T, body string) {
		srv, err := New(probe.Clone(), Config{Shards: 2, MaxUpdateOps: 64, Options: lemp.Options{Parallelism: 1}})
		if err != nil {
			t.Fatal(err)
		}
		before := srv.sharded.CurrentView()
		req := httptest.NewRequest("POST", "/v1/update", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		after := srv.sharded.CurrentView()
		switch rec.Code {
		case http.StatusOK:
			if after.Epoch() != before.Epoch()+1 {
				t.Fatalf("200 response but epoch %d → %d", before.Epoch(), after.Epoch())
			}
		default:
			if after.Epoch() != before.Epoch() || after.N() != before.N() {
				t.Fatalf("status %d mutated state (epoch %d→%d, probes %d→%d)",
					rec.Code, before.Epoch(), after.Epoch(), before.N(), after.N())
			}
		}
	})
}

// TestEpochConsistencyUnderRace is the update/query race test: an updater
// rescales every probe per batch while readers hammer /v1/topk and
// /v1/above through the batcher and cache. Every probe's value under a
// query recovers the scale factor (probes and queries live in the positive
// octant), so a response mixing two epochs is detectable: all entries of a
// response must imply the same scale. Run under -race in CI.
func TestEpochConsistencyUnderRace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const r, n, epochs, readers = 3, 24, 25, 4
	base := epochProbe(rng, r, n)
	srv, err := New(base.Clone(), Config{
		Shards:       3,
		Options:      lemp.Options{Parallelism: 1},
		BatchWindow:  200 * time.Microsecond,
		BatchMax:     8,
		CacheEntries: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A small fixed query pool so cache hits happen across epochs.
	queries := make([][]float64, 6)
	qm := epochProbe(rng, r, len(queries))
	for i := range queries {
		queries[i] = qm.Vec(i)
	}
	dots := make([][]float64, len(queries)) // dots[qi][probe] at scale 1
	for qi, qv := range queries {
		dots[qi] = make([]float64, n)
		for i := 0; i < n; i++ {
			var d float64
			for f := 0; f < r; f++ {
				d += qv[f] * base.Vec(i)[f]
			}
			dots[qi][i] = d
		}
	}

	// checkRows infers the scale from every entry of a response and fails
	// on any disagreement — a mixed-epoch response.
	checkRows := func(tag string, qis []int, rows [][]struct {
		Probe int     `json:"probe"`
		Value float64 `json:"value"`
	}) error {
		scale := -1.0
		for ri, row := range rows {
			if len(row) != n {
				return fmt.Errorf("%s: row %d has %d entries, want %d", tag, ri, len(row), n)
			}
			for _, e := range row {
				if e.Probe < 0 || e.Probe >= n {
					return fmt.Errorf("%s: probe %d out of range", tag, e.Probe)
				}
				s := e.Value / dots[qis[ri]][e.Probe]
				if scale < 0 {
					scale = s
				} else if math.Abs(s-scale) > 1e-9*scale {
					return fmt.Errorf("%s: mixed epochs in one response: scales %v and %v", tag, scale, s)
				}
			}
		}
		round := math.Round(scale)
		if round < 1 || round > epochs+1 || math.Abs(scale-round) > 1e-9*round {
			return fmt.Errorf("%s: implied scale %v is not a whole epoch", tag, scale)
		}
		return nil
	}

	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				qis := []int{lrng.Intn(len(queries)), lrng.Intn(len(queries))}
				body := map[string]any{"queries": [][]float64{queries[qis[0]], queries[qis[1]]}}
				var path, tag string
				if lrng.Intn(2) == 0 {
					body["k"] = n + 10 // clamped to live n: every probe returned
					path, tag = "/v1/topk", "topk"
				} else {
					body["theta"] = 0.01 // below every value: every probe returned
					path, tag = "/v1/above", "above"
				}
				buf, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err
					return
				}
				var out struct {
					Results [][]struct {
						Probe int     `json:"probe"`
						Value float64 `json:"value"`
					} `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if err := checkRows(tag, qis, out.Results); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// Updater: at batch e, every probe's vector becomes base × (e+1).
	for e := 1; e <= epochs; e++ {
		ops := make([]map[string]any, n)
		for i := 0; i < n; i++ {
			v := make([]float64, r)
			for f := 0; f < r; f++ {
				v[f] = base.Vec(i)[f] * float64(e+1)
			}
			ops[i] = map[string]any{"op": "update", "id": i, "vector": v}
		}
		buf, _ := json.Marshal(map[string]any{"updates": ops})
		status, out := postBody(t, ts.URL+"/v1/update", string(buf))
		if status != http.StatusOK {
			t.Fatalf("update batch %d: status %d: %v", e, status, out)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	epoch, probes := getHealthz(t, ts.URL)
	if epoch != epochs || probes != n {
		t.Fatalf("final epoch %d probes %d, want %d and %d", epoch, probes, epochs, n)
	}
}

// TestCacheEpochInvalidation: a cached row must never be served once a
// mutation advanced the epoch — including through the LRU entry-accounting
// path, where stale-epoch rows still occupy and then vacate capacity.
func TestCacheEpochInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const r, n = 4, 30
	p := epochProbe(rng, r, n)
	srv, err := New(p.Clone(), Config{Shards: 2, CacheEntries: 64, Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := p.Vec(3)
	body, _ := json.Marshal(map[string]any{"queries": [][]float64{query}, "k": 2})
	fetch := func() []float64 {
		resp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Results [][]struct {
				Probe int     `json:"probe"`
				Value float64 `json:"value"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, 0, 2)
		for _, e := range out.Results[0] {
			vals = append(vals, e.Value)
		}
		return vals
	}

	before := fetch()
	if hits := srv.cache.Hits(); hits != 0 {
		t.Fatalf("cold cache reported %d hits", hits)
	}
	again := fetch()
	if srv.cache.Hits() != 1 {
		t.Fatalf("identical repeat did not hit the cache (hits %d)", srv.cache.Hits())
	}
	if fmt.Sprint(before) != fmt.Sprint(again) {
		t.Fatalf("cache hit returned different values: %v vs %v", before, again)
	}
	rowsAtEpoch0 := srv.cache.Len()
	if rowsAtEpoch0 == 0 {
		t.Fatal("nothing cached")
	}

	// Mutate: double every probe. The cached row's values are now wrong
	// for the live probe set; the epoch key must make it unreachable.
	ops := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		v := make([]float64, r)
		for f := 0; f < r; f++ {
			v[f] = p.Vec(i)[f] * 2
		}
		ops[i] = map[string]any{"op": "update", "id": i, "vector": v}
	}
	upd, _ := json.Marshal(map[string]any{"updates": ops})
	if status, out := postBody(t, ts.URL+"/v1/update", string(upd)); status != http.StatusOK {
		t.Fatalf("update: %d %v", status, out)
	}

	hitsBefore := srv.cache.Hits()
	after := fetch()
	if srv.cache.Hits() != hitsBefore {
		t.Fatalf("post-update fetch hit the stale cache entry")
	}
	for i := range after {
		if math.Abs(after[i]-2*before[i]) > 1e-9*math.Abs(after[i]) {
			t.Fatalf("post-update values %v, want 2× %v", after, before)
		}
	}
	// Both epochs' rows coexist under LRU accounting until eviction.
	if srv.cache.Len() != rowsAtEpoch0+1 {
		t.Fatalf("cache rows %d, want %d (stale row retained, new row added)", srv.cache.Len(), rowsAtEpoch0+1)
	}
}

// TestCacheKeyEpochUnitAndAccounting pins the key-level property (same
// query, different epoch → different key) and the entry accounting while
// stale-epoch rows are evicted by fresh-epoch inserts.
func TestCacheKeyEpochUnitAndAccounting(t *testing.T) {
	vec := []float64{1, 2, 3}
	k0 := cacheKey(batchKey{topk: true, k: 5, epoch: 0}, vec)
	k1 := cacheKey(batchKey{topk: true, k: 5, epoch: 1}, vec)
	if k0 == k1 {
		t.Fatal("cache keys collide across epochs")
	}

	c := NewCache(10)
	row := []lemp.Entry{{Probe: 1, Value: 2}, {Probe: 2, Value: 1}} // weight 2
	for i := 0; i < 5; i++ {
		c.Put(cacheKey(batchKey{topk: true, k: 5, epoch: 0}, []float64{float64(i)}), row)
	}
	if c.Entries() != 10 || c.Len() != 5 {
		t.Fatalf("entries %d rows %d, want 10 and 5", c.Entries(), c.Len())
	}
	// Epoch bump: same queries re-cached under new keys evict the stale
	// rows one by one; the weight accounting must stay exact.
	for i := 0; i < 5; i++ {
		c.Put(cacheKey(batchKey{topk: true, k: 5, epoch: 1}, []float64{float64(i)}), row)
		if c.Entries() > 10 {
			t.Fatalf("entry accounting exceeded capacity: %d", c.Entries())
		}
	}
	if c.Entries() != 10 || c.Len() != 5 {
		t.Fatalf("after epoch churn: entries %d rows %d, want 10 and 5", c.Entries(), c.Len())
	}
	// Every stale-epoch key must now be gone (evicted), every fresh one
	// present.
	for i := 0; i < 5; i++ {
		if _, ok := c.Get(cacheKey(batchKey{topk: true, k: 5, epoch: 0}, []float64{float64(i)})); ok {
			t.Fatalf("stale epoch-0 row %d still served", i)
		}
		if _, ok := c.Get(cacheKey(batchKey{topk: true, k: 5, epoch: 1}, []float64{float64(i)})); !ok {
			t.Fatalf("fresh epoch-1 row %d missing", i)
		}
	}
}

// TestReshardPreservesMutatedIDs: rebuilding a server from a mutated
// (compacted) index must keep the catalog's external ids — a re-shard
// must never silently renumber probes.
func TestReshardPreservesMutatedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const r, n = 4, 30
	p := epochProbe(rng, r, n)
	ix, err := lemp.New(p.Clone(), lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	marker := make([]float64, r)
	marker[0] = 5
	if _, err := ix.ApplyUpdates([]lemp.ProbeUpdate{
		{Op: lemp.OpRemove, ID: 3},
		{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: marker}, // id n
		{Op: lemp.OpUpdate, ID: 9, Vec: marker},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithIDs(loaded.Probe(), loaded.ProbeIDs(), Config{Shards: 3, Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	epoch, probes := getHealthz(t, ts.URL)
	if epoch != 0 || probes != n {
		t.Fatalf("restored epoch %d probes %d, want 0 and %d", epoch, probes, n)
	}
	// id 3 must still be dead: re-adding succeeds, removing first fails.
	if status, _ := postBody(t, ts.URL+"/v1/update", `{"updates": [{"op": "remove", "id": 3}]}`); status != http.StatusBadRequest {
		t.Fatalf("removed id 3 still live after re-shard (status %d)", status)
	}
	// The marker vector must be addressable under its original ids.
	q, _ := json.Marshal(map[string]any{"queries": [][]float64{marker}, "k": 2})
	resp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results [][]struct {
			Probe int     `json:"probe"`
			Value float64 `json:"value"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := []int{out.Results[0][0].Probe, out.Results[0][1].Probe}
	if !(got[0] == 9 && got[1] == int(n) || got[0] == int(n) && got[1] == 9) {
		t.Fatalf("marker probes %v after re-shard, want {9, %d}", got, n)
	}
}

// TestEmptyShardSnapshotRestores: updates can drain a shard completely;
// its snapshot must still restore and later adds must refill it.
func TestEmptyShardSnapshotRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const r, n = 4, 4
	p := epochProbe(rng, r, n)
	srv, err := New(p.Clone(), Config{Shards: 2, Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1 holds ids 2 and 3; removing both drains it.
	if _, err := srv.Sharded().Update([]lemp.ProbeUpdate{
		{Op: lemp.OpRemove, ID: 2},
		{Op: lemp.OpRemove, ID: 3},
	}, 0.25); err != nil {
		t.Fatal(err)
	}
	var bufs []*bytes.Buffer
	err = srv.WriteSnapshots(func(i, n int) (io.WriteCloser, error) {
		bufs = append(bufs, &bytes.Buffer{})
		return nopWriteCloser{bufs[i]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(bufs))
	for i, b := range bufs {
		readers[i] = bytes.NewReader(b.Bytes())
	}
	restored, err := NewFromSnapshot(readers, Config{Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatalf("restore with an emptied shard: %v", err)
	}
	if restored.Sharded().N() != 2 {
		t.Fatalf("restored %d probes, want 2", restored.Sharded().N())
	}
	// Adds go to the smallest shard — the empty one — and serve.
	res, err := restored.Sharded().Update([]lemp.ProbeUpdate{
		{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: p.Vec(0)},
	}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveN != 3 {
		t.Fatalf("LiveN %d after refill, want 3", res.LiveN)
	}
	q, _ := lemp.MatrixFromData(r, 1, append([]float64(nil), p.Vec(0)...))
	top, _, err := restored.Sharded().TopK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top[0]) != 3 {
		t.Fatalf("query after refill returned %d entries, want 3", len(top[0]))
	}
}
