package server

import (
	"context"
	"testing"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/obs"
)

// TestServerSteadyStateAllocs asserts the serving hot path is allocation-
// free per verified candidate: after warm-up (lazy bucket indexes built,
// tuning parameters cached, scratch pools populated), repeated shard scans
// must not allocate in proportion to the candidates they verify. Fixed
// per-call overhead — result rows, the shard fan-out, query normalization —
// is legal; anything scaling with candidate count is a regression back to
// per-candidate scratch allocation.
func TestServerSteadyStateAllocs(t *testing.T) {
	q, p := data.Smoke.Generate()
	sh, err := NewSharded(p, 2, lemp.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := q.Head(16)
	const k = 10
	view := sh.CurrentView()
	// Warm up: builds lazy per-bucket indexes, fills the tuning cache and
	// the per-index scratch pools.
	if _, _, err := view.TopK(batch, k); err != nil {
		t.Fatal(err)
	}

	// Per-run work, measured on its own call.
	before := sh.CumulativeStats()
	if _, _, err := view.TopK(batch, k); err != nil {
		t.Fatal(err)
	}
	after := sh.CumulativeStats()
	candidates := after.Candidates - before.Candidates
	if candidates == 0 {
		t.Fatal("steady-state call verified no candidates; fixture too small")
	}
	if after.BlockVerified == before.BlockVerified {
		t.Fatal("steady-state call verified no candidates through the blocked kernels")
	}
	if after.Tunings != before.Tunings {
		t.Fatalf("steady-state call re-tuned (%d -> %d); warm-up failed", before.Tunings, after.Tunings)
	}

	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := view.TopK(batch, k); err != nil {
			t.Fatal(err)
		}
	})
	perCandidate := allocs / float64(candidates)
	t.Logf("%.1f allocs/call over %d verified candidates = %.4f allocs/candidate",
		allocs, candidates, perCandidate)
	// Zero allocations per verified candidate, with headroom for the fixed
	// per-call overhead (rows, goroutines, merge buffers) that this bound
	// spreads across the candidate count.
	if perCandidate > 0.10 {
		t.Fatalf("%.4f allocations per verified candidate (%.1f per call / %d candidates); the hot path is allocating per candidate",
			perCandidate, allocs, candidates)
	}
}

// TestServerQuantSteadyStateAllocs is TestServerSteadyStateAllocs with the
// int8 screening sidecar active: quantizing the query (cached in scratch)
// and screening every candidate must stay off the per-candidate allocation
// budget.
func TestServerQuantSteadyStateAllocs(t *testing.T) {
	q, p := data.Smoke.Generate()
	sh, err := NewSharded(p, 2, lemp.Options{Parallelism: 1, Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	if sh.SidecarBytes() == 0 {
		t.Fatal("Quantize build attached no sidecar")
	}
	batch := q.Head(16)
	const k = 10
	view := sh.CurrentView()
	if _, _, err := view.TopK(batch, k); err != nil { // warm-up
		t.Fatal(err)
	}

	before := sh.CumulativeStats()
	if _, _, err := view.TopK(batch, k); err != nil {
		t.Fatal(err)
	}
	after := sh.CumulativeStats()
	screened := after.QuantScreened - before.QuantScreened
	survived := after.QuantSurvived - before.QuantSurvived
	if screened+survived == 0 {
		t.Fatal("steady-state call screened no candidates; sidecar inactive")
	}

	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := view.TopK(batch, k); err != nil {
			t.Fatal(err)
		}
	})
	perCandidate := allocs / float64(screened+survived)
	t.Logf("quant path: %.1f allocs/call over %d screened candidates (%d discarded) = %.4f allocs/candidate",
		allocs, screened+survived, screened, perCandidate)
	if perCandidate > 0.10 {
		t.Fatalf("%.4f allocations per screened candidate (%.1f per call); quantized screening is allocating per candidate",
			perCandidate, allocs)
	}
}

// TestServerObservedSteadyStateAllocs is the same bound with the full
// observability envelope engaged: a wired Server (metric hooks on the
// shard set), an active trace in the context (so tune/scan/shard/merge
// spans record), and a tracer Finish per call. Metrics observation and
// span recording must stay off the per-candidate cost; only the fixed
// per-call envelope (context values, root span, fan-out) may allocate.
func TestServerObservedSteadyStateAllocs(t *testing.T) {
	q, p := data.Smoke.Generate()
	srv, err := New(p, Config{
		Shards:       2,
		Options:      lemp.Options{Parallelism: 1},
		CacheEntries: -1,
		// Rate 0: traces record fully but are never retained, which is the
		// steady state for the overwhelming majority of production requests.
		TraceSampleRate: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := q.Head(16)
	const k = 10
	sh := srv.Sharded()
	view := sh.CurrentView()
	tracer := srv.Tracer()

	observedTopK := func() {
		tr := tracer.StartTrace()
		root := tr.Start("topk", obs.NoSpan)
		ctx := obs.ContextWithSpan(context.Background(), tr, root)
		if _, _, err := view.TopKCtx(ctx, batch, k); err != nil {
			t.Fatal(err)
		}
		tr.End(root)
		tracer.Finish(tr, obs.TraceMeta{Kind: "topk", Rows: batch.N()})
	}

	observedTopK() // warm-up: bucket indexes, tuning cache, scratch pools, trace pool

	before := sh.CumulativeStats()
	observedTopK()
	after := sh.CumulativeStats()
	candidates := after.Candidates - before.Candidates
	if candidates == 0 {
		t.Fatal("steady-state call verified no candidates; fixture too small")
	}
	if after.Tunings != before.Tunings {
		t.Fatalf("steady-state call re-tuned (%d -> %d); warm-up failed", before.Tunings, after.Tunings)
	}

	allocs := testing.AllocsPerRun(10, observedTopK)
	perCandidate := allocs / float64(candidates)
	t.Logf("observed path: %.1f allocs/call over %d verified candidates = %.4f allocs/candidate",
		allocs, candidates, perCandidate)
	if perCandidate > 0.10 {
		t.Fatalf("%.4f allocations per verified candidate with observability on (%.1f per call / %d candidates); metrics or tracing are allocating per candidate",
			perCandidate, allocs, candidates)
	}
}
