package server

import (
	"testing"

	"lemp"
	"lemp/internal/data"
)

// TestServerSteadyStateAllocs asserts the serving hot path is allocation-
// free per verified candidate: after warm-up (lazy bucket indexes built,
// tuning parameters cached, scratch pools populated), repeated shard scans
// must not allocate in proportion to the candidates they verify. Fixed
// per-call overhead — result rows, the shard fan-out, query normalization —
// is legal; anything scaling with candidate count is a regression back to
// per-candidate scratch allocation.
func TestServerSteadyStateAllocs(t *testing.T) {
	q, p := data.Smoke.Generate()
	sh, err := NewSharded(p, 2, lemp.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := q.Head(16)
	const k = 10
	view := sh.CurrentView()
	// Warm up: builds lazy per-bucket indexes, fills the tuning cache and
	// the per-index scratch pools.
	if _, _, err := view.TopK(batch, k); err != nil {
		t.Fatal(err)
	}

	// Per-run work, measured on its own call.
	before := sh.CumulativeStats()
	if _, _, err := view.TopK(batch, k); err != nil {
		t.Fatal(err)
	}
	after := sh.CumulativeStats()
	candidates := after.Candidates - before.Candidates
	if candidates == 0 {
		t.Fatal("steady-state call verified no candidates; fixture too small")
	}
	if after.BlockVerified == before.BlockVerified {
		t.Fatal("steady-state call verified no candidates through the blocked kernels")
	}
	if after.Tunings != before.Tunings {
		t.Fatalf("steady-state call re-tuned (%d -> %d); warm-up failed", before.Tunings, after.Tunings)
	}

	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := view.TopK(batch, k); err != nil {
			t.Fatal(err)
		}
	})
	perCandidate := allocs / float64(candidates)
	t.Logf("%.1f allocs/call over %d verified candidates = %.4f allocs/candidate",
		allocs, candidates, perCandidate)
	// Zero allocations per verified candidate, with headroom for the fixed
	// per-call overhead (rows, goroutines, merge buffers) that this bound
	// spreads across the candidate count.
	if perCandidate > 0.10 {
		t.Fatalf("%.4f allocations per verified candidate (%.1f per call / %d candidates); the hot path is allocating per candidate",
			perCandidate, allocs, candidates)
	}
}
