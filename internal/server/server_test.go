package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lemp"
	"lemp/internal/data"
)

// smokeMatrices generates the server test fixture: the Smoke profile's
// query and probe matrices.
func smokeMatrices(t testing.TB) (q, p *lemp.Matrix) {
	t.Helper()
	q, p = data.Smoke.Generate()
	return q, p
}

// directIndex builds the unsharded reference index over the same probes.
func directIndex(t testing.TB, p *lemp.Matrix) *lemp.Index {
	t.Helper()
	ix, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// newTestServer builds a Server over the Smoke probes with 4 shards and
// batching enabled, wrapped in an httptest server.
func newTestServer(t testing.TB, cfg Config) (*httptest.Server, *lemp.Matrix, *lemp.Matrix) {
	t.Helper()
	q, p := smokeMatrices(t)
	srv, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, q, p
}

// postJSON posts body to url and decodes the JSON response into out,
// failing the test on any transport or status error.
func postJSON(t testing.TB, url string, body, out any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d: %v", url, resp.StatusCode, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// vecs converts matrix columns [lo, hi) into request rows.
func vecs(m *lemp.Matrix, lo, hi int) [][]float64 {
	out := make([][]float64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, m.Vec(i))
	}
	return out
}

const testShards = 4

func testConfig() Config {
	return Config{
		Shards:      testShards,
		Options:     lemp.Options{Parallelism: 1},
		BatchWindow: time.Millisecond,
		BatchMax:    64,
	}
}

// TestTopKMatchesDirect posts query batches to a 4-shard batching server
// and requires responses identical — ids and values — to a direct RowTopK
// run on a single unsharded index.
func TestTopKMatchesDirect(t *testing.T) {
	ts, q, p := newTestServer(t, testConfig())
	direct := directIndex(t, p)

	const k, nq = 10, 64
	want, _, err := direct.RowTopK(q.Head(nq), k)
	if err != nil {
		t.Fatal(err)
	}

	var resp queryResponse
	postJSON(t, ts.URL+"/v1/topk", topKRequest{Queries: vecs(q, 0, nq), K: k}, &resp)
	if len(resp.Results) != nq {
		t.Fatalf("got %d rows, want %d", len(resp.Results), nq)
	}
	for i, row := range resp.Results {
		if len(row) != len(want[i]) {
			t.Fatalf("query %d: %d entries, want %d", i, len(row), len(want[i]))
		}
		for j, e := range row {
			if e.Probe != want[i][j].Probe || e.Value != want[i][j].Value {
				t.Fatalf("query %d entry %d: got (%d, %v), want (%d, %v)",
					i, j, e.Probe, e.Value, want[i][j].Probe, want[i][j].Value)
			}
		}
	}
}

// TestAboveMatchesDirect does the same for Above-θ: the sharded result set
// per query must match a direct AboveTheta run exactly.
func TestAboveMatchesDirect(t *testing.T) {
	ts, q, p := newTestServer(t, testConfig())
	direct := directIndex(t, p)

	const nq = 64
	theta := 1.5
	entries, _, err := direct.AboveTheta(q.Head(nq), theta)
	if err != nil {
		t.Fatal(err)
	}
	lemp.SortEntries(entries)
	want := make([][]lemp.Entry, nq)
	for _, e := range entries {
		want[e.Query] = append(want[e.Query], e)
	}

	var resp queryResponse
	postJSON(t, ts.URL+"/v1/above", aboveRequest{Queries: vecs(q, 0, nq), Theta: theta}, &resp)
	if len(resp.Results) != nq {
		t.Fatalf("got %d rows, want %d", len(resp.Results), nq)
	}
	total := 0
	for i, row := range resp.Results {
		if len(row) != len(want[i]) {
			t.Fatalf("query %d: %d entries, want %d", i, len(row), len(want[i]))
		}
		for j, e := range row {
			if e.Probe != want[i][j].Probe || e.Value != want[i][j].Value {
				t.Fatalf("query %d entry %d: got (%d, %v), want (%d, %v)",
					i, j, e.Probe, e.Value, want[i][j].Probe, want[i][j].Value)
			}
		}
		total += len(row)
	}
	if total == 0 {
		t.Fatal("θ too high: result set empty, test is vacuous")
	}
}

// TestConcurrencySmoke fires 200 in-flight single-query requests at a
// batching server and checks every response against the direct index.
func TestConcurrencySmoke(t *testing.T) {
	ts, q, p := newTestServer(t, testConfig())
	direct := directIndex(t, p)

	const k, inflight = 5, 200
	want, _, err := direct.RowTopK(q.Head(inflight), k)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, _ := json.Marshal(topKRequest{Queries: [][]float64{q.Vec(i)}, K: k})
			resp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d", i, resp.StatusCode)
				return
			}
			var out queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if len(out.Results) != 1 || len(out.Results[0]) != len(want[i]) {
				errs <- fmt.Errorf("query %d: bad shape %v", i, out.Results)
				return
			}
			for j, e := range out.Results[0] {
				if e.Probe != want[i][j].Probe || e.Value != want[i][j].Value {
					errs <- fmt.Errorf("query %d entry %d: got (%d, %v), want (%d, %v)",
						i, j, e.Probe, e.Value, want[i][j].Probe, want[i][j].Value)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheHitsSkipRetrieval repeats a request and checks via /stats that
// the second hit the cache and dispatched no retrieval.
func TestCacheHitsSkipRetrieval(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = 4096
	ts, q, _ := newTestServer(t, cfg)

	req := topKRequest{Queries: vecs(q, 0, 8), K: 3}
	var first, second queryResponse
	postJSON(t, ts.URL+"/v1/topk", req, &first)

	var st1 statsResponse
	getJSON(t, ts.URL+"/stats", &st1)
	if st1.Batches == 0 || st1.Cache.Misses != 8 {
		t.Fatalf("after first request: batches=%d misses=%d", st1.Batches, st1.Cache.Misses)
	}

	postJSON(t, ts.URL+"/v1/topk", req, &second)
	var st2 statsResponse
	getJSON(t, ts.URL+"/stats", &st2)
	if st2.Batches != st1.Batches || st2.BatchRows != st1.BatchRows {
		t.Errorf("cached repeat dispatched retrieval: batches %d→%d rows %d→%d",
			st1.Batches, st2.Batches, st1.BatchRows, st2.BatchRows)
	}
	if st2.Cache.Hits != 8 {
		t.Errorf("cache hits = %d, want 8", st2.Cache.Hits)
	}
	if len(second.Results) != len(first.Results) {
		t.Fatalf("cached response shape differs")
	}
	for i := range first.Results {
		for j := range first.Results[i] {
			if first.Results[i][j] != second.Results[i][j] {
				t.Fatalf("cached row %d differs", i)
			}
		}
	}

	// A different k is a different cache key.
	postJSON(t, ts.URL+"/v1/topk", topKRequest{Queries: vecs(q, 0, 1), K: 4}, &first)
	var st3 statsResponse
	getJSON(t, ts.URL+"/stats", &st3)
	if st3.Cache.Misses != st2.Cache.Misses+1 {
		t.Errorf("changed k should miss: misses %d→%d", st2.Cache.Misses, st3.Cache.Misses)
	}
}

// TestHealthzAndStats checks the observability endpoints.
func TestHealthzAndStats(t *testing.T) {
	ts, q, p := newTestServer(t, testConfig())

	var hz healthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Probes != p.N() || hz.Shards != testShards || hz.Dim != p.R() {
		t.Fatalf("healthz: %+v", hz)
	}

	var resp queryResponse
	postJSON(t, ts.URL+"/v1/topk", topKRequest{Queries: vecs(q, 0, 4), K: 2}, &resp)
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != 1 || st.Batches == 0 || st.BatchRows != 4 {
		t.Errorf("stats counters: %+v", st)
	}
	if st.Core.Queries == 0 || st.Core.Results == 0 || st.Core.Buckets == 0 {
		t.Errorf("core stats not accumulated: %+v", st.Core)
	}
}

// TestBadRequests checks input validation.
func TestBadRequests(t *testing.T) {
	ts, q, _ := newTestServer(t, testConfig())
	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/topk", topKRequest{Queries: vecs(q, 0, 1), K: 0}},
		{"/v1/topk", topKRequest{Queries: [][]float64{{1, 2}}, K: 3}},
		{"/v1/above", aboveRequest{Queries: vecs(q, 0, 1), Theta: 0}},
		{"/v1/above", aboveRequest{Queries: [][]float64{{1}}, Theta: 1}},
	} {
		buf, _ := json.Marshal(tc.body)
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %v: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// TestRequestGuards checks that oversized k values are clamped rather than
// sizing buffers off user input, and oversized bodies are rejected early.
func TestRequestGuards(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 4096
	ts, q, p := newTestServer(t, cfg)

	// k far beyond the probe count returns every probe, ranked.
	var resp queryResponse
	postJSON(t, ts.URL+"/v1/topk", topKRequest{Queries: vecs(q, 0, 1), K: 1 << 40}, &resp)
	if len(resp.Results) != 1 || len(resp.Results[0]) != p.N() {
		t.Fatalf("huge k: got %d entries, want %d", len(resp.Results[0]), p.N())
	}

	// A body over the limit is rejected with 413.
	big := topKRequest{Queries: vecs(q, 0, 64), K: 3}
	buf, _ := json.Marshal(big)
	if len(buf) <= 4096 {
		t.Fatalf("test body too small (%d bytes) to exercise the limit", len(buf))
	}
	r, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", r.StatusCode)
	}

	// A query whose inner products overflow to ±Inf cannot be encoded as
	// JSON; the server must answer 500, not 200 with a truncated body.
	huge := make([]float64, p.R())
	for i := range huge {
		huge[i] = 1e308
	}
	buf, _ = json.Marshal(topKRequest{Queries: [][]float64{huge}, K: 1})
	r, err = http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("overflowing query: status %d, want 500", r.StatusCode)
	}
}

// getJSON fetches url and decodes the response into out.
func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
