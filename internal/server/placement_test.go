package server

import (
	"math"
	"math/rand"
	"testing"

	"lemp"
	"lemp/internal/vecmath"
)

// clusteredProbe builds a catalog with a few directional clusters, varied
// lengths, and a sprinkle of zero vectors — the regime cluster placement is
// built for, plus its degenerate cases.
func clusteredProbe(rng *rand.Rand, r, n int) *lemp.Matrix {
	nCenters := 2 + rng.Intn(3)
	centers := make([][]float64, nCenters)
	for c := range centers {
		v := make([]float64, r)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		vecmath.Normalize(v, v)
		centers[c] = v
	}
	p := lemp.NewMatrix(r, n)
	for i := 0; i < n; i++ {
		if rng.Intn(12) == 0 {
			continue // zero vector
		}
		v := p.Vec(i)
		c := centers[rng.Intn(nCenters)]
		for f := range v {
			v[f] = c[f] + 0.25*rng.NormFloat64()
		}
		scale := 0.5 + 2*rng.Float64()
		norm := vecmath.Norm(v)
		if norm > 0 {
			vecmath.Scale(v, v, scale/norm)
		}
	}
	return p
}

// randomOps builds one mutation batch over the currently live ids: removes
// and rewrites of random live probes plus AutoID adds (occasionally zero
// vectors). live is updated to reflect the batch.
func randomOps(rng *rand.Rand, r int, live *[]int32) []lemp.ProbeUpdate {
	var ops []lemp.ProbeUpdate
	nOps := 1 + rng.Intn(6)
	for o := 0; o < nOps; o++ {
		switch roll := rng.Intn(4); {
		case roll == 0 && len(*live) > 4:
			i := rng.Intn(len(*live))
			ops = append(ops, lemp.ProbeUpdate{Op: lemp.OpRemove, ID: (*live)[i]})
			*live = append((*live)[:i], (*live)[i+1:]...)
		case roll == 1 && len(*live) > 0:
			i := rng.Intn(len(*live))
			ops = append(ops, lemp.ProbeUpdate{Op: lemp.OpUpdate, ID: (*live)[i], Vec: randVec(rng, r)})
		default:
			ops = append(ops, lemp.ProbeUpdate{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: randVec(rng, r)})
		}
	}
	return ops
}

func randVec(rng *rand.Rand, r int) []float64 {
	v := make([]float64, r)
	if rng.Intn(9) == 0 {
		return v // zero vector
	}
	for f := range v {
		v[f] = rng.NormFloat64()
	}
	return v
}

// compareRows asserts two grouped Above-θ result sets are byte-identical.
func compareRows(t *testing.T, ctx string, got, want [][]lemp.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d entries, want %d\n got %+v\nwant %+v",
				ctx, i, len(got[i]), len(want[i]), got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d entry %d: got %+v, want %+v", ctx, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// compareTopKValues asserts two top-k result sets rank the same values.
// Probe identity is only required while values are strictly decreasing:
// among tied values (notably 0, from zero probes or zero queries) the
// winner of the k-th slot is an arbitrary choice the shard merge is free
// to make differently from a single index.
func compareTopKValues(t *testing.T, ctx string, got, want [][]lemp.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d entries, want %d", ctx, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j].Value != want[i][j].Value {
				t.Fatalf("%s: row %d rank %d: got value %v (probe %d), want %v (probe %d)",
					ctx, i, j, got[i][j].Value, got[i][j].Probe, want[i][j].Value, want[i][j].Probe)
			}
			// Value 0 can also tie with candidates outside the returned
			// set (every zero probe scores 0), so it never pins a probe.
			tied := want[i][j].Value == 0 ||
				(j > 0 && want[i][j-1].Value == want[i][j].Value) ||
				(j+1 < len(want[i]) && want[i][j+1].Value == want[i][j].Value)
			if !tied && got[i][j].Probe != want[i][j].Probe {
				t.Fatalf("%s: row %d rank %d: got probe %d, want %d (value %v)",
					ctx, i, j, got[i][j].Probe, want[i][j].Probe, want[i][j].Value)
			}
		}
	}
}

// TestClusterPrunedDifferential is the placement differential harness:
// across randomized mutation/query sequences and every bucket algorithm,
// cluster-routed retrieval with cone pruning enabled must be byte-identical
// to (a) the same shard set fanning out to all shards and (b) a single
// unsharded reference index mirroring every mutation. Sequences include
// zero probes, zero queries, empty results and post-update cone drift.
func TestClusterPrunedDifferential(t *testing.T) {
	algos := []lemp.Algorithm{
		lemp.AlgorithmLI, lemp.AlgorithmL, lemp.AlgorithmC, lemp.AlgorithmI,
		lemp.AlgorithmLC, lemp.AlgorithmTA, lemp.AlgorithmTree, lemp.AlgorithmL2AP,
	}
	sequences := 1100
	if testing.Short() {
		sequences = 80
	}
	var totalPruned, totalScanned uint64
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(9000 + seq)))
		opts := lemp.Options{
			Algorithm:     algos[seq%len(algos)],
			Parallelism:   1,
			MinBucketSize: 4,
			SampleQueries: 4,
			TuneByCost:    true,
			Seed:          int64(seq + 1),
		}
		r := 4 + rng.Intn(9)   // 4..12
		n := 12 + rng.Intn(41) // 12..52
		p := clusteredProbe(rng, r, n)
		nShards := 2 + rng.Intn(3)
		sh, err := NewShardedPlaced(p.Clone(), nil, nShards, opts, PlaceCluster)
		if err != nil {
			t.Fatalf("seq %d: building sharded: %v", seq, err)
		}
		ref, err := lemp.New(p.Clone(), opts)
		if err != nil {
			t.Fatalf("seq %d: building reference: %v", seq, err)
		}
		live := ref.LiveIDs()

		rounds := 1 + rng.Intn(3)
		for round := 0; round < rounds; round++ {
			if round > 0 { // round 0 queries the freshly built set
				ops := randomOps(rng, r, &live)
				res, err := sh.Update(ops, 0.25)
				if err != nil {
					t.Fatalf("seq %d round %d: sharded update: %v", seq, round, err)
				}
				// Mirror into the reference with the ids the shard set
				// assigned, so both catalogs stay identical.
				refOps := append([]lemp.ProbeUpdate(nil), ops...)
				for i := range refOps {
					if refOps[i].Op == lemp.OpAdd {
						refOps[i].ID = res.IDs[i]
						live = append(live, res.IDs[i])
					}
				}
				if _, err := ref.ApplyUpdates(refOps); err != nil {
					t.Fatalf("seq %d round %d: reference update: %v", seq, round, err)
				}
			}

			m := 1 + rng.Intn(4)
			q := lemp.NewMatrix(r, m)
			for i := 0; i < m; i++ {
				switch rng.Intn(5) {
				case 0: // random direction
					copy(q.Vec(i), randVec(rng, r))
				case 1: // zero query
				default: // probe-like: near a live probe's direction
					copy(q.Vec(i), clusteredProbe(rng, r, 1).Vec(0))
				}
			}
			theta := 0.05 + 2.5*rng.Float64()

			got, _, err := sh.AboveTheta(q, theta)
			if err != nil {
				t.Fatalf("seq %d round %d: pruned above: %v", seq, round, err)
			}
			sh.noPrune = true
			full, _, err := sh.AboveTheta(q, theta)
			sh.noPrune = false
			if err != nil {
				t.Fatalf("seq %d round %d: full above: %v", seq, round, err)
			}
			compareRows(t, "pruned vs full fan-out", got, full)

			entries, _, err := ref.AboveTheta(q, theta)
			if err != nil {
				t.Fatalf("seq %d round %d: reference above: %v", seq, round, err)
			}
			lemp.SortEntries(entries)
			want := make([][]lemp.Entry, m)
			for _, e := range entries {
				want[e.Query] = append(want[e.Query], e)
			}
			compareRows(t, "pruned vs reference", got, want)

			k := 1 + rng.Intn(4)
			gotTop, _, err := sh.TopK(q, k)
			if err != nil {
				t.Fatalf("seq %d round %d: sharded topk: %v", seq, round, err)
			}
			wantTop, _, err := ref.RowTopK(q, k)
			if err != nil {
				t.Fatalf("seq %d round %d: reference topk: %v", seq, round, err)
			}
			compareTopKValues(t, "topk vs reference", gotTop, wantTop)
		}
		totalPruned += sh.ShardsPruned()
		totalScanned += sh.ShardsScanned()
	}
	// The harness must actually exercise pruning, or the differential
	// assertions above prove nothing about the cone bound.
	if totalPruned == 0 {
		t.Fatalf("no shard was ever pruned across %d sequences (%d scans)", sequences, totalScanned)
	}
	t.Logf("pruned %d of %d shard scans (%.1f%%)",
		totalPruned, totalPruned+totalScanned, 100*float64(totalPruned)/float64(totalPruned+totalScanned))
}

// TestConeBoundConservative is the cone-soundness property test: for a
// shard's direction cone, the per-query bound must dominate the exact
// maximum inner product over the shard's live probes — including zero
// probes, zero queries, and cones widened by post-build updates (adds and
// rewrites that drift outside the original radius). A NaN query must never
// prune under the !(bound < θ) keep rule.
func TestConeBoundConservative(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		r := 3 + rng.Intn(10)
		n := 5 + rng.Intn(40)
		p := clusteredProbe(rng, r, n)
		ix, err := lemp.New(p.Clone(), lemp.Options{MinBucketSize: 4, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		cone := ix.DirectionCone()

		check := func(stage string, c *lemp.ShardCone, probes *lemp.Matrix) {
			for qi := 0; qi < 20; qi++ {
				q := randVec(rng, r)
				if qi == 0 {
					q = make([]float64, r) // zero query
				}
				qlen := vecmath.Norm(q)
				maxDot := math.Inf(-1)
				for i := 0; i < probes.N(); i++ {
					if d := vecmath.Dot(q, probes.Vec(i)); d > maxDot {
						maxDot = d
					}
				}
				bound := coneBound(c, q, qlen)
				// The floored bound only claims to dominate qualifying
				// (v ≥ θ > 0) products, which maxDot ≤ 0 never yields.
				if maxDot > 0 && bound < maxDot {
					t.Fatalf("trial %d %s: cone bound %v below exact max %v (qlen %v, cone %+v)",
						trial, stage, bound, maxDot, qlen, c)
				}
			}
		}
		check("fresh", cone, ix.Probe())

		// Widen by a batch of adds/rewrites and re-check against the new
		// probe set: the widened cone must still enclose every live probe.
		probes, ids := ix.LiveProbes()
		widened := cone
		nAdd := 1 + rng.Intn(6)
		grown := lemp.NewMatrix(r, probes.N()+nAdd)
		for i := 0; i < probes.N(); i++ {
			copy(grown.Vec(i), probes.Vec(i))
		}
		for a := 0; a < nAdd; a++ {
			v := randVec(rng, r)
			copy(grown.Vec(probes.N()+a), v)
			widened = widenCone(widened, v)
		}
		_ = ids
		check("widened", widened, grown)

		// NaN query: the bound must not prune for any θ.
		nanq := make([]float64, r)
		nanq[0] = math.NaN()
		b := coneBound(cone, nanq, vecmath.Norm(nanq))
		if b < math.Inf(1) && !math.IsNaN(b) {
			// A finite bound would be fine only if it still kept the shard
			// for every θ, which it cannot; require NaN or +Inf.
			t.Fatalf("trial %d: NaN query produced finite bound %v", trial, b)
		}
		if b < 1e18 { // the keep rule itself: !(bound < θ) must hold
			t.Fatalf("trial %d: NaN query bound %v would prune", trial, b)
		}
	}
}

// TestCostPlacementBalancesSkew: on a length-skewed catalog laid out in
// decreasing length order — the worst case for equal-count contiguous
// splits — cost placement must produce a lower max/mean per-shard estimated
// scan cost than range placement.
func TestCostPlacementBalancesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const r, n, shards = 8, 600, 4
	p := lemp.NewMatrix(r, n)
	for i := 0; i < n; i++ {
		v := p.Vec(i)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		// Zipf-ish length skew, decreasing with the column index.
		norm := vecmath.Norm(v)
		vecmath.Scale(v, v, 20.0/(norm*math.Pow(float64(i+1), 0.8)))
	}
	opts := lemp.Options{MinBucketSize: 10, Parallelism: 1}
	rangeSh, err := NewShardedPlaced(p.Clone(), nil, shards, opts, PlaceRange)
	if err != nil {
		t.Fatal(err)
	}
	costSh, err := NewShardedPlaced(p.Clone(), nil, shards, opts, PlaceCost)
	if err != nil {
		t.Fatal(err)
	}
	rs, cs := rangeSh.CostSkew(), costSh.CostSkew()
	if cs >= rs {
		t.Fatalf("cost placement skew %.3f not below range skew %.3f", cs, rs)
	}
	if cs > 1.5 {
		t.Fatalf("cost placement skew %.3f still badly unbalanced", cs)
	}
	// Both placements must serve identical results.
	q := lemp.NewMatrix(r, 3)
	for i := 0; i < 3; i++ {
		copy(q.Vec(i), randVec(rng, r))
	}
	a, _, err := rangeSh.AboveTheta(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := costSh.AboveTheta(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	compareRows(t, "range vs cost", a, b)
}

// TestPlacementAddRouting: adds must follow the active placement — nearest
// cone centroid under cluster placement, cheapest shard under cost
// placement — and drift past the exception bound must trigger a whole-set
// re-placement that leaves the router compact and results exact.
func TestPlacementAddRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const r, n = 6, 120
	p := clusteredProbe(rng, r, n)
	opts := lemp.Options{MinBucketSize: 6, Parallelism: 1}
	sh, err := NewShardedPlaced(p.Clone(), nil, 3, opts, PlaceCluster)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lemp.New(p.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Route an add along shard 0's centroid: it must land on shard 0.
	_, cones := sh.PlacementInfo()
	if cones == nil || cones[0] == nil || cones[0].Centroid == nil {
		t.Fatal("cluster placement built no cones")
	}
	along := make([]float64, r)
	copy(along, cones[0].Centroid)
	vecmath.Scale(along, along, 1.5)
	res, err := sh.Update([]lemp.ProbeUpdate{{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: along}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if shard, live := sh.router.route(res.IDs[0]); !live || shard != 0 {
		t.Fatalf("centroid-aligned add routed to shard %d (live %v), want 0", shard, live)
	}
	if _, err := ref.ApplyUpdates([]lemp.ProbeUpdate{{Op: lemp.OpAdd, ID: res.IDs[0], Vec: along}}); err != nil {
		t.Fatal(err)
	}

	// Pile on adds until the drift bound trips: the exception map must be
	// re-collapsed into ranges and results must still match the reference.
	added := 0
	for sh.Replacements() == 0 && added < 4*n {
		v := clusteredProbe(rng, r, 1).Vec(0)
		res, err := sh.Update([]lemp.ProbeUpdate{{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: v}}, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyUpdates([]lemp.ProbeUpdate{{Op: lemp.OpAdd, ID: res.IDs[0], Vec: v}}); err != nil {
			t.Fatal(err)
		}
		added++
	}
	if sh.Replacements() == 0 {
		t.Fatalf("no drift re-placement after %d adds (exceptions %d)", added, sh.router.exceptions())
	}
	if exc := sh.router.exceptions(); exc != 0 {
		t.Fatalf("router still holds %d exceptions after re-placement", exc)
	}
	q := lemp.NewMatrix(r, 4)
	for i := 0; i < 4; i++ {
		copy(q.Vec(i), clusteredProbe(rng, r, 1).Vec(0))
	}
	got, _, err := sh.AboveTheta(q, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := ref.AboveTheta(q, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	lemp.SortEntries(entries)
	want := make([][]lemp.Entry, 4)
	for _, e := range entries {
		want[e.Query] = append(want[e.Query], e)
	}
	compareRows(t, "post-replacement", got, want)

	// Cost placement: adds must land on the cheapest shard.
	costSh, err := NewShardedPlaced(p.Clone(), nil, 3, opts, PlaceCost)
	if err != nil {
		t.Fatal(err)
	}
	costs := append([]float64(nil), costSh.costs...)
	cheapest := 0
	for i := range costs {
		if costs[i] < costs[cheapest] {
			cheapest = i
		}
	}
	res, err = costSh.Update([]lemp.ProbeUpdate{{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: randVec(rng, r)}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if shard, live := costSh.router.route(res.IDs[0]); !live || shard != cheapest {
		t.Fatalf("cost add routed to shard %d (live %v), want cheapest %d", shard, live, cheapest)
	}
}

// TestClusterSnapshotRoundTrip: a cluster-placed server snapshotted and
// restored must keep its placement (kind and cones), keep pruning, and
// answer identically to the original.
func TestClusterSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const r, n = 6, 90
	p := clusteredProbe(rng, r, n)
	cfg := Config{Shards: 3, Placement: "cluster", Options: lemp.Options{MinBucketSize: 6, Parallelism: 1}}
	srv, err := New(p.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snaps := snapshotReaders(writeShardSnapshots(t, srv))
	restored, err := NewFromSnapshot(snaps, Config{Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Sharded().Placement(); got != PlaceCluster {
		t.Fatalf("restored placement %q, want %q", got, PlaceCluster)
	}
	_, cones := restored.Sharded().PlacementInfo()
	if cones == nil {
		t.Fatal("restored shard set has no cones")
	}
	for i, c := range cones {
		if c == nil {
			t.Fatalf("restored shard %d has no cone", i)
		}
	}
	q := lemp.NewMatrix(r, 5)
	for i := 0; i < 5; i++ {
		copy(q.Vec(i), clusteredProbe(rng, r, 1).Vec(0))
	}
	want, _, err := srv.Sharded().AboveTheta(q, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := restored.Sharded().AboveTheta(q, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	compareRows(t, "restored vs original", got, want)

	// A shard-count override must re-place through the placement interface.
	resharded, err := NewFromSnapshot(snapshotReaders(writeShardSnapshots(t, srv)), Config{Shards: 2, Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resharded.Sharded().NumShards() != 2 {
		t.Fatalf("re-sharded to %d shards, want 2", resharded.Sharded().NumShards())
	}
	got2, _, err := resharded.Sharded().AboveTheta(q, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	compareRows(t, "re-sharded vs original", got2, want)
}
