package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lemp"
)

// TestClientDisconnectCancelsShardRetrievals is the acceptance criterion:
// an HTTP request whose client disconnects mid-batch cancels the underlying
// shard retrievals — observed through the shard test hooks — instead of
// running to completion, and never publishes a cache entry.
func TestClientDisconnectCancelsShardRetrievals(t *testing.T) {
	q, p := smokeMatrices(t)
	srv, err := New(p, Config{Shards: testShards, Options: lemp.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}

	// Gate every shard retrieval: all shards block at their start hook
	// until the server-side request context reports the disconnect, so the
	// cancellation is deterministically "mid-batch" — dispatched, not yet
	// scanned — and the scans observably start only after it landed.
	started := make(chan struct{})
	var startOnce sync.Once
	var mu sync.Mutex
	var shardErrs []error
	sh := srv.Sharded()
	sh.testShardStart = func(ctx context.Context, _ int) {
		startOnce.Do(func() { close(started) })
		<-ctx.Done()
	}
	sh.testShardDone = func(_ int, err error) {
		mu.Lock()
		shardErrs = append(shardErrs, err)
		mu.Unlock()
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"queries": vecs(q, 0, 4), "k": 5})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/topk", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no shard retrieval started")
	}
	cancel() // the client disconnects mid-batch
	if err := <-clientDone; err == nil {
		t.Fatal("client request succeeded despite cancellation")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(shardErrs)
		mu.Unlock()
		if n == testShards {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d shard retrievals finished", n, testShards)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	canceled := 0
	for _, err := range shardErrs {
		if errors.Is(err, context.Canceled) {
			canceled++
		}
	}
	if canceled != testShards {
		t.Fatalf("%d of %d shard retrievals saw context.Canceled: %v", canceled, testShards, shardErrs)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("canceled request published %d cache rows", n)
	}
}

// TestRequestTimeoutAbortsRetrieval checks Config.RequestTimeout flows into
// shard scans: a request whose deadline expires mid-batch returns 503 and
// the shards observe context.DeadlineExceeded.
func TestRequestTimeoutAbortsRetrieval(t *testing.T) {
	q, p := smokeMatrices(t)
	srv, err := New(p, Config{Shards: testShards, Options: lemp.Options{Parallelism: 1}, RequestTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sh := srv.Sharded()
	// Hold each shard until the per-request deadline has expired.
	sh.testShardStart = func(ctx context.Context, _ int) { <-ctx.Done() }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"queries": vecs(q, 0, 2), "k": 3})
	resp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 on request timeout", resp.StatusCode)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("timed-out request published %d cache rows", n)
	}
}

// TestBatcherMergedContext checks the coalescing semantics: one impatient
// caller cannot abort a batch its mates still want, but when every caller
// leaves, the batch context cancels and the shards abort.
func TestBatcherMergedContext(t *testing.T) {
	q, p := smokeMatrices(t)
	sh, err := NewSharded(p, testShards, lemp.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(sh, 50*time.Millisecond, 64, BatchModeWindow)

	// One of two callers cancels: the survivor still gets its rows.
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := b.TopK(ctxA, q.Vec(0), 1, 3)
		aDone <- err
	}()
	bDone := make(chan struct {
		rows [][]lemp.Entry
		err  error
	}, 1)
	go func() {
		rows, err := b.TopK(context.Background(), q.Vec(1), 1, 3)
		bDone <- struct {
			rows [][]lemp.Entry
			err  error
		}{rows, err}
	}()
	time.Sleep(10 * time.Millisecond) // let both join the forming batch
	cancelA()
	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled caller got err %v, want context.Canceled", err)
	}
	res := <-bDone
	if res.err != nil {
		t.Fatalf("surviving caller failed: %v", res.err)
	}
	if len(res.rows) != 1 || len(res.rows[0]) != 3 {
		t.Fatalf("surviving caller got %d rows", len(res.rows))
	}

	// Every caller of an already-dispatched batch cancels: the merged
	// context dies mid-retrieval and the shard scans abort with
	// context.Canceled instead of running to completion. (A batch whose
	// every caller leaves before it fires is retired without dispatching
	// at all — covered by TestAbandonedBatchNotJoinable.)
	fast := NewBatcher(sh, time.Millisecond, 64, BatchModeWindow)
	started := make(chan struct{})
	var startOnce sync.Once
	sh.testShardStart = func(ctx context.Context, _ int) {
		startOnce.Do(func() { close(started) })
		<-ctx.Done() // hold the scan until the cancellation lands
	}
	var mu sync.Mutex
	var shardErrs []error
	sh.testShardDone = func(_ int, err error) {
		mu.Lock()
		shardErrs = append(shardErrs, err)
		mu.Unlock()
	}
	ctxC, cancelC := context.WithCancel(context.Background())
	cDone := make(chan error, 1)
	go func() {
		_, err := fast.TopK(ctxC, q.Vec(2), 1, 3)
		cDone <- err
	}()
	select {
	case <-started: // the batch fired and its shard scans are in flight
	case <-time.After(5 * time.Second):
		t.Fatal("batch never dispatched")
	}
	cancelC()
	if err := <-cDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(shardErrs)
		mu.Unlock()
		if n >= testShards {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned in-flight batch: only %d shard retrievals finished", len(shardErrs))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, err := range shardErrs[:testShards] {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("in-flight batch shard retrieval returned %v, want context.Canceled", err)
		}
	}
}

// TestAbandonedBatchNotJoinable is the regression test for a review
// finding: when a forming batch's only caller disconnects, the batch's
// merged context dies — a later innocent caller on the same key must start
// a fresh batch, not join the dead one and inherit its cancellation.
func TestAbandonedBatchNotJoinable(t *testing.T) {
	q, p := smokeMatrices(t)
	sh, err := NewSharded(p, testShards, lemp.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(sh, 200*time.Millisecond, 64, BatchModeWindow)

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := b.TopK(ctxA, q.Vec(0), 1, 3)
		aDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // A creates the forming batch
	cancelA()                         // ...and abandons it: live drops to 0
	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller got %v, want context.Canceled", err)
	}

	// B arrives on the same (mode, k, epoch) key while A's batch window
	// would still be open. It must get real rows, not A's cancellation.
	rows, err := b.TopK(context.Background(), q.Vec(1), 1, 3)
	if err != nil {
		t.Fatalf("innocent caller after an abandoned batch: %v", err)
	}
	if len(rows) != 1 || len(rows[0]) != 3 {
		t.Fatalf("innocent caller got %d rows", len(rows))
	}
}

// TestShardedTuningCacheReuse checks the serving path shares one tuning
// cache across shards and epochs key it: repeat calls tune zero times,
// updates force exactly one re-tune per shard.
func TestShardedTuningCacheReuse(t *testing.T) {
	q, p := smokeMatrices(t)
	sh, err := NewSharded(p, testShards, lemp.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := sh.TopK(q, 5); err != nil {
		t.Fatal(err)
	} else if st.Tunings != testShards {
		t.Fatalf("first call ran %d tunings, want one per shard (%d)", st.Tunings, testShards)
	}
	top, st, err := sh.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tunings != 0 || st.TuneCacheHits != testShards {
		t.Fatalf("warm call: Tunings=%d TuneCacheHits=%d, want 0/%d", st.Tunings, st.TuneCacheHits, testShards)
	}
	if st.TuneTime != 0 {
		t.Fatalf("warm call spent %v tuning", st.TuneTime)
	}

	// Results identical to a direct unsharded index.
	direct := directIndex(t, p)
	want, _, err := direct.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(top[i]) != len(want[i]) {
			t.Fatalf("row %d: %d entries, want %d", i, len(top[i]), len(want[i]))
		}
		for j := range want[i] {
			if top[i][j].Probe != want[i][j].Probe || top[i][j].Value != want[i][j].Value {
				t.Fatalf("row %d entry %d differs", i, j)
			}
		}
	}

	// An update batch rotates the keys of the affected shards only.
	if _, err := sh.Update([]lemp.ProbeUpdate{{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: p.Vec(0)}}, -1); err != nil {
		t.Fatal(err)
	}
	_, st, err = sh.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tunings != 1 || st.TuneCacheHits != testShards-1 {
		t.Fatalf("post-update call: Tunings=%d TuneCacheHits=%d, want 1/%d (only the mutated shard re-tunes)",
			st.Tunings, st.TuneCacheHits, testShards-1)
	}
}
