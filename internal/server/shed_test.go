package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lemp"
)

// newShedServer builds a server with direct access to the *Server (the
// shed tests steer on batcher queue depth and the in-flight gauge).
func newShedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *lemp.Matrix) {
	t.Helper()
	q, p := smokeMatrices(t)
	srv, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, q
}

// postTopK posts a single-query top-k request and returns the status code
// and the Retry-After header.
func postTopK(t *testing.T, url string, query []float64, k int) (int, string) {
	t.Helper()
	buf, err := json.Marshal(topKRequest{Queries: [][]float64{query}, K: k})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/topk", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// shedStats is the /stats admission-control block.
type shedStats struct {
	BatchMode string `json:"batch_mode"`
	Shed      struct {
		QueueRowsLimit int    `json:"queue_rows_limit"`
		InflightLimit  int    `json:"inflight_limit"`
		ShedTotal      uint64 `json:"shed_total"`
		QueueRows      int64  `json:"queue_rows"`
		DispatchIdleNS int64  `json:"dispatch_idle_ns"`
	} `json:"shed"`
}

func getShedStats(t *testing.T, url string) shedStats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st shedStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShedQueueRows drives the batch queue to the configured depth and
// checks that the next request is rejected with 429 + Retry-After before
// enqueueing, that shedding stops once the queue drains, and that the
// /stats shed block reports it all.
func TestShedQueueRows(t *testing.T) {
	cfg := testConfig()
	cfg.BatchMode = "window" // hold requests the full window so the queue is steerable
	cfg.BatchWindow = 300 * time.Millisecond
	cfg.BatchMax = 1024
	cfg.ShedQueueRows = 4
	cfg.ShedInflight = -1
	cfg.CacheEntries = -1
	srv, ts, q := newShedServer(t, cfg)

	// Park requests in the forming batch one at a time so the queue depth
	// at each admission check is deterministic.
	const parked = 4
	results := make(chan int, parked)
	for i := 0; i < parked; i++ {
		go func(i int) {
			status, _ := postTopK(t, ts.URL, q.Vec(i), 5)
			results <- status
		}(i)
		deadline := time.Now().Add(5 * time.Second)
		for srv.batcher.PendingRows() < int64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("request %d never reached the forming batch (pending %d)", i, srv.batcher.PendingRows())
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	// Queue is at the limit: the next request must shed, not enqueue.
	status, retryAfter := postTopK(t, ts.URL, q.Vec(parked), 5)
	if status != http.StatusTooManyRequests {
		t.Fatalf("request over queue limit: status %d, want 429", status)
	}
	if retryAfter == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if n := srv.batcher.PendingRows(); n != parked {
		t.Fatalf("shed request still enqueued: %d pending rows, want %d", n, parked)
	}

	// The parked requests must be unaffected.
	for i := 0; i < parked; i++ {
		if got := <-results; got != http.StatusOK {
			t.Fatalf("parked request returned %d, want 200", got)
		}
	}

	// Drained: shedding stops.
	if status, _ := postTopK(t, ts.URL, q.Vec(parked+1), 5); status != http.StatusOK {
		t.Fatalf("request after drain: status %d, want 200", status)
	}

	st := getShedStats(t, ts.URL)
	if st.BatchMode != "window" {
		t.Errorf("stats batch_mode = %q, want window", st.BatchMode)
	}
	if st.Shed.QueueRowsLimit != 4 {
		t.Errorf("stats queue_rows_limit = %d, want 4", st.Shed.QueueRowsLimit)
	}
	if st.Shed.InflightLimit != 0 {
		t.Errorf("stats inflight_limit = %d, want 0 (disabled)", st.Shed.InflightLimit)
	}
	if st.Shed.ShedTotal != 1 {
		t.Errorf("stats shed_total = %d, want 1", st.Shed.ShedTotal)
	}
	if st.Shed.DispatchIdleNS <= 0 {
		t.Errorf("stats dispatch_idle_ns = %d; window mode must accumulate idle time", st.Shed.DispatchIdleNS)
	}
}

// TestShedInflight checks the in-flight limit: with ShedInflight=1, a
// second concurrent retrieval sheds while the first is still being served,
// and admission reopens once it finishes.
func TestShedInflight(t *testing.T) {
	cfg := testConfig()
	cfg.BatchMode = "window"
	cfg.BatchWindow = 300 * time.Millisecond
	cfg.BatchMax = 1024
	cfg.ShedQueueRows = -1
	cfg.ShedInflight = 1
	cfg.CacheEntries = -1
	srv, ts, q := newShedServer(t, cfg)

	first := make(chan int, 1)
	go func() {
		status, _ := postTopK(t, ts.URL, q.Vec(0), 5)
		first <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.batcher.PendingRows() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the forming batch")
		}
		time.Sleep(200 * time.Microsecond)
	}

	if status, _ := postTopK(t, ts.URL, q.Vec(1), 5); status != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request: status %d, want 429", status)
	}
	if got := <-first; got != http.StatusOK {
		t.Fatalf("first request returned %d, want 200", got)
	}

	// Wait for the in-flight gauge to settle (instrument decrements after
	// the response is written), then a fresh request must be admitted.
	for srv.metrics.inFlight.Value() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge stuck at %v", srv.metrics.inFlight.Value())
		}
		time.Sleep(200 * time.Microsecond)
	}
	if status, _ := postTopK(t, ts.URL, q.Vec(2), 5); status != http.StatusOK {
		t.Fatalf("request after drain: status %d, want 200", status)
	}
	if st := getShedStats(t, ts.URL); st.Shed.ShedTotal != 1 {
		t.Errorf("stats shed_total = %d, want 1", st.Shed.ShedTotal)
	}
}

// TestStatsDefaultBatchMode pins the new default: an empty Config.BatchMode
// resolves to continuous and /stats says so.
func TestStatsDefaultBatchMode(t *testing.T) {
	_, ts, _ := newShedServer(t, testConfig())
	if st := getShedStats(t, ts.URL); st.BatchMode != "continuous" {
		t.Errorf("stats batch_mode = %q, want continuous", st.BatchMode)
	}
}
