package server

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"lemp"
)

// writeShardSnapshots snapshots every shard of a server into in-memory
// buffers, in shard order.
func writeShardSnapshots(t testing.TB, srv *Server) []*bytes.Buffer {
	t.Helper()
	var bufs []*bytes.Buffer
	err := srv.WriteSnapshots(func(i, n int) (io.WriteCloser, error) {
		bufs = append(bufs, &bytes.Buffer{})
		return nopWriteCloser{bufs[i]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return bufs
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func snapshotReaders(bufs []*bytes.Buffer) []io.Reader {
	rs := make([]io.Reader, len(bufs))
	for i, b := range bufs {
		rs[i] = bytes.NewReader(b.Bytes())
	}
	return rs
}

// TestSnapshotServerWithLists round-trips a warmed server through
// list-carrying snapshots (SLST section): the restored shards must arrive
// with their sorted-list indexes pre-built and answer identically.
func TestSnapshotServerWithLists(t *testing.T) {
	q, p := smokeMatrices(t)
	built, err := New(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up builds the lazy sorted lists the snapshot should carry.
	if _, _, err := built.Sharded().TopK(q.Head(8), 5); err != nil {
		t.Fatal(err)
	}
	var bufs []*bytes.Buffer
	err = built.WriteSnapshotsWith(func(i, n int) (io.WriteCloser, error) {
		bufs = append(bufs, &bytes.Buffer{})
		return nopWriteCloser{bufs[i]}, nil
	}, lemp.SnapshotOptions{IncludeLists: true})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromSnapshot(snapshotReaders(bufs), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	indexed := 0
	for _, ix := range restored.Sharded().Indexes() {
		for _, b := range ix.Buckets() {
			if b.Indexed {
				indexed++
			}
		}
	}
	if indexed == 0 {
		t.Fatal("restored shards carry no pre-built sorted lists")
	}
	wantRows, _, err := built.Sharded().TopK(q.Head(16), 7)
	if err != nil {
		t.Fatal(err)
	}
	gotRows, _, err := restored.Sharded().TopK(q.Head(16), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRows, wantRows) {
		t.Fatal("restored-with-lists server answers differently")
	}
}

// TestSnapshotServerMatchesBuiltServer round-trips a 4-shard server through
// snapshots and requires identical responses from both.
func TestSnapshotServerMatchesBuiltServer(t *testing.T) {
	q, p := smokeMatrices(t)
	built, err := New(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromSnapshot(snapshotReaders(writeShardSnapshots(t, built)), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Sharded().N() != built.Sharded().N() || restored.Sharded().NumShards() != built.Sharded().NumShards() {
		t.Fatalf("restored %d probes in %d shards, want %d in %d",
			restored.Sharded().N(), restored.Sharded().NumShards(), built.Sharded().N(), built.Sharded().NumShards())
	}
	tsBuilt := httptest.NewServer(built.Handler())
	defer tsBuilt.Close()
	tsRestored := httptest.NewServer(restored.Handler())
	defer tsRestored.Close()

	req := topKRequest{Queries: vecs(q, 0, 32), K: 10}
	var want, got queryResponse
	postJSON(t, tsBuilt.URL+"/v1/topk", req, &want)
	postJSON(t, tsRestored.URL+"/v1/topk", req, &got)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot-restored server returned different top-k results")
	}

	above := aboveRequest{Queries: vecs(q, 0, 32), Theta: 1.5}
	postJSON(t, tsBuilt.URL+"/v1/above", above, &want)
	postJSON(t, tsRestored.URL+"/v1/above", above, &got)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot-restored server returned different above-θ results")
	}
}

// TestSnapshotServerSkipsTuning is the restart-cost contract: a server
// restored from pretuned shard snapshots must never spend time in tuning —
// cumulative TuneTime stays zero across served traffic.
func TestSnapshotServerSkipsTuning(t *testing.T) {
	q, p := smokeMatrices(t)
	built, err := New(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pretune every shard so the snapshots freeze fitted parameters (this
	// is what lemp-serve -save-snapshot does before writing).
	for _, ix := range built.Sharded().Indexes() {
		if err := ix.PretuneTopK(q.Head(32), 10); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := NewFromSnapshot(snapshotReaders(writeShardSnapshots(t, built)), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(restored.Handler())
	defer ts.Close()
	var resp queryResponse
	postJSON(t, ts.URL+"/v1/topk", topKRequest{Queries: vecs(q, 0, 64), K: 10}, &resp)
	postJSON(t, ts.URL+"/v1/above", aboveRequest{Queries: vecs(q, 64, 128), Theta: 1.5}, &resp)
	if st := restored.Sharded().CumulativeStats(); st.TuneTime != 0 {
		t.Fatalf("snapshot-restored server spent %v tuning; want 0", st.TuneTime)
	}
}

// failingDest errors partway through a snapshot write and records whether
// the caller aborted (discarding partial output) or closed (committing it).
type failingDest struct {
	n       int
	aborted bool
	closed  bool
}

func (f *failingDest) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 64 {
		return 0, io.ErrShortWrite
	}
	return len(p), nil
}

func (f *failingDest) Close() error { f.closed = true; return nil }
func (f *failingDest) Abort() error { f.aborted = true; return nil }

// TestWriteSnapshotsAbortsFailedWrites checks that a mid-stream write
// failure aborts the destination instead of closing it — a temp-file
// destination must never rename truncated output over a good snapshot.
func TestWriteSnapshotsAbortsFailedWrites(t *testing.T) {
	_, p := smokeMatrices(t)
	srv, err := New(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dest := &failingDest{}
	err = srv.WriteSnapshots(func(i, n int) (io.WriteCloser, error) { return dest, nil })
	if err == nil {
		t.Fatal("failing write reported success")
	}
	if !dest.aborted || dest.closed {
		t.Fatalf("aborted=%v closed=%v; want aborted, not closed", dest.aborted, dest.closed)
	}
}

func TestNewShardedFromIndexesValidates(t *testing.T) {
	_, p := smokeMatrices(t)
	ix, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := lemp.New(lemp.NewMatrix(3, 5), lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedFromIndexes(nil); err == nil {
		t.Error("empty index list accepted")
	}
	if _, err := NewShardedFromIndexes([]*lemp.Index{ix, other}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	sh, err := NewShardedFromIndexes([]*lemp.Index{ix})
	if err != nil {
		t.Fatal(err)
	}
	if sh.N() != p.N() || sh.R() != p.R() {
		t.Fatalf("shape %d/%d, want %d/%d", sh.N(), sh.R(), p.N(), p.R())
	}
}

func TestNewFromSnapshotRejectsCorrupt(t *testing.T) {
	_, p := smokeMatrices(t)
	built, err := New(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bufs := writeShardSnapshots(t, built)
	raw := bufs[1].Bytes()
	raw[len(raw)/2] ^= 0x20
	if _, err := NewFromSnapshot(snapshotReaders(bufs), testConfig()); err == nil {
		t.Fatal("corrupt shard snapshot accepted")
	}
}

// TestRejectsNonFiniteInputs covers the serving-path hardening: NaN/Inf θ
// and NaN/Inf query coordinates must all be rejected with 400 before
// touching retrieval or the cache.
func TestRejectsNonFiniteInputs(t *testing.T) {
	q, p := smokeMatrices(t)
	srv, err := New(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Raw bodies: JSON cannot represent NaN/Inf, so these exercise the
	// decoder rejection; the handler guard behind it is tested below.
	for _, body := range []string{
		`{"queries": [[1, 2]], "theta": NaN}`,
		`{"queries": [[1, 2]], "theta": Infinity}`,
		`{"queries": [[NaN, 2]], "theta": 1}`,
		`{"queries": [[1, 2]], "theta": 1e999}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/above", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}

	// The θ guard itself (reachable by any future non-JSON transport).
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		if finitePositive(x) {
			t.Errorf("finitePositive(%v) = true", x)
		}
	}
	if !finitePositive(0.5) || !finitePositive(math.MaxFloat64) {
		t.Error("finitePositive rejected a valid θ")
	}

	// The query-coordinate guard in serve, called directly so non-finite
	// values reach it without a JSON transport in the way.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		qv := append([]float64(nil), q.Vec(0)...)
		qv[1] = bad
		rec := httptest.NewRecorder()
		srv.serve(rec, httptest.NewRequest(http.MethodPost, "/v1/topk", nil), batchKey{topk: true, k: 3}, [][]float64{q.Vec(1), qv})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("query with %v coordinate: status %d, want 400", bad, rec.Code)
		}
	}
}
