package server

import (
	"testing"

	"lemp"
)

func row(n int) []lemp.Entry { return make([]lemp.Entry, n) }

// TestCacheEntryBound checks that capacity is enforced on total entries —
// the bound that matters for Above-θ rows — not on row count.
func TestCacheEntryBound(t *testing.T) {
	c := NewCache(10)
	c.Put("a", row(6))
	if c.Entries() != 6 || c.Len() != 1 {
		t.Fatalf("entries=%d rows=%d", c.Entries(), c.Len())
	}
	c.Put("b", row(6)) // 12 > 10: evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should be cached")
	}
	if c.Entries() != 6 {
		t.Fatalf("entries=%d after eviction, want 6", c.Entries())
	}

	// A row heavier than the whole capacity is never cached.
	c.Put("huge", row(11))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized row should not be cached")
	}

	// Empty rows cost 1 so they stay evictable.
	c.Put("empty", nil)
	if c.Entries() != 7 {
		t.Fatalf("entries=%d with empty row, want 7", c.Entries())
	}
	if got, ok := c.Get("empty"); !ok || len(got) != 0 {
		t.Fatalf("empty row lookup: %v, %v", got, ok)
	}

	// Replacing a row adjusts the weight delta.
	c.Put("b", row(2))
	if c.Entries() != 3 {
		t.Fatalf("entries=%d after replacement, want 3", c.Entries())
	}

	// A nil cache (disabled) never hits and never panics.
	var nilCache *Cache
	nilCache.Put("x", row(1))
	if _, ok := nilCache.Get("x"); ok {
		t.Fatal("nil cache should not hit")
	}
}
