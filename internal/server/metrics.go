package server

import (
	"fmt"
	"time"

	"lemp"
	"lemp/internal/obs"
)

// The server's metric surface, exposed in Prometheus text format at
// GET /metrics. Everything observed on the serving path — request
// latencies, batch-wait time, per-shard scan time, merge time, per-call
// core counters — records through pre-resolved handles (atomic adds, no
// allocation, no locks); state that already lives in an atomic somewhere
// (cache hits, epoch, queue depth) is exported through func-backed
// counters/gauges read only at scrape time.

// endpoints instrumented with request counters and latency histograms.
// A fixed list, never request data: label cardinality stays bounded.
var endpointNames = []string{"topk", "above", "update", "stats", "healthz", "readyz", "metrics", "traces"}

// statusCodes pre-resolved per endpoint. 429 is admission control shedding
// under overload; 499 is the synthesized "client closed request" status
// for requests canceled before a response was written.
var statusCodes = []int{200, 400, 413, 429, 499, 500, 503}

type serverMetrics struct {
	reg *obs.Registry

	inFlight *obs.Gauge

	reqDur        map[string]*obs.Histogram       // endpoint → latency
	reqTotal      map[string]map[int]*obs.Counter // endpoint → status → count
	reqTotalOther map[string]*obs.Counter         // endpoint → unexpected status

	batchWait    *obs.Histogram
	batchRows    *obs.Histogram
	shardScan    []*obs.Histogram // per shard
	mergeDur     *obs.Histogram
	requestsShed *obs.Counter
	dispatchIdle *obs.Counter

	coreCandidates  *obs.Counter
	coreResults     *obs.Counter
	coreBlock       *obs.Counter
	coreScalar      *obs.Counter
	coreProcessed   *obs.Counter
	corePruned      *obs.Counter
	coreTunings     *obs.Counter
	coreTuneHits    *obs.Counter
	coreTuneSeconds *obs.Counter
	coreScanSeconds *obs.Counter
	quantScreened   *obs.Counter
	quantSurvivors  *obs.Counter

	slowQueries *obs.Counter
}

// newServerMetrics registers every family and pre-resolves the hot-path
// children (per endpoint, per status, per shard).
func newServerMetrics(shards int) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:           reg,
		reqDur:        make(map[string]*obs.Histogram, len(endpointNames)),
		reqTotal:      make(map[string]map[int]*obs.Counter, len(endpointNames)),
		reqTotalOther: make(map[string]*obs.Counter, len(endpointNames)),
	}

	m.inFlight = reg.Gauge("lemp_requests_in_flight",
		"Retrieval/update requests currently being served.")

	durVec := reg.HistogramVec("lemp_request_duration_seconds",
		"End-to-end request latency by endpoint.", obs.LatencyBuckets(), "endpoint")
	totVec := reg.CounterVec("lemp_http_requests_total",
		"HTTP requests by endpoint and status (499 = client closed request).",
		"endpoint", "status")
	for _, ep := range endpointNames {
		m.reqDur[ep] = durVec.With(ep)
		byStatus := make(map[int]*obs.Counter, len(statusCodes))
		for _, code := range statusCodes {
			byStatus[code] = totVec.With(ep, fmt.Sprint(code))
		}
		m.reqTotal[ep] = byStatus
		m.reqTotalOther[ep] = totVec.With(ep, "other")
	}

	m.batchWait = reg.Histogram("lemp_batch_wait_seconds",
		"Time a request spent waiting for its micro-batch to dispatch.",
		obs.ExpBuckets(50e-6, 2, 12))
	m.batchRows = reg.Histogram("lemp_batch_rows",
		"Query rows per dispatched retrieval call.",
		obs.ExpBuckets(1, 2, 10))
	scanVec := reg.HistogramVec("lemp_shard_scan_seconds",
		"Per-shard retrieval time (including serialization wait), the per-shard skew signal.",
		obs.LatencyBuckets(), "shard")
	m.shardScan = make([]*obs.Histogram, shards)
	for i := range m.shardScan {
		m.shardScan[i] = scanVec.With(fmt.Sprint(i))
	}
	m.mergeDur = reg.Histogram("lemp_merge_seconds",
		"K-way merge (top-k) or row sort (above-theta) time per retrieval call.",
		obs.ExpBuckets(10e-6, 2, 12))
	m.requestsShed = reg.Counter("lemp_requests_shed_total",
		"Retrieval requests rejected with 429 by admission control (batch queue depth or in-flight limit reached).")
	m.dispatchIdle = reg.Counter("lemp_batch_dispatch_idle_ns",
		"Total nanoseconds a key's index sat idle while a forming batch waited to dispatch (the window penalty continuous batching removes).")

	m.coreCandidates = reg.Counter("lemp_core_candidates_total",
		"Probe vectors that survived bucket pruning and were exactly verified (the paper's |C|).")
	m.coreResults = reg.Counter("lemp_core_results_total",
		"Verified entries that passed the threshold or ended in a top-k set.")
	m.coreBlock = reg.Counter("lemp_core_block_verified_total",
		"Candidates verified through the blocked panel kernels.")
	m.coreScalar = reg.Counter("lemp_core_scalar_verified_total",
		"Candidates verified through the scalar tail path.")
	m.coreProcessed = reg.Counter("lemp_core_processed_pairs_total",
		"(query, bucket) combinations processed.")
	m.corePruned = reg.Counter("lemp_core_pruned_pairs_total",
		"(query, bucket) combinations pruned by the local threshold bound.")
	m.coreTunings = reg.Counter("lemp_core_tunings_total",
		"Sample-tuning passes executed.")
	m.coreTuneHits = reg.Counter("lemp_core_tune_cache_hits_total",
		"Tuning phases answered from the shared tuning cache.")
	m.coreTuneSeconds = reg.Counter("lemp_core_tune_seconds_total",
		"Cumulative tuning time, summed across shards and calls (worker time, not wall clock).")
	m.coreScanSeconds = reg.Counter("lemp_core_scan_seconds_total",
		"Cumulative retrieval-scan time, summed across shards and calls (worker time, not wall clock).")

	m.quantScreened = reg.Counter("lemp_quant_screened_total",
		"Candidates discarded by int8 quantized screening before exact verification (0 unless built with quantization).")
	m.quantSurvivors = reg.Counter("lemp_quant_survivors_total",
		"Candidates that passed quantized screening and went on to exact verification.")

	m.slowQueries = reg.Counter("lemp_slow_queries_total",
		"Requests past the slow-query threshold (always traced and logged).")

	return m
}

// observeRequest records one finished request.
func (m *serverMetrics) observeRequest(endpoint string, status int, dur time.Duration) {
	if m == nil {
		return
	}
	m.reqDur[endpoint].ObserveDuration(dur)
	if c, ok := m.reqTotal[endpoint][status]; ok {
		c.Inc()
	} else {
		m.reqTotalOther[endpoint].Inc()
	}
}

// recordCallStats folds one retrieval call's core stats into the counters;
// it runs once per sharded call (not per request) and performs only atomic
// adds.
func (m *serverMetrics) recordCallStats(st lemp.Stats) {
	if m == nil {
		return
	}
	m.coreCandidates.Add(float64(st.Candidates))
	m.coreResults.Add(float64(st.Results))
	m.coreBlock.Add(float64(st.BlockVerified))
	m.coreScalar.Add(float64(st.ScalarVerified))
	m.coreProcessed.Add(float64(st.ProcessedPairs))
	m.corePruned.Add(float64(st.PrunedPairs))
	m.coreTunings.Add(float64(st.Tunings))
	m.coreTuneHits.Add(float64(st.TuneCacheHits))
	m.coreTuneSeconds.AddDuration(st.TuneTime)
	m.coreScanSeconds.AddDuration(st.RetrievalTime)
	m.quantScreened.Add(float64(st.QuantScreened))
	m.quantSurvivors.Add(float64(st.QuantSurvived))
}

// wireState registers the func-backed families that read live server
// state at scrape time. Called once from newServer, after every component
// exists.
func (s *Server) wireState() {
	m := s.metrics
	reg := m.reg
	reg.GaugeFunc("lemp_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("lemp_ready",
		"1 when the server is serving (built, pretuned, not draining), else 0.",
		func() float64 {
			if s.ready.Load() && !s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("lemp_epoch",
		"Current update epoch (0 at construction, +1 per applied update batch).",
		func() float64 { return float64(s.sharded.Epoch()) })
	reg.GaugeFunc("lemp_live_probes",
		"Live probe vectors across all shards.",
		func() float64 { return float64(s.sharded.N()) })
	reg.GaugeFunc("lemp_shards",
		"Number of index shards.",
		func() float64 { return float64(s.sharded.NumShards()) })
	reg.CounterFunc("lemp_requests_total",
		"Retrieval requests accepted (post-validation).",
		func() float64 { return float64(s.requests.Load()) })
	reg.CounterFunc("lemp_updates_total",
		"Update batches applied.",
		func() float64 { return float64(s.updates.Load()) })
	reg.CounterFunc("lemp_compactions_total",
		"Shard re-bucketizations triggered by update delta mass.",
		func() float64 { return float64(s.sharded.Compactions()) })
	reg.CounterFunc("lemp_shards_scanned_total",
		"Per-shard retrievals dispatched across all batches.",
		func() float64 { return float64(s.sharded.ShardsScanned()) })
	reg.CounterFunc("lemp_shards_pruned_total",
		"Per-shard retrievals skipped by the cone bound (cluster placement, Above-theta only).",
		func() float64 { return float64(s.sharded.ShardsPruned()) })
	reg.CounterFunc("lemp_placement_replacements_total",
		"Whole-set re-placements triggered by router-exception drift.",
		func() float64 { return float64(s.sharded.Replacements()) })
	reg.GaugeFunc("lemp_placement_cost_skew",
		"Max/mean ratio of per-shard estimated scan cost (1 = perfectly balanced).",
		func() float64 { return s.sharded.CostSkew() })
	reg.GaugeFunc("lemp_quant_sidecar_bytes",
		"Memory held by the int8 quantized screening sidecars across all shards (0 when screening is off).",
		func() float64 { return float64(s.sharded.SidecarBytes()) })
	reg.CounterFunc("lemp_batches_total",
		"Retrieval calls dispatched (each serving one coalesced batch).",
		func() float64 { return float64(s.batches.Load()) })
	reg.CounterFunc("lemp_batch_rows_total",
		"Query rows across all dispatched retrieval calls.",
		func() float64 { return float64(s.batchRows.Load()) })
	reg.GaugeFunc("lemp_batch_queue_rows",
		"Query rows currently waiting in forming batches (batcher queue depth).",
		func() float64 { return float64(s.batcher.PendingRows()) })
	reg.CounterFunc("lemp_cache_hits_total",
		"Result-cache hits.",
		func() float64 { return float64(s.cache.Hits()) })
	reg.CounterFunc("lemp_cache_misses_total",
		"Result-cache misses.",
		func() float64 { return float64(s.cache.Misses()) })
	reg.GaugeFunc("lemp_cache_rows",
		"Result rows currently cached.",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("lemp_cache_entries",
		"Result entries currently cached (the capacity unit).",
		func() float64 { return float64(s.cache.Entries()) })
	reg.CounterFunc("lemp_traces_finished_total",
		"Request traces recorded (tail-sampled at completion).",
		func() float64 { return float64(s.tracer.Finished()) })
	reg.CounterFunc("lemp_traces_retained_total",
		"Request traces retained into the /debug/traces ring.",
		func() float64 { return float64(s.tracer.Retained()) })

	// Hook the sharded layer: per-shard scan histograms, merge histogram,
	// and the per-call stats fold.
	s.sharded.scanHist = m.shardScan
	s.sharded.mergeHist = m.mergeDur
	s.sharded.onCallStats = m.recordCallStats
	// And the batcher: wait/size histograms, the idle-gap counter and the
	// batch-scoped tracer.
	s.batcher.batchWaitHist = m.batchWait
	s.batcher.batchRowsHist = m.batchRows
	s.batcher.dispatchIdle = m.dispatchIdle
	s.batcher.tracer = s.tracer
}
