package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"lemp"
	"lemp/internal/obs"
)

// Config sizes a Server. The zero value is usable: it means 1 shard, no
// batching window, a modest cache, a bounded request-body size, and
// library-default retrieval options except Parallelism, which defaults to
// using all cores across the shard fan-out (a server owns the machine,
// unlike the paper's single-threaded measurements).
type Config struct {
	// Shards is the number of index shards (default 1).
	Shards int
	// Placement selects the shard-placement strategy: "range" (equal-count
	// contiguous, the default), "cost" (contiguous, balanced by estimated
	// scan cost) or "cluster" (directional k-means with per-shard cone
	// pruning of Above-θ queries). When restoring from snapshots, an empty
	// Placement adopts whatever strategy the snapshots were written under;
	// a non-empty one overrides it (forcing a re-placement on load).
	Placement string
	// RebalanceOnLoad re-places the restored probe set under the effective
	// placement strategy before serving, instead of adopting the snapshot
	// layout as-is. Implied when Placement overrides the stored strategy or
	// the snapshot count differs from Shards.
	RebalanceOnLoad bool
	// Quant overrides the snapshots' quantized-screening state when
	// restoring (NewFromSnapshot): lemp.QuantAuto (the zero value) keeps
	// what each snapshot persisted, QuantOn forces screening on (rebuilding
	// missing sidecars from the stored directions), QuantOff drops it.
	// Fresh builds ignore it — set Options.Quantize instead.
	Quant lemp.QuantMode
	// Options configure each shard's index. Options.Parallelism == 0 is
	// replaced by runtime.NumCPU()/Shards (at least 1), so one dispatched
	// batch fanning out across all shards uses about all cores — not
	// Shards× of them. Set Parallelism explicitly to override.
	Options lemp.Options
	// BatchWindow is how long a request waits for others to coalesce with
	// (default 0: no batching). 1–5 ms trades a little latency for a large
	// throughput win under concurrent load.
	BatchWindow time.Duration
	// BatchMax caps the number of query rows per combined batch
	// (default 256).
	BatchMax int
	// BatchMode selects when a forming batch dispatches: "continuous"
	// (the default; dispatch immediately when the key's index is idle and
	// back-to-back as each retrieval completes, with BatchWindow/BatchMax
	// as upper bounds) or "window" (always wait out the full window).
	BatchMode string
	// ShedQueueRows is the admission-control bound on the batcher's queue
	// depth: while at least this many query rows sit in forming batches,
	// new retrieval requests are rejected with 429 before enqueueing
	// (default 16384; negative disables queue-depth shedding).
	ShedQueueRows int
	// ShedInflight is the admission-control bound on concurrently served
	// retrieval/update requests: a request that would push the in-flight
	// count past this is rejected with 429 before any work (default 4096;
	// negative disables in-flight shedding). Shedding early keeps latency
	// bounded under overload instead of letting the queue collapse.
	ShedInflight int
	// CacheEntries is the LRU result-cache capacity in result entries
	// (default 65536; negative disables caching). Entries, not rows: an
	// Above-θ row can hold up to N entries, so a row bound would not
	// bound memory. Each cached row also stores its 25+8R-byte key beyond
	// the counted entries; size the capacity with that overhead in mind.
	CacheEntries int
	// MaxBodyBytes caps the request body size (default 32 MiB; negative
	// disables the limit). A long-lived server must not let one client
	// buffer arbitrary JSON into memory.
	MaxBodyBytes int64
	// MaxUpdateOps caps the number of ops per /v1/update batch (default
	// 4096; negative disables the limit). Updates are applied atomically,
	// so an unbounded batch would buffer unbounded derived state.
	MaxUpdateOps int
	// CompactFraction is the per-shard delta-mass threshold above which an
	// update triggers re-bucketization of that shard (default 0.25;
	// negative disables auto-compaction). Lower values keep pruning tight
	// at the cost of more frequent rebuilds.
	CompactFraction float64
	// RequestTimeout bounds each retrieval request's end-to-end time
	// (default 0: no deadline). The deadline propagates into the sharded
	// scans, which abort mid-bucket when it expires, so a pathological
	// query cannot pin shard workers indefinitely.
	RequestTimeout time.Duration

	// Logger receives the structured access log (Debug), slow-query log
	// (Warn) and lifecycle events (Info). nil disables logging entirely
	// (metrics and tracing stay on).
	Logger *slog.Logger
	// SlowQueryThreshold marks retrieval/update requests slower than this
	// as slow: they are always retained in the trace ring and logged with
	// per-phase timings (default 0: slow-query capture off).
	SlowQueryThreshold time.Duration
	// TraceSampleRate is the probability a fast request's trace is
	// retained for GET /debug/traces (default 0: only slow requests are
	// retained). Recording itself is always on and allocation-free;
	// sampling decides retention at request end (tail sampling).
	TraceSampleRate float64
	// TraceRingSize bounds the retained-trace ring (default 256).
	TraceRingSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's handler. Off by default: profiles expose internals and
	// cost CPU, so production servers opt in explicitly.
	EnablePprof bool
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Options.Parallelism == 0 {
		c.Options.Parallelism = runtime.NumCPU() / c.Shards
		if c.Options.Parallelism < 1 {
			c.Options.Parallelism = 1
		}
	}
	if c.BatchMax == 0 {
		c.BatchMax = 256
	}
	if c.BatchMode == "" {
		c.BatchMode = BatchModeContinuous.String()
	}
	if c.ShedQueueRows == 0 {
		c.ShedQueueRows = 16384
	}
	if c.ShedInflight == 0 {
		c.ShedInflight = 4096
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 65536
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxUpdateOps == 0 {
		c.MaxUpdateOps = 4096
	}
	if c.CompactFraction == 0 {
		c.CompactFraction = 0.25
	}
	return c
}

// Server answers LEMP retrieval queries and probe updates over HTTP:
//
//	POST /v1/topk        {"queries": [[...], ...], "k": 10}
//	POST /v1/above       {"queries": [[...], ...], "theta": 0.9}
//	POST /v1/update      {"updates": [{"op": "add", "vector": [...]}, ...]}
//	GET  /healthz        liveness
//	GET  /readyz         readiness (503 while starting or draining)
//	GET  /stats          cumulative JSON stats
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/traces   retained request traces (tail-sampled)
//	GET  /debug/pprof/   runtime profiles (Config.EnablePprof)
//
// Responses list one result row per submitted query, each row an array of
// {"probe", "value"} objects (global probe ids; top-k rows by decreasing
// value, Above-θ rows by ascending probe id).
type Server struct {
	cfg     Config
	sharded *Sharded
	batcher *Batcher
	cache   *Cache
	start   time.Time

	metrics *serverMetrics
	tracer  *obs.Tracer
	logger  *slog.Logger // nil-safe via logging flag
	logging bool

	// ready flips on once the owner declares the index built/restored and
	// pretuned (New* constructors are synchronous, so it defaults true;
	// cmd/lemp-serve clears it while warming up). draining flips on at
	// BeginDrain and never back. GET /readyz reports 200 only while
	// ready && !draining.
	ready    atomic.Bool
	draining atomic.Bool

	requests  atomic.Uint64 // retrieval requests accepted
	updates   atomic.Uint64 // update batches applied
	batches   atomic.Uint64 // retrieval calls dispatched
	batchRows atomic.Uint64 // query rows across all dispatched calls
}

// New builds a server over the probe matrix: cfg.Shards indexes over
// contiguous probe ranges behind a micro-batcher and a result cache.
func New(probe *lemp.Matrix, cfg Config) (*Server, error) {
	return NewWithIDs(probe, nil, cfg)
}

// NewWithIDs is New with caller-chosen external probe ids (ids[i] names
// probe column i; nil assigns 0..n-1). Rebuilding a server from a mutated
// catalog — e.g. re-sharding a snapshot whose ids are no longer contiguous
// — must use this so results and updates keep addressing the same probes.
func NewWithIDs(probe *lemp.Matrix, ids []int32, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if _, err := ParseBatchMode(cfg.BatchMode); err != nil {
		return nil, err
	}
	kind := PlaceRange
	if cfg.Placement != "" {
		k, err := ParsePlacement(cfg.Placement)
		if err != nil {
			return nil, err
		}
		kind = k
	}
	sharded, err := NewShardedPlaced(probe, ids, cfg.Shards, cfg.Options, kind)
	if err != nil {
		return nil, err
	}
	return newServer(sharded, cfg), nil
}

// NewFromSnapshot builds a server from one LEMPIDX1 snapshot per shard (in
// shard order, as written by WriteSnapshots), skipping index construction
// entirely: startup is O(read) instead of O(index). cfg.Options contributes
// only Parallelism (structure and algorithm are fixed by the snapshots).
//
// The snapshot layout is adopted as-is by default: snapshot count = shard
// count, stored placement strategy and cones included. Any of cfg.Shards
// set to a different count, cfg.Placement overriding the stored strategy,
// or cfg.RebalanceOnLoad forces one re-placement of the live probe set —
// through the placement interface, whatever the snapshot layout was —
// before the server starts serving.
func NewFromSnapshot(snapshots []io.Reader, cfg Config) (*Server, error) {
	target := cfg.Shards // 0 = keep the snapshot count
	cfg.Shards = len(snapshots)
	cfg = cfg.withDefaults()
	if _, err := ParseBatchMode(cfg.BatchMode); err != nil {
		return nil, err
	}
	sharded, err := NewShardedFromSnapshot(snapshots, lemp.LoadOptions{Parallelism: cfg.Options.Parallelism, Quant: cfg.Quant})
	if err != nil {
		return nil, err
	}
	rebalance := cfg.RebalanceOnLoad
	if cfg.Placement != "" {
		kind, err := ParsePlacement(cfg.Placement)
		if err != nil {
			return nil, err
		}
		if kind != sharded.Placement() {
			// Re-adopt the loaded indexes under the overriding strategy,
			// then re-place: the snapshot partitioning reflects the old one.
			if sharded, err = NewShardedFromIndexesPlaced(sharded.Indexes(), kind, nil); err != nil {
				return nil, err
			}
			rebalance = true
		}
	}
	if target > 0 && target != sharded.NumShards() {
		rebalance = true
	} else {
		target = sharded.NumShards()
	}
	if rebalance {
		// Must precede newServer: per-shard observability is sized to the
		// final shard count.
		if err := sharded.Rebalance(target); err != nil {
			return nil, err
		}
	}
	cfg.Shards = sharded.NumShards()
	return newServer(sharded, cfg), nil
}

// newServer wires the shared serving stack around a shard set.
func newServer(sharded *Sharded, cfg Config) *Server {
	mode, _ := ParseBatchMode(cfg.BatchMode) // validated by the constructors
	s := &Server{
		cfg:     cfg,
		sharded: sharded,
		batcher: NewBatcher(sharded, cfg.BatchWindow, cfg.BatchMax, mode),
		cache:   NewCache(cfg.CacheEntries),
		start:   time.Now(),
		logger:  cfg.Logger,
		logging: cfg.Logger != nil,
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	s.tracer = obs.NewTracer(obs.TracerConfig{SampleRate: cfg.TraceSampleRate, RingSize: cfg.TraceRingSize})
	s.metrics = newServerMetrics(sharded.NumShards())
	s.wireState()
	s.ready.Store(true)
	s.batcher.onDispatch = func(rows, _ int) {
		s.batches.Add(1)
		s.batchRows.Add(uint64(rows))
	}
	return s
}

// Registry exposes the server's metric registry (for embedding the
// families into a larger exposition, and for tests).
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// Tracer exposes the server's tracer (tests and custom trace sinks).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SetReady flips the readiness probe: GET /readyz answers 200 only while
// ready and not draining. Constructors start ready; an owner doing
// post-construction warm-up (snapshot restore, pretuning) clears it first
// and sets it when serving can begin.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// BeginDrain marks the server draining: /readyz flips to 503 so load
// balancers stop routing here, while in-flight and straggler requests
// still complete. Draining is one-way.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) && s.logging {
		s.logger.Info("draining", "uptime", time.Since(s.start).String())
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Sharded returns the server's shard set (for snapshot persistence and
// introspection).
func (s *Server) Sharded() *Sharded { return s.sharded }

// WriteSnapshots persists every shard index: open(i, n) is called with each
// shard number and the shard count and returns the destination (and any
// error, which aborts the walk). Close is called only after a fully
// successful write; when a write fails mid-stream, a destination
// implementing Abort() is aborted instead of closed, so implementations
// that commit on Close (temp file + rename) can discard the partial output
// rather than publish it. Restart with NewFromSnapshot by supplying the
// same snapshots in the same order. Must not run concurrently with request
// serving — per-call tuning rewrites the state being serialized.
func (s *Server) WriteSnapshots(open func(i, n int) (io.WriteCloser, error)) error {
	return s.WriteSnapshotsWith(open, lemp.SnapshotOptions{})
}

// WriteSnapshotsWith is WriteSnapshots with explicit persistence options —
// e.g. lemp.SnapshotOptions{IncludeLists: true} to carry the built
// sorted-list indexes so a restored server's first batch skips their
// rebuild.
func (s *Server) WriteSnapshotsWith(open func(i, n int) (io.WriteCloser, error), opts lemp.SnapshotOptions) error {
	ixs := s.sharded.Indexes()
	kind, cones := s.sharded.PlacementInfo()
	for i, ix := range ixs {
		shOpts := opts
		if shOpts.Placement == nil && kind != PlaceRange {
			// Persist the placement strategy (and, for cluster shards, the
			// direction cone) so a restore adopts it instead of falling back
			// to range semantics. Range placement writes no PLMT section,
			// keeping those snapshots readable by older builds.
			pl := &lemp.ShardPlacement{Kind: string(kind)}
			if cones != nil {
				pl.Cone = cones[i]
			}
			shOpts.Placement = pl
		}
		w, err := open(i, len(ixs))
		if err != nil {
			return err
		}
		if err := ix.WriteSnapshotWith(w, shOpts); err != nil {
			if a, ok := w.(interface{ Abort() error }); ok {
				a.Abort()
			} else {
				w.Close()
			}
			return fmt.Errorf("server: snapshotting shard %d: %w", i, err)
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("server: snapshotting shard %d: %w", i, err)
		}
	}
	return nil
}

// Handler returns the server's HTTP routes. Every route runs under the
// instrument wrapper (request counters, latency histograms, access log);
// the work endpoints (topk, above, update) additionally carry a request
// trace whose id is returned in the X-Lemp-Trace header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topk", s.instrument("topk", true, s.handleTopK))
	mux.HandleFunc("POST /v1/above", s.instrument("above", true, s.handleAbove))
	mux.HandleFunc("POST /v1/update", s.instrument("update", true, s.handleUpdate))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", false, s.handleReadyz))
	mux.HandleFunc("GET /stats", s.instrument("stats", false, s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.HandleFunc("GET /debug/traces", s.instrument("traces", false, s.handleTraces))
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// reqInfo is the per-request scratch the handlers fill for the instrument
// wrapper: query rows served, cache hits, and the batch's core stats, so
// the access and slow-query logs can report work, not just latency.
type reqInfo struct {
	rows      int
	cacheHits int
	stats     lemp.Stats
}

type reqInfoKey struct{}

// requestInfo extracts the wrapper's reqInfo, or nil when the handler was
// invoked outside instrument (direct tests).
func requestInfo(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return info
}

// statusWriter captures the response status and byte count for metrics
// and logging. An unset status means no response was written — a request
// canceled by its client — reported as 499 (the de-facto "client closed
// request" code).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// statusClientClosed is reported when a handler finished without writing a
// response — the client disconnected and there was nobody to answer.
const statusClientClosed = 499

func (w *statusWriter) Status() int {
	if w.status == 0 {
		return statusClientClosed
	}
	return w.status
}

// instrument wraps a handler with the observability envelope: request
// counter and latency histogram always; for traced endpoints also the
// in-flight gauge, a request trace (id in X-Lemp-Trace, tail-sampled into
// the /debug/traces ring at completion) and the slow-query log.
func (s *Server) instrument(endpoint string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var (
			tr   *obs.Trace
			root obs.SpanRef
			info *reqInfo
		)
		if traced {
			s.metrics.inFlight.Inc()
			tr = s.tracer.StartTrace()
			root = tr.Start(endpoint, obs.NoSpan)
			info = &reqInfo{}
			ctx := obs.ContextWithSpan(r.Context(), tr, root)
			ctx = context.WithValue(ctx, reqInfoKey{}, info)
			r = r.WithContext(ctx)
			if id := tr.IDString(); id != "" {
				sw.Header().Set("X-Lemp-Trace", id)
			}
		}
		h(sw, r)
		dur := time.Since(start)
		status := sw.Status()
		s.metrics.observeRequest(endpoint, status, dur)
		var traceID string
		if traced {
			s.metrics.inFlight.Dec()
			tr.End(root)
			traceID = tr.IDString()
			slow := s.cfg.SlowQueryThreshold > 0 && dur >= s.cfg.SlowQueryThreshold
			if slow {
				s.metrics.slowQueries.Inc()
				s.logSlowQuery(r, endpoint, status, dur, tr, info)
			}
			s.tracer.Finish(tr, obs.TraceMeta{Kind: endpoint, Rows: info.rows, Slow: slow})
		}
		if s.logging {
			s.logger.LogAttrs(r.Context(), slog.LevelDebug, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", dur),
				slog.String("trace", traceID),
			)
		}
	}
}

// logSlowQuery emits the structured slow-query record: end-to-end and
// per-phase durations (summed from the trace's span tree), per-shard scan
// times, and the work counters the handler recorded. It runs while the
// trace is still owned by this request, before Finish returns it to the
// pool.
func (s *Server) logSlowQuery(r *http.Request, endpoint string, status int, dur time.Duration, tr *obs.Trace, info *reqInfo) {
	if !s.logging {
		return
	}
	durNS := dur.Nanoseconds()
	var waitNS, tuneNS, scanNS, mergeNS int64
	type shardTime struct {
		Shard int   `json:"shard"`
		NS    int64 `json:"ns"`
	}
	var shards []shardTime
	for _, sp := range tr.Spans() {
		end := sp.EndNS
		if end == 0 {
			end = durNS // unclosed span: clamp to request end
		}
		d := end - sp.StartNS
		switch sp.Name {
		case "batch.wait":
			waitNS += d
		case "tune":
			tuneNS += d
		case "scan":
			scanNS += d
		case "merge":
			mergeNS += d
		case "shard":
			shards = append(shards, shardTime{Shard: int(sp.Shard), NS: d})
		}
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query",
		slog.String("trace", tr.IDString()),
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Duration("duration", dur),
		slog.Int("rows", info.rows),
		slog.Int("cache_hits", info.cacheHits),
		slog.Int64("batch_wait_ns", waitNS),
		slog.Int64("tune_ns", tuneNS),
		slog.Int64("scan_ns", scanNS),
		slog.Int64("merge_ns", mergeNS),
		slog.Any("shards", shards),
		slog.Int64("candidates", info.stats.Candidates),
		slog.Int64("results", info.stats.Results),
		slog.Int("tunings", info.stats.Tunings),
		slog.Int("tune_cache_hits", info.stats.TuneCacheHits),
	)
}

// topKRequest is the body of POST /v1/topk.
type topKRequest struct {
	Queries [][]float64 `json:"queries"`
	K       int         `json:"k"`
}

// aboveRequest is the body of POST /v1/above.
type aboveRequest struct {
	Queries [][]float64 `json:"queries"`
	Theta   float64     `json:"theta"`
}

// resultEntry is one retrieved entry: probe id and inner-product value.
type resultEntry struct {
	Probe int     `json:"probe"`
	Value float64 `json:"value"`
}

// queryResponse lists one result row per submitted query.
type queryResponse struct {
	Results [][]resultEntry `json:"results"`
}

// decodeBody decodes the JSON request body into req under the configured
// size limit, writing the error response itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, req any) bool {
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// shedRequest is the admission-control gate, checked before a retrieval
// request's body is even decoded: when the batcher's forming-batch queue
// or the in-flight request count is past the configured bound, the request
// is rejected with 429 and a Retry-After hint instead of being enqueued.
// Shedding at the door keeps the latency of admitted requests bounded
// under overload — the alternative is an unboundedly deep queue where
// every request times out. Returns true when the request was shed.
func (s *Server) shedRequest(w http.ResponseWriter) bool {
	var reason string
	switch {
	case s.cfg.ShedQueueRows > 0 && s.batcher.PendingRows() >= int64(s.cfg.ShedQueueRows):
		reason = fmt.Sprintf("batch queue holds %d rows (limit %d)", s.batcher.PendingRows(), s.cfg.ShedQueueRows)
	case s.cfg.ShedInflight > 0 && int(s.metrics.inFlight.Value()) > s.cfg.ShedInflight:
		// The gauge already counts this request (instrument incremented
		// it), so strictly-greater means the limit was full before us.
		reason = fmt.Sprintf("%d requests in flight (limit %d)", int(s.metrics.inFlight.Value())-1, s.cfg.ShedInflight)
	default:
		return false
	}
	s.metrics.requestsShed.Inc()
	// One batch window is the natural drain quantum; clients should wait
	// at least a second before re-offering load.
	retry := int64(1)
	if w2 := 2 * s.cfg.BatchWindow; w2 > time.Second {
		retry = int64(w2 / time.Second)
	}
	w.Header().Set("Retry-After", fmt.Sprint(retry))
	httpError(w, http.StatusTooManyRequests, "overloaded: %s", reason)
	return true
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if s.shedRequest(w) {
		return
	}
	var req topKRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.K < 1 {
		httpError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	s.serve(w, r, batchKey{topk: true, k: req.K}, req.Queries)
}

func (s *Server) handleAbove(w http.ResponseWriter, r *http.Request) {
	if s.shedRequest(w) {
		return
	}
	var req aboveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !finitePositive(req.Theta) {
		httpError(w, http.StatusBadRequest, "theta must be a positive finite number, got %v", req.Theta)
		return
	}
	s.serve(w, r, batchKey{theta: req.Theta}, req.Queries)
}

// serve answers one retrieval request pinned to a single update epoch:
// the epoch snapshot is taken once, cache lookups, the batched retrieval
// and cache inserts all use it, so a response can never mix rows from
// different epochs and a cached row can never outlive the probe set it
// was computed against.
//
// The request context (plus the configured RequestTimeout) flows into the
// sharded retrieval: a client that disconnects mid-batch stops contributing
// to the merged batch context, and when every batch-mate has left the
// underlying shard scans abort mid-bucket. A canceled request never
// publishes rows into the result cache.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, key batchKey, queries [][]float64) {
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	view := s.sharded.CurrentView()
	key.epoch = view.Epoch()
	// A row can never hold more than N entries; clamping here keeps huge k
	// values from sizing merge buffers (and cache keys) off user input.
	if n := view.N(); key.topk && n > 0 && key.k > n {
		key.k = n
	}
	dim := s.sharded.R()
	for i, q := range queries {
		if len(q) != dim {
			httpError(w, http.StatusBadRequest, "query %d has dimension %d, want %d", i, len(q), dim)
			return
		}
		// Non-finite coordinates poison the retrieval pipeline (query
		// lengths and bucket bounds become NaN, silently emptying results)
		// and the cache key; reject them at the door.
		for j, x := range q {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				httpError(w, http.StatusBadRequest, "query %d coordinate %d is %v; coordinates must be finite", i, j, x)
				return
			}
		}
	}
	s.requests.Add(1)
	info := requestInfo(ctx)
	if info != nil {
		info.rows = len(queries)
	}

	// Split rows into cache hits and misses; misses form one submission.
	rows := make([][]lemp.Entry, len(queries))
	var (
		keys     []string
		missData []float64
		missIdx  []int
	)
	if s.cache != nil {
		keys = make([]string, len(queries))
	}
	for i, q := range queries {
		if s.cache != nil {
			keys[i] = cacheKey(key, q)
			if row, ok := s.cache.Get(keys[i]); ok {
				rows[i] = row
				continue
			}
		}
		missData = append(missData, q...)
		missIdx = append(missIdx, i)
	}
	if info != nil {
		info.cacheHits = len(queries) - len(missIdx)
	}
	if len(missIdx) > 0 {
		var (
			fresh [][]lemp.Entry
			st    lemp.Stats
			err   error
		)
		if key.topk {
			fresh, st, err = s.batcher.TopKAt(ctx, view, missData, len(missIdx), key.k)
		} else {
			fresh, st, err = s.batcher.AboveThetaAt(ctx, view, missData, len(missIdx), key.theta)
		}
		if info != nil {
			info.stats = st
		}
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled):
			// The client is gone; there is nobody to answer. Returning
			// here (before any cache insert) guarantees a canceled
			// request never publishes a partial row.
			return
		case errors.Is(err, context.DeadlineExceeded):
			httpError(w, http.StatusServiceUnavailable, "retrieval timed out")
			return
		default:
			httpError(w, http.StatusInternalServerError, "retrieval: %v", err)
			return
		}
		for j, i := range missIdx {
			rows[i] = fresh[j]
			if s.cache != nil {
				s.cache.Put(keys[i], fresh[j])
			}
		}
	}

	resp := queryResponse{Results: make([][]resultEntry, len(rows))}
	for i, row := range rows {
		out := make([]resultEntry, len(row))
		for j, e := range row {
			out[j] = resultEntry{Probe: e.Probe, Value: e.Value}
		}
		resp.Results[i] = out
	}
	writeJSON(w, resp)
}

// healthzResponse is the body of GET /healthz.
type healthzResponse struct {
	Status string `json:"status"`
	Probes int    `json:"probes"`
	Shards int    `json:"shards"`
	Dim    int    `json:"dim"`
	Epoch  uint64 `json:"epoch"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	view := s.sharded.CurrentView()
	writeJSON(w, healthzResponse{
		Status: "ok",
		Probes: view.N(),
		Shards: s.sharded.NumShards(),
		Dim:    s.sharded.R(),
		Epoch:  view.Epoch(),
	})
}

// readyzResponse is the body of GET /readyz.
type readyzResponse struct {
	Status string `json:"status"`
	Probes int    `json:"probes"`
	Epoch  uint64 `json:"epoch"`
}

// handleReadyz is the readiness probe: 200 only while the server is both
// ready (shards built or restored, warm-up done) and not draining.
// /healthz answers liveness — "the process serves HTTP" — and stays 200
// through both warm-up and drain.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	view := s.sharded.CurrentView()
	resp := readyzResponse{Status: "ready", Probes: view.N(), Epoch: view.Epoch()}
	switch {
	case s.draining.Load():
		resp.Status = "draining"
	case !s.ready.Load():
		resp.Status = "starting"
	default:
		writeJSON(w, resp)
		return
	}
	buf, _ := json.Marshal(resp)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write(append(buf, '\n'))
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// tracesResponse is the body of GET /debug/traces: retained request
// traces, newest first.
type tracesResponse struct {
	Traces []*obs.TraceSnapshot `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, tracesResponse{Traces: s.tracer.Snapshots()})
}

// statsResponse is the body of GET /stats: server counters plus the
// cumulative core retrieval stats across all shards and batches.
type statsResponse struct {
	UptimeSeconds float64   `json:"uptime_seconds"`
	Requests      uint64    `json:"requests"`
	Updates       uint64    `json:"updates"`
	Epoch         uint64    `json:"epoch"`
	LiveProbes    int       `json:"live_probes"`
	Batches       uint64    `json:"batches"`
	BatchRows     uint64    `json:"batch_rows"`
	AvgBatchRows  float64   `json:"avg_batch_rows"`
	BatchMode     string    `json:"batch_mode"`
	Shed          shedInfo  `json:"shed"`
	Placement     string    `json:"placement"`
	CostSkew      float64   `json:"cost_skew"`
	ShardsScanned uint64    `json:"shards_scanned"`
	ShardsPruned  uint64    `json:"shards_pruned"`
	Cache         cacheInfo `json:"cache"`
	Quant         quantInfo `json:"quant"`
	Core          coreStats `json:"core"`
}

// quantInfo reports quantized-screening effectiveness and footprint:
// candidates discarded before exact verification vs passed through, and
// the sidecar memory across shards (all zero when screening is off).
type quantInfo struct {
	Screened     int64 `json:"screened"`
	Survivors    int64 `json:"survivors"`
	SidecarBytes int   `json:"sidecar_bytes"`
}

type cacheInfo struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Rows    int    `json:"rows"`
	Entries int    `json:"entries"`
}

// shedInfo reports the admission-control configuration and effect: the
// configured bounds (0 = disabled), requests rejected with 429 so far, the
// current queue depth the policy acts on, and the cumulative nanoseconds
// dispatches sat idle while a batch waited (the signal continuous batching
// drives to zero).
type shedInfo struct {
	QueueRowsLimit int    `json:"queue_rows_limit"`
	InflightLimit  int    `json:"inflight_limit"`
	ShedTotal      uint64 `json:"shed_total"`
	QueueRows      int64  `json:"queue_rows"`
	DispatchIdleNS int64  `json:"dispatch_idle_ns"`
}

// coreStats mirrors lemp.Stats with JSON names. Durations come in pairs:
// a machine-stable integer nanosecond field (_ns suffix) and a
// human-readable rendering of the same value. Their semantics follow the
// cumulative Stats aggregation (see lemp.Stats): prep is the one-time
// index preprocessing cost, reported identically by every call, while
// tune and retrieval SUM worker time across shards and calls — four
// shards scanning concurrently for 1ms add 4ms of retrieval time — so
// neither is wall clock.
type coreStats struct {
	Queries        int    `json:"queries"`
	Buckets        int    `json:"buckets"`
	IndexedBuckets int    `json:"indexed_buckets"`
	Candidates     int64  `json:"candidates"`
	Results        int64  `json:"results"`
	BlockVerified  int64  `json:"block_verified"`
	ScalarVerified int64  `json:"scalar_verified"`
	ProcessedPairs int64  `json:"processed_pairs"`
	PrunedPairs    int64  `json:"pruned_pairs"`
	Tunings        int    `json:"tunings"`
	TuneCacheHits  int    `json:"tune_cache_hits"`
	PrepNS         int64  `json:"prep_ns"`
	Prep           string `json:"prep"`
	TuneNS         int64  `json:"tune_ns"`
	Tune           string `json:"tune"`
	RetrievalNS    int64  `json:"retrieval_ns"`
	Retrieval      string `json:"retrieval"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sharded.CumulativeStats()
	batches := s.batches.Load()
	rows := s.batchRows.Load()
	avg := 0.0
	if batches > 0 {
		avg = float64(rows) / float64(batches)
	}
	view := s.sharded.CurrentView()
	writeJSON(w, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Updates:       s.updates.Load(),
		Epoch:         view.Epoch(),
		LiveProbes:    view.N(),
		Batches:       batches,
		BatchRows:     rows,
		AvgBatchRows:  avg,
		BatchMode:     s.batcher.Mode().String(),
		Shed: shedInfo{
			QueueRowsLimit: max(0, s.cfg.ShedQueueRows),
			InflightLimit:  max(0, s.cfg.ShedInflight),
			ShedTotal:      uint64(s.metrics.requestsShed.Value()),
			QueueRows:      s.batcher.PendingRows(),
			DispatchIdleNS: int64(s.metrics.dispatchIdle.Value()),
		},
		Placement:     string(s.sharded.Placement()),
		CostSkew:      s.sharded.CostSkew(),
		ShardsScanned: s.sharded.ShardsScanned(),
		ShardsPruned:  s.sharded.ShardsPruned(),
		Cache:         cacheInfo{Hits: s.cache.Hits(), Misses: s.cache.Misses(), Rows: s.cache.Len(), Entries: s.cache.Entries()},
		Quant: quantInfo{
			Screened:     st.QuantScreened,
			Survivors:    st.QuantSurvived,
			SidecarBytes: s.sharded.SidecarBytes(),
		},
		Core: coreStats{
			Queries:        st.Queries,
			Buckets:        st.Buckets,
			IndexedBuckets: st.IndexedBuckets,
			Candidates:     st.Candidates,
			Results:        st.Results,
			BlockVerified:  st.BlockVerified,
			ScalarVerified: st.ScalarVerified,
			ProcessedPairs: st.ProcessedPairs,
			PrunedPairs:    st.PrunedPairs,
			Tunings:        st.Tunings,
			TuneCacheHits:  st.TuneCacheHits,
			PrepNS:         st.PrepTime.Nanoseconds(),
			Prep:           st.PrepTime.String(),
			TuneNS:         st.TuneTime.Nanoseconds(),
			Tune:           st.TuneTime.String(),
			RetrievalNS:    st.RetrievalTime.Nanoseconds(),
			Retrieval:      st.RetrievalTime.String(),
		},
	})
}

// finitePositive reports whether x is a positive finite float, the valid
// domain for θ. Written as x > 0 rather than !(x <= 0) so NaN is rejected:
// every comparison with NaN is false, so a NaN θ passes an x <= 0 guard and
// would poison bucket-pruning bounds and the result-cache key. +Inf passes
// x > 0 and needs its own check.
func finitePositive(x float64) bool {
	return x > 0 && !math.IsInf(x, 0)
}

// writeJSON marshals before writing so an encoding failure (e.g. a ±Inf
// value from an overflowing inner product) becomes a clean 500 instead of
// a 200 with a truncated body.
func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
