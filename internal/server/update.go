package server

import (
	"math"
	"net/http"

	"lemp"
)

// The /v1/update endpoint applies a batch of probe mutations atomically:
//
//	POST /v1/update
//	{"updates": [
//	    {"op": "add", "vector": [...]},            // assigned id returned
//	    {"op": "add", "id": 7, "vector": [...]},   // explicit id
//	    {"op": "remove", "id": 3},
//	    {"op": "update", "id": 2, "vector": [...]}
//	]}
//
// The whole batch validates before anything is applied: an unknown or
// duplicate id, a dimension mismatch, a non-finite coordinate, an unknown
// op, an empty batch or an oversized one (Config.MaxUpdateOps) returns
// 400 and leaves the probe set, the epoch and every cached result exactly
// as they were. On success the response reports the new epoch, the live
// probe count, and the per-op ids (assigned ids for adds without one).
//
// Consistency model: every applied batch advances the epoch by one.
// Queries are pinned to the epoch snapshot taken at admission — responses
// never mix pre- and post-update vectors — and cached rows are keyed by
// epoch, so a mutation implicitly invalidates every cached result (stale
// rows age out of the LRU; they are never served at a newer epoch).

// updateRequest is the body of POST /v1/update.
type updateRequest struct {
	Updates []updateOp `json:"updates"`
}

// updateOp is one mutation. ID is a pointer so an absent id (auto-assign
// on add) is distinguishable from id 0.
type updateOp struct {
	Op     string    `json:"op"`
	ID     *int32    `json:"id"`
	Vector []float64 `json:"vector"`
}

// updateResponse is the body of a successful update.
type updateResponse struct {
	Epoch      uint64  `json:"epoch"`
	LiveProbes int     `json:"live_probes"`
	IDs        []int32 `json:"ids"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "no updates in batch")
		return
	}
	if s.cfg.MaxUpdateOps > 0 && len(req.Updates) > s.cfg.MaxUpdateOps {
		httpError(w, http.StatusBadRequest, "update batch holds %d ops, limit is %d", len(req.Updates), s.cfg.MaxUpdateOps)
		return
	}
	dim := s.sharded.R()
	ups := make([]lemp.ProbeUpdate, len(req.Updates))
	for i, op := range req.Updates {
		var kind lemp.UpdateOp
		switch op.Op {
		case "add":
			kind = lemp.OpAdd
		case "remove":
			kind = lemp.OpRemove
		case "update":
			kind = lemp.OpUpdate
		default:
			httpError(w, http.StatusBadRequest, "update %d: unknown op %q (want add, remove or update)", i, op.Op)
			return
		}
		id := lemp.AutoID
		if op.ID != nil {
			id = *op.ID
			if id < 0 {
				httpError(w, http.StatusBadRequest, "update %d: invalid probe id %d", i, id)
				return
			}
		} else if kind != lemp.OpAdd {
			httpError(w, http.StatusBadRequest, "update %d: op %q needs an id", i, op.Op)
			return
		}
		if kind == lemp.OpRemove {
			if op.Vector != nil {
				httpError(w, http.StatusBadRequest, "update %d: remove takes no vector", i)
				return
			}
		} else {
			if len(op.Vector) != dim {
				httpError(w, http.StatusBadRequest, "update %d: vector has dimension %d, want %d", i, len(op.Vector), dim)
				return
			}
			// Same door policy as queries: non-finite coordinates poison
			// lengths and bucket bounds. The JSON decoder cannot produce
			// them, but the core guard is mirrored here so any future
			// transport hits it too.
			for j, x := range op.Vector {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					httpError(w, http.StatusBadRequest, "update %d: coordinate %d is %v; coordinates must be finite", i, j, x)
					return
				}
			}
		}
		ups[i] = lemp.ProbeUpdate{Op: kind, ID: id, Vec: op.Vector}
	}
	if info := requestInfo(r.Context()); info != nil {
		info.rows = len(ups)
	}
	res, err := s.sharded.Update(ups, s.cfg.CompactFraction)
	if err != nil {
		// Every Update failure is a rejected batch (bad id, bad vector):
		// client data, not server state.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.updates.Add(1)
	writeJSON(w, updateResponse{Epoch: res.Epoch, LiveProbes: res.LiveN, IDs: res.IDs})
}
