package server

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"lemp"
)

// Cache is an LRU map from (query vector, retrieval parameters) to that
// query's result row. Keys embed the full vector bytes, so hits are exact —
// no hash collisions — and two queries differing only in k or θ never
// alias. Keys also embed the update epoch the row was computed at, so a
// probe mutation atomically invalidates the whole cache (see cacheKey).
// Cached rows carry global probe ids; the Query field is stale for later
// requests, so consumers must use only Probe and Value.
//
// Capacity is counted in result entries, not rows: Above-θ rows can hold
// up to N entries each, so a row-count bound would let a few low-θ queries
// pin unbounded memory. An empty row still costs 1 so it remains evictable.
// When sizing the capacity, note that each cached row also stores its
// 25+8R-byte key (plus list/map overhead) beyond the counted entries —
// significant when most rows are small and R is large.
type Cache struct {
	mu      sync.Mutex
	cap     int        // max total entry weight
	entries int        // current total entry weight
	ll      *list.List // front = most recently used
	items   map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheItem struct {
	key string
	row []lemp.Entry
}

// weight is the capacity cost of one cached row.
func weight(row []lemp.Entry) int {
	if len(row) == 0 {
		return 1
	}
	return len(row)
}

// NewCache returns an LRU cache holding up to capacity result entries;
// capacity <= 0 returns nil, which disables caching (a nil *Cache never
// hits).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// cacheKey encodes one query row and its parameters as an exact byte key.
// The update epoch is part of the key: a probe mutation advances the epoch
// and thereby invalidates every cached row at once — stale rows become
// unreachable (their epoch never recurs) and age out of the LRU under the
// normal entry accounting.
func cacheKey(key batchKey, vec []float64) string {
	b := make([]byte, 0, 25+8*len(vec))
	b = binary.LittleEndian.AppendUint64(b, key.epoch)
	if key.topk {
		b = append(b, 'k')
		b = binary.LittleEndian.AppendUint64(b, uint64(key.k))
	} else {
		b = append(b, 't')
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(key.theta))
	}
	for _, x := range vec {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return string(b)
}

// Get returns the cached row for k (and whether it was present), promoting
// it to most recently used.
func (c *Cache) Get(k string) ([]lemp.Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheItem).row, true
}

// Put stores a result row, evicting least recently used rows until the
// total entry weight fits; a single row heavier than the whole capacity is
// not cached at all. The row is stored as-is; callers must not mutate it
// afterwards.
func (c *Cache) Put(k string, row []lemp.Entry) {
	if c == nil {
		return
	}
	w := weight(row)
	if w > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		item := el.Value.(*cacheItem)
		c.entries += w - weight(item.row)
		item.row = row
	} else {
		c.items[k] = c.ll.PushFront(&cacheItem{key: k, row: row})
		c.entries += w
	}
	for c.entries > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		item := last.Value.(*cacheItem)
		c.entries -= weight(item.row)
		delete(c.items, item.key)
	}
}

// Len returns the number of cached rows.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Entries returns the total entry weight currently cached.
func (c *Cache) Entries() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries
}

// Hits reports cumulative lookups served from cache.
func (c *Cache) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses reports cumulative lookups that found nothing.
func (c *Cache) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}
