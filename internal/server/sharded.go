// Package server turns the lemp library into a long-lived query service:
// it shards a probe matrix across independent LEMP indexes, micro-batches
// concurrent HTTP requests into whole-matrix retrieval calls (the batch
// interface RowTopK/AboveTheta already expose), caches per-query results,
// and reports cumulative retrieval statistics.
package server

import (
	"fmt"
	"io"
	"sync"

	"lemp"
)

// Sharded partitions a probe matrix into S contiguous shards, each backed
// by its own lemp.Index, and answers whole-batch retrievals by fanning the
// query matrix across all shards concurrently and merging per-shard
// results: a k-way heap merge for Row-Top-k, concatenation for Above-θ.
// Shard-local probe ids are remapped to global ids before merging, so
// callers see the same id space as a single unsharded index.
//
// Each shard serializes its own retrieval calls (lemp.Index supports only
// one call at a time), so Sharded is safe for concurrent use.
type Sharded struct {
	shards []*shard
	r      int
	n      int

	mu  sync.Mutex
	cum lemp.Stats // cumulative stats across all retrieval calls
}

// shard is one contiguous probe range [base, base+index.N()) with its own
// index and the mutex that serializes retrieval calls on it.
type shard struct {
	mu    sync.Mutex
	index *lemp.Index
	base  int
}

// NewSharded builds nShards LEMP indexes over contiguous slices of probe
// (sharing its storage). Every shard receives the same options; shards
// differ in size by at most one probe.
func NewSharded(probe *lemp.Matrix, nShards int, opts lemp.Options) (*Sharded, error) {
	n := probe.N()
	if nShards < 1 {
		return nil, fmt.Errorf("server: shard count %d must be positive", nShards)
	}
	if nShards > n {
		nShards = n
	}
	if nShards == 0 {
		return nil, fmt.Errorf("server: probe matrix is empty")
	}
	s := &Sharded{r: probe.R(), n: n, shards: make([]*shard, nShards)}
	for i := range s.shards {
		// Split [0,n) into nShards near-equal contiguous ranges.
		lo, hi := i*n/nShards, (i+1)*n/nShards
		ix, err := lemp.New(probe.Slice(lo, hi), opts)
		if err != nil {
			return nil, fmt.Errorf("server: building shard %d: %w", i, err)
		}
		s.shards[i] = &shard{index: ix, base: lo}
	}
	return s, nil
}

// NewShardedFromIndexes assembles a Sharded from pre-built indexes —
// typically loaded from per-shard snapshots — in shard order: index i must
// cover the probe range immediately after index i-1, exactly as NewSharded
// partitioned them, so that the cumulative base offsets reconstruct the
// global probe id space.
func NewShardedFromIndexes(ixs []*lemp.Index) (*Sharded, error) {
	if len(ixs) == 0 {
		return nil, fmt.Errorf("server: no shard indexes")
	}
	s := &Sharded{r: ixs[0].R(), shards: make([]*shard, len(ixs))}
	for i, ix := range ixs {
		if ix.R() != s.r {
			return nil, fmt.Errorf("server: shard %d has dimension %d, shard 0 has %d", i, ix.R(), s.r)
		}
		if ix.N() == 0 {
			return nil, fmt.Errorf("server: shard %d is empty", i)
		}
		s.shards[i] = &shard{index: ix, base: s.n}
		s.n += ix.N()
	}
	return s, nil
}

// NewShardedFromSnapshot rebuilds a Sharded from one LEMPIDX1 snapshot per
// shard (in shard order), skipping bucketization and tuning: startup is
// O(read). Snapshots written by Server.WriteSnapshots restore an identical
// shard layout.
func NewShardedFromSnapshot(snapshots []io.Reader, opts lemp.LoadOptions) (*Sharded, error) {
	ixs := make([]*lemp.Index, len(snapshots))
	for i, r := range snapshots {
		ix, err := lemp.LoadIndex(r, opts)
		if err != nil {
			return nil, fmt.Errorf("server: loading shard %d snapshot: %w", i, err)
		}
		ixs[i] = ix
	}
	return NewShardedFromIndexes(ixs)
}

// Indexes returns the per-shard indexes in shard order (base offsets are
// cumulative N). Callers must not run retrievals on them while the Sharded
// is serving.
func (s *Sharded) Indexes() []*lemp.Index {
	out := make([]*lemp.Index, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.index
	}
	return out
}

// N returns the total number of probes across all shards.
func (s *Sharded) N() int { return s.n }

// R returns the vector dimension.
func (s *Sharded) R() int { return s.r }

// NumShards returns the number of shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// CumulativeStats returns the accumulated core stats of every retrieval
// call (all shards, all batches) since construction.
func (s *Sharded) CumulativeStats() lemp.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cum
}

// addShardStats merges one shard's per-call stats into the whole-call
// total, with two deviations from Stats.Add. Shards are distinct indexes,
// so the index-state values — Buckets, IndexedBuckets, the one-time
// PrepTime — sum across them where Add takes the max (across repeated
// calls those sums stay constant or grow monotonically, so Add's max keeps
// them correct at the cumulative level). And every shard saw the same
// logical queries, so Queries takes the max where Add sums (max rather
// than any-one-shard so an erroring shard reporting 0 cannot skew it).
func addShardStats(dst *lemp.Stats, st lemp.Stats) {
	buckets, indexed := dst.Buckets+st.Buckets, dst.IndexedBuckets+st.IndexedBuckets
	prep := dst.PrepTime + st.PrepTime
	queries := dst.Queries
	if st.Queries > queries {
		queries = st.Queries
	}
	dst.Add(st)
	dst.Buckets, dst.IndexedBuckets, dst.PrepTime = buckets, indexed, prep
	dst.Queries = queries
}

// fanOut runs fn on every shard concurrently and accumulates the per-shard
// stats; it returns the first error encountered.
func (s *Sharded) fanOut(fn func(i int, sh *shard) (lemp.Stats, error)) (lemp.Stats, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		call  lemp.Stats
		first error
	)
	wg.Add(len(s.shards))
	for i, sh := range s.shards {
		go func(i int, sh *shard) {
			defer wg.Done()
			sh.mu.Lock()
			st, err := fn(i, sh)
			sh.mu.Unlock()
			mu.Lock()
			addShardStats(&call, st)
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	s.mu.Lock()
	s.cum.Add(call)
	s.mu.Unlock()
	return call, first
}

// TopK answers Row-Top-k for a whole query matrix across all shards and
// merges per-shard rows into global top-k rows (probe ids are global).
func (s *Sharded) TopK(q *lemp.Matrix, k int) (lemp.TopK, lemp.Stats, error) {
	parts := make([]lemp.TopK, len(s.shards))
	st, err := s.fanOut(func(i int, sh *shard) (lemp.Stats, error) {
		top, stats, err := sh.index.RowTopK(q, k)
		if err != nil {
			return stats, err
		}
		for _, row := range top {
			for j := range row {
				row[j].Probe += sh.base
			}
		}
		parts[i] = top
		return stats, nil
	})
	if err != nil {
		return nil, st, err
	}
	return lemp.MergeTopK(k, parts...), st, nil
}

// AboveTheta answers Above-θ for a whole query matrix across all shards,
// concatenating per-shard result sets. Entries are returned grouped by
// query in rows (row i holds query i's entries) in canonical (Query, Probe)
// order, the grouping batching and caching work in.
func (s *Sharded) AboveTheta(q *lemp.Matrix, theta float64) ([][]lemp.Entry, lemp.Stats, error) {
	rows := make([][]lemp.Entry, q.N())
	var mu sync.Mutex
	st, err := s.fanOut(func(_ int, sh *shard) (lemp.Stats, error) {
		ents, stats, err := sh.index.AboveTheta(q, theta)
		if err != nil {
			return stats, err
		}
		mu.Lock()
		for _, e := range ents {
			e.Probe += sh.base
			rows[e.Query] = append(rows[e.Query], e)
		}
		mu.Unlock()
		return stats, nil
	})
	if err != nil {
		return nil, st, err
	}
	for _, row := range rows {
		lemp.SortEntries(row)
	}
	return rows, st, nil
}
