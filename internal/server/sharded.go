// Package server turns the lemp library into a long-lived query service:
// it shards a probe matrix across independent LEMP indexes, micro-batches
// concurrent HTTP requests into whole-matrix retrieval calls (the batch
// interface RowTopK/AboveTheta already expose), caches per-query results,
// applies live probe updates with epoch-consistent snapshots, and reports
// cumulative retrieval statistics.
package server

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lemp"
	"lemp/internal/obs"
	"lemp/internal/vecmath"
)

// Sharded partitions a probe matrix into S contiguous shards, each backed
// by its own lemp.Index built directly in the global probe-id space, and
// answers whole-batch retrievals by fanning the query matrix across all
// shards concurrently and merging per-shard results: a k-way heap merge
// for Row-Top-k, concatenation for Above-θ.
//
// The probe set is mutable: Update applies a batch of add/remove/update
// ops by deriving new per-shard indexes copy-on-write (lemp.WithUpdates)
// and swapping them in atomically under one epoch increment. Queries run
// against a View — an immutable snapshot of (epoch, shard indexes) taken
// at dispatch — so every retrieval sees exactly one epoch even while
// updates land, and no response can mix pre- and post-update probe
// vectors.
//
// Each shard serializes retrieval calls across all index versions
// (lemp.Index supports one call at a time, and old/new versions share
// main-bucket state), so Sharded is safe for concurrent use.
type Sharded struct {
	r int

	// Placement strategy the shard set was built with, and the effective
	// build options (needed to re-place on Rebalance). Both are fixed at
	// construction.
	placement PlacementKind
	opts      lemp.Options

	// mu guards the swappable serving state: the shard index pointers,
	// the epoch, the live probe count, and the placement metadata (per-
	// shard estimated costs, and direction cones for cluster placement).
	// Cone and cost slices are replaced wholesale on every commit, never
	// mutated in place, so a View may hold them without the lock.
	mu     sync.RWMutex
	epoch  uint64
	n      int // live probes across all shards
	shards []*shard
	costs  []float64         // per-shard estimated scan cost
	cones  []*lemp.ShardCone // per-shard direction cones; nil unless cluster-placed

	// updMu serializes Update calls. Routing state (router, nextID) is
	// only accessed while it is held.
	updMu  sync.Mutex
	router *router // live probe id → shard (ranges + exceptions)
	nextID int32   // next auto-assigned probe id

	// tc shares fitted per-bucket tuning parameters across all retrieval
	// calls of all shards: the first call per (problem, shard version)
	// pays one sample-tuning pass, every repeat restores it. Keys embed
	// the shard index instance and epoch, so entries never leak across
	// epochs or shards.
	tc *lemp.TuningCache

	statsMu sync.Mutex
	cum     lemp.Stats // cumulative stats across all retrieval calls

	// compactions counts shard re-bucketizations triggered by update
	// delta mass (exported as lemp_compactions_total); replacements the
	// drift-triggered whole-set re-placements (router exception mass).
	compactions  atomic.Uint64
	replacements atomic.Uint64

	// Shard-scan accounting: scanned counts shard retrievals dispatched,
	// pruned the shard retrievals skipped by the cone bound (exported as
	// lemp_shards_scanned_total / lemp_shards_pruned_total).
	scanned atomic.Uint64
	pruned  atomic.Uint64

	// noPrune disables cone pruning (differential tests compare pruned
	// against full fan-out on the same shard set).
	noPrune bool

	// Observability hooks, wired once by the server before serving and
	// nil for library use (all three are nil-safe at the call sites).
	// scanHist[i] observes shard i's per-call retrieval time, mergeHist
	// the cross-shard merge time, and onCallStats receives each call's
	// accumulated core stats (it must be cheap and allocation-free: it
	// runs on the retrieval path).
	scanHist    []*obs.Histogram
	mergeHist   *obs.Histogram
	onCallStats func(lemp.Stats)

	// Test instrumentation: when set, testShardStart is called as each
	// shard retrieval begins (with the retrieval context, so a test can
	// hold shards until a cancellation lands) and testShardDone as it
	// returns with its error, making mid-batch cancellation observable.
	testShardStart func(ctx context.Context, shard int)
	testShardDone  func(shard int, err error)
}

// shard is one probe partition: the current index version and the mutex
// that serializes retrieval calls on any version of it.
type shard struct {
	mu    sync.Mutex
	index *lemp.Index // current version; pointer guarded by Sharded.mu
}

// NewSharded builds nShards LEMP indexes over contiguous slices of probe
// (sharing its storage), shard i indexing probes [i·n/S, (i+1)·n/S) under
// their global ids 0..n-1. Every shard receives the same options; shards
// differ in size by at most one probe.
func NewSharded(probe *lemp.Matrix, nShards int, opts lemp.Options) (*Sharded, error) {
	return NewShardedWithIDs(probe, nil, nShards, opts)
}

// NewShardedWithIDs is NewSharded with caller-chosen external probe ids
// (ids[i] names probe column i; nil assigns 0..n-1). Re-sharding a
// previously mutated catalog uses this so probe ids survive the rebuild
// instead of being renumbered.
func NewShardedWithIDs(probe *lemp.Matrix, ids []int32, nShards int, opts lemp.Options) (*Sharded, error) {
	return NewShardedPlaced(probe, ids, nShards, opts, PlaceRange)
}

// NewShardedPlaced builds a shard set under an explicit placement strategy:
// equal-count contiguous ranges (PlaceRange), contiguous ranges balanced by
// estimated scan cost (PlaceCost), or direction clusters with per-shard
// cones for query-time shard pruning (PlaceCluster).
func NewShardedPlaced(probe *lemp.Matrix, ids []int32, nShards int, opts lemp.Options, kind PlacementKind) (*Sharded, error) {
	n := probe.N()
	if nShards < 1 {
		return nil, fmt.Errorf("server: shard count %d must be positive", nShards)
	}
	if ids != nil && len(ids) != n {
		return nil, fmt.Errorf("server: %d probe ids for %d probes", len(ids), n)
	}
	if nShards > n {
		nShards = n
	}
	if nShards == 0 {
		return nil, fmt.Errorf("server: probe matrix is empty")
	}
	parts, err := partitionProbes(kind, probe, ids, nShards, opts)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		r: probe.R(), n: n, placement: kind, opts: opts,
		shards: make([]*shard, nShards), tc: lemp.NewTuningCache(),
	}
	routeIDs := make([][]int32, nShards)
	for i, part := range parts {
		for _, id := range part.ids {
			if id >= s.nextID {
				s.nextID = id + 1
			}
		}
		ix, err := lemp.NewWithIDs(part.probe, part.ids, opts)
		if err != nil {
			return nil, fmt.Errorf("server: building shard %d: %w", i, err)
		}
		s.shards[i] = &shard{index: ix}
		// The router wants ascending ids; the shard's live-id view is
		// already sorted and deduplicated.
		routeIDs[i] = ix.LiveIDs()
	}
	s.router = newRouter(routeIDs)
	s.costs, s.cones = s.placementMeta(s.indexesLocked())
	return s, nil
}

// indexesLocked returns the current shard index pointers without locking;
// callers must hold s.mu or have exclusive access (construction, updMu
// with no concurrent swap possible).
func (s *Sharded) indexesLocked() []*lemp.Index {
	out := make([]*lemp.Index, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.index
	}
	return out
}

// placementMeta computes the per-shard placement metadata for a shard-index
// set: estimated scan costs always, direction cones only under cluster
// placement (the only strategy that prunes with them).
func (s *Sharded) placementMeta(ixs []*lemp.Index) ([]float64, []*lemp.ShardCone) {
	costs := make([]float64, len(ixs))
	var cones []*lemp.ShardCone
	if s.placement == PlaceCluster {
		cones = make([]*lemp.ShardCone, len(ixs))
	}
	for i, ix := range ixs {
		costs[i] = ix.EstimatedCost()
		if cones != nil {
			cones[i] = ix.DirectionCone()
		}
	}
	return costs, cones
}

// NewShardedFromIndexes assembles a Sharded from pre-built indexes —
// typically loaded from per-shard snapshots — in shard order. The indexes'
// probe ids must be globally unique; they are adopted as the serving id
// space. Empty shards are legal — probe updates can drain a shard, and its
// snapshot must still restore (later adds refill it).
func NewShardedFromIndexes(ixs []*lemp.Index) (*Sharded, error) {
	return NewShardedFromIndexesPlaced(ixs, PlaceRange, nil)
}

// NewShardedFromIndexesPlaced is NewShardedFromIndexes adopting a placement
// strategy and, for cluster placement, optional per-shard direction cones
// (from snapshot PLMT sections). Missing cones — nil slice or nil entries —
// are recomputed from the live probe sets, so pruning works even when the
// snapshots predate placement metadata.
func NewShardedFromIndexesPlaced(ixs []*lemp.Index, kind PlacementKind, cones []*lemp.ShardCone) (*Sharded, error) {
	if len(ixs) == 0 {
		return nil, fmt.Errorf("server: no shard indexes")
	}
	if cones != nil && len(cones) != len(ixs) {
		return nil, fmt.Errorf("server: %d shard cones for %d shards", len(cones), len(ixs))
	}
	s := &Sharded{
		r: ixs[0].R(), placement: kind, opts: ixs[0].Options(),
		shards: make([]*shard, len(ixs)), tc: lemp.NewTuningCache(),
	}
	routeIDs := make([][]int32, len(ixs))
	for i, ix := range ixs {
		if ix.R() != s.r {
			return nil, fmt.Errorf("server: shard %d has dimension %d, shard 0 has %d", i, ix.R(), s.r)
		}
		routeIDs[i] = ix.LiveIDs()
		if next := ix.NextID(); next > s.nextID {
			s.nextID = next
		}
		s.shards[i] = &shard{index: ix}
		s.n += ix.N()
	}
	s.router = newRouter(routeIDs)
	// Cross-shard id collisions surface as overlapping id runs — checked
	// in O(runs) rather than via a transient O(probes) set.
	if a, b, id, overlap := s.router.overlap(); overlap {
		return nil, fmt.Errorf("server: probe id %d appears in shards %d and %d", id, a, b)
	}
	s.costs = make([]float64, len(ixs))
	for i, ix := range ixs {
		s.costs[i] = ix.EstimatedCost()
	}
	if kind == PlaceCluster {
		// Adopt stored cones (kept O(read): they were widened by any updates
		// applied after the original build, so they are at least as wide as
		// required); recompute only the missing ones from the live sets.
		s.cones = make([]*lemp.ShardCone, len(ixs))
		for i, ix := range ixs {
			if cones != nil && cones[i] != nil {
				s.cones[i] = cones[i]
			} else {
				s.cones[i] = ix.DirectionCone()
			}
		}
	}
	return s, nil
}

// NewShardedFromSnapshot rebuilds a Sharded from one LEMPIDX1 snapshot per
// shard (in shard order), skipping bucketization and tuning: startup is
// O(read). Snapshots written by Server.WriteSnapshots restore an identical
// shard layout.
// Placement metadata stored in the snapshots (PLMT sections) is adopted:
// the shard set restores under the strategy it was built with, cones
// included. Snapshots without placement metadata — or carrying a strategy
// this build does not know — restore as range-placed, which serves
// correctly (no pruning, adds by count).
func NewShardedFromSnapshot(snapshots []io.Reader, opts lemp.LoadOptions) (*Sharded, error) {
	ixs := make([]*lemp.Index, len(snapshots))
	cones := make([]*lemp.ShardCone, len(snapshots))
	kind := PlaceRange
	for i, r := range snapshots {
		ix, pl, err := lemp.LoadIndexPlacement(r, opts)
		if err != nil {
			return nil, fmt.Errorf("server: loading shard %d snapshot: %w", i, err)
		}
		ixs[i] = ix
		if pl != nil {
			cones[i] = pl.Cone
			if k, err := ParsePlacement(pl.Kind); err == nil {
				kind = k
			}
		}
	}
	return NewShardedFromIndexesPlaced(ixs, kind, cones)
}

// Indexes returns the current per-shard indexes in shard order. Callers
// must not run retrievals or mutations on them while the Sharded is
// serving.
func (s *Sharded) Indexes() []*lemp.Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*lemp.Index, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.index
	}
	return out
}

// N returns the current number of live probes across all shards.
func (s *Sharded) N() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// R returns the vector dimension.
func (s *Sharded) R() int { return s.r }

// NumShards returns the number of shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// SidecarBytes returns the memory held by the quantized screening
// sidecars across all shards; 0 when screening is off.
func (s *Sharded) SidecarBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, sh := range s.shards {
		total += sh.index.SidecarBytes()
	}
	return total
}

// Epoch returns the current update epoch: 0 at construction, +1 per
// applied update batch.
func (s *Sharded) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Compactions returns the number of shard re-bucketizations triggered by
// update delta mass since construction.
func (s *Sharded) Compactions() uint64 { return s.compactions.Load() }

// Placement returns the placement strategy the shard set was built with.
func (s *Sharded) Placement() PlacementKind { return s.placement }

// ShardsScanned returns the cumulative number of per-shard retrievals
// dispatched across all batches since construction.
func (s *Sharded) ShardsScanned() uint64 { return s.scanned.Load() }

// ShardsPruned returns the cumulative number of per-shard retrievals
// skipped by the cone bound since construction.
func (s *Sharded) ShardsPruned() uint64 { return s.pruned.Load() }

// Replacements returns the number of drift-triggered whole-set
// re-placements since construction.
func (s *Sharded) Replacements() uint64 { return s.replacements.Load() }

// CostSkew reports the current placement balance as the max/mean ratio of
// per-shard estimated scan cost: 1 is perfectly balanced, S means one
// shard carries the whole catalog. Degenerate catalogs (no cost mass)
// report 1.
func (s *Sharded) CostSkew() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.costs) == 0 {
		return 1
	}
	max, sum := 0.0, 0.0
	for _, c := range s.costs {
		if c > max {
			max = c
		}
		sum += c
	}
	if sum <= 0 {
		return 1
	}
	return max * float64(len(s.costs)) / sum
}

// PlacementInfo returns the placement strategy and the current per-shard
// direction cones (nil unless cluster-placed) in one consistent snapshot —
// the metadata per-shard snapshot writing persists (PLMT sections).
func (s *Sharded) PlacementInfo() (PlacementKind, []*lemp.ShardCone) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.placement, s.cones
}

// Drift re-placement trigger (Update): at least driftMinExceptions router
// exceptions and more than driftFraction of the live catalog routed
// outside the contiguous id runs.
const (
	driftMinExceptions = 64
	driftFraction      = 0.25
)

// Rebalance re-places the whole live probe set under the current placement
// strategy into nShards shards (0 or negative keeps the current count),
// rebuilding every shard index and swapping the new set in under one epoch
// increment; in-flight views keep serving the old shard set. Probe ids are
// preserved. An empty catalog is left unchanged. A rebalance that changes
// the shard count must run before the server wires per-shard observability
// (per-shard histograms are sized once).
func (s *Sharded) Rebalance(nShards int) error {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	return s.replaceLocked(nShards)
}

// replaceLocked is Rebalance under an already-held updMu (the drift check
// in Update re-places without re-acquiring it).
func (s *Sharded) replaceLocked(nShards int) error {
	if nShards <= 0 {
		nShards = len(s.shards)
	}
	cur := s.Indexes()
	mats := make([]*lemp.Matrix, len(cur))
	idss := make([][]int32, len(cur))
	total := 0
	for i, ix := range cur {
		mats[i], idss[i] = ix.LiveProbes()
		total += len(idss[i])
	}
	if total == 0 {
		return nil
	}
	if nShards > total {
		nShards = total
	}
	// Gather in ascending global id order so contiguous placements produce
	// compact id runs for the router, whatever the former layout was.
	type ref struct {
		shard, col int
	}
	refs := make([]ref, 0, total)
	for i, ids := range idss {
		for c := range ids {
			refs = append(refs, ref{i, c})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		return idss[refs[a].shard][refs[a].col] < idss[refs[b].shard][refs[b].col]
	})
	probe := lemp.NewMatrix(s.r, total)
	ids := make([]int32, total)
	for j, rf := range refs {
		copy(probe.Vec(j), mats[rf.shard].Vec(rf.col))
		ids[j] = idss[rf.shard][rf.col]
	}
	parts, err := partitionProbes(s.placement, probe, ids, nShards, s.opts)
	if err != nil {
		return err
	}
	newShards := make([]*shard, len(parts))
	newIxs := make([]*lemp.Index, len(parts))
	routeIDs := make([][]int32, len(parts))
	for i, part := range parts {
		ix, err := lemp.NewWithIDs(part.probe, part.ids, s.opts)
		if err != nil {
			return fmt.Errorf("server: rebuilding shard %d: %w", i, err)
		}
		newShards[i] = &shard{index: ix}
		newIxs[i] = ix
		routeIDs[i] = ix.LiveIDs()
	}
	costs, cones := s.placementMeta(newIxs)
	s.mu.Lock()
	s.shards = newShards
	s.router = newRouter(routeIDs)
	s.epoch++
	s.n = total
	s.costs, s.cones = costs, cones
	s.mu.Unlock()
	return nil
}

// CumulativeStats returns the accumulated core stats of every retrieval
// call (all shards, all batches) since construction.
func (s *Sharded) CumulativeStats() lemp.Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.cum
}

// View is an immutable snapshot of the serving state at one epoch: all
// retrievals through it see exactly the probe set of that epoch, even if
// updates are applied concurrently. Views stay valid indefinitely (old
// index versions are retained by the snapshot), but long-held views serve
// increasingly stale data.
type View struct {
	s      *Sharded
	epoch  uint64
	n      int
	shards []*shard // the shard structs the ixs were taken from (their mutexes)
	ixs    []*lemp.Index
	cones  []*lemp.ShardCone // epoch-consistent cone snapshot; nil unless cluster-placed
}

// CurrentView snapshots the serving state at the current epoch.
func (s *Sharded) CurrentView() *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := &View{s: s, epoch: s.epoch, n: s.n, shards: s.shards, ixs: make([]*lemp.Index, len(s.shards)), cones: s.cones}
	for i, sh := range s.shards {
		v.ixs[i] = sh.index
	}
	return v
}

// Epoch returns the update epoch the view was taken at.
func (v *View) Epoch() uint64 { return v.epoch }

// N returns the live probe count at the view's epoch.
func (v *View) N() int { return v.n }

// addShardStats merges one shard's per-call stats into the whole-call
// total, with two deviations from Stats.Add. Shards are distinct indexes,
// so the index-state values — Buckets, IndexedBuckets, the one-time
// PrepTime — sum across them where Add takes the max (across repeated
// calls those sums stay constant or grow monotonically, so Add's max keeps
// them correct at the cumulative level). And every shard saw the same
// logical queries, so Queries takes the max where Add sums (max rather
// than any-one-shard so an erroring shard reporting 0 cannot skew it).
func addShardStats(dst *lemp.Stats, st lemp.Stats) {
	buckets, indexed := dst.Buckets+st.Buckets, dst.IndexedBuckets+st.IndexedBuckets
	prep := dst.PrepTime + st.PrepTime
	queries := dst.Queries
	if st.Queries > queries {
		queries = st.Queries
	}
	dst.Add(st)
	dst.Buckets, dst.IndexedBuckets, dst.PrepTime = buckets, indexed, prep
	dst.Queries = queries
}

// fanOut runs fn on every active shard of the view concurrently and
// accumulates the per-shard stats; it returns the first error encountered.
// active selects the shards to dispatch (nil = all); skipped shards are
// counted as pruned, dispatched ones as scanned. The shard mutex serializes
// retrieval across all index versions of a shard. The context is passed
// down into every shard retrieval, so canceling it — client disconnect,
// request deadline — aborts all shard scans mid-bucket.
//
// When ctx carries a trace (obs.ContextWithSpan), each shard goroutine
// opens its own shard-tagged span and passes it down, so the core drivers
// hang their tune/scan phase spans under the right shard. Per-shard wall
// time — including the wait for the shard mutex, which is exactly the
// serialization skew worth seeing — feeds scanHist[i] when the server has
// wired it.
func (v *View) fanOut(ctx context.Context, active []bool, fn func(ctx context.Context, i int, ix *lemp.Index) (lemp.Stats, error)) (lemp.Stats, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		call  lemp.Stats
		first error
	)
	nAct := len(v.ixs)
	if active != nil {
		nAct = 0
		for _, a := range active {
			if a {
				nAct++
			}
		}
	}
	v.s.scanned.Add(uint64(nAct))
	v.s.pruned.Add(uint64(len(v.ixs) - nAct))
	tr, parent := obs.SpanFrom(ctx)
	wg.Add(nAct)
	for i, ix := range v.ixs {
		if active != nil && !active[i] {
			continue
		}
		go func(i int, ix *lemp.Index) {
			defer wg.Done()
			cctx := ctx
			ref := obs.NoSpan
			if tr != nil {
				ref = tr.StartShard("shard", parent, i)
				cctx = obs.ContextWithSpan(ctx, tr, ref)
			}
			start := time.Now()
			sh := v.shards[i]
			sh.mu.Lock()
			if v.s.testShardStart != nil {
				v.s.testShardStart(cctx, i)
			}
			st, err := fn(cctx, i, ix)
			if v.s.testShardDone != nil {
				v.s.testShardDone(i, err)
			}
			sh.mu.Unlock()
			tr.End(ref)
			if i < len(v.s.scanHist) {
				v.s.scanHist[i].ObserveDuration(time.Since(start))
			}
			mu.Lock()
			addShardStats(&call, st)
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(i, ix)
	}
	wg.Wait()
	v.s.statsMu.Lock()
	v.s.cum.Add(call)
	v.s.statsMu.Unlock()
	if v.s.onCallStats != nil {
		v.s.onCallStats(call)
	}
	return call, first
}

// TopKCtx answers Row-Top-k for a whole query matrix across all shards of
// the view and merges per-shard rows into global top-k rows. Every shard
// retrieval runs under ctx and shares the Sharded's tuning cache, so a
// repeated (k, epoch) pays sample tuning only on its first call.
func (v *View) TopKCtx(ctx context.Context, q *lemp.Matrix, k int) (lemp.TopKRows, lemp.Stats, error) {
	// One spec serves every shard of the call (and validates once).
	spec, err := lemp.NewSpec(lemp.TopK(k), lemp.WithTuningCache(v.s.tc))
	if err != nil {
		return nil, lemp.Stats{}, err
	}
	// Row-Top-k cannot be shard-pruned a priori: the k-th best value is
	// only known after the merge, so a low-bound shard may still hold a
	// true top result. Every shard scans.
	parts := make([]lemp.TopKRows, len(v.ixs))
	st, err := v.fanOut(ctx, nil, func(sctx context.Context, i int, ix *lemp.Index) (lemp.Stats, error) {
		res, err := ix.RetrieveSpec(sctx, q, spec)
		if err != nil {
			return lemp.Stats{}, err
		}
		parts[i] = res.TopK
		return res.Stats, nil
	})
	if err != nil {
		return nil, st, err
	}
	tr, parent := obs.SpanFrom(ctx)
	ref := tr.Start("merge", parent)
	start := time.Now()
	out := lemp.MergeTopK(k, parts...)
	tr.End(ref)
	if v.s.mergeHist != nil {
		v.s.mergeHist.ObserveDuration(time.Since(start))
	}
	return out, st, nil
}

// TopK is TopKCtx with a background context.
func (v *View) TopK(q *lemp.Matrix, k int) (lemp.TopKRows, lemp.Stats, error) {
	return v.TopKCtx(context.Background(), q, k)
}

// pruneSet computes the shard dispatch set for an Above-θ batch under
// cluster placement (nil = scan all shards): a shard is skipped only when
// every query row's cone bound stays below θ, so the dispatch set is the
// union over the coalesced batch and a pruned shard cannot contribute any
// qualifying entry for any row. Results are byte-identical to a full
// fan-out. Row-Top-k never prunes (the per-row cutoff is only known after
// the merge).
func (v *View) pruneSet(q *lemp.Matrix, theta float64) []bool {
	if v.cones == nil || v.s.noPrune {
		return nil
	}
	qn := q.N()
	qlens := make([]float64, qn)
	for j := 0; j < qn; j++ {
		qlens[j] = vecmath.Norm(q.Vec(j))
	}
	active := make([]bool, len(v.ixs))
	anyPruned := false
	for i, c := range v.cones {
		keep := false
		for j := 0; j < qn && !keep; j++ {
			// !(bound < theta) keeps NaN bounds (non-finite queries) on the
			// scan side — only a provably sub-θ shard is skipped.
			if !(coneBound(c, q.Vec(j), qlens[j]) < theta) {
				keep = true
			}
		}
		active[i] = keep
		anyPruned = anyPruned || !keep
	}
	if !anyPruned {
		return nil
	}
	return active
}

// AboveThetaCtx answers Above-θ for a whole query matrix across all shards
// of the view, concatenating per-shard result sets. Entries are returned
// grouped by query in rows (row i holds query i's entries) in canonical
// (Query, Probe) order, the grouping batching and caching work in. Shard
// retrievals run under ctx and share the Sharded's tuning cache.
func (v *View) AboveThetaCtx(ctx context.Context, q *lemp.Matrix, theta float64) ([][]lemp.Entry, lemp.Stats, error) {
	spec, err := lemp.NewSpec(lemp.AboveTheta(theta), lemp.WithTuningCache(v.s.tc))
	if err != nil {
		return nil, lemp.Stats{}, err
	}
	rows := make([][]lemp.Entry, q.N())
	var mu sync.Mutex
	st, err := v.fanOut(ctx, v.pruneSet(q, theta), func(sctx context.Context, _ int, ix *lemp.Index) (lemp.Stats, error) {
		res, err := ix.RetrieveSpec(sctx, q, spec)
		if err != nil {
			return lemp.Stats{}, err
		}
		mu.Lock()
		for _, e := range res.Entries {
			rows[e.Query] = append(rows[e.Query], e)
		}
		mu.Unlock()
		return res.Stats, nil
	})
	if err != nil {
		return nil, st, err
	}
	tr, parent := obs.SpanFrom(ctx)
	ref := tr.Start("merge", parent)
	start := time.Now()
	for _, row := range rows {
		lemp.SortEntries(row)
	}
	tr.End(ref)
	if v.s.mergeHist != nil {
		v.s.mergeHist.ObserveDuration(time.Since(start))
	}
	return rows, st, nil
}

// AboveTheta is AboveThetaCtx with a background context.
func (v *View) AboveTheta(q *lemp.Matrix, theta float64) ([][]lemp.Entry, lemp.Stats, error) {
	return v.AboveThetaCtx(context.Background(), q, theta)
}

// TopK answers Row-Top-k at the current epoch. Callers that must pin
// several operations to one epoch (cache keys, batches) should take a
// CurrentView once and use it throughout.
func (s *Sharded) TopK(q *lemp.Matrix, k int) (lemp.TopKRows, lemp.Stats, error) {
	return s.CurrentView().TopK(q, k)
}

// AboveTheta answers Above-θ at the current epoch.
func (s *Sharded) AboveTheta(q *lemp.Matrix, theta float64) ([][]lemp.Entry, lemp.Stats, error) {
	return s.CurrentView().AboveTheta(q, theta)
}

// TuningCache returns the cache of fitted tuning parameters shared by all
// shard retrievals (introspection and tests).
func (s *Sharded) TuningCache() *lemp.TuningCache { return s.tc }

// UpdateResult reports an applied update batch.
type UpdateResult struct {
	Epoch uint64  // the epoch the batch created
	IDs   []int32 // per-op affected ids (assigned ids for AutoID adds)
	LiveN int     // live probes after the batch
}

// Update applies a batch of probe mutations atomically across all shards:
// ops are routed to their owning shard (adds go to the currently smallest
// shard), each affected shard derives a new index copy-on-write, and all
// new indexes are swapped in under a single epoch increment — a query
// View taken before the swap sees none of the batch, one taken after sees
// all of it. On any validation error (unknown or duplicate id, dimension
// mismatch, non-finite coordinate) nothing is changed.
//
// compactThreshold bounds per-shard delta mass: after applying the batch,
// any shard whose DeltaMass exceeds it is re-bucketized before the swap
// (negative disables compaction). Update calls serialize with each other
// but not with queries: in-flight retrievals keep their views.
func (s *Sharded) Update(ups []lemp.ProbeUpdate, compactThreshold float64) (UpdateResult, error) {
	s.updMu.Lock()
	defer s.updMu.Unlock()

	// Plan: route every op to a shard, tracking in-batch liveness changes
	// in an overlay so ops within the batch compose (add then remove of
	// the same id is legal).
	cur := s.Indexes()
	counts := make([]int, len(cur))
	for i, ix := range cur {
		counts[i] = ix.N()
	}
	overlay := make(map[int32]int) // id → shard, or -1 when removed in-batch
	route := func(id int32) (int, bool) {
		if sh, ok := overlay[id]; ok {
			return sh, sh >= 0
		}
		return s.router.route(id)
	}
	smallest := func() int {
		best := 0
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[best] {
				best = i
			}
		}
		return best
	}
	// Adds are routed by the active placement: nearest cone centroid under
	// cluster placement (keeping shards directionally tight, so pruning
	// stays effective), cheapest shard by estimated cost under cost
	// placement (addCost tracks in-batch growth, the new vector's length
	// approximating its bucket's l_b), smallest by count otherwise.
	s.mu.RLock()
	cones, baseCosts := s.cones, s.costs
	s.mu.RUnlock()
	addCost := make([]float64, len(cur))
	placeAdd := func(vec []float64) int {
		switch s.placement {
		case PlaceCluster:
			best, bestDot := -1, 0.0
			if l := vecmath.Norm(vec); l > 0 {
				for i, c := range cones {
					if c == nil || c.Centroid == nil {
						continue
					}
					if d := vecmath.Dot(vec, c.Centroid) / l; best < 0 || d > bestDot {
						best, bestDot = i, d
					}
				}
			}
			if best >= 0 {
				return best
			}
			return smallest() // zero vector, or no shard has a usable axis
		case PlaceCost:
			best := 0
			for i := 1; i < len(baseCosts); i++ {
				if baseCosts[i]+addCost[i] < baseCosts[best]+addCost[best] {
					best = i
				}
			}
			addCost[best] += vecmath.Norm(vec)
			return best
		default:
			return smallest()
		}
	}
	perShard := make([][]lemp.ProbeUpdate, len(cur))
	nextID := s.nextID
	ids := make([]int32, len(ups))
	for i, up := range ups {
		switch up.Op {
		case lemp.OpAdd:
			id := up.ID
			if id == lemp.AutoID {
				id = nextID
				if id > lemp.MaxProbeID {
					return UpdateResult{}, fmt.Errorf("server: update %d: probe id space exhausted", i)
				}
			} else if id < 0 || id > lemp.MaxProbeID {
				return UpdateResult{}, fmt.Errorf("server: update %d: invalid probe id %d", i, id)
			} else if _, live := route(id); live {
				return UpdateResult{}, fmt.Errorf("server: update %d: probe id %d is already live", i, id)
			}
			if id >= nextID {
				nextID = id + 1
			}
			sh := placeAdd(up.Vec)
			perShard[sh] = append(perShard[sh], lemp.ProbeUpdate{Op: lemp.OpAdd, ID: id, Vec: up.Vec})
			overlay[id] = sh
			counts[sh]++
			ids[i] = id
		case lemp.OpRemove, lemp.OpUpdate:
			sh, live := route(up.ID)
			if !live {
				return UpdateResult{}, fmt.Errorf("server: update %d: probe id %d is not live", i, up.ID)
			}
			perShard[sh] = append(perShard[sh], up)
			if up.Op == lemp.OpRemove {
				overlay[up.ID] = -1
				counts[sh]--
			}
			ids[i] = up.ID
		default:
			return UpdateResult{}, fmt.Errorf("server: update %d: unknown op %d", i, int(up.Op))
		}
	}

	// Derive the new index versions copy-on-write. Nothing is visible yet,
	// so an error from any shard aborts the whole batch atomically.
	newIxs := make([]*lemp.Index, len(cur))
	changed := false
	for i, ops := range perShard {
		if len(ops) == 0 {
			continue
		}
		nix, _, err := cur[i].WithUpdates(ops)
		if err != nil {
			return UpdateResult{}, err
		}
		if compactThreshold >= 0 && nix.MaybeCompact(compactThreshold) {
			s.compactions.Add(1)
		}
		newIxs[i] = nix
		changed = true
	}

	// Refresh placement metadata for the shards the batch touched, still
	// outside the serving lock: costs are recomputed from the new index
	// versions; cones only ever widen (adds and rewrites may fall outside
	// the old cone, removals are left alone — a stale-wide cone costs
	// pruning opportunity, never correctness).
	var newCosts []float64
	var newCones []*lemp.ShardCone
	if changed {
		newCosts = append([]float64(nil), baseCosts...)
		for i, nix := range newIxs {
			if nix != nil {
				newCosts[i] = nix.EstimatedCost()
			}
		}
		if cones != nil {
			newCones = append([]*lemp.ShardCone(nil), cones...)
			for i, ops := range perShard {
				for _, op := range ops {
					if op.Op == lemp.OpAdd || op.Op == lemp.OpUpdate {
						newCones[i] = widenCone(newCones[i], op.Vec)
					}
				}
			}
		}
	}

	// Commit: swap all affected shards under one epoch increment.
	s.mu.Lock()
	if changed {
		for i, nix := range newIxs {
			if nix != nil {
				s.shards[i].index = nix
			}
		}
		s.epoch++
		s.n = 0
		for _, sh := range s.shards {
			s.n += sh.index.N()
		}
		for id, sh := range overlay {
			if sh < 0 {
				s.router.remove(id)
			} else {
				s.router.set(id, sh)
			}
		}
		s.nextID = nextID
		s.costs = newCosts
		if newCones != nil {
			s.cones = newCones
		}
	}
	res := UpdateResult{Epoch: s.epoch, IDs: ids, LiveN: s.n}
	s.mu.Unlock()

	// Drift bound: placement-routed adds land wherever the placement says,
	// which the compact range router records as exceptions. Once the
	// exception map outweighs a fraction of the catalog the id space has
	// drifted far from the placement that built it — re-place the whole
	// set (MaybeCompact-style: amortized against the update volume that
	// caused it). Also restores cone tightness after removals.
	if changed && s.router.exceptions() > driftMinExceptions &&
		float64(s.router.exceptions()) > driftFraction*float64(res.LiveN) {
		if err := s.replaceLocked(len(s.shards)); err == nil {
			s.replacements.Add(1)
		}
	}
	return res, nil
}
