package server

import (
	"math/rand"
	"testing"

	"lemp"
)

func TestRouterRangesAndExceptions(t *testing.T) {
	rt := newRouter([][]int32{{0, 1, 2, 3}, {4, 5, 6}, {10, 11, 20}})
	if got := rt.ranges(); got != 4 {
		t.Fatalf("ranges() = %d, want 4 (three contiguous blocks, one split)", got)
	}
	for id, want := range map[int32]int{0: 0, 3: 0, 4: 1, 6: 1, 10: 2, 11: 2, 20: 2} {
		sh, ok := rt.route(id)
		if !ok || sh != want {
			t.Fatalf("route(%d) = (%d, %v), want (%d, true)", id, sh, ok, want)
		}
	}
	for _, id := range []int32{7, 9, 12, 19, 21, 100} {
		if _, ok := rt.route(id); ok {
			t.Fatalf("route(%d) found a shard for a dead id", id)
		}
	}

	// Removal inside a run tombstones; re-adding to the same shard drops
	// the tombstone instead of accumulating an exception.
	rt.remove(5)
	if _, ok := rt.route(5); ok {
		t.Fatal("removed id still routes")
	}
	if rt.exceptions() != 1 {
		t.Fatalf("exceptions() = %d after one in-run removal, want 1", rt.exceptions())
	}
	rt.set(5, 1)
	if sh, ok := rt.route(5); !ok || sh != 1 {
		t.Fatal("re-added id does not route")
	}
	if rt.exceptions() != 0 {
		t.Fatalf("exceptions() = %d after restoring the run's word, want 0", rt.exceptions())
	}

	// An add outside every run is an exception; removing it again clears it.
	rt.set(50, 2)
	if sh, ok := rt.route(50); !ok || sh != 2 {
		t.Fatal("out-of-run add does not route")
	}
	rt.remove(50)
	if _, ok := rt.route(50); ok {
		t.Fatal("removed out-of-run id still routes")
	}
	if rt.exceptions() != 0 {
		t.Fatalf("exceptions() = %d, want 0", rt.exceptions())
	}
}

func TestRouterOverlapDetection(t *testing.T) {
	rt := newRouter([][]int32{{0, 1, 2}, {2, 3}})
	if _, _, id, overlap := rt.overlap(); !overlap || id != 2 {
		t.Fatalf("overlap() = id %d, %v; want id 2, true", id, overlap)
	}
	if _, _, _, overlap := newRouter([][]int32{{0, 1}, {2, 3}}).overlap(); overlap {
		t.Fatal("disjoint runs reported as overlapping")
	}
}

// TestRouterMemoryRegression is the satellite's guard: a freshly built
// sharded server over n contiguous probes must hold O(shards) routing
// state — not one map entry per live probe — and post-build drift must
// cost one exception per affected id, not more.
func TestRouterMemoryRegression(t *testing.T) {
	const n, shards = 20000, 4
	rng := rand.New(rand.NewSource(3))
	probe := lemp.NewMatrix(4, n)
	for i := 0; i < n; i++ {
		v := probe.Vec(i)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
	}
	sh, err := NewSharded(probe, shards, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.router.ranges(); got != shards {
		t.Fatalf("fresh contiguous build: %d ranges, want exactly %d (one per shard)", got, shards)
	}
	if got := sh.router.exceptions(); got != 0 {
		t.Fatalf("fresh build: %d exceptions, want 0", got)
	}

	// Routing state after updates is bounded by the number of drifted ids,
	// never by n.
	ups := []lemp.ProbeUpdate{
		{Op: lemp.OpRemove, ID: 7},
		{Op: lemp.OpRemove, ID: 9000},
		{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: probe.Vec(0)},
		{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: probe.Vec(1)},
	}
	if _, err := sh.Update(ups, -1); err != nil {
		t.Fatal(err)
	}
	if got := sh.router.ranges(); got != shards {
		t.Fatalf("ranges grew to %d after updates", got)
	}
	if got := sh.router.exceptions(); got > len(ups) {
		t.Fatalf("%d exceptions after %d ops", got, len(ups))
	}

	// The routed queries still answer correctly: drift is addressable.
	if _, ok := sh.router.route(7); ok {
		t.Fatal("removed probe still routes")
	}
	if sharded, ok := sh.router.route(9000); ok {
		t.Fatalf("removed probe still routes to %d", sharded)
	}
}
