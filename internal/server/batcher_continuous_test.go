package server

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherRejectsMalformedSubmission is the batch-poisoning regression
// test: a library-level submission whose data length does not match
// rows*R must fail its own caller alone, at submit time — before the fix,
// the shape was only checked by MatrixFromData after dispatch, so one bad
// submission failed the whole coalesced batch for every innocent
// batch-mate.
func TestBatcherRejectsMalformedSubmission(t *testing.T) {
	sh, q := newTestSharded(t)
	b := NewBatcher(sh, 100*time.Millisecond, 1024, BatchModeWindow)

	const k = 5
	goodDone := make(chan error, 1)
	go func() {
		rows, err := b.TopK(context.Background(), q.Vec(0), 1, k)
		if err == nil && (len(rows) != 1 || len(rows[0]) != k) {
			err = errors.New("good caller got a bad row shape")
		}
		goodDone <- err
	}()
	// Wait until the good caller sits in the forming batch, then offer the
	// malformed submission that would have poisoned it.
	deadline := time.Now().Add(5 * time.Second)
	for b.PendingRows() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("good caller never joined a forming batch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	bad := q.Vec(1)[:sh.R()-1] // one coordinate short
	start := time.Now()
	if _, err := b.TopK(context.Background(), bad, 1, k); err == nil {
		t.Fatal("malformed submission accepted")
	} else if !strings.Contains(err.Error(), "rows of dimension") {
		t.Fatalf("malformed submission error = %v, want a shape error", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("malformed submission waited for the batch instead of failing at submit")
	}
	if err := <-goodDone; err != nil {
		t.Fatalf("innocent batch-mate poisoned: %v", err)
	}
}

// TestBatcherRejectsBadParams pins the NaN-θ orphan-batch fix: θ is part
// of the coalescing key and NaN != NaN, so an admitted NaN-θ request could
// never find its forming batch again — every call would spawn its own
// timer-held batch. Non-finite θ and k < 1 must be rejected with an
// explicit error and leave no forming batch behind.
func TestBatcherRejectsBadParams(t *testing.T) {
	sh, q := newTestSharded(t)
	b := NewBatcher(sh, 10*time.Second, 1024, BatchModeWindow)

	for _, theta := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := b.AboveTheta(context.Background(), q.Vec(0), 1, theta); err == nil {
			t.Errorf("AboveTheta(θ=%v) accepted", theta)
		}
	}
	for _, k := range []int{0, -3} {
		if _, err := b.TopK(context.Background(), q.Vec(0), 1, k); err == nil {
			t.Errorf("TopK(k=%d) accepted", k)
		}
	}
	if n := b.PendingRows(); n != 0 {
		t.Fatalf("rejected requests left %d pending rows", n)
	}
	b.mu.Lock()
	forming := len(b.forming)
	b.mu.Unlock()
	if forming != 0 {
		t.Fatalf("rejected requests left %d orphan forming batches", forming)
	}
}

// TestBatcherContinuousImmediateDispatch checks the low-load half of
// continuous batching: a request arriving while its key has no retrieval
// in flight dispatches immediately instead of waiting out the window.
func TestBatcherContinuousImmediateDispatch(t *testing.T) {
	sh, q := newTestSharded(t)
	b := NewBatcher(sh, 10*time.Second, 1024, BatchModeContinuous)

	start := time.Now()
	rows, err := b.TopK(context.Background(), q.Vec(0), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 5 {
		t.Fatalf("bad shape: %d rows", len(rows))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("idle-key request took %v; continuous mode must not wait the window", elapsed)
	}
}

// TestBatcherContinuousBackToBack checks the loaded half: requests that
// arrive while a retrieval is in flight coalesce, and the forming batch
// fires the moment that retrieval completes — not at the window, not at
// max — so dispatches run back-to-back.
func TestBatcherContinuousBackToBack(t *testing.T) {
	sh, q := newTestSharded(t)
	b := NewBatcher(sh, 10*time.Second, 1024, BatchModeContinuous)

	release := make(chan struct{})
	var dispatches atomic.Int64
	b.onDispatch = func(rows, requests int) {
		if dispatches.Add(1) == 1 {
			<-release // hold the first retrieval so a second batch forms
		}
	}

	firstDone := make(chan error, 1)
	go func() {
		_, err := b.TopK(context.Background(), q.Vec(0), 1, 5)
		firstDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for dispatches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never dispatched")
		}
		time.Sleep(100 * time.Microsecond)
	}

	const joiners = 8
	var wg sync.WaitGroup
	errs := make(chan error, joiners)
	for i := 1; i <= joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.TopK(context.Background(), q.Vec(i), 1, 5); err != nil {
				errs <- err
			}
		}(i)
	}
	// All joiners must coalesce into one forming batch held behind the
	// in-flight retrieval.
	for b.PendingRows() < joiners {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d joiners coalesced behind the in-flight batch", b.PendingRows(), joiners)
		}
		time.Sleep(100 * time.Microsecond)
	}

	start := time.Now()
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("held batch took %v after completion; must fire immediately, not at the window", elapsed)
	}
	if got := dispatches.Load(); got != 2 {
		t.Fatalf("%d dispatches for 1+%d requests, want exactly 2 (immediate + completion-fired)", got, joiners)
	}
}

// TestBatcherSkipsAbandonedWaiters pins the abandoned-waiter scatter fix:
// dispatch must not send a batchResult (with its sliced result rows) into
// the buffered done channel of a waiter whose caller already left — the
// send would pin those rows until the channel is collected, for a reader
// that will never come.
func TestBatcherSkipsAbandonedWaiters(t *testing.T) {
	sh, q := newTestSharded(t)
	b := NewBatcher(sh, 10*time.Second, 3, BatchModeWindow)

	const k = 5
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := b.TopK(ctxA, q.Vec(0), 1, k)
		aDone <- err
	}()
	cDone := make(chan error, 1)
	go func() {
		rows, err := b.TopK(context.Background(), q.Vec(1), 1, k)
		if err == nil && len(rows) != 1 {
			err = errors.New("bad shape")
		}
		cDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.PendingRows() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("callers never joined the forming batch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Grab A's waiter (offset 0 belongs to whichever joined first; find the
	// gone one after cancellation instead of assuming order).
	b.mu.Lock()
	if len(b.forming) != 1 {
		b.mu.Unlock()
		t.Fatalf("%d forming batches, want 1", len(b.forming))
	}
	var fb *formingBatch
	for _, f := range b.forming {
		fb = f
	}
	b.mu.Unlock()

	cancelA()
	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller got %v, want context.Canceled", err)
	}
	b.mu.Lock()
	var abandoned *waiter
	for _, w := range fb.waiters {
		if w.gone {
			abandoned = w
		}
	}
	b.mu.Unlock()
	if abandoned == nil {
		t.Fatal("no waiter marked gone after abandon")
	}

	// A third caller fills the batch to max (3 rows): it fires with the
	// abandoned waiter still in it.
	rows, err := b.TopK(context.Background(), q.Vec(2), 1, k)
	if err != nil || len(rows) != 1 {
		t.Fatalf("filling caller: rows=%d err=%v", len(rows), err)
	}
	if err := <-cDone; err != nil {
		t.Fatalf("surviving batch-mate: %v", err)
	}
	if n := len(abandoned.done); n != 0 {
		t.Fatalf("dispatch sent %d results into an abandoned waiter's channel", n)
	}
}

// TestBatcherContinuousStress interleaves join, abandon, timer-fire and
// completion-fire in continuous mode under the race detector: every caller
// must return (its rows or its context error), no batch may dispatch
// twice, and the batcher must drain to zero pending rows and zero tracked
// keys when the load stops.
func TestBatcherContinuousStress(t *testing.T) {
	sh, q := newTestSharded(t)
	b := NewBatcher(sh, 200*time.Microsecond, 8, BatchModeContinuous)
	var dispatchedRows atomic.Int64
	b.onDispatch = func(rows, _ int) { dispatchedRows.Add(int64(rows)) }

	const goroutines, iters = 16, 25
	var submitted, okRows atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(3) == 0 {
					// A tight deadline: some requests abandon mid-form,
					// some mid-flight, some after completion.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(500))*time.Microsecond)
				}
				k := 2 + rng.Intn(2) // two keys, so batches displace and coexist
				submitted.Add(1)
				rows, err := b.TopK(ctx, q.Vec((g*iters+i)%q.N()), 1, k)
				cancel()
				switch {
				case err == nil:
					if len(rows) != 1 || len(rows[0]) != k {
						t.Errorf("bad shape: %d rows for k=%d", len(rows), k)
					}
					okRows.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesce: abandoned batches and in-flight dispatches finish
	// asynchronously; the batcher must then hold no pending rows, no
	// forming batches and no per-key dispatch state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		forming, keys := len(b.forming), len(b.keys)
		b.mu.Unlock()
		if b.PendingRows() == 0 && forming == 0 && keys == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batcher did not drain: pending=%d forming=%d keys=%d",
				b.PendingRows(), forming, keys)
		}
		time.Sleep(time.Millisecond)
	}

	if d, s, ok := dispatchedRows.Load(), submitted.Load(), okRows.Load(); d > s || d < ok {
		t.Fatalf("dispatched %d rows for %d submissions (%d served): double- or lost dispatch", d, s, ok)
	}
}
