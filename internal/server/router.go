package server

import "sort"

// Probe-id → shard routing. The obvious map[int32]int costs one map entry
// per live probe — at serving scale (millions of probes) that map dwarfed
// every other piece of serving state, and it existed only to route the
// occasional /v1/update op. Shards are built over contiguous id ranges, so
// the live id space is almost always a handful of runs: the router stores
// those runs plus a small exception map absorbing post-build drift (adds
// routed to other shards, removals punching holes in runs). Memory is
// O(ranges + exceptions) instead of O(live probes); lookups are a binary
// search over the ranges after one exception-map probe.
type router struct {
	// Disjoint id runs in increasing start order: run i covers external
	// ids [starts[i], ends[i]) and routes to shard owner[i].
	starts []int32
	ends   []int32
	owner  []int32

	// exc overrides the runs for individual ids: the owning shard for an
	// id added (or re-added) after build, or excRemoved for an id inside a
	// run that has been removed.
	exc map[int32]int32
}

// excRemoved marks an exception-map tombstone: the id lies inside a run
// but is no longer live.
const excRemoved int32 = -1

// newRouter builds a router from each shard's live ids in ascending order
// (shardIDs[i] lists shard i's ids). Contiguous runs compress to one range
// each; a fully shuffled id space degenerates to one range per run of
// consecutive ids, never worse than the old per-id map.
func newRouter(shardIDs [][]int32) *router {
	rt := &router{exc: make(map[int32]int32)}
	for shard, ids := range shardIDs {
		for j := 0; j < len(ids); {
			k := j + 1
			for k < len(ids) && ids[k] == ids[k-1]+1 {
				k++
			}
			rt.starts = append(rt.starts, ids[j])
			rt.ends = append(rt.ends, ids[k-1]+1)
			rt.owner = append(rt.owner, int32(shard))
			j = k
		}
	}
	order := make([]int, len(rt.starts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rt.starts[order[a]] < rt.starts[order[b]] })
	starts := make([]int32, len(order))
	ends := make([]int32, len(order))
	owner := make([]int32, len(order))
	for i, o := range order {
		starts[i], ends[i], owner[i] = rt.starts[o], rt.ends[o], rt.owner[o]
	}
	rt.starts, rt.ends, rt.owner = starts, ends, owner
	return rt
}

// runFor returns the shard owning id per the runs alone (exceptions not
// consulted).
func (rt *router) runFor(id int32) (int, bool) {
	i := sort.Search(len(rt.starts), func(i int) bool { return rt.starts[i] > id })
	if i == 0 {
		return 0, false
	}
	if id < rt.ends[i-1] {
		return int(rt.owner[i-1]), true
	}
	return 0, false
}

// route returns the shard owning the live probe id, or false when the id
// is not live.
func (rt *router) route(id int32) (int, bool) {
	if sh, ok := rt.exc[id]; ok {
		return int(sh), sh != excRemoved
	}
	return rt.runFor(id)
}

// set records id as live on shard. When a run already says exactly that,
// any stale exception is dropped instead (re-adding a removed id restores
// the run's word).
func (rt *router) set(id int32, shard int) {
	if run, ok := rt.runFor(id); ok && run == shard {
		delete(rt.exc, id)
		return
	}
	rt.exc[id] = int32(shard)
}

// remove records id as not live: a tombstone exception when a run covers
// it, otherwise just dropping its exception entry.
func (rt *router) remove(id int32) {
	if _, ok := rt.runFor(id); ok {
		rt.exc[id] = excRemoved
		return
	}
	delete(rt.exc, id)
}

// overlap reports the first pair of overlapping runs — possible only when
// two shards claim the same id — as (shard a, shard b, offending id, true).
func (rt *router) overlap() (int, int, int32, bool) {
	for i := 1; i < len(rt.starts); i++ {
		if rt.starts[i] < rt.ends[i-1] {
			return int(rt.owner[i-1]), int(rt.owner[i]), rt.starts[i], true
		}
	}
	return 0, 0, 0, false
}

// ranges reports the number of stored id runs (memory-regression tests).
func (rt *router) ranges() int { return len(rt.starts) }

// exceptions reports the exception-map size (memory-regression tests).
func (rt *router) exceptions() int { return len(rt.exc) }
