package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Lightweight in-process tracing. Every request gets a Trace — a pooled,
// fixed-capacity span tree recorded with two atomics per span — and the
// retention decision is made at the END of the request (tail sampling):
// requests slower than the server's slow-query threshold are always
// retained, fast ones probabilistically. This is the only structure that
// can guarantee a trace for every slow request without paying allocation
// for every fast one: recording is always on and allocation-free; copying
// a span tree to the ring happens only for the retained few.

// MaxSpans bounds one trace's span count. The serving tree is small —
// request → batch wait/retrieve → per-shard scans → tune/scan/merge — so
// 64 covers servers up to ~28 shards; beyond that, spans drop (counted)
// rather than allocate.
const MaxSpans = 64

// SpanRef indexes a span within its trace. NoSpan is the nil reference:
// all recording methods accept and return it gracefully, so call sites
// need no "is tracing on?" branches.
type SpanRef int32

const NoSpan SpanRef = -1

// Span is one timed node of a trace tree. Times are monotonic nanosecond
// offsets from the trace start; Shard is -1 for non-shard spans.
type Span struct {
	Name    string
	Parent  SpanRef
	Shard   int32
	StartNS int64
	EndNS   int64
}

// Trace is a bounded, concurrently appendable span tree. The zero value is
// unusable; obtain traces from a Tracer. A nil *Trace discards all
// recording, so untraced code paths cost one nil check.
type Trace struct {
	id      uint64
	start   time.Time
	n       atomic.Int32
	dropped atomic.Uint32
	spans   [MaxSpans]Span
}

// ID returns the trace id.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// IDString returns the id as 16 hex digits — the X-Lemp-Trace header value.
func (t *Trace) IDString() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%016x", t.id)
}

// Start opens a span under parent and returns its reference. Concurrent
// calls are safe (shard fan-out records from many goroutines); when the
// trace is full the span is dropped and counted.
func (t *Trace) Start(name string, parent SpanRef) SpanRef {
	return t.StartShard(name, parent, -1)
}

// StartShard is Start carrying a shard number.
func (t *Trace) StartShard(name string, parent SpanRef, shard int) SpanRef {
	if t == nil {
		return NoSpan
	}
	i := t.n.Add(1) - 1
	if i >= MaxSpans {
		t.dropped.Add(1)
		return NoSpan
	}
	sp := &t.spans[i]
	sp.Name = name
	sp.Parent = parent
	sp.Shard = int32(shard)
	sp.StartNS = time.Since(t.start).Nanoseconds()
	sp.EndNS = 0
	return SpanRef(i)
}

// End closes the span.
func (t *Trace) End(ref SpanRef) {
	if t == nil || ref < 0 || ref >= MaxSpans {
		return
	}
	t.spans[ref].EndNS = time.Since(t.start).Nanoseconds()
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	return n
}

// Dropped returns the number of spans dropped to the capacity bound.
func (t *Trace) Dropped() uint32 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns the recorded spans. The slice aliases the trace's internal
// storage: read it only while the trace is still owned by the caller
// (before Finish returns it to the pool).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans[:t.Len()]
}

// AdoptSpans copies src's spans [lo, hi) — e.g. the spans a shared batch
// retrieval recorded into the leader's trace — into t under parent.
// Parent references inside the copied range are remapped; references
// outside it (the leader's own ancestors) collapse to parent. Time offsets
// are rebased from src's start to t's. Spans that do not fit are dropped
// and counted.
func (t *Trace) AdoptSpans(src *Trace, lo, hi SpanRef, parent SpanRef) {
	if t == nil || src == nil || lo < 0 || hi > SpanRef(src.Len()) || lo >= hi {
		return
	}
	shift := src.start.Sub(t.start).Nanoseconds()
	refs := make([]SpanRef, hi-lo)
	for i := lo; i < hi; i++ {
		sp := src.spans[i]
		p := parent
		if sp.Parent >= lo && sp.Parent < hi {
			p = refs[sp.Parent-lo]
		}
		j := t.n.Add(1) - 1
		if j >= MaxSpans {
			t.dropped.Add(1)
			refs[i-lo] = parent // children of a dropped span attach to parent
			continue
		}
		dst := &t.spans[j]
		dst.Name = sp.Name
		dst.Parent = p
		dst.Shard = sp.Shard
		dst.StartNS = sp.StartNS + shift
		dst.EndNS = 0
		if sp.EndNS != 0 {
			dst.EndNS = sp.EndNS + shift
		}
		refs[i-lo] = SpanRef(j)
	}
}

// reset prepares a pooled trace for reuse.
func (t *Trace) reset(id uint64) {
	t.id = id
	t.start = time.Now()
	t.n.Store(0)
	t.dropped.Store(0)
}

// spanCtx carries the active trace and the parent span for child spans
// opened further down the stack (shard scans, core tune/scan phases).
type spanCtx struct {
	tr     *Trace
	parent SpanRef
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying (trace, parent) for downstream span
// recording. It allocates (context.WithValue), so callers attach it once
// per request or per shard call, never per candidate.
func ContextWithSpan(ctx context.Context, tr *Trace, parent SpanRef) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, spanCtx{tr: tr, parent: parent})
}

// SpanFrom extracts the active trace and parent span from ctx, or
// (nil, NoSpan) when the request is untraced.
func SpanFrom(ctx context.Context) (*Trace, SpanRef) {
	if ctx == nil {
		return nil, NoSpan
	}
	if sc, ok := ctx.Value(spanCtxKey{}).(spanCtx); ok {
		return sc.tr, sc.parent
	}
	return nil, NoSpan
}

// SpanSnapshot is one span of a retained trace, as served by
// GET /debug/traces.
type SpanSnapshot struct {
	ID         int32  `json:"id"`
	Parent     int32  `json:"parent"`
	Name       string `json:"name"`
	Shard      int32  `json:"shard"` // -1 for non-shard spans
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
}

// TraceSnapshot is a retained trace: the heap copy made only for sampled
// or slow requests.
type TraceSnapshot struct {
	TraceID      string         `json:"trace_id"`
	Start        time.Time      `json:"start"`
	DurationNS   int64          `json:"duration_ns"`
	Duration     string         `json:"duration"`
	Slow         bool           `json:"slow"`
	Kind         string         `json:"kind,omitempty"`
	Rows         int            `json:"rows,omitempty"`
	DroppedSpans uint32         `json:"dropped_spans,omitempty"`
	Spans        []SpanSnapshot `json:"spans"`
}

// TraceMeta is the per-request metadata attached at Finish time.
type TraceMeta struct {
	Kind string // request kind ("topk", "above", "update")
	Rows int    // query rows in the request
	Slow bool   // past the slow-query threshold: always retain
}

// TracerConfig sizes a Tracer.
type TracerConfig struct {
	// SampleRate is the probability a fast (non-slow) request's trace is
	// retained in the ring (0 disables probabilistic retention; slow
	// requests are always retained).
	SampleRate float64
	// RingSize is the retained-trace capacity (default 256).
	RingSize int
}

// Tracer owns the trace pool, the retention (tail-sampling) decision, and
// the bounded ring of retained traces. StartTrace and Finish of an
// unretained trace are allocation-free in steady state.
type Tracer struct {
	sampleBar uint64 // SampleRate scaled to uint64 space
	pool      sync.Pool
	idBase    uint64
	idSeq     atomic.Uint64

	mu   sync.Mutex
	ring []*TraceSnapshot
	next int

	retained atomic.Uint64
	finished atomic.Uint64
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	var bar uint64
	switch {
	case cfg.SampleRate >= 1:
		bar = ^uint64(0)
	case cfg.SampleRate > 0:
		bar = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	t := &Tracer{
		sampleBar: bar,
		idBase:    rand.Uint64(),
		ring:      make([]*TraceSnapshot, 0, cfg.RingSize),
	}
	t.pool.New = func() any { return new(Trace) }
	return t
}

// StartTrace returns a recording trace with a fresh id.
func (tc *Tracer) StartTrace() *Trace {
	if tc == nil {
		return nil
	}
	tr := tc.pool.Get().(*Trace)
	// The id mixes a per-process random base with a sequence number:
	// unique within the process, unguessable enough across restarts to
	// make grep-by-id unambiguous in aggregated logs.
	tr.reset(tc.idBase ^ (tc.idSeq.Add(1) * 0x9e3779b97f4a7c15))
	return tr
}

// Finish ends a trace: retained (slow, or probabilistically sampled)
// traces are snapshotted into the ring; all traces return to the pool.
// Returns whether the trace was retained. The trace must not be used after
// Finish.
func (tc *Tracer) Finish(tr *Trace, meta TraceMeta) bool {
	if tc == nil || tr == nil {
		return false
	}
	tc.finished.Add(1)
	retain := meta.Slow || (tc.sampleBar > 0 && rand.Uint64() < tc.sampleBar)
	if retain {
		tc.keep(tr.snapshot(meta))
		tc.retained.Add(1)
	}
	tc.pool.Put(tr)
	return retain
}

// Release returns a trace to the pool without a retention decision or
// counter updates — for internal scratch traces (like the batch-scoped
// trace a request coalescer records shared retrieval spans into before
// adopting them into each waiter's own trace).
func (tc *Tracer) Release(tr *Trace) {
	if tc == nil || tr == nil {
		return
	}
	tc.pool.Put(tr)
}

// snapshot copies the trace onto the heap for retention.
func (t *Trace) snapshot(meta TraceMeta) *TraceSnapshot {
	spans := t.Spans()
	dur := time.Since(t.start)
	snap := &TraceSnapshot{
		TraceID:      t.IDString(),
		Start:        t.start,
		DurationNS:   dur.Nanoseconds(),
		Duration:     dur.String(),
		Slow:         meta.Slow,
		Kind:         meta.Kind,
		Rows:         meta.Rows,
		DroppedSpans: t.Dropped(),
		Spans:        make([]SpanSnapshot, len(spans)),
	}
	for i, sp := range spans {
		end := sp.EndNS
		if end == 0 {
			end = dur.Nanoseconds() // unclosed span: clamp to trace end
		}
		snap.Spans[i] = SpanSnapshot{
			ID:         int32(i),
			Parent:     int32(sp.Parent),
			Name:       sp.Name,
			Shard:      sp.Shard,
			StartNS:    sp.StartNS,
			DurationNS: end - sp.StartNS,
		}
	}
	return snap
}

func (tc *Tracer) keep(snap *TraceSnapshot) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if len(tc.ring) < cap(tc.ring) {
		tc.ring = append(tc.ring, snap)
		tc.next = len(tc.ring) % cap(tc.ring)
		return
	}
	tc.ring[tc.next] = snap
	tc.next = (tc.next + 1) % len(tc.ring)
}

// Snapshots returns the retained traces, newest first.
func (tc *Tracer) Snapshots() []*TraceSnapshot {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]*TraceSnapshot, 0, len(tc.ring))
	for i := 0; i < len(tc.ring); i++ {
		j := (tc.next - 1 - i + 2*len(tc.ring)) % len(tc.ring)
		if tc.ring[j] != nil {
			out = append(out, tc.ring[j])
		}
	}
	return out
}

// Retained returns the cumulative count of retained traces; Finished the
// cumulative count of finished ones.
func (tc *Tracer) Retained() uint64 {
	if tc == nil {
		return 0
	}
	return tc.retained.Load()
}

func (tc *Tracer) Finished() uint64 {
	if tc == nil {
		return 0
	}
	return tc.finished.Load()
}
