// Package obs is the serving stack's dependency-free observability layer:
// a metrics registry (atomic counters, gauges and fixed-bucket histograms
// with Prometheus text exposition), lightweight in-process tracing (per-
// request span trees captured into a bounded ring with tail sampling), and
// a strict parser for the exposition format so tests and smoke checks can
// verify every emitted family round-trips.
//
// The design constraint throughout is the PR 5 hot-path contract: recording
// an observation — Counter.Add, Gauge.Set, Histogram.Observe, Trace.Start/
// End — must not allocate. All hot-path state is pre-sized at registration
// time (children of labeled families, histogram bucket arrays, pooled span
// arrays); the expensive work (formatting, sorting, snapshotting) happens
// only at exposition or trace-retention time, off the serving path.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxChildren bounds the label cardinality of one family. Children are
// created by With at wiring time (per shard, per endpoint, per status
// class), never from request data, so hitting this bound is a programming
// error — unbounded label values are the classic way a metrics registry
// becomes a memory leak.
const maxChildren = 1000

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Kind is a metric family's type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// atomicFloat is a float64 with atomic add/set, stored as bits. Adds use a
// CAS loop: contention on one counter is a handful of retries, never a
// lock or an allocation.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from a Registry. All methods are safe for concurrent use
// and nil-safe (a nil Counter discards observations), so instrumented code
// paths need no "is observability wired?" branches.
type Counter struct {
	v  atomicFloat
	fn func() float64 // func-backed counter (read at exposition)
}

// Add increases the counter by d. Negative deltas are ignored — a counter
// must never go down, and silently corrupting rate() math is worse than
// dropping a buggy observation.
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 || c.fn != nil {
		return
	}
	c.v.Add(d)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration adds d in seconds (the Prometheus base unit for time).
func (c *Counter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the current value.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Nil-safe like Counter.
type Gauge struct {
	v  atomicFloat
	fn func() float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.fn != nil {
		return
	}
	g.v.Set(v)
}

// Add shifts the gauge by d (negative allowed).
func (g *Gauge) Add(d float64) {
	if g == nil || g.fn != nil {
		return
	}
	g.v.Add(d)
}

// Inc adds 1. Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// Histogram counts observations into fixed upper-bound buckets (le
// semantics: an observation lands in the first bucket whose bound is >= the
// value, exactly Prometheus's `le`). Bounds are fixed at registration, so
// Observe is a short linear scan plus two atomic adds — no allocation, no
// lock. Nil-safe like Counter.
type Histogram struct {
	bounds []float64       // strictly increasing, finite
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomicFloat
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBuckets returns n strictly increasing bucket bounds starting at start
// and growing by factor: the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets spans 100µs to ~3.3s doubling — wide enough for both a
// sub-millisecond cache hit and a pathological cold scan, in seconds.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 16) }

// child is one (label values → metric) entry of a family.
type child struct {
	labelVals []string
	ctr       *Counter
	gauge     *Gauge
	hist      *Histogram
}

// Family is one named metric with a fixed label-key set.
type Family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	buckets   []float64

	mu       sync.Mutex
	children map[string]*child
	order    []*child
}

// CounterVec, GaugeVec and HistogramVec hand out per-label-value children
// of a family. With is meant for wiring time (startup, shard construction):
// it takes the family lock and may allocate; hold on to the returned handle
// for hot-path observation.
type CounterVec struct{ fam *Family }
type GaugeVec struct{ fam *Family }
type HistogramVec struct{ fam *Family }

func (v *CounterVec) With(labelVals ...string) *Counter {
	return v.fam.child(labelVals).ctr
}

func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return v.fam.child(labelVals).gauge
}

func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return v.fam.child(labelVals).hist
}

// child returns (creating if needed) the family's child for the label
// values.
func (f *Family) child(labelVals []string) *child {
	if len(labelVals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labelKeys), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	if len(f.children) >= maxChildren {
		panic(fmt.Sprintf("obs: metric %s exceeds %d label combinations; label values must be bounded", f.name, maxChildren))
	}
	c := &child{labelVals: append([]string(nil), labelVals...)}
	switch f.kind {
	case KindCounter:
		c.ctr = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		c.hist = h
	}
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent for an identical shape and
// panics on a conflicting one (same name, different kind/labels/buckets):
// metric names are code-owned, so a conflict is always a bug worth failing
// loudly on.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

func (r *Registry) register(name, help string, kind Kind, labelKeys []string, buckets []float64) *Family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, k := range labelKeys {
		if !labelNameRE.MatchString(k) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, k))
		}
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %s needs at least one bucket", name))
		}
		for i, b := range buckets {
			if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= buckets[i-1]) {
				panic(fmt.Sprintf("obs: histogram %s buckets must be finite and strictly increasing", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !equalStrings(f.labelKeys, labelKeys) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &Family{
		name:      name,
		help:      help,
		kind:      kind,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   append([]float64(nil), buckets...),
		children:  make(map[string]*child),
	}
	r.byName[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).child(nil).ctr
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, KindCounter, labelKeys, nil)}
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time. fn must be monotonic (it typically reads an existing atomic
// counter, e.g. cache hit totals) and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindCounter, nil, nil)
	f.child(nil).ctr.fn = fn
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).child(nil).gauge
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, KindGauge, labelKeys, nil)}
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.child(nil).gauge.fn = fn
}

// Histogram registers (or returns) an unlabeled histogram with the given
// upper bounds (an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, buckets).child(nil).hist
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labelKeys, buckets)}
}

// WritePrometheus renders every registered family in the text exposition
// format (families and children in deterministic sorted order, so scrapes
// diff cleanly).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*Family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *Family) write(b *strings.Builder) {
	f.mu.Lock()
	children := append([]*child(nil), f.order...)
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return lessStrings(children[i].labelVals, children[j].labelVals)
	})

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case KindCounter:
			writeSample(b, f.name, f.labelKeys, c.labelVals, "", "", c.ctr.Value())
		case KindGauge:
			writeSample(b, f.name, f.labelKeys, c.labelVals, "", "", c.gauge.Value())
		case KindHistogram:
			h := c.hist
			cum := uint64(0)
			for i, ub := range h.bounds {
				cum += h.counts[i].Load()
				writeSample(b, f.name+"_bucket", f.labelKeys, c.labelVals, "le", formatFloat(ub), float64(cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			writeSample(b, f.name+"_bucket", f.labelKeys, c.labelVals, "le", "+Inf", float64(cum))
			writeSample(b, f.name+"_sum", f.labelKeys, c.labelVals, "", "", h.sum.Load())
			writeSample(b, f.name+"_count", f.labelKeys, c.labelVals, "", "", float64(cum))
		}
	}
}

// writeSample emits one `name{labels} value` line; extraKey/extraVal append
// a synthetic label (`le` for histogram buckets).
func writeSample(b *strings.Builder, name string, keys, vals []string, extraKey, extraVal string, value float64) {
	b.WriteString(name)
	if len(keys) > 0 || extraKey != "" {
		b.WriteByte('{')
		first := true
		for i, k := range keys {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(k)
			b.WriteString(`="`)
			escapeLabel(b, vals[i])
			b.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
}

func escapeLabel(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
