package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A strict parser for the Prometheus text exposition format (the subset
// WritePrometheus emits, which is the subset every scraper understands).
// It exists so the repo can verify its own /metrics output structurally —
// every family parses, TYPE precedes samples, no duplicate families or
// samples, histogram buckets are cumulative and +Inf-terminated — both in
// unit tests and in the CI metrics-smoke step (cmd promcheck).

// ParsedSample is one exposition line: full sample name (which may carry a
// _bucket/_sum/_count suffix), its labels, and the value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family with its metadata and samples.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// LabelCardinality returns the number of distinct label sets in the family
// (histogram bucket `le` labels excluded), the quantity that must stay
// bounded for a registry not to be a memory leak.
func (f *ParsedFamily) LabelCardinality() int {
	seen := make(map[string]struct{})
	for _, s := range f.Samples {
		seen[labelKeyExcept(s.Labels, "le")] = struct{}{}
	}
	return len(seen)
}

// ParseExposition parses and validates text exposition format. It returns
// one ParsedFamily per declared family and fails on: samples without a
// preceding TYPE, duplicate TYPE declarations, duplicate samples, malformed
// names/labels/values, and histograms whose buckets are non-cumulative,
// missing +Inf, or whose _count disagrees with the +Inf bucket.
func ParseExposition(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	seenSamples := make(map[string]struct{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, err := familyFor(fams, s.Name)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		dupKey := s.Name + "\x00" + labelKeyExcept(s.Labels, "")
		if _, dup := seenSamples[dupKey]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, s.Name)
		}
		seenSamples[dupKey] = struct{}{}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return fams, nil
}

func parseComment(line string, fams map[string]*ParsedFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !metricNameRE.MatchString(name) {
		return fmt.Errorf("invalid metric name %q in %s", name, fields[1])
	}
	fam := fams[name]
	if fam == nil {
		fam = &ParsedFamily{Name: name}
		fams[name] = fam
	}
	if fields[1] == "HELP" {
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
		return nil
	}
	if fam.Type != "" {
		return fmt.Errorf("duplicate TYPE for %s", name)
	}
	if len(fam.Samples) > 0 {
		return fmt.Errorf("TYPE for %s after its samples", name)
	}
	if len(fields) != 4 {
		return fmt.Errorf("TYPE line for %s missing a type", name)
	}
	switch fields[3] {
	case "counter", "gauge", "histogram", "summary", "untyped":
		fam.Type = fields[3]
	default:
		return fmt.Errorf("unknown type %q for %s", fields[3], name)
	}
	return nil
}

// familyFor resolves a sample name to its declared family, allowing the
// histogram suffixes only on histogram families.
func familyFor(fams map[string]*ParsedFamily, sample string) (*ParsedFamily, error) {
	if fam, ok := fams[sample]; ok && fam.Type != "" {
		if fam.Type == "histogram" {
			return nil, fmt.Errorf("sample %s: histograms expose only _bucket/_sum/_count", sample)
		}
		return fam, nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if fam, ok2 := fams[base]; ok2 && fam.Type == "histogram" {
			return fam, nil
		}
	}
	return nil, fmt.Errorf("sample %s has no preceding TYPE declaration", sample)
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !metricNameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp is legal in the format; we accept and drop it.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a `{k="v",...}` block (handling \\, \" and \n
// escapes) and returns the remainder of the line.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		j := strings.IndexByte(in[i:], '=')
		if j < 0 {
			return nil, "", fmt.Errorf("malformed labels %q", in)
		}
		key := in[i : i+j]
		if !labelNameRE.MatchString(key) && key != "le" {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		i += j + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("dangling escape in %q", in)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("unknown escape \\%c in %q", in[i+1], in)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
	}
}

// validateHistogram checks each label set's bucket series: parseable le
// values, cumulative non-decreasing counts, a terminal +Inf bucket, and a
// _count sample that matches it.
func validateHistogram(fam *ParsedFamily) error {
	type series struct {
		les    []float64
		counts map[float64]float64
		count  *float64
		sum    bool
	}
	groups := make(map[string]*series)
	group := func(labels map[string]string) *series {
		k := labelKeyExcept(labels, "le")
		g := groups[k]
		if g == nil {
			g = &series{counts: make(map[float64]float64)}
			groups[k] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("bad le %q", leStr)
			}
			g := group(s.Labels)
			g.les = append(g.les, le)
			g.counts[le] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			g := group(s.Labels)
			v := s.Value
			g.count = &v
		case strings.HasSuffix(s.Name, "_sum"):
			group(s.Labels).sum = true
		}
	}
	for _, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("label set without buckets")
		}
		sort.Float64s(g.les)
		if !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("missing +Inf bucket")
		}
		prev := -1.0
		for _, le := range g.les {
			c := g.counts[le]
			if c < prev {
				return fmt.Errorf("non-cumulative buckets (le=%v count %v < %v)", le, c, prev)
			}
			prev = c
		}
		if g.count == nil || !g.sum {
			return fmt.Errorf("missing _count or _sum")
		}
		if *g.count != g.counts[math.Inf(1)] {
			return fmt.Errorf("_count %v disagrees with +Inf bucket %v", *g.count, g.counts[math.Inf(1)])
		}
	}
	return nil
}

// labelKeyExcept serializes labels (sorted) into a map key, skipping one
// label name (pass "" to keep all).
func labelKeyExcept(labels map[string]string, except string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if except != "" && k == except {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\x01')
		b.WriteString(labels[k])
		b.WriteByte('\x02')
	}
	return b.String()
}
