package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Add(2)
	c.Inc()
	c.Add(-5) // counters never go down; negative deltas are dropped
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	c.AddDuration(500 * time.Millisecond)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after AddDuration = %v, want 3.5", got)
	}

	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-3)
	g.Dec()
	g.Inc()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}

	// Nil handles discard silently: instrumented code paths need no
	// "is observability wired?" branches.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Add(1)
	nc.Inc()
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
}

func TestFuncBackedMetrics(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.CounterFunc("cf_total", "help", func() float64 { return v })
	r.GaugeFunc("gf", "help", func() float64 { return -v })
	v = 42
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cf_total 42\n") {
		t.Fatalf("func counter not read at exposition time:\n%s", out)
	}
	if !strings.Contains(out, "gf -42\n") {
		t.Fatalf("func gauge not read at exposition time:\n%s", out)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation equal
// to a bound lands in that bound's bucket (v <= le), one just above it in
// the next, and one past the last bound in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 4})
	for _, v := range []float64{1.0, 1.5, 4.0, 5.0} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 11.5 {
		t.Fatalf("sum = %v, want 11.5", h.Sum())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, b.String())
	}
	want := map[string]float64{"1": 1, "2": 2, "4": 3, "+Inf": 4} // cumulative
	got := make(map[string]float64)
	for _, s := range fams["h"].Samples {
		if s.Name == "h_bucket" {
			got[s.Labels["le"]] = s.Value
		}
	}
	for le, w := range want {
		if got[le] != w {
			t.Errorf("bucket le=%s = %v, want %v (all: %v)", le, got[le], w, got)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	lat := LatencyBuckets()
	if lat[0] != 100e-6 || len(lat) != 16 {
		t.Fatalf("LatencyBuckets = %v", lat)
	}
}

// TestExpositionRoundTrip renders a registry with every metric kind —
// including labeled families and label values that need escaping — and
// feeds the output back through the strict parser.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "a plain counter").Add(3)
	cv := r.CounterVec("labeled_total", "by endpoint and status", "endpoint", "status")
	cv.With("topk", "200").Add(7)
	cv.With("topk", "400").Inc()
	cv.With("above", "200").Add(2)
	gv := r.GaugeVec("queue", `weird "values\` /* escape torture */, "q")
	gv.With(`a"b\c` + "\nd").Set(5)
	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.001, 0.01}, "shard")
	hv.With("0").Observe(0.0005)
	hv.With("1").Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, out)
	}

	if f := fams["plain_total"]; f == nil || f.Type != "counter" || f.Help != "a plain counter" {
		t.Fatalf("plain_total family wrong: %+v", f)
	}
	lf := fams["labeled_total"]
	if lf == nil || lf.LabelCardinality() != 3 {
		t.Fatalf("labeled_total cardinality = %d, want 3", lf.LabelCardinality())
	}
	found := false
	for _, s := range lf.Samples {
		if s.Labels["endpoint"] == "topk" && s.Labels["status"] == "200" {
			found = true
			if s.Value != 7 {
				t.Fatalf("labeled sample = %v, want 7", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("labeled sample {endpoint=topk,status=200} missing")
	}
	qf := fams["queue"]
	if qf == nil || len(qf.Samples) != 1 {
		t.Fatalf("queue family wrong: %+v", qf)
	}
	if got := qf.Samples[0].Labels["q"]; got != `a"b\c`+"\nd" {
		t.Fatalf("escaped label round-tripped to %q", got)
	}
	hf := fams["lat_seconds"]
	if hf == nil || hf.Type != "histogram" || hf.LabelCardinality() != 2 {
		t.Fatalf("lat_seconds family wrong: %+v", hf)
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	if a != b {
		t.Fatal("re-registering the same shape must return the same metric")
	}
	mustPanic(t, "kind conflict", func() { r.Gauge("x_total", "h") })
	mustPanic(t, "label conflict", func() { r.CounterVec("x_total", "h", "l") })
	mustPanic(t, "bad name", func() { r.Counter("bad name", "h") })
	mustPanic(t, "bad label", func() { r.CounterVec("y_total", "h", "0bad") })
	mustPanic(t, "empty buckets", func() { r.Histogram("h1", "h", nil) })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h2", "h", []float64{2, 1}) })
	mustPanic(t, "non-finite bucket", func() { r.Histogram("h3", "h", []float64{1, math.Inf(1)}) })
	v := r.CounterVec("vec_total", "h", "a")
	mustPanic(t, "label arity", func() { v.With("x", "y") })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// TestParseExpositionRejects pins the validations the CI smoke check relies
// on: each malformed input must fail to parse.
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan 1\n",
		"duplicate TYPE":      "# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate sample":    "# TYPE a counter\na 1\na 2\n",
		"bad value":           "# TYPE a counter\na x\n",
		"bare histogram sample": "# TYPE h histogram\n" +
			"h 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count disagrees": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	// And a valid document with a timestamp (legal, dropped) must pass.
	ok := "# HELP a help text\n# TYPE a counter\na{l=\"v\"} 1 1700000000000\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

// TestObserveDoesNotAllocate is the hot-path contract: recording an
// observation on any pre-registered handle performs zero allocations.
func TestObserveDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", LatencyBuckets())
	child := r.CounterVec("v_total", "h", "shard").With("3")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.AddDuration(time.Microsecond)
		g.Set(4)
		g.Add(-1)
		h.Observe(0.0042)
		child.Inc()
	}); n != 0 {
		t.Fatalf("observation allocates %.1f times per run, want 0", n)
	}
}

// TestConcurrentObservation hammers every metric kind from many goroutines
// while scraping concurrently; run under -race this is the data-race proof,
// and the final counts check that no observation was lost.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", []float64{1, 10, 100})
	vec := r.CounterVec("v_total", "h", "w")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := vec.With("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
				child.Inc()
			}
		}(w)
	}
	// Scrape concurrently with the writers; every snapshot must parse.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-flight exposition does not parse: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	want := float64(workers * perWorker)
	if c.Value() != want {
		t.Errorf("counter = %v, want %v", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %v, want %v", g.Value(), want)
	}
	if h.Count() != uint64(want) {
		t.Errorf("histogram count = %v, want %v", h.Count(), want)
	}
	if got := vec.With("shared").Value(); got != want {
		t.Errorf("vec child = %v, want %v", got, want)
	}
}
