package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleRate: 1, RingSize: 8})
	tr := tc.StartTrace()
	if tr.ID() == 0 || len(tr.IDString()) != 16 {
		t.Fatalf("trace id = %d (%q)", tr.ID(), tr.IDString())
	}
	root := tr.Start("topk", NoSpan)
	batch := tr.Start("batch.wait", root)
	tr.End(batch)
	s0 := tr.StartShard("shard", root, 0)
	s1 := tr.StartShard("shard", root, 1)
	tr.End(s0)
	tr.End(s1)
	tr.End(root)
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}

	id := tr.IDString()
	if !tc.Finish(tr, TraceMeta{Kind: "topk", Rows: 3, Slow: false}) {
		t.Fatal("SampleRate 1 must retain every trace")
	}
	snaps := tc.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	snap := snaps[0]
	if snap.TraceID != id || snap.Kind != "topk" || snap.Rows != 3 || snap.Slow {
		t.Fatalf("snapshot meta wrong: %+v", snap)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("snapshot spans = %d, want 4", len(snap.Spans))
	}
	if snap.Spans[0].Name != "topk" || snap.Spans[0].Parent != int32(NoSpan) {
		t.Fatalf("root span wrong: %+v", snap.Spans[0])
	}
	shards := map[int32]bool{}
	for _, sp := range snap.Spans[1:] {
		if sp.Parent != 0 {
			t.Fatalf("span %q parent = %d, want 0", sp.Name, sp.Parent)
		}
		if sp.Name == "shard" {
			shards[sp.Shard] = true
		}
	}
	if !shards[0] || !shards[1] {
		t.Fatalf("shard spans missing: %v", shards)
	}
}

func TestTailSampling(t *testing.T) {
	// Rate 0: fast traces are never retained, slow ones always.
	tc := NewTracer(TracerConfig{SampleRate: 0, RingSize: 8})
	for i := 0; i < 50; i++ {
		tr := tc.StartTrace()
		tr.End(tr.Start("req", NoSpan))
		if tc.Finish(tr, TraceMeta{Kind: "topk"}) {
			t.Fatal("rate 0 retained a fast trace")
		}
	}
	tr := tc.StartTrace()
	tr.End(tr.Start("req", NoSpan))
	if !tc.Finish(tr, TraceMeta{Kind: "topk", Slow: true}) {
		t.Fatal("slow trace must always be retained")
	}
	if tc.Finished() != 51 || tc.Retained() != 1 {
		t.Fatalf("finished/retained = %d/%d, want 51/1", tc.Finished(), tc.Retained())
	}
	snaps := tc.Snapshots()
	if len(snaps) != 1 || !snaps[0].Slow {
		t.Fatalf("snapshots = %+v", snaps)
	}
}

func TestRingEvictionNewestFirst(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleRate: 1, RingSize: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		tr := tc.StartTrace()
		ids = append(ids, tr.IDString())
		tc.Finish(tr, TraceMeta{})
	}
	snaps := tc.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("ring holds %d, want 2", len(snaps))
	}
	if snaps[0].TraceID != ids[2] || snaps[1].TraceID != ids[1] {
		t.Fatalf("ring order = [%s %s], want newest first [%s %s]",
			snaps[0].TraceID, snaps[1].TraceID, ids[2], ids[1])
	}
}

func TestTraceCapacityDrops(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleRate: 1, RingSize: 2})
	tr := tc.StartTrace()
	root := tr.Start("req", NoSpan)
	for i := 0; i < MaxSpans+10; i++ {
		tr.Start("extra", root)
	}
	if tr.Len() != MaxSpans {
		t.Fatalf("len = %d, want %d", tr.Len(), MaxSpans)
	}
	if tr.Dropped() != 11 {
		t.Fatalf("dropped = %d, want 11", tr.Dropped())
	}
	tc.Finish(tr, TraceMeta{})
	if got := tc.Snapshots()[0].DroppedSpans; got != 11 {
		t.Fatalf("snapshot dropped = %d, want 11", got)
	}
	// A pooled trace must come back clean.
	tr2 := tc.StartTrace()
	if tr2.Len() != 0 || tr2.Dropped() != 0 {
		t.Fatalf("reused trace not reset: len=%d dropped=%d", tr2.Len(), tr2.Dropped())
	}
	tc.Release(tr2)
}

func TestAdoptSpans(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleRate: 1, RingSize: 2})
	// The batch-coalescing shape: a scratch trace records the shared
	// retrieval, then each waiter adopts those spans under its own span.
	scratch := tc.StartTrace()
	ret := scratch.Start("retrieve", NoSpan)
	sh := scratch.StartShard("shard", ret, 2)
	scratch.End(sh)
	scratch.End(ret)

	dst := tc.StartTrace()
	root := dst.Start("topk", NoSpan)
	wait := dst.Start("batch.retrieve", root)
	dst.AdoptSpans(scratch, 0, SpanRef(scratch.Len()), wait)
	dst.End(wait)
	dst.End(root)
	tc.Release(scratch)

	if dst.Len() != 4 {
		t.Fatalf("len = %d, want 4", dst.Len())
	}
	sp := dst.Spans()
	// Adopted root reparents onto `wait`; intra-range parents are remapped.
	if sp[2].Name != "retrieve" || sp[2].Parent != wait {
		t.Fatalf("adopted retrieve span: %+v", sp[2])
	}
	if sp[3].Name != "shard" || sp[3].Parent != SpanRef(2) || sp[3].Shard != 2 {
		t.Fatalf("adopted shard span: %+v", sp[3])
	}
	if sp[3].EndNS == 0 {
		t.Fatal("adopted closed span lost its end time")
	}

	// Degenerate calls are no-ops.
	dst.AdoptSpans(nil, 0, 1, root)
	dst.AdoptSpans(scratch, 3, 2, root)
	var nilTrace *Trace
	nilTrace.AdoptSpans(dst, 0, 1, NoSpan)
	if dst.Len() != 4 {
		t.Fatalf("degenerate AdoptSpans changed the trace: len = %d", dst.Len())
	}
	tc.Finish(dst, TraceMeta{})
}

func TestSpanContext(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleRate: 1, RingSize: 2})
	tr := tc.StartTrace()
	root := tr.Start("req", NoSpan)
	ctx := ContextWithSpan(context.Background(), tr, root)
	gotTr, gotParent := SpanFrom(ctx)
	if gotTr != tr || gotParent != root {
		t.Fatalf("SpanFrom = (%p, %d), want (%p, %d)", gotTr, gotParent, tr, root)
	}
	if gotTr, gotParent := SpanFrom(context.Background()); gotTr != nil || gotParent != NoSpan {
		t.Fatalf("empty ctx: (%p, %d)", gotTr, gotParent)
	}
	if gotTr, gotParent := SpanFrom(nil); gotTr != nil || gotParent != NoSpan {
		t.Fatalf("nil ctx: (%p, %d)", gotTr, gotParent)
	}
	tc.Finish(tr, TraceMeta{})
}

func TestNilTraceAndTracerAreSafe(t *testing.T) {
	var tr *Trace
	ref := tr.Start("x", NoSpan)
	if ref != NoSpan {
		t.Fatalf("nil trace Start = %d", ref)
	}
	tr.End(ref)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.ID() != 0 || tr.IDString() != "" || tr.Spans() != nil {
		t.Fatal("nil trace accessors must be zero")
	}
	var tc *Tracer
	if tc.StartTrace() != nil || tc.Finish(nil, TraceMeta{}) || tc.Snapshots() != nil {
		t.Fatal("nil tracer must be inert")
	}
	tc.Release(nil)
	if tc.Retained() != 0 || tc.Finished() != 0 {
		t.Fatal("nil tracer counters must be zero")
	}
}

// TestTraceRecordingDoesNotAllocate pins the hot-path contract for tracing:
// starting/ending spans on a live trace, and the full trace lifecycle when
// the trace is NOT retained, allocate nothing in steady state.
func TestTraceRecordingDoesNotAllocate(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleRate: 0, RingSize: 2})
	// Warm the pool so the measured runs only recycle.
	tc.Finish(tc.StartTrace(), TraceMeta{})

	if n := testing.AllocsPerRun(500, func() {
		tr := tc.StartTrace()
		root := tr.Start("req", NoSpan)
		sh := tr.StartShard("shard", root, 0)
		tr.End(sh)
		tr.End(root)
		tc.Finish(tr, TraceMeta{Kind: "topk", Rows: 1})
	}); n > 0 {
		t.Fatalf("unretained trace lifecycle allocates %.1f times per run, want 0", n)
	}
}

// TestConcurrentSpanRecording exercises the shard fan-out shape — many
// goroutines appending spans to one trace — under -race.
func TestConcurrentSpanRecording(t *testing.T) {
	tc := NewTracer(TracerConfig{SampleRate: 1, RingSize: 4})
	tr := tc.StartTrace()
	root := tr.Start("req", NoSpan)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				ref := tr.StartShard("shard", root, g)
				time.Sleep(time.Microsecond)
				tr.End(ref)
			}
		}(g)
	}
	wg.Wait()
	tr.End(root)
	if tr.Len() != 33 {
		t.Fatalf("len = %d, want 33", tr.Len())
	}
	tc.Finish(tr, TraceMeta{})
	snap := tc.Snapshots()[0]
	if len(snap.Spans) != 33 {
		t.Fatalf("snapshot spans = %d, want 33", len(snap.Spans))
	}
	for _, sp := range snap.Spans[1:] {
		if sp.Parent != 0 || sp.DurationNS <= 0 {
			t.Fatalf("concurrent span wrong: %+v", sp)
		}
	}
}
