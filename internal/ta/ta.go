// Package ta implements Fagin et al.'s threshold algorithm (TA) adapted to
// inner products, the paper's standalone TA baseline (§5, §6).
//
// TA arranges the values of each coordinate of the probe vectors in a
// sorted list. Given a query q, it repeatedly selects the list f that
// maximizes q_f·p_f at the list's current frontier (implemented with a
// max-heap, as in the paper), retrieves the probe vector at the frontier,
// immediately computes its full inner product (random access), and advances
// the frontier. Lists with negative query coordinates are scanned
// bottom-to-top. The scan stops when the frontier bound
// Σ_f q_f·p_f(frontier_f) drops below the threshold (Above-θ) or below the
// current k-th best value (Row-Top-k): no unseen vector can beat it.
package ta

import (
	"sort"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// Index holds the per-coordinate sorted lists over a probe matrix.
type Index struct {
	probe *matrix.Matrix
	r     int
	n     int
	// vals[f] and ids[f] are parallel arrays with the f-th coordinate of
	// all probe vectors, sorted by decreasing value.
	vals [][]float64
	ids  [][]int32

	prepTime time.Duration
}

// Stats reports the work done by a TA run.
type Stats struct {
	Queries    int
	Candidates int64 // probe vectors whose full inner product was computed
	Results    int64
	PrepTime   time.Duration
	Time       time.Duration // retrieval wall-clock time
}

// NewIndex builds the sorted lists for the probe matrix (the preprocessing
// the paper times in Table 2).
func NewIndex(p *matrix.Matrix) *Index {
	start := time.Now()
	r, n := p.R(), p.N()
	ix := &Index{probe: p, r: r, n: n, vals: make([][]float64, r), ids: make([][]int32, r)}
	perm := make([]int32, n)
	for f := 0; f < r; f++ {
		vals := make([]float64, n)
		ids := make([]int32, n)
		for j := 0; j < n; j++ {
			perm[j] = int32(j)
		}
		sort.Slice(perm, func(a, b int) bool {
			return p.Vec(int(perm[a]))[f] > p.Vec(int(perm[b]))[f]
		})
		for j, id := range perm {
			ids[j] = id
			vals[j] = p.Vec(int(id))[f]
		}
		ix.vals[f] = vals
		ix.ids[f] = ids
	}
	ix.prepTime = time.Since(start)
	return ix
}

// PrepTime returns the wall-clock time spent building the sorted lists.
func (ix *Index) PrepTime() time.Duration { return ix.prepTime }

// frontierHeap is a max-heap of per-list frontier contributions q_f·p_f.
type frontierHeap struct {
	list []frontier
}

type frontier struct {
	contrib float64
	coord   int32
}

func (h *frontierHeap) push(f frontier) {
	h.list = append(h.list, f)
	i := len(h.list) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.list[parent].contrib >= h.list[i].contrib {
			break
		}
		h.list[parent], h.list[i] = h.list[i], h.list[parent]
		i = parent
	}
}

func (h *frontierHeap) pop() frontier {
	top := h.list[0]
	last := len(h.list) - 1
	h.list[0] = h.list[last]
	h.list = h.list[:last]
	i, n := 0, len(h.list)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.list[l].contrib > h.list[largest].contrib {
			largest = l
		}
		if r < n && h.list[r].contrib > h.list[largest].contrib {
			largest = r
		}
		if largest == i {
			break
		}
		h.list[i], h.list[largest] = h.list[largest], h.list[i]
		i = largest
	}
	return top
}

// scanState tracks one query's progress over the sorted lists.
type scanState struct {
	ix   *Index
	q    []float64
	pos  []int // frontier position per coordinate: next row to read
	heap frontierHeap
	ub   float64 // sum of frontier contributions of all active lists
	seen []int32 // stamp array: query serial that last saw each probe
	mark int32
}

func newScanState(ix *Index) *scanState {
	return &scanState{ix: ix, pos: make([]int, ix.r), seen: make([]int32, ix.n)}
}

// start initializes the state for query q. It returns false if no list is
// active (zero query or empty probe matrix).
func (s *scanState) start(q []float64) bool {
	s.q = q
	s.mark++
	s.heap.list = s.heap.list[:0]
	s.ub = 0
	if s.ix.n == 0 {
		return false
	}
	active := false
	for f := 0; f < s.ix.r; f++ {
		if q[f] == 0 {
			continue // contributes 0 at every frontier; never scan
		}
		if q[f] > 0 {
			s.pos[f] = 0 // top-down
		} else {
			s.pos[f] = s.ix.n - 1 // bottom-up
		}
		c := q[f] * s.ix.vals[f][s.pos[f]]
		s.heap.push(frontier{contrib: c, coord: int32(f)})
		s.ub += c
		active = true
	}
	return active
}

// next pops the most promising list, returns the probe id at its frontier
// and whether it was first seen by this query, then advances the frontier.
// done is true when some list is exhausted (every probe vector has been
// seen) and the scan must stop.
func (s *scanState) next() (id int32, fresh, done bool) {
	fr := s.heap.pop()
	f := int(fr.coord)
	id = s.ix.ids[f][s.pos[f]]
	fresh = s.seen[id] != s.mark
	s.seen[id] = s.mark
	if s.q[f] > 0 {
		s.pos[f]++
		if s.pos[f] >= s.ix.n {
			return id, fresh, true
		}
	} else {
		s.pos[f]--
		if s.pos[f] < 0 {
			return id, fresh, true
		}
	}
	c := s.q[f] * s.ix.vals[f][s.pos[f]]
	s.ub += c - fr.contrib
	s.heap.push(frontier{contrib: c, coord: int32(f)})
	return id, fresh, false
}

// AboveTheta emits all entries of QᵀP with value ≥ theta.
func (ix *Index) AboveTheta(q *matrix.Matrix, theta float64, emit retrieval.Sink) Stats {
	start := time.Now()
	st := Stats{Queries: q.N(), PrepTime: ix.prepTime}
	s := newScanState(ix)
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		if !s.start(qi) {
			continue
		}
		for s.ub >= theta {
			id, fresh, done := s.next()
			if fresh {
				st.Candidates++
				v := vecmath.Dot(qi, ix.probe.Vec(int(id)))
				if v >= theta {
					st.Results++
					emit(retrieval.Entry{Query: i, Probe: int(id), Value: v})
				}
			}
			if done {
				break
			}
		}
	}
	st.Time = time.Since(start)
	return st
}

// RowTopK returns the k largest entries of each row of QᵀP.
func (ix *Index) RowTopK(q *matrix.Matrix, k int) (retrieval.TopK, Stats) {
	start := time.Now()
	st := Stats{Queries: q.N(), PrepTime: ix.prepTime}
	out := make(retrieval.TopK, q.N())
	if ix.n == 0 {
		st.Time = time.Since(start)
		return out, st
	}
	kk := k
	if kk > ix.n {
		kk = ix.n
	}
	s := newScanState(ix)
	heap := topk.New(kk)
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		heap.Reset()
		if !s.start(qi) {
			// Zero query: all products are 0; any k probes qualify.
			for j := 0; j < kk; j++ {
				heap.Push(j, 0)
			}
		} else {
			for {
				if thr, ok := heap.Threshold(); ok && s.ub < thr {
					break
				}
				id, fresh, done := s.next()
				if fresh {
					st.Candidates++
					heap.Push(int(id), vecmath.Dot(qi, ix.probe.Vec(int(id))))
				}
				if done {
					break
				}
			}
		}
		items := heap.Items()
		row := make([]retrieval.Entry, len(items))
		for t, it := range items {
			row[t] = retrieval.Entry{Query: i, Probe: it.ID, Value: it.Value}
		}
		st.Results += int64(len(row))
		out[i] = row
	}
	st.Time = time.Since(start)
	return out, st
}
