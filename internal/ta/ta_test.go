package ta

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
)

func genMatrix(rng *rand.Rand, n, r int, sigma float64) *matrix.Matrix {
	m := matrix.New(r, n)
	for i := 0; i < n; i++ {
		v := m.Vec(i)
		var norm2 float64
		for f := range v {
			v[f] = rng.NormFloat64()
			norm2 += v[f] * v[f]
		}
		scale := math.Exp(sigma * rng.NormFloat64())
		if norm2 > 0 {
			scale /= math.Sqrt(norm2)
		}
		for f := range v {
			v[f] *= scale
		}
	}
	return m
}

func safeTheta(q, p *matrix.Matrix, level int) (float64, bool) {
	var vals []float64
	for i := 0; i < q.N(); i++ {
		for j := 0; j < p.N(); j++ {
			vals = append(vals, q.Product(p, i, j))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	for d := 0; d < len(vals); d++ {
		for _, lvl := range []int{level - d, level + d} {
			if lvl < 1 || lvl >= len(vals) || vals[lvl-1] <= 0 {
				continue
			}
			if vals[lvl-1]-vals[lvl] > 1e-7*(1+math.Abs(vals[lvl-1])) {
				return (vals[lvl-1] + vals[lvl]) / 2, true
			}
		}
	}
	return 0, false
}

func TestAboveThetaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		q := genMatrix(rng, 20+rng.Intn(30), 6, 0.8)
		p := genMatrix(rng, 80+rng.Intn(150), 6, 0.8)
		theta, ok := safeTheta(q, p, 30+rng.Intn(100))
		if !ok {
			continue
		}
		var want, got []retrieval.Entry
		naive.AboveTheta(q, p, theta, retrieval.Collect(&want))
		ix := NewIndex(p)
		st := ix.AboveTheta(q, theta, retrieval.Collect(&got))
		if !retrieval.EqualSets(got, want) {
			t.Fatalf("trial %d: TA %d entries, naive %d (θ=%g)", trial, len(got), len(want), theta)
		}
		if st.Candidates < int64(len(want)) {
			t.Errorf("candidates %d < results %d", st.Candidates, len(want))
		}
		if st.Candidates > int64(q.N())*int64(p.N()) {
			t.Errorf("candidates %d exceed m·n", st.Candidates)
		}
	}
}

func TestRowTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, k := range []int{1, 4, 11, 999} {
		q := genMatrix(rng, 25, 7, 1.0)
		p := genMatrix(rng, 140, 7, 1.0)
		want, _ := naive.RowTopK(q, p, k)
		ix := NewIndex(p)
		got, _ := ix.RowTopK(q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d rows", k, len(got))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("k=%d row %d: %d entries, want %d", k, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				gv, wv := got[i][j].Value, want[i][j].Value
				if math.Abs(gv-wv) > 1e-9*(1+math.Abs(wv)) {
					t.Fatalf("k=%d row %d rank %d: %g vs %g", k, i, j, gv, wv)
				}
			}
		}
	}
}

func TestNegativeQueryCoordinatesScanBottomUp(t *testing.T) {
	// A query with all-negative coordinates must still find the best
	// probes (the most negative probe values give the largest products).
	q, _ := matrix.FromVectors([][]float64{{-1, -2}})
	p, _ := matrix.FromVectors([][]float64{{1, 1}, {-1, -1}, {-3, -4}, {0, 0}})
	ix := NewIndex(p)
	got, _ := ix.RowTopK(q, 1)
	if got[0][0].Probe != 2 || got[0][0].Value != 11 {
		t.Fatalf("top-1 = %+v, want probe 2 value 11", got[0][0])
	}
}

func TestZeroQuery(t *testing.T) {
	q, _ := matrix.FromVectors([][]float64{{0, 0}})
	p, _ := matrix.FromVectors([][]float64{{1, 2}, {3, 4}, {5, 6}})
	ix := NewIndex(p)
	var above []retrieval.Entry
	ix.AboveTheta(q, 0.5, retrieval.Collect(&above))
	if len(above) != 0 {
		t.Errorf("zero query returned %d above-θ entries", len(above))
	}
	top, _ := ix.RowTopK(q, 2)
	if len(top[0]) != 2 {
		t.Fatalf("zero query top-k row: %v", top[0])
	}
	for _, e := range top[0] {
		if e.Value != 0 {
			t.Errorf("zero query product %g", e.Value)
		}
	}
}

func TestEmptyProbe(t *testing.T) {
	q, _ := matrix.FromVectors([][]float64{{1, 2}})
	ix := NewIndex(matrix.New(2, 0))
	var above []retrieval.Entry
	ix.AboveTheta(q, 0.5, retrieval.Collect(&above))
	if len(above) != 0 {
		t.Error("empty probe produced entries")
	}
	top, _ := ix.RowTopK(q, 3)
	if len(top[0]) != 0 {
		t.Error("empty probe produced top-k entries")
	}
}

func TestPrepTimeRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := genMatrix(rng, 500, 10, 0.5)
	ix := NewIndex(p)
	if ix.PrepTime() <= 0 {
		t.Error("prep time not recorded")
	}
}

func TestEarlyTermination(t *testing.T) {
	// With one extremely dominant probe vector and a high threshold, TA
	// must verify far fewer candidates than n.
	rng := rand.New(rand.NewSource(24))
	p := genMatrix(rng, 2000, 8, 0.1)
	big := p.Vec(0)
	for f := range big {
		big[f] = 100
	}
	q, _ := matrix.FromVectors([][]float64{{1, 1, 1, 1, 1, 1, 1, 1}})
	ix := NewIndex(p)
	var got []retrieval.Entry
	st := ix.AboveTheta(q, 700, retrieval.Collect(&got))
	if len(got) != 1 || got[0].Probe != 0 {
		t.Fatalf("expected only the planted probe, got %v", got)
	}
	if st.Candidates > 100 {
		t.Errorf("TA verified %d candidates; early termination failed", st.Candidates)
	}
}
