package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushAndItems(t *testing.T) {
	h := New(3)
	for i, v := range []float64{5, 1, 9, 3, 7, 2} {
		h.Push(i, v)
	}
	items := h.Items()
	if len(items) != 3 {
		t.Fatalf("%d items", len(items))
	}
	wantVals := []float64{9, 7, 5}
	wantIDs := []int{2, 4, 0}
	for i := range items {
		if items[i].Value != wantVals[i] || items[i].ID != wantIDs[i] {
			t.Errorf("rank %d: got (%d,%g), want (%d,%g)", i, items[i].ID, items[i].Value, wantIDs[i], wantVals[i])
		}
	}
}

func TestThresholdOnlyWhenFull(t *testing.T) {
	h := New(2)
	if _, ok := h.Threshold(); ok {
		t.Error("threshold available on empty heap")
	}
	h.Push(0, 4)
	if _, ok := h.Threshold(); ok {
		t.Error("threshold available when not full")
	}
	h.Push(1, 9)
	if v, ok := h.Threshold(); !ok || v != 4 {
		t.Errorf("threshold (%g,%v), want (4,true)", v, ok)
	}
	h.Push(2, 6) // evicts 4
	if v, _ := h.Threshold(); v != 6 {
		t.Errorf("threshold %g after eviction, want 6", v)
	}
}

func TestPushRejectsBelowThreshold(t *testing.T) {
	h := New(2)
	h.Push(0, 5)
	h.Push(1, 6)
	if h.Push(2, 4) {
		t.Error("push below threshold retained")
	}
	if h.Push(3, 5) {
		t.Error("push equal to threshold retained (ties broken in favor of incumbents)")
	}
	if !h.Push(4, 7) {
		t.Error("push above threshold rejected")
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k=0")
		}
	}()
	New(0)
}

func TestReset(t *testing.T) {
	h := New(2)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Reset()
	if h.Len() != 0 || h.Full() {
		t.Error("reset did not empty heap")
	}
	h.Push(5, 42)
	items := h.Items()
	if len(items) != 1 || items[0].ID != 5 {
		t.Errorf("after reset: %v", items)
	}
}

// Property: the heap retains exactly the k largest values of any stream.
func TestKeepsKLargestProperty(t *testing.T) {
	f := func(vals []float64, k8 uint8) bool {
		k := int(k8%20) + 1
		h := New(k)
		for i, v := range vals {
			h.Push(i, v)
		}
		got := h.Items()
		want := append([]float64{}, vals...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if k > len(want) {
			k = len(want)
		}
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i].Value != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: retained ids are distinct and values match what was pushed.
func TestIDIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		vals := make([]float64, n)
		h := New(k)
		for i := range vals {
			vals[i] = rng.NormFloat64()
			h.Push(i, vals[i])
		}
		seen := map[int]bool{}
		for _, it := range h.Items() {
			if seen[it.ID] {
				t.Fatalf("duplicate id %d", it.ID)
			}
			seen[it.ID] = true
			if vals[it.ID] != it.Value {
				t.Fatalf("id %d: value %g, pushed %g", it.ID, it.Value, vals[it.ID])
			}
		}
	}
}
