// Package topk provides a bounded top-k collector based on a binary
// min-heap, used by the Row-Top-k drivers of every retrieval algorithm in
// this repository.
package topk

// Item is one (id, value) pair tracked by a Heap.
type Item struct {
	ID    int
	Value float64
}

// Heap keeps the k items with the largest values among everything pushed
// into it. The zero value is unusable; construct with New. Ties are broken
// arbitrarily, matching the paper's problem statement.
type Heap struct {
	k     int
	items []Item // min-heap on Value
}

// New returns a collector for the k largest values. k must be positive.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap{k: k, items: make([]Item, 0, k)}
}

// K returns the capacity of the collector.
func (h *Heap) K() int { return h.k }

// Len returns the number of items currently held (≤ k).
func (h *Heap) Len() int { return len(h.items) }

// Full reports whether k items are held.
func (h *Heap) Full() bool { return len(h.items) == h.k }

// Threshold returns the smallest value currently held, i.e. the running
// lower bound θ′ of the paper's Row-Top-k algorithm. It returns
// -Inf-equivalent behaviour via ok=false when fewer than k items are held,
// because no pruning bound exists yet.
func (h *Heap) Threshold() (v float64, ok bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Value, true
}

// Push offers (id, value). It returns true if the item was retained (heap
// not yet full, or value beats the current minimum).
func (h *Heap) Push(id int, value float64) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, Item{ID: id, Value: value})
		h.up(len(h.items) - 1)
		return true
	}
	if value <= h.items[0].Value {
		return false
	}
	h.items[0] = Item{ID: id, Value: value}
	h.down(0)
	return true
}

// Items returns the retained items sorted by decreasing value (ties in
// arbitrary order). The heap is consumed: it must not be used afterwards.
func (h *Heap) Items() []Item {
	out := make([]Item, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		h.down(0)
	}
	return out
}

// Reset empties the heap for reuse with the same k.
func (h *Heap) Reset() { h.items = h.items[:0] }

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Value <= h.items[i].Value {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].Value < h.items[smallest].Value {
			smallest = l
		}
		if r < n && h.items[r].Value < h.items[smallest].Value {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
