package l2ap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lemp/internal/vecmath"
)

// unitVectors draws n unit vectors of dimension r, sparse with the given
// density and non-negative if nonneg.
func unitVectors(rng *rand.Rand, n, r int, density float64, nonneg bool) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, r)
		for {
			nz := 0
			for f := range v {
				v[f] = 0
				if rng.Float64() < density {
					x := rng.NormFloat64()
					if nonneg && x < 0 {
						x = -x
					}
					v[f] = x
					nz++
				}
			}
			if nz > 0 {
				break
			}
		}
		vecmath.Normalize(v, v)
		out[i] = v
	}
	return out
}

// bruteCandidates returns all vectors with cos ≥ t for the unit query.
func bruteCandidates(vecs [][]float64, q []float64, t float64) map[int32]bool {
	want := map[int32]bool{}
	for i, v := range vecs {
		if vecmath.Dot(q, v) >= t {
			want[int32(i)] = true
		}
	}
	return want
}

func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		r := 4 + rng.Intn(20)
		n := 20 + rng.Intn(200)
		density := 0.3 + 0.7*rng.Float64()
		vecs := unitVectors(rng, n, r, density, trial%2 == 0)
		t0 := rng.Float64() * 0.9
		ix := Build(func(lid int) []float64 { return vecs[lid] }, n, r, t0)
		s := NewScratch(n, r)
		for qtrial := 0; qtrial < 10; qtrial++ {
			q := unitVectors(rng, 1, r, density, false)[0]
			// The query threshold must be ≥ the index threshold.
			tq := t0 + (1-t0)*rng.Float64()
			got := ix.Candidates(q, tq, s, nil)
			gotSet := map[int32]bool{}
			for _, lid := range got {
				gotSet[lid] = true
			}
			// Exclude exact-boundary cases (|cos−t| tiny) from the
			// check: they are legitimately FP-ambiguous.
			for i, v := range vecs {
				c := vecmath.Dot(q, v)
				if c >= tq+1e-9 && !gotSet[int32(i)] {
					t.Fatalf("trial %d: missing candidate %d with cos=%g ≥ t=%g (t0=%g)",
						trial, i, c, tq, t0)
				}
			}
		}
	}
}

func TestPruningHappens(t *testing.T) {
	// With a high threshold, the candidate set must be far smaller than n.
	rng := rand.New(rand.NewSource(42))
	n, r := 2000, 16
	vecs := unitVectors(rng, n, r, 1, false)
	ix := Build(func(lid int) []float64 { return vecs[lid] }, n, r, 0.7)
	s := NewScratch(n, r)
	q := unitVectors(rng, 1, r, 1, false)[0]
	got := ix.Candidates(q, 0.7, s, nil)
	if len(got) > n/4 {
		t.Errorf("L2AP returned %d of %d candidates at t=0.7; filters ineffective", len(got), n)
	}
	want := bruteCandidates(vecs, q, 0.7)
	for lid := range want {
		found := false
		for _, g := range got {
			if g == lid {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("missing true match %d", lid)
		}
	}
}

func TestIndexSmallerWithHigherT0(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n, r := 300, 12
	vecs := unitVectors(rng, n, r, 1, false)
	dir := func(lid int) []float64 { return vecs[lid] }
	loose := Build(dir, n, r, 0)
	tight := Build(dir, n, r, 0.8)
	if tight.Entries() >= loose.Entries() {
		t.Errorf("t0=0.8 index has %d entries, t0=0 has %d; prefix trimming missing",
			tight.Entries(), loose.Entries())
	}
	if loose.T0() != 0 || tight.T0() != 0.8 {
		t.Errorf("T0 not recorded: %g %g", loose.T0(), tight.T0())
	}
}

func TestT0Clamped(t *testing.T) {
	vecs := unitVectors(rand.New(rand.NewSource(44)), 10, 4, 1, false)
	ix := Build(func(lid int) []float64 { return vecs[lid] }, 10, 4, 3.5)
	if ix.T0() != 1 {
		t.Errorf("T0=%g, want clamp to 1", ix.T0())
	}
	ix = Build(func(lid int) []float64 { return vecs[lid] }, 10, 4, -2)
	if ix.T0() != 0 {
		t.Errorf("T0=%g, want clamp to 0", ix.T0())
	}
}

func TestScratchReuseAcrossQueries(t *testing.T) {
	// Re-using one scratch across many queries must not leak candidates
	// between queries (the stamp machinery).
	rng := rand.New(rand.NewSource(45))
	n, r := 150, 8
	vecs := unitVectors(rng, n, r, 1, false)
	ix := Build(func(lid int) []float64 { return vecs[lid] }, n, r, 0.2)
	s := NewScratch(n, r)
	for trial := 0; trial < 50; trial++ {
		q := unitVectors(rng, 1, r, 1, false)[0]
		got := ix.Candidates(q, 0.9, s, nil)
		seen := map[int32]bool{}
		for _, lid := range got {
			if seen[lid] {
				t.Fatalf("duplicate candidate %d", lid)
			}
			seen[lid] = true
			if c := vecmath.Dot(q, vecs[lid]); c < -1.0001 {
				t.Fatalf("implausible cosine %g", c)
			}
		}
	}
}

// Property: candidates is always a superset of the true matches (modulo
// boundary ties), for random sparse instances via testing/quick.
func TestSupersetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	f := func(seed int64, t0Raw, tqRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(80)
		dim := 2 + r.Intn(12)
		vecs := unitVectors(r, n, dim, 0.5, false)
		t0 := float64(t0Raw%90) / 100
		tq := t0 + (1-t0)*float64(tqRaw%100)/100
		ix := Build(func(lid int) []float64 { return vecs[lid] }, n, dim, t0)
		s := NewScratch(n, dim)
		q := unitVectors(r, 1, dim, 0.8, false)[0]
		got := map[int32]bool{}
		for _, lid := range ix.Candidates(q, tq, s, nil) {
			got[lid] = true
		}
		for i, v := range vecs {
			if vecmath.Dot(q, v) >= tq+1e-9 && !got[int32(i)] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := Build(func(int) []float64 { return nil }, 0, 5, 0.5)
	s := NewScratch(0, 5)
	if got := ix.Candidates(make([]float64, 5), 0.5, s, nil); len(got) != 0 {
		t.Errorf("empty index returned %d candidates", len(got))
	}
	if ix.Entries() != 0 {
		t.Errorf("empty index has %d entries", ix.Entries())
	}
}

func TestZeroQueryCoordinateListsSkipped(t *testing.T) {
	// A query that is zero everywhere except one coordinate must still
	// find vectors aligned with that coordinate.
	vecs := [][]float64{{1, 0}, {0, 1}, {math.Sqrt2 / 2, math.Sqrt2 / 2}}
	ix := Build(func(lid int) []float64 { return vecs[lid] }, 3, 2, 0.1)
	s := NewScratch(3, 2)
	got := ix.Candidates([]float64{1, 0}, 0.5, s, nil)
	found := map[int32]bool{}
	for _, lid := range got {
		found[lid] = true
	}
	if !found[0] || !found[2] {
		t.Errorf("candidates %v, want {0,2}", got)
	}
}
