// Package l2ap implements the L2AP all-pairs similarity-search index
// (Anastasiu & Karypis, ICDE 2014) restricted to what the paper's LEMP-L2AP
// bucket algorithm needs: cosine-similarity candidate generation over a set
// of unit vectors with a fixed index-time lower-bound threshold t0 and
// per-query thresholds t ≥ t0.
//
// Indexing walks each vector's coordinates in a fixed order and skips the
// longest prefix whose ℓ² norm stays below t0 (a query can never reach t0
// through that prefix alone); only the suffix is put into per-coordinate
// inverted lists, each entry carrying the vector's remaining suffix norm.
// Candidate generation accumulates partial dot products over the lists of
// the query's non-zero coordinates and applies the ℓ²-norm filters the
// paper reports as the efficient combination: new candidates stop being
// admitted once maxPrefix + ‖q̄_{f:}‖ < t (remscore), accumulating
// candidates are dropped when acc + prefix + suffix·‖q̄_{f+1:}‖ < t
// (positional ℓ²), and survivors face a final prefix-bound check.
package l2ap

import (
	"math"

	"lemp/internal/vecmath"
)

// Index is an L2AP inverted index over n unit vectors of dimension r.
type Index struct {
	r, n       int
	t0         float64
	maxPrefix  float64   // max un-indexed prefix norm over all vectors
	prefixNorm []float64 // per vector: norm of its un-indexed prefix
	split      []int32   // per vector: first indexed coordinate
	lists      []postings
}

type postings struct {
	lids   []int32
	vals   []float64
	suffix []float64 // ‖p̄_{f+1:}‖ of the entry's vector
}

// Build indexes the n unit vectors dir(0..n-1) with lower-bound threshold
// t0 (clamped to [0,1]). dir must return the normalized vector for a local
// id; the slices are only read during Build.
func Build(dir func(lid int) []float64, n, r int, t0 float64) *Index {
	t0 = vecmath.Clamp(t0, 0, 1)
	ix := &Index{
		r: r, n: n, t0: t0,
		prefixNorm: make([]float64, n),
		split:      make([]int32, n),
		lists:      make([]postings, r),
	}
	for lid := 0; lid < n; lid++ {
		v := dir(lid)
		var prefixSq float64
		split := r
		for f := 0; f < r; f++ {
			nextSq := prefixSq + v[f]*v[f]
			if math.Sqrt(nextSq) >= t0 {
				split = f
				break
			}
			prefixSq = nextSq
		}
		ix.split[lid] = int32(split)
		ix.prefixNorm[lid] = math.Sqrt(prefixSq)
		if ix.prefixNorm[lid] > ix.maxPrefix {
			ix.maxPrefix = ix.prefixNorm[lid]
		}
		running := prefixSq
		for f := split; f < r; f++ {
			running += v[f] * v[f]
			if v[f] == 0 {
				continue
			}
			l := &ix.lists[f]
			l.lids = append(l.lids, int32(lid))
			l.vals = append(l.vals, v[f])
			l.suffix = append(l.suffix, math.Sqrt(math.Max(0, 1-running)))
		}
	}
	return ix
}

// T0 returns the index-time lower-bound threshold. Queries must use
// thresholds ≥ T0 or risk false negatives; LEMP rebuilds the index when a
// smaller threshold shows up.
func (ix *Index) T0() float64 { return ix.t0 }

// Entries returns the total number of indexed postings (for size stats).
func (ix *Index) Entries() int {
	var total int
	for f := range ix.lists {
		total += len(ix.lists[f].lids)
	}
	return total
}

// Scratch holds the per-query accumulators. One Scratch may be reused
// across queries and across Index instances of the same or smaller size.
type Scratch struct {
	acc     []float64
	seen    []int32
	mark    int32
	touched []int32
	qsuf    []float64 // ‖q̄_{f:}‖ for f = 0..r (qsuf[r] = 0)
	qpre    []float64 // ‖q̄_{:f}‖ for f = 0..r
}

// NewScratch returns scratch sized for indexes with ≤ n vectors of
// dimension ≤ r.
func NewScratch(n, r int) *Scratch {
	return &Scratch{
		acc:  make([]float64, n),
		seen: make([]int32, n),
		qsuf: make([]float64, r+1),
		qpre: make([]float64, r+1),
	}
}

func (s *Scratch) grow(n, r int) {
	if len(s.acc) < n {
		s.acc = make([]float64, n)
		s.seen = make([]int32, n)
		s.mark = 0
	}
	if len(s.qsuf) < r+1 {
		s.qsuf = make([]float64, r+1)
		s.qpre = make([]float64, r+1)
	}
}

// Candidates appends to out the local ids of all vectors whose cosine
// similarity with the unit query q can reach t; every vector with
// cos(q,p) ≥ t is included (no false negatives for t ≥ T0). q must have
// dimension r.
func (ix *Index) Candidates(q []float64, t float64, s *Scratch, out []int32) []int32 {
	s.grow(ix.n, ix.r)
	s.mark++
	if s.mark == math.MaxInt32 {
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.mark = 1
	}
	s.touched = s.touched[:0]

	// Suffix and prefix norms of the query per coordinate.
	var run float64
	for f := ix.r - 1; f >= 0; f-- {
		run += q[f] * q[f]
		s.qsuf[f] = math.Sqrt(run)
	}
	s.qsuf[ix.r] = 0
	for f := 0; f <= ix.r; f++ {
		s.qpre[f] = math.Sqrt(math.Max(0, run-s.qsuf[f]*s.qsuf[f]))
	}

	const pruned = math.MaxFloat64 // sentinel in acc: dropped candidate

	for f := 0; f < ix.r; f++ {
		qf := q[f]
		if qf == 0 {
			continue
		}
		l := &ix.lists[f]
		if len(l.lids) == 0 {
			continue
		}
		admit := ix.maxPrefix+s.qsuf[f] >= t
		qRest := s.qsuf[f+1]
		for e, lid := range l.lids {
			if s.seen[lid] != s.mark {
				if !admit {
					continue
				}
				s.seen[lid] = s.mark
				s.acc[lid] = 0
				s.touched = append(s.touched, lid)
			}
			if s.acc[lid] == pruned {
				continue
			}
			s.acc[lid] += qf * l.vals[e]
			// Positional ℓ² filter: best case adds the full
			// remaining suffix product plus the un-indexed prefix.
			if s.acc[lid]+ix.prefixNorm[lid]+l.suffix[e]*qRest < t {
				s.acc[lid] = pruned
			}
		}
	}
	for _, lid := range s.touched {
		a := s.acc[lid]
		if a == pruned {
			continue
		}
		// Final filter with the tight prefix bound: the un-indexed
		// prefix of p can contribute at most ‖p̄_prefix‖·‖q̄_prefix‖.
		if a+ix.prefixNorm[lid]*s.qpre[ix.split[lid]] >= t {
			out = append(out, lid)
		}
	}
	return out
}
