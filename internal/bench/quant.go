package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"lemp/internal/core"
	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/vecmath"
)

// The quant experiment measures what the int8 screening sidecar buys on
// LEMP's verification phase: candidates that survive bucket pruning are
// bounded in int8 (DotQ8 plus a conservative error bound) and only the
// survivors reach the exact f64 kernels. Screening never changes results —
// every θ level cross-checks the quantized index against the plain one —
// so the interesting numbers are the screen rate and the verified-candidate
// throughput. High θ is the sweet spot: most candidates fall clearly short
// of the threshold, and the int8 bound proves it at an eighth of the
// memory traffic.

// quantWorkload builds a clustered, moderately length-skewed catalog and a
// matching query set, with a power-law spectral profile across dimensions:
// coordinate f is damped by (f+1)^-0.6, the shape of SVD/NMF factor
// matrices (the paper's own datasets), whose dimensions come ordered by
// singular value. That profile is also what the screen's remaining-mass
// checkpoint exploits — most code mass sits in the head prefix, so the
// tail bound is tight and losers die after a quarter of the dot work.
// Deterministic (fixed seed): bench runs must be reproducible.
func quantWorkload(scale float64) (p, q *matrix.Matrix) {
	rng := rand.New(rand.NewSource(131))
	n := int(200000 * scale)
	if n < 2000 {
		n = 2000
	}
	m := int(64 * scale)
	if m < 16 {
		m = 16
	}
	// r matches the paper's rank-100 factorizations (the widest IE-SVD and
	// IE-NMF setting): the checkpoint dots r/4 dimensions per candidate, so
	// its advantage over the full exact dot grows with rank.
	const r, nCenters = 100, 6
	spectrum := make([]float64, r)
	for f := range spectrum {
		spectrum[f] = math.Pow(float64(f+1), -0.6)
	}
	centers := make([][]float64, nCenters)
	for c := range centers {
		v := make([]float64, r)
		for f := range v {
			v[f] = spectrum[f] * rng.NormFloat64()
		}
		vecmath.Normalize(v, v)
		centers[c] = v
	}
	p = matrix.New(r, n)
	for i := 0; i < n; i++ {
		v := p.Vec(i)
		c := centers[i%nCenters]
		for f := range v {
			v[f] = c[f] + 0.3*spectrum[f]*rng.NormFloat64()
		}
		norm := vecmath.Norm(v)
		vecmath.Scale(v, v, math.Exp(0.4*rng.NormFloat64())/norm)
	}
	q = matrix.New(r, m)
	for i := 0; i < m; i++ {
		v := q.Vec(i)
		c := centers[i%nCenters]
		for f := range v {
			v[f] = c[f] + 0.2*spectrum[f]*rng.NormFloat64()
		}
		norm := vecmath.Norm(v)
		vecmath.Scale(v, v, 1/norm)
	}
	return p, q
}

// quantThetas calibrates the θ sweep from the exact product distribution:
// the 0.95 quantile (a broad verification-heavy sweep) up to the 0.999
// quantile, the paper's high-θ regime, where nearly every candidate falls
// short and screening opportunity is largest. Beyond that the sweep stops:
// at the most extreme quantiles each pass returns a handful of entries and
// per-call fixed costs (bucket walk, query setup) dominate both sides, so
// the measurement stops saying anything about verification.
func quantThetas(p, q *matrix.Matrix) []float64 {
	products := make([]float64, 0, q.N()*p.N())
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		for j := 0; j < p.N(); j++ {
			products = append(products, vecmath.Dot(qi, p.Vec(j)))
		}
	}
	var thetas []float64
	for _, qq := range []float64{0.95, 0.99, 0.999} {
		if t := quantile(products, qq); t > 0 {
			thetas = append(thetas, t)
		}
	}
	return thetas
}

// quantRow is one θ level's measurements.
type quantRow struct {
	theta      float64
	candidates int64         // pre-screen candidates (identical both runs)
	screenRate float64       // screened / (screened + survivors)
	plainTime  time.Duration // unquantized Above-θ wall time
	quantTime  time.Duration // quantized Above-θ wall time
	results    int
}

// measureQuantAbove runs Above-θ at one θ with and without the sidecar,
// cross-checks the result sets entry for entry, and times both (after a
// warmup pass that pays tuning and lazy index construction).
func measureQuantAbove(p, q *matrix.Matrix, theta float64) (quantRow, error) {
	row := quantRow{theta: theta}
	// AlgL makes the run verification-heavy: candidate generation is a
	// near-free length-prefix scan, so wall time is the verification phase
	// the screen targets. The generation-heavy algorithms amortize the same
	// per-candidate saving over their own scan costs (the differential
	// harness covers them all for correctness).
	plain, err := core.NewIndex(p.Clone(), core.Options{Parallelism: 1, Algorithm: core.AlgL})
	if err != nil {
		return row, err
	}
	quantized, err := core.NewIndex(p.Clone(), core.Options{Parallelism: 1, Algorithm: core.AlgL, Quantize: true})
	if err != nil {
		return row, err
	}
	pass := func(ix *core.Index, out *[]retrieval.Entry) (core.Stats, time.Duration, error) {
		*out = (*out)[:0]
		start := time.Now()
		st, err := ix.AboveTheta(q, theta, retrieval.Collect(out))
		return st, time.Since(start), err
	}
	// Warmup both indexes (tuning, lazy construction), then alternate timed
	// passes between them until enough wall time accumulates to drown timer
	// noise — the high-θ rows finish one pass in well under a millisecond,
	// and interleaving keeps slow machine-load drift from landing entirely
	// on one side of the ratio. Reported time is the per-pass average.
	var plainOut, quantOut []retrieval.Entry
	if _, _, err := pass(plain, &plainOut); err != nil {
		return row, err
	}
	if _, _, err := pass(quantized, &quantOut); err != nil {
		return row, err
	}
	var plainStats, quantStats core.Stats
	var plainTotal, quantTotal time.Duration
	passes := 0
	for plainTotal+quantTotal < 2*time.Second && passes < 512 {
		st, d, err := pass(plain, &plainOut)
		if err != nil {
			return row, err
		}
		plainStats, plainTotal = st, plainTotal+d
		st, d, err = pass(quantized, &quantOut)
		if err != nil {
			return row, err
		}
		quantStats, quantTotal = st, quantTotal+d
		passes++
	}
	plainTime := plainTotal / time.Duration(passes)
	quantTime := quantTotal / time.Duration(passes)
	retrieval.Sort(plainOut)
	retrieval.Sort(quantOut)
	if len(plainOut) != len(quantOut) {
		return row, fmt.Errorf("screening changed the result set: %d entries plain, %d quantized (θ=%v)",
			len(plainOut), len(quantOut), theta)
	}
	for i := range plainOut {
		if plainOut[i] != quantOut[i] {
			return row, fmt.Errorf("screening changed entry %d: plain %+v, quantized %+v (θ=%v)",
				i, plainOut[i], quantOut[i], theta)
		}
	}
	row.candidates = plainStats.Candidates
	row.plainTime = plainTime
	row.quantTime = quantTime
	row.results = len(plainOut)
	if total := quantStats.QuantScreened + quantStats.QuantSurvived; total > 0 {
		row.screenRate = float64(quantStats.QuantScreened) / float64(total)
	}
	return row, nil
}

// quantScreening runs the experiment: a θ sweep with the sidecar on and
// off, reporting screen rate and verified-candidate throughput. Exact
// results are screening-invariant, so every row doubles as a cross-check.
func (r *Runner) quantScreening() error {
	r.header("Quantized screening: int8 candidate pruning before exact verification (θ sweep)")
	p, q := quantWorkload(r.cfg.Scale)
	thetas := quantThetas(p, q)
	if len(thetas) == 0 {
		r.logf("skipping quant: no positive θ at this scale")
		return nil
	}
	r.logf("catalog n=%d r=%d, %d queries", p.N(), p.R(), q.N())
	fmt.Fprintf(r.cfg.Out, "%-10s %12s %9s %12s %12s %9s %14s %9s\n",
		"Theta", "Candidates", "Screened", "PlainTime", "QuantTime", "Speedup", "Verify/s", "Results")
	for _, theta := range thetas {
		row, err := measureQuantAbove(p, q, theta)
		if err != nil {
			return fmt.Errorf("quant θ=%v: %w", theta, err)
		}
		speedup := math.Inf(1)
		if row.quantTime > 0 {
			speedup = float64(row.plainTime) / float64(row.quantTime)
		}
		throughput := 0.0
		if row.quantTime > 0 {
			throughput = float64(row.candidates) / row.quantTime.Seconds()
		}
		fmt.Fprintf(r.cfg.Out, "%-10.4f %12d %8.1f%% %12s %12s %8.2fx %14.3g %9d\n",
			row.theta, row.candidates, 100*row.screenRate,
			fmtDur(row.plainTime), fmtDur(row.quantTime), speedup, throughput, row.results)
	}
	fmt.Fprintln(r.cfg.Out)
	return nil
}
