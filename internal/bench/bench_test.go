package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// The harness must run every experiment end to end at a tiny scale. This
// is a smoke test for the experiment wiring, not a performance check.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	var out bytes.Buffer
	r := NewRunner(Config{Scale: 0.02, Quick: true, Out: &out})
	if err := r.Run("all"); err != nil {
		t.Fatalf("Run(all): %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"Figure 5", "Figure 6a", "Figure 6b", "Figure 7a,b", "Figure 7c-f",
		"Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"caching effects", "ablation",
		"verification kernels",
		"Placement", "cluster",
		"latency vs load", "continuous", "overload",
		"LEMP-LI", "Naive",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out bytes.Buffer
	r := NewRunner(Config{Scale: 0.02, Out: &out})
	if err := r.Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDatasetCachedAcrossExperiments(t *testing.T) {
	var out bytes.Buffer
	r := NewRunner(Config{Scale: 0.02, Quick: true, Out: &out})
	a := r.get("IE-NMF")
	b := r.get("IE-NMF")
	if a != b {
		t.Error("dataset regenerated instead of cached")
	}
	if a.q.N() == 0 || a.p.N() == 0 {
		t.Error("empty dataset")
	}
	if len(a.thetas) == 0 {
		t.Error("no calibrated thresholds")
	}
}

// TestPlacementPruneGuard pins the headline claim of the placement
// experiment: on the skewed smoke workload's high-θ queries, cluster
// placement must prune at least 30% of shard scans (while cost placement
// must beat range placement's cost skew). The workload is seeded, so this
// is a regression guard, not a flaky performance assertion.
func TestPlacementPruneGuard(t *testing.T) {
	p, q, theta := placementWorkload(0.1)
	cluster, err := measurePlacement("cluster", p, q, theta)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.prunedRate < 0.30 {
		t.Errorf("cluster placement pruned %.1f%% of shard scans, want >= 30%%", 100*cluster.prunedRate)
	}
	rng, err := measurePlacement("range", p, q, theta)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := measurePlacement("cost", p, q, theta)
	if err != nil {
		t.Fatal(err)
	}
	if cost.skew >= rng.skew {
		t.Errorf("cost placement skew %.2f not below range skew %.2f", cost.skew, rng.skew)
	}
	if cluster.results != rng.results || cost.results != rng.results {
		t.Errorf("result counts differ across placements: range %d cost %d cluster %d",
			rng.results, cost.results, cluster.results)
	}
}

// TestQuantScreenGuard pins the headline claim of the quant experiment: at
// the highest calibrated θ of the seeded smoke workload, the int8 sidecar
// must screen out at least 40% of the verification candidates — without
// changing a single result entry (measureQuantAbove cross-checks every
// row). The workload is seeded, so this is a regression guard on screening
// effectiveness, not a flaky timing assertion.
func TestQuantScreenGuard(t *testing.T) {
	p, q := quantWorkload(0.1)
	thetas := quantThetas(p, q)
	if len(thetas) == 0 {
		t.Fatal("smoke workload calibrated no positive θ")
	}
	row, err := measureQuantAbove(p, q, thetas[len(thetas)-1])
	if err != nil {
		t.Fatal(err)
	}
	if row.candidates == 0 {
		t.Fatal("high-θ run verified no candidates; workload too small")
	}
	if row.screenRate < 0.40 {
		t.Errorf("sidecar screened %.1f%% of candidates at θ=%.4f, want >= 40%%",
			100*row.screenRate, row.theta)
	}
}

// TestBulkThroughputGuard pins the headline claim of the bulk engine: on
// the Smoke catalog, a bulk Row-Top-10 job must process rows at least
// 1.5× as fast as a loop of per-row serving calls — while producing
// exactly the serving path's results (bulkComparison cross-checks every
// row and fails on any mismatch). The margin is far below the typical
// 10x+ (the serving loop re-tunes per call), so the guard is stable on
// contended hosted runners.
func TestBulkThroughputGuard(t *testing.T) {
	runs, speedup, err := bulkComparison(runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		t.Logf("%-16s %12v  (%8.0f rows/s)", run.method, run.wall, run.rowsSec)
	}
	if speedup < 1.5 {
		t.Errorf("bulk engine %.2fx over per-row serving loop, want >= 1.5x", speedup)
	}
}

// With JSONDir set, every experiment leaves a parseable trajectory file
// holding its measurements.
func TestBenchJSONTrajectory(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	r := NewRunner(Config{Scale: 0.02, Quick: true, Out: &out, JSONDir: dir})
	if err := r.Run("fig5"); err != nil {
		t.Fatalf("Run(fig5): %v\n%s", err, out.String())
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_fig5.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tr trajectory
	if err := json.Unmarshal(buf, &tr); err != nil {
		t.Fatalf("trajectory does not parse: %v", err)
	}
	if tr.Experiment != "fig5" || !tr.Quick || tr.Scale != 0.02 {
		t.Fatalf("trajectory header: %+v", tr)
	}
	if len(tr.Measurements) == 0 {
		t.Fatal("trajectory holds no measurements")
	}
	for _, m := range tr.Measurements {
		if m.Method == "" || m.Dataset == "" {
			t.Fatalf("incomplete measurement: %+v", m)
		}
	}
}

// BenchmarkServingLoad runs the closed-loop latency-vs-load experiment
// once per iteration; CI's bench-smoke job runs it at -benchtime=1x as the
// serving-envelope regression canary (the run itself asserts that the
// server's shed counter matches the client-observed 429s).
func BenchmarkServingLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		r := NewRunner(Config{Scale: 0.02, Quick: true, Out: &out})
		if err := r.Run("load"); err != nil {
			b.Fatalf("Run(load): %v\n%s", err, out.String())
		}
	}
}

func TestSICount(t *testing.T) {
	cases := map[int]string{100: "100", 1000: "1K", 10000: "10K", 1000000: "1M", 2500: "2500"}
	for n, want := range cases {
		if got := siCount(n); got != want {
			t.Errorf("siCount(%d)=%q want %q", n, got, want)
		}
	}
}
