package bench

import (
	"fmt"
	"time"
)

func (r *Runner) header(title string) {
	fmt.Fprintf(r.cfg.Out, "\n== %s ==\n", title)
}

// printTable prints measurements grouped by dataset and problem, one row
// per method, with the paper's columns: total time and candidates/query.
func (r *Runner) printTable(ms []Measurement) {
	sortMeasurements(ms)
	r.record(ms)
	lastGroup := ""
	for _, m := range ms {
		group := m.Dataset + " / " + m.Problem
		if group != lastGroup {
			fmt.Fprintf(r.cfg.Out, "\n%s\n", group)
			lastGroup = group
		}
		fmt.Fprintf(r.cfg.Out, "  %-16s %12s  (|C|/q %10.1f, results %d)\n",
			m.Method, fmtDur(m.Total), m.CandPerQ, m.Results)
	}
	fmt.Fprintln(r.cfg.Out)
}

// printComparison prints a figure-style table and annotates the named
// method's speedup over the best other method and over Naive, the way
// Figs. 5 and 6 mark "6.4x" over the runner-up.
func (r *Runner) printComparison(ms []Measurement, highlight string) {
	sortMeasurements(ms)
	r.record(ms)
	groups := map[string][]Measurement{}
	var order []string
	for _, m := range ms {
		g := m.Dataset + " / " + m.Problem
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], m)
	}
	for _, g := range order {
		fmt.Fprintf(r.cfg.Out, "\n%s\n", g)
		var hl, bestOther, naive time.Duration
		for _, m := range groups[g] {
			fmt.Fprintf(r.cfg.Out, "  %-16s %12s  (|C|/q %10.1f)\n", m.Method, fmtDur(m.Total), m.CandPerQ)
			switch {
			case m.Method == highlight:
				hl = m.Total
			case m.Method == "Naive":
				naive = m.Total
				if bestOther == 0 || m.Total < bestOther {
					bestOther = m.Total
				}
			default:
				if bestOther == 0 || m.Total < bestOther {
					bestOther = m.Total
				}
			}
		}
		if hl > 0 && bestOther > 0 {
			fmt.Fprintf(r.cfg.Out, "  -> %s speedup: %.1fx over best other", highlight, float64(bestOther)/float64(hl))
			if naive > 0 {
				fmt.Fprintf(r.cfg.Out, ", %.0fx over Naive", float64(naive)/float64(hl))
			}
			fmt.Fprintln(r.cfg.Out)
		}
	}
	fmt.Fprintln(r.cfg.Out)
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
