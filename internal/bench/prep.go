package bench

import (
	"lemp/internal/covertree"
	"lemp/internal/ta"
)

// Construction helpers for Table 2: build each baseline's index and return
// a size so the work cannot be optimized away.

func taIndexEntries(ds *dataset) int {
	ix := ta.NewIndex(ds.p)
	return int(ix.PrepTime()) & 1 // consume the index
}

func treeNodes(ds *dataset) int {
	return covertree.Build(ds.p, covertree.DefaultBase).NumNodes()
}

func dualNodes(ds *dataset) int {
	d := covertree.NewDual(ds.q, ds.p, covertree.DefaultBase)
	return d.Q.NumNodes() + d.P.NumNodes()
}
