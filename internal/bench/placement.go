package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"lemp"
	"lemp/internal/matrix"
	"lemp/internal/server"
	"lemp/internal/vecmath"
)

// The placement experiment measures what the pluggable shard placement
// layer buys on a hostile-but-realistic catalog: probe lengths follow a
// Zipf law and the catalog arrives sorted by decreasing length (the order
// a popularity-ranked export naturally has), so contiguous equal-count
// splits concentrate the paper's ~l_b scan cost in the first shard.
// Directions fall into a few clusters, so centroid cone pruning can skip
// whole shards for directionally focused high-θ queries.

// placementShards is the shard count for the placement experiment.
const placementShards = 4

// placementWorkload builds the skewed catalog and a directionally focused
// query workload with a high calibrated θ. Deterministic (fixed seed):
// bench runs must be reproducible.
func placementWorkload(scale float64) (p, q *matrix.Matrix, theta float64) {
	rng := rand.New(rand.NewSource(97))
	n := int(3000 * scale)
	if n < 240 {
		n = 240
	}
	m := int(400 * scale)
	if m < 48 {
		m = 48
	}
	const r, nCenters = 16, 4
	centers := make([][]float64, nCenters)
	for c := range centers {
		v := make([]float64, r)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		vecmath.Normalize(v, v)
		centers[c] = v
	}
	p = matrix.New(r, n)
	for i := 0; i < n; i++ {
		v := p.Vec(i)
		c := centers[i%nCenters]
		for f := range v {
			v[f] = c[f] + 0.2*rng.NormFloat64()
		}
		// Zipf length skew, decreasing with rank: shard 0 of an
		// equal-count contiguous split gets nearly all the mass.
		norm := vecmath.Norm(v)
		vecmath.Scale(v, v, 8.0/(norm*math.Pow(float64(i+1), 0.7)))
	}
	// Queries focus on one cluster direction each: the regime where a
	// per-query cone test can rule whole shards out.
	q = matrix.New(r, m)
	for i := 0; i < m; i++ {
		v := q.Vec(i)
		c := centers[i%nCenters]
		for f := range v {
			v[f] = c[f] + 0.1*rng.NormFloat64()
		}
		norm := vecmath.Norm(v)
		vecmath.Scale(v, v, 1/norm)
	}
	// Calibrate θ near the top of the product distribution (the paper's
	// high-recall regime, where Above-θ answers are rare and pruning
	// opportunity is largest): the 99.9th percentile product value.
	heap := make([]float64, 0, q.N()*p.N())
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		for j := 0; j < p.N(); j++ {
			heap = append(heap, vecmath.Dot(qi, p.Vec(j)))
		}
	}
	theta = quantile(heap, 0.999)
	if theta <= 0 {
		theta = 0.1
	}
	return p, q, theta
}

// quantile returns the q-th quantile of xs (sorts a copy; the calibration
// sets reach millions of products at full scale).
func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// placementRow is one placement strategy's measurements.
type placementRow struct {
	kind       server.PlacementKind
	skew       float64       // max/mean per-shard estimated scan cost
	minScan    time.Duration // fastest shard's serial scan time
	maxScan    time.Duration // slowest shard's serial scan time
	prunedRate float64       // pruned / dispatched shard scans
	results    int
}

// measurePlacement builds a shard set under one strategy and measures the
// per-shard scan-time spread (each shard scanned serially, after a warmup
// pass that pays tuning) and — through the sharded fan-out, so the cone
// test is on the real serving path — the shard prune rate at θ.
func measurePlacement(kind server.PlacementKind, p, q *matrix.Matrix, theta float64) (placementRow, error) {
	row := placementRow{kind: kind}
	sh, err := server.NewShardedPlaced(p.Clone(), nil, placementShards, lemp.Options{Parallelism: 1}, kind)
	if err != nil {
		return row, err
	}
	row.skew = sh.CostSkew()
	row.minScan, row.maxScan = time.Duration(math.MaxInt64), 0
	for _, ix := range sh.Indexes() {
		if _, _, err := ix.AboveTheta(q, theta); err != nil { // warmup: tuning + lists
			return row, err
		}
		start := time.Now()
		if _, _, err := ix.AboveTheta(q, theta); err != nil {
			return row, err
		}
		d := time.Since(start)
		if d < row.minScan {
			row.minScan = d
		}
		if d > row.maxScan {
			row.maxScan = d
		}
	}
	rows, _, err := sh.AboveTheta(q, theta)
	if err != nil {
		return row, err
	}
	for _, es := range rows {
		row.results += len(es)
	}
	if total := sh.ShardsScanned() + sh.ShardsPruned(); total > 0 {
		row.prunedRate = float64(sh.ShardsPruned()) / float64(total)
	}
	return row, nil
}

// placement runs the experiment: all three strategies on the same skewed
// catalog and workload. Exact results are placement-invariant, so the
// result counts double as a cross-check.
func (r *Runner) placement() error {
	r.header("Placement: cost-balanced partitioning and centroid shard pruning (Zipf-length catalog, sorted by length)")
	p, q, theta := placementWorkload(r.cfg.Scale)
	r.logf("catalog n=%d r=%d, %d queries, θ=%.4f, %d shards", p.N(), p.R(), q.N(), theta, placementShards)
	fmt.Fprintf(r.cfg.Out, "%-10s %10s %12s %12s %8s %9s %9s\n",
		"Placement", "CostSkew", "MinShard", "MaxShard", "Spread", "Pruned", "Results")
	wantResults := -1
	for _, kind := range []server.PlacementKind{server.PlaceRange, server.PlaceCost, server.PlaceCluster} {
		row, err := measurePlacement(kind, p, q, theta)
		if err != nil {
			return fmt.Errorf("placement %s: %w", kind, err)
		}
		spread := math.Inf(1)
		if row.minScan > 0 {
			spread = float64(row.maxScan) / float64(row.minScan)
		}
		fmt.Fprintf(r.cfg.Out, "%-10s %9.2fx %12s %12s %7.2fx %8.1f%% %9d\n",
			string(row.kind), row.skew, fmtDur(row.minScan), fmtDur(row.maxScan),
			spread, 100*row.prunedRate, row.results)
		if wantResults == -1 {
			wantResults = row.results
		} else if row.results != wantResults {
			return fmt.Errorf("placement %s returned %d results, others %d (placement must not change results)",
				kind, row.results, wantResults)
		}
	}
	fmt.Fprintln(r.cfg.Out)
	return nil
}
