package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// record adds printed measurements to the trajectory buffer; the table
// printers call it so every experiment that reports Measurements is
// archived without per-experiment wiring.
func (r *Runner) record(ms []Measurement) {
	r.collect = append(r.collect, ms...)
}

// trajectory is the schema of one BENCH_<experiment>.json file. Durations
// are reported in seconds — the unit benchstat-style tooling diffs across
// commits — alongside the work counters the paper's tables show.
type trajectory struct {
	Experiment   string       `json:"experiment"`
	Scale        float64      `json:"scale"`
	Quick        bool         `json:"quick"`
	Measurements []jsonResult `json:"measurements"`
}

type jsonResult struct {
	Dataset      string  `json:"dataset"`
	Problem      string  `json:"problem"`
	Method       string  `json:"method"`
	TotalSeconds float64 `json:"total_seconds"`
	PrepSeconds  float64 `json:"prep_seconds,omitempty"`
	CandPerQuery float64 `json:"candidates_per_query,omitempty"`
	Results      int64   `json:"results,omitempty"`
	NumBuckets   int     `json:"num_buckets,omitempty"`
	Skipped      bool    `json:"skipped,omitempty"`
}

// writeJSON renders one experiment's measurements to
// <JSONDir>/BENCH_<id>.json, creating the directory on first use.
func (r *Runner) writeJSON(id string, ms []Measurement) error {
	if err := os.MkdirAll(r.cfg.JSONDir, 0o755); err != nil {
		return err
	}
	tr := trajectory{
		Experiment:   id,
		Scale:        r.cfg.Scale,
		Quick:        r.cfg.Quick,
		Measurements: make([]jsonResult, 0, len(ms)),
	}
	for _, m := range ms {
		tr.Measurements = append(tr.Measurements, jsonResult{
			Dataset:      m.Dataset,
			Problem:      m.Problem,
			Method:       m.Method,
			TotalSeconds: m.Total.Seconds(),
			PrepSeconds:  m.Prep.Seconds(),
			CandPerQuery: m.CandPerQ,
			Results:      m.Results,
			NumBuckets:   m.NumBuckets,
			Skipped:      m.Skipped,
		})
	}
	buf, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(r.cfg.JSONDir, fmt.Sprintf("BENCH_%s.json", id))
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
