package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"lemp"
	"lemp/internal/data"
	"lemp/internal/server"
)

// The serving-load experiment measures the batcher's latency/throughput
// trade across dispatch modes with closed-loop clients, plus graceful
// degradation under overload. The claims it demonstrates:
//
//   - At low load (1 client), window mode pays the full batch window on
//     every request; continuous mode dispatches an idle key immediately,
//     so its p50 tracks the no-batching baseline.
//   - At high load, continuous mode coalesces exactly the requests that
//     arrive during the previous retrieval and dispatches back-to-back,
//     matching or beating window mode's throughput without its idle gap.
//   - Past the admission-control bound the server sheds with 429 instead
//     of queueing: accepted-request latency stays bounded while the
//     rejection rate absorbs the excess offer.
//
// Results are mode-invariant (the same retrieval runs either way), so the
// correctness story is carried by the server package's differential tests;
// this experiment is about the serving envelope.

// loadModes are the batcher configurations the experiment compares.
var loadModes = []struct {
	name   string
	window time.Duration
	mode   string
}{
	{"none", 0, ""}, // per-request dispatch baseline
	{"window", 2 * time.Millisecond, "window"},
	{"continuous", 2 * time.Millisecond, "continuous"},
}

// loadCell is one (mode, concurrency) measurement.
type loadCell struct {
	clients  int
	ok       int
	shed     int
	qps      float64
	p50, p99 time.Duration
}

// runLoadCell drives the server closed-loop: each client posts a
// single-query top-k request, waits for the response, and immediately
// offers the next, for the cell's duration.
func runLoadCell(ts *httptest.Server, q *lemp.Matrix, clients int, dur time.Duration) (loadCell, error) {
	cell := loadCell{clients: clients}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	defer client.CloseIdleConnections()

	type workerStats struct {
		lats []time.Duration
		ok   int
		shed int
		err  error
	}
	stats := make([]workerStats, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats[w]
			for i := 0; time.Now().Before(deadline); i++ {
				body, err := json.Marshal(map[string]any{
					"queries": [][]float64{q.Vec((w*131 + i) % q.N())},
					"k":       10,
				})
				if err != nil {
					ws.err = err
					return
				}
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader(body))
				if err != nil {
					ws.err = err
					return
				}
				var sink map[string]any
				json.NewDecoder(resp.Body).Decode(&sink)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ws.lats = append(ws.lats, time.Since(t0))
					ws.ok++
				case http.StatusTooManyRequests:
					ws.shed++
				default:
					ws.err = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	for i := range stats {
		if stats[i].err != nil {
			return cell, stats[i].err
		}
		lats = append(lats, stats[i].lats...)
		cell.ok += stats[i].ok
		cell.shed += stats[i].shed
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	cell.qps = float64(cell.ok) / elapsed.Seconds()
	cell.p50 = pctDur(lats, 0.50)
	cell.p99 = pctDur(lats, 0.99)
	return cell, nil
}

// pctDur returns the p-th percentile of sorted durations.
func pctDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// loadServer builds an httptest server over the Smoke probes with the
// given batching/shedding configuration. The result cache is off so every
// request exercises the batcher (the component under measurement).
func loadServer(p *lemp.Matrix, window time.Duration, mode string, shedInflight int) (*httptest.Server, error) {
	srv, err := server.New(p.Clone(), server.Config{
		Shards:        2,
		Options:       lemp.Options{Parallelism: 1},
		BatchWindow:   window,
		BatchMax:      256,
		BatchMode:     mode,
		ShedQueueRows: -1,
		ShedInflight:  shedInflight,
		CacheEntries:  -1,
	})
	if err != nil {
		return nil, err
	}
	return httptest.NewServer(srv.Handler()), nil
}

// servingLoad runs the closed-loop latency-vs-load comparison and the
// overload/shedding phase.
func (r *Runner) servingLoad() error {
	r.header("Serving: latency vs load across batch modes (closed loop, Smoke dataset)")
	q, p := data.Smoke.Generate()
	dur := 250 * time.Millisecond
	concurrencies := []int{1, 4, 16}
	if r.cfg.Quick {
		dur = 80 * time.Millisecond
		concurrencies = []int{1, 8}
	}

	fmt.Fprintf(r.cfg.Out, "%-12s %8s %8s %10s %10s\n", "Mode", "Clients", "QPS", "p50", "p99")
	for _, m := range loadModes {
		ts, err := loadServer(p, m.window, m.mode, -1)
		if err != nil {
			return fmt.Errorf("load %s: %w", m.name, err)
		}
		for _, c := range concurrencies {
			cell, err := runLoadCell(ts, q, c, dur)
			if err != nil {
				ts.Close()
				return fmt.Errorf("load %s@%d: %w", m.name, c, err)
			}
			fmt.Fprintf(r.cfg.Out, "%-12s %8d %8.0f %10s %10s\n",
				m.name, c, cell.qps, fmtDur(cell.p50), fmtDur(cell.p99))
		}
		ts.Close()
	}

	// Overload: a tight in-flight bound with many more closed-loop clients.
	// The server must shed the excess with 429 while accepted requests keep
	// a bounded tail — graceful degradation, not queue collapse.
	const shedLimit, overloadClients = 4, 24
	ts, err := loadServer(p, 2*time.Millisecond, "continuous", shedLimit)
	if err != nil {
		return fmt.Errorf("load overload: %w", err)
	}
	defer ts.Close()
	cell, err := runLoadCell(ts, q, overloadClients, dur)
	if err != nil {
		return fmt.Errorf("load overload: %w", err)
	}
	total := cell.ok + cell.shed
	shedPct := 0.0
	if total > 0 {
		shedPct = 100 * float64(cell.shed) / float64(total)
	}
	fmt.Fprintf(r.cfg.Out,
		"\noverload: %d clients against in-flight limit %d: %d accepted (%.0f QPS, p99 %s), %d shed with 429 (%.1f%%)\n",
		overloadClients, shedLimit, cell.ok, cell.qps, fmtDur(cell.p99), cell.shed, shedPct)

	// Cross-check the client-side 429 count against the server's own
	// shed counter via the public /stats surface.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st struct {
		Shed struct {
			ShedTotal uint64 `json:"shed_total"`
		} `json:"shed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	if st.Shed.ShedTotal != uint64(cell.shed) {
		return fmt.Errorf("load overload: server counted %d shed requests, clients saw %d",
			st.Shed.ShedTotal, cell.shed)
	}
	fmt.Fprintln(r.cfg.Out)
	return nil
}
