// Package bench regenerates the paper's evaluation (§6): every figure
// (Figs. 5, 6a, 6b, 7a–f) and table (Tables 2–6), plus the caching ablation
// of §6.2 and a tuning ablation for §4.4. Dataset sizes are the scaled-down
// profiles of internal/data; Above-θ thresholds are calibrated to absolute
// result sizes ("recall levels") exactly as in §6.1.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"lemp/internal/data"
	"lemp/internal/matrix"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// RecallLevels are the Above-θ result sizes used by the harness. The paper
// uses 10³…10⁷ out of ~10¹¹ product entries; our scaled matrices have ~10⁷
// entries, so the ladder shifts down one decade (documented in
// EXPERIMENTS.md).
var RecallLevels = []int{100, 1000, 10000, 100000, 1000000}

// KValues are the Row-Top-k values of the paper (§6.1).
var KValues = []int{1, 5, 10, 50}

// Config controls a harness run.
type Config struct {
	Scale   float64   // dataset size multiplier (default 1)
	Quick   bool      // reduced levels/k and skip the slowest baselines
	Out     io.Writer // destination for the result tables
	Verbose bool      // progress logging to Out
	// JSONDir, when non-empty, receives one BENCH_<experiment>.json
	// trajectory file per experiment run, holding its measurements in
	// machine-readable form for archiving across commits.
	JSONDir string
}

// Runner generates datasets on demand, caches them and their calibrated
// thresholds, and runs experiments.
type Runner struct {
	cfg  Config
	sets map[string]*dataset
	// grids memoizes measurement grids shared between a figure and its
	// table (the paper's Fig. 7 and Tables 5–6 show the same runs).
	grids map[string][]Measurement
	// collect accumulates every measurement printed this run, in print
	// order, for the JSON trajectory writer.
	collect []Measurement
}

// NewRunner returns a harness with the given configuration.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	return &Runner{cfg: cfg, sets: make(map[string]*dataset), grids: make(map[string][]Measurement)}
}

// dataset bundles a generated profile with its calibrated thresholds.
type dataset struct {
	profile data.Profile
	q, p    *matrix.Matrix
	// thetas[level] is the value of the level-th largest entry of QᵀP,
	// so Above-θ with thetas[level] returns ≥ level entries.
	thetas map[int]float64
	// naiveTime is the wall-clock of the full-product pass used for
	// calibration — by construction also the Naive baseline's runtime.
	naiveTime time.Duration
}

// levels returns the recall ladder, shortened in quick mode.
func (r *Runner) levels() []int {
	if r.cfg.Quick {
		return []int{1000, 100000}
	}
	return RecallLevels
}

// ks returns the Row-Top-k ladder, shortened in quick mode.
func (r *Runner) ks() []int {
	if r.cfg.Quick {
		return []int{1, 10}
	}
	return KValues
}

// levelsFor returns the recall levels whose calibrated θ is usable for the
// dataset (positive entries exist at that depth).
func (r *Runner) levelsFor(ds *dataset) []int {
	var out []int
	for _, l := range r.levels() {
		if _, ok := ds.thetas[l]; ok {
			out = append(out, l)
		}
	}
	return out
}

// get generates (or returns the cached) dataset for a profile name such as
// "IE-NMF" or "IE-SVDT".
func (r *Runner) get(name string) *dataset {
	if ds, ok := r.sets[name]; ok {
		return ds
	}
	profile, err := data.ByName(name)
	if err != nil {
		panic(err)
	}
	if r.cfg.Scale != 1 {
		profile = profile.Scale(r.cfg.Scale)
	}
	r.logf("generating %s (m=%d n=%d r=%d)...", profile.Name, profile.M, profile.N, profile.R)
	q, p := profile.Generate()
	ds := &dataset{profile: profile, q: q, p: p}
	r.calibrate(ds)
	r.sets[name] = ds
	return ds
}

// calibrate computes, in one full-product pass, the θ for every recall
// level (the level-th largest product value). The pass is timed and reused
// as the Naive baseline measurement.
func (r *Runner) calibrate(ds *dataset) {
	maxLevel := 0
	for _, l := range r.levels() {
		if l > maxLevel {
			maxLevel = l
		}
	}
	total := ds.q.N() * ds.p.N()
	if maxLevel > total {
		maxLevel = total
	}
	r.logf("calibrating thresholds for %s (full product, %d entries)...", ds.profile.Name, total)
	start := time.Now()
	heap := topk.New(maxLevel)
	for i := 0; i < ds.q.N(); i++ {
		qi := ds.q.Vec(i)
		for j := 0; j < ds.p.N(); j++ {
			heap.Push(j, vecmath.Dot(qi, ds.p.Vec(j)))
		}
	}
	ds.naiveTime = time.Since(start)
	items := heap.Items() // sorted by decreasing value
	ds.thetas = make(map[int]float64, len(r.levels()))
	for _, l := range r.levels() {
		idx := l - 1
		if idx >= len(items) {
			idx = len(items) - 1
		}
		if idx < 0 {
			continue
		}
		// Center θ in the gap below the level-th value so that
		// last-ulp differences between the algorithms' inner-product
		// evaluation orders cannot move boundary entries across θ.
		v := items[idx].Value
		if idx+1 < len(items) {
			v = (v + items[idx+1].Value) / 2
		}
		if v > 0 {
			ds.thetas[l] = v
		} else {
			// The Above-θ problem requires θ > 0 (§2); drop levels
			// that reach into the non-positive entries at this
			// scale.
			r.logf("  level %d unusable at this scale (θ=%g ≤ 0)", l, v)
		}
	}
	r.logf("  naive pass: %v; θ@%v", ds.naiveTime.Round(time.Millisecond), ds.thetas)
}

// Measurement is one table cell: a (dataset, problem, method) timing with
// the paper's auxiliary columns.
type Measurement struct {
	Dataset    string
	Problem    string // "above@<level>" or "top<k>"
	Method     string
	Total      time.Duration // prep + tuning + retrieval (the paper's metric)
	Prep       time.Duration
	CandPerQ   float64
	Results    int64
	NumBuckets int // LEMP only
	Skipped    bool
}

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Verbose && r.cfg.Out != nil {
		fmt.Fprintf(r.cfg.Out, "# "+format+"\n", args...)
	}
}

// sortMeasurements orders rows for stable table output.
func sortMeasurements(ms []Measurement) {
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Dataset != ms[j].Dataset {
			return ms[i].Dataset < ms[j].Dataset
		}
		if ms[i].Problem != ms[j].Problem {
			return ms[i].Problem < ms[j].Problem
		}
		return ms[i].Method < ms[j].Method
	})
}
