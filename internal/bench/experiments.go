package bench

import (
	"fmt"
	"time"

	"lemp/internal/core"
)

// Experiment ids accepted by Run, in DESIGN.md's per-experiment index.
var ExperimentIDs = []string{
	"fig5", "fig6a", "fig6b", "fig7ab", "fig7cf",
	"table2", "table3", "table4", "table5", "table6",
	"cache", "tune", "kernels", "placement", "quant", "load", "bulk",
}

// Run executes one experiment by id ("all" runs every experiment) and
// prints its table(s) to cfg.Out. With Config.JSONDir set, each
// experiment's measurements are also written to
// <JSONDir>/BENCH_<id>.json so CI can archive trajectories across
// commits.
func (r *Runner) Run(id string) error {
	if id == "all" {
		for _, e := range ExperimentIDs {
			if err := r.Run(e); err != nil {
				return err
			}
		}
		return nil
	}
	before := len(r.collect)
	if err := r.run1(id); err != nil {
		return err
	}
	if r.cfg.JSONDir != "" {
		return r.writeJSON(id, r.collect[before:])
	}
	return nil
}

func (r *Runner) run1(id string) error {
	switch id {
	case "fig5":
		return r.fig5()
	case "fig6a":
		return r.fig6a()
	case "fig6b":
		return r.fig6b()
	case "fig7ab":
		return r.fig7ab()
	case "fig7cf":
		return r.fig7cf()
	case "table2":
		return r.table2()
	case "table3":
		return r.table3()
	case "table4":
		return r.table4()
	case "table5":
		return r.table5()
	case "table6":
		return r.table6()
	case "cache":
		return r.cacheAblation()
	case "tune":
		return r.tuneAblation()
	case "kernels":
		return r.kernels()
	case "placement":
		return r.placement()
	case "quant":
		return r.quantScreening()
	case "load":
		return r.servingLoad()
	case "bulk":
		return r.bulkThroughput()
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, ExperimentIDs)
	}
}

// fullMethodsAbove measures every standalone method plus LEMP-LI for one
// Above-θ cell.
func (r *Runner) fullMethodsAbove(ds *dataset, level int) []Measurement {
	if _, ok := ds.thetas[level]; !ok {
		r.logf("skipping %s above@%d: no positive θ at this scale", ds.profile.Name, level)
		return nil
	}
	ms := []Measurement{r.naiveAbove(ds, level)}
	if !r.cfg.Quick {
		ms = append(ms, r.dtreeAbove(ds, level))
	}
	ms = append(ms,
		r.treeAbove(ds, level),
		r.taAbove(ds, level),
		r.lempAbove(ds, level, core.AlgLI, core.Options{}),
	)
	return ms
}

func (r *Runner) fullMethodsTopK(ds *dataset, k int) []Measurement {
	ms := []Measurement{r.naiveTopK(ds, k)}
	if !r.cfg.Quick {
		ms = append(ms, r.dtreeTopK(ds, k))
	}
	ms = append(ms,
		r.treeTopK(ds, k),
		r.taTopK(ds, k),
		r.lempTopK(ds, k, core.AlgLI, core.Options{}),
	)
	return ms
}

// Figure 5: Above-θ @1K on the IE datasets, all methods.
func (r *Runner) fig5() error {
	r.header("Figure 5: Above-θ @1K total wall-clock times (IE datasets)")
	var ms []Measurement
	for _, name := range []string{"IE-NMF", "IE-SVD"} {
		ms = append(ms, r.fullMethodsAbove(r.get(name), 1000)...)
	}
	r.printComparison(ms, "LEMP-LI")
	return nil
}

// Figure 6a: Above-θ @1M on the IE datasets, all methods.
func (r *Runner) fig6a() error {
	r.header("Figure 6a: Above-θ @1M total wall-clock times (IE datasets)")
	level := 1000000
	if r.cfg.Quick {
		level = 100000
	}
	var ms []Measurement
	for _, name := range []string{"IE-NMF", "IE-SVD"} {
		ms = append(ms, r.fullMethodsAbove(r.get(name), level)...)
	}
	r.printComparison(ms, "LEMP-LI")
	return nil
}

// Figure 6b: Row-Top-1 on the transposed IE datasets, Netflix and KDD.
func (r *Runner) fig6b() error {
	r.header("Figure 6b: Row-Top-1 total wall-clock times")
	var ms []Measurement
	for _, name := range []string{"IE-NMFT", "IE-SVDT", "Netflix", "KDD"} {
		ms = append(ms, r.fullMethodsTopK(r.get(name), 1)...)
	}
	r.printComparison(ms, "LEMP-LI")
	return nil
}

// bucketAlgorithms lists the LEMP variants of §6.3 (Fig. 7, Tables 5–6).
func (r *Runner) bucketAlgorithms() []core.Algorithm {
	if r.cfg.Quick {
		return []core.Algorithm{core.AlgL, core.AlgLI, core.AlgI, core.AlgTA}
	}
	return core.Algorithms()
}

// bucketGridAbove measures (once) the Above-θ bucket-algorithm grid shared
// by Fig. 7a,b and Table 5.
func (r *Runner) bucketGridAbove() []Measurement {
	if ms, ok := r.grids["above"]; ok {
		return ms
	}
	var ms []Measurement
	for _, name := range []string{"IE-SVD", "IE-NMF"} {
		ds := r.get(name)
		for _, level := range r.levelsFor(ds) {
			for _, alg := range r.bucketAlgorithms() {
				ms = append(ms, r.lempAbove(ds, level, alg, core.Options{}))
			}
		}
	}
	r.grids["above"] = ms
	return ms
}

// bucketGridTopK measures (once) the Row-Top-k bucket-algorithm grid shared
// by Fig. 7c–f and Table 6.
func (r *Runner) bucketGridTopK() []Measurement {
	if ms, ok := r.grids["topk"]; ok {
		return ms
	}
	var ms []Measurement
	for _, name := range []string{"IE-SVDT", "IE-NMFT", "KDD", "Netflix"} {
		ds := r.get(name)
		for _, k := range r.ks() {
			for _, alg := range r.bucketAlgorithms() {
				ms = append(ms, r.lempTopK(ds, k, alg, core.Options{}))
			}
		}
	}
	r.grids["topk"] = ms
	return ms
}

// Figure 7a,b: bucket algorithms vs. result size (Above-θ, IE datasets).
func (r *Runner) fig7ab() error {
	r.header("Figure 7a,b: LEMP bucket algorithms, Above-θ (IE-SVD, IE-NMF)")
	r.printTable(r.bucketGridAbove())
	return nil
}

// Figure 7c–f: bucket algorithms vs. k (Row-Top-k, four datasets).
func (r *Runner) fig7cf() error {
	r.header("Figure 7c-f: LEMP bucket algorithms, Row-Top-k")
	r.printTable(r.bucketGridTopK())
	return nil
}

// Table 2: maximum preprocessing times (indexing + tuning).
func (r *Runner) table2() error {
	r.header("Table 2: preprocessing times (indexing + tuning), seconds")
	datasets := []string{"IE-NMF", "IE-SVD", "IE-NMFT", "IE-SVDT", "Netflix", "KDD"}
	fmt.Fprintf(r.cfg.Out, "%-10s %12s %12s %12s %12s\n", "Dataset", "LEMP", "TA", "Tree", "D-Tree")
	for _, name := range datasets {
		ds := r.get(name)
		lemp := r.lempPrepTime(ds)
		taP := r.taPrepTime(ds)
		treeP := r.treePrepTime(ds)
		var dtreeP time.Duration
		if !r.cfg.Quick {
			dtreeP = r.dtreePrepTime(ds)
		}
		fmt.Fprintf(r.cfg.Out, "%-10s %12s %12s %12s %12s\n",
			name, fmtDur(lemp), fmtDur(taP), fmtDur(treeP), fmtDur(dtreeP))
	}
	fmt.Fprintln(r.cfg.Out)
	return nil
}

// lempPrepTime measures LEMP's preprocessing the way the paper's Table 2
// does: bucketization plus tuning (which lazily builds the sorted-list
// indexes of every bucket the tuning sample reaches — buckets it never
// reaches would also never be indexed by a real run).
func (r *Runner) lempPrepTime(ds *dataset) time.Duration {
	ix, err := core.NewIndex(ds.p, core.Options{})
	if err != nil {
		panic(err)
	}
	// Tuning requires a retrieval call; use Row-Top-1 on a small prefix
	// of the queries so retrieval is negligible but tuning is measured.
	sample := ds.q.Head(min(ds.q.N(), 64))
	_, st, err := ix.RowTopK(sample, 1)
	if err != nil {
		panic(err)
	}
	return st.PrepTime + st.TuneTime
}

func (r *Runner) taPrepTime(ds *dataset) time.Duration {
	return timeOf(func() { r.discardTA(ds) })
}

func (r *Runner) discardTA(ds *dataset) { benchSink = taIndexEntries(ds) }

func (r *Runner) treePrepTime(ds *dataset) time.Duration {
	var d time.Duration
	d = timeOf(func() { benchSink = treeNodes(ds) })
	return d
}

func (r *Runner) dtreePrepTime(ds *dataset) time.Duration {
	return timeOf(func() { benchSink = dualNodes(ds) })
}

// Table 3: LEMP vs. the full methods for Above-θ on the IE datasets.
func (r *Runner) table3() error {
	r.header("Table 3: Above-θ comparison (time; avg candidates/query)")
	var ms []Measurement
	for _, name := range []string{"IE-SVD", "IE-NMF"} {
		ds := r.get(name)
		for _, level := range r.levelsFor(ds) {
			ms = append(ms, r.fullMethodsAbove(ds, level)...)
		}
	}
	r.printTable(ms)
	return nil
}

// Table 4: LEMP vs. the full methods for Row-Top-k.
func (r *Runner) table4() error {
	r.header("Table 4: Row-Top-k comparison (time; avg candidates/query)")
	var ms []Measurement
	for _, name := range []string{"IE-SVDT", "IE-NMFT", "Netflix", "KDD"} {
		ds := r.get(name)
		for _, k := range r.ks() {
			ms = append(ms, r.fullMethodsTopK(ds, k)...)
		}
	}
	r.printTable(ms)
	return nil
}

// Table 5: all bucket algorithms for Above-θ — the same runs as Fig. 7a,b
// (the paper's Table 5 tabulates the Fig. 7 experiments).
func (r *Runner) table5() error {
	r.header("Table 5: LEMP bucket algorithms, Above-θ (time; candidates/query)")
	r.printTable(r.bucketGridAbove())
	return nil
}

// Table 6: all bucket algorithms for Row-Top-k — the same runs as Fig. 7c–f.
func (r *Runner) table6() error {
	r.header("Table 6: LEMP bucket algorithms, Row-Top-k (time; candidates/query)")
	r.printTable(r.bucketGridTopK())
	return nil
}

// cacheAblation reproduces §6.2's caching-effects study: cache-aware vs.
// cache-oblivious bucketization on the low-skew KDD profile. The aware
// variant uses a 256 KiB per-bucket budget — a realistic per-core L2, and
// small enough to bind at this dataset scale the way the paper's default
// binds at 624K probe vectors (26 vs. 403 buckets there).
func (r *Runner) cacheAblation() error {
	r.header("§6.2 caching effects: cache-aware vs. cache-oblivious bucketization (KDD, Row-Top-10)")
	ds := r.get("KDD")
	aware := r.lempTopK(ds, 10, core.AlgLI, core.Options{CacheBytes: 256 << 10})
	oblivious := r.lempTopK(ds, 10, core.AlgLI, core.Options{CacheBytes: -1})
	fmt.Fprintf(r.cfg.Out, "%-16s %10s %10s\n", "Variant", "Buckets", "Total")
	fmt.Fprintf(r.cfg.Out, "%-16s %10d %10s\n", "cache-aware", aware.NumBuckets, fmtDur(aware.Total))
	fmt.Fprintf(r.cfg.Out, "%-16s %10d %10s\n", "cache-oblivious", oblivious.NumBuckets, fmtDur(oblivious.Total))
	fmt.Fprintf(r.cfg.Out, "speedup of cache-aware: %.2fx\n\n",
		float64(oblivious.Total)/float64(aware.Total))
	return nil
}

// tuneAblation compares tuned φ_b/t_b against fixed settings (§4.4).
func (r *Runner) tuneAblation() error {
	r.header("§4.4 ablation: tuned φ_b/t_b vs fixed φ (IE-SVDT, Row-Top-10; IE-SVD, Above-θ@10K)")
	dsT := r.get("IE-SVDT")
	ds := r.get("IE-SVD")
	var ms []Measurement
	tuned := r.lempTopK(dsT, 10, core.AlgLI, core.Options{})
	tuned.Method = "LEMP-LI(tuned)"
	ms = append(ms, tuned)
	for _, phi := range []int{1, 2, 3, 5} {
		m := r.lempTopK(dsT, 10, core.AlgI, core.Options{Phi: phi})
		m.Method = fmt.Sprintf("LEMP-I(φ=%d)", phi)
		ms = append(ms, m)
	}
	// Use the deepest calibrated level not exceeding @10K (at tiny
	// scales deeper levels have no positive θ).
	level := 0
	for _, l := range r.levelsFor(ds) {
		if l <= 10000 {
			level = l
		}
	}
	if level > 0 {
		tunedA := r.lempAbove(ds, level, core.AlgLI, core.Options{})
		tunedA.Method = "LEMP-LI(tuned)"
		ms = append(ms, tunedA)
		for _, phi := range []int{1, 2, 3, 5} {
			m := r.lempAbove(ds, level, core.AlgI, core.Options{Phi: phi})
			m.Method = fmt.Sprintf("LEMP-I(φ=%d)", phi)
			ms = append(ms, m)
		}
	}
	r.printTable(ms)
	return nil
}

func timeOf(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// benchSink defeats dead-code elimination of timed construction work.
var benchSink int

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
