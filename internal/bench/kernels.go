package bench

import (
	"fmt"
	"math/rand"
	"time"

	"lemp/internal/vecmath"
)

// Verification-kernel experiment: scalar (one Dot per candidate) versus the
// blocked panel kernels that internal/core's verifier runs on, across the
// dimensionality regimes the library targets and both candidate layouts the
// verifier distinguishes — a contiguous run (LENGTH's prefix, evaluated
// with DotBatch) and a strided subset (coordinate-method survivors,
// evaluated with Dot8/Dot4 blocks). This is the microscopic view of the
// speedup the BenchmarkVerify* benchmarks in internal/core measure at the
// retrieval layer.

// kernelRows is the bucket size the kernel experiment verifies against —
// large enough to amortize timing overhead, small enough to stay
// cache-resident like a real LEMP bucket.
const kernelRows = 1024

// kernels measures and prints the scalar vs blocked verification
// throughput grid.
func (r *Runner) kernels() error {
	r.header("verification kernels (scalar vs blocked)")
	fmt.Fprintf(r.cfg.Out, "\n%-22s %12s %12s %8s\n", "kernel", "scalar", "blocked", "speedup")
	for _, dim := range []int{16, 64, 256} {
		for _, layout := range []string{"contiguous", "strided"} {
			scalar, blocked := measureKernelPair(dim, layout == "strided")
			fmt.Fprintf(r.cfg.Out, "r=%-4d %-15s %12s %12s %7.2fx\n",
				dim, layout, fmtDur(scalar), fmtDur(blocked),
				float64(scalar)/float64(blocked))
		}
	}
	fmt.Fprintln(r.cfg.Out)
	return nil
}

// measureKernelPair times one (dimension, layout) cell, best of several
// rounds so scheduler noise does not pollute the printed ratio.
func measureKernelPair(dim int, strided bool) (scalar, blocked time.Duration) {
	rng := rand.New(rand.NewSource(int64(dim)))
	q := make([]float64, dim)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	panel := make([]float64, kernelRows*dim)
	for i := range panel {
		panel[i] = rng.NormFloat64()
	}
	var cand []int32
	if strided {
		for lid := int32(0); lid < kernelRows; lid++ {
			if rng.Intn(2) == 0 {
				cand = append(cand, lid)
			}
		}
	} else {
		for lid := int32(0); lid < kernelRows; lid++ {
			cand = append(cand, lid)
		}
	}
	out := make([]float64, len(cand))
	row := func(lid int32) []float64 { return panel[int(lid)*dim : (int(lid)+1)*dim] }

	scalarPass := func() {
		for j, lid := range cand {
			out[j] = vecmath.Dot(q, row(lid))
		}
	}
	blockedPass := func() {
		if !strided {
			vecmath.DotBatch(q, panel[:len(cand)*dim], out)
			return
		}
		j := 0
		for ; j+8 <= len(cand); j += 8 {
			vecmath.Dot8(q, row(cand[j]), row(cand[j+1]), row(cand[j+2]), row(cand[j+3]),
				row(cand[j+4]), row(cand[j+5]), row(cand[j+6]), row(cand[j+7]),
				(*[8]float64)(out[j:j+8]))
		}
		for ; j+4 <= len(cand); j += 4 {
			vecmath.Dot4(q, row(cand[j]), row(cand[j+1]), row(cand[j+2]), row(cand[j+3]),
				(*[4]float64)(out[j:j+4]))
		}
		for ; j < len(cand); j++ {
			out[j] = vecmath.Dot(q, row(cand[j]))
		}
	}

	reps := 1 + (1<<22)/(len(cand)*dim+1) // ~4M elements per timed round
	scalar, blocked = time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			scalarPass()
		}
		if d := time.Since(start) / time.Duration(reps); d < scalar {
			scalar = d
		}
		start = time.Now()
		for i := 0; i < reps; i++ {
			blockedPass()
		}
		if d := time.Since(start) / time.Duration(reps); d < blocked {
			blocked = d
		}
	}
	return scalar, blocked
}
