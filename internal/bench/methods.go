package bench

import (
	"context"
	"fmt"
	"time"

	"lemp/internal/core"
	"lemp/internal/covertree"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
	"lemp/internal/ta"
)

// Method runners. Each measures one (dataset, problem, method) cell:
// total wall-clock including index construction and tuning — the metric of
// Figs. 5–7 and Tables 3–6. Results are discarded through a counting sink.

func discard(count *int64) retrieval.Sink {
	return func(retrieval.Entry) { *count++ }
}

// --- Naive ---------------------------------------------------------------

func (r *Runner) naiveAbove(ds *dataset, level int) Measurement {
	// The calibration pass already performed exactly this computation;
	// its timing is reused rather than burning another full product.
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemAbove(level), Method: "Naive",
		Total: ds.naiveTime, CandPerQ: float64(ds.p.N()), Results: int64(level),
	}
}

func (r *Runner) naiveTopK(ds *dataset, k int) Measurement {
	start := time.Now()
	_, st := naive.RowTopK(ds.q, ds.p, k)
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemTopK(k), Method: "Naive",
		Total: time.Since(start), CandPerQ: float64(ds.p.N()), Results: st.Results,
	}
}

// --- Standalone TA -------------------------------------------------------

func (r *Runner) taAbove(ds *dataset, level int) Measurement {
	start := time.Now()
	ix := ta.NewIndex(ds.p)
	var n int64
	st := ix.AboveTheta(ds.q, ds.thetas[level], discard(&n))
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemAbove(level), Method: "TA",
		Total: time.Since(start), Prep: st.PrepTime,
		CandPerQ: perQuery(st.Candidates, st.Queries), Results: st.Results,
	}
}

func (r *Runner) taTopK(ds *dataset, k int) Measurement {
	start := time.Now()
	ix := ta.NewIndex(ds.p)
	_, st := ix.RowTopK(ds.q, k)
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemTopK(k), Method: "TA",
		Total: time.Since(start), Prep: st.PrepTime,
		CandPerQ: perQuery(st.Candidates, st.Queries), Results: st.Results,
	}
}

// --- Single cover tree ---------------------------------------------------

func (r *Runner) treeAbove(ds *dataset, level int) Measurement {
	start := time.Now()
	tree := covertree.Build(ds.p, covertree.DefaultBase)
	var n int64
	st := tree.AboveTheta(ds.q, ds.thetas[level], discard(&n))
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemAbove(level), Method: "Tree",
		Total: time.Since(start), Prep: st.PrepTime,
		CandPerQ: perQuery(st.Candidates, st.Queries), Results: st.Results,
	}
}

func (r *Runner) treeTopK(ds *dataset, k int) Measurement {
	start := time.Now()
	tree := covertree.Build(ds.p, covertree.DefaultBase)
	_, st := tree.RowTopK(ds.q, k)
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemTopK(k), Method: "Tree",
		Total: time.Since(start), Prep: st.PrepTime,
		CandPerQ: perQuery(st.Candidates, st.Queries), Results: st.Results,
	}
}

// --- Dual cover tree -----------------------------------------------------

func (r *Runner) dtreeAbove(ds *dataset, level int) Measurement {
	start := time.Now()
	dual := covertree.NewDual(ds.q, ds.p, covertree.DefaultBase)
	var n int64
	st := dual.AboveTheta(ds.thetas[level], discard(&n))
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemAbove(level), Method: "D-Tree",
		Total: time.Since(start), Prep: st.PrepTime,
		CandPerQ: perQuery(st.Candidates, st.Queries), Results: st.Results,
	}
}

func (r *Runner) dtreeTopK(ds *dataset, k int) Measurement {
	start := time.Now()
	dual := covertree.NewDual(ds.q, ds.p, covertree.DefaultBase)
	_, st := dual.RowTopK(k)
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemTopK(k), Method: "D-Tree",
		Total: time.Since(start), Prep: st.PrepTime,
		CandPerQ: perQuery(st.Candidates, st.Queries), Results: st.Results,
	}
}

// --- LEMP ----------------------------------------------------------------

func (r *Runner) lempAbove(ds *dataset, level int, alg core.Algorithm, opts core.Options) Measurement {
	start := time.Now()
	ix, err := core.NewIndex(ds.p, opts)
	if err != nil {
		panic(err)
	}
	var n int64
	// The algorithm is a per-call execution policy on the shared options,
	// exercising the same RunOptions path the serving layer uses.
	st, err := ix.AboveThetaCtx(context.Background(), ds.q, ds.thetas[level], discard(&n), core.RunOptions{Algorithm: &alg})
	if err != nil {
		panic(err)
	}
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemAbove(level), Method: "LEMP-" + alg.String(),
		Total: time.Since(start), Prep: st.PrepTime + st.TuneTime,
		CandPerQ: st.CandidatesPerQuery(), Results: st.Results, NumBuckets: st.Buckets,
	}
}

func (r *Runner) lempTopK(ds *dataset, k int, alg core.Algorithm, opts core.Options) Measurement {
	start := time.Now()
	ix, err := core.NewIndex(ds.p, opts)
	if err != nil {
		panic(err)
	}
	_, st, err := ix.RowTopKCtx(context.Background(), ds.q, k, core.RunOptions{Algorithm: &alg})
	if err != nil {
		panic(err)
	}
	return Measurement{
		Dataset: ds.profile.Name, Problem: problemTopK(k), Method: "LEMP-" + alg.String(),
		Total: time.Since(start), Prep: st.PrepTime + st.TuneTime,
		CandPerQ: st.CandidatesPerQuery(), Results: st.Results, NumBuckets: st.Buckets,
	}
}

func problemAbove(level int) string { return fmt.Sprintf("above@%s", siCount(level)) }
func problemTopK(k int) string      { return fmt.Sprintf("top%d", k) }

func siCount(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func perQuery(cands int64, queries int) float64 {
	if queries == 0 {
		return 0
	}
	return float64(cands) / float64(queries)
}
