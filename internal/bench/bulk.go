package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"lemp/internal/bulk"
	"lemp/internal/core"
	"lemp/internal/data"
	"lemp/internal/retrieval"
)

// The bulk experiment measures what the offline engine buys over driving
// the serving path row by row: one tuning pass for the whole job instead
// of one per call, panel-level batching of per-call overheads, and dynamic
// panel claiming across all cores. Both sides compute identical results —
// the measurement cross-checks every row against the serving answers
// before reporting a number.

// bulkRun is one measured configuration of the bulk comparison.
type bulkRun struct {
	method  string
	wall    time.Duration
	rowsSec float64
}

// bulkComparison runs the serving loop and the bulk engine on the Smoke
// catalog and returns (measurements, bulk-vs-serving speedup). The bulk
// job runs FIRST so it pays the lazy per-bucket index builds and the
// serving loop inherits them — the conservative ordering for a guard.
func bulkComparison(parallel int) ([]bulkRun, float64, error) {
	q, p := data.Smoke.Generate()
	ix, err := core.NewIndex(p, core.Options{})
	if err != nil {
		return nil, 0, err
	}
	const k = 10
	dir, err := os.MkdirTemp("", "lemp-bulk-bench")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)

	out := filepath.Join(dir, "smoke.lempbrs")
	st, err := bulk.Run(context.Background(), ix, bulk.Matrix{M: q}, out, bulk.Config{
		K: k, PanelRows: 64, Parallelism: parallel,
	})
	if err != nil {
		return nil, 0, err
	}
	res, err := bulk.ReadResults(out)
	if err != nil {
		return nil, 0, err
	}

	// The serving loop: one Retrieve-equivalent call per row, tuning and
	// all, exactly what a caller without the bulk engine would write.
	want := make(retrieval.TopK, q.N())
	seqStart := time.Now()
	for i := 0; i < q.N(); i++ {
		rows, _, err := ix.RowTopKCtx(context.Background(), q.Slice(i, i+1), k, core.RunOptions{Parallelism: 1})
		if err != nil {
			return nil, 0, err
		}
		want[i] = rows[0]
	}
	seq := time.Since(seqStart)

	// Cross-check: the bulk file must hold exactly the serving answers.
	for i, row := range want {
		for j := range row {
			row[j].Query = i
		}
		bulk.CanonicalizeTopK(row)
		if !reflect.DeepEqual(res.Rows[i], row) {
			return nil, 0, fmt.Errorf("bulk row %d differs from serving path: %v vs %v", i, res.Rows[i], row)
		}
	}

	rows := float64(q.N())
	runs := []bulkRun{
		{method: "per-row-serve", wall: seq, rowsSec: rows / seq.Seconds()},
		{method: fmt.Sprintf("bulk(p=%d)", parallel), wall: st.Wall, rowsSec: st.RowsPerSec()},
	}
	return runs, seq.Seconds() / st.Wall.Seconds(), nil
}

// bulkThroughput is the "bulk" experiment: the serving loop against the
// bulk engine single-threaded and at full parallelism.
func (r *Runner) bulkThroughput() error {
	r.header("Bulk top-k engine: tiled panels vs per-row serving loop (Smoke, Row-Top-10)")
	parallels := []int{1, runtime.NumCPU()}
	if parallels[1] == 1 {
		parallels = parallels[:1]
	}
	var ms []Measurement
	for _, par := range parallels {
		runs, speedup, err := bulkComparison(par)
		if err != nil {
			return err
		}
		for _, run := range runs {
			fmt.Fprintf(r.cfg.Out, "  %-16s %12s  (%8.0f rows/s)\n", run.method, fmtDur(run.wall), run.rowsSec)
			ms = append(ms, Measurement{
				Dataset: "Smoke",
				Problem: "top10",
				Method:  run.method,
				Total:   run.wall,
			})
		}
		fmt.Fprintf(r.cfg.Out, "  -> bulk(p=%d) speedup over per-row serving: %.1fx (results cross-checked)\n", par, speedup)
	}
	fmt.Fprintln(r.cfg.Out)
	r.record(ms)
	return nil
}
