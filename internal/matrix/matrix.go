// Package matrix defines the factor-matrix type shared by all LEMP
// components.
//
// The paper works with tall-and-skinny factor matrices Q (r×m) and P (r×n)
// whose columns are query and probe vectors. This package stores one matrix
// as n contiguous vectors of dimension r, i.e. the paper's column j is
// Vec(j). Contiguous storage keeps inner products cache-friendly and lets
// buckets alias sub-ranges without copying.
package matrix

import (
	"errors"
	"fmt"
	"math/rand"

	"lemp/internal/vecmath"
)

// Matrix is a collection of n vectors of fixed dimension r. The zero value
// is an empty matrix of rank 0.
type Matrix struct {
	r    int
	data []float64
}

// New returns an r-dimensional matrix with n zero vectors.
func New(r, n int) *Matrix {
	if r < 0 || n < 0 {
		panic("matrix: negative dimension")
	}
	return &Matrix{r: r, data: make([]float64, r*n)}
}

// FromVectors builds a matrix from the given vectors, which must all have
// equal length. The vectors are copied.
func FromVectors(vs [][]float64) (*Matrix, error) {
	if len(vs) == 0 {
		return &Matrix{}, nil
	}
	r := len(vs[0])
	m := New(r, len(vs))
	for i, v := range vs {
		if len(v) != r {
			return nil, fmt.Errorf("matrix: vector %d has dimension %d, want %d", i, len(v), r)
		}
		copy(m.Vec(i), v)
	}
	return m, nil
}

// FromData wraps an existing backing slice holding n vectors of dimension r.
// The slice is used directly (not copied); len(data) must equal r*n.
func FromData(r, n int, data []float64) (*Matrix, error) {
	if r < 0 || n < 0 {
		return nil, errors.New("matrix: negative dimension")
	}
	if len(data) != r*n {
		return nil, fmt.Errorf("matrix: data length %d does not match %d×%d", len(data), r, n)
	}
	return &Matrix{r: r, data: data}, nil
}

// R returns the vector dimension (the paper's rank r).
func (m *Matrix) R() int { return m.r }

// N returns the number of vectors (the paper's m for queries, n for probes).
func (m *Matrix) N() int {
	if m.r == 0 {
		return 0
	}
	return len(m.data) / m.r
}

// Vec returns vector i as a slice aliasing the matrix storage.
func (m *Matrix) Vec(i int) []float64 {
	return m.data[i*m.r : (i+1)*m.r : (i+1)*m.r]
}

// Data returns the backing slice (vectors stored contiguously).
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{r: m.r, data: make([]float64, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Head returns a matrix aliasing the first n vectors of m.
func (m *Matrix) Head(n int) *Matrix {
	if n > m.N() {
		panic("matrix: Head beyond matrix size")
	}
	return &Matrix{r: m.r, data: m.data[:n*m.r]}
}

// Slice returns a matrix aliasing vectors [i, j) of m. Shards of a probe
// matrix share storage with the original.
func (m *Matrix) Slice(i, j int) *Matrix {
	if i < 0 || j < i || j > m.N() {
		panic(fmt.Sprintf("matrix: Slice [%d,%d) out of range [0,%d)", i, j, m.N()))
	}
	return &Matrix{r: m.r, data: m.data[i*m.r : j*m.r : j*m.r]}
}

// Lengths returns the Euclidean norms of all vectors.
func (m *Matrix) Lengths() []float64 {
	out := make([]float64, m.N())
	for i := range out {
		out[i] = vecmath.Norm(m.Vec(i))
	}
	return out
}

// Product computes the full product entry [QᵀP]ij = qᵢᵀpⱼ for this matrix
// as Q and the argument as P. It exists for small-scale testing; the whole
// point of LEMP is to avoid calling this at scale.
func (m *Matrix) Product(p *Matrix, i, j int) float64 {
	return vecmath.Dot(m.Vec(i), p.Vec(j))
}

// FillRandom fills the matrix with independent N(0,1) entries drawn from rng.
func (m *Matrix) FillRandom(rng *rand.Rand) {
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
}
