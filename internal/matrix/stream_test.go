package matrix

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestPanelReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New(7, 103)
	m.FillRandom(rng)
	path := filepath.Join(t.TempDir(), "q.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	pr, err := OpenPanelReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if pr.R() != 7 || pr.N() != 103 {
		t.Fatalf("got %d×%d, want 7×103", pr.R(), pr.N())
	}
	for _, span := range [][2]int{{0, 103}, {0, 1}, {102, 1}, {40, 13}, {0, 0}, {103, 0}} {
		panel, err := pr.Panel(span[0], span[1])
		if err != nil {
			t.Fatalf("Panel(%d,%d): %v", span[0], span[1], err)
		}
		want := m.Slice(span[0], span[0]+span[1])
		if !reflect.DeepEqual(panel.Data(), want.Data()) {
			t.Fatalf("Panel(%d,%d) data mismatch", span[0], span[1])
		}
	}
	// Concurrent panel reads (the bulk worker-pool pattern).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				start := (w*13 + i*7) % 90
				panel, err := pr.Panel(start, 10)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(panel.Data(), m.Slice(start, start+10).Data()) {
					t.Errorf("concurrent Panel(%d,10) mismatch", start)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPanelReaderRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(4, 9)
	m.FillRandom(rng)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncated payload: header claims more than the file holds.
	if _, err := NewPanelReader(bytes.NewReader(good[:len(good)-8]), int64(len(good)-8)); err == nil {
		t.Error("truncated input accepted")
	}
	// Trailing garbage: size larger than the header implies.
	padded := append(append([]byte{}, good...), 0, 0, 0, 0)
	if _, err := NewPanelReader(bytes.NewReader(padded), int64(len(padded))); err == nil {
		t.Error("oversized input accepted")
	}
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := NewPanelReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Error("bad magic accepted")
	}
	// Out-of-range panels.
	pr, err := NewPanelReader(bytes.NewReader(good), int64(len(good)))
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range [][2]int{{-1, 2}, {0, 10}, {9, 1}, {5, -1}} {
		if _, err := pr.Panel(span[0], span[1]); err == nil {
			t.Errorf("Panel(%d,%d) accepted", span[0], span[1])
		}
	}
}
