package matrix

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.R() != 3 || m.N() != 4 || len(m.Data()) != 12 {
		t.Fatalf("R=%d N=%d len=%d", m.R(), m.N(), len(m.Data()))
	}
	copy(m.Vec(2), []float64{1, 2, 3})
	if m.Data()[6] != 1 || m.Data()[8] != 3 {
		t.Errorf("Vec aliasing broken: %v", m.Data())
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := New(0, 0)
	if m.N() != 0 {
		t.Errorf("empty N=%d", m.N())
	}
	var zero Matrix
	if zero.N() != 0 || zero.R() != 0 {
		t.Errorf("zero value: R=%d N=%d", zero.R(), zero.N())
	}
}

func TestFromVectors(t *testing.T) {
	m, err := FromVectors([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.R() != 2 || m.N() != 3 || m.Vec(1)[1] != 4 {
		t.Errorf("unexpected contents")
	}
	if _, err := FromVectors([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged input accepted")
	}
	e, err := FromVectors(nil)
	if err != nil || e.N() != 0 {
		t.Errorf("nil input: %v %d", err, e.N())
	}
}

func TestFromData(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m, err := FromData(3, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Vec(1)[0] != 4 {
		t.Error("wrong layout")
	}
	if _, err := FromData(3, 3, data); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromData(-1, 2, data); err == nil {
		t.Error("negative dimension accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2)
	m.Vec(0)[0] = 7
	c := m.Clone()
	c.Vec(0)[0] = 9
	if m.Vec(0)[0] != 7 {
		t.Error("clone shares storage")
	}
}

func TestHead(t *testing.T) {
	m := New(2, 5)
	for i := 0; i < 5; i++ {
		m.Vec(i)[0] = float64(i)
	}
	h := m.Head(3)
	if h.N() != 3 || h.Vec(2)[0] != 2 {
		t.Errorf("Head wrong: N=%d", h.N())
	}
	defer func() {
		if recover() == nil {
			t.Error("Head beyond size did not panic")
		}
	}()
	m.Head(6)
}

func TestLengthsAndProduct(t *testing.T) {
	m, _ := FromVectors([][]float64{{3, 4}, {0, 0}})
	l := m.Lengths()
	if l[0] != 5 || l[1] != 0 {
		t.Errorf("lengths %v", l)
	}
	p, _ := FromVectors([][]float64{{1, 1}})
	if v := m.Product(p, 0, 0); v != 7 {
		t.Errorf("product %g", v)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(7, 33)
	m.FillRandom(rng)
	m.Vec(5)[3] = math.Inf(1) // exact float64 round-trip, even specials
	m.Vec(6)[0] = -0.0
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.R() != m.R() || got.N() != m.N() {
		t.Fatalf("dims %dx%d", got.R(), got.N())
	}
	for i, x := range m.Data() {
		y := got.Data()[i]
		if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
			t.Fatalf("entry %d: %g != %g", i, x, y)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a matrix at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("LEMPMAT1")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(5, 17)
	m.FillRandom(rng)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range m.Data() {
		if got.Data()[i] != x {
			t.Fatalf("entry %d: %g != %g", i, got.Data()[i], x)
		}
	}
}

func TestCSVSkipsBlankAndRejectsBadFields(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n"))
	if err != nil || m.N() != 2 {
		t.Fatalf("blank-line parse: %v, N=%d", err, m.N())
	}
	if _, err := ReadCSV(strings.NewReader("1,zebra\n")); err == nil {
		t.Error("bad field accepted")
	}
}

func TestComputeStats(t *testing.T) {
	m, _ := FromVectors([][]float64{{3, 4}, {0, 5}, {0, 0}})
	s := ComputeStats(m)
	if s.N != 3 || s.R != 2 {
		t.Errorf("dims in stats: %+v", s)
	}
	wantMean := (5.0 + 5.0 + 0.0) / 3
	if math.Abs(s.LengthMean-wantMean) > 1e-12 {
		t.Errorf("mean %g want %g", s.LengthMean, wantMean)
	}
	if s.MinLength != 0 || s.MaxLength != 5 {
		t.Errorf("min/max %g/%g", s.MinLength, s.MaxLength)
	}
	if math.Abs(s.NonZero-0.5) > 1e-12 { // 3 of 6 entries non-zero
		t.Errorf("nonzero %g", s.NonZero)
	}
	if s.LengthCoV <= 0 {
		t.Errorf("CoV %g", s.LengthCoV)
	}
	if z := ComputeStats(New(4, 0)); z.N != 0 || z.LengthCoV != 0 {
		t.Errorf("empty stats %+v", z)
	}
}

func TestLengthPercentile(t *testing.T) {
	m, _ := FromVectors([][]float64{{1, 0}, {2, 0}, {3, 0}, {4, 0}})
	if v := LengthPercentile(m, 0); v != 1 {
		t.Errorf("p0=%g", v)
	}
	if v := LengthPercentile(m, 100); v != 4 {
		t.Errorf("p100=%g", v)
	}
	if v := LengthPercentile(m, 50); math.Abs(v-2.5) > 1e-12 {
		t.Errorf("p50=%g", v)
	}
	if v := LengthPercentile(New(2, 0), 50); v != 0 {
		t.Errorf("empty percentile %g", v)
	}
}

func TestSlice(t *testing.T) {
	m := New(2, 5)
	for i := 0; i < 5; i++ {
		m.Vec(i)[0] = float64(i)
	}
	s := m.Slice(1, 4)
	if s.R() != 2 || s.N() != 3 {
		t.Fatalf("R=%d N=%d", s.R(), s.N())
	}
	if s.Vec(0)[0] != 1 || s.Vec(2)[0] != 3 {
		t.Errorf("contents: %v", s.Data())
	}
	s.Vec(0)[1] = 42
	if m.Vec(1)[1] != 42 {
		t.Errorf("Slice should alias the parent storage")
	}
	if got := m.Slice(2, 2).N(); got != 0 {
		t.Errorf("empty slice N=%d", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range Slice should panic")
		}
	}()
	m.Slice(3, 6)
}
