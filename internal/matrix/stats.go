package matrix

import (
	"math"
	"sort"
)

// Stats summarizes a factor matrix the way the paper's Table 1 does.
type Stats struct {
	N          int     // number of vectors
	R          int     // dimension
	LengthMean float64 // mean Euclidean length
	LengthCoV  float64 // coefficient of variation of lengths (std/mean)
	NonZero    float64 // fraction of non-zero entries, in [0,1]
	MinLength  float64
	MaxLength  float64
}

// ComputeStats returns summary statistics for m. An empty matrix yields the
// zero Stats value.
func ComputeStats(m *Matrix) Stats {
	s := Stats{N: m.N(), R: m.R()}
	if s.N == 0 {
		return s
	}
	lengths := m.Lengths()
	var sum, sumSq float64
	s.MinLength = math.Inf(1)
	for _, l := range lengths {
		sum += l
		sumSq += l * l
		if l < s.MinLength {
			s.MinLength = l
		}
		if l > s.MaxLength {
			s.MaxLength = l
		}
	}
	n := float64(s.N)
	s.LengthMean = sum / n
	variance := sumSq/n - s.LengthMean*s.LengthMean
	if variance < 0 {
		variance = 0
	}
	if s.LengthMean > 0 {
		s.LengthCoV = math.Sqrt(variance) / s.LengthMean
	}
	var nz int
	for _, x := range m.Data() {
		if x != 0 {
			nz++
		}
	}
	s.NonZero = float64(nz) / float64(len(m.Data()))
	return s
}

// LengthPercentile returns the p-th percentile (p in [0,100]) of the vector
// length distribution, using nearest-rank interpolation.
func LengthPercentile(m *Matrix, p float64) float64 {
	if m.N() == 0 {
		return 0
	}
	lengths := m.Lengths()
	sort.Float64s(lengths)
	if p <= 0 {
		return lengths[0]
	}
	if p >= 100 {
		return lengths[len(lengths)-1]
	}
	rank := p / 100 * float64(len(lengths)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return lengths[lo]
	}
	frac := rank - float64(lo)
	return lengths[lo]*(1-frac) + lengths[hi]*frac
}
