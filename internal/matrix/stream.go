package matrix

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
)

// PanelReader reads contiguous vector panels of a LEMPMAT1 matrix file
// without materializing the matrix: the bulk engine streams millions of
// query rows through an index in cache-sized panels, and only the panels
// currently being scanned are resident. Reads go through io.ReaderAt
// (pread), so concurrent Panel calls from a worker pool need no locking
// and share no state.
type PanelReader struct {
	ra     io.ReaderAt
	r, n   int
	closer io.Closer // set when the reader owns the underlying file
}

// lempmatHeaderLen is the LEMPMAT1 preamble: magic + r + n.
const lempmatHeaderLen = len(binaryMagic) + 8

// OpenPanelReader opens a LEMPMAT1 file for panel reads, validating the
// header against the file's actual size exactly like ReadBinary. Close the
// reader when done.
func OpenPanelReader(path string) (*PanelReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	pr, err := NewPanelReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	pr.closer = f
	return pr, nil
}

// NewPanelReader wraps an in-memory or file-backed LEMPMAT1 image of the
// given total size. The header is untrusted: dimensions are bounds- and
// overflow-checked and the implied payload must match size exactly.
func NewPanelReader(ra io.ReaderAt, size int64) (*PanelReader, error) {
	hdr := make([]byte, lempmatHeaderLen)
	if _, err := ra.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("matrix: reading header: %w", err)
	}
	if string(hdr[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("matrix: bad magic %q", hdr[:len(binaryMagic)])
	}
	r := int(binary.LittleEndian.Uint32(hdr[len(binaryMagic):]))
	n := int(binary.LittleEndian.Uint32(hdr[len(binaryMagic)+4:]))
	if r < 0 || n < 0 || r > 1<<20 || n > 1<<31 {
		return nil, fmt.Errorf("matrix: implausible dimensions %d×%d", r, n)
	}
	hi, lo := bits.Mul64(uint64(r), uint64(n))
	if hi != 0 || lo > uint64(math.MaxInt)/8 {
		return nil, fmt.Errorf("matrix: dimensions %d×%d overflow", r, n)
	}
	if want := int64(lempmatHeaderLen) + int64(lo)*8; want != size {
		return nil, fmt.Errorf("matrix: header claims %d×%d (%d bytes) but input holds %d bytes", r, n, want, size)
	}
	return &PanelReader{ra: ra, r: r, n: n}, nil
}

// R returns the vector dimension.
func (pr *PanelReader) R() int { return pr.r }

// N returns the number of vectors in the file.
func (pr *PanelReader) N() int { return pr.n }

// Panel reads vectors [start, start+count) into a fresh Matrix. Safe for
// concurrent use.
func (pr *PanelReader) Panel(start, count int) (*Matrix, error) {
	if start < 0 || count < 0 || start+count > pr.n {
		return nil, fmt.Errorf("matrix: panel [%d,%d) out of range [0,%d)", start, start+count, pr.n)
	}
	data := make([]float64, count*pr.r)
	off := int64(lempmatHeaderLen) + int64(start)*int64(pr.r)*8
	sr := io.NewSectionReader(pr.ra, off, int64(len(data))*8)
	if err := ReadFloat64sInto(sr, data); err != nil {
		return nil, fmt.Errorf("matrix: reading panel [%d,%d): %w", start, start+count, err)
	}
	return FromData(pr.r, count, data)
}

// Close releases the underlying file when the reader owns one.
func (pr *PanelReader) Close() error {
	if pr.closer != nil {
		return pr.closer.Close()
	}
	return nil
}
