package matrix

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// benchMatrix is sized like a mid-size probe snapshot section (64×10000,
// ~5 MB of float64 payload) so the write/read benchmarks measure bulk
// throughput rather than fixed header costs.
func benchMatrix() *Matrix {
	m := New(64, 10000)
	m.FillRandom(rand.New(rand.NewSource(7)))
	return m
}

func BenchmarkWriteBinary(b *testing.B) {
	m := benchMatrix()
	b.SetBytes(int64(len(m.Data()) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteBinary(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	m := benchMatrix()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(m.Data()) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
