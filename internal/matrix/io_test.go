package matrix

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"testing"
)

// craftedHeader builds a LEMPMAT1 header claiming r×n dimensions with no
// (or partial) data behind it.
func craftedHeader(r, n uint32, data []byte) []byte {
	buf := make([]byte, 0, 16+len(data))
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, r)
	buf = binary.LittleEndian.AppendUint32(buf, n)
	return append(buf, data...)
}

// nonSeekable hides the Seeker implementation of an underlying reader, so
// ReadBinary must take the incremental-allocation path.
type nonSeekable struct{ r io.Reader }

func (n nonSeekable) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestReadBinaryRejectsLyingHeaderSeekable(t *testing.T) {
	// 2^20 × 2^31 floats ≈ 16 PB claimed by a 16-byte file. bytes.Reader is
	// seekable, so the size check must reject it before any allocation.
	raw := craftedHeader(1<<20, 1<<31, nil)
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("huge claimed dimensions accepted from a 16-byte file")
	}
	// A merely-too-large claim on a seekable input fails the same way.
	raw = craftedHeader(4, 100, make([]byte, 8*8)) // claims 400 floats, has 8
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("seekable input shorter than claimed size accepted")
	}
}

func TestReadBinaryRejectsLyingHeaderStreaming(t *testing.T) {
	// Non-seekable: the reader cannot pre-validate the size, so it must
	// allocate incrementally and fail at the first missing byte.
	raw := craftedHeader(1<<20, 1<<31, nil)
	if _, err := ReadBinary(nonSeekable{bytes.NewReader(raw)}); err == nil {
		t.Fatal("huge claimed dimensions accepted from a streaming reader")
	}
	raw = craftedHeader(4, 100, make([]byte, 8*8))
	if _, err := ReadBinary(nonSeekable{bytes.NewReader(raw)}); err == nil {
		t.Fatal("streaming input shorter than claimed size accepted")
	}
}

func TestReadBinaryRejectsImplausibleDims(t *testing.T) {
	for _, hdr := range [][2]uint32{
		{1<<20 + 1, 1},       // r beyond the plausibility bound
		{1, math.MaxUint32},  // n beyond the plausibility bound
		{1 << 20, 1<<31 - 1}, // product implausibly large for any input
	} {
		raw := craftedHeader(hdr[0], hdr[1], nil)
		if _, err := ReadBinary(nonSeekable{bytes.NewReader(raw)}); err == nil {
			t.Errorf("dims %d×%d accepted", hdr[0], hdr[1])
		}
	}
}

func TestReadBinaryStreamingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(9, 100)
	m.FillRandom(rng)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(nonSeekable{&buf})
	if err != nil {
		t.Fatal(err)
	}
	if got.R() != m.R() || got.N() != m.N() {
		t.Fatalf("dims %d×%d", got.R(), got.N())
	}
	for i, x := range m.Data() {
		if got.Data()[i] != x {
			t.Fatalf("entry %d: %g != %g", i, got.Data()[i], x)
		}
	}
}

func TestFloat64sHelpersRoundTrip(t *testing.T) {
	// Cross the chunk boundary so both the full-chunk and tail paths run.
	vals := make([]float64, ioChunkFloats+137)
	rng := rand.New(rand.NewSource(4))
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := WriteFloat64s(&buf, vals); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(vals)*8 {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), len(vals)*8)
	}
	got, err := ReadFloat64s(bytes.NewReader(buf.Bytes()), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(vals))
	if err := ReadFloat64sInto(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] || dst[i] != vals[i] {
			t.Fatalf("value %d: %g / %g != %g", i, got[i], dst[i], vals[i])
		}
	}
	if _, err := ReadFloat64s(bytes.NewReader(buf.Bytes()), -1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := ReadFloat64s(bytes.NewReader(nil), 10); err == nil {
		t.Error("empty input satisfied a positive count")
	}
}

func TestInt32sHelpersRoundTrip(t *testing.T) {
	vals := make([]int32, ioChunkFloats+61)
	rng := rand.New(rand.NewSource(6))
	for i := range vals {
		vals[i] = int32(rng.Uint32())
	}
	var buf bytes.Buffer
	if err := WriteInt32s(&buf, vals); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(vals)*4 {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), len(vals)*4)
	}
	got, err := ReadInt32s(bytes.NewReader(buf.Bytes()), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d != %d", i, got[i], vals[i])
		}
	}
	if _, err := ReadInt32s(bytes.NewReader(buf.Bytes()), -1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := ReadInt32s(bytes.NewReader(nil), 10); err == nil {
		t.Error("empty input satisfied a positive count")
	}
}

// FuzzReadBinary feeds arbitrary bytes to the binary decoder: it must error
// on malformed input — never panic, and never allocate more than the input
// can back (a lying header on these small inputs would OOM the fuzz worker
// if the claimed size were allocated up front).
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	m := New(3, 5)
	m.FillRandom(rand.New(rand.NewSource(5)))
	_ = WriteBinary(&buf, m)
	f.Add(buf.Bytes())
	f.Add(craftedHeader(1<<20, 1<<31, nil))
	f.Add(craftedHeader(4, 100, make([]byte, 64)))
	f.Add([]byte(binaryMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Both the seekable and streaming paths must agree on accept/reject.
		mSeek, errSeek := ReadBinary(bytes.NewReader(raw))
		mStream, errStream := ReadBinary(nonSeekable{bytes.NewReader(raw)})
		if (errSeek == nil) != (errStream == nil) {
			t.Fatalf("seekable err=%v, streaming err=%v", errSeek, errStream)
		}
		if errSeek != nil {
			return
		}
		if mSeek.R() != mStream.R() || mSeek.N() != mStream.N() {
			t.Fatalf("dims disagree: %d×%d vs %d×%d", mSeek.R(), mSeek.N(), mStream.R(), mStream.N())
		}
	})
}
