// Package kmeans implements spherical k-means over vector directions, the
// substrate for the approximate Row-Top-k mode cited by the paper (§5,
// Koenigstein et al. [17]: cluster the query vectors and retrieve only for
// cluster centroids).
//
// Spherical k-means clusters unit vectors by cosine similarity: assignment
// maximizes q̄ᵀc, and each centroid update is the normalized mean of its
// members' directions. Vector lengths are ignored — for Row-Top-k they do
// not affect the ranking.
package kmeans

import (
	"math/rand"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// Result of a clustering run.
type Result struct {
	// Centroids holds k unit vectors (rank = input rank).
	Centroids *matrix.Matrix
	// Assign maps each input vector to its centroid index.
	Assign []int
	// Sizes counts members per centroid.
	Sizes []int
	// Iterations actually performed (≤ maxIter; stops at convergence).
	Iterations int
	// Objective is the final mean cosine of vectors to their centroid.
	Objective float64
}

// Spherical clusters the directions of m's vectors into k clusters. k is
// clamped to [1, n]. Zero vectors are assigned to cluster 0 and do not
// influence centroids. The run is deterministic in seed.
func Spherical(m *matrix.Matrix, k, maxIter int, seed int64) *Result {
	n := m.N()
	r := m.R()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter < 1 {
		maxIter = 10
	}
	res := &Result{
		Centroids: matrix.New(r, k),
		Assign:    make([]int, n),
		Sizes:     make([]int, k),
	}
	if n == 0 {
		return res
	}

	// Normalized copies of the inputs.
	dirs := matrix.New(r, n)
	lens := make([]float64, n)
	for i := 0; i < n; i++ {
		lens[i] = vecmath.Normalize(dirs.Vec(i), m.Vec(i))
	}

	rng := rand.New(rand.NewSource(seed))
	initPlusPlus(rng, dirs, lens, res.Centroids)

	sums := matrix.New(r, k)
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := assign(dirs, lens, res)
		update(dirs, lens, res, sums, rng)
		if !changed && iter > 0 {
			break
		}
	}
	// Final assignment against the final centroids, plus the objective.
	assign(dirs, lens, res)
	var obj float64
	var counted int
	for i := 0; i < n; i++ {
		if lens[i] == 0 {
			continue
		}
		obj += vecmath.Dot(dirs.Vec(i), res.Centroids.Vec(res.Assign[i]))
		counted++
	}
	if counted > 0 {
		res.Objective = obj / float64(counted)
	}
	return res
}

// initPlusPlus seeds centroids k-means++-style: the first uniformly among
// non-zero vectors, the rest proportional to angular distance (1 - cos) to
// the nearest chosen centroid.
func initPlusPlus(rng *rand.Rand, dirs *matrix.Matrix, lens []float64, centroids *matrix.Matrix) {
	n := dirs.N()
	k := centroids.N()
	nonzero := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if lens[i] > 0 {
			nonzero = append(nonzero, i)
		}
	}
	if len(nonzero) == 0 {
		// All-zero input: leave zero centroids; assignment is moot.
		return
	}
	first := nonzero[rng.Intn(len(nonzero))]
	copy(centroids.Vec(0), dirs.Vec(first))
	dist := make([]float64, len(nonzero)) // 1 - cos to the nearest centroid
	for j, i := range nonzero {
		dist[j] = 1 - vecmath.Dot(dirs.Vec(i), centroids.Vec(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = nonzero[rng.Intn(len(nonzero))]
		} else {
			x := rng.Float64() * total
			pick = nonzero[len(nonzero)-1]
			for j, d := range dist {
				x -= d
				if x <= 0 {
					pick = nonzero[j]
					break
				}
			}
		}
		copy(centroids.Vec(c), dirs.Vec(pick))
		for j, i := range nonzero {
			if d := 1 - vecmath.Dot(dirs.Vec(i), centroids.Vec(c)); d < dist[j] {
				dist[j] = d
			}
		}
	}
}

// assign maps every vector to its maximum-cosine centroid, returning
// whether any assignment changed. The centroid matrix is a contiguous row
// panel, so each vector's cosines against all centroids are one blocked
// DotBatch pass (bit-identical to the per-centroid Dot loop it replaces).
func assign(dirs *matrix.Matrix, lens []float64, res *Result) bool {
	changed := false
	k := res.Centroids.N()
	cos := make([]float64, k)
	for i := 0; i < dirs.N(); i++ {
		if lens[i] == 0 {
			if res.Assign[i] != 0 {
				res.Assign[i] = 0
				changed = true
			}
			continue
		}
		vecmath.DotBatch(dirs.Vec(i), res.Centroids.Data(), cos)
		best, bestCos := 0, cos[0]
		for c := 1; c < k; c++ {
			if cos[c] > bestCos {
				best, bestCos = c, cos[c]
			}
		}
		if res.Assign[i] != best {
			res.Assign[i] = best
			changed = true
		}
	}
	return changed
}

// update recomputes each centroid as the normalized mean of its members'
// directions; empty clusters are reseeded to a random non-zero vector.
func update(dirs *matrix.Matrix, lens []float64, res *Result, sums *matrix.Matrix, rng *rand.Rand) {
	k := res.Centroids.N()
	for i := range sums.Data() {
		sums.Data()[i] = 0
	}
	for c := range res.Sizes {
		res.Sizes[c] = 0
	}
	for i := 0; i < dirs.N(); i++ {
		if lens[i] == 0 {
			continue
		}
		c := res.Assign[i]
		res.Sizes[c]++
		sum := sums.Vec(c)
		for f, x := range dirs.Vec(i) {
			sum[f] += x
		}
	}
	for c := 0; c < k; c++ {
		if res.Sizes[c] == 0 || vecmath.Normalize(res.Centroids.Vec(c), sums.Vec(c)) == 0 {
			reseed(dirs, lens, res.Centroids.Vec(c), rng)
		}
	}
}

func reseed(dirs *matrix.Matrix, lens []float64, centroid []float64, rng *rand.Rand) {
	for attempt := 0; attempt < 32; attempt++ {
		i := rng.Intn(dirs.N())
		if lens[i] > 0 {
			copy(centroid, dirs.Vec(i))
			return
		}
	}
	// Pathological all-zero input: any direction works.
	for f := range centroid {
		centroid[f] = 0
	}
	if len(centroid) > 0 {
		centroid[0] = 1
	}
}
