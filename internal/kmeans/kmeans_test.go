package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// plantedClusters draws n vectors around k well-separated directions.
func plantedClusters(rng *rand.Rand, n, k, r int, noise float64) (*matrix.Matrix, []int) {
	centers := matrix.New(r, k)
	for c := 0; c < k; c++ {
		v := centers.Vec(c)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		vecmath.Normalize(v, v)
	}
	m := matrix.New(r, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		truth[i] = c
		v := m.Vec(i)
		for f := range v {
			v[f] = centers.Vec(c)[f] + noise*rng.NormFloat64()
		}
		vecmath.Scale(v, v, 0.5+rng.Float64()*3) // lengths must not matter
	}
	return m, truth
}

func TestRecoversPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	m, truth := plantedClusters(rng, 400, 5, 16, 0.05)
	res := Spherical(m, 5, 25, 7)
	// Same-cluster pairs must map to the same centroid (checking pairs
	// avoids label permutation issues).
	agree, total := 0, 0
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(400), rng.Intn(400)
		if truth[a] != truth[b] {
			continue
		}
		total++
		if res.Assign[a] == res.Assign[b] {
			agree++
		}
	}
	if total == 0 {
		t.Skip("no same-cluster pairs sampled")
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("same-cluster agreement %.2f, want ≥ 0.95", frac)
	}
	if res.Objective < 0.9 {
		t.Errorf("objective %.3f too low for near-duplicate clusters", res.Objective)
	}
}

func TestResultInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	m, _ := plantedClusters(rng, 150, 4, 8, 0.3)
	res := Spherical(m, 6, 15, 3)
	if res.Centroids.N() != 6 {
		t.Fatalf("%d centroids", res.Centroids.N())
	}
	sizes := make([]int, 6)
	for i, c := range res.Assign {
		if c < 0 || c >= 6 {
			t.Fatalf("vector %d assigned to %d", i, c)
		}
		sizes[c]++
	}
	for c := range sizes {
		if sizes[c] != res.Sizes[c] {
			t.Errorf("cluster %d size %d, recorded %d", c, sizes[c], res.Sizes[c])
		}
	}
	for c := 0; c < 6; c++ {
		n := vecmath.Norm(res.Centroids.Vec(c))
		if math.Abs(n-1) > 1e-9 {
			t.Errorf("centroid %d has norm %g", c, n)
		}
	}
	if res.Iterations < 1 || res.Iterations > 15 {
		t.Errorf("iterations %d", res.Iterations)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	m, _ := plantedClusters(rng, 100, 3, 6, 0.2)
	a := Spherical(m, 3, 10, 42)
	b := Spherical(m, 3, 10, 42)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestKClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	m, _ := plantedClusters(rng, 5, 2, 4, 0.1)
	res := Spherical(m, 100, 5, 1)
	if res.Centroids.N() != 5 {
		t.Errorf("k not clamped to n: %d centroids", res.Centroids.N())
	}
	res = Spherical(m, 0, 5, 1)
	if res.Centroids.N() != 1 {
		t.Errorf("k not clamped to 1: %d centroids", res.Centroids.N())
	}
}

func TestEmptyAndZeroInputs(t *testing.T) {
	res := Spherical(matrix.New(4, 0), 3, 5, 1)
	if len(res.Assign) != 0 {
		t.Error("empty input produced assignments")
	}
	// All-zero vectors: must not panic, everything in cluster 0.
	res = Spherical(matrix.New(4, 10), 2, 5, 1)
	for i, c := range res.Assign {
		if c != 0 {
			t.Errorf("zero vector %d assigned to %d", i, c)
		}
	}
}

func TestLengthInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	m, _ := plantedClusters(rng, 120, 4, 8, 0.1)
	scaled := m.Clone()
	for i := 0; i < scaled.N(); i++ {
		vecmath.Scale(scaled.Vec(i), scaled.Vec(i), 10*(1+rng.Float64()))
	}
	a := Spherical(m, 4, 12, 9)
	b := Spherical(scaled, 4, 12, 9)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("clustering depends on vector lengths")
		}
	}
}
