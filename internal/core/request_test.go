package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

// cancelFixture builds an index with several buckets (so mid-retrieval
// cancellation has bucket boundaries to hit) and a query matrix.
func cancelFixture(t *testing.T) (*Index, *matrix.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	p := genMatrix(rng, 600, 8, 0.6, 1, false, 0, 0)
	q := genMatrix(rng, 64, 8, 0.6, 1, false, 0, 0)
	ix, err := NewIndex(p, Options{MinBucketSize: 10, CacheBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBuckets() < 4 {
		t.Fatalf("fixture has %d buckets, want several", ix.NumBuckets())
	}
	return ix, q
}

func TestCancelBeforeStart(t *testing.T) {
	ix, q := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := ix.RowTopKCtx(ctx, q, 5, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RowTopKCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	var n int
	if _, err := ix.AboveThetaCtx(ctx, q, 0.5, func(retrieval.Entry) { n++ }, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AboveThetaCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := ix.RowTopKApproxCtx(ctx, q, 5, ApproxOptions{}, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RowTopKApproxCtx on canceled ctx: err = %v, want context.Canceled", err)
	}

	// The index stays fully usable: an uncanceled call answers identically
	// to a fresh index over the same probes.
	top, _, err := ix.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewIndex(ix.Probe(), ix.Options())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(top, want) {
		t.Fatal("post-cancel RowTopK differs from a fresh index")
	}
}

// TestCancelMidRetrieval cancels from inside the emit callback — a
// deterministic mid-scan cancellation point — and checks the call stops
// promptly (bounded by one bucket's worth of further emissions), reports
// context.Canceled, and leaves the index reusable.
func TestCancelMidRetrieval(t *testing.T) {
	ix, q := cancelFixture(t)
	theta := 0.2 // low threshold: many entries, many buckets survive

	var full int
	if _, err := ix.AboveTheta(q, theta, func(retrieval.Entry) { full++ }); err != nil {
		t.Fatal(err)
	}
	if full < 100 {
		t.Fatalf("fixture yields only %d entries; threshold too high for the test", full)
	}

	maxBucket := 0
	for _, b := range ix.scan {
		if b.size() > maxBucket {
			maxBucket = b.size()
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	_, err := ix.AboveThetaCtx(ctx, q, theta, func(retrieval.Entry) {
		emitted++
		if emitted == 10 {
			cancel()
		}
	}, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancel: err = %v, want context.Canceled", err)
	}
	// The checkpoint sits at every (bucket, query) boundary, so after the
	// cancel at entry 10 at most one further (bucket, query) pair — ≤ one
	// bucket of candidates — may still emit.
	if emitted > 10+maxBucket {
		t.Fatalf("call emitted %d entries after cancellation at 10 (max bucket %d)", emitted, maxBucket)
	}

	// Reusable afterwards, byte-identically.
	var again int
	if _, err := ix.AboveTheta(q, theta, func(retrieval.Entry) { again++ }); err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Fatalf("post-cancel run found %d entries, want %d", again, full)
	}
}

// TestCancelMidRetrievalParallel is the same mid-scan cancellation under
// worker fan-out: every worker must stop, the driver must report the
// context error, and the index must stay usable.
func TestCancelMidRetrievalParallel(t *testing.T) {
	ix, q := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := ix.AboveThetaCtx(ctx, q, 0.2, func(retrieval.Entry) {
		n++
		if n == 5 {
			cancel()
		}
	}, RunOptions{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel mid-scan cancel: err = %v, want context.Canceled", err)
	}
	if _, _, err := ix.RowTopKCtx(context.Background(), q, 3, RunOptions{Parallelism: 4}); err != nil {
		t.Fatalf("index unusable after parallel cancel: %v", err)
	}
}

func TestRunOptionsAlgorithmOverride(t *testing.T) {
	ix, q := cancelFixture(t)
	for _, alg := range []Algorithm{AlgL, AlgTA, AlgL2AP} {
		alg := alg
		got, _, err := ix.RowTopKCtx(context.Background(), q, 5, RunOptions{Algorithm: &alg})
		if err != nil {
			t.Fatalf("override %v: %v", alg, err)
		}
		opts := ix.Options()
		opts.Algorithm = alg
		fresh, err := NewIndex(ix.Probe(), opts)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := fresh.RowTopK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("per-call algorithm %v differs from an index built with it", alg)
		}
	}
	// The default algorithm still answers correctly after the overrides.
	if _, _, err := ix.RowTopK(q, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunOptionsRejectsInvalid(t *testing.T) {
	ix, q := cancelFixture(t)
	bad := Algorithm(99)
	if _, _, err := ix.RowTopKCtx(context.Background(), q, 5, RunOptions{Algorithm: &bad}); err == nil {
		t.Fatal("invalid per-call algorithm accepted")
	}
	if _, _, err := ix.RowTopKCtx(context.Background(), q, 5, RunOptions{Parallelism: -2}); err == nil {
		t.Fatal("negative per-call parallelism accepted")
	}
}

func TestTuningCacheWarmCallSkipsTuning(t *testing.T) {
	ix, q := cancelFixture(t)
	tc := NewTuningCache()

	baseline, _, err := ix.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}

	cold, coldSt, err := ix.RowTopKCtx(context.Background(), q, 5, RunOptions{Cache: tc})
	if err != nil {
		t.Fatal(err)
	}
	if coldSt.Tunings != 1 || coldSt.TuneCacheHits != 0 {
		t.Fatalf("cold call: Tunings=%d TuneCacheHits=%d, want 1/0", coldSt.Tunings, coldSt.TuneCacheHits)
	}

	warm, warmSt, err := ix.RowTopKCtx(context.Background(), q, 5, RunOptions{Cache: tc})
	if err != nil {
		t.Fatal(err)
	}
	if warmSt.Tunings != 0 || warmSt.TuneCacheHits != 1 {
		t.Fatalf("warm call: Tunings=%d TuneCacheHits=%d, want 0/1", warmSt.Tunings, warmSt.TuneCacheHits)
	}
	if warmSt.TuneTime != 0 {
		t.Fatalf("warm call spent %v tuning, want 0", warmSt.TuneTime)
	}
	if !reflect.DeepEqual(cold, baseline) || !reflect.DeepEqual(warm, baseline) {
		t.Fatal("cached-tuning results differ from uncached retrieval")
	}

	// A different k is a different problem: it must tune again.
	_, otherSt, err := ix.RowTopKCtx(context.Background(), q, 7, RunOptions{Cache: tc})
	if err != nil {
		t.Fatal(err)
	}
	if otherSt.Tunings != 1 {
		t.Fatalf("different k reused the k=5 fit (Tunings=%d)", otherSt.Tunings)
	}

	// Above-θ keys separately from Row-Top-k.
	sink := func(retrieval.Entry) {}
	if _, err := ix.AboveThetaCtx(context.Background(), q, 0.5, sink, RunOptions{Cache: tc}); err != nil {
		t.Fatal(err)
	}
	st2, err := ix.AboveThetaCtx(context.Background(), q, 0.5, sink, RunOptions{Cache: tc})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Tunings != 0 || st2.TuneCacheHits != 1 {
		t.Fatalf("warm Above-θ: Tunings=%d TuneCacheHits=%d, want 0/1", st2.Tunings, st2.TuneCacheHits)
	}
}

func TestTuningCacheInvalidatedByMutation(t *testing.T) {
	ix, q := cancelFixture(t)
	tc := NewTuningCache()
	ro := RunOptions{Cache: tc}

	if _, _, err := ix.RowTopKCtx(context.Background(), q, 5, ro); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AddProbe(q.Vec(0)); err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.RowTopKCtx(context.Background(), q, 5, ro)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tunings != 1 || st.TuneCacheHits != 0 {
		t.Fatalf("post-mutation call reused a stale fit (Tunings=%d, hits=%d)", st.Tunings, st.TuneCacheHits)
	}

	// Compact changes the bucket layout without advancing the epoch; the
	// layout generation must still rotate the key.
	if _, _, err := ix.RowTopKCtx(context.Background(), q, 5, ro); err != nil {
		t.Fatal(err)
	}
	ix.Compact()
	_, st, err = ix.RowTopKCtx(context.Background(), q, 5, ro)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tunings != 1 || st.TuneCacheHits != 0 {
		t.Fatalf("post-Compact call reused a stale fit (Tunings=%d, hits=%d)", st.Tunings, st.TuneCacheHits)
	}

	// And the mutated index still answers byte-identically to fresh.
	top, _, err := ix.RowTopKCtx(context.Background(), q, 5, ro)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewIndexWithIDs(ix.Probe(), ix.ProbeIDs(), ix.Options())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(top, want) {
		t.Fatal("cached-tuning mutated index differs from fresh build")
	}
}

// TestCanceledTuningPublishesNothing cancels during the tuning phase and
// checks no partial fit lands in the cache and the index recovers.
func TestCanceledTuningPublishesNothing(t *testing.T) {
	ix, q := cancelFixture(t)
	tc := NewTuningCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the tuning loop's first bucket checkpoint
	if _, _, err := ix.RowTopKCtx(ctx, q, 5, RunOptions{Cache: tc}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := tc.Len(); n != 0 {
		t.Fatalf("canceled call published %d cache entries", n)
	}
	// Misses counted, hits none.
	if tc.Hits() != 0 {
		t.Fatalf("phantom cache hit recorded")
	}
	if _, _, err := ix.RowTopKCtx(context.Background(), q, 5, RunOptions{Cache: tc}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 1 {
		t.Fatalf("recovered call did not publish its fit")
	}
}
