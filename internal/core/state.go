package core

import (
	"fmt"
	"math"
	"slices"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/quant"
)

// State is the serializable snapshot of an Index: the probe matrix, the
// effective options, and the bucketization (§3.2) with any tuned per-bucket
// parameters (§4.4). It is the contract between core and internal/snapshot:
// Index.State exports it, FromState rebuilds an index from it without
// re-running bucketization or tuning.
//
// The slices returned by Index.State alias the index's internal storage —
// they may be read (serialized) but must not be mutated.
type State struct {
	Opts     Options
	Probe    *matrix.Matrix
	Pretuned bool // per-call tuning is frozen (Index.PretuneTopK et al.)
	Buckets  []BucketState

	// IDs maps probe column → external id; nil means the identity mapping
	// (column numbers are the ids). Mutated-then-compacted indexes have
	// arbitrary stable ids.
	IDs []int32
	// Epoch is the mutation epoch (delta.go); NextID the next AutoID
	// assignment. A zero NextID means "derive from the ids".
	Epoch  uint64
	NextID int32

	// Shard-placement metadata (snapshot PLMT section): the placement
	// strategy the shard set holding this index was built with, and — for
	// cluster placement — the shard's direction cone. Both are passive
	// pass-through for the serving layer: State never sets them (the owner
	// of the shard set does before writing a snapshot) and FromState
	// ignores them (the loader hands them back to the serving layer, which
	// recomputes anything missing).
	PlacementKind string
	Cone          *Cone

	// Retained tuning sample (§4.4). A Pretune call keeps the query sample
	// and problem it fitted so Compact can re-freeze the parameters after a
	// re-bucketization; persisting them lets a snapshot-restored pretuned
	// index do the same instead of silently dropping back to defaults.
	// TuneSample nil means no sample was retained; TuneTopK selects the
	// problem kind (Row-Top-k at TuneK, else Above-θ at TuneTheta).
	TuneSample *matrix.Matrix
	TuneTopK   bool
	TuneK      int
	TuneTheta  float64
}

// BucketState is the serializable state of one probe bucket: the sorted
// membership (§3.2) and the tuned algorithm-selection parameters (§4.4).
// Most lazily built per-bucket indexes (trees, L2AP, signatures) are not
// part of the state and are rebuilt lazily after a restore; the sorted-list
// index — the one COORD/INCR/TA rebuild on a restored server's first batch,
// dominating post-restore latency — can optionally ride along (ListVals/
// ListLids, persisted as the snapshot SLST section).
type BucketState struct {
	IDs   []int32   // original probe column numbers, by decreasing length
	Lens  []float64 // vector lengths, decreasing
	Dirs  []float64 // normalized vectors, contiguous (len(IDs) × r)
	Tuned bool
	TB    float64
	Phi   int

	// Sorted-list index (§4.2, Fig. 4c), both len(IDs) × r in
	// coordinate-major layout (list f occupies [f·n, (f+1)·n)), or nil when
	// the bucket's lists were never built. FromState verifies they are
	// exactly what buildLists would produce from Dirs — a corrupted or
	// hand-edited list index fails to load rather than mis-pruning.
	ListVals []float64
	ListLids []int32

	// Quantized screening sidecar (internal/quant, persisted as the
	// snapshot QNT8 section): per-row scales, int8 codes (len(IDs) × r,
	// row-major) and residual-norm bounds, or all nil when the bucket
	// carries no sidecar. Like the sorted lists, FromState verifies the
	// arrays are exactly what QuantizeRows would produce from Dirs —
	// quantization is deterministic — so a corrupted sidecar fails to load
	// rather than silently screening wrong candidates. The dequantized-norm
	// array is recomputed on load, not persisted.
	QuantScales []float64
	QuantCodes  []int8
	QuantResid  []float64
}

// State exports the index's serializable state. The contained slices alias
// index storage and must not be mutated; retrieval calls must not run
// concurrently with serialization (tuning rewrites bucket parameters).
//
// A mutated index (live delta layer) is compacted on export — into a
// private copy, the receiver is unchanged — so the state always describes
// a tombstone-free bucketization over the live probe set with external ids
// preserved. Loading it answers queries identically to the mutated index.
func (ix *Index) State() *State {
	if ix.mutated() {
		cp := ix.shallowClone()
		cp.Compact()
		return cp.State()
	}
	st := &State{
		Opts:     ix.opts,
		Probe:    ix.probe,
		Pretuned: ix.pretuned,
		Buckets:  make([]BucketState, len(ix.buckets)),
		IDs:      ix.explicitIDs(),
		Epoch:    ix.epoch,
		NextID:   ix.nextID,
	}
	if ix.pretuned && ix.tuneSample != nil {
		st.TuneSample = ix.tuneSample
		switch p := ix.tuneProb.(type) {
		case tuneTopK:
			st.TuneTopK, st.TuneK = true, p.k
		case tuneAbove:
			st.TuneTheta = p.theta
		default:
			st.TuneSample = nil // unknown problem: nothing to persist
		}
	}
	for i, b := range ix.buckets {
		st.Buckets[i] = BucketState{
			IDs:   b.ids,
			Lens:  b.lens,
			Dirs:  b.dirs,
			Tuned: b.tuned,
			TB:    b.tb,
			Phi:   b.phi,
		}
		if b.lists != nil {
			st.Buckets[i].ListVals = b.lists.vals
			st.Buckets[i].ListLids = b.lists.lids
		}
		if b.q8 != nil {
			st.Buckets[i].QuantScales = b.q8.Scales
			st.Buckets[i].QuantCodes = b.q8.Codes
			st.Buckets[i].QuantResid = b.q8.Resid
		}
	}
	return st
}

// Probe returns the probe matrix the index was built over (or restored
// with). It aliases index state and must not be mutated.
func (ix *Index) Probe() *matrix.Matrix { return ix.probe }

// Pretuned reports whether per-call tuning is frozen: the index reuses its
// stored per-bucket parameters instead of re-tuning on every retrieval.
func (ix *Index) Pretuned() bool { return ix.pretuned }

// FromState rebuilds an index from an exported state, skipping the
// bucketization and tuning phases — the whole point of snapshot restore:
// startup cost is O(read) instead of O(index). The state is validated
// structurally (every invariant retrieval relies on) so a corrupt or
// hand-edited snapshot fails loudly here instead of serving wrong results.
// The state's slices are adopted, not copied; the caller must not reuse
// them.
func FromState(st *State) (*Index, error) {
	start := time.Now()
	opts := st.Opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if st.Probe == nil {
		return nil, fmt.Errorf("core: state has no probe matrix")
	}
	r, n := st.Probe.R(), st.Probe.N()
	ix := &Index{opts: opts, r: r, n: n, probe: st.Probe, pretuned: st.Pretuned, id: indexSeq.Add(1)}
	if st.TuneSample != nil && st.Pretuned {
		if st.TuneSample.R() != r {
			return nil, fmt.Errorf("core: tuning sample dimension %d does not match probe dimension %d", st.TuneSample.R(), r)
		}
		if st.TuneSample.N() == 0 {
			return nil, fmt.Errorf("core: retained tuning sample is empty")
		}
		for _, x := range st.TuneSample.Data() {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("core: tuning sample holds non-finite value %v", x)
			}
		}
		if st.TuneTopK {
			if st.TuneK < 1 {
				return nil, fmt.Errorf("core: retained tuning k %d must be positive", st.TuneK)
			}
			ix.tuneProb = tuneTopK{k: st.TuneK}
		} else {
			if !(st.TuneTheta > 0) || math.IsInf(st.TuneTheta, 0) {
				return nil, fmt.Errorf("core: retained tuning theta %v must be a positive finite number", st.TuneTheta)
			}
			ix.tuneProb = tuneAbove{theta: st.TuneTheta}
		}
		ix.tuneSample = st.TuneSample
	}
	// Resolve the external id universe: identity (ids are column numbers)
	// or the explicit column → id mapping of a compacted mutated index.
	var idSet map[int32]bool // id → seen in a bucket yet; nil = identity
	if st.IDs != nil {
		if len(st.IDs) != n {
			return nil, fmt.Errorf("core: state has %d probe ids for %d probes", len(st.IDs), n)
		}
		idSet = make(map[int32]bool, n)
		for _, id := range st.IDs {
			if id < 0 || id > MaxProbeID {
				return nil, fmt.Errorf("core: probe id %d out of range [0, %d]", id, int32(MaxProbeID))
			}
			if _, dup := idSet[id]; dup {
				return nil, fmt.Errorf("core: probe id %d appears twice", id)
			}
			idSet[id] = false
		}
	}
	ix.buckets = make([]*bucket, len(st.Buckets))
	seen := make([]bool, n)
	var listSeen []bool // per-list permutation check scratch, sized on demand
	total := 0
	prevLen := math.Inf(1)
	for i, bs := range st.Buckets {
		size := len(bs.IDs)
		if size == 0 {
			return nil, fmt.Errorf("core: bucket %d is empty", i)
		}
		if len(bs.Lens) != size || len(bs.Dirs) != size*r {
			return nil, fmt.Errorf("core: bucket %d shape mismatch: %d ids, %d lens, %d dirs (r=%d)",
				i, size, len(bs.Lens), len(bs.Dirs), r)
		}
		total += size
		if total > n {
			return nil, fmt.Errorf("core: buckets hold more than %d probes", n)
		}
		for j, id := range bs.IDs {
			if idSet != nil {
				used, known := idSet[id]
				if !known {
					return nil, fmt.Errorf("core: bucket %d id %d is not a probe id", i, id)
				}
				if used {
					return nil, fmt.Errorf("core: probe id %d appears twice", id)
				}
				idSet[id] = true
			} else {
				if id < 0 || int(id) >= n {
					return nil, fmt.Errorf("core: bucket %d id %d out of range [0,%d)", i, id, n)
				}
				if seen[id] {
					return nil, fmt.Errorf("core: probe id %d appears twice", id)
				}
				seen[id] = true
			}
			l := bs.Lens[j]
			if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
				return nil, fmt.Errorf("core: bucket %d length %d is %v", i, j, l)
			}
			if l > prevLen {
				return nil, fmt.Errorf("core: lengths not in decreasing order at bucket %d entry %d", i, j)
			}
			prevLen = l
		}
		for j, d := range bs.Dirs {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("core: bucket %d direction value %d is %v", i, j, d)
			}
		}
		if bs.Tuned && (math.IsNaN(bs.TB) || bs.Phi < 1) {
			return nil, fmt.Errorf("core: bucket %d tuned parameters invalid (tb=%v, phi=%d)", i, bs.TB, bs.Phi)
		}
		b := &bucket{
			r:     r,
			ids:   bs.IDs,
			lens:  bs.Lens,
			dirs:  bs.Dirs,
			lb:    bs.Lens[0],
			tuned: bs.Tuned,
			tb:    bs.TB,
			phi:   bs.Phi,
		}
		if bs.ListVals != nil || bs.ListLids != nil {
			if len(bs.ListVals) != size*r || len(bs.ListLids) != size*r {
				return nil, fmt.Errorf("core: bucket %d sorted-list shape mismatch: %d vals, %d lids, want %d each",
					i, len(bs.ListVals), len(bs.ListLids), size*r)
			}
			if len(listSeen) < size {
				listSeen = make([]bool, size)
			}
			if err := checkLists(bs.ListVals, bs.ListLids, bs.Dirs, size, r, listSeen); err != nil {
				return nil, fmt.Errorf("core: bucket %d sorted lists: %w", i, err)
			}
			b.lists = &sortedLists{n: size, vals: bs.ListVals, lids: bs.ListLids}
		}
		if bs.QuantScales != nil || bs.QuantCodes != nil || bs.QuantResid != nil {
			if !opts.Quantize {
				return nil, fmt.Errorf("core: bucket %d carries a quantized sidecar but Options.Quantize is off", i)
			}
			if r < 1 || r > quant.MaxDim {
				return nil, fmt.Errorf("core: bucket %d quantized sidecar at unsupported dimension %d", i, r)
			}
			if len(bs.QuantScales) != size || len(bs.QuantResid) != size || len(bs.QuantCodes) != size*r {
				return nil, fmt.Errorf("core: bucket %d quantized sidecar shape mismatch: %d scales, %d resid, %d codes (size=%d, r=%d)",
					i, len(bs.QuantScales), len(bs.QuantResid), len(bs.QuantCodes), size, r)
			}
			// Quantization is deterministic, so the persisted sidecar must
			// be exactly what QuantizeRows produces from the (already
			// validated) directions — anything else is corruption that
			// would make screening unsound.
			q8 := quant.QuantizeRows(bs.Dirs, r)
			if !slices.Equal(q8.Scales, bs.QuantScales) ||
				!slices.Equal(q8.Codes, bs.QuantCodes) ||
				!slices.Equal(q8.Resid, bs.QuantResid) {
				return nil, fmt.Errorf("core: bucket %d quantized sidecar does not match its directions", i)
			}
			b.q8 = q8
		}
		ix.buckets[i] = b
		if size > ix.maxBucket {
			ix.maxBucket = size
		}
	}
	if total != n {
		return nil, fmt.Errorf("core: buckets hold %d probes, probe matrix has %d", total, n)
	}
	ix.setIDs(st.IDs)
	// Quantize on but no (or only some) persisted sidecars — a pre-quant
	// snapshot loaded with screening requested: quantize the missing ones.
	ix.attachSidecars(ix.buckets)
	ix.refreshScan()
	ix.nextID = maxIDPlusOne(ix)
	if st.NextID > ix.nextID {
		ix.nextID = st.NextID
	}
	ix.epoch = st.Epoch
	ix.prepTime = time.Since(start)
	return ix, nil
}
