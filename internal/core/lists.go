package core

import (
	"fmt"
	"math"
	"sort"
)

// sortedLists is the per-bucket sorted-list index of §4.2 (Fig. 4c): for
// each coordinate f, the bucket's normalized values p̄_f paired with their
// local ids, sorted by decreasing value. Values and ids live in parallel
// arrays so COORD's id-only scans and INCR's value+id scans both stream
// contiguously.
type sortedLists struct {
	n    int
	vals []float64 // r lists of length n; list f at [f*n, (f+1)*n)
	lids []int32
}

func buildLists(b *bucket) *sortedLists {
	n, r := b.size(), b.r
	sl := &sortedLists{n: n, vals: make([]float64, r*n), lids: make([]int32, r*n)}
	perm := make([]int32, n)
	for f := 0; f < r; f++ {
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.SliceStable(perm, func(x, y int) bool {
			return b.dirs[int(perm[x])*r+f] > b.dirs[int(perm[y])*r+f]
		})
		vals := sl.vals[f*n : (f+1)*n]
		lids := sl.lids[f*n : (f+1)*n]
		for i, lid := range perm {
			lids[i] = lid
			vals[i] = b.dirs[int(lid)*r+f]
		}
	}
	return sl
}

// list returns the value and id arrays of coordinate f.
func (sl *sortedLists) list(f int) (vals []float64, lids []int32) {
	return sl.vals[f*sl.n : (f+1)*sl.n], sl.lids[f*sl.n : (f+1)*sl.n]
}

// checkLists verifies a restored sorted-list index (snapshot SLST section)
// against the bucket's directions: every coordinate list must be a
// permutation of the n local ids, sorted by non-increasing value, with each
// value bit-equal to the direction entry it claims to index. These three
// invariants are exactly what scanRange and the COORD/INCR/TA scans rely
// on, so a list index passing them prunes identically to a rebuilt one
// (ties may order differently, which no scan depends on). seen must have at
// least n elements; it is clobbered.
func checkLists(vals []float64, lids []int32, dirs []float64, n, r int, seen []bool) error {
	for f := 0; f < r; f++ {
		lv := vals[f*n : (f+1)*n]
		ll := lids[f*n : (f+1)*n]
		for i := 0; i < n; i++ {
			seen[i] = false
		}
		prev := math.Inf(1)
		for i := 0; i < n; i++ {
			lid := ll[i]
			if lid < 0 || int(lid) >= n {
				return fmt.Errorf("list %d entry %d: local id %d out of range [0,%d)", f, i, lid, n)
			}
			if seen[lid] {
				return fmt.Errorf("list %d: local id %d appears twice", f, lid)
			}
			seen[lid] = true
			v := lv[i]
			if !(v <= prev) { // also rejects NaN
				return fmt.Errorf("list %d entry %d: value %v above predecessor %v (not sorted decreasingly)", f, i, v, prev)
			}
			prev = v
			if v != dirs[int(lid)*r+f] {
				return fmt.Errorf("list %d entry %d: value %v does not match direction %v of local id %d",
					f, i, v, dirs[int(lid)*r+f], lid)
			}
		}
	}
	return nil
}

// scanRange returns the half-open index range [start, end) of list f whose
// values lie in [lo, hi]. The list is sorted decreasingly, so the range
// starts at the first value ≤ hi and ends before the first value < lo.
func (sl *sortedLists) scanRange(f int, lo, hi float64) (start, end int) {
	vals, _ := sl.list(f)
	start = sort.Search(len(vals), func(i int) bool { return vals[i] <= hi })
	end = start + sort.Search(len(vals)-start, func(i int) bool { return vals[start+i] < lo })
	return start, end
}
