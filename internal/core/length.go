package core

// runLength implements the LENGTH algorithm (§4.1): the bucket's vectors
// are sorted by decreasing length, so scan the prefix with
// ‖p‖ ≥ θ/‖q‖ — beyond it no inner product can reach θ — and hand the
// prefix to verification. theta may be -Inf (an unseeded Row-Top-k run),
// in which case the whole bucket qualifies.
func runLength(b *bucket, theta, qlen float64, s *scratch) {
	minLen := theta / qlen
	prefix := b.lengthPrefix(minLen)
	s.cand = s.cand[:0]
	for lid := 0; lid < prefix; lid++ {
		s.cand = append(s.cand, int32(lid))
	}
	s.work += int64(prefix)
}

// allCandidates hands the whole bucket to verification; used by the
// coordinate methods when the local threshold is non-positive (pruning by
// direction is impossible).
func allCandidates(b *bucket, s *scratch) {
	s.cand = s.cand[:0]
	for lid := 0; lid < b.size(); lid++ {
		s.cand = append(s.cand, int32(lid))
	}
	s.work += int64(b.size())
}
