package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/topk"
)

// Sample-based algorithm selection (§4.4). For a small sample of query
// vectors, LEMP times LENGTH and the coordinate method with each focus-set
// size φ ∈ 1..MaxPhi on every bucket the sample reaches, then picks per
// bucket the φ_b with the smallest total cost and — for the mixed LC/LI
// algorithms — the switch threshold t_b that minimizes total cost under the
// rule "use LENGTH whenever θ_b(q) < t_b". Costs are wall-clock by default
// (the paper's approach) or a deterministic operation count with
// Options.TuneByCost.

// hasTunableParams reports whether the index's build-time algorithm has
// per-bucket parameters to select.
func (ix *Index) hasTunableParams() bool { return ix.opts.hasTunableParams() }

// needsTuning reports whether a retrieval call should run the sample-based
// selection: the algorithm has parameters to fit and tuning has not been
// frozen by a Pretune call (or a snapshot restore of a pretuned index).
func (ix *Index) needsTuning() bool {
	return !ix.pretuned && ix.hasTunableParams()
}

// needsTuningFor is needsTuning under a call's effective options.
func (ix *Index) needsTuningFor(o Options) bool {
	return !ix.pretuned && o.hasTunableParams()
}

// ensureTuned runs the per-call tuning phase for one retrieval call: a
// no-op when nothing is tunable or tuning is frozen, a parameter restore
// when the call's TuningCache holds a fit for this exact index version and
// problem, and a timed sample-tuning pass (stored back into the cache)
// otherwise. Cancellation mid-tune returns the context error; no partial
// fit is ever published to the cache.
func (ix *Index) ensureTuned(c *call, qs *querySet, prob any, st *Stats) error {
	if !ix.needsTuningFor(c.opts) || ix.LiveN() == 0 || qs.n() == 0 {
		return nil
	}
	var key tuneCacheKey
	if c.cache != nil {
		key = ix.tuneCacheKey(c.opts, prob)
		if params, ok := c.cache.get(key); ok && ix.applyTunedParams(params) {
			st.TuneCacheHits++
			return nil
		}
	}
	tuneStart := time.Now()
	if err := ix.tune(c, qs, prob); err != nil {
		return err
	}
	st.TuneTime += time.Since(tuneStart)
	st.Tunings++
	if c.cache != nil {
		c.cache.put(key, ix.captureTunedParams())
	}
	return nil
}

// PretuneTopK runs the sample-based algorithm selection (§4.4) for
// Row-Top-k retrieval with the given query sample and freezes the fitted
// per-bucket parameters: subsequent retrieval calls reuse them instead of
// re-tuning. Freezing trades adaptivity for per-call latency — results stay
// exact either way, only the per-bucket algorithm choice is affected — and
// the frozen parameters survive snapshot save/restore, which is how a
// snapshot-loaded server answers queries with zero tuning time.
func (ix *Index) PretuneTopK(q *matrix.Matrix, k int) error {
	if k <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", k)
	}
	return ix.pretune(q, tuneTopK{k: k})
}

// PretuneAboveTheta is PretuneTopK for Above-θ retrieval at threshold theta.
func (ix *Index) PretuneAboveTheta(q *matrix.Matrix, theta float64) error {
	if !(theta > 0) || math.IsInf(theta, 0) {
		return fmt.Errorf("core: theta must be a positive finite number, got %v", theta)
	}
	return ix.pretune(q, tuneAbove{theta: theta})
}

func (ix *Index) pretune(q *matrix.Matrix, prob any) error {
	if q.R() != ix.r {
		return fmt.Errorf("core: query dimension %d does not match index dimension %d", q.R(), ix.r)
	}
	if q.N() == 0 {
		return fmt.Errorf("core: pretuning needs at least one sample query")
	}
	if ix.hasTunableParams() && ix.LiveN() > 0 {
		ix.tune(newCall(nil, ix.opts, nil), prepareQueries(q), prob)
	}
	ix.pretuned = true
	// Retain the sample and problem so Compact can re-freeze the fitted
	// parameters after re-bucketization (the sample is small; cloning
	// detaches it from caller-owned storage).
	ix.tuneProb = prob
	ix.tuneSample = q.Clone()
	return nil
}

// tuneAbove and tuneTopK carry the problem context into the tuner; the
// sample must be measured at the thresholds the real run will see.
type tuneAbove struct{ theta float64 }
type tuneTopK struct{ k int }

// observation is the measured cost of both method families for one
// (query, bucket) pair.
type observation struct {
	thetaB  float64
	costL   float64
	costPhi []float64 // indexed by φ; 0 unused
}

// tune runs the sample-based selection under the call's effective options,
// checking the call's context at bucket boundaries: a canceled call stops
// mid-sample and returns the context error with every bucket left untuned
// (the next call re-tunes), so the index stays fully usable.
func (ix *Index) tune(c *call, qs *querySet, prob any) error {
	return ix.tuneSubset(c, qs, prob, nil)
}

// tuneSubset is tune restricted to a set of buckets: only buckets in `only`
// (nil = all) are reset, observed and fitted. The Row-Top-k sample still
// walks the scan prefix up to the deepest target bucket to advance the
// running-threshold trajectory — the observations must be taken at the
// thresholds a real run would see — but skips the per-bucket cost
// measurements everywhere else and stops once no target bucket remains, so
// a restricted pass costs O(scan prefix), not O(index). Delta-layer
// pretuning (delta.go) uses this to fit freshly built overlay buckets from
// the retained pretune sample without disturbing the frozen main-bucket
// parameters.
func (ix *Index) tuneSubset(c *call, qs *querySet, prob any, only map[*bucket]struct{}) error {
	target := func(b *bucket) bool {
		if only == nil {
			return true
		}
		_, ok := only[b]
		return ok
	}
	lastTarget := len(ix.scan) - 1
	if only != nil {
		lastTarget = -1
		for bi, b := range ix.scan {
			if target(b) {
				lastTarget = bi
			}
		}
	}
	for _, b := range ix.scan {
		if target(b) {
			b.tuned = false
		}
	}
	sample := sampleIndices(qs.n(), c.opts.SampleQueries)
	s := ix.getScratch()
	defer ix.putScratch(s)
	obs := make([][]observation, len(ix.scan))

	switch p := prob.(type) {
	case tuneAbove:
		for _, qi := range sample {
			qlen := qs.lens[qi]
			if qlen == 0 {
				break
			}
			qdir := qs.dir(qi)
			for bi, b := range ix.scan {
				if bi > lastTarget {
					break // no target bucket remains
				}
				if c.canceled() {
					return c.ctxErr()
				}
				thetaB := p.theta / (qlen * b.lb)
				if thetaB > 1 {
					break // buckets are ordered by decreasing l_b
				}
				if target(b) {
					obs[bi] = append(obs[bi], ix.observe(c, b, qdir, qlen, p.theta, thetaB, s))
				}
			}
		}
	case tuneTopK:
		kk := p.k
		if live := ix.LiveN(); kk > live {
			kk = live
		}
		if kk == 0 {
			break
		}
		var trajStats Stats // trajectory verification is not a run; discard
		heap := topk.New(kk)
		for _, qi := range sample {
			qlen := qs.lens[qi]
			if qlen == 0 {
				break
			}
			qdir := qs.dir(qi)
			heap.Reset()
			for bi, b := range ix.scan {
				if bi > lastTarget {
					break // trajectory past the deepest target is unused
				}
				if c.canceled() {
					return c.ctxErr()
				}
				theta, thetaB := math.Inf(-1), math.Inf(-1)
				if thr, ok := heap.Threshold(); ok {
					theta = thr
					if b.lb == 0 {
						if theta > 0 {
							break
						}
						thetaB = -1
					} else {
						thetaB = theta / b.lb
						if thetaB > 1 {
							break
						}
					}
				} else if b.lb == 0 {
					thetaB = -1
				}
				// Coordinate methods only ever run with
				// θ_b ∈ (0,1]; below that resolve() forces
				// LENGTH, so there is nothing to measure.
				if thetaB > 0 && target(b) {
					obs[bi] = append(obs[bi], ix.observe(c, b, qdir, 1, theta, thetaB, s))
				}
				// Advance the running threshold with an exact
				// LENGTH pass (the sample must follow the same
				// θ′ trajectory as a real run), verified with the
				// same blocked kernels as the real run.
				runLength(b, theta, 1, s)
				ix.compactLiveCands(b, s)
				verifyDots(b, qdir, s, &trajStats)
				for i, lid := range s.cand {
					heap.Push(int(b.ids[lid]), s.vals[i]*b.lens[lid])
				}
			}
		}
	}

	for bi, b := range ix.scan {
		if target(b) {
			ix.fitBucketFor(c.opts, b, obs[bi])
		}
	}
	return nil
}

// observe measures one (query, bucket) pair: the LENGTH cost and the
// coordinate-family cost for every candidate φ, each including candidate
// verification (the dominant term).
func (ix *Index) observe(c *call, b *bucket, qdir []float64, qlen, theta, thetaB float64, s *scratch) observation {
	o := observation{thetaB: thetaB, costPhi: make([]float64, c.opts.MaxPhi+1)}
	byCost := c.opts.TuneByCost

	measure := func(gather func()) float64 {
		s.work = 0
		start := time.Now()
		gather()
		s.work += int64(len(s.cand)) * int64(b.r)
		if !byCost {
			// Verify with the blocked kernels so the measured cost
			// reflects what a real run's verification will pay.
			var mst Stats
			ix.compactLiveCands(b, s)
			verifyDots(b, qdir, s, &mst)
			var acc float64
			for i, lid := range s.cand {
				acc += s.vals[i] * qlen * b.lens[lid]
			}
			verifySink.Store(math.Float64bits(acc)) // defeat dead-code elimination
		}
		if byCost {
			return float64(s.work)
		}
		return float64(time.Since(start))
	}

	o.costL = measure(func() { runLength(b, theta, qlen, s) })

	phis := ix.tunePhisFor(c.opts)
	incr := c.opts.Algorithm == AlgLI || c.opts.Algorithm == AlgI
	for _, phi := range phis {
		phi := phi
		o.costPhi[phi] = measure(func() {
			if incr && phi > 1 {
				runIncr(b, qdir, qlen, theta, thetaB, phi, s)
			} else {
				runCoord(b, qdir, thetaB, phi, s)
			}
		})
	}
	return o
}

// verifySink absorbs verification results during tuning so the compiler
// cannot elide the measured inner products. It is atomic because distinct
// indexes (e.g. server shards) may tune concurrently.
var verifySink atomic.Uint64

// tunePhis returns the φ values the tuner tries under the index's
// build-time options: all of 1..MaxPhi when φ is tuned, or just the fixed
// value.
func (ix *Index) tunePhis() []int { return ix.tunePhisFor(ix.opts) }

// tunePhisFor is tunePhis under a call's effective options.
func (ix *Index) tunePhisFor(o Options) []int {
	if o.Phi > 0 {
		phi := o.Phi
		if phi > ix.r && ix.r > 0 {
			phi = ix.r
		}
		return []int{phi}
	}
	maxPhi := o.MaxPhi
	if maxPhi > ix.r && ix.r > 0 {
		maxPhi = ix.r
	}
	phis := make([]int, 0, maxPhi)
	for phi := 1; phi <= maxPhi; phi++ {
		phis = append(phis, phi)
	}
	return phis
}

// fitBucket selects φ_b and t_b from the bucket's observations under the
// index's build-time options.
func (ix *Index) fitBucket(b *bucket, obs []observation) { ix.fitBucketFor(ix.opts, b, obs) }

// fitBucketFor is fitBucket under a call's effective options.
func (ix *Index) fitBucketFor(o Options, b *bucket, obs []observation) {
	b.tuned = true
	b.tb = defaultTB
	b.phi = ix.defaultPhiFor(o)
	if len(obs) == 0 {
		return
	}
	phis := ix.tunePhisFor(o)
	if len(phis) == 0 {
		return
	}
	// φ_b: smallest total coordinate-method cost over the sample.
	bestPhi, bestCost := phis[0], math.Inf(1)
	for _, phi := range phis {
		var total float64
		for _, o := range obs {
			total += o.costPhi[phi]
		}
		if total < bestCost {
			bestPhi, bestCost = phi, total
		}
	}
	b.phi = bestPhi
	if !o.Algorithm.needsTB() {
		return
	}
	// t_b: best split of the θ_b-sorted sample between LENGTH (below)
	// and the coordinate method (above).
	sort.Slice(obs, func(i, j int) bool { return obs[i].thetaB < obs[j].thetaB })
	suffix := make([]float64, len(obs)+1)
	for i := len(obs) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + obs[i].costPhi[bestPhi]
	}
	var prefixL float64
	bestSplit, bestTotal := 0, suffix[0] // split 0: coordinate method always
	for i := 0; i < len(obs); i++ {
		prefixL += obs[i].costL
		if total := prefixL + suffix[i+1]; total < bestTotal {
			bestSplit, bestTotal = i+1, total
		}
	}
	switch bestSplit {
	case 0:
		b.tb = 0 // θ_b < 0 never holds against a positive threshold
	case len(obs):
		b.tb = math.Inf(1) // always LENGTH
	default:
		// Observations below the split use LENGTH: any t_b strictly
		// between the two neighboring θ_b values realizes the split.
		b.tb = (obs[bestSplit-1].thetaB + obs[bestSplit].thetaB) / 2
	}
}

// sampleIndices spreads up to want indices evenly over [0, n).
func sampleIndices(n, want int) []int {
	if n <= want {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, want)
	for i := range out {
		out[i] = i * n / want
	}
	return out
}
