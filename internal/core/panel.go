package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

// PanelRun is the bulk engine's retrieval entry point: one job-scoped
// handle answering many small query panels against one index. The
// per-call costs RowTopKCtx pays on every invocation — option validation
// and, above all, the sample-tuning pass — are hoisted to the job: options
// validate once in NewPanelRun, and the first panel to arrive tunes the
// index for the whole job (every later panel reuses the fit, so a
// million-row job tunes exactly once).
//
// Unlike the Index-level drivers, panel calls MAY run concurrently on one
// PanelRun — that is their point: the bulk engine hands each worker its
// own panels. This is safe only because a PanelRun never mutates shared
// index state after tuning: the tuning pass is serialized under the job
// mutex before any concurrent scan starts, lazily built per-bucket
// indexes and the BLSH table are sync.Once-guarded, and every worker owns
// pooled scratch. The index must not be mutated (Apply/Compact) while a
// PanelRun is live — the usual Index contract, job-wide.
type PanelRun struct {
	ix    *Index
	opts  Options
	cache *TuningCache
	prob  any // tuneTopK or tuneAbove
	k     int
	theta float64
	topk  bool

	tuned   atomic.Bool // fast path: tuning already fitted for this job
	tuneMu  sync.Mutex  // serializes the one tuning pass
	tuneErr error       // sticky error from a failed (non-canceled) fit
}

// NewPanelRunTopK prepares a Row-Top-k panel job. RunOptions carry the
// usual per-call policy (algorithm override, tuning cache); Parallelism is
// ignored — each panel call scans single-threaded, parallelism is the
// caller's panel-level concern.
func (ix *Index) NewPanelRunTopK(k int, ro RunOptions) (*PanelRun, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	pr, err := ix.newPanelRun(ro)
	if err != nil {
		return nil, err
	}
	pr.topk, pr.k, pr.prob = true, k, tuneTopK{k: k}
	return pr, nil
}

// NewPanelRunAbove prepares an Above-θ panel job.
func (ix *Index) NewPanelRunAbove(theta float64, ro RunOptions) (*PanelRun, error) {
	if !(theta > 0) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("core: theta must be a positive finite number, got %v", theta)
	}
	pr, err := ix.newPanelRun(ro)
	if err != nil {
		return nil, err
	}
	pr.theta, pr.prob = theta, tuneAbove{theta: theta}
	return pr, nil
}

func (ix *Index) newPanelRun(ro RunOptions) (*PanelRun, error) {
	ro.Parallelism = 0 // panel calls are single-threaded by design
	opts, err := ix.effOptions(ro)
	if err != nil {
		return nil, err
	}
	opts.Parallelism = 1
	return &PanelRun{ix: ix, opts: opts, cache: ro.Cache}, nil
}

// ensureTunedOnce runs the job's single tuning pass using the first
// panel's queries as the sample, serialized so concurrent first panels
// cannot race on the per-bucket (t_b, φ_b) fields. A canceled fit is
// retried by the next panel; any other failure is sticky.
func (pr *PanelRun) ensureTunedOnce(c *call, qs *querySet, st *Stats) error {
	if pr.tuned.Load() {
		return nil
	}
	pr.tuneMu.Lock()
	defer pr.tuneMu.Unlock()
	if pr.tuned.Load() {
		return nil
	}
	if pr.tuneErr != nil {
		return pr.tuneErr
	}
	if err := pr.ix.ensureTuned(c, qs, pr.prob, st); err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			pr.tuneErr = err
		}
		return err
	}
	pr.tuned.Store(true)
	return nil
}

// TopKPanel answers one query panel: row i of the result is panel row i's
// top-k probes by decreasing value, exactly as RowTopKCtx would return for
// that row in a full-matrix call (per-row answers are independent of how
// the query matrix is cut into panels). The panel is sorted by query
// length internally, like every retrieval call.
func (pr *PanelRun) TopKPanel(ctx context.Context, q *matrix.Matrix) (retrieval.TopK, Stats, error) {
	if !pr.topk {
		return nil, Stats{}, fmt.Errorf("core: TopKPanel on an Above-θ PanelRun")
	}
	if q.R() != pr.ix.r {
		return nil, Stats{}, fmt.Errorf("core: query dimension %d does not match index dimension %d", q.R(), pr.ix.r)
	}
	ix := pr.ix
	c := newCall(ctx, pr.opts, pr.cache)
	st := Stats{Queries: q.N(), Buckets: len(ix.scan), PrepTime: ix.prepTime}
	out := make(retrieval.TopK, q.N())
	qs := prepareQueries(q)
	if err := pr.ensureTunedOnce(c, qs, &st); err != nil {
		return nil, st, err
	}
	start := time.Now()
	s := ix.getScratch()
	ix.topkWorker(c, qs, 0, qs.n(), pr.k, s, out, &st)
	ix.putScratch(s)
	st.RetrievalTime = time.Since(start)
	ix.countIndexedBuckets(&st)
	if c.canceled() {
		return nil, st, c.ctxErr()
	}
	return out, st, nil
}

// AbovePanel answers one query panel in Above-θ mode, streaming entries to
// emit. Entry.Query is the panel-local row index; emit is called from this
// goroutine only. The emitted SET per row is exact and therefore identical
// across jobs, but the emit ORDER follows the tuned per-bucket algorithm's
// candidate order, which may differ between job instances (tuning samples
// the job's first panel) — consumers needing stable bytes, like the bulk
// result writer, must canonicalize row order themselves.
func (pr *PanelRun) AbovePanel(ctx context.Context, q *matrix.Matrix, emit retrieval.Sink) (Stats, error) {
	if pr.topk {
		return Stats{}, fmt.Errorf("core: AbovePanel on a Row-Top-k PanelRun")
	}
	if q.R() != pr.ix.r {
		return Stats{}, fmt.Errorf("core: query dimension %d does not match index dimension %d", q.R(), pr.ix.r)
	}
	ix := pr.ix
	c := newCall(ctx, pr.opts, pr.cache)
	st := Stats{Queries: q.N(), Buckets: len(ix.scan), PrepTime: ix.prepTime}
	qs := prepareQueries(q)
	if err := pr.ensureTunedOnce(c, qs, &st); err != nil {
		return st, err
	}
	start := time.Now()
	s := ix.getScratch()
	ix.aboveWorker(c, qs, 0, qs.n(), pr.theta, s, emit, &st)
	ix.putScratch(s)
	st.RetrievalTime = time.Since(start)
	ix.countIndexedBuckets(&st)
	if c.canceled() {
		return st, c.ctxErr()
	}
	return st, nil
}

// K returns the job's k (0 for Above-θ jobs).
func (pr *PanelRun) K() int { return pr.k }

// Theta returns the job's θ (0 for Row-Top-k jobs).
func (pr *PanelRun) Theta() float64 { return pr.theta }

// LiveTopK clamps k to the number of live probes, the row length TopKPanel
// actually returns.
func (pr *PanelRun) LiveTopK() int {
	if live := pr.ix.LiveN(); pr.k > live {
		return live
	}
	return pr.k
}
