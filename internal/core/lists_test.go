package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func testBucket(rng *rand.Rand, n, r int) *bucket {
	p := randomProbe(rng, n, r, 0.5)
	buckets := bucketize(p, nil, 0, 1, 0) // single bucket holding everything
	if len(buckets) != 1 {
		panic("expected one bucket")
	}
	return buckets[0]
}

func TestSortedListsSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	b := testBucket(rng, 200, 7)
	sl := b.ensureLists()
	for f := 0; f < b.r; f++ {
		vals, lids := sl.list(f)
		if len(vals) != b.size() || len(lids) != b.size() {
			t.Fatalf("list %d has %d entries", f, len(vals))
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(vals))) {
			t.Fatalf("list %d not sorted decreasingly", f)
		}
		// Every lid appears exactly once and carries its own value.
		seen := make([]bool, b.size())
		for i, lid := range lids {
			if seen[lid] {
				t.Fatalf("list %d: duplicate lid %d", f, lid)
			}
			seen[lid] = true
			if vals[i] != b.dir(int(lid))[f] {
				t.Fatalf("list %d entry %d: value mismatch", f, i)
			}
		}
	}
}

func TestEnsureListsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	b := testBucket(rng, 50, 4)
	first := b.ensureLists()
	if second := b.ensureLists(); second != first {
		t.Error("ensureLists rebuilt the index")
	}
}

func TestScanRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	b := testBucket(rng, 300, 5)
	sl := b.ensureLists()
	for trial := 0; trial < 500; trial++ {
		f := rng.Intn(b.r)
		lo := rng.Float64()*2 - 1
		hi := lo + rng.Float64()*(1-lo)
		start, end := sl.scanRange(f, lo, hi)
		vals, _ := sl.list(f)
		for i, v := range vals {
			inRange := v >= lo && v <= hi
			inScan := i >= start && i < end
			if inRange != inScan {
				t.Fatalf("f=%d [%g,%g]: index %d value %g inRange=%v inScan=%v (range [%d,%d))",
					f, lo, hi, i, v, inRange, inScan, start, end)
			}
		}
	}
}

// Property: scan ranges are consistent for arbitrary bounds, including
// inverted and out-of-range ones.
func TestScanRangeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	b := testBucket(rng, 120, 3)
	sl := b.ensureLists()
	f := func(loRaw, hiRaw int8, coord uint8) bool {
		lo := float64(loRaw) / 64
		hi := float64(hiRaw) / 64
		fc := int(coord) % b.r
		start, end := sl.scanRange(fc, lo, hi)
		if start > end || start < 0 || end > b.size() {
			return false
		}
		vals, _ := sl.list(fc)
		for i := start; i < end; i++ {
			if vals[i] < lo || vals[i] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSelectFocus(t *testing.T) {
	s := newScratch(10, 6)
	qdir := []float64{0.1, -0.9, 0.3, 0.0, -0.2, 0.8}
	s.selectFocus(qdir, 3)
	if len(s.focus) != 3 {
		t.Fatalf("focus size %d", len(s.focus))
	}
	want := []int32{1, 5, 2} // |values| 0.9, 0.8, 0.3
	for i, f := range want {
		if s.focus[i] != f {
			t.Fatalf("focus %v, want %v", s.focus, want)
		}
	}
	// φ larger than r.
	s.selectFocus(qdir, 10)
	if len(s.focus) != 6 {
		t.Errorf("focus size %d with φ>r", len(s.focus))
	}
	// Deterministic on ties and reuse of the same scratch.
	s.selectFocus(qdir, 3)
	s.selectFocus(qdir, 3)
	if len(s.focus) != 3 || s.focus[0] != 1 {
		t.Errorf("reuse broke selection: %v", s.focus)
	}
}
