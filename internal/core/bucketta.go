package core

// runBucketTA runs the threshold algorithm inside one bucket (the paper's
// LEMP-TA, §6.3): a TA scan over the bucket's sorted lists of *normalized*
// values with the local threshold θ_b(q). Unlike standalone TA, it does not
// verify on first encounter — every distinct vector popped before the
// frontier bound drops below θ_b becomes a candidate and is verified later
// by LEMP, exactly as with the other bucket algorithms. Lists are scanned
// top-down for positive query coordinates and bottom-up for negative ones.
// The per-list frontier is selected with a max-heap over q̄_f·p̄_f, the
// "most promising coordinate" strategy the paper uses (§6.1).
func runBucketTA(b *bucket, qdir []float64, thetaB float64, s *scratch) {
	s.cand = s.cand[:0]
	if thetaB <= 0 {
		allCandidates(b, s)
		return
	}
	lists := b.ensureLists()
	n := b.size()
	s.taMark++
	if s.taMark <= 0 { // wrapped: clear stamps once per 2³¹ calls
		for i := range s.taSeen {
			s.taSeen[i] = 0
		}
		s.taMark = 1
	}
	// Frontier state per active coordinate, embedded in a small max-heap
	// keyed by the frontier contribution q̄_f·p̄_f. The heap storage lives
	// in the scratch to avoid a per-(query,bucket) allocation.
	heap := s.taHeap[:0]
	push := func(fr taFrontier) {
		heap = append(heap, fr)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].contrib >= heap[i].contrib {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() taFrontier {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, rr := 2*i+1, 2*i+2
			largest := i
			if l < len(heap) && heap[l].contrib > heap[largest].contrib {
				largest = l
			}
			if rr < len(heap) && heap[rr].contrib > heap[largest].contrib {
				largest = rr
			}
			if largest == i {
				return top
			}
			heap[i], heap[largest] = heap[largest], heap[i]
			i = largest
		}
	}
	var ub float64
	for f, qf := range qdir {
		if qf == 0 || n == 0 {
			continue
		}
		vals, _ := lists.list(f)
		fr := taFrontier{f: int32(f), dir: 1}
		if qf < 0 {
			fr.pos = int32(n - 1)
			fr.dir = -1
		}
		fr.contrib = qf * vals[fr.pos]
		ub += fr.contrib
		push(fr)
	}
	for len(heap) > 0 && ub >= thetaB {
		fr := pop()
		vals, lids := lists.list(int(fr.f))
		lid := lids[fr.pos]
		if s.taSeen[lid] != s.taMark {
			s.taSeen[lid] = s.taMark
			s.cand = append(s.cand, lid)
		}
		s.work += 2
		next := fr.pos + fr.dir
		if next < 0 || int(next) >= n {
			break // a list is exhausted: every vector has been seen
		}
		qf := qdir[fr.f]
		c := qf * vals[next]
		ub += c - fr.contrib
		push(taFrontier{contrib: c, f: fr.f, pos: next, dir: fr.dir})
	}
	s.taHeap = heap[:0]
}
