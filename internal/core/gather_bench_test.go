package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"lemp/internal/vecmath"
)

// Micro-benchmarks of the per-(query,bucket) gather kernels, the inner loop
// of the retrieval phase. One bucket of 1024 vectors at r=50 (the paper's
// dimensionality), a mid-range local threshold.

func benchBucket(b *testing.B) (*bucket, []float64, *scratch) {
	b.Helper()
	rng := rand.New(rand.NewSource(301))
	p := genMatrix(rng, 1024, 50, 0.6, 1, false, 0, 0)
	buckets := bucketize(p, nil, 0, 1, 0)
	bk := buckets[0]
	bk.ensureLists()
	qdir := make([]float64, 50)
	for f := range qdir {
		qdir[f] = rng.NormFloat64()
	}
	vecmath.Normalize(qdir, qdir)
	return bk, qdir, newScratch(bk.size(), 50)
}

func BenchmarkGatherLength(b *testing.B) {
	bk, _, s := benchBucket(b)
	theta := bk.lens[bk.size()/2] // half the bucket qualifies
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLength(bk, theta, 1, s)
	}
}

func BenchmarkGatherCoord(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCoord(bk, qdir, 0.7, 3, s)
	}
}

func BenchmarkGatherIncr(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	theta := 0.7 * bk.lb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runIncr(bk, qdir, 1, theta, 0.7, 3, s)
	}
}

func BenchmarkGatherBucketTA(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBucketTA(bk, qdir, 0.7, s)
	}
}

func BenchmarkGatherBucketTree(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	bk.ensureTree()
	theta := 0.7 * bk.lb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBucketTree(bk, qdir, 1, theta, s)
	}
}

func BenchmarkGatherL2AP(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	bk.ensureL2AP(0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBucketL2AP(bk, qdir, 0.7, 0.7, s)
	}
}

func BenchmarkVerification(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	runLength(bk, bk.lens[bk.size()/2], 1, s) // ~512 candidates
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		for _, lid := range s.cand {
			acc += vecmath.Dot(qdir, bk.dir(int(lid)))
		}
	}
	verifySink.Store(math.Float64bits(acc))
}

// ---------------------------------------------------------------------------
// Blocked-verification benchmarks: the seed scalar loop (deadSkip + one Dot
// per candidate, exactly what the verify paths ran before the blocked
// engine) against compactLiveCands + verifyDots, across dimension and
// candidate density. "dense" is LENGTH's contiguous prefix (the DotBatch
// panel path), "sparse" a strided coordinate-method survivor set (the
// Dot8/Dot4 path).
// ---------------------------------------------------------------------------

// benchVerifyFixture builds a single 1024-vector bucket at dimension r with
// a candidate set covering the requested density.
func benchVerifyFixture(tb testing.TB, r int, dense bool) (ix *Index, bk *bucket, qdir []float64, cand []int32) {
	tb.Helper()
	rng := rand.New(rand.NewSource(401 + int64(r)))
	p := genMatrix(rng, 1024, r, 0.6, 1, false, 0, 0)
	var err error
	ix, err = NewIndex(p, Options{MinBucketSize: 1024})
	if err != nil {
		tb.Fatal(err)
	}
	bk = ix.scan[0]
	qdir = make([]float64, r)
	for f := range qdir {
		qdir[f] = rng.NormFloat64()
	}
	vecmath.Normalize(qdir, qdir)
	if dense {
		for lid := int32(0); lid < 512; lid++ {
			cand = append(cand, lid)
		}
	} else {
		for lid := int32(0); lid < int32(bk.size()); lid++ {
			if rng.Intn(2) == 0 {
				cand = append(cand, lid)
			}
		}
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	}
	return ix, bk, qdir, cand
}

func verifyGrid(b *testing.B, run func(b *testing.B, ix *Index, bk *bucket, qdir []float64, cand []int32)) {
	for _, r := range []int{16, 64, 256} {
		for _, dense := range []bool{true, false} {
			name := fmt.Sprintf("r=%d/sparse", r)
			if dense {
				name = fmt.Sprintf("r=%d/dense", r)
			}
			b.Run(name, func(b *testing.B) {
				ix, bk, qdir, cand := benchVerifyFixture(b, r, dense)
				b.SetBytes(int64(len(cand) * r * 8))
				b.ResetTimer()
				run(b, ix, bk, qdir, cand)
			})
		}
	}
}

// BenchmarkVerifyScalar is the seed per-candidate verification loop.
func BenchmarkVerifyScalar(b *testing.B) {
	verifyGrid(b, func(b *testing.B, ix *Index, bk *bucket, qdir []float64, cand []int32) {
		s := newScratch(bk.size(), bk.r)
		var acc float64
		for i := 0; i < b.N; i++ {
			s.cand = append(s.cand[:0], cand...)
			for _, lid := range s.cand {
				if ix.deadSkip(bk, int(lid)) {
					continue
				}
				acc += vecmath.Dot(qdir, bk.dir(int(lid))) * bk.lens[lid]
			}
		}
		verifySink.Store(math.Float64bits(acc))
	})
}

// BenchmarkVerifyBlocked is the production path — compact + blocked
// kernels in generator order (no sort; see verify.go) — including the
// per-iteration cost of re-copying the candidate list the way a real
// (query, bucket) pair pays it.
func BenchmarkVerifyBlocked(b *testing.B) {
	verifyGrid(b, func(b *testing.B, ix *Index, bk *bucket, qdir []float64, cand []int32) {
		s := newScratch(bk.size(), bk.r)
		var st Stats
		var acc float64
		for i := 0; i < b.N; i++ {
			s.cand = append(s.cand[:0], cand...)
			ix.compactLiveCands(bk, s)
			verifyDots(bk, qdir, s, &st)
			for j, lid := range s.cand {
				acc += s.vals[j] * bk.lens[lid]
			}
		}
		verifySink.Store(math.Float64bits(acc))
	})
}

// BenchmarkVerifyKernelGuard is the CI regression gate (bench-smoke runs it
// at -benchtime=1x): it times the scalar and blocked verifiers itself,
// best-of-several rounds. The hard failure condition is the one that means
// a real regression on any machine — the blocked path running SLOWER than
// scalar. The per-cell targets (1.5× at r=64 strided, the acceptance bar;
// measured 1.4–1.8× on a dedicated Xeon) are logged, and missing them
// only warns: shared CI runners are heterogeneous, contended VMs whose
// absolute ratios drift, and a red build should mean the kernel broke,
// not that the runner was busy. Run it alone for a clean reading:
// go test -bench VerifyKernelGuard ./internal/core
func BenchmarkVerifyKernelGuard(b *testing.B) {
	type cell struct {
		r     int
		dense bool
		min   float64 // hard floor: below this the kernel regressed
		want  float64 // documented target; missing it logs a warning
	}
	// The strided (sparse) path is the acceptance bar: coordinate-method
	// survivor sets are the common shape once θ is moderate. The dense
	// panel path gets a looser target — it is still faster than scalar,
	// but its 8 equally-strided streams sit closer to the cache's conflict
	// limits.
	cells := []cell{
		{16, false, 1.0, 1.25},
		{64, false, 1.0, 1.5},
		{256, false, 1.0, 1.2},
		{64, true, 1.0, 1.1},
	}
	for _, c := range cells {
		ix, bk, qdir, cand := benchVerifyFixture(b, c.r, c.dense)
		s := newScratch(bk.size(), bk.r)
		var st Stats
		var acc float64
		scalarPass := func() {
			s.cand = append(s.cand[:0], cand...)
			for _, lid := range s.cand {
				if ix.deadSkip(bk, int(lid)) {
					continue
				}
				acc += vecmath.Dot(qdir, bk.dir(int(lid))) * bk.lens[lid]
			}
		}
		blockedPass := func() {
			s.cand = append(s.cand[:0], cand...)
			ix.compactLiveCands(bk, s)
			verifyDots(bk, qdir, s, &st)
			for j, lid := range s.cand {
				acc += s.vals[j] * bk.lens[lid]
			}
		}
		reps := 1 + (1<<22)/(len(cand)*c.r+1)
		best := 0.0
		// Several attempts: a single scheduler hiccup must not fail CI.
		for attempt := 0; attempt < 6 && best < c.want; attempt++ {
			scalar, blocked := time.Duration(1<<62), time.Duration(1<<62)
			for round := 0; round < 4; round++ {
				start := time.Now()
				for i := 0; i < reps; i++ {
					scalarPass()
				}
				if d := time.Since(start); d < scalar {
					scalar = d
				}
				start = time.Now()
				for i := 0; i < reps; i++ {
					blockedPass()
				}
				if d := time.Since(start); d < blocked {
					blocked = d
				}
			}
			if ratio := float64(scalar) / float64(blocked); ratio > best {
				best = ratio
			}
		}
		verifySink.Store(math.Float64bits(acc))
		b.Logf("r=%d dense=%v: blocked %.2fx over scalar (target %.2fx, floor %.2fx)", c.r, c.dense, best, c.want, c.min)
		if best < c.min {
			b.Fatalf("blocked verification is only %.2fx over scalar at r=%d (floor %.2fx): the kernel regressed", best, c.r, c.min)
		}
		if best < c.want {
			b.Logf("WARNING: r=%d dense=%v below its %.2fx target — expected on contended runners, investigate if persistent", c.r, c.dense, c.want)
		}
	}
}
