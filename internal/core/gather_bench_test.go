package core

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/vecmath"
)

// Micro-benchmarks of the per-(query,bucket) gather kernels, the inner loop
// of the retrieval phase. One bucket of 1024 vectors at r=50 (the paper's
// dimensionality), a mid-range local threshold.

func benchBucket(b *testing.B) (*bucket, []float64, *scratch) {
	b.Helper()
	rng := rand.New(rand.NewSource(301))
	p := genMatrix(rng, 1024, 50, 0.6, 1, false, 0, 0)
	buckets := bucketize(p, nil, 0, 1, 0)
	bk := buckets[0]
	bk.ensureLists()
	qdir := make([]float64, 50)
	for f := range qdir {
		qdir[f] = rng.NormFloat64()
	}
	vecmath.Normalize(qdir, qdir)
	return bk, qdir, newScratch(bk.size(), 50)
}

func BenchmarkGatherLength(b *testing.B) {
	bk, _, s := benchBucket(b)
	theta := bk.lens[bk.size()/2] // half the bucket qualifies
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLength(bk, theta, 1, s)
	}
}

func BenchmarkGatherCoord(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCoord(bk, qdir, 0.7, 3, s)
	}
}

func BenchmarkGatherIncr(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	theta := 0.7 * bk.lb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runIncr(bk, qdir, 1, theta, 0.7, 3, s)
	}
}

func BenchmarkGatherBucketTA(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBucketTA(bk, qdir, 0.7, s)
	}
}

func BenchmarkGatherBucketTree(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	bk.ensureTree()
	theta := 0.7 * bk.lb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBucketTree(bk, qdir, 1, theta, s)
	}
}

func BenchmarkGatherL2AP(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	bk.ensureL2AP(0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBucketL2AP(bk, qdir, 0.7, 0.7, s)
	}
}

func BenchmarkVerification(b *testing.B) {
	bk, qdir, s := benchBucket(b)
	runLength(bk, bk.lens[bk.size()/2], 1, s) // ~512 candidates
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		for _, lid := range s.cand {
			acc += vecmath.Dot(qdir, bk.dir(int(lid)))
		}
	}
	verifySink.Store(math.Float64bits(acc))
}
