package core

import "lemp/internal/lsh"

// runBucketBLSH prunes candidates with BayesLSH-Lite (the paper's
// LEMP-BLSH, §6.3): the length-qualified prefix of the bucket (exactly
// LENGTH's candidate set) is filtered by signature agreement — a vector
// survives only if its signature matches the query's in at least
// MinMatches(θ_b) bits, the smallest count for which the Bayesian
// posterior P(cos ≥ θ_b | matches) reaches ε. One 32-bit signature, as the
// paper found best. This is the library's only approximate method: each
// true result independently escapes with probability ≤ ε.
func runBucketBLSH(b *bucket, h *lsh.Hasher, table *lsh.Table, qi int32, qdir []float64, qlen, theta, thetaB float64, s *scratch) {
	s.cand = s.cand[:0]
	sigs := b.ensureSigs(h)
	if s.sigQuery != qi {
		s.sigQuery = qi
		s.sig = h.Signature(qdir)
	}
	minLen := theta / qlen
	prefix := b.lengthPrefix(minLen)
	need := table.MinMatches(thetaB)
	bits := h.Bits()
	for lid := 0; lid < prefix; lid++ {
		if lsh.Matches(s.sig, sigs[lid], bits) >= need {
			s.cand = append(s.cand, int32(lid))
		}
	}
	s.work += int64(prefix)
}
