package core

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
	"lemp/internal/vecmath"
)

// With strong length skew and a high threshold, the bucket-level pruning of
// Algorithm 1 (line 13) must skip most (query, bucket) pairs — the headline
// mechanism of the paper.
func TestBucketPruningEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	q := genMatrix(rng, 80, 8, 1.5, 1, false, 0, 0)
	p := genMatrix(rng, 800, 8, 1.5, 1, false, 0, 0)
	theta, _ := safeTheta(t, q, p, 30)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	_, st := collectAbove(t, ix, q, theta)
	total := st.ProcessedPairs + st.PrunedPairs
	if total != int64(q.N())*int64(ix.NumBuckets()) {
		t.Fatalf("pair accounting off: %d of %d", total, q.N()*ix.NumBuckets())
	}
	if frac := float64(st.PrunedPairs) / float64(total); frac < 0.5 {
		t.Errorf("only %.0f%% of pairs pruned on a high-skew instance", frac*100)
	}
	// Lazy indexing: pruned buckets must not have been indexed.
	if st.IndexedBuckets >= st.Buckets {
		t.Errorf("all %d buckets indexed despite pruning", st.Buckets)
	}
}

// A query longer than everything must process buckets; one shorter than
// useful must be pruned everywhere. This exercises the sorted-query early
// exits in the Above-θ worker.
func TestQueryOrderEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	p := genMatrix(rng, 200, 6, 0.5, 1, false, 0, 0)
	// One giant query, one tiny one.
	q := matrix.New(6, 2)
	for f := 0; f < 6; f++ {
		q.Vec(0)[f] = 100
		q.Vec(1)[f] = 1e-9
	}
	ix, _ := NewIndex(p, testOptions(AlgLI))
	var got []retrieval.Entry
	st, err := ix.AboveTheta(q, 5, retrieval.Collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got {
		if e.Query != 0 {
			t.Fatalf("tiny query produced entry %+v", e)
		}
		if want := q.Product(p, e.Query, e.Probe); math.Abs(want-e.Value) > 1e-6 {
			t.Fatalf("value mismatch: %g vs %g", e.Value, want)
		}
	}
	// The tiny query must have been pruned against every bucket.
	if st.PrunedPairs < int64(ix.NumBuckets()) {
		t.Errorf("pruned pairs %d < buckets %d", st.PrunedPairs, ix.NumBuckets())
	}
}

// Row-Top-k with all-negative products: the running threshold stays
// negative and no bucket may be pruned, yet results must match Naive.
func TestRowTopKAllNegativeProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	q := negate(genMatrix(rng, 25, 7, 0.8, 1, true, 0, 0))
	p := genMatrix(rng, 150, 7, 0.8, 1, true, 0, 0)
	want, _ := naive.RowTopK(q, p, 4)
	for _, alg := range Algorithms() {
		if !alg.Exact() {
			continue
		}
		ix, _ := NewIndex(p, testOptions(alg))
		got, st, err := ix.RowTopK(q, 4)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		compareTopK(t, "neg-"+alg.String(), q, p, got, want)
		if st.PrunedPairs != 0 {
			t.Errorf("%v pruned %d pairs despite negative thresholds", alg, st.PrunedPairs)
		}
	}
}

// BLSH in Row-Top-k mode: the returned values must still be exact products
// of real probes (only membership is approximate).
func TestBLSHRowTopKValuesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	q := genMatrix(rng, 40, 10, 0.8, 1, false, 0, 0)
	p := genMatrix(rng, 300, 10, 0.8, 1, false, 0, 0)
	ix, _ := NewIndex(p, testOptions(AlgBLSH))
	got, _, err := ix.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := naive.RowTopK(q, p, 5)
	var sumExact, sumGot float64
	for i, row := range got {
		if len(row) != 5 {
			t.Fatalf("row %d has %d entries", i, len(row))
		}
		for j, e := range row {
			want := q.Product(p, i, e.Probe)
			if math.Abs(e.Value-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("row %d: value %g is not the product %g", i, e.Value, want)
			}
			sumGot += e.Value
			sumExact += exact[i][j].Value
		}
	}
	// Aggregate quality: the approximate top-k mass should be close to
	// the exact mass (ε = 0.03 per candidate).
	if sumGot < 0.9*sumExact {
		t.Errorf("BLSH top-k mass %.3f far below exact %.3f", sumGot, sumExact)
	}
}

// Repeated retrieval calls on one Index must agree (lazy structures are
// built once; CP arrays carry garbage between queries by design).
func TestIndexReuseAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	q := genMatrix(rng, 50, 8, 1.0, 1, false, 0, 0)
	p := genMatrix(rng, 350, 8, 1.0, 1, false, 0, 0)
	theta, _ := safeTheta(t, q, p, 120)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	first, _ := collectAbove(t, ix, q, theta)
	for trial := 0; trial < 3; trial++ {
		again, _ := collectAbove(t, ix, q, theta)
		if !retrieval.EqualSets(first, again) {
			t.Fatalf("call %d returned %d entries, first returned %d", trial, len(again), len(first))
		}
	}
	// Interleave a Row-Top-k call and re-check.
	if _, _, err := ix.RowTopK(q, 3); err != nil {
		t.Fatal(err)
	}
	again, _ := collectAbove(t, ix, q, theta)
	if !retrieval.EqualSets(first, again) {
		t.Fatal("Above-θ results changed after a Row-Top-k call")
	}
}

// The L2AP bucket index must transparently rebuild when a later run needs a
// smaller index-time threshold.
func TestL2APIndexRebuildOnSmallerThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	q := genMatrix(rng, 40, 8, 0.8, 1, false, 0, 0)
	p := genMatrix(rng, 250, 8, 0.8, 1, false, 0, 0)
	thetaHigh, _ := safeTheta(t, q, p, 20)
	thetaLow, _ := safeTheta(t, q, p, 600)
	if thetaLow >= thetaHigh {
		t.Skip("levels collapsed")
	}
	ix, _ := NewIndex(p, testOptions(AlgL2AP))
	// High threshold first: the index is built with a large t0.
	var wantHigh, wantLow []retrieval.Entry
	naive.AboveTheta(q, p, thetaHigh, retrieval.Collect(&wantHigh))
	naive.AboveTheta(q, p, thetaLow, retrieval.Collect(&wantLow))
	gotHigh, _ := collectAbove(t, ix, q, thetaHigh)
	if !retrieval.EqualSets(gotHigh, wantHigh) {
		t.Fatalf("high-θ run: %d vs %d", len(gotHigh), len(wantHigh))
	}
	// Low threshold afterwards: without the rebuild this would lose
	// entries hidden in un-indexed prefixes.
	gotLow, _ := collectAbove(t, ix, q, thetaLow)
	if !retrieval.EqualSets(gotLow, wantLow) {
		t.Fatalf("low-θ run after high-θ run: %d vs %d", len(gotLow), len(wantLow))
	}
}

// Verification values must equal ‖q‖·‖p‖·cos(q,p) no matter which bucket
// algorithm produced the candidates.
func TestVerificationValueDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	q := genMatrix(rng, 30, 6, 0.7, 1, false, 0, 0)
	p := genMatrix(rng, 200, 6, 0.7, 1, false, 0, 0)
	theta, _ := safeTheta(t, q, p, 50)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	got, _ := collectAbove(t, ix, q, theta)
	for _, e := range got {
		qv, pv := q.Vec(e.Query), p.Vec(e.Probe)
		want := vecmath.Norm(qv) * vecmath.Norm(pv) * vecmath.Cos(qv, pv)
		if math.Abs(e.Value-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("entry (%d,%d): %g vs decomposition %g", e.Query, e.Probe, e.Value, want)
		}
	}
}
