package core

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/naive"
	"lemp/internal/retrieval"
)

// FuzzAboveThetaEquivalence drives the whole pipeline from a fuzzed seed:
// a random instance is generated from the seed, a threshold is calibrated,
// and every exact algorithm must agree with Naive. `go test` runs the seed
// corpus; `go test -fuzz=FuzzAboveTheta` explores further.
func FuzzAboveThetaEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(50), false)
	f.Add(int64(2), uint8(1), uint8(200), true)
	f.Add(int64(3), uint8(16), uint8(120), false)
	f.Add(int64(99), uint8(3), uint8(31), true)
	f.Fuzz(func(t *testing.T, seed int64, rRaw, nRaw uint8, sparse bool) {
		r := 1 + int(rRaw)%24
		n := 8 + int(nRaw)
		rng := rand.New(rand.NewSource(seed))
		sparsity := 1.0
		if sparse {
			sparsity = 0.4
		}
		q := genMatrix(rng, 12+rng.Intn(20), r, 0.9, sparsity, false, 1, 0)
		p := genMatrix(rng, n, r, 0.9, sparsity, false, 1, 3)
		theta, _, ok := safeThetaAt(q, p, 1+n/4)
		if !ok {
			t.Skip("no positive threshold for this instance")
		}
		var want []retrieval.Entry
		naive.AboveTheta(q, p, theta, retrieval.Collect(&want))
		for _, alg := range Algorithms() {
			if !alg.Exact() {
				continue
			}
			ix, err := NewIndex(p, testOptions(alg))
			if err != nil {
				t.Fatalf("NewIndex(%v): %v", alg, err)
			}
			var got []retrieval.Entry
			if _, err := ix.AboveTheta(q, theta, retrieval.Collect(&got)); err != nil {
				t.Fatalf("AboveTheta(%v): %v", alg, err)
			}
			if !retrieval.EqualSets(got, want) {
				t.Fatalf("alg %v: %d entries, naive %d (θ=%g, seed=%d r=%d n=%d sparse=%v)",
					alg, len(got), len(want), theta, seed, r, n, sparse)
			}
		}
	})
}

// FuzzRowTopKEquivalence does the same for Row-Top-k, comparing value
// sequences (tie-robust).
func FuzzRowTopKEquivalence(f *testing.F) {
	f.Add(int64(4), uint8(6), uint8(80), uint8(3))
	f.Add(int64(5), uint8(2), uint8(40), uint8(1))
	f.Add(int64(6), uint8(12), uint8(160), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, rRaw, nRaw, kRaw uint8) {
		r := 1 + int(rRaw)%20
		n := 5 + int(nRaw)
		k := 1 + int(kRaw)%12
		rng := rand.New(rand.NewSource(seed))
		q := genMatrix(rng, 10+rng.Intn(15), r, 1.1, 1, false, 1, 0)
		p := genMatrix(rng, n, r, 1.1, 1, false, 1, 2)
		want, _ := naive.RowTopK(q, p, k)
		for _, alg := range Algorithms() {
			if !alg.Exact() {
				continue
			}
			ix, err := NewIndex(p, testOptions(alg))
			if err != nil {
				t.Fatalf("NewIndex(%v): %v", alg, err)
			}
			got, _, err := ix.RowTopK(q, k)
			if err != nil {
				t.Fatalf("RowTopK(%v): %v", alg, err)
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("alg %v row %d: %d entries, want %d", alg, i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					gv, wv := got[i][j].Value, want[i][j].Value
					if math.Abs(gv-wv) > 1e-9*(1+math.Abs(wv)) {
						t.Fatalf("alg %v row %d rank %d: %g vs %g (seed=%d)", alg, i, j, gv, wv, seed)
					}
				}
			}
		}
	})
}

// INCR with φ=1 must never return more candidates than COORD with φ=1
// (Appendix A substitutes COORD in that case), and both must contain every
// true result.
func TestIncrSubsetOfCoordAtPhi1(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 40; trial++ {
		p := genMatrix(rng, 120, 8, 0.8, 1, false, 0, 0)
		buckets := bucketize(p, nil, 0, 1, 0)
		b := buckets[0]
		qdir := randUnit(rng, 8)
		qlen := 0.5 + rng.Float64()*2
		thetaB := 0.3 + rng.Float64()*0.65
		theta := thetaB * qlen * b.lb

		sC := newScratch(b.size(), 8)
		runCoord(b, qdir, thetaB, 1, sC)
		coordSet := map[int32]bool{}
		for _, lid := range sC.cand {
			coordSet[lid] = true
		}
		sI := newScratch(b.size(), 8)
		runIncr(b, qdir, qlen, theta, thetaB, 1, sI)
		for _, lid := range sI.cand {
			if !coordSet[lid] {
				t.Fatalf("trial %d: INCR candidate %d missing from COORD's set", trial, lid)
			}
		}
		// Soundness: both sets contain every vector passing the global
		// threshold.
		for lid := 0; lid < b.size(); lid++ {
			v := dot(qdir, b.dir(lid)) * qlen * b.lens[lid]
			if v >= theta+1e-9 && !coordSet[int32(lid)] {
				t.Fatalf("trial %d: true result %d (v=%g θ=%g) not in COORD set", trial, lid, v, theta)
			}
		}
	}
}
