package core

import (
	"context"
	"fmt"

	"lemp/internal/obs"
)

// Per-call execution policy. Index construction fixes everything structural
// (bucketization, cache sizing, the id space); RunOptions carries the few
// knobs that are legitimately per-query-batch decisions — which bucket
// algorithm to run, how many goroutines to fan out over, and whether fitted
// tuning parameters may be reused across calls — so a serving system can
// hold one index and vary execution policy request by request.

// RunOptions are per-call overrides of an Index's build-time Options plus
// the cross-call tuning cache. The zero value runs with the index defaults.
type RunOptions struct {
	// Algorithm overrides the bucket algorithm for this call only (nil
	// keeps the index's Options.Algorithm). Structural options that shaped
	// the per-bucket indexes are unaffected; lazily built indexes for the
	// new algorithm appear on first use, like after a fresh build.
	Algorithm *Algorithm
	// Parallelism overrides Options.Parallelism when > 0.
	Parallelism int
	// Cache, when non-nil, reuses fitted per-bucket tuning parameters
	// (§4.4) across calls with the same problem, algorithm and index
	// version, eliminating the per-call sample-tuning cost that dominates
	// small serving batches. See TuningCache.
	Cache *TuningCache

	// screenApprox lets quantized screening survivors adopt their
	// approximate dot instead of falling through to the exact kernels.
	// Only the Approx retrieval mode sets it (for its centroid phase —
	// the final re-rank stays exact); it is deliberately unexported so
	// exact drivers cannot be switched into approximate mode from outside.
	screenApprox bool
}

// effOptions resolves the per-call effective options: the index's defaults
// with the RunOptions overrides applied and re-validated.
func (ix *Index) effOptions(ro RunOptions) (Options, error) {
	o := ix.opts
	if ro.Algorithm != nil {
		o.Algorithm = *ro.Algorithm
	}
	if ro.Parallelism > 0 {
		o.Parallelism = ro.Parallelism
	}
	if ro.Parallelism < 0 {
		return o, fmt.Errorf("core: parallelism %d must be positive", ro.Parallelism)
	}
	if err := o.validate(); err != nil {
		return o, err
	}
	return o, nil
}

// call is the per-invocation state threaded through a retrieval driver and
// its workers: the caller's context (sampled at bucket boundaries so a
// cancellation aborts the scan promptly), the effective options, and the
// request trace (if any) for phase spans.
type call struct {
	opts   Options
	cache  *TuningCache
	approx bool            // RunOptions.screenApprox: survivors keep approximate dots
	done   <-chan struct{} // ctx.Done(); nil for context.Background()
	err    func() error    // ctx.Err
	tr     *obs.Trace      // request trace; nil when untraced
	span   obs.SpanRef     // parent span for this call's phase spans
}

// newCall binds a context and effective options into a call. A trace
// carried by the context (obs.ContextWithSpan — the server attaches one
// per shard fan-out) makes the call record tune/scan phase spans; the
// hooks sit at the same boundaries as the cancellation checkpoints and
// are free for untraced calls.
func newCall(ctx context.Context, opts Options, cache *TuningCache) *call {
	if ctx == nil {
		ctx = context.Background()
	}
	tr, parent := obs.SpanFrom(ctx)
	return &call{opts: opts, cache: cache, done: ctx.Done(), err: ctx.Err, tr: tr, span: parent}
}

// startSpan opens a phase span under the call's parent span; a no-op
// returning obs.NoSpan for untraced calls.
func (c *call) startSpan(name string) obs.SpanRef {
	return c.tr.Start(name, c.span)
}

// endSpan closes a phase span.
func (c *call) endSpan(ref obs.SpanRef) { c.tr.End(ref) }

// canceled reports whether the call's context is done. It is the
// cancellation checkpoint the drivers place at bucket boundaries: one
// non-blocking channel poll, free for background contexts.
func (c *call) canceled() bool {
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// ctxErr returns the context's error (context.Canceled or
// context.DeadlineExceeded) once canceled() has reported true.
func (c *call) ctxErr() error {
	if err := c.err(); err != nil {
		return err
	}
	return context.Canceled
}
