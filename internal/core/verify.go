package core

import (
	"math/bits"
	"slices"

	"lemp/internal/vecmath"
)

// Blocked verification. Candidate generation prunes, but every surviving
// candidate still pays an exact inner product (§3.2, line 16 of Algorithm 1),
// and once thresholds are moderate that verification dominates retrieval
// time. Instead of one vecmath.Dot call per candidate, the verifier:
//
//  1. compacts the candidate list to live entries in place (tombstone
//     filtering moves out of the dot-product loop);
//  2. detects the common contiguous-ascending case — LENGTH's prefix and
//     the whole-bucket fallback produce lids 0..c-1 — and runs one DotBatch
//     panel pass directly over b.dirs with zero gathering (the candidate set
//     is literally a dense matrix–vector product there);
//  3. otherwise verifies in 8/4-wide blocks with vecmath.Dot8/Dot4 over the
//     strided rows in generator order, falling back to scalar Dot only for
//     the ragged tail. Candidates are deliberately NOT sorted first:
//     buckets are sized to stay cache-resident (Options.CacheBytes), so a
//     sort buys no locality while costing O(c log c) per (query, bucket)
//     pair — benchmarked as a net loss at every r in {16, 64, 256}.
//
// Every kernel keeps Dot's per-row accumulation order, so the blocked
// verifier is bit-identical to the scalar one — the differential mutation
// harness (delta_test.go) asserts byte-identical retrieval results across
// it. Threshold and heap checks are applied per block by the callers, which
// read the dot products back out of s.vals.

// compactLiveCands drops tombstoned candidates from s.cand in place,
// preserving the generator's order. Delta buckets hold only live entries
// and skip the filter entirely.
func (ix *Index) compactLiveCands(b *bucket, s *scratch) {
	if b.delta || len(ix.dead) == 0 {
		return
	}
	cand := s.cand
	k := 0
	for _, lid := range cand {
		if _, gone := ix.dead[b.ids[lid]]; !gone {
			cand[k] = lid
			k++
		}
	}
	s.cand = cand[:k]
}

// screenCands runs the quantized prefilter over s.cand, between tombstone
// compaction and exact verification: the checkpoint bound (an int8
// head-prefix dot plus quant's remaining-mass Cauchy–Schwarz term) screens
// losers at a quarter of the dot work. The bound caps the scaled value the
// caller would emit, computed in the caller's own multiply order —
// (val·qlen)·lens for Above-θ, val·lens for top-k with qlen == 1 — so float
// rounding monotonicity makes the comparison sound. Candidates whose upper
// bound falls below cut (θ, or the current top-k heap floor) are dropped
// from s.cand in place without touching their f64 row; a non-finite upper
// bound compares false and conservatively survives. Checkpoint survivors go
// straight to the exact kernels: finishing the remaining int8 dimensions
// for the tighter full bracket kills so few extra candidates (the
// checkpoint takes ~96% of the full bound's kills on spectral-decay data)
// that the exact f64 dot for those borderline rows is cheaper than the
// finish pass over every survivor.
//
// With approxOnly set (the Approx retrieval mode's centroid phase),
// survivors adopt their approximate dot into s.vals and the caller skips
// exact verification entirely. The return value reports that: true means
// s.vals is already filled and verifyDots must not run.
//
// Screening is off — returning false with s.cand untouched — when the
// bucket has no sidecar or the query does not quantize cleanly (non-finite
// coordinates, degenerate magnitudes).
func (ix *Index) screenCands(b *bucket, s *scratch, qi int32, qdir []float64, qlen, cut float64, approxOnly bool, st *Stats) bool {
	q8 := b.q8
	if q8 == nil || !s.quantQuery(qi, qdir) {
		return false
	}
	cand := s.cand
	if approxOnly {
		if cap(s.vals) < len(cand) {
			s.vals = make([]float64, len(cand)+len(cand)/2+8)
		}
		s.vals = s.vals[:cap(s.vals)]
	}
	// qlen is folded into the screen's constants (NewScreen's emit factor),
	// so the per-candidate predicate is one multiply against the row length
	// — still the caller's emit multiply order, (val·qlen)·lens, with the
	// inner factor bounded instead of computed.
	scr := q8.NewScreen(s.q8q, qlen)
	k := 0
	i := 0
	// 8-wide main loop: the batched int8 head-dot kernel amortizes the
	// shared query loads and loop control across rows, mirroring the Dot8
	// structure of exact verification, and applies the cutoff predicate
	// in-kernel — the caller walks only the survivor bits of the returned
	// mask, usually none. Only the Approx mode finishes the remaining
	// dimensions — it needs the approximate value and the tight bracket;
	// the exact path hands checkpoint survivors to the f64 kernels
	// directly.
	// LENGTH's prefix (and the whole-bucket fallback) hands over lids
	// 0..c-1 in order; in that contiguous-ascending case the per-block row
	// lengths are a direct slice view into b.lens instead of a gather.
	contig := len(cand) > 0 && int(cand[len(cand)-1])-int(cand[0]) == len(cand)-1 &&
		slices.IsSorted(cand)
	var dh [8]int32
	var lens8 [8]float64
	for ; i+8 <= len(cand); i += 8 {
		lens := &lens8
		if contig {
			lens = (*[8]float64)(b.lens[cand[i] : cand[i]+8])
		} else {
			for j := 0; j < 8; j++ {
				lens8[j] = b.lens[cand[i+j]]
			}
		}
		mask := scr.Screen8(int(cand[i]), int(cand[i+1]), int(cand[i+2]), int(cand[i+3]),
			int(cand[i+4]), int(cand[i+5]), int(cand[i+6]), int(cand[i+7]), lens, cut, &dh)
		for m := mask; m != 0; m &= m - 1 {
			j := bits.TrailingZeros8(m)
			lid := cand[i+j]
			if approxOnly {
				approx, bound := q8.FinishApproxBound(s.q8q, int(lid), dh[j])
				if (approx+bound)*qlen*b.lens[lid] < cut {
					continue
				}
				s.vals[k] = approx
			}
			cand[k] = lid
			k++
		}
	}
	// 4-wide then scalar ragged tail. Very selective thresholds leave most
	// buckets with single-digit candidate prefixes, so the tail path is hot
	// there — it gets the same fused predicate as the main loop.
	if i+4 <= len(cand) {
		var dh4 [4]int32
		var lens4 [4]float64
		for j := 0; j < 4; j++ {
			lens4[j] = b.lens[cand[i+j]]
		}
		mask := scr.Screen4(int(cand[i]), int(cand[i+1]), int(cand[i+2]), int(cand[i+3]), &lens4, cut, &dh4)
		for m := mask; m != 0; m &= m - 1 {
			j := bits.TrailingZeros8(m)
			lid := cand[i+j]
			if approxOnly {
				approx, bound := q8.FinishApproxBound(s.q8q, int(lid), dh4[j])
				if (approx+bound)*qlen*b.lens[lid] < cut {
					continue
				}
				s.vals[k] = approx
			}
			cand[k] = lid
			k++
		}
		i += 4
	}
	for ; i < len(cand); i++ {
		lid := cand[i]
		head, u := scr.UB(int(lid))
		if u*b.lens[lid] < cut {
			continue
		}
		if approxOnly {
			approx, bound := q8.FinishApproxBound(s.q8q, int(lid), head)
			if (approx+bound)*qlen*b.lens[lid] < cut {
				continue
			}
			s.vals[k] = approx
		}
		cand[k] = lid
		k++
	}
	st.QuantScreened += int64(len(cand) - k)
	st.QuantSurvived += int64(k)
	s.cand = cand[:k]
	if approxOnly {
		s.vals = s.vals[:k]
	}
	return approxOnly
}

// verifyDots computes s.vals[i] = q̄ᵀp̄ for every (live) candidate s.cand[i]
// using the blocked kernels, and counts block- vs scalar-verified
// candidates into st.
func verifyDots(b *bucket, qdir []float64, s *scratch, st *Stats) {
	c := len(s.cand)
	if cap(s.vals) < c {
		s.vals = make([]float64, c+c/2+8)
	}
	s.vals = s.vals[:c]
	if c == 0 {
		return
	}
	// Contiguous ascending run (unique lids): one dense panel product.
	if int(s.cand[c-1])-int(s.cand[0]) == c-1 && slices.IsSorted(s.cand) {
		lo := int(s.cand[0])
		vecmath.DotBatch(qdir, b.dirs[lo*b.r:(lo+c)*b.r], s.vals)
		st.BlockVerified += int64(c)
		return
	}
	i := 0
	for ; i+8 <= c; i += 8 {
		vecmath.Dot8(qdir,
			b.dir(int(s.cand[i])), b.dir(int(s.cand[i+1])),
			b.dir(int(s.cand[i+2])), b.dir(int(s.cand[i+3])),
			b.dir(int(s.cand[i+4])), b.dir(int(s.cand[i+5])),
			b.dir(int(s.cand[i+6])), b.dir(int(s.cand[i+7])),
			(*[8]float64)(s.vals[i:i+8]))
	}
	for ; i+4 <= c; i += 4 {
		vecmath.Dot4(qdir,
			b.dir(int(s.cand[i])), b.dir(int(s.cand[i+1])),
			b.dir(int(s.cand[i+2])), b.dir(int(s.cand[i+3])),
			(*[4]float64)(s.vals[i:i+4]))
	}
	st.BlockVerified += int64(i)
	st.ScalarVerified += int64(c - i)
	for ; i < c; i++ {
		s.vals[i] = vecmath.Dot(qdir, b.dir(int(s.cand[i])))
	}
}
