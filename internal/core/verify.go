package core

import (
	"slices"

	"lemp/internal/vecmath"
)

// Blocked verification. Candidate generation prunes, but every surviving
// candidate still pays an exact inner product (§3.2, line 16 of Algorithm 1),
// and once thresholds are moderate that verification dominates retrieval
// time. Instead of one vecmath.Dot call per candidate, the verifier:
//
//  1. compacts the candidate list to live entries in place (tombstone
//     filtering moves out of the dot-product loop);
//  2. detects the common contiguous-ascending case — LENGTH's prefix and
//     the whole-bucket fallback produce lids 0..c-1 — and runs one DotBatch
//     panel pass directly over b.dirs with zero gathering (the candidate set
//     is literally a dense matrix–vector product there);
//  3. otherwise verifies in 8/4-wide blocks with vecmath.Dot8/Dot4 over the
//     strided rows in generator order, falling back to scalar Dot only for
//     the ragged tail. Candidates are deliberately NOT sorted first:
//     buckets are sized to stay cache-resident (Options.CacheBytes), so a
//     sort buys no locality while costing O(c log c) per (query, bucket)
//     pair — benchmarked as a net loss at every r in {16, 64, 256}.
//
// Every kernel keeps Dot's per-row accumulation order, so the blocked
// verifier is bit-identical to the scalar one — the differential mutation
// harness (delta_test.go) asserts byte-identical retrieval results across
// it. Threshold and heap checks are applied per block by the callers, which
// read the dot products back out of s.vals.

// compactLiveCands drops tombstoned candidates from s.cand in place,
// preserving the generator's order. Delta buckets hold only live entries
// and skip the filter entirely.
func (ix *Index) compactLiveCands(b *bucket, s *scratch) {
	if b.delta || len(ix.dead) == 0 {
		return
	}
	cand := s.cand
	k := 0
	for _, lid := range cand {
		if _, gone := ix.dead[b.ids[lid]]; !gone {
			cand[k] = lid
			k++
		}
	}
	s.cand = cand[:k]
}

// verifyDots computes s.vals[i] = q̄ᵀp̄ for every (live) candidate s.cand[i]
// using the blocked kernels, and counts block- vs scalar-verified
// candidates into st.
func verifyDots(b *bucket, qdir []float64, s *scratch, st *Stats) {
	c := len(s.cand)
	if cap(s.vals) < c {
		s.vals = make([]float64, c+c/2+8)
	}
	s.vals = s.vals[:c]
	if c == 0 {
		return
	}
	// Contiguous ascending run (unique lids): one dense panel product.
	if int(s.cand[c-1])-int(s.cand[0]) == c-1 && slices.IsSorted(s.cand) {
		lo := int(s.cand[0])
		vecmath.DotBatch(qdir, b.dirs[lo*b.r:(lo+c)*b.r], s.vals)
		st.BlockVerified += int64(c)
		return
	}
	i := 0
	for ; i+8 <= c; i += 8 {
		vecmath.Dot8(qdir,
			b.dir(int(s.cand[i])), b.dir(int(s.cand[i+1])),
			b.dir(int(s.cand[i+2])), b.dir(int(s.cand[i+3])),
			b.dir(int(s.cand[i+4])), b.dir(int(s.cand[i+5])),
			b.dir(int(s.cand[i+6])), b.dir(int(s.cand[i+7])),
			(*[8]float64)(s.vals[i:i+8]))
	}
	for ; i+4 <= c; i += 4 {
		vecmath.Dot4(qdir,
			b.dir(int(s.cand[i])), b.dir(int(s.cand[i+1])),
			b.dir(int(s.cand[i+2])), b.dir(int(s.cand[i+3])),
			(*[4]float64)(s.vals[i:i+4]))
	}
	st.BlockVerified += int64(i)
	st.ScalarVerified += int64(c - i)
	for ; i < c; i++ {
		s.vals[i] = vecmath.Dot(qdir, b.dir(int(s.cand[i])))
	}
}
