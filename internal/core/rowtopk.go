package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// RowTopK retrieves, for every query vector, the k probe vectors with the
// largest inner products (Problem 2; fewer when P holds fewer than k
// vectors). Ties are broken arbitrarily.
//
// Per §4.5, each query runs Above-θ′ bucket by bucket in decreasing-length
// order with a running lower bound θ′ — the current k-th best value —
// starting unseeded (θ′ = -Inf, so the first bucket, which holds the
// longest vectors, is scanned fully and plays the role of the paper's
// "k longest vectors" seed). The query's length is irrelevant to the
// ranking, so the search runs on the unit direction (‖q‖ = 1) and values
// are rescaled at the end.
func (ix *Index) RowTopK(q *matrix.Matrix, k int) (retrieval.TopK, Stats, error) {
	if q.R() != ix.r {
		return nil, Stats{}, fmt.Errorf("core: query dimension %d does not match index dimension %d", q.R(), ix.r)
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	st := Stats{Queries: q.N(), Buckets: len(ix.scan), PrepTime: ix.prepTime}
	out := make(retrieval.TopK, q.N())
	qs := prepareQueries(q)
	if ix.LiveN() > 0 && ix.needsTuning() {
		tuneStart := time.Now()
		ix.tune(qs, tuneTopK{k: k})
		st.TuneTime = time.Since(tuneStart)
	}
	start := time.Now()
	if ix.opts.Parallelism == 1 || qs.n() < 2*ix.opts.Parallelism {
		s := newScratch(ix.maxBucket, ix.r)
		ix.topkWorker(qs, 0, qs.n(), k, s, out, &st)
	} else {
		workers := ix.opts.Parallelism
		stats := make([]Stats, workers)
		var wg sync.WaitGroup
		chunk := (qs.n() + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > qs.n() {
				hi = qs.n()
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				s := newScratch(ix.maxBucket, ix.r)
				ix.topkWorker(qs, lo, hi, k, s, out, &stats[w])
			}(w, lo, hi)
		}
		wg.Wait()
		for _, ws := range stats {
			st.Candidates += ws.Candidates
			st.Results += ws.Results
			st.ProcessedPairs += ws.ProcessedPairs
			st.PrunedPairs += ws.PrunedPairs
		}
	}
	st.RetrievalTime = time.Since(start)
	ix.countIndexedBuckets(&st)
	return out, st, nil
}

// topkWorker answers queries [lo, hi) of the sorted query set. Each worker
// owns its scratch and heap; output rows are disjoint, so no locking.
func (ix *Index) topkWorker(qs *querySet, lo, hi, k int, s *scratch, out retrieval.TopK, st *Stats) {
	live := ix.LiveN()
	if live == 0 {
		return
	}
	kk := k
	if kk > live {
		kk = live
	}
	heap := topk.New(kk)
	negInf := math.Inf(-1)
	for qi := lo; qi < hi; qi++ {
		origID := qs.ids[qi]
		qlen := qs.lens[qi]
		if qlen == 0 {
			row := ix.zeroQueryRow(int(origID), kk)
			out[origID] = row
			st.Results += int64(len(row))
			continue
		}
		qdir := qs.dir(qi)
		heap.Reset()
		for _, b := range ix.scan {
			theta, thetaB := negInf, negInf
			if thr, ok := heap.Threshold(); ok {
				theta = thr
				if b.lb == 0 {
					// Zero-length probes: products are 0.
					if theta > 0 {
						st.PrunedPairs++
						break
					}
					thetaB = -1
				} else {
					thetaB = theta / b.lb
					if thetaB > 1 {
						st.PrunedPairs++
						break
					}
				}
			} else if b.lb == 0 {
				thetaB = -1
			}
			st.ProcessedPairs++
			alg, phi := ix.resolve(b, thetaB)
			ix.gather(b, alg, phi, int32(qi), qdir, 1, theta, thetaB, 0, s)
			st.Candidates += int64(len(s.cand))
			s.work += int64(len(s.cand)) * int64(ix.r)
			for _, lid := range s.cand {
				if ix.deadSkip(b, int(lid)) {
					continue
				}
				v := vecmath.Dot(qdir, b.dir(int(lid))) * b.lens[lid]
				heap.Push(int(b.ids[lid]), v)
			}
		}
		items := heap.Items()
		row := make([]retrieval.Entry, len(items))
		for t, it := range items {
			row[t] = retrieval.Entry{Query: int(origID), Probe: it.ID, Value: it.Value * qlen}
		}
		st.Results += int64(len(row))
		out[origID] = row
	}
}

// zeroQueryRow answers a zero-length query: every product is 0, so any k
// probes qualify; return the k longest live probes (ties broken by smaller
// id) for determinism. With a delta layer the per-bucket length order no
// longer implies a global order, so the buckets are merged cursor-wise.
func (ix *Index) zeroQueryRow(origID, kk int) []retrieval.Entry {
	row := make([]retrieval.Entry, 0, kk)
	cur := make([]int, len(ix.scan))
	for len(row) < kk {
		best := -1
		var bestLen float64
		var bestID int32
		for bi, b := range ix.scan {
			for cur[bi] < b.size() && ix.deadSkip(b, cur[bi]) {
				cur[bi]++
			}
			if cur[bi] >= b.size() {
				continue
			}
			l, id := b.lens[cur[bi]], b.ids[cur[bi]]
			if best == -1 || l > bestLen || (l == bestLen && id < bestID) {
				best, bestLen, bestID = bi, l, id
			}
		}
		if best == -1 {
			break
		}
		row = append(row, retrieval.Entry{Query: origID, Probe: int(bestID), Value: 0})
		cur[best]++
	}
	return row
}
