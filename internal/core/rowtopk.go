package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/topk"
)

// RowTopK retrieves, for every query vector, the k probe vectors with the
// largest inner products (Problem 2; fewer when P holds fewer than k
// vectors). Ties are broken arbitrarily. It is RowTopKCtx with a background
// context and the index's build-time options.
func (ix *Index) RowTopK(q *matrix.Matrix, k int) (retrieval.TopK, Stats, error) {
	return ix.RowTopKCtx(context.Background(), q, k, RunOptions{})
}

// RowTopKCtx is the context-aware Row-Top-k driver with per-call execution
// overrides.
//
// Per §4.5, each query runs Above-θ′ bucket by bucket in decreasing-length
// order with a running lower bound θ′ — the current k-th best value —
// starting unseeded (θ′ = -Inf, so the first bucket, which holds the
// longest vectors, is scanned fully and plays the role of the paper's
// "k longest vectors" seed). The query's length is irrelevant to the
// ranking, so the search runs on the unit direction (‖q‖ = 1) and values
// are rescaled at the end.
//
// The context is checked at every (query, bucket) boundary, in the tuning
// sample and in every worker: a canceled call returns ctx.Err() within one
// bucket's work per worker and leaves the index fully reusable. No partial
// result is returned and no partial tuning fit is published.
func (ix *Index) RowTopKCtx(ctx context.Context, q *matrix.Matrix, k int, ro RunOptions) (retrieval.TopK, Stats, error) {
	if q.R() != ix.r {
		return nil, Stats{}, fmt.Errorf("core: query dimension %d does not match index dimension %d", q.R(), ix.r)
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	opts, err := ix.effOptions(ro)
	if err != nil {
		return nil, Stats{}, err
	}
	c := newCall(ctx, opts, ro.Cache)
	c.approx = ro.screenApprox
	st := Stats{Queries: q.N(), Buckets: len(ix.scan), PrepTime: ix.prepTime}
	out := make(retrieval.TopK, q.N())
	qs := prepareQueries(q)
	tuneSpan := c.startSpan("tune")
	if err := ix.ensureTuned(c, qs, tuneTopK{k: k}, &st); err != nil {
		c.endSpan(tuneSpan)
		return nil, st, err
	}
	c.endSpan(tuneSpan)
	scanSpan := c.startSpan("scan")
	start := time.Now()
	if c.opts.Parallelism == 1 || qs.n() < 2*c.opts.Parallelism {
		s := ix.getScratch()
		ix.topkWorker(c, qs, 0, qs.n(), k, s, out, &st)
		ix.putScratch(s)
	} else {
		// Workers claim query tiles from a shared cursor instead of
		// pre-cut chunks, so a straggler tile delays only itself
		// (tiles.go); each worker keeps one pooled scratch for all the
		// tiles it answers.
		workers := c.opts.Parallelism
		stats := make([]Stats, workers)
		cursor := newTileCursor(qs.n(), workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := ix.getScratch()
				defer ix.putScratch(s)
				for {
					lo, hi, ok := cursor.claim()
					if !ok || c.canceled() {
						return
					}
					ix.topkWorker(c, qs, lo, hi, k, s, out, &stats[w])
				}
			}(w)
		}
		wg.Wait()
		addWorkerStats(&st, stats)
	}
	st.RetrievalTime = time.Since(start)
	c.endSpan(scanSpan)
	ix.countIndexedBuckets(&st)
	if c.canceled() {
		return nil, st, c.ctxErr()
	}
	return out, st, nil
}

// topkWorker answers queries [lo, hi) of the sorted query set. Each worker
// owns its scratch and heap; output rows are disjoint, so no locking. The
// call's context is polled once per (query, bucket) pair, so cancellation
// costs at most one bucket of work per worker.
func (ix *Index) topkWorker(c *call, qs *querySet, lo, hi, k int, s *scratch, out retrieval.TopK, st *Stats) {
	live := ix.LiveN()
	if live == 0 {
		return
	}
	kk := k
	if kk > live {
		kk = live
	}
	heap := topk.New(kk)
	negInf := math.Inf(-1)
	for qi := lo; qi < hi; qi++ {
		origID := qs.ids[qi]
		qlen := qs.lens[qi]
		if qlen == 0 {
			if c.canceled() {
				return
			}
			row := ix.zeroQueryRow(int(origID), kk)
			out[origID] = row
			st.Results += int64(len(row))
			continue
		}
		qdir := qs.dir(qi)
		heap.Reset()
		for _, b := range ix.scan {
			if c.canceled() {
				return
			}
			theta, thetaB := negInf, negInf
			if thr, ok := heap.Threshold(); ok {
				theta = thr
				if b.lb == 0 {
					// Zero-length probes: products are 0.
					if theta > 0 {
						st.PrunedPairs++
						break
					}
					thetaB = -1
				} else {
					thetaB = theta / b.lb
					if thetaB > 1 {
						st.PrunedPairs++
						break
					}
				}
			} else if b.lb == 0 {
				thetaB = -1
			}
			st.ProcessedPairs++
			alg, phi := ix.resolve(c.opts, b, thetaB)
			ix.gather(b, alg, phi, int32(qi), qdir, 1, theta, thetaB, 0, s)
			st.Candidates += int64(len(s.cand))
			s.work += int64(len(s.cand)) * int64(ix.r)
			// Blocked verification (verify.go): drop tombstones, screen
			// against the current heap floor when a sidecar is active
			// (theta is -Inf until the heap fills, so nothing screens
			// before the seed; Push drops values ≤ floor, so strict-<
			// screening is byte-safe), compute the block dot products,
			// then apply the heap per block result. v = (q̄ᵀp̄)·‖p‖ exactly
			// as the scalar path computed it; in Approx mode v is the
			// quantized estimate and the exact kernels are skipped.
			ix.compactLiveCands(b, s)
			if !ix.screenCands(b, s, int32(qi), qdir, 1, theta, c.approx, st) {
				verifyDots(b, qdir, s, st)
			}
			for i, lid := range s.cand {
				heap.Push(int(b.ids[lid]), s.vals[i]*b.lens[lid])
			}
		}
		items := heap.Items()
		row := make([]retrieval.Entry, len(items))
		for t, it := range items {
			row[t] = retrieval.Entry{Query: int(origID), Probe: it.ID, Value: it.Value * qlen}
		}
		st.Results += int64(len(row))
		out[origID] = row
	}
}

// zeroQueryRow answers a zero-length query: every product is 0, so any k
// probes qualify; return the k longest live probes (ties broken by smaller
// id) for determinism. With a delta layer the per-bucket length order no
// longer implies a global order, so the buckets are merged cursor-wise.
func (ix *Index) zeroQueryRow(origID, kk int) []retrieval.Entry {
	row := make([]retrieval.Entry, 0, kk)
	cur := make([]int, len(ix.scan))
	for len(row) < kk {
		best := -1
		var bestLen float64
		var bestID int32
		for bi, b := range ix.scan {
			for cur[bi] < b.size() && ix.deadSkip(b, cur[bi]) {
				cur[bi]++
			}
			if cur[bi] >= b.size() {
				continue
			}
			l, id := b.lens[cur[bi]], b.ids[cur[bi]]
			if best == -1 || l > bestLen || (l == bestLen && id < bestID) {
				best, bestLen, bestID = bi, l, id
			}
		}
		if best == -1 {
			break
		}
		row = append(row, retrieval.Entry{Query: origID, Probe: int(bestID), Value: 0})
		cur[best]++
	}
	return row
}
