package core

import (
	"lemp/internal/l2ap"
)

// scratch holds all per-worker mutable state so the retrieval phase does no
// allocation per (query, bucket) pair and workers never share memory.
//
// The CP arrays (cp, cpdot, cpsq) use the appendix's no-clear trick: the
// first scanned list *sets* entries, later lists accumulate, and the final
// filter re-reads only the first list's scan range — entries outside it are
// never read, so stale values are harmless and nothing is ever cleared.
type scratch struct {
	cp    []int32   // COORD counters
	cpdot []float64 // INCR partial inner products q̄_Fᵀp̄_F
	cpsq  []float64 // INCR partial squared norms ‖p̄_F‖²

	taSeen []int32      // bucket-TA seen stamps (its own array: no collisions)
	taHeap []taFrontier // bucket-TA frontier heap storage, reused per call

	cand []int32 // candidate local ids of the current (query, bucket) pair

	focus      []int32 // focus coordinates, by decreasing |q̄_f|
	focusAbs   []float64
	rangeStart []int
	rangeEnd   []int

	taMark int32 // current TA stamp

	l2 *l2ap.Scratch

	sigQuery int32  // query (sorted index) whose BLSH signature is cached
	sig      uint64 // cached query signature

	work int64 // deterministic cost counter for TuneByCost
}

// taFrontier is one active sorted list of the bucket-TA scan: its current
// position, scan direction, and frontier contribution q̄_f·p̄_f.
type taFrontier struct {
	contrib float64
	f       int32
	pos     int32
	dir     int32 // +1 top-down, -1 bottom-up
}

func newScratch(maxBucket, r int) *scratch {
	return &scratch{
		cp:         make([]int32, maxBucket),
		cpdot:      make([]float64, maxBucket),
		cpsq:       make([]float64, maxBucket),
		taSeen:     make([]int32, maxBucket),
		focus:      make([]int32, 0, r),
		focusAbs:   make([]float64, 0, r),
		rangeStart: make([]int, r),
		rangeEnd:   make([]int, r),
		l2:         l2ap.NewScratch(maxBucket, r),
		sigQuery:   -1,
	}
}

// selectFocus fills s.focus with the φ coordinates of q̄ having the largest
// absolute values (§4.2: large coordinates give the smallest feasible
// regions), by insertion into a small ordered buffer.
func (s *scratch) selectFocus(qdir []float64, phi int) {
	s.focus = s.focus[:0]
	s.focusAbs = s.focusAbs[:0]
	for f, v := range qdir {
		a := v
		if a < 0 {
			a = -a
		}
		if len(s.focus) < phi {
			s.focus = append(s.focus, int32(f))
			s.focusAbs = append(s.focusAbs, a)
		} else if a <= s.focusAbs[len(s.focusAbs)-1] {
			continue
		} else {
			s.focus[len(s.focus)-1] = int32(f)
			s.focusAbs[len(s.focusAbs)-1] = a
		}
		// Bubble the new entry to its rank (φ ≤ 5: cheap).
		for i := len(s.focus) - 1; i > 0 && s.focusAbs[i] > s.focusAbs[i-1]; i-- {
			s.focusAbs[i], s.focusAbs[i-1] = s.focusAbs[i-1], s.focusAbs[i]
			s.focus[i], s.focus[i-1] = s.focus[i-1], s.focus[i]
		}
	}
}
