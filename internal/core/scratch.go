package core

import (
	"lemp/internal/l2ap"
	"lemp/internal/quant"
)

// scratch holds all per-worker mutable state so the retrieval phase does no
// allocation per (query, bucket) pair and workers never share memory.
//
// The CP arrays (cp, cpdot, cpsq) use the appendix's no-clear trick: the
// first scanned list *sets* entries, later lists accumulate, and the final
// filter re-reads only the first list's scan range — entries outside it are
// never read, so stale values are harmless and nothing is ever cleared.
type scratch struct {
	cp    []int32   // COORD counters
	cpdot []float64 // INCR partial inner products q̄_Fᵀp̄_F
	cpsq  []float64 // INCR partial squared norms ‖p̄_F‖²

	taSeen []int32      // bucket-TA seen stamps (its own array: no collisions)
	taHeap []taFrontier // bucket-TA frontier heap storage, reused per call

	cand []int32   // candidate local ids of the current (query, bucket) pair
	vals []float64 // blocked-verification dot products, parallel to cand

	// panel is the gathered row-panel of the blocked re-rank path
	// (RowTopKApprox): candidate raw vectors copied contiguously so one
	// DotBatch pass verifies them. Reused across queries and pooled with
	// the scratch.
	panel []float64

	focus      []int32 // focus coordinates, by decreasing |q̄_f|
	focusAbs   []float64
	rangeStart []int
	rangeEnd   []int

	taMark int32 // current TA stamp

	l2 *l2ap.Scratch

	sigQuery int32  // query (sorted index) whose BLSH signature is cached
	sig      uint64 // cached query signature

	q8codes []int8      // quantized-query code buffer, len r
	q8q     quant.Query // cached quantized query (codes alias q8codes)
	q8qi    int32       // query (sorted index) the cache holds, -1 when empty
	q8ok    bool        // whether that query quantized cleanly

	work int64 // deterministic cost counter for TuneByCost

	// Sizing the scratch was built for, checked when a pooled scratch is
	// handed to a call: an index whose bucket layout grew past it discards
	// it instead of reusing undersized arrays.
	maxBucket int
	r         int
}

// taFrontier is one active sorted list of the bucket-TA scan: its current
// position, scan direction, and frontier contribution q̄_f·p̄_f.
type taFrontier struct {
	contrib float64
	f       int32
	pos     int32
	dir     int32 // +1 top-down, -1 bottom-up
}

func newScratch(maxBucket, r int) *scratch {
	return &scratch{
		cp:         make([]int32, maxBucket),
		cpdot:      make([]float64, maxBucket),
		cpsq:       make([]float64, maxBucket),
		taSeen:     make([]int32, maxBucket),
		focus:      make([]int32, 0, r),
		focusAbs:   make([]float64, 0, r),
		rangeStart: make([]int, r),
		rangeEnd:   make([]int, r),
		l2:         l2ap.NewScratch(maxBucket, r),
		sigQuery:   -1,
		q8codes:    make([]int8, r),
		q8qi:       -1,
		maxBucket:  maxBucket,
		r:          r,
	}
}

// getScratch hands out a pooled per-worker scratch, falling back to a fresh
// allocation when the pool is empty or the index's bucket layout outgrew the
// pooled sizing (after delta rebuilds). Pooling keeps steady-state serving
// load allocation-free: repeated retrieval calls on one index stop paying
// the O(maxBucket) scratch setup per call.
func (ix *Index) getScratch() *scratch {
	if v := ix.scratchPool.Get(); v != nil {
		s := v.(*scratch)
		if s.maxBucket >= ix.maxBucket && s.r == ix.r {
			// Per-call caches must not leak across calls: the BLSH
			// signature and the quantized query are keyed by a query index
			// whose meaning is call-local, and the cost counter restarts
			// per call.
			s.sigQuery = -1
			s.q8qi = -1
			s.work = 0
			return s
		}
	}
	return newScratch(ix.maxBucket, ix.r)
}

// putScratch returns a scratch to the pool once its worker is done.
func (ix *Index) putScratch(s *scratch) { ix.scratchPool.Put(s) }

// quantQuery returns whether the quantized form of query qi (sorted index,
// direction qdir) is usable for screening, quantizing it into the scratch's
// code buffer on first use — the same keyed per-call cache as the BLSH
// signature, so a query crossing many buckets quantizes once.
func (s *scratch) quantQuery(qi int32, qdir []float64) bool {
	if s.q8qi != qi {
		s.q8qi = qi
		s.q8q, s.q8ok = quant.QuantizeQuery(s.q8codes, qdir)
	}
	return s.q8ok
}

// selectFocus fills s.focus with the φ coordinates of q̄ having the largest
// absolute values (§4.2: large coordinates give the smallest feasible
// regions), by insertion into a small ordered buffer.
func (s *scratch) selectFocus(qdir []float64, phi int) {
	s.focus = s.focus[:0]
	s.focusAbs = s.focusAbs[:0]
	for f, v := range qdir {
		a := v
		if a < 0 {
			a = -a
		}
		if len(s.focus) < phi {
			s.focus = append(s.focus, int32(f))
			s.focusAbs = append(s.focusAbs, a)
		} else if a <= s.focusAbs[len(s.focusAbs)-1] {
			continue
		} else {
			s.focus[len(s.focus)-1] = int32(f)
			s.focusAbs[len(s.focusAbs)-1] = a
		}
		// Bubble the new entry to its rank (φ ≤ 5: cheap).
		for i := len(s.focus) - 1; i > 0 && s.focusAbs[i] > s.focusAbs[i-1]; i-- {
			s.focusAbs[i], s.focusAbs[i-1] = s.focusAbs[i-1], s.focusAbs[i]
			s.focus[i], s.focus[i-1] = s.focus[i-1], s.focus[i]
		}
	}
}
