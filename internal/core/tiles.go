package core

import "sync/atomic"

// tileCursor hands out contiguous tiles of a query range to a pool of
// workers through one atomic counter. It replaces the static
// chunk := n/workers split: with pre-cut chunks one worker stuck on a run
// of expensive queries (a skewed catalog concentrates candidates on the
// longest queries, and the query set is sorted by length) serializes the
// whole call while its peers sit idle. Claiming small tiles dynamically
// keeps every worker busy until the range is drained — the last tile
// bounds the straggler tax, not the largest pre-cut chunk.
//
// Output stays byte-identical to the static split: result rows are keyed
// by query id (disjoint across tiles) and per-worker stats are summed,
// both independent of which worker answered which tile.
type tileCursor struct {
	next atomic.Int64
	n    int
	tile int
}

// newTileCursor sizes tiles so each worker expects several claims (good
// balance) while a tile still amortizes its claim and scratch-warmup cost
// across multiple queries.
func newTileCursor(n, workers int) *tileCursor {
	tile := n / (workers * 8)
	if tile > 64 {
		tile = 64
	}
	if tile < 1 {
		tile = 1
	}
	c := &tileCursor{n: n, tile: tile}
	return c
}

// claim returns the next unclaimed tile [lo, hi), or ok=false when the
// range is drained.
func (c *tileCursor) claim() (lo, hi int, ok bool) {
	end := c.next.Add(int64(c.tile))
	lo = int(end) - c.tile
	if lo >= c.n {
		return 0, 0, false
	}
	hi = lo + c.tile
	if hi > c.n {
		hi = c.n
	}
	return lo, hi, true
}

// addWorkerStats accumulates the per-worker counters that sum across a
// parallel scan (the phase times and index-shape fields are owned by the
// driver).
func addWorkerStats(st *Stats, workers []Stats) {
	for i := range workers {
		ws := &workers[i]
		st.Candidates += ws.Candidates
		st.Results += ws.Results
		st.BlockVerified += ws.BlockVerified
		st.ScalarVerified += ws.ScalarVerified
		st.ProcessedPairs += ws.ProcessedPairs
		st.PrunedPairs += ws.PrunedPairs
		st.QuantScreened += ws.QuantScreened
		st.QuantSurvived += ws.QuantSurvived
	}
}
