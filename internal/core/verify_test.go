package core

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// TestBlockedVerifyBitIdenticalToScalar is the exactness contract of the
// blocked verifier at the core layer: for random buckets, queries and
// candidate subsets (shuffled, partially tombstoned), verifyDots must
// produce bit-for-bit the values the seed implementation computed with one
// vecmath.Dot per candidate, and compactLiveCands must keep exactly the
// live candidates in generator order.
func TestBlockedVerifyBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 60; trial++ {
		r := []int{1, 2, 3, 4, 5, 7, 8, 16, 50}[rng.Intn(9)]
		n := 1 + rng.Intn(200)
		p := genMatrix(rng, n, r, 0.8, 1, false, 0, 0)
		ix, err := NewIndex(p, Options{MinBucketSize: 1 + rng.Intn(40)})
		if err != nil {
			t.Fatal(err)
		}
		// Tombstone a few probes so dead filtering is exercised.
		if n > 2 && trial%2 == 0 {
			for d := 0; d < 1+rng.Intn(3); d++ {
				id := int32(rng.Intn(n))
				if ix.isLive(id) {
					if err := ix.RemoveProbe(id); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		qdir := make([]float64, r)
		for f := range qdir {
			qdir[f] = rng.NormFloat64()
		}
		vecmath.Normalize(qdir, qdir)
		s := newScratch(ix.maxBucket, ix.r)
		for _, b := range ix.scan {
			// Random candidate subset in shuffled order (coordinate
			// methods emit candidates in list order, not lid order).
			s.cand = s.cand[:0]
			for lid := 0; lid < b.size(); lid++ {
				if rng.Intn(3) != 0 {
					s.cand = append(s.cand, int32(lid))
				}
			}
			rng.Shuffle(len(s.cand), func(i, j int) {
				s.cand[i], s.cand[j] = s.cand[j], s.cand[i]
			})
			// Seed scalar path: skip dead, one Dot per candidate, in
			// generator order.
			var wantLids []int32
			var wantBits []uint64
			for _, lid := range s.cand {
				if ix.deadSkip(b, int(lid)) {
					continue
				}
				wantLids = append(wantLids, lid)
				wantBits = append(wantBits, math.Float64bits(vecmath.Dot(qdir, b.dir(int(lid)))))
			}
			var st Stats
			ix.compactLiveCands(b, s)
			verifyDots(b, qdir, s, &st)
			if len(s.cand) != len(wantLids) {
				t.Fatalf("trial %d: %d live candidates, want %d", trial, len(s.cand), len(wantLids))
			}
			for i, lid := range s.cand {
				if lid != wantLids[i] {
					t.Fatalf("trial %d: candidate %d at position %d, want %d (order not preserved)",
						trial, lid, i, wantLids[i])
				}
				if got := math.Float64bits(s.vals[i]); got != wantBits[i] {
					t.Fatalf("trial %d lid %d: blocked %x, scalar %x", trial, lid, got, wantBits[i])
				}
			}
			if got := st.BlockVerified + st.ScalarVerified; got != int64(len(wantLids)) {
				t.Fatalf("trial %d: verified-counter sum %d, want %d", trial, got, len(wantLids))
			}
		}
	}
}

// TestVerifyStatsSplit: a run reports every live verified candidate as
// either block- or scalar-verified, with the blocked share dominating once
// candidate sets are non-trivial.
func TestVerifyStatsSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	p := genMatrix(rng, 400, 16, 0.8, 1, false, 0, 0)
	q := genMatrix(rng, 32, 16, 0.8, 1, false, 0, 0)
	ix, err := NewIndex(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.RowTopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := st.BlockVerified + st.ScalarVerified
	if total != st.Candidates {
		t.Fatalf("verified split %d+%d does not cover %d candidates (no tombstones here)",
			st.BlockVerified, st.ScalarVerified, st.Candidates)
	}
	if st.BlockVerified == 0 {
		t.Fatal("no block-verified candidates on a 400-probe index")
	}
	if st.BlockVerified < st.ScalarVerified {
		t.Fatalf("blocked path verified %d of %d candidates; scalar tail dominates",
			st.BlockVerified, total)
	}
}

// TestPretuneDeltaBuckets: once tuning is frozen, freshly created delta
// buckets must come out pretuned from the retained sample instead of
// running on defaults until compaction — and results must stay exact.
func TestPretuneDeltaBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	p := matrix.New(8, 150)
	for i := 0; i < 150; i++ {
		copy(p.Vec(i), randVec(rng, 8))
	}
	ix, err := NewIndex(p, Options{TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}
	sample := matrix.New(8, 12)
	for i := 0; i < 12; i++ {
		copy(sample.Vec(i), randVec(rng, 8))
	}
	if err := ix.PretuneTopK(sample, 5); err != nil {
		t.Fatal(err)
	}
	model := &probeModel{vecs: make(map[int32][]float64)}
	for i := 0; i < 150; i++ {
		model.vecs[int32(i)] = append([]float64(nil), p.Vec(i)...)
	}
	// A batch large enough to clear pretuneDeltaMinOverlay (tiny overlays
	// deliberately skip delta pretuning — scanning them is cheap under any
	// method), on top of some random churn.
	nextID := int32(150)
	ups := randomBatch(rng, model, &nextID, 8)
	for len(ups) < pretuneDeltaMinOverlay+8 {
		vec := randVec(rng, 8)
		ups = append(ups, ProbeUpdate{Op: OpAdd, ID: nextID, Vec: vec})
		model.vecs[nextID] = vec
		nextID++
	}
	if _, err := ix.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if len(ix.delta) == 0 {
		t.Fatal("batch produced no overlay entries")
	}
	for i, b := range ix.delta {
		if !b.tuned {
			t.Fatalf("delta bucket %d not pretuned despite frozen tuning", i)
		}
	}
	q := matrix.New(8, 3)
	for i := 0; i < 3; i++ {
		copy(q.Vec(i), randVec(rng, 8))
	}
	checkEqual(t, "pretuned-delta", ix, model.freshIndex(t, 8, Options{TuneByCost: true}), q, 6)
}

// TestScratchPoolReuse: a second retrieval call on the same index must reuse
// the pooled scratch; a layout change that grows maxBucket must discard it.
func TestScratchPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	p := genMatrix(rng, 100, 8, 0.8, 1, false, 0, 0)
	ix, err := NewIndex(p, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1 := ix.getScratch()
	ix.putScratch(s1)
	s2 := ix.getScratch()
	if s1 != s2 {
		t.Fatal("pooled scratch not reused for an unchanged layout")
	}
	if s2.sigQuery != -1 {
		t.Fatal("pooled scratch handed out with a stale signature cache")
	}
	ix.putScratch(s2)
	// Shrink the pooled sizing below the index's requirement.
	s2.maxBucket = ix.maxBucket - 1
	if s3 := ix.getScratch(); s3 == s2 {
		t.Fatal("undersized pooled scratch reused")
	}
}
