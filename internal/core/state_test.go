package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

// TestStateRoundTrip rebuilds an index from its exported state and checks
// that retrieval results are identical to the original's on every exact
// algorithm, both before tuning has ever run and after a tuning pass.
func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := genMatrix(rng, 40, 12, 1.0, 1, false, 1, 0)
	p := genMatrix(rng, 300, 12, 1.2, 1, false, 2, 10)
	theta, _, ok := safeThetaAt(q, p, 60)
	if !ok {
		t.Fatal("no usable threshold")
	}
	for _, alg := range Algorithms() {
		if !alg.Exact() {
			continue
		}
		ix, err := NewIndex(p, testOptions(alg))
		if err != nil {
			t.Fatalf("NewIndex(%v): %v", alg, err)
		}
		// Tune the original (RowTopK runs a tuning pass for LI/LC) so the
		// exported state carries fitted parameters for those algorithms.
		wantTop, _, err := ix.RowTopK(q, 7)
		if err != nil {
			t.Fatalf("RowTopK(%v): %v", alg, err)
		}
		var wantAbove []retrieval.Entry
		if _, err := ix.AboveTheta(q, theta, retrieval.Collect(&wantAbove)); err != nil {
			t.Fatalf("AboveTheta(%v): %v", alg, err)
		}
		retrieval.Sort(wantAbove)

		re, err := FromState(ix.State())
		if err != nil {
			t.Fatalf("FromState(%v): %v", alg, err)
		}
		if re.N() != ix.N() || re.R() != ix.R() || re.NumBuckets() != ix.NumBuckets() {
			t.Fatalf("alg %v: restored shape %d/%d/%d, want %d/%d/%d",
				alg, re.N(), re.R(), re.NumBuckets(), ix.N(), ix.R(), ix.NumBuckets())
		}
		gotTop, _, err := re.RowTopK(q, 7)
		if err != nil {
			t.Fatalf("restored RowTopK(%v): %v", alg, err)
		}
		if !reflect.DeepEqual(gotTop, wantTop) {
			t.Fatalf("alg %v: restored RowTopK differs", alg)
		}
		var gotAbove []retrieval.Entry
		if _, err := re.AboveTheta(q, theta, retrieval.Collect(&gotAbove)); err != nil {
			t.Fatalf("restored AboveTheta(%v): %v", alg, err)
		}
		retrieval.Sort(gotAbove)
		if !reflect.DeepEqual(gotAbove, wantAbove) {
			t.Fatalf("alg %v: restored AboveTheta differs", alg)
		}
	}
}

// TestPretuneFreezesTuning checks that a pretuned index reports zero tuning
// time on retrieval calls and that the frozen flag survives a state
// round-trip.
func TestPretuneFreezesTuning(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := genMatrix(rng, 30, 10, 0.8, 1, false, 0, 0)
	p := genMatrix(rng, 250, 10, 1.0, 1, false, 0, 0)
	ix, err := NewIndex(p, testOptions(AlgLI))
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := ix.RowTopK(q, 5); err != nil || st.TuneTime == 0 {
		t.Fatalf("untuned LI index should tune per call: TuneTime=%v err=%v", st.TuneTime, err)
	}
	if err := ix.PretuneTopK(q, 5); err != nil {
		t.Fatal(err)
	}
	if !ix.Pretuned() {
		t.Fatal("PretuneTopK did not set the frozen flag")
	}
	if _, st, err := ix.RowTopK(q, 5); err != nil || st.TuneTime != 0 {
		t.Fatalf("pretuned index re-tuned: TuneTime=%v err=%v", st.TuneTime, err)
	}

	re, err := FromState(ix.State())
	if err != nil {
		t.Fatal(err)
	}
	if !re.Pretuned() {
		t.Fatal("Pretuned flag lost in state round-trip")
	}
	if _, st, err := re.RowTopK(q, 5); err != nil || st.TuneTime != 0 {
		t.Fatalf("restored pretuned index re-tuned: TuneTime=%v err=%v", st.TuneTime, err)
	}

	// Unfreezing restores per-call tuning.
	st2 := ix.State()
	st2.Pretuned = false
	re2, err := FromState(st2)
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := re2.RowTopK(q, 5); err != nil || st.TuneTime == 0 {
		t.Fatalf("unfrozen restored index should tune: TuneTime=%v err=%v", st.TuneTime, err)
	}

	if err := ix.PretuneAboveTheta(q, math.NaN()); err == nil {
		t.Error("NaN theta accepted by PretuneAboveTheta")
	}
	if err := ix.PretuneTopK(matrix.New(10, 0), 5); err == nil {
		t.Error("empty query sample accepted by PretuneTopK")
	}
	if err := ix.PretuneTopK(matrix.New(3, 4), 5); err == nil {
		t.Error("dimension mismatch accepted by PretuneTopK")
	}
}

// TestFromStateRejectsCorruptState mutates a valid state one invariant at a
// time; every mutation must be rejected.
func TestFromStateRejectsCorruptState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := genMatrix(rng, 120, 6, 0.9, 1, false, 0, 0)
	build := func() *State {
		ix, err := NewIndex(p, testOptions(AlgLI))
		if err != nil {
			t.Fatal(err)
		}
		return ix.State()
	}
	cases := []struct {
		name   string
		mutate func(st *State)
	}{
		{"nil probe", func(st *State) { st.Probe = nil }},
		{"empty bucket", func(st *State) { st.Buckets[0].IDs = nil; st.Buckets[0].Lens = nil; st.Buckets[0].Dirs = nil }},
		{"lens shape", func(st *State) { st.Buckets[0].Lens = st.Buckets[0].Lens[:1] }},
		{"dirs shape", func(st *State) { st.Buckets[0].Dirs = st.Buckets[0].Dirs[:5] }},
		{"id out of range", func(st *State) { st.Buckets[0].IDs[0] = 9999 }},
		{"duplicate id", func(st *State) { st.Buckets[0].IDs[1] = st.Buckets[0].IDs[0] }},
		{"negative length", func(st *State) { st.Buckets[0].Lens[0] = -1 }},
		{"NaN length", func(st *State) { st.Buckets[0].Lens[0] = math.NaN() }},
		{"length order", func(st *State) { st.Buckets[len(st.Buckets)-1].Lens[0] = 1e12 }},
		{"NaN direction", func(st *State) { st.Buckets[0].Dirs[2] = math.NaN() }},
		{"bad tuned phi", func(st *State) { st.Buckets[0].Tuned = true; st.Buckets[0].Phi = 0 }},
		{"NaN tb", func(st *State) { st.Buckets[0].Tuned = true; st.Buckets[0].Phi = 1; st.Buckets[0].TB = math.NaN() }},
		{"missing probes", func(st *State) { st.Buckets = st.Buckets[:len(st.Buckets)-1] }},
		{"bad options", func(st *State) { st.Opts.ShrinkFactor = 2 }},
	}
	for _, tc := range cases {
		st := build()
		tc.mutate(st)
		if _, err := FromState(st); err == nil {
			t.Errorf("%s: corrupt state accepted", tc.name)
		}
	}
}
