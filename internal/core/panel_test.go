package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

func panelFixture(t *testing.T, m, n, r int, seed int64) (*Index, *matrix.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := matrix.New(r, n)
	p.FillRandom(rng)
	q := matrix.New(r, m)
	q.FillRandom(rng)
	// A few zero queries exercise the zero-row path.
	for f := 0; f < r; f++ {
		q.Vec(3)[f] = 0
	}
	ix, err := NewIndex(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, q
}

// Row-Top-k answers must be independent of how the query matrix is cut
// into panels: every panel row must equal the corresponding row of a
// full-matrix call.
func TestPanelTopKMatchesFullCall(t *testing.T) {
	ix, q := panelFixture(t, 61, 400, 12, 7)
	const k = 5
	want, _, err := ix.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, panelRows := range []int{1, 7, 16, 61, 100} {
		pr, err := ix.NewPanelRunTopK(k, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < q.N(); lo += panelRows {
			hi := lo + panelRows
			if hi > q.N() {
				hi = q.N()
			}
			rows, _, err := pr.TopKPanel(context.Background(), q.Slice(lo, hi))
			if err != nil {
				t.Fatal(err)
			}
			for i, row := range rows {
				got := make([]retrieval.Entry, len(row))
				copy(got, row)
				for j := range got {
					got[j].Query += lo // panel-local -> global row id
				}
				if !reflect.DeepEqual(got, want[lo+i]) {
					t.Fatalf("panelRows=%d row %d: got %v want %v", panelRows, lo+i, got, want[lo+i])
				}
			}
		}
	}
}

// Concurrent panel calls on one PanelRun — the bulk engine's access
// pattern — must produce the same rows as sequential ones, with exactly
// one tuning pass for the whole job.
func TestPanelRunConcurrentPanels(t *testing.T) {
	ix, q := panelFixture(t, 96, 300, 10, 11)
	const k, panelRows = 3, 8
	want, _, err := ix.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ix.NewPanelRunTopK(k, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nPanels := (q.N() + panelRows - 1) / panelRows
	rowsByPanel := make([]retrieval.TopK, nPanels)
	statsByPanel := make([]Stats, nPanels)
	var wg sync.WaitGroup
	for pi := 0; pi < nPanels; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			lo := pi * panelRows
			hi := lo + panelRows
			if hi > q.N() {
				hi = q.N()
			}
			rows, st, err := pr.TopKPanel(context.Background(), q.Slice(lo, hi))
			if err != nil {
				t.Error(err)
				return
			}
			rowsByPanel[pi], statsByPanel[pi] = rows, st
		}(pi)
	}
	wg.Wait()
	tunings := 0
	for pi, rows := range rowsByPanel {
		tunings += statsByPanel[pi].Tunings
		lo := pi * panelRows
		for i, row := range rows {
			got := make([]retrieval.Entry, len(row))
			copy(got, row)
			for j := range got {
				got[j].Query += lo
			}
			if !reflect.DeepEqual(got, want[lo+i]) {
				t.Fatalf("panel %d row %d mismatch", pi, lo+i)
			}
		}
	}
	if tunings != 1 {
		t.Fatalf("job ran %d tuning passes, want exactly 1", tunings)
	}
}

// Above-θ panels must recover exactly the full call's entry set, across
// independent jobs (each tunes on its own first panel — the resume
// scenario of the bulk engine, which canonicalizes row order before
// encoding precisely because emit order may differ between jobs).
func TestPanelAboveMatchesFullCall(t *testing.T) {
	ix, q := panelFixture(t, 48, 350, 10, 13)
	const theta = 2.5
	var want []retrieval.Entry
	if _, err := ix.AboveTheta(q, theta, retrieval.Collect(&want)); err != nil {
		t.Fatal(err)
	}
	retrieval.Sort(want)
	collect := func() []retrieval.Entry {
		pr, err := ix.NewPanelRunAbove(theta, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var got []retrieval.Entry
		const panelRows = 13
		for lo := 0; lo < q.N(); lo += panelRows {
			hi := lo + panelRows
			if hi > q.N() {
				hi = q.N()
			}
			_, err := pr.AbovePanel(context.Background(), q.Slice(lo, hi), func(e retrieval.Entry) {
				e.Query += lo
				got = append(got, e)
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return got
	}
	first := collect()
	second := collect()
	retrieval.Sort(first)
	retrieval.Sort(second)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("Above-θ entry set differs between independent panel jobs")
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("panel Above-θ entries differ from full call: got %d want %d", len(first), len(want))
	}
}

// Mode misuse and bad parameters fail at construction or first call.
func TestPanelRunValidation(t *testing.T) {
	ix, q := panelFixture(t, 8, 50, 6, 17)
	if _, err := ix.NewPanelRunTopK(0, RunOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ix.NewPanelRunAbove(0, RunOptions{}); err == nil {
		t.Error("theta=0 accepted")
	}
	pr, err := ix.NewPanelRunTopK(2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.AbovePanel(context.Background(), q, func(retrieval.Entry) {}); err == nil {
		t.Error("AbovePanel accepted on a TopK run")
	}
	bad := matrix.New(ix.R()+1, 2)
	if _, _, err := pr.TopKPanel(context.Background(), bad); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
