package core

// runCoord implements the COORD algorithm (§4.2, Algorithm 2, with the
// implementation details of Appendix A): for each of the φ focus
// coordinates with the largest |q̄_f|, binary-search the feasible region
// [L_f, U_f] in the coordinate's sorted list and count, per probe vector,
// in how many scan ranges it appears. Vectors appearing in all φ ranges are
// candidates.
//
// Appendix A's no-clear trick: the scan of the first list (chosen as the
// focus coordinate with the fewest elements in range, since it is scanned
// twice) *sets* CP entries to 1, the remaining lists increment, and the
// final filter re-scans only the first range checking for the value φ.
// Entries outside the first range are never read.
func runCoord(b *bucket, qdir []float64, thetaB float64, phi int, s *scratch) {
	s.cand = s.cand[:0]
	if thetaB <= 0 {
		allCandidates(b, s)
		return
	}
	lists := b.ensureLists()
	s.selectFocus(qdir, phi)
	nf := len(s.focus)
	if nf == 0 { // r == 0 or φ == 0: nothing to prune on
		allCandidates(b, s)
		return
	}
	first := 0
	for i, f := range s.focus {
		lo, hi := feasibleRegion(qdir[f], thetaB)
		start, end := lists.scanRange(int(f), lo, hi)
		s.rangeStart[i], s.rangeEnd[i] = start, end
		if end-start < s.rangeEnd[first]-s.rangeStart[first] {
			first = i
		}
		s.work += int64(end - start)
	}
	if s.rangeEnd[first] == s.rangeStart[first] {
		return // an empty feasible range excludes every vector
	}
	// Pass 1: the smallest range initializes the CP array. The scatter
	// loops run four independent counter updates per iteration (local ids
	// are unique within one list, so the four slots never collide and the
	// stores overlap instead of serializing).
	_, lids := lists.list(int(s.focus[first]))
	{
		i, end := s.rangeStart[first], s.rangeEnd[first]
		for ; i+4 <= end; i += 4 {
			l0, l1, l2, l3 := lids[i], lids[i+1], lids[i+2], lids[i+3]
			s.cp[l0] = 1
			s.cp[l1] = 1
			s.cp[l2] = 1
			s.cp[l3] = 1
		}
		for ; i < end; i++ {
			s.cp[lids[i]] = 1
		}
	}
	// Remaining ranges increment.
	for j := 0; j < nf; j++ {
		if j == first {
			continue
		}
		_, l := lists.list(int(s.focus[j]))
		i, end := s.rangeStart[j], s.rangeEnd[j]
		for ; i+4 <= end; i += 4 {
			l0, l1, l2, l3 := l[i], l[i+1], l[i+2], l[i+3]
			s.cp[l0]++
			s.cp[l1]++
			s.cp[l2]++
			s.cp[l3]++
		}
		for ; i < end; i++ {
			s.cp[l[i]]++
		}
	}
	// Filter: re-scan the first range; survivors appeared in all φ lists.
	want := int32(nf)
	for i := s.rangeStart[first]; i < s.rangeEnd[first]; i++ {
		if s.cp[lids[i]] == want {
			s.cand = append(s.cand, lids[i])
		}
	}
	s.work += int64(s.rangeEnd[first] - s.rangeStart[first])
}
