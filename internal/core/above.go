package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/vecmath"
)

// AboveTheta retrieves every entry of QᵀP with value ≥ theta (Problem 1)
// and streams it to emit. It is AboveThetaCtx with a background context and
// the index's build-time options.
func (ix *Index) AboveTheta(q *matrix.Matrix, theta float64, emit retrieval.Sink) (Stats, error) {
	return ix.AboveThetaCtx(context.Background(), q, theta, emit, RunOptions{})
}

// AboveThetaCtx is the context-aware Above-θ driver with per-call execution
// overrides. theta must be positive, as in the paper's problem statement.
// The entry order is unspecified.
//
// The loop structure follows §3.2: probe buckets (small, cache-resident) in
// the outer loop, queries in decreasing-length order in the inner loop, so
// a query whose local threshold exceeds 1 ends the inner loop — every later
// query is shorter — and a bucket whose longest query is pruned ends the
// whole run — every later bucket is shorter too.
//
// The context is polled at every (bucket, query) boundary: a canceled call
// stops emitting within one bucket's work per worker and returns ctx.Err();
// entries already streamed to emit stay delivered (callers that must not
// observe partial output should collect and discard on error). The index
// stays fully reusable after a cancellation.
func (ix *Index) AboveThetaCtx(ctx context.Context, q *matrix.Matrix, theta float64, emit retrieval.Sink, ro RunOptions) (Stats, error) {
	if q.R() != ix.r {
		return Stats{}, fmt.Errorf("core: query dimension %d does not match index dimension %d", q.R(), ix.r)
	}
	if !(theta > 0) {
		return Stats{}, fmt.Errorf("core: theta must be positive, got %v", theta)
	}
	opts, err := ix.effOptions(ro)
	if err != nil {
		return Stats{}, err
	}
	c := newCall(ctx, opts, ro.Cache)
	st := Stats{Queries: q.N(), Buckets: len(ix.scan), PrepTime: ix.prepTime}
	qs := prepareQueries(q)
	tuneSpan := c.startSpan("tune")
	if err := ix.ensureTuned(c, qs, tuneAbove{theta: theta}, &st); err != nil {
		c.endSpan(tuneSpan)
		return st, err
	}
	c.endSpan(tuneSpan)
	scanSpan := c.startSpan("scan")
	start := time.Now()
	if c.opts.Parallelism == 1 || qs.n() < 2*c.opts.Parallelism {
		s := ix.getScratch()
		ix.aboveWorker(c, qs, 0, qs.n(), theta, s, emit, &st)
		ix.putScratch(s)
	} else {
		var mu sync.Mutex
		lockedEmit := func(e retrieval.Entry) {
			mu.Lock()
			emit(e)
			mu.Unlock()
		}
		// Dynamic tile claiming, as in RowTopKCtx: pre-cut chunks pay a
		// straggler tax when candidate mass concentrates on a few
		// queries (tiles.go). Entry order across workers is unspecified
		// either way.
		workers := c.opts.Parallelism
		stats := make([]Stats, workers)
		cursor := newTileCursor(qs.n(), workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := ix.getScratch()
				defer ix.putScratch(s)
				for {
					lo, hi, ok := cursor.claim()
					if !ok || c.canceled() {
						return
					}
					ix.aboveWorker(c, qs, lo, hi, theta, s, lockedEmit, &stats[w])
				}
			}(w)
		}
		wg.Wait()
		addWorkerStats(&st, stats)
	}
	st.RetrievalTime = time.Since(start)
	c.endSpan(scanSpan)
	ix.countIndexedBuckets(&st)
	if c.canceled() {
		return st, c.ctxErr()
	}
	return st, nil
}

// aboveWorker processes queries [lo, hi) of the sorted query set against
// all buckets, polling the call's context once per (bucket, query) pair.
// The scan loop carries the bucket position bi, so the early-exit pruning
// statistic is O(1) instead of a slice walk re-locating the bucket.
func (ix *Index) aboveWorker(c *call, qs *querySet, lo, hi int, theta float64, s *scratch, emit retrieval.Sink, st *Stats) {
	nq := int64(hi - lo)
	for bi, b := range ix.scan {
		// θ_b(q) = θ/(‖q‖·l_b); for l_b = 0 this is +Inf and the
		// bucket (zero vectors only) is pruned for every query.
		var l2T0 float64
		if c.opts.Algorithm == AlgL2AP && qs.n() > 0 && b.lb > 0 && qs.lens[0] > 0 {
			l2T0 = vecmath.Clamp(theta/(qs.lens[0]*b.lb), 0, 1)
		}
		processed := int64(0)
		for qi := lo; qi < hi; qi++ {
			if c.canceled() {
				return
			}
			qlen := qs.lens[qi]
			if qlen == 0 {
				break // zero queries produce only zero products < θ
			}
			thetaB := theta / (qlen * b.lb)
			if thetaB > 1 {
				break // every later query is shorter (line 13)
			}
			processed++
			qdir := qs.dir(qi)
			alg, phi := ix.resolve(c.opts, b, thetaB)
			ix.gather(b, alg, phi, int32(qi), qdir, qlen, theta, thetaB, l2T0, s)
			ix.verifyAbove(b, int32(qi), qdir, qlen, theta, qs.ids[qi], s, emit, st)
		}
		st.ProcessedPairs += processed
		st.PrunedPairs += nq - processed
		if processed == 0 {
			// Even the longest query was pruned; later buckets have
			// smaller l_b, so nothing else can qualify.
			st.PrunedPairs += int64(len(ix.scan)-bi-1) * nq
			break
		}
	}
}
