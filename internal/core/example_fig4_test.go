package core

import (
	"sort"
	"testing"

	"lemp/internal/vecmath"
)

// The paper's worked example (Fig. 4): a bucket of six vectors, query
// q with ‖q‖ = 0.5 and q̄ = (0.70, 0.3, 0.4, 0.51), θ = 0.9, focus set
// F = {coordinates 1 and 4}. The paper derives:
//
//   - feasible regions [0.32, 0.94] on coordinate 1 and [0.09, 0.83] on
//     coordinate 4 (Fig. 4d),
//   - COORD candidates C_b = {1, 4, 5} (Fig. 4e),
//   - INCR candidates C_b = {1} (Fig. 4f).
//
// Local ids here are zero-based, so the expected sets become {0, 3, 4}
// and {0}.

func fig4Bucket(t *testing.T) *bucket {
	t.Helper()
	lens := []float64{2.0, 1.9, 1.9, 1.8, 1.8, 1.8}
	dirs := [][]float64{
		{0.58, 0.50, 0.40, 0.50},
		{0.98, 0, 0, 0.20},
		{0.53, 0, 0, 0.85},
		{0.35, 0.93, 0, 0.10},
		{0.58, 0.50, 0.40, 0.50},
		{0.30, -0.40, 0.81, -0.30},
	}
	// The bucket is constructed directly rather than through bucketize:
	// the table's two-decimal directions are not exactly unit length, so
	// re-deriving lengths would perturb the paper's tie order. Normalizing
	// here changes each coordinate by ≤ 0.2%, inside every tolerance used
	// below.
	b := &bucket{
		r:    4,
		ids:  []int32{0, 1, 2, 3, 4, 5},
		lens: lens,
		dirs: make([]float64, 6*4),
		lb:   2.0,
	}
	for i, d := range dirs {
		if vecmath.Normalize(b.dir(i), d) == 0 {
			t.Fatalf("vector %d is zero", i)
		}
	}
	return b
}

var fig4Query = struct {
	qlen  float64
	qdir  []float64
	theta float64
}{0.5, []float64{0.70, 0.3, 0.4, 0.51}, 0.9}

func sortedCands(s *scratch) []int {
	out := make([]int, len(s.cand))
	for i, lid := range s.cand {
		out[i] = int(lid)
	}
	sort.Ints(out)
	return out
}

func TestFig4FocusSelection(t *testing.T) {
	s := newScratch(6, 4)
	s.selectFocus(fig4Query.qdir, 2)
	if len(s.focus) != 2 || s.focus[0] != 0 || s.focus[1] != 3 {
		t.Fatalf("focus = %v, paper uses coordinates {1, 4} (zero-based {0, 3})", s.focus)
	}
}

func TestFig4LocalThreshold(t *testing.T) {
	b := fig4Bucket(t)
	thetaB := fig4Query.theta / (fig4Query.qlen * b.lb)
	if thetaB != 0.9 {
		t.Fatalf("θ_b = %g, paper computes 0.9/(0.5·2) = 0.9", thetaB)
	}
}

func TestFig4CoordCandidates(t *testing.T) {
	b := fig4Bucket(t)
	s := newScratch(6, 4)
	runCoord(b, fig4Query.qdir, 0.9, 2, s)
	got := sortedCands(s)
	want := []int{0, 3, 4} // the paper's {1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("COORD candidates %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("COORD candidates %v, want %v", got, want)
		}
	}
}

func TestFig4IncrCandidates(t *testing.T) {
	b := fig4Bucket(t)
	s := newScratch(6, 4)
	runIncr(b, fig4Query.qdir, fig4Query.qlen, fig4Query.theta, 0.9, 2, s)
	got := sortedCands(s)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("INCR candidates %v, want [0] (the paper's {1})", got)
	}
}

// The verification step on COORD's candidates must keep exactly the one
// entry that passes the global threshold: vector 1 with qᵀp = 0.97.
func TestFig4Verification(t *testing.T) {
	b := fig4Bucket(t)
	s := newScratch(6, 4)
	runCoord(b, fig4Query.qdir, 0.9, 2, s)
	var passed []int
	for _, lid := range s.cand {
		v := vecmath.Dot(fig4Query.qdir, b.dir(int(lid))) * fig4Query.qlen * b.lens[lid]
		if v >= fig4Query.theta {
			passed = append(passed, int(lid))
			if v < 0.96 || v > 0.98 { // paper: qᵀp = 0.97
				t.Errorf("vector %d passes with %g, paper says 0.97", lid, v)
			}
		}
	}
	if len(passed) != 1 || passed[0] != 0 {
		t.Fatalf("verification kept %v, want [0]", passed)
	}
}

// Cross-check the paper's Fig. 4b: cosines and products for all six
// vectors. The printed figure is internally rounded (e.g. recomputing
// vector 4's cosine from the displayed p̄ gives 0.575 against the printed
// 0.56), so the tolerance is the figure's print granularity, not ours.
func TestFig4ProductsTable(t *testing.T) {
	b := fig4Bucket(t)
	wantCos := []float64{0.97, 0.79, 0.80, 0.56, 0.97, 0.26}
	wantProd := []float64{0.97, 0.75, 0.76, 0.52, 0.87, 0.23}
	for lid := 0; lid < 6; lid++ {
		cos := vecmath.Dot(fig4Query.qdir, b.dir(lid))
		prod := cos * fig4Query.qlen * b.lens[lid]
		if diff := cos - wantCos[lid]; diff > 0.03 || diff < -0.03 {
			t.Errorf("vector %d: cosine %.3f, paper %.2f", lid+1, cos, wantCos[lid])
		}
		if diff := prod - wantProd[lid]; diff > 0.03 || diff < -0.03 {
			t.Errorf("vector %d: product %.3f, paper %.2f", lid+1, prod, wantProd[lid])
		}
	}
}
