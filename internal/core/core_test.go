package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
)

// ---------------------------------------------------------------------------
// Instance generation: the equivalence tests run every bucket algorithm
// against the Naive oracle on instances that exercise the framework's edge
// cases (length skew, sparsity, zero vectors, duplicates, negative-heavy
// data, tiny dimensions).
// ---------------------------------------------------------------------------

type instance struct {
	name string
	q, p *matrix.Matrix
}

// genMatrix draws n vectors of dimension r: Gaussian directions scaled by
// lognormal lengths with the given sigma; optional sparsity, non-negativity,
// a few zero vectors, and duplicated vectors.
func genMatrix(rng *rand.Rand, n, r int, sigma, sparsity float64, nonneg bool, zeros, dupes int) *matrix.Matrix {
	m := matrix.New(r, n)
	for i := 0; i < n; i++ {
		v := m.Vec(i)
		var norm2 float64
		for f := range v {
			if sparsity < 1 && rng.Float64() >= sparsity {
				continue
			}
			x := rng.NormFloat64()
			if nonneg && x < 0 {
				x = -x
			}
			v[f] = x
			norm2 += x * x
		}
		if norm2 == 0 && r > 0 {
			v[rng.Intn(r)] = 1
			norm2 = 1
		}
		scale := math.Exp(sigma*rng.NormFloat64()) / math.Sqrt(norm2)
		for f := range v {
			v[f] *= scale
		}
	}
	for z := 0; z < zeros && z < n; z++ {
		v := m.Vec(rng.Intn(n))
		for f := range v {
			v[f] = 0
		}
	}
	for d := 0; d < dupes && n >= 2; d++ {
		copy(m.Vec(rng.Intn(n)), m.Vec(rng.Intn(n)))
	}
	return m
}

func testInstances(t *testing.T) []instance {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return []instance{
		{"dense", genMatrix(rng, 50, 8, 0.4, 1, false, 0, 0), genMatrix(rng, 220, 8, 0.4, 1, false, 0, 0)},
		{"skewed", genMatrix(rng, 40, 16, 1.4, 1, false, 0, 0), genMatrix(rng, 300, 16, 1.4, 1, false, 0, 0)},
		{"sparse-nonneg", genMatrix(rng, 45, 12, 1.0, 0.4, true, 0, 0), genMatrix(rng, 260, 12, 1.6, 0.35, true, 0, 0)},
		{"zeros-and-dupes", genMatrix(rng, 35, 10, 0.8, 1, false, 3, 0), genMatrix(rng, 240, 10, 0.8, 1, false, 5, 40)},
		{"r1", genMatrix(rng, 30, 1, 0.6, 1, false, 1, 0), genMatrix(rng, 150, 1, 0.6, 1, false, 2, 10)},
		{"tiny-probe", genMatrix(rng, 25, 6, 0.5, 1, false, 0, 0), genMatrix(rng, 12, 6, 0.5, 1, false, 0, 0)},
		{"negative-heavy", negate(genMatrix(rng, 30, 9, 0.7, 1, true, 0, 0)), genMatrix(rng, 180, 9, 0.7, 1, true, 0, 0)},
	}
}

func negate(m *matrix.Matrix) *matrix.Matrix {
	d := m.Data()
	for i := range d {
		d[i] = -d[i]
	}
	return m
}

// testOptions returns options that force multiple small buckets and
// deterministic tuning, so the framework logic is fully exercised even on
// small instances.
func testOptions(alg Algorithm) Options {
	return Options{
		Algorithm:     alg,
		CacheBytes:    bucketBytes(16) * 24, // ~24 vectors per bucket
		MinBucketSize: 5,
		SampleQueries: 8,
		TuneByCost:    true,
	}
}

// safeThetaAt picks a threshold between the level-th and (level+1)-th
// largest product values, centered in a gap wide enough that floating-point
// noise cannot move entries across it. It walks outward from the requested
// level until a sufficiently wide positive gap is found, reporting ok=false
// when none exists (e.g. all products negative).
func safeThetaAt(q, p *matrix.Matrix, level int) (theta float64, lvl int, ok bool) {
	var vals []float64
	for i := 0; i < q.N(); i++ {
		for j := 0; j < p.N(); j++ {
			vals = append(vals, q.Product(p, i, j))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	if len(vals) == 0 {
		return 1, 0, false
	}
	for d := 0; d < len(vals); d++ {
		for _, lvl := range []int{level - d, level + d} {
			if lvl < 1 || lvl >= len(vals) {
				continue
			}
			a, b := vals[lvl-1], vals[lvl]
			if a <= 0 {
				continue // Above-θ requires θ > 0
			}
			if a-b > 1e-7*(1+math.Abs(a)) {
				return (a + b) / 2, lvl, true
			}
		}
	}
	return 0, 0, false
}

// safeTheta is safeThetaAt for instances known to have positive products.
func safeTheta(t *testing.T, q, p *matrix.Matrix, level int) (float64, int) {
	t.Helper()
	theta, lvl, ok := safeThetaAt(q, p, level)
	if !ok {
		t.Fatalf("no safe theta found")
	}
	return theta, lvl
}

func collectAbove(t *testing.T, ix *Index, q *matrix.Matrix, theta float64) ([]retrieval.Entry, Stats) {
	t.Helper()
	var out []retrieval.Entry
	st, err := ix.AboveTheta(q, theta, retrieval.Collect(&out))
	if err != nil {
		t.Fatalf("AboveTheta: %v", err)
	}
	return out, st
}

// ---------------------------------------------------------------------------
// Above-θ equivalence
// ---------------------------------------------------------------------------

func TestAboveThetaMatchesNaiveAllAlgorithms(t *testing.T) {
	for _, inst := range testInstances(t) {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			total := inst.q.N() * inst.p.N()
			for _, level := range []int{5, total / 100, total / 10} {
				if level < 1 {
					continue
				}
				theta, lvl, ok := safeThetaAt(inst.q, inst.p, level)
				if !ok {
					continue // no positive products (negative-heavy instance)
				}
				var want []retrieval.Entry
				naive.AboveTheta(inst.q, inst.p, theta, retrieval.Collect(&want))
				if len(want) != lvl {
					t.Fatalf("oracle returned %d entries, want %d", len(want), lvl)
				}
				for _, alg := range Algorithms() {
					if !alg.Exact() {
						continue // BLSH is probabilistic; tested separately
					}
					ix, err := NewIndex(inst.p, testOptions(alg))
					if err != nil {
						t.Fatalf("NewIndex(%v): %v", alg, err)
					}
					got, st := collectAbove(t, ix, inst.q, theta)
					if !retrieval.EqualSets(got, want) {
						t.Errorf("alg=%v level=%d: got %d entries, want %d (θ=%g)",
							alg, lvl, len(got), len(want), theta)
						continue
					}
					checkValues(t, inst.q, inst.p, got)
					if st.Candidates < int64(len(want)) {
						t.Errorf("alg=%v: candidates %d < results %d", alg, st.Candidates, len(want))
					}
				}
			}
		})
	}
}

// checkValues recomputes every returned value against the oracle product.
func checkValues(t *testing.T, q, p *matrix.Matrix, entries []retrieval.Entry) {
	t.Helper()
	for _, e := range entries {
		want := q.Product(p, e.Query, e.Probe)
		if math.Abs(e.Value-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("entry (%d,%d): value %g, product %g", e.Query, e.Probe, e.Value, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Row-Top-k equivalence
// ---------------------------------------------------------------------------

func TestRowTopKMatchesNaiveAllAlgorithms(t *testing.T) {
	for _, inst := range testInstances(t) {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			for _, k := range []int{1, 3, 10, inst.p.N() + 5} {
				want, _ := naive.RowTopK(inst.q, inst.p, k)
				for _, alg := range Algorithms() {
					if !alg.Exact() {
						continue
					}
					ix, err := NewIndex(inst.p, testOptions(alg))
					if err != nil {
						t.Fatalf("NewIndex(%v): %v", alg, err)
					}
					got, _, err := ix.RowTopK(inst.q, k)
					if err != nil {
						t.Fatalf("RowTopK(%v): %v", alg, err)
					}
					compareTopK(t, fmt.Sprintf("alg=%v k=%d", alg, k), inst.q, inst.p, got, want)
				}
			}
		})
	}
}

// compareTopK checks per-row value sequences with tolerance (ties make id
// sets ambiguous) and validates ids by recomputing products.
func compareTopK(t *testing.T, label string, q, p *matrix.Matrix, got, want retrieval.TopK) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: %d entries, want %d", label, i, len(got[i]), len(want[i]))
		}
		seen := make(map[int]bool, len(got[i]))
		for j, e := range got[i] {
			wv := want[i][j].Value
			if math.Abs(e.Value-wv) > 1e-9*(1+math.Abs(wv)) {
				t.Fatalf("%s row %d rank %d: value %g, want %g", label, i, j, e.Value, wv)
			}
			if e.Query != i {
				t.Fatalf("%s row %d: entry carries query %d", label, i, e.Query)
			}
			if seen[e.Probe] {
				t.Fatalf("%s row %d: duplicate probe %d", label, i, e.Probe)
			}
			seen[e.Probe] = true
			actual := q.Product(p, i, e.Probe)
			if math.Abs(e.Value-actual) > 1e-9*(1+math.Abs(actual)) {
				t.Fatalf("%s row %d: reported %g, actual product %g", label, i, e.Value, actual)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// BLSH: approximate, but one-sided
// ---------------------------------------------------------------------------

func TestBLSHSubsetAndRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := genMatrix(rng, 80, 12, 0.8, 1, false, 0, 0)
	p := genMatrix(rng, 400, 12, 0.8, 1, false, 0, 0)
	theta, _ := safeTheta(t, q, p, 400)
	var want []retrieval.Entry
	naive.AboveTheta(q, p, theta, retrieval.Collect(&want))

	ix, err := NewIndex(p, testOptions(AlgBLSH))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := collectAbove(t, ix, q, theta)

	type pair struct{ q, p int }
	truth := make(map[pair]bool, len(want))
	for _, e := range want {
		truth[pair{e.Query, e.Probe}] = true
	}
	for _, e := range got {
		if !truth[pair{e.Query, e.Probe}] {
			t.Fatalf("BLSH returned false positive (%d,%d)=%g with θ=%g", e.Query, e.Probe, e.Value, theta)
		}
	}
	recall := float64(len(got)) / float64(len(want))
	if recall < 0.85 { // ε=0.03 per candidate; 0.85 leaves slack for variance
		t.Errorf("BLSH recall %.3f too low (%d/%d)", recall, len(got), len(want))
	}
}

// ---------------------------------------------------------------------------
// API edge cases
// ---------------------------------------------------------------------------

func TestEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := genMatrix(rng, 50, 5, 0.5, 1, false, 0, 0)
	empty := matrix.New(5, 0)

	ix, err := NewIndex(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, st := collectAbove(t, ix, empty, 1)
	if len(got) != 0 || st.Queries != 0 {
		t.Errorf("empty query matrix: %d entries, %d queries", len(got), st.Queries)
	}
	top, _, err := ix.RowTopK(empty, 3)
	if err != nil || len(top) != 0 {
		t.Errorf("empty query top-k: %v rows, err %v", len(top), err)
	}

	ixEmpty, err := NewIndex(matrix.New(5, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := genMatrix(rng, 4, 5, 0.5, 1, false, 0, 0)
	got, _ = collectAbove(t, ixEmpty, q, 1)
	if len(got) != 0 {
		t.Errorf("empty probe matrix returned %d entries", len(got))
	}
	top, _, err = ixEmpty.RowTopK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range top {
		if len(row) != 0 {
			t.Errorf("empty probe: row %d has %d entries", i, len(row))
		}
	}
}

func TestInvalidArguments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := genMatrix(rng, 40, 5, 0.5, 1, false, 0, 0)
	ix, err := NewIndex(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := genMatrix(rng, 4, 5, 0.5, 1, false, 0, 0)
	if _, err := ix.AboveTheta(q, 0, func(retrieval.Entry) {}); err == nil {
		t.Error("theta=0 accepted")
	}
	if _, err := ix.AboveTheta(q, -1, func(retrieval.Entry) {}); err == nil {
		t.Error("negative theta accepted")
	}
	if _, _, err := ix.RowTopK(q, 0); err == nil {
		t.Error("k=0 accepted")
	}
	bad := genMatrix(rng, 4, 6, 0.5, 1, false, 0, 0)
	if _, err := ix.AboveTheta(bad, 1, func(retrieval.Entry) {}); err == nil {
		t.Error("dimension mismatch accepted in AboveTheta")
	}
	if _, _, err := ix.RowTopK(bad, 1); err == nil {
		t.Error("dimension mismatch accepted in RowTopK")
	}
	if _, err := NewIndex(p, Options{ShrinkFactor: 2}); err == nil {
		t.Error("ShrinkFactor=2 accepted")
	}
	if _, err := NewIndex(p, Options{Epsilon: 1.5}); err == nil {
		t.Error("Epsilon=1.5 accepted")
	}
	if _, err := NewIndex(p, Options{SignatureBits: 65}); err == nil {
		t.Error("SignatureBits=65 accepted")
	}
	if _, err := NewIndex(p, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestParallelismMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := genMatrix(rng, 90, 10, 0.9, 1, false, 2, 0)
	p := genMatrix(rng, 350, 10, 0.9, 1, false, 2, 20)
	theta, _ := safeTheta(t, q, p, 300)

	serialOpts := testOptions(AlgLI)
	parOpts := serialOpts
	parOpts.Parallelism = 4

	ixS, _ := NewIndex(p, serialOpts)
	ixP, _ := NewIndex(p, parOpts)
	gotS, _ := collectAbove(t, ixS, q, theta)
	gotP, _ := collectAbove(t, ixP, q, theta)
	if !retrieval.EqualSets(gotS, gotP) {
		t.Errorf("parallel Above-θ: %d entries vs serial %d", len(gotP), len(gotS))
	}

	topS, _, _ := ixS.RowTopK(q, 7)
	topP, _, _ := ixP.RowTopK(q, 7)
	compareTopK(t, "parallel", q, p, topP, topS)
}

func TestCacheObliviousEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := genMatrix(rng, 60, 10, 0.5, 1, false, 0, 0)
	p := genMatrix(rng, 400, 10, 0.5, 1, false, 0, 0)
	theta, _ := safeTheta(t, q, p, 200)

	aware := testOptions(AlgLI)
	oblivious := aware
	oblivious.CacheBytes = -1 // single unbounded bucketization

	ixA, _ := NewIndex(p, aware)
	ixO, _ := NewIndex(p, oblivious)
	if ixO.NumBuckets() >= ixA.NumBuckets() {
		t.Errorf("cache-oblivious index has %d buckets, cache-aware %d",
			ixO.NumBuckets(), ixA.NumBuckets())
	}
	gotA, _ := collectAbove(t, ixA, q, theta)
	gotO, _ := collectAbove(t, ixO, q, theta)
	if !retrieval.EqualSets(gotA, gotO) {
		t.Errorf("cache-oblivious results differ: %d vs %d", len(gotO), len(gotA))
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := genMatrix(rng, 50, 8, 1.2, 1, false, 0, 0)
	p := genMatrix(rng, 300, 8, 1.2, 1, false, 0, 0)
	theta, lvl := safeTheta(t, q, p, 60)

	ix, _ := NewIndex(p, testOptions(AlgLI))
	got, st := collectAbove(t, ix, q, theta)
	if int(st.Results) != len(got) || len(got) != lvl {
		t.Errorf("Results=%d, emitted=%d, want=%d", st.Results, len(got), lvl)
	}
	if st.Queries != q.N() {
		t.Errorf("Queries=%d, want %d", st.Queries, q.N())
	}
	if st.Buckets != ix.NumBuckets() {
		t.Errorf("Buckets=%d, want %d", st.Buckets, ix.NumBuckets())
	}
	if st.Candidates < st.Results {
		t.Errorf("Candidates=%d < Results=%d", st.Candidates, st.Results)
	}
	maxPairs := int64(q.N()) * int64(ix.NumBuckets())
	if st.ProcessedPairs+st.PrunedPairs != maxPairs {
		t.Errorf("pairs: processed %d + pruned %d != %d", st.ProcessedPairs, st.PrunedPairs, maxPairs)
	}
	if st.CandidatesPerQuery() <= 0 {
		t.Errorf("CandidatesPerQuery=%g", st.CandidatesPerQuery())
	}
	if st.TotalTime() < st.RetrievalTime {
		t.Errorf("TotalTime %v < RetrievalTime %v", st.TotalTime(), st.RetrievalTime)
	}
}
