package core

// runBucketL2AP generates candidates with a per-bucket L2AP index (the
// paper's LEMP-L2AP, §6.3). The index is built lazily with the smallest
// local threshold the current run can produce, t0 = θ/(‖q_max‖·l_b)
// (the paper's θ_b(q_max) lower bound); each query then probes it with its
// own, usually larger, θ_b(q). Row-Top-k runs pass t0 = 0 because their
// running threshold is unknown a priori — the paper notes this as L2AP's
// structural disadvantage inside LEMP. Negative local thresholds disable
// cosine pruning entirely.
func runBucketL2AP(b *bucket, qdir []float64, thetaB, t0 float64, s *scratch) {
	s.cand = s.cand[:0]
	if thetaB <= 0 {
		allCandidates(b, s)
		return
	}
	ix := b.ensureL2AP(t0)
	s.cand = ix.Candidates(qdir, thetaB, s.l2, s.cand)
	s.work += int64(ix.Entries()) / int64(b.size()) * int64(len(s.cand)+1)
}
