package core

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/matrix"
)

func randomProbe(rng *rand.Rand, n, r int, sigma float64) *matrix.Matrix {
	return genMatrix(rng, n, r, sigma, 1, false, 0, 0)
}

func TestBucketizeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tc := range []struct {
		n, minSize, maxSize int
		shrink              float64
	}{
		{500, 30, 100, 0.9},
		{500, 5, 20, 0.8},
		{500, 30, 0, 0.9}, // unlimited bucket size
		{40, 30, 100, 0.9},
		{1, 30, 100, 0.9},
		{0, 30, 100, 0.9},
	} {
		p := randomProbe(rng, tc.n, 8, 1.0)
		buckets := bucketize(p, nil, tc.shrink, tc.minSize, tc.maxSize)

		// Every probe vector appears in exactly one bucket.
		seen := make(map[int32]bool)
		total := 0
		for _, b := range buckets {
			total += b.size()
			for _, id := range b.ids {
				if seen[id] {
					t.Fatalf("probe %d in two buckets", id)
				}
				seen[id] = true
			}
		}
		if total != tc.n {
			t.Fatalf("buckets hold %d vectors, want %d", total, tc.n)
		}

		prevMin := math.Inf(1)
		for bi, b := range buckets {
			// Lengths sorted decreasingly inside the bucket, l_b is
			// the max, and buckets are ordered by decreasing length.
			if b.lb != b.lens[0] {
				t.Fatalf("bucket %d: lb=%g, first length %g", bi, b.lb, b.lens[0])
			}
			for i := 1; i < b.size(); i++ {
				if b.lens[i] > b.lens[i-1] {
					t.Fatalf("bucket %d: lengths not sorted", bi)
				}
			}
			if b.lens[0] > prevMin {
				t.Fatalf("bucket %d starts above previous bucket's minimum", bi)
			}
			prevMin = b.lens[b.size()-1]

			// Size constraints (the final bucket may absorb a short
			// tail, so only earlier buckets must respect them).
			if bi < len(buckets)-1 {
				if b.size() < tc.minSize && tc.n >= tc.minSize {
					t.Fatalf("bucket %d has %d < min %d vectors", bi, b.size(), tc.minSize)
				}
				if tc.maxSize > 0 && b.size() > tc.maxSize {
					t.Fatalf("bucket %d has %d > max %d vectors", bi, b.size(), tc.maxSize)
				}
			}

			// Directions are unit length (or zero for zero vectors),
			// and dir·len reconstructs the original vector.
			for lid := 0; lid < b.size(); lid++ {
				dir := b.dir(lid)
				var n2 float64
				for _, x := range dir {
					n2 += x * x
				}
				if b.lens[lid] > 0 && math.Abs(n2-1) > 1e-9 {
					t.Fatalf("bucket %d lid %d: |dir|²=%g", bi, lid, n2)
				}
				orig := p.Vec(int(b.ids[lid]))
				for f, x := range dir {
					if math.Abs(x*b.lens[lid]-orig[f]) > 1e-9 {
						t.Fatalf("bucket %d lid %d: reconstruction mismatch", bi, lid)
					}
				}
			}
		}
	}
}

func TestBucketizeZeroVectorsLast(t *testing.T) {
	p := matrix.New(4, 50)
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 40; i++ {
		v := p.Vec(i)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
	}
	// vectors 40..49 stay zero
	buckets := bucketize(p, nil, 0.9, 5, 20)
	// Zero vectors sort last, so in the concatenated bucket order no
	// non-zero length may follow a zero length (a minimum-size bucket is
	// allowed to mix them, but only at the global tail).
	zeros := 0
	sawZero := false
	for _, b := range buckets {
		for lid := 0; lid < b.size(); lid++ {
			if b.lens[lid] == 0 {
				zeros++
				sawZero = true
			} else if sawZero {
				t.Fatal("non-zero vector after a zero vector in bucket order")
			}
		}
	}
	if zeros != 10 {
		t.Fatalf("found %d zero vectors, want 10", zeros)
	}
}

func TestLengthPrefix(t *testing.T) {
	b := &bucket{ids: make([]int32, 5), lens: []float64{5, 4, 4, 2, 1}}
	cases := []struct {
		min  float64
		want int
	}{
		{6, 0}, {5, 1}, {4.5, 1}, {4, 3}, {2, 4}, {0.5, 5}, {math.Inf(-1), 5},
	}
	for _, c := range cases {
		if got := b.lengthPrefix(c.min); got != c.want {
			t.Errorf("lengthPrefix(%g)=%d want %d", c.min, got, c.want)
		}
	}
}

func TestBucketBytesReasonable(t *testing.T) {
	// 50-dim: direction 400B + length 8 + id 4 + lists 600 = 1012.
	if got := bucketBytes(50); got != 50*8+8+4+50*12 {
		t.Errorf("bucketBytes(50)=%d", got)
	}
}

func TestCacheBudgetControlsBucketCount(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := randomProbe(rng, 3000, 10, 0.1) // low skew: shrink rarely triggers
	small, _ := NewIndex(p, Options{CacheBytes: bucketBytes(10) * 50, MinBucketSize: 5})
	big, _ := NewIndex(p, Options{CacheBytes: -1, MinBucketSize: 5})
	if small.NumBuckets() <= big.NumBuckets() {
		t.Errorf("cache budget did not increase bucket count: %d vs %d",
			small.NumBuckets(), big.NumBuckets())
	}
	if got := len(big.BucketSizes()); got != big.NumBuckets() {
		t.Errorf("BucketSizes length %d != NumBuckets %d", got, big.NumBuckets())
	}
}
