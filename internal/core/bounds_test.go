package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The soundness property of §4.2's coordinate bounds: whenever two unit
// vectors satisfy q̄ᵀp̄ ≥ θ_b, every coordinate of p̄ must lie inside the
// feasible region computed from the corresponding coordinate of q̄.
// Violations would make COORD/INCR drop true results.
func TestFeasibleRegionSound(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20000; trial++ {
		r := 2 + rng.Intn(6)
		q := randUnit(rng, r)
		p := randUnit(rng, r)
		cos := dot(q, p)
		// Use a threshold the pair actually meets.
		thetaB := cos - rng.Float64()*0.1
		if thetaB > 1 {
			thetaB = 1
		}
		for f := 0; f < r; f++ {
			lo, hi := feasibleRegion(q[f], thetaB)
			if p[f] < lo-1e-9 || p[f] > hi+1e-9 {
				t.Fatalf("trial %d: q̄_f=%g p̄_f=%g cos=%g θ_b=%g but region [%g,%g]",
					trial, q[f], p[f], cos, thetaB, lo, hi)
			}
		}
	}
}

// The regions must match the paper's worked example (Fig. 4d): θ_b = 0.9,
// q̄ = (0.70, 0.3, 0.4, 0.51), focus coordinates 1 and 4 give
// [0.32, 0.94] and [0.09, 0.83].
func TestFeasibleRegionPaperExample(t *testing.T) {
	lo, hi := feasibleRegion(0.70, 0.9)
	if math.Abs(lo-0.3187) > 0.001 || math.Abs(hi-0.9413) > 0.001 {
		t.Errorf("coordinate 1: [%g, %g], paper says ≈[0.32, 0.94]", lo, hi)
	}
	// Exact arithmetic gives [0.0841, 0.8339]; the paper prints the
	// rounded [0.09, 0.83].
	lo, hi = feasibleRegion(0.51, 0.9)
	if math.Abs(lo-0.0841) > 0.001 || math.Abs(hi-0.8339) > 0.001 {
		t.Errorf("coordinate 4: [%g, %g], want ≈[0.084, 0.834] (paper rounds to [0.09, 0.83])", lo, hi)
	}
}

func TestFeasibleRegionEdgeCases(t *testing.T) {
	// θ_b ≤ 0: no pruning possible, full range.
	if lo, hi := feasibleRegion(0.5, 0); lo != -1 || hi != 1 {
		t.Errorf("θ_b=0: [%g, %g]", lo, hi)
	}
	if lo, hi := feasibleRegion(-0.7, -3); lo != -1 || hi != 1 {
		t.Errorf("θ_b=-3: [%g, %g]", lo, hi)
	}
	// θ_b > 1: empty region (callers prune the bucket first anyway).
	if lo, hi := feasibleRegion(0.5, 1.5); lo <= hi {
		t.Errorf("θ_b=1.5: non-empty region [%g, %g]", lo, hi)
	}
	// θ_b = 1: only the exact direction qualifies; the region must still
	// contain q̄_f itself.
	for _, qf := range []float64{-1, -0.3, 0, 0.4, 1} {
		lo, hi := feasibleRegion(qf, 1)
		if qf < lo-1e-9 || qf > hi+1e-9 {
			t.Errorf("θ_b=1, q̄_f=%g not in [%g, %g]", qf, lo, hi)
		}
	}
	// Symmetry: region(-q̄_f) = -region(q̄_f) mirrored.
	for _, qf := range []float64{0.1, 0.5, 0.9} {
		lo1, hi1 := feasibleRegion(qf, 0.7)
		lo2, hi2 := feasibleRegion(-qf, 0.7)
		if math.Abs(lo1+hi2) > 1e-12 || math.Abs(hi1+lo2) > 1e-12 {
			t.Errorf("asymmetry at q̄_f=%g: [%g,%g] vs [%g,%g]", qf, lo1, hi1, lo2, hi2)
		}
	}
}

// quick-check soundness over the full parameter box.
func TestFeasibleRegionSoundQuick(t *testing.T) {
	f := func(qfRaw, pfRaw, tRaw uint16) bool {
		qf := float64(qfRaw)/float64(math.MaxUint16)*2 - 1
		pf := float64(pfRaw)/float64(math.MaxUint16)*2 - 1
		thetaB := float64(tRaw) / float64(math.MaxUint16) // in [0,1]
		// The pair (q̄_f, p̄_f) is consistent with q̄ᵀp̄ ≥ θ_b iff
		// q̄_f·p̄_f + √(1-q̄_f²)√(1-p̄_f²) ≥ θ_b (the other coordinates
		// can contribute at most the second term).
		best := qf*pf + math.Sqrt((1-qf*qf)*(1-pf*pf))
		if best < thetaB {
			return true // pair infeasible; no containment obligation
		}
		lo, hi := feasibleRegion(qf, thetaB)
		return pf >= lo-1e-9 && pf <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func randUnit(rng *rand.Rand, r int) []float64 {
	v := make([]float64, r)
	var n2 float64
	for {
		n2 = 0
		for i := range v {
			v[i] = rng.NormFloat64()
			n2 += v[i] * v[i]
		}
		if n2 > 0 {
			break
		}
	}
	inv := 1 / math.Sqrt(n2)
	for i := range v {
		v[i] *= inv
	}
	return v
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
