package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lemp/internal/matrix"
)

// Dynamic probe maintenance. The paper's bucketization (§3.2) assumes a
// static probe matrix; a long-lived server tracking a live item catalog
// needs add/remove/update without a full rebuild. The delta layer absorbs
// small changes cheaply and defers re-bucketization:
//
//   - Every probe carries a stable external id. A freshly built index
//     assigns ids base..base+n-1 (base 0 for NewIndex); mutations address
//     probes by id and never renumber survivors.
//   - Removals of main-resident probes go into a tombstone set (ix.dead);
//     their bucket entries are skipped at verification time, so length
//     bounds stay conservative and results stay exact.
//   - Added and updated vectors live in an overlay (id → raw vector) that
//     is re-bucketized into delta buckets on every mutation batch. Delta
//     buckets are ordinary buckets — the same bucket algorithms, lazy
//     indexes and tuning apply — merged with the main buckets into the
//     decreasing-l_b scan order both retrieval drivers require.
//   - Compact folds the whole delta layer into a fresh bucketization over
//     the live probe set (amortizing the rebuild the way blocked methods
//     for slowly changing matrices amortize recomputation), preserving
//     external ids.
//
// Every mutation batch bumps the index epoch, the version number serving
// layers key caches and consistency checks on. Mutation calls follow the
// same concurrency contract as retrieval: they must not run concurrently
// with retrieval calls or other mutations on the same Index. Use
// WithUpdates for copy-on-write derivation when readers must keep using
// the old version while the new one is prepared.

// UpdateOp is the kind of one probe mutation.
type UpdateOp uint8

const (
	// OpAdd inserts a new probe vector. ID AutoID assigns the next free id;
	// an explicit id must not be live (re-adding a removed id is allowed).
	OpAdd UpdateOp = iota
	// OpRemove deletes a live probe by id.
	OpRemove
	// OpUpdate replaces a live probe's vector, keeping its id.
	OpUpdate
)

// String returns the wire name of the operation.
func (op UpdateOp) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpUpdate:
		return "update"
	}
	return fmt.Sprintf("UpdateOp(%d)", int(op))
}

// AutoID, as the ID of an OpAdd, assigns the smallest id never used by this
// index (NextID).
const AutoID int32 = -1

// MaxProbeID is the largest assignable external probe id. It is one below
// the int32 maximum so NextID (the id after the largest) always fits.
const MaxProbeID = math.MaxInt32 - 1

// ProbeUpdate is one mutation of the probe set.
type ProbeUpdate struct {
	Op  UpdateOp
	ID  int32     // external probe id; AutoID on OpAdd assigns one
	Vec []float64 // the vector for OpAdd/OpUpdate (copied on apply)
}

// Epoch returns the index's mutation epoch: 0 at build, incremented by
// every successful Apply batch. Compact does not change the epoch —
// compaction is invisible to queries.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// NextID returns the id the next AutoID add would receive.
func (ix *Index) NextID() int32 { return ix.nextID }

// LiveN returns the number of live probes: main probes minus tombstones
// plus overlay entries.
func (ix *Index) LiveN() int { return ix.n - len(ix.dead) + len(ix.overlay) }

// DeltaMass returns the fraction of mutation state relative to the live
// probe count: (tombstones + overlay entries) / live probes. It grows with
// accumulated drift — tombstones waste scan work inside main buckets, and
// overlay vectors live in small, poorly tuned delta buckets — and is the
// quantity MaybeCompact thresholds on. An index whose every probe was
// updated once has delta mass 2 (n tombstones + n overlay entries).
func (ix *Index) DeltaMass() float64 {
	mass := len(ix.dead) + len(ix.overlay)
	if mass == 0 {
		return 0
	}
	live := ix.LiveN()
	if live < 1 {
		live = 1
	}
	return float64(mass) / float64(live)
}

// LiveIDs returns the external ids of all live probes in ascending order.
func (ix *Index) LiveIDs() []int32 {
	out := make([]int32, 0, ix.LiveN())
	for col := 0; col < ix.n; col++ {
		id := ix.extID(col)
		if _, gone := ix.dead[id]; !gone {
			out = append(out, id)
		}
	}
	for id := range ix.overlay {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// extID maps a main probe column to its external id.
func (ix *Index) extID(col int) int32 {
	if ix.probeIDs != nil {
		return ix.probeIDs[col]
	}
	return ix.idBase + int32(col)
}

// mainCol maps an external id to its main probe column, if the id is
// main-resident (whether or not it has been tombstoned).
func (ix *Index) mainCol(id int32) (int, bool) {
	if ix.probeIDs == nil {
		col := int(id) - int(ix.idBase)
		return col, col >= 0 && col < ix.n
	}
	col, ok := ix.mainLoc[id]
	return int(col), ok
}

// isLive reports whether the external id currently denotes a probe.
func (ix *Index) isLive(id int32) bool {
	if _, ok := ix.overlay[id]; ok {
		return true
	}
	if _, ok := ix.mainCol(id); !ok {
		return false
	}
	_, gone := ix.dead[id]
	return !gone
}

// deadSkip reports whether bucket entry lid is a tombstoned main probe.
// Delta buckets hold only live overlay entries and are never filtered.
func (ix *Index) deadSkip(b *bucket, lid int) bool {
	if b.delta || len(ix.dead) == 0 {
		return false
	}
	_, gone := ix.dead[b.ids[lid]]
	return gone
}

// AddProbe inserts a new probe vector and returns its assigned id.
func (ix *Index) AddProbe(vec []float64) (int32, error) {
	ids, err := ix.Apply([]ProbeUpdate{{Op: OpAdd, ID: AutoID, Vec: vec}})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// AddProbeWithID inserts a new probe vector under the caller's id, which
// must not be live.
func (ix *Index) AddProbeWithID(id int32, vec []float64) error {
	_, err := ix.Apply([]ProbeUpdate{{Op: OpAdd, ID: id, Vec: vec}})
	return err
}

// RemoveProbe deletes the live probe with the given id.
func (ix *Index) RemoveProbe(id int32) error {
	_, err := ix.Apply([]ProbeUpdate{{Op: OpRemove, ID: id}})
	return err
}

// UpdateProbe replaces the vector of the live probe with the given id.
func (ix *Index) UpdateProbe(id int32, vec []float64) error {
	_, err := ix.Apply([]ProbeUpdate{{Op: OpUpdate, ID: id, Vec: vec}})
	return err
}

// Apply performs a batch of probe mutations atomically: ops are validated
// and simulated in order against private copies of the mutation state, and
// the index is untouched unless every op succeeds. On success the overlay
// is re-bucketized, the scan order rebuilt, and the epoch incremented once.
// The returned slice holds, for each op, the affected external id (the
// assigned id for AutoID adds).
//
// Apply must not run concurrently with retrieval calls or other mutations
// on the same Index; serving layers that need lock-free readers should use
// WithUpdates and swap the derived index in atomically.
func (ix *Index) Apply(ups []ProbeUpdate) ([]int32, error) {
	if len(ups) == 0 {
		return nil, nil
	}
	ix.ensureMainLoc()

	// Simulate against copies; commit only after full success.
	dead := make(map[int32]struct{}, len(ix.dead)+len(ups))
	for id := range ix.dead {
		dead[id] = struct{}{}
	}
	overlay := make(map[int32][]float64, len(ix.overlay)+len(ups))
	for id, v := range ix.overlay {
		overlay[id] = v
	}
	nextID := ix.nextID
	live := func(id int32) bool {
		if _, ok := overlay[id]; ok {
			return true
		}
		if _, ok := ix.mainCol(id); !ok {
			return false
		}
		_, gone := dead[id]
		return !gone
	}

	ids := make([]int32, len(ups))
	for i, up := range ups {
		switch up.Op {
		case OpAdd, OpUpdate:
			if len(up.Vec) != ix.r {
				return nil, fmt.Errorf("core: update %d: vector dimension %d does not match index dimension %d", i, len(up.Vec), ix.r)
			}
			for f, x := range up.Vec {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return nil, fmt.Errorf("core: update %d: coordinate %d is %v; coordinates must be finite", i, f, x)
				}
			}
		}
		switch up.Op {
		case OpAdd:
			id := up.ID
			if id == AutoID {
				id = nextID
				if id > MaxProbeID {
					return nil, fmt.Errorf("core: update %d: probe id space exhausted", i)
				}
			} else if id < 0 || id > MaxProbeID {
				return nil, fmt.Errorf("core: update %d: invalid probe id %d", i, id)
			}
			if live(id) {
				return nil, fmt.Errorf("core: update %d: probe id %d is already live", i, id)
			}
			overlay[id] = append([]float64(nil), up.Vec...)
			if id >= nextID {
				nextID = id + 1
			}
			ids[i] = id
		case OpRemove:
			if !live(up.ID) {
				return nil, fmt.Errorf("core: update %d: probe id %d is not live", i, up.ID)
			}
			delete(overlay, up.ID)
			if _, main := ix.mainCol(up.ID); main {
				dead[up.ID] = struct{}{}
			}
			ids[i] = up.ID
		case OpUpdate:
			if !live(up.ID) {
				return nil, fmt.Errorf("core: update %d: probe id %d is not live", i, up.ID)
			}
			if _, main := ix.mainCol(up.ID); main {
				dead[up.ID] = struct{}{}
			}
			overlay[up.ID] = append([]float64(nil), up.Vec...)
			ids[i] = up.ID
		default:
			return nil, fmt.Errorf("core: update %d: unknown op %d", i, int(up.Op))
		}
	}

	ix.dead = dead
	ix.overlay = overlay
	ix.nextID = nextID
	ix.rebuildDelta()
	ix.epoch++
	return ids, nil
}

// WithUpdates derives a new index with the batch applied, leaving the
// receiver untouched (copy-on-write): the derived index shares the main
// buckets and probe matrix and carries its own delta layer. The receiver
// may keep serving retrievals while the derivation runs, but retrieval
// calls on the two indexes must still be serialized against each other —
// they share main-bucket tuning state and lazy per-bucket indexes.
func (ix *Index) WithUpdates(ups []ProbeUpdate) (*Index, []int32, error) {
	cp := ix.shallowClone()
	ids, err := cp.Apply(ups)
	if err != nil {
		return nil, nil, err
	}
	return cp, ids, nil
}

// shallowClone copies the index, sharing the immutable main structure
// (buckets, probe matrix, id mapping) and the current delta-layer maps —
// Apply replaces the maps wholesale, so sharing them is safe. Lock and
// lazy-once fields start fresh.
func (ix *Index) shallowClone() *Index {
	return &Index{
		id:              indexSeq.Add(1),
		layout:          ix.layout,
		opts:            ix.opts,
		r:               ix.r,
		n:               ix.n,
		probe:           ix.probe,
		idBase:          ix.idBase,
		probeIDs:        ix.probeIDs,
		mainLoc:         ix.mainLoc,
		buckets:         ix.buckets,
		scan:            ix.scan,
		maxBucket:       ix.maxBucket,
		prepTime:        ix.prepTime,
		pretuned:        ix.pretuned,
		tuneProb:        ix.tuneProb,
		tuneSample:      ix.tuneSample,
		pretunedOverlay: ix.pretunedOverlay,
		epoch:           ix.epoch,
		nextID:          ix.nextID,
		dead:            ix.dead,
		overlay:         ix.overlay,
		delta:           ix.delta,
	}
}

// ensureMainLoc builds the id → main column map for indexes with explicit
// (non-contiguous) external ids. Contiguous indexes translate
// arithmetically and never need it.
func (ix *Index) ensureMainLoc() {
	if ix.probeIDs == nil || ix.mainLoc != nil {
		return
	}
	loc := make(map[int32]int32, ix.n)
	for col, id := range ix.probeIDs {
		loc[id] = int32(col)
	}
	ix.mainLoc = loc
}

// rebuildDelta re-bucketizes the overlay into delta buckets and rebuilds
// the merged scan order and scratch sizing. Cost is O(|overlay| log
// |overlay|) per mutation batch; Compact bounds |overlay|.
func (ix *Index) rebuildDelta() {
	ix.probeLocs = nil
	if len(ix.overlay) == 0 {
		ix.delta = nil
		ix.pretunedOverlay = 0
		ix.refreshScan()
		return
	}
	ids := make([]int32, 0, len(ix.overlay))
	for id := range ix.overlay {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	m := matrix.New(ix.r, len(ids))
	for i, id := range ids {
		copy(m.Vec(i), ix.overlay[id])
	}
	ix.delta = bucketize(m, ids, ix.opts.ShrinkFactor, ix.opts.MinBucketSize, ix.bucketCap())
	for _, b := range ix.delta {
		b.delta = true
	}
	ix.attachSidecars(ix.delta)
	ix.refreshScan()
	ix.pretuneDelta()
}

// pretuneDeltaMinOverlay is the overlay size below which pretuneDelta does
// nothing: scanning a handful of vectors costs about the same under any
// per-bucket method, so fitting parameters for them would charge every
// small mutation batch a tuning pass that cannot pay for itself. Above it,
// delta buckets are big enough that a bad default method shows up in every
// retrieval until the next Compact.
const pretuneDeltaMinOverlay = 32

// pretuneDelta fits per-bucket parameters for freshly built delta buckets
// when per-call tuning is frozen, reusing the retained pretune sample.
// Without it a pretuned index's overlay runs on default parameters until the
// next Compact — heavy update churn would keep the hottest (freshest) probes
// on the least-tuned buckets indefinitely, since frozen tuning means no
// retrieval call ever re-fits them. Main buckets keep their frozen fit
// untouched. Results are unaffected either way (tuning only selects the
// per-bucket method); the cost, like Compact's re-freeze, lands in PrepTime
// and is bounded three ways: tiny overlays skip tuning entirely, the
// restricted tuner stops its scan at the deepest delta bucket, and re-fits
// are geometrically amortized — the overlay must grow 1.5× past the size it
// had at the last fit before another pass runs, so a churn sequence of B
// single-op batches pays O(log B) tuning passes, not B. Between fits the
// freshly rebuilt delta buckets run on defaults, which the growth bound
// keeps within a constant factor of their tuned size.
func (ix *Index) pretuneDelta() {
	if !ix.pretuned || len(ix.delta) == 0 || len(ix.overlay) < pretuneDeltaMinOverlay ||
		len(ix.overlay)*2 < ix.pretunedOverlay*3 ||
		ix.tuneProb == nil || ix.tuneSample == nil ||
		!ix.hasTunableParams() || ix.LiveN() == 0 {
		return
	}
	start := time.Now()
	only := make(map[*bucket]struct{}, len(ix.delta))
	for _, b := range ix.delta {
		only[b] = struct{}{}
	}
	ix.tuneSubset(newCall(nil, ix.opts, nil), prepareQueries(ix.tuneSample), ix.tuneProb, only)
	ix.pretunedOverlay = len(ix.overlay)
	ix.prepTime += time.Since(start)
}

// refreshScan merges main and delta buckets into the decreasing-l_b order
// both retrieval drivers rely on for pruning, and re-derives the scratch
// sizing bound. Every call is a bucket-layout change, so the layout
// generation advances (invalidating TuningCache entries for this index).
func (ix *Index) refreshScan() {
	ix.layout++
	if len(ix.delta) == 0 {
		ix.scan = ix.buckets
	} else {
		scan := make([]*bucket, 0, len(ix.buckets)+len(ix.delta))
		i, j := 0, 0
		for i < len(ix.buckets) && j < len(ix.delta) {
			if ix.buckets[i].lb >= ix.delta[j].lb {
				scan = append(scan, ix.buckets[i])
				i++
			} else {
				scan = append(scan, ix.delta[j])
				j++
			}
		}
		scan = append(scan, ix.buckets[i:]...)
		scan = append(scan, ix.delta[j:]...)
		ix.scan = scan
	}
	ix.maxBucket = 0
	for _, b := range ix.scan {
		if b.size() > ix.maxBucket {
			ix.maxBucket = b.size()
		}
	}
}

// bucketCap resolves Options.CacheBytes into the per-bucket size cap
// bucketize enforces.
func (ix *Index) bucketCap() int { return bucketCapFor(ix.opts, ix.r) }

// bucketCapFor is bucketCap without an index, for callers (ScanCostWeights)
// that model a bucketization before building one.
func bucketCapFor(opts Options, r int) int {
	if opts.CacheBytes <= 0 {
		return 0
	}
	maxSize := opts.CacheBytes / bucketBytes(r)
	if maxSize < opts.MinBucketSize {
		maxSize = opts.MinBucketSize
	}
	return maxSize
}

// mutated reports whether any delta-layer state exists.
func (ix *Index) mutated() bool { return len(ix.dead) > 0 || len(ix.overlay) > 0 }

// MaybeCompact compacts when the delta mass exceeds the threshold,
// reporting whether it did. Serving layers call this after every update
// batch: small drift stays in the cheap delta layer, accumulated drift
// pays one re-bucketization and returns the index to its tuned, tombstone-
// free shape.
func (ix *Index) MaybeCompact(threshold float64) bool {
	if !ix.mutated() || ix.DeltaMass() <= threshold {
		return false
	}
	ix.Compact()
	return true
}

// Compact folds the delta layer into the main structure: the live probe
// set is materialized (external ids preserved) and re-bucketized per §3.2,
// and tombstones, overlay and delta buckets are cleared. Queries before
// and after a Compact return identical results — only the internal layout
// changes — so the epoch is not advanced. If per-call tuning was frozen by
// a Pretune method, the fitted per-bucket parameters are re-frozen on the
// retained tuning sample — which snapshots persist, so a snapshot-restored
// pretuned index re-freezes after Compact exactly like the original. Same
// concurrency contract as Apply.
func (ix *Index) Compact() {
	if !ix.mutated() {
		return
	}
	start := time.Now()
	liveN := ix.LiveN()
	probe := matrix.New(ix.r, liveN)
	ids := make([]int32, 0, liveN)
	for col := 0; col < ix.n; col++ {
		id := ix.extID(col)
		if _, gone := ix.dead[id]; gone {
			continue
		}
		copy(probe.Vec(len(ids)), ix.probe.Vec(col))
		ids = append(ids, id)
	}
	overlayIDs := make([]int32, 0, len(ix.overlay))
	for id := range ix.overlay {
		overlayIDs = append(overlayIDs, id)
	}
	sort.Slice(overlayIDs, func(a, b int) bool { return overlayIDs[a] < overlayIDs[b] })
	for _, id := range overlayIDs {
		copy(probe.Vec(len(ids)), ix.overlay[id])
		ids = append(ids, id)
	}

	ix.probe = probe
	ix.n = liveN
	ix.setIDs(ids)
	ix.dead = nil
	ix.overlay = nil
	ix.delta = nil
	ix.pretunedOverlay = 0
	ix.probeLocs = nil
	ix.buckets = bucketize(probe, ix.explicitIDs(), ix.opts.ShrinkFactor, ix.opts.MinBucketSize, ix.bucketCap())
	ix.attachSidecars(ix.buckets)
	ix.refreshScan()
	ix.prepTime += time.Since(start)
	if ix.pretuned && ix.tuneProb != nil && ix.tuneSample != nil && liveN > 0 && ix.hasTunableParams() {
		tuneStart := time.Now()
		ix.tune(newCall(nil, ix.opts, nil), prepareQueries(ix.tuneSample), ix.tuneProb)
		ix.prepTime += time.Since(tuneStart)
	}
}

// setIDs installs a column → external id mapping, using the compact
// arithmetic representation when the ids form a contiguous run.
func (ix *Index) setIDs(ids []int32) {
	ix.mainLoc = nil
	if len(ids) == 0 {
		ix.idBase, ix.probeIDs = 0, nil
		return
	}
	dense := true
	for i, id := range ids {
		if id != ids[0]+int32(i) {
			dense = false
			break
		}
	}
	if dense {
		ix.idBase, ix.probeIDs = ids[0], nil
		return
	}
	ix.idBase, ix.probeIDs = 0, ids
	ix.ensureMainLoc()
}

// ProbeIDs returns the external ids of the probe matrix columns in column
// order (nil = identity). Delta-layer state is not reflected.
func (ix *Index) ProbeIDs() []int32 { return ix.explicitIDs() }

// explicitIDs materializes the column → external id mapping, or returns
// nil when ids are the column numbers themselves.
func (ix *Index) explicitIDs() []int32 {
	if ix.probeIDs != nil {
		return ix.probeIDs
	}
	if ix.idBase == 0 {
		return nil
	}
	ids := make([]int32, ix.n)
	for col := range ids {
		ids[col] = ix.idBase + int32(col)
	}
	return ids
}
