package core

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/retrieval"
)

func TestTuningSetsParametersOnAllBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	q := genMatrix(rng, 60, 10, 1.0, 1, false, 0, 0)
	p := genMatrix(rng, 400, 10, 1.0, 1, false, 0, 0)
	opts := testOptions(AlgLI)
	ix, err := NewIndex(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	theta, _ := safeTheta(t, q, p, 100)
	if _, err := ix.AboveTheta(q, theta, func(retrieval.Entry) {}); err != nil {
		t.Fatal(err)
	}
	for bi, b := range ix.buckets {
		if !b.tuned {
			t.Fatalf("bucket %d not tuned", bi)
		}
		if b.phi < 1 || b.phi > opts.withDefaults().MaxPhi {
			t.Fatalf("bucket %d: φ_b=%d out of range", bi, b.phi)
		}
		if math.IsNaN(b.tb) {
			t.Fatalf("bucket %d: t_b is NaN", bi)
		}
	}
}

func TestNeedsTuning(t *testing.T) {
	cases := []struct {
		opts Options
		want bool
	}{
		{Options{Algorithm: AlgL}, false},
		{Options{Algorithm: AlgLI}, true},
		{Options{Algorithm: AlgLC}, true},
		{Options{Algorithm: AlgLI, Phi: 3}, true}, // t_b still tuned
		{Options{Algorithm: AlgI}, true},
		{Options{Algorithm: AlgI, Phi: 2}, false}, // φ fixed, no t_b
		{Options{Algorithm: AlgC, Phi: 1}, false},
		{Options{Algorithm: AlgTA}, false},
		{Options{Algorithm: AlgTree}, false},
		{Options{Algorithm: AlgL2AP}, false},
		{Options{Algorithm: AlgBLSH}, false},
	}
	rng := rand.New(rand.NewSource(92))
	p := genMatrix(rng, 50, 4, 0.5, 1, false, 0, 0)
	for _, c := range cases {
		ix, err := NewIndex(p, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := ix.needsTuning(); got != c.want {
			t.Errorf("needsTuning(%v, φ=%d) = %v, want %v",
				c.opts.Algorithm, c.opts.Phi, got, c.want)
		}
	}
}

func TestFitBucketSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	// r must be ≥ MaxPhi (5) or tunePhis caps the φ search space at r.
	p := genMatrix(rng, 100, 6, 0.5, 1, false, 0, 0)
	ix, _ := NewIndex(p, Options{Algorithm: AlgLI, TuneByCost: true})
	b := ix.buckets[0]

	// LENGTH cheap below θ_b = 0.5, coordinate method cheap above: the
	// fitted t_b must land between the two clusters.
	var obs []observation
	for i := 0; i < 10; i++ {
		thetaB := 0.1 + float64(i)*0.08 // 0.1 .. 0.82
		o := observation{thetaB: thetaB, costPhi: make([]float64, 6)}
		if thetaB < 0.5 {
			o.costL = 1
			for phi := 1; phi <= 5; phi++ {
				o.costPhi[phi] = 10
			}
		} else {
			o.costL = 10
			for phi := 1; phi <= 5; phi++ {
				o.costPhi[phi] = 1
			}
		}
		obs = append(obs, o)
	}
	ix.fitBucket(b, obs)
	if !b.tuned {
		t.Fatal("bucket not marked tuned")
	}
	if b.tb < 0.4 || b.tb > 0.6 {
		t.Errorf("t_b=%g, want ≈0.5", b.tb)
	}

	// All observations favor LENGTH: t_b = +Inf.
	for i := range obs {
		obs[i].costL = 1
		for phi := 1; phi <= 5; phi++ {
			obs[i].costPhi[phi] = 5
		}
	}
	ix.fitBucket(b, obs)
	if !math.IsInf(b.tb, 1) {
		t.Errorf("t_b=%g, want +Inf (always LENGTH)", b.tb)
	}

	// All observations favor the coordinate method: t_b = 0.
	for i := range obs {
		obs[i].costL = 5
		for phi := 1; phi <= 5; phi++ {
			obs[i].costPhi[phi] = 1
		}
	}
	ix.fitBucket(b, obs)
	if b.tb != 0 {
		t.Errorf("t_b=%g, want 0 (never LENGTH)", b.tb)
	}

	// φ_b follows the cheapest φ.
	for i := range obs {
		for phi := 1; phi <= 5; phi++ {
			obs[i].costPhi[phi] = float64(10 - phi) // φ=5 cheapest
		}
	}
	ix.fitBucket(b, obs)
	if b.phi != 5 {
		t.Errorf("φ_b=%d, want 5", b.phi)
	}

	// No observations: defaults.
	ix.fitBucket(b, nil)
	if !b.tuned || b.tb != defaultTB {
		t.Errorf("empty-fit: tuned=%v tb=%g", b.tuned, b.tb)
	}
}

func TestSampleIndices(t *testing.T) {
	got := sampleIndices(5, 10)
	if len(got) != 5 {
		t.Errorf("n<want: %v", got)
	}
	got = sampleIndices(100, 10)
	if len(got) != 10 || got[0] != 0 || got[9] != 90 {
		t.Errorf("spread: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not strictly increasing: %v", got)
		}
	}
	if got := sampleIndices(0, 4); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
}

// Tuning by cost and by wall-clock must both produce exact results (only
// the per-bucket choices may differ).
func TestTuningModesAgreeOnResults(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	q := genMatrix(rng, 50, 8, 1.2, 1, false, 0, 0)
	p := genMatrix(rng, 300, 8, 1.2, 1, false, 0, 0)
	theta, _ := safeTheta(t, q, p, 80)

	byCost := testOptions(AlgLI)
	byTime := byCost
	byTime.TuneByCost = false

	ixC, _ := NewIndex(p, byCost)
	ixT, _ := NewIndex(p, byTime)
	gotC, _ := collectAbove(t, ixC, q, theta)
	gotT, _ := collectAbove(t, ixT, q, theta)
	if !retrieval.EqualSets(gotC, gotT) {
		t.Errorf("tuning mode changed results: %d vs %d entries", len(gotC), len(gotT))
	}
}
