package core

import (
	"sort"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// querySet is the preprocessed query matrix: normalized query directions
// with their lengths, sorted by decreasing length (the paper sorts and
// normalizes queries the same way it bucketizes P — footnote 1 of §3.2).
// Sorting lets the Above-θ inner loop stop at the first query whose local
// threshold exceeds 1: every later query is shorter.
type querySet struct {
	r    int
	ids  []int32   // original query column numbers, by decreasing length
	lens []float64 // query lengths, decreasing
	dirs []float64 // normalized directions, contiguous
}

func prepareQueries(q *matrix.Matrix) *querySet {
	m := q.N()
	r := q.R()
	qs := &querySet{
		r:    r,
		ids:  make([]int32, m),
		lens: make([]float64, m),
		dirs: make([]float64, m*r),
	}
	lens := q.Lengths()
	for i := range qs.ids {
		qs.ids[i] = int32(i)
	}
	sort.SliceStable(qs.ids, func(a, b int) bool { return lens[qs.ids[a]] > lens[qs.ids[b]] })
	for i, id := range qs.ids {
		qs.lens[i] = lens[id]
		vecmath.Normalize(qs.dir(i), q.Vec(int(id)))
	}
	return qs
}

func (qs *querySet) n() int { return len(qs.ids) }

// dir returns the normalized direction of the i-th longest query.
func (qs *querySet) dir(i int) []float64 {
	return qs.dirs[i*qs.r : (i+1)*qs.r : (i+1)*qs.r]
}
