package core

// runIncr implements the INCR algorithm (§4.3 with the rewritten
// acceptance tests of Appendix A). Like COORD it scans the feasible ranges
// of the φ focus-coordinate lists, but it additionally accumulates, per
// probe vector, the partial inner product q̄_Fᵀp̄_F and partial squared norm
// ‖p̄_F‖². A vector is kept only if the partial product plus the
// Cauchy–Schwarz bound on the unseen part can reach the probe-specific
// local threshold θ_p(q) = θ/(‖p‖·‖q‖):
//
//	accept if q̄_Fᵀp̄_F·‖p‖·‖q‖ > θ, or
//	       if ‖p‖²‖q‖²(1−‖p̄_F‖²)(1−‖q̄_F‖²) ≥ (θ − q̄_Fᵀp̄_F·‖p‖·‖q‖)²,
//
// which is Eq. (5) with the square roots and divisions multiplied out.
// Per Appendix A the COORD counter is dropped: a vector missing from some
// focus range is infeasible in that coordinate, hence below θ_b ≤ θ_p and
// never a true result, so the (possibly incomplete) accumulators can only
// admit spurious candidates, which verification removes.
func runIncr(b *bucket, qdir []float64, qlen, theta, thetaB float64, phi int, s *scratch) {
	s.cand = s.cand[:0]
	if thetaB <= 0 {
		allCandidates(b, s)
		return
	}
	lists := b.ensureLists()
	s.selectFocus(qdir, phi)
	nf := len(s.focus)
	if nf == 0 {
		allCandidates(b, s)
		return
	}
	first := 0
	for i, f := range s.focus {
		lo, hi := feasibleRegion(qdir[f], thetaB)
		start, end := lists.scanRange(int(f), lo, hi)
		s.rangeStart[i], s.rangeEnd[i] = start, end
		if end-start < s.rangeEnd[first]-s.rangeStart[first] {
			first = i
		}
		s.work += 3 * int64(end-start) // value loads + two FMAs per entry
	}
	if s.rangeEnd[first] == s.rangeStart[first] {
		return
	}
	// ‖q̄_F‖² of the focus part, shared by all acceptance tests.
	var qFsq float64
	for _, f := range s.focus {
		qFsq += qdir[f] * qdir[f]
	}
	// Pass 1: the smallest range initializes the extended CP array. Like
	// COORD's counter scatter, the loops process four list entries per
	// iteration with independent accumulator slots (lids are unique within
	// a list), so the two FMAs per entry overlap across entries.
	{
		qf := qdir[s.focus[first]]
		vals, lids := lists.list(int(s.focus[first]))
		i, end := s.rangeStart[first], s.rangeEnd[first]
		for ; i+4 <= end; i += 4 {
			v0, v1, v2, v3 := vals[i], vals[i+1], vals[i+2], vals[i+3]
			l0, l1, l2, l3 := lids[i], lids[i+1], lids[i+2], lids[i+3]
			s.cpdot[l0] = qf * v0
			s.cpdot[l1] = qf * v1
			s.cpdot[l2] = qf * v2
			s.cpdot[l3] = qf * v3
			s.cpsq[l0] = v0 * v0
			s.cpsq[l1] = v1 * v1
			s.cpsq[l2] = v2 * v2
			s.cpsq[l3] = v3 * v3
		}
		for ; i < end; i++ {
			v := vals[i]
			lid := lids[i]
			s.cpdot[lid] = qf * v
			s.cpsq[lid] = v * v
		}
	}
	// Remaining ranges accumulate. Writes to entries outside the first
	// range land on stale slots that are never read.
	for j := 0; j < nf; j++ {
		if j == first {
			continue
		}
		qf := qdir[s.focus[j]]
		vals, lids := lists.list(int(s.focus[j]))
		i, end := s.rangeStart[j], s.rangeEnd[j]
		for ; i+4 <= end; i += 4 {
			v0, v1, v2, v3 := vals[i], vals[i+1], vals[i+2], vals[i+3]
			l0, l1, l2, l3 := lids[i], lids[i+1], lids[i+2], lids[i+3]
			s.cpdot[l0] += qf * v0
			s.cpdot[l1] += qf * v1
			s.cpdot[l2] += qf * v2
			s.cpdot[l3] += qf * v3
			s.cpsq[l0] += v0 * v0
			s.cpsq[l1] += v1 * v1
			s.cpsq[l2] += v2 * v2
			s.cpsq[l3] += v3 * v3
		}
		for ; i < end; i++ {
			v := vals[i]
			lid := lids[i]
			s.cpdot[lid] += qf * v
			s.cpsq[lid] += v * v
		}
	}
	// Filter over the first range with the rewritten Eq. (5).
	qRestSq := 1 - qFsq
	if qRestSq < 0 {
		qRestSq = 0
	}
	_, lids := lists.list(int(s.focus[first]))
	for i := s.rangeStart[first]; i < s.rangeEnd[first]; i++ {
		lid := lids[i]
		plen := b.lens[lid]
		partial := s.cpdot[lid] * plen * qlen
		if partial > theta {
			s.cand = append(s.cand, lid)
			continue
		}
		pRestSq := 1 - s.cpsq[lid]
		if pRestSq < 0 {
			pRestSq = 0
		}
		rest := theta - partial
		if plen*plen*qlen*qlen*pRestSq*qRestSq >= rest*rest {
			s.cand = append(s.cand, lid)
		}
	}
	s.work += 2 * int64(s.rangeEnd[first]-s.rangeStart[first])
}
