package core

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
	"lemp/internal/vecmath"
)

// clusteredQueries draws query vectors around a few shared directions, the
// regime the query-clustering approximation is designed for.
func clusteredQueries(rng *rand.Rand, n, groups, r int, noise float64) *matrix.Matrix {
	centers := matrix.New(r, groups)
	for c := 0; c < groups; c++ {
		v := centers.Vec(c)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		vecmath.Normalize(v, v)
	}
	m := matrix.New(r, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(groups)
		v := m.Vec(i)
		for f := range v {
			v[f] = centers.Vec(c)[f] + noise*rng.NormFloat64()
		}
		vecmath.Scale(v, v, 0.5+2*rng.Float64())
	}
	return m
}

func TestRowTopKApproxHighRecallOnClusteredQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	q := clusteredQueries(rng, 300, 6, 12, 0.05)
	p := genMatrix(rng, 500, 12, 0.8, 1, false, 0, 0)
	ix, err := NewIndex(p, testOptions(AlgLI))
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := naive.RowTopK(q, p, 5)
	approx, st, err := ix.RowTopKApprox(q, 5, ApproxOptions{Clusters: 6, Expand: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec := Recall(exact, approx); rec < 0.95 {
		t.Errorf("recall %.3f on tightly clustered queries, want ≥ 0.95", rec)
	}
	// The point of the approximation: far fewer exact products than m·n.
	if st.Candidates >= int64(q.N())*int64(p.N())/2 {
		t.Errorf("approximation did %d candidate evaluations of %d total", st.Candidates, q.N()*p.N())
	}
}

func TestRowTopKApproxValuesAreExactProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	q := clusteredQueries(rng, 80, 4, 8, 0.2)
	p := genMatrix(rng, 250, 8, 0.8, 1, false, 0, 0)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	approx, _, err := ix.RowTopKApprox(q, 4, ApproxOptions{Clusters: 4, Expand: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range approx {
		if len(row) == 0 || len(row) > 4 {
			t.Fatalf("row %d has %d entries", i, len(row))
		}
		seen := map[int]bool{}
		prev := math.Inf(1)
		for _, e := range row {
			if seen[e.Probe] {
				t.Fatalf("row %d: duplicate probe %d", i, e.Probe)
			}
			seen[e.Probe] = true
			if e.Value > prev+1e-12 {
				t.Fatalf("row %d not sorted", i)
			}
			prev = e.Value
			want := q.Product(p, i, e.Probe)
			if math.Abs(e.Value-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("row %d probe %d: value %g, product %g", i, e.Probe, e.Value, want)
			}
		}
	}
}

func TestRowTopKApproxMoreClustersImproveRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	// Diffuse queries: a single centroid is a poor proxy, many are better.
	q := genMatrix(rng, 250, 10, 0.3, 1, false, 0, 0)
	p := genMatrix(rng, 400, 10, 0.8, 1, false, 0, 0)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	exact, _ := naive.RowTopK(q, p, 5)
	few, _, err := ix.RowTopKApprox(q, 5, ApproxOptions{Clusters: 1, Expand: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	many, _, err := ix.RowTopKApprox(q, 5, ApproxOptions{Clusters: 64, Expand: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	recFew, recMany := Recall(exact, few), Recall(exact, many)
	if recMany < recFew {
		t.Errorf("recall did not improve with clusters: 1→%.3f, 64→%.3f", recFew, recMany)
	}
	if recMany < 0.5 {
		t.Errorf("recall %.3f with 64 clusters is implausibly low", recMany)
	}
}

func TestRowTopKApproxEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	p := genMatrix(rng, 60, 6, 0.5, 1, false, 0, 0)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	q := genMatrix(rng, 10, 6, 0.5, 1, false, 0, 0)

	// k larger than n.
	approx, _, err := ix.RowTopKApprox(q, 100, ApproxOptions{Clusters: 2, Expand: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range approx {
		if len(row) > 60 {
			t.Fatalf("row %d has %d entries with n=60", i, len(row))
		}
	}
	// Invalid arguments.
	if _, _, err := ix.RowTopKApprox(q, 0, ApproxOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	bad := genMatrix(rng, 5, 7, 0.5, 1, false, 0, 0)
	if _, _, err := ix.RowTopKApprox(bad, 3, ApproxOptions{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Empty query matrix.
	empty := matrix.New(6, 0)
	out, _, err := ix.RowTopKApprox(empty, 3, ApproxOptions{})
	if err != nil || len(out) != 0 {
		t.Errorf("empty queries: %d rows, err %v", len(out), err)
	}
}

func TestRecallMetric(t *testing.T) {
	exact := retrieval.TopK{
		{{Probe: 1}, {Probe: 2}},
		{{Probe: 3}, {Probe: 4}},
	}
	approx := retrieval.TopK{
		{{Probe: 1}, {Probe: 9}},
		{{Probe: 3}, {Probe: 4}},
	}
	if rec := Recall(exact, approx); math.Abs(rec-0.75) > 1e-12 {
		t.Errorf("recall %g, want 0.75", rec)
	}
	if rec := Recall(nil, nil); rec != 1 {
		t.Errorf("empty recall %g", rec)
	}
	if rec := Recall(retrieval.TopK{{}}, retrieval.TopK{{}}); rec != 1 {
		t.Errorf("all-empty-rows recall %g", rec)
	}
}

func TestProbeVecReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	p := genMatrix(rng, 120, 7, 1.0, 1, false, 2, 5)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	locs := ix.probeLocations()
	got := make([]float64, ix.r)
	for id := 0; id < p.N(); id++ {
		l, ok := locs[int32(id)]
		if !ok {
			t.Fatalf("probe %d missing from location lookup", id)
		}
		b := ix.scan[l.bucket]
		vecmath.Scale(got, b.dir(int(l.lid)), b.lens[l.lid])
		want := p.Vec(id)
		for f := range want {
			if math.Abs(got[f]-want[f]) > 1e-9 {
				t.Fatalf("probe %d coordinate %d: %g vs %g", id, f, got[f], want[f])
			}
		}
	}
}
