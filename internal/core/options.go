// Package core implements the LEMP framework of the paper: bucketization of
// the probe vectors by length (§3), the Above-θ and Row-Top-k retrieval
// drivers (§3.2, §4.5), the bucket-level retrieval algorithms LENGTH, COORD
// and INCR (§4.1–4.3), sample-based algorithm selection (§4.4), and the
// adapters that run TA, cover trees, L2AP and BayesLSH-Lite as bucket
// algorithms (§5, §6.3).
package core

import (
	"fmt"
	"strings"
)

// Algorithm selects the bucket-level retrieval method, mirroring the
// LEMP-X naming of the paper's experimental study (§6).
type Algorithm int

const (
	// AlgLI mixes LENGTH and INCR via the tuned per-bucket threshold t_b
	// (§4.4) — the paper's overall winner and this library's default.
	AlgLI Algorithm = iota
	// AlgL uses only length-based pruning (§4.1).
	AlgL
	// AlgC uses only coordinate-based pruning (§4.2).
	AlgC
	// AlgI uses only incremental pruning (§4.3). Buckets tuned to φ_b = 1
	// fall back to COORD, which computes the same candidates faster
	// (Appendix A).
	AlgI
	// AlgLC mixes LENGTH and COORD via the tuned t_b.
	AlgLC
	// AlgTA runs the threshold algorithm inside each bucket.
	AlgTA
	// AlgTree runs a lazily built cover tree inside each bucket.
	AlgTree
	// AlgL2AP runs an L2AP index inside each bucket.
	AlgL2AP
	// AlgBLSH prunes length-qualified candidates with BayesLSH-Lite
	// signatures. It is the only approximate method: results may miss a
	// true entry with probability ε per candidate.
	AlgBLSH
)

var algorithmNames = map[Algorithm]string{
	AlgLI:   "LI",
	AlgL:    "L",
	AlgC:    "C",
	AlgI:    "I",
	AlgLC:   "LC",
	AlgTA:   "TA",
	AlgTree: "Tree",
	AlgL2AP: "L2AP",
	AlgBLSH: "BLSH",
}

// String returns the paper's LEMP-X suffix for the algorithm.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms lists all bucket algorithms in a stable presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgL, AlgLI, AlgLC, AlgI, AlgC, AlgTA, AlgTree, AlgL2AP, AlgBLSH}
}

// ParseAlgorithm resolves a (case-insensitive) LEMP-X suffix such as "LI"
// or "l2ap".
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algorithmNames {
		if strings.EqualFold(s, name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Exact reports whether the algorithm guarantees exact results. Everything
// except BLSH is exact.
func (a Algorithm) Exact() bool { return a != AlgBLSH }

// Valid reports whether a names a known bucket algorithm.
func (a Algorithm) Valid() bool {
	_, ok := algorithmNames[a]
	return ok
}

// needsPhi reports whether the algorithm scans sorted lists and therefore
// uses the focus-set size φ.
func (a Algorithm) needsPhi() bool {
	switch a {
	case AlgC, AlgI, AlgLC, AlgLI:
		return true
	}
	return false
}

// needsTB reports whether the algorithm switches between LENGTH and
// coordinate pruning on the tuned threshold t_b.
func (a Algorithm) needsTB() bool { return a == AlgLC || a == AlgLI }

// Options configure an Index. The zero value selects the paper's defaults;
// use it directly or adjust individual fields.
type Options struct {
	// Algorithm is the bucket method (default AlgLI, the paper's best).
	Algorithm Algorithm
	// Phi fixes the number of focus coordinates for COORD/INCR. 0 tunes
	// φ_b per bucket on a query sample (§4.4).
	Phi int
	// MaxPhi bounds the tuning search space (default 5, the paper's
	// "typically in the range of 1–5").
	MaxPhi int
	// CacheBytes is the per-bucket memory budget that keeps a bucket's
	// vectors and index cache-resident (§3.2). Default 2 MiB; negative
	// disables the limit (the cache-oblivious ablation of §6.2).
	CacheBytes int
	// MinBucketSize is the minimum number of vectors per bucket
	// (default 30, as in the paper).
	MinBucketSize int
	// ShrinkFactor starts a new bucket when a vector's length falls below
	// this fraction of the bucket's longest vector (default 0.9).
	ShrinkFactor float64
	// SampleQueries is the tuning sample size (default 30).
	SampleQueries int
	// TuneByCost replaces wall-clock tuning with a deterministic
	// operation-count cost model. Results are identical either way; only
	// the per-bucket algorithm choice can differ.
	TuneByCost bool
	// Parallelism fans the retrieval phase out over this many goroutines
	// (default 1, matching the paper's single-threaded measurements).
	Parallelism int
	// SignatureBits is the BLSH signature length (default 32, ≤ 64).
	SignatureBits int
	// Epsilon is the BLSH false-negative rate (default 0.03).
	Epsilon float64
	// Seed drives the BLSH hyperplanes (default 1).
	Seed int64
	// Quantize maintains an int8 sidecar of every bucket's directions
	// (internal/quant) and screens verification candidates with a cheap
	// approximate dot plus a conservative error bound before the exact f64
	// kernels run. Exact results are unchanged — the bound is conservative,
	// so only candidates that provably cannot reach the threshold are
	// skipped; the Approx retrieval mode additionally skips the exact
	// fall-through for survivors. Costs ~n·r bytes of sidecar per index
	// (about 1/8 of the probe directions) plus quantization time on build,
	// mutation and compaction. Dimensions above quant.MaxDim silently
	// disable screening.
	Quantize bool
}

// hasTunableParams reports whether the options' algorithm has per-bucket
// parameters for the sample-based selection of §4.4 to fit.
func (o Options) hasTunableParams() bool {
	if o.Algorithm.needsTB() {
		return true
	}
	return o.Algorithm.needsPhi() && o.Phi == 0
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.Phi < 0 {
		o.Phi = 0
	}
	if o.MaxPhi == 0 {
		o.MaxPhi = 5
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 2 << 20
	}
	if o.MinBucketSize == 0 {
		o.MinBucketSize = 30
	}
	if o.ShrinkFactor == 0 {
		o.ShrinkFactor = 0.9
	}
	if o.SampleQueries == 0 {
		o.SampleQueries = 30
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.SignatureBits == 0 {
		o.SignatureBits = 32
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.03
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// validate rejects out-of-range option values.
func (o Options) validate() error {
	if _, ok := algorithmNames[o.Algorithm]; !ok {
		return fmt.Errorf("core: invalid algorithm %d", int(o.Algorithm))
	}
	if o.ShrinkFactor < 0 || o.ShrinkFactor > 1 {
		return fmt.Errorf("core: ShrinkFactor %v out of [0,1]", o.ShrinkFactor)
	}
	if o.SignatureBits < 0 || o.SignatureBits > 64 {
		return fmt.Errorf("core: SignatureBits %d out of [1,64]", o.SignatureBits)
	}
	if o.Epsilon < 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: Epsilon %v out of (0,1)", o.Epsilon)
	}
	if o.MinBucketSize < 1 {
		return fmt.Errorf("core: MinBucketSize %d must be positive", o.MinBucketSize)
	}
	return nil
}
