package core

import "math"

// runBucketTree runs a cover-tree search inside one bucket (the paper's
// LEMP-Tree, §6.3): the tree over the bucket's raw vectors is built lazily
// on first use, so buckets pruned by length never pay construction — the
// property that lets LEMP-Tree beat the standalone Tree baseline when
// preprocessing dominates. The search works on the unit query direction
// with threshold θ/‖q‖ (the kernel scales linearly in ‖q‖). Every vector
// whose inner product the search computes becomes a candidate; LEMP's
// verification re-checks them against θ, keeping candidate accounting
// uniform across bucket algorithms.
func runBucketTree(b *bucket, qdir []float64, qlen, theta float64, s *scratch) {
	s.cand = s.cand[:0]
	scaled := theta / qlen
	if math.IsInf(scaled, -1) {
		// Unseeded Row-Top-k pass: everything qualifies, so skip even
		// building the tree.
		allCandidates(b, s)
		return
	}
	tree := b.ensureTree()
	s.work += tree.SearchAboveTheta(qdir, 1, scaled, func(lid int32, _ float64) {
		s.cand = append(s.cand, lid)
	})
}
