package core

import (
	"math"
	"sync"
)

// Cross-call reuse of the sample-based algorithm selection (§4.4). Tuning
// costs a sample of real retrievals per call — roughly 10× the marginal
// per-query retrieval work on small batches — which a one-shot run amortizes
// over a large query matrix but a serving system re-pays on every small
// request. A TuningCache remembers the fitted per-bucket (t_b, φ_b) keyed by
// everything that determines them: the exact index version (instance, epoch
// and bucket layout), the frozen-tuning state, the effective algorithm and φ
// policy, and the problem (k or θ). A warm hit restores the parameters with
// a single pass over the buckets and skips sample tuning entirely.

// TuningCache caches fitted per-bucket tuning parameters across retrieval
// calls. It is safe for concurrent use by multiple goroutines and may be
// shared across indexes (e.g. the shards of a partitioned probe set): keys
// embed a unique per-index instance id, so entries never cross indexes.
//
// Entries are invalidated implicitly: any probe mutation advances the index
// epoch and any re-bucketization (Compact, delta rebuild) advances the
// layout generation, both part of the key, so a stale entry can never be
// applied to a changed index. Stale entries are dropped wholesale when the
// cache reaches its entry bound.
type TuningCache struct {
	mu      sync.Mutex
	entries map[tuneCacheKey][]tunedParam
	hits    uint64
	misses  uint64
}

// tuningCacheMaxEntries bounds the cache; distinct keys accumulate with
// epoch churn, so the map is cleared wholesale when full (entries for live
// index versions re-fill on the next call at one tuning pass each).
const tuningCacheMaxEntries = 1024

// tuneCacheKey identifies one fitted parameter set.
type tuneCacheKey struct {
	index    uint64 // Index instance id (indexSeq)
	epoch    uint64 // mutation epoch
	layout   uint64 // bucketization generation (delta rebuilds, Compact)
	pretuned bool   // frozen-tuning state
	alg      Algorithm
	phi      int  // Options.Phi policy (0 = tuned per bucket)
	topk     bool // problem kind
	k        int
	theta    uint64 // math.Float64bits of θ
}

// tunedParam is one bucket's fitted state, in scan order.
type tunedParam struct {
	tuned bool
	tb    float64
	phi   int
}

// NewTuningCache returns an empty tuning cache.
func NewTuningCache() *TuningCache {
	return &TuningCache{entries: make(map[tuneCacheKey][]tunedParam)}
}

// Hits reports lookups that restored cached parameters.
func (tc *TuningCache) Hits() uint64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.hits
}

// Misses reports lookups that found nothing and paid a tuning pass.
func (tc *TuningCache) Misses() uint64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.misses
}

// Len reports the number of cached parameter sets.
func (tc *TuningCache) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.entries)
}

func (tc *TuningCache) get(key tuneCacheKey) ([]tunedParam, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	params, ok := tc.entries[key]
	if ok {
		tc.hits++
	} else {
		tc.misses++
	}
	return params, ok
}

func (tc *TuningCache) put(key tuneCacheKey, params []tunedParam) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if len(tc.entries) >= tuningCacheMaxEntries {
		tc.entries = make(map[tuneCacheKey][]tunedParam)
	}
	tc.entries[key] = params
}

// tuneCacheKey builds the cache key for this index at its current version
// under the call's effective options and problem.
func (ix *Index) tuneCacheKey(o Options, prob any) tuneCacheKey {
	key := tuneCacheKey{
		index:    ix.id,
		epoch:    ix.epoch,
		layout:   ix.layout,
		pretuned: ix.pretuned,
		alg:      o.Algorithm,
		phi:      o.Phi,
	}
	switch p := prob.(type) {
	case tuneTopK:
		key.topk = true
		key.k = p.k
	case tuneAbove:
		key.theta = math.Float64bits(p.theta)
	}
	return key
}

// captureTunedParams snapshots the scan buckets' fitted parameters.
func (ix *Index) captureTunedParams() []tunedParam {
	params := make([]tunedParam, len(ix.scan))
	for i, b := range ix.scan {
		params[i] = tunedParam{tuned: b.tuned, tb: b.tb, phi: b.phi}
	}
	return params
}

// applyTunedParams restores cached parameters onto the scan buckets. It
// reports false — caller falls back to a tuning pass — when the cached
// shape no longer matches the bucket list (possible only if a layout
// change failed to rotate the key; belt and braces).
func (ix *Index) applyTunedParams(params []tunedParam) bool {
	if len(params) != len(ix.scan) {
		return false
	}
	for i, b := range ix.scan {
		b.tuned, b.tb, b.phi = params[i].tuned, params[i].tb, params[i].phi
	}
	return true
}
