package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"lemp/internal/kmeans"
	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// Approximate Row-Top-k via query clustering, the approach the paper cites
// as directly composable with LEMP (§5, Koenigstein et al. [17]): cluster
// the query vectors, run exact Row-Top-k' only for the cluster centroids
// (k' = Expand·k), and answer each query exactly over its centroid's
// candidate items. Recall is below 1 when a query's true top-k item is
// absent from its centroid's expanded list; it improves with more clusters
// and a larger Expand.

// ApproxOptions tune RowTopKApprox.
type ApproxOptions struct {
	// Clusters is the number of query clusters (default √m, at least 1).
	Clusters int
	// Expand retrieves Expand·k candidates per centroid (default 10).
	Expand int
	// MaxIter bounds the k-means iterations (default 10).
	MaxIter int
	// Seed drives the clustering initialization (default 1).
	Seed int64
}

func (o ApproxOptions) withDefaults(m int) ApproxOptions {
	if o.Clusters <= 0 {
		o.Clusters = int(math.Sqrt(float64(m)))
		if o.Clusters < 1 {
			o.Clusters = 1
		}
	}
	if o.Expand <= 0 {
		o.Expand = 10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RowTopKApprox returns an approximate Row-Top-k answer: per query, k probe
// entries whose values are exact inner products, but which may miss some
// true top-k members (the only approximate retrieval mode besides the BLSH
// bucket algorithm, and the only one that can miss by design). It is
// RowTopKApproxCtx with a background context and the index's build-time
// options.
func (ix *Index) RowTopKApprox(q *matrix.Matrix, k int, aopts ApproxOptions) (retrieval.TopK, Stats, error) {
	return ix.RowTopKApproxCtx(context.Background(), q, k, aopts, RunOptions{})
}

// RowTopKApproxCtx is the context-aware approximate driver with per-call
// execution overrides. The context is honored between the clustering phase
// and the centroid retrieval, throughout the exact centroid Row-Top-k', and
// at every query of the final re-ranking pass.
func (ix *Index) RowTopKApproxCtx(ctx context.Context, q *matrix.Matrix, k int, aopts ApproxOptions, ro RunOptions) (retrieval.TopK, Stats, error) {
	if q.R() != ix.r {
		return nil, Stats{}, fmt.Errorf("core: query dimension %d does not match index dimension %d", q.R(), ix.r)
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	opts, err := ix.effOptions(ro)
	if err != nil {
		return nil, Stats{}, err
	}
	c := newCall(ctx, opts, ro.Cache)
	m := q.N()
	aopts = aopts.withDefaults(m)
	st := Stats{Queries: m, Buckets: len(ix.scan), PrepTime: ix.prepTime}
	out := make(retrieval.TopK, m)
	live := ix.LiveN()
	if m == 0 || live == 0 {
		return out, st, nil
	}

	// Phase 1: cluster the queries (charged to tuning time: it plays the
	// same role — a small upfront investment guiding retrieval).
	tuneStart := time.Now()
	clusters := kmeans.Spherical(q, aopts.Clusters, aopts.MaxIter, aopts.Seed)
	st.TuneTime = time.Since(tuneStart)
	if c.canceled() {
		return nil, st, c.ctxErr()
	}

	// Phase 2: Row-Top-k' for the centroids. With a quantized sidecar
	// active this phase runs with screenApprox set: the centroid list is
	// only a candidate pool, so survivors keep their approximate dots and
	// skip the exact kernels — phase 3 re-ranks every candidate with exact
	// products, so result values stay exact either way.
	kk := k
	if kk > live {
		kk = live
	}
	expanded := kk * aopts.Expand
	if expanded > live {
		expanded = live
	}
	roCentroid := ro
	roCentroid.screenApprox = true
	centroidTop, centroidStats, err := ix.RowTopKCtx(ctx, clusters.Centroids, expanded, roCentroid)
	if err != nil {
		return nil, Stats{}, err
	}
	st.TuneTime += centroidStats.TuneTime
	st.Tunings += centroidStats.Tunings
	st.TuneCacheHits += centroidStats.TuneCacheHits
	st.Candidates += centroidStats.Candidates
	st.ProcessedPairs += centroidStats.ProcessedPairs
	st.PrunedPairs += centroidStats.PrunedPairs

	// Phase 3: answer each query exactly over its centroid's candidates.
	// The candidate raw vectors are gathered into a reusable scratch panel
	// (scaled from their bucket-resident unit directions, exactly how the
	// old per-candidate path materialized them) and verified with one
	// blocked DotBatch pass per query — no per-candidate allocation or
	// lookup-table locking remains on this path.
	start := time.Now()
	heap := topk.New(kk)
	locs := ix.probeLocations()
	s := ix.getScratch()
	defer ix.putScratch(s)
	for i := 0; i < m; i++ {
		if c.canceled() {
			return nil, st, c.ctxErr()
		}
		cands := centroidTop[clusters.Assign[i]]
		nc := len(cands)
		if cap(s.panel) < nc*ix.r {
			s.panel = make([]float64, nc*ix.r)
		}
		panel := s.panel[:nc*ix.r]
		for j, e := range cands {
			l := locs[int32(e.Probe)]
			b := ix.scan[l.bucket]
			vecmath.Scale(panel[j*ix.r:(j+1)*ix.r], b.dir(int(l.lid)), b.lens[l.lid])
		}
		if cap(s.vals) < nc {
			s.vals = make([]float64, nc)
		}
		vals := s.vals[:nc]
		vecmath.DotBatch(q.Vec(i), panel, vals)
		heap.Reset()
		for j, e := range cands {
			heap.Push(e.Probe, vals[j])
		}
		st.Candidates += int64(nc)
		st.BlockVerified += int64(nc)
		items := heap.Items()
		row := make([]retrieval.Entry, len(items))
		for t, it := range items {
			row[t] = retrieval.Entry{Query: i, Probe: it.ID, Value: it.Value}
		}
		st.Results += int64(len(row))
		out[i] = row
	}
	st.RetrievalTime = centroidStats.RetrievalTime + time.Since(start)
	ix.countIndexedBuckets(&st)
	return out, st, nil
}

// probeLocations returns the lazy external-id → (scan bucket, lid) lookup,
// building it under the lock on first use. Mutations invalidate it (they
// rebuild the scan order it indexes into).
func (ix *Index) probeLocations() map[int32]probeLoc {
	ix.probeMu.Lock()
	defer ix.probeMu.Unlock()
	if ix.probeLocs == nil {
		loc := make(map[int32]probeLoc, ix.LiveN())
		for bi, b := range ix.scan {
			for lid := 0; lid < b.size(); lid++ {
				if ix.deadSkip(b, lid) {
					continue
				}
				loc[b.ids[lid]] = probeLoc{bucket: int32(bi), lid: int32(lid)}
			}
		}
		ix.probeLocs = loc
	}
	return ix.probeLocs
}

type probeLoc struct {
	bucket int32
	lid    int32
}

// Recall returns the fraction of true top-k entries (per exact) that also
// appear in approx, averaged over queries — the quality metric for
// RowTopKApprox. Rows must correspond query by query.
func Recall(exact, approx retrieval.TopK) float64 {
	if len(exact) == 0 {
		return 1
	}
	var sum float64
	var rows int
	for i := range exact {
		if len(exact[i]) == 0 {
			continue
		}
		rows++
		truth := make(map[int]bool, len(exact[i]))
		for _, e := range exact[i] {
			truth[e.Probe] = true
		}
		hit := 0
		if i < len(approx) {
			for _, e := range approx[i] {
				if truth[e.Probe] {
					hit++
				}
			}
		}
		sum += float64(hit) / float64(len(exact[i]))
	}
	if rows == 0 {
		return 1
	}
	return sum / float64(rows)
}
