package core

import (
	"sort"
	"sync"

	"lemp/internal/covertree"
	"lemp/internal/l2ap"
	"lemp/internal/lsh"
	"lemp/internal/matrix"
	"lemp/internal/quant"
	"lemp/internal/vecmath"
)

// bucket holds a group of probe vectors of similar length (§3.2, Fig. 4a):
// original column ids, lengths sorted in decreasing order, and the
// normalized directions, plus lazily built per-bucket indexes.
type bucket struct {
	r    int
	ids  []int32   // original probe column numbers, by decreasing length
	lens []float64 // vector lengths, decreasing
	dirs []float64 // normalized vectors, contiguous (size() × r)
	lb   float64   // length of the longest vector

	// Sorted-list index for COORD/INCR/TA, built lazily on first use.
	listsOnce sync.Once
	lists     *sortedLists

	// Cover tree over the bucket's raw vectors, for AlgTree.
	treeOnce sync.Once
	tree     *covertree.Tree

	// L2AP index, for AlgL2AP. Guarded by a mutex rather than a Once
	// because it must be rebuilt when a run needs a smaller index-time
	// threshold than it was built with.
	l2mu sync.Mutex
	l2   *l2ap.Index

	// BLSH signatures of the normalized vectors, for AlgBLSH.
	sigsOnce sync.Once
	sigs     []uint64

	// Tuned algorithm-selection parameters (§4.4).
	tuned bool
	tb    float64 // use LENGTH when θ_b(q) < tb
	phi   int     // focus-set size for COORD/INCR

	// delta marks an overlay bucket (delta.go): its entries are always
	// live, so tombstone filtering is skipped.
	delta bool

	// q8 is the int8 quantization sidecar of dirs (Options.Quantize): the
	// conservative screen that runs ahead of exact verification. nil when
	// quantized screening is off or the dimension exceeds quant.MaxDim.
	// Attached right after bucketization, before the bucket is published,
	// so it needs no synchronization.
	q8 *quant.Rows
}

func (b *bucket) size() int { return len(b.ids) }

// dir returns the normalized vector with bucket-local id lid.
func (b *bucket) dir(lid int) []float64 {
	return b.dirs[lid*b.r : (lid+1)*b.r : (lid+1)*b.r]
}

// ensureLists builds the sorted-list index on first use. A bucket restored
// from a snapshot that persisted its lists (SLST section) arrives with
// b.lists pre-populated — installed single-threaded before the index is
// published — and skips the build.
func (b *bucket) ensureLists() *sortedLists {
	b.listsOnce.Do(func() {
		if b.lists == nil {
			b.lists = buildLists(b)
		}
	})
	return b.lists
}

// ensureTree builds the per-bucket cover tree over the raw (un-normalized)
// vectors on first use.
func (b *bucket) ensureTree() *covertree.Tree {
	b.treeOnce.Do(func() {
		pts := matrix.New(b.r, b.size())
		for lid := 0; lid < b.size(); lid++ {
			vecmath.Scale(pts.Vec(lid), b.dir(lid), b.lens[lid])
		}
		b.tree = covertree.Build(pts, covertree.DefaultBase)
	})
	return b.tree
}

// ensureL2AP returns an L2AP index valid for query thresholds ≥ t0,
// (re)building when the existing index was built with a larger bound.
func (b *bucket) ensureL2AP(t0 float64) *l2ap.Index {
	b.l2mu.Lock()
	defer b.l2mu.Unlock()
	if b.l2 == nil || b.l2.T0() > t0 {
		b.l2 = l2ap.Build(b.dir, b.size(), b.r, t0)
	}
	return b.l2
}

// ensureSigs computes the BLSH signatures of the bucket's directions.
func (b *bucket) ensureSigs(h *lsh.Hasher) []uint64 {
	b.sigsOnce.Do(func() {
		sigs := make([]uint64, b.size())
		for lid := range sigs {
			sigs[lid] = h.Signature(b.dir(lid))
		}
		b.sigs = sigs
	})
	return b.sigs
}

// indexed reports whether any lazy index has been built (for Stats).
func (b *bucket) indexed() bool {
	return b.lists != nil || b.tree != nil || b.l2 != nil || b.sigs != nil
}

// lengthPrefix returns the number of leading vectors with length ≥ minLen
// (the LENGTH scan boundary: lens is sorted decreasingly).
func (b *bucket) lengthPrefix(minLen float64) int {
	return sort.Search(b.size(), func(i int) bool { return b.lens[i] < minLen })
}

// bucketSpans computes the bucket boundaries of §3.2 over lengths already
// sorted in decreasing order: span [start, end) becomes one bucket. A new
// bucket starts when the length drops below shrink·l_b or the bucket would
// exceed maxSize vectors; every bucket holds at least minSize vectors and a
// too-short tail is absorbed into the last bucket. maxSize ≤ 0 means
// unlimited. Shared by bucketize and ScanCostWeights so the cost model sees
// exactly the bucketization the index would build.
func bucketSpans(sortedLens []float64, shrink float64, minSize, maxSize int) [][2]int {
	n := len(sortedLens)
	var spans [][2]int
	for start := 0; start < n; {
		lb := sortedLens[start]
		end := start + 1
		for end < n {
			size := end - start
			if maxSize > 0 && size >= maxSize {
				break
			}
			if size >= minSize && sortedLens[end] < shrink*lb {
				break
			}
			end++
		}
		if n-end < minSize && (maxSize <= 0 || end-start+(n-end) <= 2*maxSize) {
			end = n // absorb a short tail
		}
		spans = append(spans, [2]int{start, end})
		start = end
	}
	return spans
}

// bucketize sorts the probe vectors by decreasing length and groups them
// into buckets per §3.2 (boundaries from bucketSpans). extIDs names column
// col extIDs[col] in the bucket id arrays; nil uses the column numbers
// themselves.
func bucketize(p *matrix.Matrix, extIDs []int32, shrink float64, minSize, maxSize int) []*bucket {
	n := p.N()
	if n == 0 {
		return nil
	}
	r := p.R()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	lens := p.Lengths()
	sort.SliceStable(order, func(a, b int) bool { return lens[order[a]] > lens[order[b]] })
	sorted := make([]float64, n)
	for i, id := range order {
		sorted[i] = lens[id]
	}

	var buckets []*bucket
	for _, sp := range bucketSpans(sorted, shrink, minSize, maxSize) {
		start, end := sp[0], sp[1]
		lb := sorted[start]
		b := &bucket{
			r:    r,
			ids:  make([]int32, end-start),
			lens: make([]float64, end-start),
			dirs: make([]float64, (end-start)*r),
			lb:   lb,
		}
		for i := start; i < end; i++ {
			lid := i - start
			id := order[i]
			if extIDs != nil {
				b.ids[lid] = extIDs[id]
			} else {
				b.ids[lid] = id
			}
			b.lens[lid] = lens[id]
			vecmath.Normalize(b.dir(lid), p.Vec(int(id)))
		}
		buckets = append(buckets, b)
	}
	return buckets
}

// bucketBytes estimates the cache footprint of one probe vector inside a
// bucket: its normalized direction, length, id, and sorted-list index entry
// per coordinate (value + local id).
func bucketBytes(r int) int {
	return r*8 + 8 + 4 + r*(8+4)
}
