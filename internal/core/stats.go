package core

import "time"

// Stats reports the work done by one retrieval run, in the units the
// paper's tables use: wall-clock phases and average candidate set sizes.
type Stats struct {
	Queries int // number of query vectors processed
	Buckets int // number of probe buckets in the index

	// Candidates counts probe vectors that survived bucket-level pruning
	// and were verified with an exact inner product — the paper's |C|
	// column. Results counts verified entries that passed the threshold
	// (or ended in a top-k set).
	Candidates int64
	Results    int64

	// BlockVerified and ScalarVerified split the live verified candidates
	// by kernel: block-verified candidates went through the panel kernels
	// (DotBatch over a contiguous run, or 8/4-wide strided blocks), scalar-
	// verified ones were the ragged tail handled by plain Dot. Their sum
	// can undershoot Candidates: tombstoned candidates are dropped before
	// verification and counted in neither.
	BlockVerified  int64
	ScalarVerified int64

	// ProcessedPairs and PrunedPairs count (query, bucket) combinations
	// that were processed vs. skipped because the local threshold
	// exceeded 1 (line 13 of Algorithm 1).
	ProcessedPairs int64
	PrunedPairs    int64

	// QuantScreened and QuantSurvived split the candidates that reached an
	// active quantized screen (Options.Quantize): screened ones were
	// discarded by the conservative int8 bound without touching their f64
	// row, survived ones fell through to the exact kernels (or, in Approx
	// mode, adopted their approximate value). Both stay 0 when no sidecar
	// is active.
	QuantScreened int64
	QuantSurvived int64

	// IndexedBuckets counts buckets whose sorted-list (or tree, L2AP,
	// signature) index was actually built — LEMP builds lazily (§4.2).
	IndexedBuckets int

	// Tunings counts sample-tuning passes (§4.4) actually executed by the
	// call; TuneCacheHits counts tuning phases answered by restoring
	// parameters from a TuningCache instead. A warm-cache call reports
	// Tunings == 0 — the assertion that repeat-call tuning cost is gone.
	Tunings       int
	TuneCacheHits int

	// Phase times. For a single retrieval call each is that call's
	// wall-clock time; under Add (and therefore in any cumulative or
	// cross-shard aggregate, like a server's /stats) their semantics
	// diverge and consumers must not mix them up:
	//
	//   - PrepTime is one-time index preprocessing (bucketization, sorting,
	//     normalization). Add takes the MAX, and a sharded server sums the
	//     per-shard maxima — so at the server level it is total build cost,
	//     reported identically by every call.
	//   - TuneTime and RetrievalTime SUM across calls and across shards:
	//     a cumulative value is total worker time, not wall clock. Four
	//     shards scanning concurrently for 1ms report 4ms of RetrievalTime.
	PrepTime      time.Duration // bucketization + sorting + normalization
	TuneTime      time.Duration // sample-based algorithm selection (§4.4)
	RetrievalTime time.Duration // the retrieval phase itself
}

// Add accumulates another run's stats into s: work counters and the
// per-call phase times (tuning, retrieval) sum, while Buckets,
// IndexedBuckets and PrepTime take the maximum — they describe index
// state, not per-run work (every call re-reports the same one-time
// preprocessing cost, so summing PrepTime would multiply it by the call
// count). Long-lived servers use this to expose cumulative stats across
// many retrieval calls.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.Candidates += o.Candidates
	s.Results += o.Results
	s.BlockVerified += o.BlockVerified
	s.ScalarVerified += o.ScalarVerified
	s.ProcessedPairs += o.ProcessedPairs
	s.PrunedPairs += o.PrunedPairs
	s.QuantScreened += o.QuantScreened
	s.QuantSurvived += o.QuantSurvived
	s.Tunings += o.Tunings
	s.TuneCacheHits += o.TuneCacheHits
	if o.Buckets > s.Buckets {
		s.Buckets = o.Buckets
	}
	if o.IndexedBuckets > s.IndexedBuckets {
		s.IndexedBuckets = o.IndexedBuckets
	}
	if o.PrepTime > s.PrepTime {
		s.PrepTime = o.PrepTime
	}
	s.TuneTime += o.TuneTime
	s.RetrievalTime += o.RetrievalTime
}

// TotalTime returns preprocessing + tuning + retrieval, the paper's
// "total wall-clock time" (Figs. 5–7, Tables 3–6).
func (s Stats) TotalTime() time.Duration {
	return s.PrepTime + s.TuneTime + s.RetrievalTime
}

// CandidatesPerQuery returns the average candidate set size per query, the
// parenthesized |C|/q column of Tables 3–6.
func (s Stats) CandidatesPerQuery() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Candidates) / float64(s.Queries)
}
