package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

// ---------------------------------------------------------------------------
// Differential property harness for dynamic probe updates: random sequences
// of add/remove/update interleaved with Row-Top-k and Above-θ queries,
// asserting byte-identical results against an index freshly built over the
// same effective probe set — across bucket counts, dimensions, algorithms
// and Smoke-profile-like shapes. This is the main correctness argument for
// the delta layer: a mutated index must be observationally indistinguishable
// from a rebuild.
// ---------------------------------------------------------------------------

// probeModel is the reference state: the live probe set by external id.
type probeModel struct {
	vecs map[int32][]float64
}

func (m *probeModel) clone() *probeModel {
	c := &probeModel{vecs: make(map[int32][]float64, len(m.vecs))}
	for id, v := range m.vecs {
		c.vecs[id] = v
	}
	return c
}

// freshIndex builds an index from scratch over the model's live probe set,
// columns in ascending id order so stable-sort tie-breaking matches the
// mutated index's deterministic ordering rules.
func (m *probeModel) freshIndex(t *testing.T, r int, opts Options) *Index {
	t.Helper()
	ids := make([]int32, 0, len(m.vecs))
	for id := range m.vecs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	p := matrix.New(r, len(ids))
	for i, id := range ids {
		copy(p.Vec(i), m.vecs[id])
	}
	var extIDs []int32
	if len(ids) > 0 {
		extIDs = ids
	}
	ix, err := NewIndexWithIDs(p, extIDs, opts)
	if err != nil {
		t.Fatalf("fresh index: %v", err)
	}
	return ix
}

// randVec draws a Gaussian vector with a lognormal length scale; exact
// value ties between distinct probes are then probability-zero, so
// "byte-identical results" is a meaningful requirement.
func randVec(rng *rand.Rand, r int) []float64 {
	v := make([]float64, r)
	for f := range v {
		v[f] = rng.NormFloat64()
	}
	scale := math.Exp(0.6 * rng.NormFloat64())
	for f := range v {
		v[f] *= scale
	}
	return v
}

// randomBatch draws 1..6 ops valid for the current model, mutating the
// model in step. Returns the ops and the ids the adds are expected to get.
func randomBatch(rng *rand.Rand, model *probeModel, nextID *int32, r int) []ProbeUpdate {
	n := 1 + rng.Intn(6)
	ups := make([]ProbeUpdate, 0, n)
	for len(ups) < n {
		liveIDs := make([]int32, 0, len(model.vecs))
		for id := range model.vecs {
			liveIDs = append(liveIDs, id)
		}
		sort.Slice(liveIDs, func(a, b int) bool { return liveIDs[a] < liveIDs[b] })
		switch op := rng.Intn(3); {
		case op == 0 || len(liveIDs) == 0: // add
			vec := randVec(rng, r)
			id := *nextID
			if rng.Intn(4) == 0 { // explicit id, occasionally far ahead
				id += int32(rng.Intn(5))
			}
			if id >= *nextID {
				*nextID = id + 1
			}
			ups = append(ups, ProbeUpdate{Op: OpAdd, ID: id, Vec: vec})
			model.vecs[id] = vec
		case op == 1: // remove
			id := liveIDs[rng.Intn(len(liveIDs))]
			ups = append(ups, ProbeUpdate{Op: OpRemove, ID: id})
			delete(model.vecs, id)
		default: // update
			id := liveIDs[rng.Intn(len(liveIDs))]
			vec := randVec(rng, r)
			ups = append(ups, ProbeUpdate{Op: OpUpdate, ID: id, Vec: vec})
			model.vecs[id] = vec
		}
	}
	return ups
}

// sortRow orders a top-k row canonically (value desc, probe asc) so that
// equal result sets compare equal regardless of heap emission order.
func sortRow(row []retrieval.Entry) {
	sort.Slice(row, func(a, b int) bool {
		if row[a].Value != row[b].Value {
			return row[a].Value > row[b].Value
		}
		return row[a].Probe < row[b].Probe
	})
}

// checkEqual runs Row-Top-k and Above-θ on both indexes and requires
// byte-identical results.
func checkEqual(t *testing.T, tag string, mutated, fresh *Index, q *matrix.Matrix, k int) {
	t.Helper()
	if got, want := mutated.LiveN(), fresh.LiveN(); got != want {
		t.Fatalf("%s: LiveN %d, fresh %d", tag, got, want)
	}
	gotTop, _, err := mutated.RowTopK(q, k)
	if err != nil {
		t.Fatalf("%s: mutated RowTopK: %v", tag, err)
	}
	wantTop, _, err := fresh.RowTopK(q, k)
	if err != nil {
		t.Fatalf("%s: fresh RowTopK: %v", tag, err)
	}
	for i := range wantTop {
		g, w := gotTop[i], wantTop[i]
		sortRow(g)
		sortRow(w)
		if len(g) != len(w) {
			t.Fatalf("%s: query %d: %d entries, fresh %d", tag, i, len(g), len(w))
		}
		for j := range w {
			if g[j].Probe != w[j].Probe || g[j].Value != w[j].Value {
				t.Fatalf("%s: query %d entry %d: got (probe %d, %v), fresh (probe %d, %v)",
					tag, i, j, g[j].Probe, g[j].Value, w[j].Probe, w[j].Value)
			}
		}
	}

	// Pick θ from the fresh top values so the Above-θ result set is
	// usually non-empty; fall back to a θ that must yield nothing.
	theta := 1.0
	best := math.Inf(-1)
	for _, row := range wantTop {
		if len(row) > 0 && row[0].Value > best {
			best = row[0].Value
		}
	}
	if best > 0 {
		theta = best * 0.4
	}
	var got, want []retrieval.Entry
	if _, err := mutated.AboveTheta(q, theta, retrieval.Collect(&got)); err != nil {
		t.Fatalf("%s: mutated AboveTheta: %v", tag, err)
	}
	if _, err := fresh.AboveTheta(q, theta, retrieval.Collect(&want)); err != nil {
		t.Fatalf("%s: fresh AboveTheta: %v", tag, err)
	}
	retrieval.Sort(got)
	retrieval.Sort(want)
	if len(got) != len(want) {
		t.Fatalf("%s: above-θ %d entries, fresh %d (θ=%v)", tag, len(got), len(want), theta)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("%s: above-θ entry %d: got %+v, fresh %+v", tag, j, got[j], want[j])
		}
	}
}

// diffAlgorithms are the exact bucket algorithms the harness cycles
// through. BLSH is excluded by design: its pruning decisions depend on
// per-bucket thresholds, so a differently bucketized (mutated) index may
// legitimately miss different entries.
var diffAlgorithms = []Algorithm{AlgLI, AlgL, AlgC, AlgI, AlgLC, AlgTA, AlgTree, AlgL2AP}

// TestDifferentialMutations is the acceptance harness: ≥1000 randomized
// mutation/query sequences, each asserting exact equality between the
// mutated index and a fresh build over the same effective probe set.
func TestDifferentialMutations(t *testing.T) {
	sequences := 1100
	if testing.Short() {
		sequences = 200
	}
	checks := 0
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(7000 + seq)))
		r := []int{1, 2, 3, 8, 16}[rng.Intn(5)]
		n0 := rng.Intn(90)
		opts := Options{
			Algorithm:     diffAlgorithms[seq%len(diffAlgorithms)],
			MinBucketSize: []int{1, 2, 5, 30}[rng.Intn(4)],
			CacheBytes:    []int{-1, 2048, 2 << 20}[rng.Intn(3)],
			Parallelism:   1 + rng.Intn(2),
			TuneByCost:    rng.Intn(2) == 0,
			Quantize:      rng.Intn(2) == 0,
		}
		// The fresh comparison index draws Quantize independently, so the
		// harness covers all four screening on/off combinations: quantized
		// screening must never change exact results.
		freshOpts := opts
		freshOpts.Quantize = rng.Intn(2) == 0

		model := &probeModel{vecs: make(map[int32][]float64)}
		p := matrix.New(r, n0)
		for i := 0; i < n0; i++ {
			vec := randVec(rng, r)
			copy(p.Vec(i), vec)
			model.vecs[int32(i)] = vec
		}
		ix, err := NewIndex(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		nextID := int32(n0)

		steps := 1 + rng.Intn(5)
		for step := 0; step < steps; step++ {
			preModel := model.clone()
			ups := randomBatch(rng, model, &nextID, r)
			epochBefore := ix.Epoch()
			if rng.Intn(4) == 0 {
				// Copy-on-write path: derive, then verify the old index
				// still answers for the pre-batch model (non-interference).
				derived, _, err := ix.WithUpdates(ups)
				if err != nil {
					t.Fatalf("seq %d step %d: WithUpdates: %v", seq, step, err)
				}
				if ix.Epoch() != epochBefore {
					t.Fatalf("seq %d step %d: WithUpdates mutated the receiver's epoch", seq, step)
				}
				if step == 0 && seq%20 == 0 {
					qOld := matrix.New(r, 1)
					copy(qOld.Vec(0), randVec(rng, r))
					checkEqual(t, fmt.Sprintf("seq %d step %d (pre-COW)", seq, step),
						ix, preModel.freshIndex(t, r, freshOpts), qOld, 4)
				}
				ix = derived
			} else {
				if _, err := ix.Apply(ups); err != nil {
					t.Fatalf("seq %d step %d: Apply: %v", seq, step, err)
				}
			}
			if ix.Epoch() != epochBefore+1 {
				t.Fatalf("seq %d step %d: epoch %d after batch, want %d", seq, step, ix.Epoch(), epochBefore+1)
			}
			switch rng.Intn(6) {
			case 0:
				ix.Compact()
				if ix.DeltaMass() != 0 {
					t.Fatalf("seq %d step %d: delta mass %v after Compact", seq, step, ix.DeltaMass())
				}
			case 1:
				ix.MaybeCompact(0.5)
			}

			if rng.Intn(10) < 7 {
				m := 1 + rng.Intn(3)
				q := matrix.New(r, m)
				for i := 0; i < m; i++ {
					if rng.Intn(8) == 0 {
						continue // zero query: exercises zeroQueryRow merging
					}
					copy(q.Vec(i), randVec(rng, r))
				}
				k := []int{1, 3, 10, len(model.vecs) + 5}[rng.Intn(4)]
				fresh := model.freshIndex(t, r, freshOpts)
				checkEqual(t, fmt.Sprintf("seq %d step %d", seq, step), ix, fresh, q, k)
				checks++
			}
		}
	}
	t.Logf("%d sequences, %d differential checks", sequences, checks)
}

// TestApplyValidationAndAtomicity: a batch with any invalid op must leave
// the index untouched — ids, epoch, live set and query results.
func TestApplyValidationAndAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := matrix.New(4, 20)
	for i := 0; i < 20; i++ {
		copy(p.Vec(i), randVec(rng, 4))
	}
	ix, err := NewIndex(p, Options{MinBucketSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Apply([]ProbeUpdate{{Op: OpAdd, ID: AutoID, Vec: randVec(rng, 4)}}); err != nil {
		t.Fatal(err)
	}
	epoch, live := ix.Epoch(), ix.LiveN()
	q := matrix.New(4, 2)
	copy(q.Vec(0), randVec(rng, 4))
	copy(q.Vec(1), randVec(rng, 4))
	before, _, err := ix.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}

	good := ProbeUpdate{Op: OpAdd, ID: AutoID, Vec: randVec(rng, 4)}
	bad := []struct {
		name string
		ups  []ProbeUpdate
	}{
		{"dimension mismatch", []ProbeUpdate{good, {Op: OpAdd, ID: AutoID, Vec: make([]float64, 3)}}},
		{"NaN coordinate", []ProbeUpdate{good, {Op: OpUpdate, ID: 0, Vec: []float64{1, math.NaN(), 0, 0}}}},
		{"Inf coordinate", []ProbeUpdate{good, {Op: OpAdd, ID: AutoID, Vec: []float64{1, math.Inf(1), 0, 0}}}},
		{"duplicate add", []ProbeUpdate{good, {Op: OpAdd, ID: 0, Vec: randVec(rng, 4)}}},
		{"negative id", []ProbeUpdate{good, {Op: OpAdd, ID: -7, Vec: randVec(rng, 4)}}},
		{"unknown remove", []ProbeUpdate{good, {Op: OpRemove, ID: 999}}},
		{"unknown update", []ProbeUpdate{good, {Op: OpUpdate, ID: 999, Vec: randVec(rng, 4)}}},
		{"double remove in batch", []ProbeUpdate{{Op: OpRemove, ID: 1}, {Op: OpRemove, ID: 1}}},
		{"unknown op", []ProbeUpdate{{Op: UpdateOp(9), ID: 0}}},
	}
	for _, tc := range bad {
		if _, err := ix.Apply(tc.ups); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if ix.Epoch() != epoch || ix.LiveN() != live {
			t.Fatalf("%s: state mutated by rejected batch (epoch %d→%d, live %d→%d)",
				tc.name, epoch, ix.Epoch(), live, ix.LiveN())
		}
	}
	after, _, err := ix.RowTopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		sortRow(before[i])
		sortRow(after[i])
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("results changed after rejected batches")
			}
		}
	}
}

// TestUpdateSequenceSemantics covers the id lifecycle: add-remove-readd,
// update of an added probe, in-batch composition, and AutoID assignment.
func TestUpdateSequenceSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := matrix.New(3, 10)
	for i := 0; i < 10; i++ {
		copy(p.Vec(i), randVec(rng, 3))
	}
	ix, err := NewIndex(p, Options{MinBucketSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, err := ix.AddProbe(randVec(rng, 3))
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 {
		t.Fatalf("first auto id %d, want 10", id)
	}
	if err := ix.RemoveProbe(3); err != nil {
		t.Fatal(err)
	}
	if err := ix.RemoveProbe(3); err == nil {
		t.Fatal("double remove accepted")
	}
	// Re-adding a removed main id is allowed and revives the id.
	if err := ix.AddProbeWithID(3, randVec(rng, 3)); err != nil {
		t.Fatalf("re-add of removed id: %v", err)
	}
	if err := ix.UpdateProbe(id, randVec(rng, 3)); err != nil {
		t.Fatalf("update of added probe: %v", err)
	}
	// One batch may add and then remove the same id.
	v := randVec(rng, 3)
	ids, err := ix.Apply([]ProbeUpdate{
		{Op: OpAdd, ID: AutoID, Vec: v},
		{Op: OpRemove, ID: 11},
	})
	if err != nil {
		t.Fatalf("add+remove batch: %v", err)
	}
	if ids[0] != 11 || ids[1] != 11 {
		t.Fatalf("batch ids %v, want [11 11]", ids)
	}
	if got := ix.LiveN(); got != 11 {
		t.Fatalf("LiveN %d, want 11", got)
	}
	want := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := ix.LiveIDs()
	if len(got) != len(want) {
		t.Fatalf("LiveIDs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LiveIDs %v, want %v", got, want)
		}
	}
	if ix.NextID() != 12 {
		t.Fatalf("NextID %d, want 12", ix.NextID())
	}
}

// TestCompactPreservesPretunedFreeze: a pretuned index stays pretuned
// through mutations and compaction, and still answers exactly.
func TestCompactPreservesPretunedFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := matrix.New(8, 120)
	for i := 0; i < 120; i++ {
		copy(p.Vec(i), randVec(rng, 8))
	}
	ix, err := NewIndex(p, Options{TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}
	sample := matrix.New(8, 16)
	for i := 0; i < 16; i++ {
		copy(sample.Vec(i), randVec(rng, 8))
	}
	if err := ix.PretuneTopK(sample, 5); err != nil {
		t.Fatal(err)
	}
	model := &probeModel{vecs: make(map[int32][]float64)}
	for i := 0; i < 120; i++ {
		model.vecs[int32(i)] = append([]float64(nil), p.Vec(i)...)
	}
	nextID := int32(120)
	for step := 0; step < 4; step++ {
		ups := randomBatch(rng, model, &nextID, 8)
		if _, err := ix.Apply(ups); err != nil {
			t.Fatal(err)
		}
	}
	ix.Compact()
	if !ix.Pretuned() {
		t.Fatal("compaction dropped the pretuned freeze")
	}
	tuned := false
	for _, b := range ix.Buckets() {
		if b.Tuned {
			tuned = true
		}
	}
	if !tuned {
		t.Error("no bucket re-frozen after Compact of a pretuned index")
	}
	fresh := model.freshIndex(t, 8, Options{TuneByCost: true})
	q := matrix.New(8, 3)
	for i := 0; i < 3; i++ {
		copy(q.Vec(i), randVec(rng, 8))
	}
	checkEqual(t, "pretuned-compacted", ix, fresh, q, 7)
}

// TestEmptyAfterRemoveAll: removing every probe must leave a functioning,
// empty index that can be refilled.
func TestEmptyAfterRemoveAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := matrix.New(4, 8)
	for i := 0; i < 8; i++ {
		copy(p.Vec(i), randVec(rng, 4))
	}
	ix, err := NewIndex(p, Options{MinBucketSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ups := make([]ProbeUpdate, 8)
	for i := range ups {
		ups[i] = ProbeUpdate{Op: OpRemove, ID: int32(i)}
	}
	if _, err := ix.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if ix.LiveN() != 0 {
		t.Fatalf("LiveN %d after removing all", ix.LiveN())
	}
	q := matrix.New(4, 1)
	copy(q.Vec(0), randVec(rng, 4))
	top, _, err := ix.RowTopK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top[0]) != 0 {
		t.Fatalf("empty index returned %d entries", len(top[0]))
	}
	var ents []retrieval.Entry
	if _, err := ix.AboveTheta(q, 0.1, retrieval.Collect(&ents)); err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("empty index emitted %d entries", len(ents))
	}
	ix.Compact()
	if _, err := ix.AddProbe(randVec(rng, 4)); err != nil {
		t.Fatalf("refill after empty compact: %v", err)
	}
	if ix.LiveN() != 1 {
		t.Fatalf("LiveN %d after refill", ix.LiveN())
	}
}

// TestProbeIDOverflowRejected: the id space ends at MaxProbeID; explicit
// ids beyond it are rejected and AutoID never wraps negative.
func TestProbeIDOverflowRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := matrix.New(3, 4)
	for i := 0; i < 4; i++ {
		copy(p.Vec(i), randVec(rng, 3))
	}
	ix, err := NewIndex(p, Options{MinBucketSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AddProbeWithID(math.MaxInt32, randVec(rng, 3)); err == nil {
		t.Fatal("id MaxInt32 accepted")
	}
	if err := ix.AddProbeWithID(MaxProbeID, randVec(rng, 3)); err != nil {
		t.Fatalf("id MaxProbeID rejected: %v", err)
	}
	if _, err := ix.AddProbe(randVec(rng, 3)); err == nil {
		t.Fatal("AutoID add beyond MaxProbeID accepted")
	}
	for _, id := range ix.LiveIDs() {
		if id < 0 {
			t.Fatalf("negative live id %d", id)
		}
	}
	if _, err := NewIndexWithIDs(p, []int32{0, 1, 2, math.MaxInt32}, Options{}); err == nil {
		t.Fatal("NewIndexWithIDs accepted id MaxInt32")
	}
}
