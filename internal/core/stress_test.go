package core

import (
	"math/rand"
	"testing"

	"lemp/internal/data"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
)

// A profile-scale stress run (r = 50, realistic length skew) comparing
// LEMP-LI against Naive on both problems. Guarded by -short because it
// computes a full product for the oracle.
func TestStressProfileScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(201))
	q := data.GenerateVectors(rng, 400, 50, 1.5, 1, false)
	p := data.GenerateVectors(rng, 3000, 50, 4.4, 1, false)

	theta, lvl, ok := safeThetaAt(q, p, 2000)
	if !ok {
		t.Fatal("no usable threshold")
	}
	var want []retrieval.Entry
	naive.AboveTheta(q, p, theta, retrieval.Collect(&want))
	if len(want) != lvl {
		t.Fatalf("oracle %d entries, want %d", len(want), lvl)
	}
	ix, err := NewIndex(p, Options{}) // production defaults, wall-clock tuning
	if err != nil {
		t.Fatal(err)
	}
	got, st := collectAbove(t, ix, q, theta)
	if !retrieval.EqualSets(got, want) {
		t.Fatalf("Above-θ: %d entries, want %d", len(got), len(want))
	}
	// The pruning must be doing real work at this scale: candidates per
	// query far below n.
	if st.CandidatesPerQuery() > float64(p.N())/4 {
		t.Errorf("candidates/query %.0f of %d: pruning ineffective", st.CandidatesPerQuery(), p.N())
	}

	wantTop, _ := naive.RowTopK(q, p, 10)
	gotTop, topSt, err := ix.RowTopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	compareTopK(t, "stress", q, p, gotTop, wantTop)
	if topSt.CandidatesPerQuery() > float64(p.N())/2 {
		t.Errorf("top-k candidates/query %.0f of %d", topSt.CandidatesPerQuery(), p.N())
	}
}

// The same stress instance through every pure bucket algorithm, Above-θ
// only (the per-algorithm Row-Top-k equivalence is covered at smaller
// scale).
func TestStressAllAlgorithmsAboveTheta(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(202))
	q := data.GenerateVectors(rng, 150, 50, 1.5, 0.36, true)
	p := data.GenerateVectors(rng, 2000, 50, 5.5, 0.36, true)
	theta, _, ok := safeThetaAt(q, p, 500)
	if !ok {
		t.Fatal("no usable threshold")
	}
	var want []retrieval.Entry
	naive.AboveTheta(q, p, theta, retrieval.Collect(&want))
	for _, alg := range Algorithms() {
		if !alg.Exact() {
			continue
		}
		ix, err := NewIndex(p, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := collectAbove(t, ix, q, theta)
		if !retrieval.EqualSets(got, want) {
			t.Errorf("alg %v: %d entries, want %d", alg, len(got), len(want))
		}
	}
}

func TestBucketsIntrospection(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	q := genMatrix(rng, 40, 8, 1.0, 1, false, 0, 0)
	p := genMatrix(rng, 300, 8, 1.0, 1, false, 0, 0)
	ix, _ := NewIndex(p, testOptions(AlgLI))
	infos := ix.Buckets()
	if len(infos) != ix.NumBuckets() {
		t.Fatalf("%d infos, %d buckets", len(infos), ix.NumBuckets())
	}
	total := 0
	for i, bi := range infos {
		total += bi.Size
		if bi.MinLength > bi.MaxLength {
			t.Errorf("bucket %d: min %g > max %g", i, bi.MinLength, bi.MaxLength)
		}
		if i > 0 && bi.MaxLength > infos[i-1].MinLength+1e-12 {
			t.Errorf("bucket %d overlaps previous", i)
		}
		if bi.Tuned {
			t.Errorf("bucket %d tuned before any retrieval", i)
		}
	}
	if total != p.N() {
		t.Errorf("bucket sizes sum to %d, want %d", total, p.N())
	}
	theta, _ := safeTheta(t, q, p, 50)
	collectAbove(t, ix, q, theta)
	tuned := 0
	for _, bi := range ix.Buckets() {
		if bi.Tuned {
			tuned++
			if bi.Phi < 1 {
				t.Errorf("tuned bucket has φ=%d", bi.Phi)
			}
		}
	}
	if tuned != len(infos) {
		t.Errorf("%d of %d buckets tuned after retrieval", tuned, len(infos))
	}
}
