package core

import (
	"sort"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// Shard-placement support: the serving layer partitions a probe catalog
// across independent indexes, and the same geometry that drives the paper's
// Cauchy–Schwarz bucket bound (§3.2) lifts one level up — a shard whose
// live probes fit in a direction cone of known angular radius and maximum
// length admits a per-query upper bound on any inner product it can
// produce, so whole shards can be skipped before fan-out. This file exposes
// the two quantities a placement strategy needs from core: the per-probe
// scan-cost weight implied by the bucketization, and the direction cone of
// an index's live probe set.

// Cone is the direction cone enclosing an index's live probe set: every
// live probe with nonzero length lies within the cone's angular radius of
// the centroid, and no live probe is longer than MaxLen. For any query q,
// max over live probes p of qᵀp ≤ ‖q‖·MaxLen·max(0, cos(∠(q, centroid) −
// radius)) — the shard-level analogue of the bucket bound.
type Cone struct {
	// Centroid is the unit mean direction of the live probes with nonzero
	// length; nil when there is none (empty or all-zero shard), in which
	// case the cone admits no angular pruning.
	Centroid []float64
	// CosRadius is the cosine of the angular radius: the minimum
	// dot(direction, centroid) over live nonzero probes, padded down one
	// step so stored values stay conservative under floating-point
	// rounding. Meaningless when Centroid is nil.
	CosRadius float64
	// MaxLen is the largest live probe length (0 for an empty shard).
	MaxLen float64
}

// conePad absorbs rounding in the stored radius and in the per-query bound
// arithmetic; it only ever widens the cone.
const conePad = 1e-12

// ScanCostWeights estimates the per-probe scan cost the index built over p
// would incur: probe i's weight is the l_b of the bucket it would land in
// (bucket bound work scales with bucket length mass, not row count — a
// bucket's every member is bounded through its longest vector). The
// boundaries come from the exact bucketize logic, so cost-balanced
// placement partitions by the work the built indexes will actually do.
func ScanCostWeights(p *matrix.Matrix, opts Options) []float64 {
	opts = opts.withDefaults()
	n := p.N()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	lens := p.Lengths()
	sort.SliceStable(order, func(a, b int) bool { return lens[order[a]] > lens[order[b]] })
	sorted := make([]float64, n)
	for i, id := range order {
		sorted[i] = lens[id]
	}
	for _, sp := range bucketSpans(sorted, opts.ShrinkFactor, opts.MinBucketSize, bucketCapFor(opts, p.R())) {
		lb := sorted[sp[0]]
		for i := sp[0]; i < sp[1]; i++ {
			out[order[i]] = lb
		}
	}
	return out
}

// EstimatedCost sums the live probes' scan-cost weights under the current
// bucketization (including delta buckets): Σ over live entries of their
// bucket's l_b. It is the quantity cost-balanced placement equalizes across
// shards and the placement-skew gauge reports.
func (ix *Index) EstimatedCost() float64 {
	var cost float64
	for _, b := range ix.scan {
		live := b.size()
		if !b.delta && len(ix.dead) > 0 {
			for lid := 0; lid < b.size(); lid++ {
				if ix.deadSkip(b, lid) {
					live--
				}
			}
		}
		cost += float64(live) * b.lb
	}
	return cost
}

// DirectionCone computes the cone enclosing the index's live probe set.
// Zero-length probes are excluded from the centroid and radius — their
// inner product with any query is 0, which every cone bound (floored at 0)
// already covers. Cost is two passes over the live directions.
func (ix *Index) DirectionCone() *Cone {
	c := &Cone{CosRadius: 1}
	sum := make([]float64, ix.r)
	for _, b := range ix.scan {
		for lid := 0; lid < b.size(); lid++ {
			if ix.deadSkip(b, lid) {
				continue
			}
			if l := b.lens[lid]; l > c.MaxLen {
				c.MaxLen = l
			}
			if b.lens[lid] == 0 {
				continue
			}
			d := b.dir(lid)
			for f := range sum {
				sum[f] += d[f]
			}
		}
	}
	centroid := make([]float64, ix.r)
	if vecmath.Normalize(centroid, sum) == 0 {
		// No nonzero live probe, or directions cancel exactly: no usable
		// axis, the cone covers the whole sphere.
		return c
	}
	c.Centroid = centroid
	minDot := 1.0
	for _, b := range ix.scan {
		for lid := 0; lid < b.size(); lid++ {
			if ix.deadSkip(b, lid) || b.lens[lid] == 0 {
				continue
			}
			if d := vecmath.Dot(b.dir(lid), centroid); d < minDot {
				minDot = d
			}
		}
	}
	minDot -= conePad
	if minDot < -1 {
		minDot = -1
	}
	c.CosRadius = minDot
	return c
}

// LiveProbes materializes the live probe set — main probes minus tombstones
// plus overlay vectors — as a fresh matrix with its ids in ascending order,
// the gather step of a shard re-placement.
func (ix *Index) LiveProbes() (*matrix.Matrix, []int32) {
	ids := ix.LiveIDs()
	m := matrix.New(ix.r, len(ids))
	for i, id := range ids {
		if v, ok := ix.overlay[id]; ok {
			copy(m.Vec(i), v)
			continue
		}
		col, _ := ix.mainCol(id)
		copy(m.Vec(i), ix.probe.Vec(col))
	}
	return m, ids
}
