package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lemp/internal/lsh"
	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/vecmath"
)

// Index is a LEMP index over a probe matrix P: the preprocessing phase of
// Algorithm 1 (bucketization by length, normalization), with all per-bucket
// search indexes built lazily during retrieval. An Index is immutable after
// construction except for lazy index builds and tuning state; it supports
// internal parallelism (Options.Parallelism), but distinct retrieval calls
// must not run concurrently on the same Index.
type Index struct {
	opts      Options
	r         int
	n         int
	probe     *matrix.Matrix // the matrix the index was built over (for snapshots)
	buckets   []*bucket
	maxBucket int
	prepTime  time.Duration

	// pretuned freezes per-call tuning: retrieval reuses the stored
	// per-bucket (t_b, φ_b) instead of re-fitting them on every call. Set
	// by the Pretune methods and restored by FromState.
	pretuned bool

	lshOnce sync.Once
	hasher  *lsh.Hasher
	table   *lsh.Table

	// Lazy original-id → (bucket, lid) lookup for RowTopKApprox.
	probeOnce sync.Once
	probeLocs []probeLoc
}

// NewIndex preprocesses the probe matrix into a LEMP index. The matrix must
// not be mutated while the index is in use (directions are copied, but the
// cover-tree bucket algorithm rebuilds raw vectors from them).
func NewIndex(p *matrix.Matrix, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	maxSize := 0
	if opts.CacheBytes > 0 {
		maxSize = opts.CacheBytes / bucketBytes(p.R())
		if maxSize < opts.MinBucketSize {
			maxSize = opts.MinBucketSize
		}
	}
	ix := &Index{opts: opts, r: p.R(), n: p.N(), probe: p}
	ix.buckets = bucketize(p, opts.ShrinkFactor, opts.MinBucketSize, maxSize)
	for _, b := range ix.buckets {
		if b.size() > ix.maxBucket {
			ix.maxBucket = b.size()
		}
	}
	ix.prepTime = time.Since(start)
	return ix, nil
}

// R returns the vector dimension.
func (ix *Index) R() int { return ix.r }

// N returns the number of indexed probe vectors.
func (ix *Index) N() int { return ix.n }

// NumBuckets returns the number of probe buckets.
func (ix *Index) NumBuckets() int { return len(ix.buckets) }

// BucketSizes returns the size of each bucket in decreasing-length order.
func (ix *Index) BucketSizes() []int {
	out := make([]int, len(ix.buckets))
	for i, b := range ix.buckets {
		out[i] = b.size()
	}
	return out
}

// BucketInfo describes one probe bucket for introspection: its size and
// length range, whether any lazy index has been built, and — after a
// retrieval run with a tuning algorithm — the selected per-bucket
// parameters t_b and φ_b (§4.4).
type BucketInfo struct {
	Size      int
	MaxLength float64 // l_b, the length of the longest vector
	MinLength float64
	Indexed   bool    // a sorted-list/tree/L2AP/signature index exists
	Tuned     bool    // t_b and φ_b were fitted by the last tuning pass
	TB        float64 // switch threshold: LENGTH below, coordinate method above
	Phi       int     // focus-set size φ_b
}

// Buckets reports the current per-bucket state in decreasing-length order.
func (ix *Index) Buckets() []BucketInfo {
	out := make([]BucketInfo, len(ix.buckets))
	for i, b := range ix.buckets {
		out[i] = BucketInfo{
			Size:      b.size(),
			MaxLength: b.lb,
			MinLength: b.lens[b.size()-1],
			Indexed:   b.indexed(),
			Tuned:     b.tuned,
			TB:        b.tb,
			Phi:       b.phi,
		}
	}
	return out
}

// PrepTime returns the wall-clock time of the preprocessing phase.
func (ix *Index) PrepTime() time.Duration { return ix.prepTime }

// Options returns the effective (defaulted) options.
func (ix *Index) Options() Options { return ix.opts }

// ensureLSH lazily creates the shared BLSH hyperplanes and posterior table.
func (ix *Index) ensureLSH() (*lsh.Hasher, *lsh.Table) {
	ix.lshOnce.Do(func() {
		rng := rand.New(rand.NewSource(ix.opts.Seed))
		ix.hasher = lsh.NewHasher(ix.r, ix.opts.SignatureBits, rng)
		ix.table = lsh.NewTable(ix.opts.SignatureBits, ix.opts.Epsilon)
	})
	return ix.hasher, ix.table
}

// defaultPhi is the focus-set size used before tuning has produced a
// per-bucket φ_b.
func (ix *Index) defaultPhi() int {
	phi := 3
	if ix.opts.MaxPhi < phi {
		phi = ix.opts.MaxPhi
	}
	if ix.r < phi {
		phi = ix.r
	}
	if phi < 1 {
		phi = 1
	}
	return phi
}

// resolve maps the configured algorithm to the concrete method for one
// (bucket, θ_b) pair: mixed algorithms switch on the tuned t_b, and INCR
// with φ_b = 1 degrades to COORD (Appendix A).
func (ix *Index) resolve(b *bucket, thetaB float64) (Algorithm, int) {
	alg := ix.opts.Algorithm
	phi := ix.opts.Phi
	if phi == 0 {
		if b.tuned {
			phi = b.phi
		} else {
			phi = ix.defaultPhi()
		}
	}
	if phi > ix.r && ix.r > 0 {
		phi = ix.r
	}
	tb := defaultTB
	if b.tuned {
		tb = b.tb
	}
	switch alg {
	case AlgLC:
		if thetaB < tb {
			return AlgL, phi
		}
		return AlgC, phi
	case AlgLI:
		if thetaB < tb {
			return AlgL, phi
		}
		if phi == 1 {
			return AlgC, phi
		}
		return AlgI, phi
	case AlgI:
		if phi == 1 {
			return AlgC, phi
		}
	}
	return alg, phi
}

// defaultTB is the LENGTH-vs-coordinate switch used for buckets the tuning
// sample never reached (their θ_b was above 1 for every sampled query, so
// at retrieval time they are almost always pruned or barely scanned).
const defaultTB = 0.9

// gather runs the resolved bucket algorithm for one (query, bucket) pair,
// leaving the candidate local ids in s.cand. qi is the query's index in the
// sorted query set, qdir its unit direction, qlen its length (1 for
// Row-Top-k), theta the global threshold (-Inf while a Row-Top-k heap is
// not yet full), thetaB the local threshold, and l2T0 the index-time lower
// bound for L2AP.
func (ix *Index) gather(b *bucket, alg Algorithm, phi int, qi int32, qdir []float64, qlen, theta, thetaB, l2T0 float64, s *scratch) {
	switch alg {
	case AlgL:
		runLength(b, theta, qlen, s)
	case AlgC:
		runCoord(b, qdir, thetaB, phi, s)
	case AlgI:
		runIncr(b, qdir, qlen, theta, thetaB, phi, s)
	case AlgTA:
		runBucketTA(b, qdir, thetaB, s)
	case AlgTree:
		runBucketTree(b, qdir, qlen, theta, s)
	case AlgL2AP:
		runBucketL2AP(b, qdir, thetaB, l2T0, s)
	case AlgBLSH:
		h, tbl := ix.ensureLSH()
		runBucketBLSH(b, h, tbl, qi, qdir, qlen, theta, thetaB, s)
	default:
		panic(fmt.Sprintf("core: unresolved algorithm %v", alg))
	}
}

// verifyAbove computes exact inner products for the candidates of one
// (query, bucket) pair and emits entries passing θ (line 16 of Algorithm 1).
func verifyAbove(b *bucket, qdir []float64, qlen, theta float64, origID int32, s *scratch, emit retrieval.Sink, st *Stats) {
	st.Candidates += int64(len(s.cand))
	s.work += int64(len(s.cand)) * int64(b.r)
	for _, lid := range s.cand {
		v := vecmath.Dot(qdir, b.dir(int(lid))) * qlen * b.lens[lid]
		if v >= theta {
			st.Results++
			emit(retrieval.Entry{Query: int(origID), Probe: int(b.ids[lid]), Value: v})
		}
	}
}

// countIndexedBuckets fills the lazy-index statistic after a run.
func (ix *Index) countIndexedBuckets(st *Stats) {
	st.IndexedBuckets = 0
	for _, b := range ix.buckets {
		if b.indexed() {
			st.IndexedBuckets++
		}
	}
}
