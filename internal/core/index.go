package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lemp/internal/lsh"
	"lemp/internal/matrix"
	"lemp/internal/quant"
	"lemp/internal/retrieval"
)

// Index is a LEMP index over a probe matrix P: the preprocessing phase of
// Algorithm 1 (bucketization by length, normalization), with all per-bucket
// search indexes built lazily during retrieval, plus the delta layer of
// delta.go that absorbs probe mutations between re-bucketizations. It
// supports internal parallelism (Options.Parallelism), but distinct
// retrieval calls — and mutation calls, see Apply — must not run
// concurrently on the same Index.
type Index struct {
	opts      Options
	r         int
	n         int            // main probe columns (tombstoned ones included)
	probe     *matrix.Matrix // the matrix the index was built over (for snapshots)
	buckets   []*bucket      // main buckets, decreasing l_b
	maxBucket int            // largest bucket in scan (sizes worker scratch)
	prepTime  time.Duration

	// id uniquely identifies this Index instance (copy-on-write derivations
	// get fresh ids); layout counts bucketization changes (delta rebuilds,
	// Compact). Together with the epoch they version the index for
	// TuningCache keys: a cached parameter set can never be applied to an
	// index whose buckets have changed shape.
	id     uint64
	layout uint64

	// External probe ids (delta.go): main column col has id idBase+col, or
	// probeIDs[col] when the live id set is no longer contiguous (after a
	// Compact of a mutated index). mainLoc inverts probeIDs for mutation
	// routing.
	idBase   int32
	probeIDs []int32
	mainLoc  map[int32]int32

	// Delta layer (delta.go): tombstoned main ids, live overlay vectors,
	// the overlay's bucketization, and the merged scan order. epoch counts
	// applied mutation batches; nextID feeds AutoID adds.
	epoch   uint64
	nextID  int32
	dead    map[int32]struct{}
	overlay map[int32][]float64
	delta   []*bucket
	scan    []*bucket // main+delta merged by decreasing l_b; == buckets when no delta

	// pretuned freezes per-call tuning: retrieval reuses the stored
	// per-bucket (t_b, φ_b) instead of re-fitting them on every call. Set
	// by the Pretune methods and restored by FromState. tuneProb and
	// tuneSample retain what Pretune fitted, so Compact can re-freeze.
	pretuned   bool
	tuneProb   any
	tuneSample *matrix.Matrix
	// pretunedOverlay is the overlay size at the last delta-bucket pretune
	// (delta.go): the overlay must grow 1.5× past it before another fit
	// runs, amortizing per-batch tuning cost under churn.
	pretunedOverlay int

	lshOnce sync.Once
	hasher  *lsh.Hasher
	table   *lsh.Table

	// scratchPool recycles per-worker scratch space across retrieval calls
	// (see getScratch). Copy-on-write derivations start with an empty pool;
	// stale sizings are rejected at Get time, so the pool needs no explicit
	// invalidation when the bucket layout changes.
	scratchPool sync.Pool

	// Lazy external-id → (scan bucket, lid) lookup for RowTopKApprox,
	// invalidated by mutations.
	probeMu   sync.Mutex
	probeLocs map[int32]probeLoc
}

// NewIndex preprocesses the probe matrix into a LEMP index. The matrix must
// not be mutated while the index is in use (directions are copied, but the
// cover-tree bucket algorithm rebuilds raw vectors from them). Probes are
// assigned the external ids 0..n-1.
func NewIndex(p *matrix.Matrix, opts Options) (*Index, error) {
	return NewIndexWithIDs(p, nil, opts)
}

// NewIndexWithIDs is NewIndex with caller-chosen external probe ids:
// ids[col] names probe column col in every result and mutation. ids must be
// unique and non-negative; nil assigns 0..n-1. Shards of a partitioned
// probe set use this to index directly in the global id space.
func NewIndexWithIDs(p *matrix.Matrix, ids []int32, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if ids != nil {
		if len(ids) != p.N() {
			return nil, fmt.Errorf("core: %d probe ids for %d probes", len(ids), p.N())
		}
		seen := make(map[int32]struct{}, len(ids))
		for _, id := range ids {
			if id < 0 || id > MaxProbeID {
				return nil, fmt.Errorf("core: probe id %d out of range [0, %d]", id, int32(MaxProbeID))
			}
			if _, dup := seen[id]; dup {
				return nil, fmt.Errorf("core: duplicate probe id %d", id)
			}
			seen[id] = struct{}{}
		}
	}
	start := time.Now()
	ix := &Index{opts: opts, r: p.R(), n: p.N(), probe: p, id: indexSeq.Add(1)}
	ix.setIDs(ids)
	ix.buckets = bucketize(p, ix.explicitIDs(), opts.ShrinkFactor, opts.MinBucketSize, ix.bucketCap())
	ix.attachSidecars(ix.buckets)
	ix.refreshScan()
	ix.nextID = maxIDPlusOne(ix)
	ix.prepTime = time.Since(start)
	return ix, nil
}

// indexSeq issues unique Index instance ids (TuningCache key component).
var indexSeq atomic.Uint64

// maxIDPlusOne computes the smallest id larger than every assigned id.
func maxIDPlusOne(ix *Index) int32 {
	if ix.n == 0 {
		return ix.idBase
	}
	max := int32(-1)
	for col := 0; col < ix.n; col++ {
		if id := ix.extID(col); id > max {
			max = id
		}
	}
	return max + 1
}

// R returns the vector dimension.
func (ix *Index) R() int { return ix.r }

// N returns the number of live probe vectors (main probes minus tombstones
// plus overlay entries).
func (ix *Index) N() int { return ix.LiveN() }

// NumBuckets returns the number of probe buckets (main and delta).
func (ix *Index) NumBuckets() int { return len(ix.scan) }

// BucketSizes returns the size of each scanned bucket in decreasing-length
// order.
func (ix *Index) BucketSizes() []int {
	out := make([]int, len(ix.scan))
	for i, b := range ix.scan {
		out[i] = b.size()
	}
	return out
}

// BucketInfo describes one probe bucket for introspection: its size and
// length range, whether any lazy index has been built, and — after a
// retrieval run with a tuning algorithm — the selected per-bucket
// parameters t_b and φ_b (§4.4).
type BucketInfo struct {
	Size      int
	MaxLength float64 // l_b, the length of the longest vector
	MinLength float64
	Indexed   bool    // a sorted-list/tree/L2AP/signature index exists
	Tuned     bool    // t_b and φ_b were fitted by the last tuning pass
	TB        float64 // switch threshold: LENGTH below, coordinate method above
	Phi       int     // focus-set size φ_b
	Delta     bool    // an overlay (delta-layer) bucket
}

// Buckets reports the current per-bucket state in decreasing-length order,
// delta buckets included.
func (ix *Index) Buckets() []BucketInfo {
	out := make([]BucketInfo, len(ix.scan))
	for i, b := range ix.scan {
		out[i] = BucketInfo{
			Size:      b.size(),
			MaxLength: b.lb,
			MinLength: b.lens[b.size()-1],
			Indexed:   b.indexed(),
			Tuned:     b.tuned,
			TB:        b.tb,
			Phi:       b.phi,
			Delta:     b.delta,
		}
	}
	return out
}

// PrepTime returns the wall-clock time of the preprocessing phase.
func (ix *Index) PrepTime() time.Duration { return ix.prepTime }

// Options returns the effective (defaulted) options.
func (ix *Index) Options() Options { return ix.opts }

// ensureLSH lazily creates the shared BLSH hyperplanes and posterior table.
func (ix *Index) ensureLSH() (*lsh.Hasher, *lsh.Table) {
	ix.lshOnce.Do(func() {
		rng := rand.New(rand.NewSource(ix.opts.Seed))
		ix.hasher = lsh.NewHasher(ix.r, ix.opts.SignatureBits, rng)
		ix.table = lsh.NewTable(ix.opts.SignatureBits, ix.opts.Epsilon)
	})
	return ix.hasher, ix.table
}

// defaultPhi is the focus-set size used before tuning has produced a
// per-bucket φ_b, under the index's build-time options.
func (ix *Index) defaultPhi() int { return ix.defaultPhiFor(ix.opts) }

// defaultPhiFor is defaultPhi under a call's effective options.
func (ix *Index) defaultPhiFor(o Options) int {
	phi := 3
	if o.MaxPhi < phi {
		phi = o.MaxPhi
	}
	if ix.r < phi {
		phi = ix.r
	}
	if phi < 1 {
		phi = 1
	}
	return phi
}

// resolve maps the call's effective algorithm to the concrete method for
// one (bucket, θ_b) pair: mixed algorithms switch on the tuned t_b, and
// INCR with φ_b = 1 degrades to COORD (Appendix A).
func (ix *Index) resolve(o Options, b *bucket, thetaB float64) (Algorithm, int) {
	alg := o.Algorithm
	phi := o.Phi
	if phi == 0 {
		if b.tuned {
			phi = b.phi
		} else {
			phi = ix.defaultPhiFor(o)
		}
	}
	if phi > ix.r && ix.r > 0 {
		phi = ix.r
	}
	tb := defaultTB
	if b.tuned {
		tb = b.tb
	}
	switch alg {
	case AlgLC:
		if thetaB < tb {
			return AlgL, phi
		}
		return AlgC, phi
	case AlgLI:
		if thetaB < tb {
			return AlgL, phi
		}
		if phi == 1 {
			return AlgC, phi
		}
		return AlgI, phi
	case AlgI:
		if phi == 1 {
			return AlgC, phi
		}
	}
	return alg, phi
}

// defaultTB is the LENGTH-vs-coordinate switch used for buckets the tuning
// sample never reached (their θ_b was above 1 for every sampled query, so
// at retrieval time they are almost always pruned or barely scanned).
const defaultTB = 0.9

// gather runs the resolved bucket algorithm for one (query, bucket) pair,
// leaving the candidate local ids in s.cand. qi is the query's index in the
// sorted query set, qdir its unit direction, qlen its length (1 for
// Row-Top-k), theta the global threshold (-Inf while a Row-Top-k heap is
// not yet full), thetaB the local threshold, and l2T0 the index-time lower
// bound for L2AP.
func (ix *Index) gather(b *bucket, alg Algorithm, phi int, qi int32, qdir []float64, qlen, theta, thetaB, l2T0 float64, s *scratch) {
	switch alg {
	case AlgL:
		runLength(b, theta, qlen, s)
	case AlgC:
		runCoord(b, qdir, thetaB, phi, s)
	case AlgI:
		runIncr(b, qdir, qlen, theta, thetaB, phi, s)
	case AlgTA:
		runBucketTA(b, qdir, thetaB, s)
	case AlgTree:
		runBucketTree(b, qdir, qlen, theta, s)
	case AlgL2AP:
		runBucketL2AP(b, qdir, thetaB, l2T0, s)
	case AlgBLSH:
		h, tbl := ix.ensureLSH()
		runBucketBLSH(b, h, tbl, qi, qdir, qlen, theta, thetaB, s)
	default:
		panic(fmt.Sprintf("core: unresolved algorithm %v", alg))
	}
}

// verifyAbove computes exact inner products for the candidates of one
// (query, bucket) pair and emits entries passing θ (line 16 of Algorithm 1).
// Tombstoned main-bucket entries are dropped before the blocked dot-product
// pass (verify.go), then the quantized screen (when a sidecar is active)
// discards candidates that provably cannot reach θ; the θ filter runs over
// the block results. Each emitted value is (q̄ᵀp̄)·‖q‖·‖p‖, multiplied in the
// same order as the scalar verifier, so results are byte-identical to the
// per-candidate Dot path.
func (ix *Index) verifyAbove(b *bucket, qi int32, qdir []float64, qlen, theta float64, origID int32, s *scratch, emit retrieval.Sink, st *Stats) {
	st.Candidates += int64(len(s.cand))
	s.work += int64(len(s.cand)) * int64(b.r)
	ix.compactLiveCands(b, s)
	ix.screenCands(b, s, qi, qdir, qlen, theta, false, st)
	verifyDots(b, qdir, s, st)
	for i, lid := range s.cand {
		v := s.vals[i] * qlen * b.lens[lid]
		if v >= theta {
			st.Results++
			emit(retrieval.Entry{Query: int(origID), Probe: int(b.ids[lid]), Value: v})
		}
	}
}

// attachSidecars quantizes the directions of freshly bucketized buckets
// into their int8 screening sidecars (Options.Quantize). Buckets that
// already carry one — restored from a snapshot, say — are left alone.
// Runs before the buckets are published to any retrieval call, so no
// synchronization is needed. Dimensions outside [1, quant.MaxDim] leave
// every sidecar nil, silently disabling screening.
func (ix *Index) attachSidecars(buckets []*bucket) {
	if !ix.opts.Quantize || ix.r < 1 || ix.r > quant.MaxDim {
		return
	}
	for _, b := range buckets {
		if b.q8 == nil {
			b.q8 = quant.QuantizeRows(b.dirs, b.r)
		}
	}
}

// SidecarBytes returns the memory held by the quantized screening sidecars
// across all scanned buckets (0 when Options.Quantize is off).
func (ix *Index) SidecarBytes() int {
	total := 0
	for _, b := range ix.scan {
		total += b.q8.Bytes()
	}
	return total
}

// countIndexedBuckets fills the lazy-index statistic after a run.
func (ix *Index) countIndexedBuckets(st *Stats) {
	st.IndexedBuckets = 0
	for _, b := range ix.scan {
		if b.indexed() {
			st.IndexedBuckets++
		}
	}
}
