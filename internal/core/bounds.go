package core

import "math"

// feasibleRegion returns the bounds [L_f, U_f] on p̄_f outside of which a
// probe direction cannot reach cosine similarity θ_b with the query (§4.2,
// "Bounding Coordinates"): solving
//
//	θ_b ≤ q̄_f·p̄_f + √(1−q̄_f²)·√(1−p̄_f²)
//
// for p̄_f gives the roots L′/U′; the piecewise cases reattach the interval
// where q̄_f·p̄_f ≥ θ_b alone suffices. For θ_b ≤ 0 pruning is impossible
// in general and the full range [-1,1] is returned (this occurs only in
// Row-Top-k runs whose running threshold is still negative).
func feasibleRegion(qf, thetaB float64) (lo, hi float64) {
	if thetaB <= 0 {
		return -1, 1
	}
	if thetaB > 1 {
		// The caller prunes whole buckets with θ_b > 1 before asking
		// for coordinate bounds; an empty region keeps this safe
		// anyway.
		return 1, -1
	}
	root := math.Sqrt(math.Max(0, (1-thetaB*thetaB)*(1-qf*qf)))
	l := qf*thetaB - root
	u := qf*thetaB + root
	lo, hi = l, u
	// Reattach the {q̄_f·p̄_f ≥ θ_b} interval when it is non-empty: for
	// q̄_f > 0 it is [θ_b/q̄_f, 1] (reaching 1 exactly when the quadratic
	// root U′ passes θ_b/q̄_f), symmetrically for q̄_f < 0.
	if qf > 0 && !(u < thetaB/qf) {
		hi = 1
	}
	if qf < 0 && !(l > thetaB/qf) {
		lo = -1
	}
	return lo, hi
}
