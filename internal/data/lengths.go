package data

import "math"

// Length assignment. Real factorization lengths are heavy-tailed; a
// log-normal matches well. Sampling a heavy log-normal directly makes the
// empirical CoV extremely noisy (a single tail draw can double it), so we
// assign *stratified quantile* lengths instead: the i-th length is the
// ((i+0.5)/n)-quantile of a log-normal whose σ is calibrated by binary
// search so the finite sample's CoV equals the target exactly. The lengths
// are then randomly permuted across vectors.

// lengthsForCoV returns n positive lengths with mean 1 and coefficient of
// variation cov (cov = 0 yields all-ones). The result is deterministic and
// sorted ascending; callers shuffle.
func lengthsForCoV(n int, cov float64) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if cov <= 0 || n == 1 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = invNormalCDF((float64(i) + 0.5) / float64(n))
	}
	// Empirical CoV of exp(σz) grows monotonically in σ.
	lo, hi := 0.0, 12.0
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if quantileCoV(z, mid) < cov {
			lo = mid
		} else {
			hi = mid
		}
	}
	sigma := (lo + hi) / 2
	var mean float64
	for i, zi := range z {
		out[i] = math.Exp(sigma * zi)
		mean += out[i]
	}
	mean /= float64(n)
	for i := range out {
		out[i] /= mean
	}
	return out
}

// quantileCoV returns the CoV of exp(σz) over the given quantile grid.
func quantileCoV(z []float64, sigma float64) float64 {
	var sum, sumSq float64
	for _, zi := range z {
		x := math.Exp(sigma * zi)
		sum += x
		sumSq += x * x
	}
	n := float64(len(z))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance <= 0 {
		return 0
	}
	return math.Sqrt(variance) / mean
}

// invNormalCDF is Acklam's rational approximation of the standard normal
// quantile function (relative error < 1.15e-9 — far below what length
// shaping needs). p must lie in (0,1).
func invNormalCDF(p float64) float64 {
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p <= 0 || p >= 1:
		panic("data: invNormalCDF requires p in (0,1)")
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}
