package data

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/matrix"
)

func TestProfilesMatchTable1Statistics(t *testing.T) {
	// Generation must reproduce the paper's Table 1 statistics: CoV of
	// lengths, sparsity, sign structure and r=50. Tolerances are loose
	// because the profiles are scaled down ~65×.
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			q, pr := p.Generate()
			if q.N() != p.M || pr.N() != p.N || q.R() != 50 {
				t.Fatalf("dims: %dx%d and %dx%d", q.R(), q.N(), pr.R(), pr.N())
			}
			sq := matrix.ComputeStats(q)
			sp := matrix.ComputeStats(pr)
			checkCoV(t, "Q", sq.LengthCoV, p.CoVQ)
			checkCoV(t, "P", sp.LengthCoV, p.CoVP)
			wantNZ := p.Sparsity
			if math.Abs(sp.NonZero-wantNZ) > 0.05 {
				t.Errorf("P nonzero fraction %.3f, want %.3f", sp.NonZero, wantNZ)
			}
			if p.NonNeg {
				for _, x := range pr.Data() {
					if x < 0 {
						t.Fatalf("negative entry in non-negative profile")
					}
				}
			}
		})
	}
}

func checkCoV(t *testing.T, side string, got, want float64) {
	t.Helper()
	// Stratified quantile lengths hit the target CoV by construction.
	if got < want*0.98 || got > want*1.02 {
		t.Errorf("%s length CoV %.3f, want ≈%.3f", side, got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	q1, p1 := IESVD.Generate()
	q2, p2 := IESVD.Generate()
	for i, x := range q1.Data() {
		if q2.Data()[i] != x {
			t.Fatal("query generation not deterministic")
		}
	}
	for i, x := range p1.Data() {
		if p2.Data()[i] != x {
			t.Fatal("probe generation not deterministic")
		}
	}
}

func TestTranspose(t *testing.T) {
	tr := IENMF.Transpose()
	if tr.Name != "IE-NMFT" {
		t.Errorf("name %q", tr.Name)
	}
	if tr.M != IENMF.N || tr.N != IENMF.M {
		t.Errorf("dims not swapped: %d %d", tr.M, tr.N)
	}
	if tr.CoVQ != IENMF.CoVP || tr.CoVP != IENMF.CoVQ {
		t.Errorf("CoVs not swapped")
	}
}

func TestScale(t *testing.T) {
	s := KDD.Scale(0.1)
	if s.M != KDD.M/10 || s.N != KDD.N/10 {
		t.Errorf("scaled dims %d %d", s.M, s.N)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"IE-NMF", "IE-SVD", "Netflix", "KDD", "IE-NMFT", "IE-SVDT"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q) returned %q", name, p.Name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
}

func TestGenerateVectorsUnitMeanLength(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := GenerateVectors(rng, 4000, 10, 1.0, 1, false)
	s := matrix.ComputeStats(m)
	if s.LengthMean < 0.85 || s.LengthMean > 1.15 {
		t.Errorf("mean length %.3f, want ≈1", s.LengthMean)
	}
	// No zero vectors are ever generated.
	if s.MinLength <= 0 {
		t.Errorf("min length %g", s.MinLength)
	}
}

func TestGenerateVectorsPanicsOnBadSparsity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GenerateVectors(rand.New(rand.NewSource(1)), 1, 2, 0, 0, false)
}

func TestGenerateRatings(t *testing.T) {
	cfg := RatingsConfig{Users: 50, Items: 40, Rank: 4, Density: 0.3, Noise: 0.1, Seed: 3}
	ratings, users, items := GenerateRatings(cfg)
	if users.N() != 50 || items.N() != 40 {
		t.Fatalf("factor dims %d %d", users.N(), items.N())
	}
	if len(ratings) == 0 {
		t.Fatal("no ratings generated")
	}
	density := float64(len(ratings)) / float64(50*40)
	if density < 0.2 || density > 0.4 {
		t.Errorf("observed density %.3f, want ≈0.3", density)
	}
	for _, r := range ratings {
		if r.User < 0 || r.User >= 50 || r.Item < 0 || r.Item >= 40 {
			t.Fatalf("rating index out of range: %+v", r)
		}
		if r.Value < 1 || r.Value > 5 {
			t.Fatalf("rating value %g outside default [1,5]", r.Value)
		}
	}
}
