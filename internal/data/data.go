// Package data generates synthetic factor matrices calibrated to the
// dataset statistics published in the paper (Table 1).
//
// The paper evaluates on factorizations of Netflix, KDD-Cup'11 (Yahoo!
// Music) and two open-information-extraction matrices (SVD and NMF
// factorizations of a New York Times argument–pattern matrix). Those
// datasets are not redistributable, so this package synthesizes matrices
// that reproduce the properties the algorithms are actually sensitive to:
//
//   - dimensionality r = 50,
//   - the coefficient of variation (CoV) of the vector-length distribution
//     (the paper's length skew, which drives LEMP's bucket pruning),
//   - sparsity (fraction of non-zero entries; 36.2 % for IE-NMF),
//   - sign structure (non-negative entries for NMF factors).
//
// Lengths are drawn from a log-normal distribution, whose CoV is
// √(exp(σ²)−1); this matches the heavy right tail of real factorization
// length distributions. Directions are uniform on the unit sphere for dense
// profiles and sparse non-negative for the NMF profile.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// Profile describes one synthetic dataset: the statistics of its query and
// probe factor matrices. Sizes are scaled-down defaults (the paper uses
// millions of vectors; a laptop-scale reproduction uses tens of thousands —
// override M and N to scale up).
type Profile struct {
	Name     string
	R        int     // vector dimension (rank)
	M        int     // number of query vectors (columns of Q)
	N        int     // number of probe vectors (columns of P)
	CoVQ     float64 // length CoV of query vectors (paper Table 1)
	CoVP     float64 // length CoV of probe vectors (paper Table 1)
	Sparsity float64 // fraction of non-zero coordinates, in (0,1]
	NonNeg   bool    // non-negative entries (NMF-style factors)
	Seed     int64   // base RNG seed; derived streams for Q and P
}

// The four dataset profiles of the paper's Table 1, scaled down by roughly
// 65× in vector count (dimensions, CoVs, sparsity and sign structure are the
// paper's values).
var (
	// IENMF mimics the NMF factorization of the NYT argument–pattern
	// matrix: very high length skew, sparse, non-negative.
	IENMF = Profile{Name: "IE-NMF", R: 50, M: 11800, N: 2000, CoVQ: 1.56, CoVP: 5.53, Sparsity: 0.362, NonNeg: true, Seed: 101}
	// IESVD mimics the SVD factorization of the same matrix: high length
	// skew, dense, mixed sign.
	IESVD = Profile{Name: "IE-SVD", R: 50, M: 11800, N: 2000, CoVQ: 1.51, CoVP: 4.44, Sparsity: 1, NonNeg: false, Seed: 102}
	// Netflix mimics a plain DSGD++ factorization of the Netflix ratings
	// matrix: low length skew, dense.
	Netflix = Profile{Name: "Netflix", R: 50, M: 7400, N: 2600, CoVQ: 0.43, CoVP: 0.72, Sparsity: 1, NonNeg: false, Seed: 103}
	// KDD mimics the Yahoo! Music factorization: the largest dataset,
	// lowest length skew.
	KDD = Profile{Name: "KDD", R: 50, M: 10000, N: 6200, CoVQ: 0.38, CoVP: 0.40, Sparsity: 1, NonNeg: false, Seed: 104}

	// Smoke is not a paper dataset: it is a fixture sized for server smoke
	// tests and CI — indexes in milliseconds yet skewed enough to exercise
	// bucket pruning and keep several shards non-trivial.
	Smoke = Profile{Name: "Smoke", R: 16, M: 256, N: 800, CoVQ: 0.8, CoVP: 1.2, Sparsity: 1, NonNeg: false, Seed: 105}
)

// Profiles lists the four paper datasets in Table 1 order.
func Profiles() []Profile { return []Profile{IENMF, IESVD, Netflix, KDD} }

// ByName returns the profile with the given name (case-sensitive, matching
// the Name field, with "T" suffix selecting the transpose, e.g. "IE-NMFT").
func ByName(name string) (Profile, error) {
	for _, p := range append(Profiles(), Smoke) {
		if p.Name == name {
			return p, nil
		}
		if p.Name+"T" == name {
			return p.Transpose(), nil
		}
	}
	return Profile{}, fmt.Errorf("data: unknown profile %q", name)
}

// Transpose returns the profile with query and probe roles swapped, the
// paper's IE-SVDᵀ / IE-NMFᵀ construction for the Row-Top-k experiments.
func (p Profile) Transpose() Profile {
	p.Name += "T"
	p.M, p.N = p.N, p.M
	p.CoVQ, p.CoVP = p.CoVP, p.CoVQ
	return p
}

// Scale returns a copy with M and N multiplied by f (rounded), for scaling
// experiments up or down.
func (p Profile) Scale(f float64) Profile {
	p.M = int(math.Round(float64(p.M) * f))
	p.N = int(math.Round(float64(p.N) * f))
	return p
}

// Generate materializes the query and probe matrices of the profile.
// Generation is deterministic in the profile (including Seed).
func (p Profile) Generate() (q, pr *matrix.Matrix) {
	q = GenerateVectors(rand.New(rand.NewSource(p.Seed)), p.M, p.R, p.CoVQ, p.Sparsity, p.NonNeg)
	pr = GenerateVectors(rand.New(rand.NewSource(p.Seed+1<<32)), p.N, p.R, p.CoVP, p.Sparsity, p.NonNeg)
	return q, pr
}

// GenerateVectors returns n vectors of dimension r whose lengths follow a
// log-normal shape with unit mean and *exactly* the given coefficient of
// variation (stratified quantile lengths, randomly permuted — see
// lengths.go), and whose directions are uniform on the sphere (or sparse
// non-negative when sparsity < 1 or nonneg is set). cov = 0 yields unit
// lengths.
func GenerateVectors(rng *rand.Rand, n, r int, cov, sparsity float64, nonneg bool) *matrix.Matrix {
	if sparsity <= 0 || sparsity > 1 {
		panic(fmt.Sprintf("data: sparsity %v out of (0,1]", sparsity))
	}
	m := matrix.New(r, n)
	lengths := lengthsForCoV(n, cov)
	rng.Shuffle(n, func(i, j int) { lengths[i], lengths[j] = lengths[j], lengths[i] })
	for i := 0; i < n; i++ {
		v := m.Vec(i)
		fillDirection(rng, v, sparsity, nonneg)
		vecmath.Scale(v, v, lengths[i])
	}
	return m
}

// fillDirection writes a unit vector into v: Gaussian directions for dense
// signed data, folded-Gaussian with Bernoulli sparsity mask otherwise. At
// least one coordinate is forced non-zero so the direction is well defined.
func fillDirection(rng *rand.Rand, v []float64, sparsity float64, nonneg bool) {
	for {
		nz := 0
		for i := range v {
			if sparsity < 1 && rng.Float64() >= sparsity {
				v[i] = 0
				continue
			}
			x := rng.NormFloat64()
			if nonneg && x < 0 {
				x = -x
			}
			v[i] = x
			nz++
		}
		if nz == 0 {
			continue // resample: zero vector has no direction
		}
		if vecmath.Normalize(v, v) > 0 {
			return
		}
	}
}
