package data

import (
	"math/rand"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// Rating is one observed (user, item, value) triple of a feedback matrix,
// the input of the matrix-factorization substrate in internal/mf.
type Rating struct {
	User  int
	Item  int
	Value float64
}

// RatingsConfig controls synthetic feedback-matrix generation for the
// recommender example: a planted low-rank model plus observation noise,
// sampled at a given density, with values clipped to [Min,Max] (1–5 stars by
// default).
type RatingsConfig struct {
	Users   int
	Items   int
	Rank    int     // rank of the planted model
	Density float64 // fraction of (user,item) cells observed
	Noise   float64 // stddev of additive Gaussian noise
	Min     float64 // minimum rating value (clip)
	Max     float64 // maximum rating value (clip)
	Seed    int64
}

// GenerateRatings samples a feedback matrix from a planted low-rank model:
// true user/item factors are Gaussian, the observed value is their inner
// product mapped into the rating scale plus noise. It returns the observed
// triples and the planted factors (useful for validating MF recovery).
func GenerateRatings(cfg RatingsConfig) (ratings []Rating, users, items *matrix.Matrix) {
	if cfg.Min == 0 && cfg.Max == 0 {
		cfg.Min, cfg.Max = 1, 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	users = matrix.New(cfg.Rank, cfg.Users)
	items = matrix.New(cfg.Rank, cfg.Items)
	users.FillRandom(rng)
	items.FillRandom(rng)
	mid := (cfg.Min + cfg.Max) / 2
	span := (cfg.Max - cfg.Min) / 2
	scale := span / float64(cfg.Rank) * 2
	for u := 0; u < cfg.Users; u++ {
		for it := 0; it < cfg.Items; it++ {
			if rng.Float64() >= cfg.Density {
				continue
			}
			v := mid + scale*vecmath.Dot(users.Vec(u), items.Vec(it)) + cfg.Noise*rng.NormFloat64()
			v = vecmath.Clamp(v, cfg.Min, cfg.Max)
			ratings = append(ratings, Rating{User: u, Item: it, Value: v})
		}
	}
	return ratings, users, items
}
