// Package snapshot serializes a LEMP index so a server can restart in
// O(read) instead of re-paying the preprocessing of Algorithm 1 — the
// bucketization of §3.2 and, when the index was pretuned, the sample-based
// parameter selection of §4.4.
//
// The LEMPIDX1 format is a versioned, self-describing container:
//
//	magic    [8]byte  "LEMPIDX1"
//	version  uint32   format version (currently 1)
//	reserved uint32   zero
//	section* — each section:
//	    tag     [4]byte
//	    length  uint64   payload bytes
//	    payload [length]byte
//	    crc32   uint32   IEEE CRC-32 of the payload
//
// All integers and floats are little endian. Version 1 defines four
// sections, written in this order:
//
//	"OPTS"  the core.Options the index was built with
//	"PROB"  the probe matrix (r, n, r×n float64)
//	"BUKT"  the bucketization: pretuned flag, then per bucket its tuning
//	        state (tuned, t_b, φ_b) and membership (ids, lengths,
//	        normalized directions)
//	"END\0" zero-length terminator
//
// Version 2 adds three optional sections between PROB and BUKT. PIDS and
// MUTA carry the external-id state of a mutated (dynamically updated)
// index; mutated indexes are compacted on save — the delta layer folds into
// a fresh bucketization with ids preserved — so the sections are small and
// the BUKT layout stays identical. TSMP retains a pretuned index's tuning
// sample so a restored index can re-freeze fitted parameters after a
// Compact:
//
//	"PIDS"  probe column → external id (n × int32), present when the ids
//	        are not the column numbers
//	"MUTA"  mutation epoch (uint64) and next AutoID assignment (int64),
//	        present when either differs from its derived default
//	"TSMP"  the retained tuning sample of a pretuned index: problem kind
//	        (topk flag), k (int64), θ (float64), then the sample matrix
//	        (r, m, r×m float64)
//
// Version 3 adds one optional section after BUKT:
//
//	"SLST"  the lazily built per-bucket sorted-list indexes (§4.2): per
//	        bucket a presence byte, then — when present — the coordinate-
//	        major value array (size × r float64) and local-id array
//	        (size × r int32). Persisting them lets a restored server's
//	        first batch skip the rebuild that dominates post-restore
//	        latency; core.FromState re-verifies them against the bucket
//	        directions, so a tampered list index fails to load. The
//	        section is opt-in (WriteOptions.IncludeLists) because it
//	        roughly doubles snapshot size.
//
// Version 4 adds one optional section after BUKT (and SLST, when present):
//
//	"PLMT"  shard-placement metadata for the serving layer: the placement
//	        strategy name, and — for cluster-placed shards — the shard's
//	        direction cone (unit centroid, cos of the angular radius,
//	        maximum live probe length). The section lets a restored shard
//	        set resume centroid-routed pruning without recomputing cones;
//	        a snapshot without it restores with placement re-derived.
//
// Version 5 adds one optional section after BUKT (and SLST/PLMT, when
// present):
//
//	"QNT8"  the quantized screening sidecar (internal/quant,
//	        core.Options.Quantize): per bucket a presence byte, then —
//	        when present — the per-row scales (size × float64), the
//	        residual-norm bounds (size × float64) and the int8 codes
//	        (size × r bytes). Presence of the section implies
//	        Options.Quantize on load (the fixed-size OPTS payload predates
//	        the flag); core.FromState re-verifies the sidecar against the
//	        bucket directions — quantization is deterministic — so a
//	        tampered sidecar fails to load instead of mis-screening. A
//	        snapshot without the section loads with screening off; loaders
//	        can force it back on (lemp.LoadOptions), which rebuilds the
//	        sidecar from the directions.
//
// A writer emits version 1 whenever none of the optional sections is
// needed, so plain snapshots stay byte-compatible with version-1 readers.
//
// A reader fails loudly — never silently serves wrong results — on a bad
// magic, an unsupported version, an unknown section tag, a checksum
// mismatch, a truncated stream, or any structural inconsistency; allocation
// while reading is always bounded by the bytes actually present, so a
// crafted header cannot balloon memory. (Unknown tags are rejected rather
// than skipped because the reader already rejects unknown versions: within
// an accepted stream every tag is known, so an unknown one is corruption —
// a flipped tag byte must not silently drop a section.)
//
// Other lazily built per-bucket indexes (cover trees, L2AP, signatures)
// are intentionally not persisted: they are cheap relative to
// bucketization, query-dependent, and rebuilt lazily after a restore.
// Sorted lists earned their optional section because every coordinate
// method needs them and their rebuild dominates a restored server's first
// batch.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"math/bits"

	"lemp/internal/core"
	"lemp/internal/matrix"
)

// Magic identifies a LEMPIDX1 snapshot stream.
const Magic = "LEMPIDX1"

// Version is the base format version; VersionIDs is emitted when the
// external-id sections (PIDS/MUTA) are present, VersionLists when the
// sorted-list section (SLST) is, VersionPlacement when the placement
// section (PLMT) is.
const (
	Version          = 1
	VersionIDs       = 2
	VersionLists     = 3
	VersionPlacement = 4
	VersionQuant     = 5
)

var (
	tagOptions   = [4]byte{'O', 'P', 'T', 'S'}
	tagProbe     = [4]byte{'P', 'R', 'O', 'B'}
	tagIDs       = [4]byte{'P', 'I', 'D', 'S'}
	tagMuta      = [4]byte{'M', 'U', 'T', 'A'}
	tagTune      = [4]byte{'T', 'S', 'M', 'P'}
	tagBuckets   = [4]byte{'B', 'U', 'K', 'T'}
	tagLists     = [4]byte{'S', 'L', 'S', 'T'}
	tagPlacement = [4]byte{'P', 'L', 'M', 'T'}
	tagQuant     = [4]byte{'Q', 'N', 'T', '8'}
	tagEnd       = [4]byte{'E', 'N', 'D', 0}
)

// maxPlacementKind bounds the placement-strategy name in a PLMT section; a
// longer one is corruption, not a strategy.
const maxPlacementKind = 64

// Dimension plausibility bounds, matching matrix.ReadBinary.
const (
	maxDim    = 1 << 20
	maxProbes = 1 << 31
)

// optionsLen is the fixed OPTS payload size: one uint32, ten 8-byte fields,
// one byte.
const optionsLen = 4 + 10*8 + 1

// defaultNextID is the NextID value a state would derive on load anyway,
// which therefore does not need a MUTA section.
func defaultNextID(st *core.State) int32 {
	if st.IDs == nil {
		return int32(st.Probe.N())
	}
	next := int32(0)
	for _, id := range st.IDs {
		if id >= next {
			next = id + 1
		}
	}
	return next
}

// WriteOptions adjust what Write persists beyond the required sections.
type WriteOptions struct {
	// IncludeLists persists the per-bucket sorted-list indexes that have
	// been built so far (SLST section, format version 3), trading snapshot
	// size for a restored server that skips the first-use list rebuild.
	// Buckets whose lists were never built are recorded as absent and
	// still rebuild lazily after restore.
	IncludeLists bool
}

// Write serializes st in the LEMPIDX1 format with default options,
// choosing version 1 or 2 by whether external-id state must be recorded.
func Write(w io.Writer, st *core.State) error {
	return WriteWith(w, st, WriteOptions{})
}

// WriteWith is Write with explicit options; opting into list persistence
// emits format version 3.
func WriteWith(w io.Writer, st *core.State, opts WriteOptions) error {
	if st.Probe == nil {
		return fmt.Errorf("snapshot: state has no probe matrix")
	}
	writeMuta := st.Epoch != 0 || st.NextID != defaultNextID(st)
	writeTune := st.Pretuned && st.TuneSample != nil
	writeLists := false
	if opts.IncludeLists {
		for _, b := range st.Buckets {
			if b.ListVals != nil {
				writeLists = true
				break
			}
		}
	}
	writeQuant := false
	for _, b := range st.Buckets {
		if b.QuantScales != nil {
			writeQuant = true
			break
		}
	}
	writePlmt := st.PlacementKind != "" || st.Cone != nil
	if writePlmt {
		if len(st.PlacementKind) > maxPlacementKind {
			return fmt.Errorf("snapshot: placement kind %q longer than %d bytes", st.PlacementKind, maxPlacementKind)
		}
		if c := st.Cone; c != nil {
			if c.Centroid != nil && len(c.Centroid) != st.Probe.R() {
				return fmt.Errorf("snapshot: placement centroid has dimension %d, probe matrix %d", len(c.Centroid), st.Probe.R())
			}
		}
	}
	version := uint32(Version)
	if st.IDs != nil || writeMuta || writeTune {
		version = VersionIDs
	}
	if writeLists {
		version = VersionLists
	}
	if writePlmt {
		version = VersionPlacement
	}
	if writeQuant {
		version = VersionQuant
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], version)
	binary.LittleEndian.PutUint32(hdr[4:8], 0)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeSection(bw, tagOptions, optionsLen, func(w io.Writer) error {
		return writeOptions(w, st.Opts)
	}); err != nil {
		return err
	}
	probeLen := uint64(8) + 8*uint64(st.Probe.R())*uint64(st.Probe.N())
	if err := writeSection(bw, tagProbe, probeLen, func(w io.Writer) error {
		return writeProbe(w, st.Probe)
	}); err != nil {
		return err
	}
	if st.IDs != nil {
		if err := writeSection(bw, tagIDs, 4*uint64(len(st.IDs)), func(w io.Writer) error {
			return matrix.WriteInt32s(w, st.IDs)
		}); err != nil {
			return err
		}
	}
	if writeMuta {
		if err := writeSection(bw, tagMuta, 16, func(w io.Writer) error {
			var buf [16]byte
			binary.LittleEndian.PutUint64(buf[0:8], st.Epoch)
			binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(st.NextID)))
			_, err := w.Write(buf[:])
			return err
		}); err != nil {
			return err
		}
	}
	if writeTune {
		tuneLen := uint64(1+8+8+8) + 8*uint64(st.TuneSample.R())*uint64(st.TuneSample.N())
		if err := writeSection(bw, tagTune, tuneLen, func(w io.Writer) error {
			return writeTuneSample(w, st)
		}); err != nil {
			return err
		}
	}
	bucketsLen := uint64(5)
	r := uint64(st.Probe.R())
	for _, b := range st.Buckets {
		s := uint64(len(b.IDs))
		bucketsLen += 21 + 4*s + 8*s + 8*s*r
	}
	if err := writeSection(bw, tagBuckets, bucketsLen, func(w io.Writer) error {
		return writeBuckets(w, st)
	}); err != nil {
		return err
	}
	if writeLists {
		listsLen := uint64(len(st.Buckets))
		for _, b := range st.Buckets {
			if b.ListVals != nil {
				listsLen += 8*uint64(len(b.ListVals)) + 4*uint64(len(b.ListLids))
			}
		}
		if err := writeSection(bw, tagLists, listsLen, func(w io.Writer) error {
			return writeSortedLists(w, st)
		}); err != nil {
			return err
		}
	}
	if writePlmt {
		plmtLen := uint64(1+len(st.PlacementKind)) + 1
		if c := st.Cone; c != nil {
			plmtLen += 4 + 8*uint64(len(c.Centroid)) + 16
		}
		if err := writeSection(bw, tagPlacement, plmtLen, func(w io.Writer) error {
			return writePlacement(w, st)
		}); err != nil {
			return err
		}
	}
	if writeQuant {
		quantLen := uint64(len(st.Buckets))
		r := uint64(st.Probe.R())
		for _, b := range st.Buckets {
			if b.QuantScales != nil {
				s := uint64(len(b.QuantScales))
				quantLen += 8*s + 8*s + s*r
			}
		}
		if err := writeSection(bw, tagQuant, quantLen, func(w io.Writer) error {
			return writeQuantSidecar(w, st)
		}); err != nil {
			return err
		}
	}
	if err := writeSection(bw, tagEnd, 0, func(io.Writer) error { return nil }); err != nil {
		return err
	}
	return bw.Flush()
}

// writeQuantSidecar emits the QNT8 payload: one presence byte per bucket,
// then the present buckets' scales, residual bounds and int8 codes.
func writeQuantSidecar(w io.Writer, st *core.State) error {
	for _, b := range st.Buckets {
		present := byte(0)
		if b.QuantScales != nil {
			present = 1
		}
		if _, err := w.Write([]byte{present}); err != nil {
			return err
		}
		if present == 0 {
			continue
		}
		if err := matrix.WriteFloat64s(w, b.QuantScales); err != nil {
			return err
		}
		if err := matrix.WriteFloat64s(w, b.QuantResid); err != nil {
			return err
		}
		if err := matrix.WriteInt8s(w, b.QuantCodes); err != nil {
			return err
		}
	}
	return nil
}

// readQuantSidecar parses the QNT8 payload into the already-read bucket
// states. Allocation is bounded by the declared bucket sizes; semantic
// verification (exact agreement with re-quantized directions) runs in
// core.FromState.
func readQuantSidecar(r io.Reader, st *core.State) error {
	dim := st.Probe.R()
	for i := range st.Buckets {
		var present [1]byte
		if _, err := io.ReadFull(r, present[:]); err != nil {
			return fmt.Errorf("bucket %d sidecar flag: %w", i, err)
		}
		switch present[0] {
		case 0:
			continue
		case 1:
		default:
			return fmt.Errorf("bucket %d sidecar flag is %d, want 0 or 1", i, present[0])
		}
		size := len(st.Buckets[i].IDs)
		var err error
		if st.Buckets[i].QuantScales, err = matrix.ReadFloat64s(r, size); err != nil {
			return fmt.Errorf("bucket %d sidecar scales: %w", i, err)
		}
		if st.Buckets[i].QuantResid, err = matrix.ReadFloat64s(r, size); err != nil {
			return fmt.Errorf("bucket %d sidecar residuals: %w", i, err)
		}
		if st.Buckets[i].QuantCodes, err = matrix.ReadInt8s(r, size*dim); err != nil {
			return fmt.Errorf("bucket %d sidecar codes: %w", i, err)
		}
	}
	return nil
}

// writeSortedLists emits the SLST payload: one presence byte per bucket, then
// the present buckets' value and local-id arrays.
func writeSortedLists(w io.Writer, st *core.State) error {
	for _, b := range st.Buckets {
		present := byte(0)
		if b.ListVals != nil {
			present = 1
		}
		if _, err := w.Write([]byte{present}); err != nil {
			return err
		}
		if present == 0 {
			continue
		}
		if err := matrix.WriteFloat64s(w, b.ListVals); err != nil {
			return err
		}
		if err := matrix.WriteInt32s(w, b.ListLids); err != nil {
			return err
		}
	}
	return nil
}

// writePlacement emits the PLMT payload: the placement kind (length-
// prefixed), a cone-presence byte, and — when present — the centroid
// (length-prefixed; 0 for a degenerate cone with no usable axis), the cos
// of the angular radius, and the maximum live probe length.
func writePlacement(w io.Writer, st *core.State) error {
	buf := make([]byte, 0, 2+len(st.PlacementKind))
	buf = append(buf, byte(len(st.PlacementKind)))
	buf = append(buf, st.PlacementKind...)
	buf = append(buf, boolByte(st.Cone != nil))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	c := st.Cone
	if c == nil {
		return nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(c.Centroid)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := matrix.WriteFloat64s(w, c.Centroid); err != nil {
		return err
	}
	var tail [16]byte
	binary.LittleEndian.PutUint64(tail[0:8], math.Float64bits(c.CosRadius))
	binary.LittleEndian.PutUint64(tail[8:16], math.Float64bits(c.MaxLen))
	_, err := w.Write(tail[:])
	return err
}

// readPlacement parses and validates the PLMT payload. A cone that fails
// validation here could silently prune shards that still hold qualifying
// probes, so every field is checked: the centroid must match the probe
// dimension, be finite, and be (near-)unit; the radius cosine must be a
// finite value in [-1, 1]; the maximum length finite and non-negative.
func readPlacement(r io.Reader, st *core.State) error {
	var kindLen [1]byte
	if _, err := io.ReadFull(r, kindLen[:]); err != nil {
		return err
	}
	if int(kindLen[0]) > maxPlacementKind {
		return fmt.Errorf("placement kind length %d exceeds %d", kindLen[0], maxPlacementKind)
	}
	kind := make([]byte, kindLen[0])
	if _, err := io.ReadFull(r, kind); err != nil {
		return err
	}
	st.PlacementKind = string(kind)
	var present [1]byte
	if _, err := io.ReadFull(r, present[:]); err != nil {
		return err
	}
	switch present[0] {
	case 0:
		return nil
	case 1:
	default:
		return fmt.Errorf("cone flag is %d, want 0 or 1", present[0])
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	clen := int(binary.LittleEndian.Uint32(hdr[:]))
	if clen != 0 && clen != st.Probe.R() {
		return fmt.Errorf("cone centroid has dimension %d, probe matrix %d", clen, st.Probe.R())
	}
	c := &core.Cone{}
	if clen > 0 {
		var err error
		if c.Centroid, err = matrix.ReadFloat64s(r, clen); err != nil {
			return err
		}
		norm2 := 0.0
		for _, x := range c.Centroid {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("cone centroid holds non-finite value %v", x)
			}
			norm2 += x * x
		}
		if math.Abs(norm2-1) > 1e-6 {
			return fmt.Errorf("cone centroid is not a unit vector (squared norm %v)", norm2)
		}
	}
	var tail [16]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return err
	}
	c.CosRadius = math.Float64frombits(binary.LittleEndian.Uint64(tail[0:8]))
	c.MaxLen = math.Float64frombits(binary.LittleEndian.Uint64(tail[8:16]))
	if math.IsNaN(c.CosRadius) || c.CosRadius < -1 || c.CosRadius > 1 {
		return fmt.Errorf("cone radius cosine %v outside [-1, 1]", c.CosRadius)
	}
	if math.IsNaN(c.MaxLen) || math.IsInf(c.MaxLen, 0) || c.MaxLen < 0 {
		return fmt.Errorf("cone max length is %v", c.MaxLen)
	}
	st.Cone = c
	return nil
}

// writeSection frames one section: tag, declared length, the payload teed
// through a CRC-32, and the checksum.
func writeSection(bw *bufio.Writer, tag [4]byte, length uint64, payload func(io.Writer) error) error {
	if _, err := bw.Write(tag[:]); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], length)
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	if err := payload(io.MultiWriter(bw, crc)); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	_, err := bw.Write(crcBuf[:])
	return err
}

func writeOptions(w io.Writer, o core.Options) error {
	buf := make([]byte, 0, optionsLen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(o.Algorithm))
	for _, v := range []int64{
		int64(o.Phi), int64(o.MaxPhi), int64(o.CacheBytes), int64(o.MinBucketSize),
	} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.ShrinkFactor))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.SampleQueries)))
	buf = append(buf, boolByte(o.TuneByCost))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.Parallelism)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(o.SignatureBits)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Epsilon))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(o.Seed))
	_, err := w.Write(buf)
	return err
}

func writeProbe(w io.Writer, p *matrix.Matrix) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(p.R()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(p.N()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	return matrix.WriteFloat64s(w, p.Data())
}

// writeTuneSample emits the TSMP payload: the problem a Pretune call
// fitted (kind, k, θ) and the retained query sample.
func writeTuneSample(w io.Writer, st *core.State) error {
	var hdr [25]byte
	hdr[0] = boolByte(st.TuneTopK)
	binary.LittleEndian.PutUint64(hdr[1:9], uint64(int64(st.TuneK)))
	binary.LittleEndian.PutUint64(hdr[9:17], math.Float64bits(st.TuneTheta))
	binary.LittleEndian.PutUint32(hdr[17:21], uint32(st.TuneSample.R()))
	binary.LittleEndian.PutUint32(hdr[21:25], uint32(st.TuneSample.N()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	return matrix.WriteFloat64s(w, st.TuneSample.Data())
}

func writeBuckets(w io.Writer, st *core.State) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(st.Buckets)))
	hdr[4] = boolByte(st.Pretuned)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, b := range st.Buckets {
		var bh [21]byte
		binary.LittleEndian.PutUint32(bh[0:4], uint32(len(b.IDs)))
		bh[4] = boolByte(b.Tuned)
		binary.LittleEndian.PutUint64(bh[5:13], math.Float64bits(b.TB))
		binary.LittleEndian.PutUint64(bh[13:21], uint64(int64(b.Phi)))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if err := matrix.WriteInt32s(w, b.IDs); err != nil {
			return err
		}
		if err := matrix.WriteFloat64s(w, b.Lens); err != nil {
			return err
		}
		if err := matrix.WriteFloat64s(w, b.Dirs); err != nil {
			return err
		}
	}
	return nil
}

// readSortedLists parses the SLST payload into the already-read bucket
// states. Allocation is bounded by the declared bucket sizes; semantic
// verification (permutation, sortedness, value agreement with the
// directions) runs in core.FromState.
func readSortedLists(r io.Reader, st *core.State) error {
	dim := st.Probe.R()
	for i := range st.Buckets {
		var present [1]byte
		if _, err := io.ReadFull(r, present[:]); err != nil {
			return fmt.Errorf("bucket %d list flag: %w", i, err)
		}
		switch present[0] {
		case 0:
			continue
		case 1:
		default:
			return fmt.Errorf("bucket %d list flag is %d, want 0 or 1", i, present[0])
		}
		n := len(st.Buckets[i].IDs) * dim
		var err error
		if st.Buckets[i].ListVals, err = matrix.ReadFloat64s(r, n); err != nil {
			return fmt.Errorf("bucket %d list values: %w", i, err)
		}
		if st.Buckets[i].ListLids, err = matrix.ReadInt32s(r, n); err != nil {
			return fmt.Errorf("bucket %d list ids: %w", i, err)
		}
	}
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Read parses a LEMPIDX1 stream into a core.State. It verifies the format
// version and every section checksum; structural invariants of the state
// itself (id uniqueness, length ordering, …) are verified by
// core.FromState, which every loader runs next.
func Read(r io.Reader) (*core.State, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a LEMPIDX1 snapshot)", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v < Version || v > VersionQuant {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads versions %d through %d)", v, Version, VersionQuant)
	}
	if rsv := binary.LittleEndian.Uint32(hdr[4:8]); rsv != 0 {
		return nil, fmt.Errorf("snapshot: reserved header field is %#x, want 0", rsv)
	}
	st := &core.State{}
	var haveOpts, haveProbe, haveBuckets, haveIDs, haveMuta, haveTune, haveLists, havePlmt, haveQuant bool
	for {
		var tag [4]byte
		if _, err := io.ReadFull(br, tag[:]); err != nil {
			return nil, fmt.Errorf("snapshot: reading section tag: %w", err)
		}
		var lenBuf [8]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("snapshot: reading section length: %w", err)
		}
		sr := &sectionReader{br: br, n: binary.LittleEndian.Uint64(lenBuf[:]), crc: crc32.NewIEEE()}
		var err error
		switch tag {
		case tagOptions:
			if haveOpts {
				return nil, fmt.Errorf("snapshot: duplicate OPTS section")
			}
			haveOpts = true
			st.Opts, err = readOptions(sr)
		case tagProbe:
			if haveProbe {
				return nil, fmt.Errorf("snapshot: duplicate PROB section")
			}
			haveProbe = true
			st.Probe, err = readProbe(sr)
		case tagIDs:
			if haveIDs {
				return nil, fmt.Errorf("snapshot: duplicate PIDS section")
			}
			if !haveProbe {
				return nil, fmt.Errorf("snapshot: PIDS section before PROB")
			}
			haveIDs = true
			st.IDs, err = matrix.ReadInt32s(sr, st.Probe.N())
		case tagMuta:
			if haveMuta {
				return nil, fmt.Errorf("snapshot: duplicate MUTA section")
			}
			haveMuta = true
			var buf [16]byte
			if _, err = io.ReadFull(sr, buf[:]); err == nil {
				st.Epoch = binary.LittleEndian.Uint64(buf[0:8])
				next := int64(binary.LittleEndian.Uint64(buf[8:16]))
				if next < 0 || next > maxProbes {
					return nil, fmt.Errorf("snapshot: implausible next probe id %d", next)
				}
				st.NextID = int32(next)
			}
		case tagTune:
			if haveTune {
				return nil, fmt.Errorf("snapshot: duplicate TSMP section")
			}
			haveTune = true
			err = readTuneSample(sr, st)
		case tagBuckets:
			if haveBuckets {
				return nil, fmt.Errorf("snapshot: duplicate BUKT section")
			}
			if !haveProbe {
				return nil, fmt.Errorf("snapshot: BUKT section before PROB")
			}
			haveBuckets = true
			err = readBuckets(sr, st)
		case tagLists:
			if haveLists {
				return nil, fmt.Errorf("snapshot: duplicate SLST section")
			}
			if !haveBuckets {
				return nil, fmt.Errorf("snapshot: SLST section before BUKT")
			}
			haveLists = true
			err = readSortedLists(sr, st)
		case tagPlacement:
			if havePlmt {
				return nil, fmt.Errorf("snapshot: duplicate PLMT section")
			}
			if !haveProbe {
				return nil, fmt.Errorf("snapshot: PLMT section before PROB")
			}
			havePlmt = true
			err = readPlacement(sr, st)
		case tagQuant:
			if haveQuant {
				return nil, fmt.Errorf("snapshot: duplicate QNT8 section")
			}
			if !haveBuckets {
				return nil, fmt.Errorf("snapshot: QNT8 section before BUKT")
			}
			haveQuant = true
			// The fixed-size OPTS payload predates the Quantize flag;
			// presence of the sidecar section is the persisted form of it.
			st.Opts.Quantize = true
			err = readQuantSidecar(sr, st)
		case tagEnd:
			if sr.n != 0 {
				return nil, fmt.Errorf("snapshot: END section with %d payload bytes", sr.n)
			}
			if err := sr.finish("END"); err != nil {
				return nil, err
			}
			if !haveOpts || !haveProbe || !haveBuckets {
				return nil, fmt.Errorf("snapshot: missing section (OPTS %v, PROB %v, BUKT %v)", haveOpts, haveProbe, haveBuckets)
			}
			return st, nil
		default:
			// The reader rejects any format version it does not know, so
			// within an accepted stream every tag is known — an unknown
			// tag means corruption (e.g. a flipped tag byte would turn a
			// required or optional section into a silently skipped one).
			// A future version that appends sections must also bump the
			// version number, which this reader will refuse until taught.
			return nil, fmt.Errorf("snapshot: unknown section %q", tag[:])
		}
		if err != nil {
			return nil, fmt.Errorf("snapshot: section %q: %w", tag[:], err)
		}
		if err := sr.finish(string(tag[:])); err != nil {
			return nil, err
		}
	}
}

// sectionReader bounds reads to one section's declared payload and
// accumulates its CRC-32.
type sectionReader struct {
	br  *bufio.Reader
	n   uint64
	crc hash.Hash32
}

func (s *sectionReader) Read(p []byte) (int, error) {
	if s.n == 0 {
		return 0, io.EOF
	}
	if uint64(len(p)) > s.n {
		p = p[:s.n]
	}
	n, err := s.br.Read(p)
	s.crc.Write(p[:n])
	s.n -= uint64(n)
	return n, err
}

// finish checks the section was fully consumed and its stored checksum
// matches the bytes read.
func (s *sectionReader) finish(tag string) error {
	if s.n != 0 {
		return fmt.Errorf("snapshot: section %q: %d declared payload bytes unused", tag, s.n)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(s.br, crcBuf[:]); err != nil {
		return fmt.Errorf("snapshot: section %q: reading checksum: %w", tag, err)
	}
	if want, got := binary.LittleEndian.Uint32(crcBuf[:]), s.crc.Sum32(); want != got {
		return fmt.Errorf("snapshot: section %q: checksum mismatch (stored %08x, computed %08x)", tag, want, got)
	}
	return nil
}

func readOptions(r io.Reader) (core.Options, error) {
	buf := make([]byte, optionsLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return core.Options{}, err
	}
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(buf[off:]) }
	o := core.Options{
		Algorithm:     core.Algorithm(binary.LittleEndian.Uint32(buf[0:4])),
		Phi:           int(int64(u64(4))),
		MaxPhi:        int(int64(u64(12))),
		CacheBytes:    int(int64(u64(20))),
		MinBucketSize: int(int64(u64(28))),
		ShrinkFactor:  math.Float64frombits(u64(36)),
		SampleQueries: int(int64(u64(44))),
		TuneByCost:    buf[52] != 0,
		Parallelism:   int(int64(u64(53))),
		SignatureBits: int(int64(u64(61))),
		Epsilon:       math.Float64frombits(u64(69)),
		Seed:          int64(u64(77)),
	}
	return o, nil
}

func readProbe(r io.Reader) (*matrix.Matrix, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	rr := int(binary.LittleEndian.Uint32(hdr[0:4]))
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if rr < 0 || n < 0 || rr > maxDim || n > maxProbes {
		return nil, fmt.Errorf("implausible probe dimensions %d×%d", rr, n)
	}
	hi, lo := bits.Mul64(uint64(rr), uint64(n))
	if hi != 0 || lo > uint64(math.MaxInt)/8 {
		return nil, fmt.Errorf("probe dimensions %d×%d overflow", rr, n)
	}
	data, err := matrix.ReadFloat64s(r, int(lo))
	if err != nil {
		return nil, err
	}
	return matrix.FromData(rr, n, data)
}

// readTuneSample parses the TSMP payload. Dimensional plausibility is
// checked here (bounded allocation); the semantic checks — sample dimension
// versus the probe matrix, k/θ validity — run in core.FromState.
func readTuneSample(r io.Reader, st *core.State) error {
	var hdr [25]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	st.TuneTopK = hdr[0] != 0
	st.TuneK = int(int64(binary.LittleEndian.Uint64(hdr[1:9])))
	st.TuneTheta = math.Float64frombits(binary.LittleEndian.Uint64(hdr[9:17]))
	rr := int(binary.LittleEndian.Uint32(hdr[17:21]))
	m := int(binary.LittleEndian.Uint32(hdr[21:25]))
	if rr < 1 || m < 1 || rr > maxDim || m > maxProbes {
		return fmt.Errorf("implausible tuning sample dimensions %d×%d", rr, m)
	}
	hi, lo := bits.Mul64(uint64(rr), uint64(m))
	if hi != 0 || lo > uint64(math.MaxInt)/8 {
		return fmt.Errorf("tuning sample dimensions %d×%d overflow", rr, m)
	}
	data, err := matrix.ReadFloat64s(r, int(lo))
	if err != nil {
		return err
	}
	st.TuneSample, err = matrix.FromData(rr, m, data)
	return err
}

func readBuckets(r io.Reader, st *core.State) error {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	numBuckets := int(binary.LittleEndian.Uint32(hdr[0:4]))
	st.Pretuned = hdr[4] != 0
	n, dim := st.Probe.N(), st.Probe.R()
	if numBuckets < 0 || numBuckets > n {
		return fmt.Errorf("%d buckets for %d probes", numBuckets, n)
	}
	st.Buckets = make([]core.BucketState, 0, numBuckets)
	total := 0
	for i := 0; i < numBuckets; i++ {
		var bh [21]byte
		if _, err := io.ReadFull(r, bh[:]); err != nil {
			return fmt.Errorf("bucket %d header: %w", i, err)
		}
		size := int(binary.LittleEndian.Uint32(bh[0:4]))
		if size < 1 || total+size > n {
			return fmt.Errorf("bucket %d size %d exceeds %d probes", i, size, n)
		}
		total += size
		b := core.BucketState{
			Tuned: bh[4] != 0,
			TB:    math.Float64frombits(binary.LittleEndian.Uint64(bh[5:13])),
			Phi:   int(int64(binary.LittleEndian.Uint64(bh[13:21]))),
		}
		if b.Phi < 0 || b.Phi > maxDim {
			return fmt.Errorf("bucket %d phi %d out of range", i, b.Phi)
		}
		var err error
		if b.IDs, err = matrix.ReadInt32s(r, size); err != nil {
			return fmt.Errorf("bucket %d ids: %w", i, err)
		}
		if b.Lens, err = matrix.ReadFloat64s(r, size); err != nil {
			return fmt.Errorf("bucket %d lengths: %w", i, err)
		}
		if b.Dirs, err = matrix.ReadFloat64s(r, size*dim); err != nil {
			return fmt.Errorf("bucket %d directions: %w", i, err)
		}
		st.Buckets = append(st.Buckets, b)
	}
	return nil
}
