package snapshot

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"lemp/internal/core"
	"lemp/internal/matrix"
)

// buildState makes a small tuned index state deterministically.
func buildState(t testing.TB) *core.State {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	p := matrix.New(8, 200)
	p.FillRandom(rng)
	for i := 0; i < 200; i++ { // skew lengths so several buckets form
		v := p.Vec(i)
		scale := math.Exp(0.9 * rng.NormFloat64())
		for f := range v {
			v[f] *= scale
		}
	}
	ix, err := core.NewIndex(p, core.Options{MinBucketSize: 10, SampleQueries: 8, TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}
	q := matrix.New(8, 20)
	q.FillRandom(rand.New(rand.NewSource(22)))
	if err := ix.PretuneTopK(q, 5); err != nil {
		t.Fatal(err)
	}
	return ix.State()
}

func TestWriteReadRoundTrip(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Opts != st.Opts {
		t.Errorf("options differ:\n got %+v\nwant %+v", got.Opts, st.Opts)
	}
	if got.Pretuned != st.Pretuned {
		t.Errorf("pretuned %v, want %v", got.Pretuned, st.Pretuned)
	}
	if got.Probe.R() != st.Probe.R() || got.Probe.N() != st.Probe.N() {
		t.Fatalf("probe %d×%d, want %d×%d", got.Probe.R(), got.Probe.N(), st.Probe.R(), st.Probe.N())
	}
	if !reflect.DeepEqual(got.Probe.Data(), st.Probe.Data()) {
		t.Error("probe data differs")
	}
	// Default Write intentionally drops the optional sorted lists; every
	// other bucket field must round-trip exactly.
	want := append([]core.BucketState(nil), st.Buckets...)
	for i := range want {
		want[i].ListVals, want[i].ListLids = nil, nil
	}
	if !reflect.DeepEqual(got.Buckets, want) {
		t.Error("bucket states differ")
	}
	// The parsed state must satisfy every structural invariant.
	if _, err := core.FromState(got); err != nil {
		t.Fatalf("FromState on round-tripped state: %v", err)
	}
}

// TestWriteReadRoundTripWithLists: opting into list persistence must emit
// format version 3 and round-trip the sorted-list arrays bit-for-bit, and
// the loaded state must pass FromState's list verification.
func TestWriteReadRoundTripWithLists(t *testing.T) {
	st := buildState(t)
	withLists := false
	for _, b := range st.Buckets {
		if b.ListVals != nil {
			withLists = true
		}
	}
	if !withLists {
		t.Fatal("fixture built no sorted lists; pretuning should have")
	}
	var buf bytes.Buffer
	if err := WriteWith(&buf, st, WriteOptions{IncludeLists: true}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != VersionLists {
		t.Fatalf("format version %d, want %d", v, VersionLists)
	}
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Buckets, st.Buckets) {
		t.Error("bucket states (lists included) differ")
	}
	if _, err := core.FromState(got); err != nil {
		t.Fatalf("FromState on round-tripped state with lists: %v", err)
	}
	// Without any built lists, IncludeLists must degrade to the plain
	// format (no empty SLST section, version unchanged).
	plain := buildUntunedState(t)
	var buf2 bytes.Buffer
	if err := WriteWith(&buf2, plain, WriteOptions{IncludeLists: true}); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf2.Bytes()[8:12]); v != Version {
		t.Fatalf("listless IncludeLists snapshot has version %d, want %d", v, Version)
	}
}

// buildUntunedState makes a state whose buckets never built sorted lists.
func buildUntunedState(t testing.TB) *core.State {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	p := matrix.New(6, 60)
	p.FillRandom(rng)
	ix, err := core.NewIndex(p, core.Options{MinBucketSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	return ix.State()
}

// TestPlacementRoundTrip: placement metadata must emit format version 4,
// round-trip exactly, and stay absent (version unchanged) when not set.
// Invalid stored cones must be rejected by the reader.
func TestPlacementRoundTrip(t *testing.T) {
	st := buildState(t)
	r := st.Probe.R()
	var base bytes.Buffer
	if err := Write(&base, st); err != nil {
		t.Fatal(err)
	}
	baseVersion := binary.LittleEndian.Uint32(base.Bytes()[8:12])
	centroid := make([]float64, r)
	centroid[0], centroid[1] = 0.6, 0.8
	st.PlacementKind = "cluster"
	st.Cone = &core.Cone{Centroid: centroid, CosRadius: 0.25, MaxLen: 3.5}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != VersionPlacement {
		t.Fatalf("format version %d, want %d", v, VersionPlacement)
	}
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.PlacementKind != st.PlacementKind {
		t.Errorf("placement kind %q, want %q", got.PlacementKind, st.PlacementKind)
	}
	if !reflect.DeepEqual(got.Cone, st.Cone) {
		t.Errorf("cone %+v, want %+v", got.Cone, st.Cone)
	}

	// A kind-only placement (cost shards have no cone) round-trips too.
	st.Cone = nil
	buf.Reset()
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err = Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.PlacementKind != st.PlacementKind {
		t.Errorf("placement kind %q, want %q", got.PlacementKind, st.PlacementKind)
	}
	if got.Cone != nil {
		t.Errorf("cone %+v, want nil", got.Cone)
	}

	// Without placement metadata the version must not rise.
	st.PlacementKind, st.Cone = "", nil
	buf.Reset()
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[8:12]); v != baseVersion {
		t.Fatalf("placement-free snapshot has version %d, want %d", v, baseVersion)
	}

	// Invalid cones must fail the write-side validation: wrong centroid
	// dimension, and a non-unit centroid must fail the read side.
	st.PlacementKind = "cluster"
	st.Cone = &core.Cone{Centroid: make([]float64, r+1), CosRadius: 0, MaxLen: 1}
	if err := Write(&bytes.Buffer{}, st); err == nil {
		t.Error("cone with wrong centroid dimension accepted")
	}
	bad := make([]float64, r)
	bad[0] = 0.5 // |norm²−1| far beyond tolerance
	st.Cone = &core.Cone{Centroid: bad, CosRadius: 0, MaxLen: 1}
	buf.Reset()
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("non-unit centroid accepted by reader")
	}
}

func TestReadRejectsBadMagicAndVersion(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Read(bytes.NewReader([]byte("LEMPMAT1garbage..."))); err == nil {
		t.Error("matrix magic accepted as a snapshot")
	}
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[8:12], VersionQuant+1)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("future format version accepted")
	}
}

// TestReadDetectsCorruption flips one byte at every offset of a valid
// snapshot: each flip must either be detected by Read/FromState or produce
// a state that still passes full validation (flips confined to unused
// padding would be acceptable — with this format there is none, so every
// accepted flip is a real failure).
func TestReadDetectsCorruption(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	step := 1
	if len(raw) > 1<<16 {
		step = len(raw) / (1 << 16)
	}
	for off := 0; off < len(raw); off += step {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		got, err := Read(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		if _, err := core.FromState(got); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
}

// TestListsCorruptionDetected is TestReadDetectsCorruption over a
// version-3 (SLST) snapshot, plus semantic tampering that keeps checksums
// valid: a list index whose bytes are intact but whose content disagrees
// with the bucket directions must be rejected by FromState's verification.
func TestListsCorruptionDetected(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := WriteWith(&buf, st, WriteOptions{IncludeLists: true}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	step := 1
	if len(raw) > 1<<16 {
		step = len(raw) / (1 << 16)
	}
	for off := 0; off < len(raw); off += step {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		got, err := Read(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		if _, err := core.FromState(got); err == nil {
			t.Fatalf("bit flip at offset %d of a lists snapshot went undetected", off)
		}
	}

	// CRC-valid but semantically wrong lists: every tamper must fail
	// FromState, never load and silently mis-prune.
	tampers := []struct {
		name string
		mut  func(bs *core.BucketState)
	}{
		{"swapped lids", func(bs *core.BucketState) {
			bs.ListLids[0], bs.ListLids[1] = bs.ListLids[1], bs.ListLids[0]
		}},
		{"duplicated lid", func(bs *core.BucketState) {
			bs.ListLids[1] = bs.ListLids[0]
		}},
		{"out-of-range lid", func(bs *core.BucketState) {
			bs.ListLids[0] = int32(len(bs.IDs))
		}},
		{"value drift", func(bs *core.BucketState) {
			bs.ListVals[0] += 1e-9
		}},
		{"shape mismatch", func(bs *core.BucketState) {
			bs.ListVals = bs.ListVals[:len(bs.ListVals)-1]
		}},
	}
	for _, tc := range tampers {
		got, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		target := -1
		for i := range got.Buckets {
			if len(got.Buckets[i].ListLids) >= 2 {
				target = i
				break
			}
		}
		if target < 0 {
			t.Fatal("no bucket with a usable list in the fixture")
		}
		tc.mut(&got.Buckets[target])
		if _, err := core.FromState(got); err == nil {
			t.Errorf("%s: tampered list index loaded", tc.name)
		}
	}
}

// TestRestoredListsServeIdentically: an index restored from a lists
// snapshot must report its buckets indexed, answer exactly like the
// original, and not rebuild what the snapshot carried.
func TestRestoredListsServeIdentically(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := WriteWith(&buf, st, WriteOptions{IncludeLists: true}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.FromState(got)
	if err != nil {
		t.Fatal(err)
	}
	indexed := 0
	for _, b := range restored.Buckets() {
		if b.Indexed {
			indexed++
		}
	}
	if indexed == 0 {
		t.Fatal("restored index reports no pre-built bucket indexes")
	}
	original, err := core.FromState(buildState(t))
	if err != nil {
		t.Fatal(err)
	}
	q := matrix.New(st.Probe.R(), 5)
	q.FillRandom(rand.New(rand.NewSource(77)))
	wantTop, _, err := original.RowTopK(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, _, err := restored.RowTopK(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Fatal("restored-with-lists index answers differently")
	}
}

// buildQuantState makes a state whose index carries the quantized
// screening sidecar (Options.Quantize, format version 5).
func buildQuantState(t testing.TB) *core.State {
	t.Helper()
	rng := rand.New(rand.NewSource(29))
	p := matrix.New(8, 200)
	p.FillRandom(rng)
	for i := 0; i < 200; i++ { // skew lengths so several buckets form
		v := p.Vec(i)
		scale := math.Exp(0.9 * rng.NormFloat64())
		for f := range v {
			v[f] *= scale
		}
	}
	ix, err := core.NewIndex(p, core.Options{MinBucketSize: 10, Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	return ix.State()
}

// TestQuantRoundTrip: a Quantize index must emit format version 5 with a
// QNT8 section, round-trip the sidecar bit-for-bit, restore with screening
// active (sidecar attached, Opts.Quantize set) and answer exactly like the
// original. A snapshot without the section must stay at its lower version
// and restore with screening off.
func TestQuantRoundTrip(t *testing.T) {
	st := buildQuantState(t)
	withQuant := false
	for _, b := range st.Buckets {
		if b.QuantScales != nil {
			withQuant = true
		}
	}
	if !withQuant {
		t.Fatal("fixture built no quant sidecar; Options.Quantize should have")
	}
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != VersionQuant {
		t.Fatalf("format version %d, want %d", v, VersionQuant)
	}
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Opts.Quantize {
		t.Fatal("QNT8 snapshot read back with Opts.Quantize false")
	}
	for i := range st.Buckets {
		w, g := st.Buckets[i], got.Buckets[i]
		if !reflect.DeepEqual(g.QuantScales, w.QuantScales) ||
			!reflect.DeepEqual(g.QuantCodes, w.QuantCodes) ||
			!reflect.DeepEqual(g.QuantResid, w.QuantResid) {
			t.Fatalf("bucket %d: quant sidecar differs after round trip", i)
		}
	}
	restored, err := core.FromState(got)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SidecarBytes() == 0 {
		t.Fatal("restored index holds no quant sidecar")
	}
	original, err := core.FromState(buildQuantState(t))
	if err != nil {
		t.Fatal(err)
	}
	q := matrix.New(st.Probe.R(), 5)
	q.FillRandom(rand.New(rand.NewSource(78)))
	wantTop, _, err := original.RowTopK(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, _, err := restored.RowTopK(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Fatal("restored quant index answers differently")
	}

	// A snapshot without a QNT8 section must not bump the version and must
	// read back with screening off.
	plain := buildUntunedState(t)
	var buf2 bytes.Buffer
	if err := Write(&buf2, plain); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf2.Bytes()[8:12]); v != Version {
		t.Fatalf("quantless snapshot has version %d, want %d", v, Version)
	}
	got2, err := Read(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Opts.Quantize {
		t.Fatal("quantless snapshot read back with Opts.Quantize true")
	}
}

// TestQuantCorruptionDetected is TestReadDetectsCorruption over a
// version-5 (QNT8) snapshot, plus CRC-valid semantic tampering: a sidecar
// whose bytes are intact but whose content disagrees with the stored
// directions must be rejected by FromState's verify-by-recompute, never
// loaded to silently mis-screen.
func TestQuantCorruptionDetected(t *testing.T) {
	st := buildQuantState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	step := 1
	if len(raw) > 1<<16 {
		step = len(raw) / (1 << 16)
	}
	for off := 0; off < len(raw); off += step {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		got, err := Read(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		if _, err := core.FromState(got); err == nil {
			t.Fatalf("bit flip at offset %d of a quant snapshot went undetected", off)
		}
	}

	tampers := []struct {
		name string
		mut  func(st *core.State, bs *core.BucketState)
	}{
		{"scale drift", func(_ *core.State, bs *core.BucketState) {
			bs.QuantScales[0] = math.Nextafter(bs.QuantScales[0], math.Inf(1))
		}},
		{"code flip", func(_ *core.State, bs *core.BucketState) {
			bs.QuantCodes[0] ^= 1
		}},
		{"resid drift", func(_ *core.State, bs *core.BucketState) {
			bs.QuantResid[0] = math.Nextafter(bs.QuantResid[0], math.Inf(1))
		}},
		{"codes shape mismatch", func(_ *core.State, bs *core.BucketState) {
			bs.QuantCodes = bs.QuantCodes[:len(bs.QuantCodes)-1]
		}},
		{"scales shape mismatch", func(_ *core.State, bs *core.BucketState) {
			bs.QuantScales = append(bs.QuantScales, 0)
		}},
		{"sidecar with screening off", func(st *core.State, _ *core.BucketState) {
			st.Opts.Quantize = false
		}},
	}
	for _, tc := range tampers {
		got, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		target := -1
		for i := range got.Buckets {
			if len(got.Buckets[i].QuantCodes) > 0 {
				target = i
				break
			}
		}
		if target < 0 {
			t.Fatal("no bucket with a usable sidecar in the fixture")
		}
		tc.mut(got, &got.Buckets[target])
		if _, err := core.FromState(got); err == nil {
			t.Errorf("%s: tampered quant sidecar loaded", tc.name)
		}
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 4, len(Magic), 16, 40, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

// FuzzRead feeds arbitrary bytes to the snapshot reader: malformed input
// must error — never panic, never allocate beyond what the input backs —
// and anything Read accepts must either build or be rejected by FromState
// without panicking.
func FuzzRead(f *testing.F) {
	st := buildState(f)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	var qbuf bytes.Buffer
	if err := Write(&qbuf, buildQuantState(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(qbuf.Bytes()) // version-5 seed: QNT8 section reachable by mutation
	f.Add([]byte(Magic))
	f.Add([]byte{})
	// A header whose BUKT section claims huge sizes.
	crafted := append([]byte(nil), raw[:16]...)
	crafted = append(crafted, 'B', 'U', 'K', 'T', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	f.Add(crafted)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, err := core.FromState(got); err != nil {
			return // rejected by structural validation, as designed
		}
	})
}
